// Methodology validity check: the reproduction's headline ratios must be
// stable across the corpus reduction factor, otherwise they would be
// artifacts of the 1/64 scaling rather than properties of the algorithms.
// Sweeps ACSR/CSR and ACSR/HYB speedups at three scales.
#include "bench/bench_common.hpp"

int main(int argc, char** argv) {
  using namespace acsr;
  const Cli cli(argc, argv);
  std::cout << "=== scale sensitivity: headline ratios vs ACSR_SCALE ===\n\n";

  Table t({"scale", "matrix", "ACSR/CSR sp", "ACSR/HYB sp"});
  for (long long scale : {128LL, 64LL, 32LL}) {
    const auto spec =
        vgpu::DeviceSpec::gtx_titan().scaled_for_corpus(scale);
    core::EngineConfig cfg;
    cfg.hyb_breakeven = static_cast<mat::index_t>(
        std::max<long long>(1, 4096 / scale));
    GeoMean g_csr, g_hyb;
    for (const char* ab : {"CNR", "EU2", "WIK", "YOT", "LIV"}) {
      const auto md = graph::build_matrix(graph::corpus_entry(ab), scale);
      mat::Csr<float> m;
      m.rows = md.rows;
      m.cols = md.cols;
      m.row_off = md.row_off;
      m.col_idx = md.col_idx;
      m.vals.assign(md.vals.begin(), md.vals.end());
      double g[3];
      int i = 0;
      for (const char* name : {"acsr", "csr", "hyb"}) {
        vgpu::Device dev(spec);
        auto e = core::make_engine<float>(name, dev, m, cfg);
        g[i++] = e->gflops();
      }
      g_csr.add(g[0] / g[1]);
      g_hyb.add(g[0] / g[2]);
      t.add_row({"1/" + std::to_string(scale), ab, Table::num(g[0] / g[1], 2),
                 Table::num(g[0] / g[2], 2)});
    }
    t.add_row({"1/" + std::to_string(scale), "GEOMEAN",
               Table::num(g_csr.value(), 2), Table::num(g_hyb.value(), 2)});
  }
  t.print();
  std::cout << "\nStable geomeans across a 4x scale range mean the format "
               "ordering is not an artifact of the corpus reduction.\n";
  return 0;
}
