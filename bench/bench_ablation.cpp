// Ablations over ACSR's design knobs (DESIGN.md section 4):
//   * ThreadLoad — child-kernel thread coarsening (Algorithm 3's knob),
//   * BinMax — where bin-specific kernels hand over to dynamic parallelism,
//   * RowMax — dynamic parallelism off/capped/uncapped,
//   * concurrent vs serialised bin-grid launches.
#include "bench/bench_common.hpp"
#include "core/autotune.hpp"
#include "core/incremental_csr.hpp"
#include "graph/dynamic.hpp"

namespace {

using namespace acsr;

double acsr_spmv_us(const bench::BenchContext& ctx,
                    const mat::Csr<float>& m, const core::AcsrOptions& opt) {
  vgpu::Device dev(ctx.spec);
  core::AcsrEngine<float> engine(dev, m, opt);
  return engine.spmv_seconds() * 1e6;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  auto ctx = bench::BenchContext::from_cli(cli);
  const auto& entry = graph::corpus_entry(cli.get_or("matrix", "RAL"));
  ctx.print_header("ACSR design-knob ablations on " + entry.abbrev);
  const auto m = ctx.build<float>(entry);

  {
    std::cout << "--- ThreadLoad (elements per child-kernel thread) ---\n";
    Table t({"ThreadLoad", "SpMV us"});
    for (int tl : {1, 2, 4, 8, 16, 32, 64}) {
      core::AcsrOptions opt;
      opt.thread_load = tl;
      t.add_row({Table::integer(tl), Table::num(acsr_spmv_us(ctx, m, opt), 2)});
    }
    t.print();
  }

  {
    std::cout << "\n--- BinMax (bins beyond this go to dynamic "
                 "parallelism) ---\n";
    Table t({"BinMax", "nnz threshold", "RS grids", "SpMV us"});
    for (int bm : {3, 5, 7, 8, 10, 12, 20}) {
      core::AcsrOptions opt;
      opt.binning.bin_max = bm;
      vgpu::Device dev(ctx.spec);
      core::AcsrEngine<float> engine(dev, m, opt);
      t.add_row({Table::integer(bm), Table::integer(1LL << bm),
                 Table::integer(engine.row_grids()),
                 Table::num(engine.spmv_seconds() * 1e6, 2)});
    }
    t.print();
  }

  {
    std::cout << "\n--- RowMax (dynamic-parallelism row cap) ---\n";
    Table t({"RowMax", "RS grids", "SpMV us"});
    for (int rm : {0, 8, 64, 512, 2048}) {
      core::AcsrOptions opt;
      opt.binning.row_max = rm;
      vgpu::Device dev(ctx.spec);
      core::AcsrEngine<float> engine(dev, m, opt);
      t.add_row({Table::integer(rm), Table::integer(engine.row_grids()),
                 Table::num(engine.spmv_seconds() * 1e6, 2)});
    }
    t.print();
  }

  {
    std::cout << "\n--- bin grids: concurrent streams vs serialised ---\n";
    Table t({"launch mode", "SpMV us"});
    core::AcsrOptions conc;
    conc.concurrent_streams = true;
    core::AcsrOptions seq;
    seq.concurrent_streams = false;
    t.add_row({"concurrent", Table::num(acsr_spmv_us(ctx, m, conc), 2)});
    t.add_row({"serialised", Table::num(acsr_spmv_us(ctx, m, seq), 2)});
    t.print();
    std::cout << "\nConcurrent per-bin grids overlap their resource use "
                 "and share L2 across the aligned row sweeps.\n";
  }

  {
    std::cout << "\n--- x through texture path vs plain global loads ---\n";
    Table t({"x path", "SpMV us"});
    core::AcsrOptions tex;
    tex.use_texture = true;
    core::AcsrOptions plain;
    plain.use_texture = false;
    t.add_row({"texture", Table::num(acsr_spmv_us(ctx, m, tex), 2)});
    t.add_row({"global", Table::num(acsr_spmv_us(ctx, m, plain), 2)});
    t.print();
    std::cout << "\nThe texture cache absorbs the scattered x gathers — "
                 "the reason the paper (and cuSPARSE) binds x to texture "
                 "memory.\n";
  }

  {
    std::cout << "\n--- dynamic-update kernel: warp-per-row (lane 0) vs "
                 "thread-per-row ---\n";
    // Use a square power-law matrix with varied row lengths.
    const auto& ue = graph::corpus_entry("YOT");
    const auto um = ctx.build<double>(ue);
    Table t({"kernel mode", "update kernel us"});
    for (const auto mode : {core::UpdateKernelMode::kWarpPerRowLane0,
                            core::UpdateKernelMode::kThreadPerRow}) {
      vgpu::Device dev(ctx.spec);
      core::IncrementalCsr<double> inc(dev, um, 0.5, 0.10, mode);
      graph::UpdateParams p;
      p.seed = 3;
      const auto batch = graph::generate_update(um, p);
      const auto r = inc.apply_update(batch);
      t.add_row({mode == core::UpdateKernelMode::kWarpPerRowLane0
                     ? "warp-per-row, lane 0"
                     : "thread-per-row (divergent)",
                 Table::num(r.kernel_s * 1e6, 2)});
    }
    t.print();
    std::cout << "\nThe paper assigns a warp per row with one active lane "
                 "precisely to avoid paying every warp the cost of its "
                 "slowest row.\n";
  }

  {
    std::cout << "\n--- parameter auto-tuning (extension) ---\n";
    vgpu::Device dev(ctx.spec);
    const auto tuned = core::autotune_acsr(dev, m);
    vgpu::Device d_def(ctx.spec);
    core::AcsrEngine<float> def(d_def, m);
    Table t({"configuration", "BinMax", "ThreadLoad", "SpMV us"});
    t.add_row({"default", Table::integer(core::AcsrOptions{}.binning.bin_max),
               Table::integer(core::AcsrOptions{}.thread_load),
               Table::num(def.spmv_seconds() * 1e6, 2)});
    t.add_row({"auto-tuned", Table::integer(tuned.best.binning.bin_max),
               Table::integer(tuned.best.thread_load),
               Table::num(tuned.best_spmv_s * 1e6, 2)});
    t.print();
    std::cout << "\ntuning cost: " << Table::num(tuned.tuning_cost_s * 1e6, 1)
              << " us over " << tuned.trials
              << " trials — tens of SpMVs, because only O(rows) metadata "
                 "is rebuilt per trial (vs BCCOO's 10^5 x one SpMV).\n";
  }
  return 0;
}
