// Figure 7: PageRank on dynamic graphs. Top: per-epoch speedups of the
// incremental-ACSR pipeline over CSR (full re-copy) and HYB (full re-copy
// + re-transform) for one representative matrix (FLI). Bottom: the average
// speedup across the corpus.
#include "apps/dynamic_pagerank.hpp"
#include "bench/bench_common.hpp"

namespace {

using namespace acsr;

// Selected ranking for this invocation (--app=pagerank|katz).
std::string g_app = "pagerank";

apps::DynamicPageRankResult<double> run_dynamic(
    const bench::BenchContext& ctx, const graph::CorpusEntry& e,
    int epochs) {
  vgpu::Device da(ctx.spec), dc(ctx.spec), dh(ctx.spec);
  const auto adj = ctx.build<double>(e);
  apps::DynamicPageRankConfig cfg;
  cfg.epochs = epochs;
  cfg.hyb_breakeven = ctx.engine_cfg.hyb_breakeven;
  cfg.acsr = ctx.engine_cfg.acsr;
  cfg.app = g_app;
  // Katz needs alpha < 1/rho(A); mu bounds rho's order of magnitude for
  // these matrices, so back off with the density.
  const double mu = adj.rows == 0 ? 1.0
                                  : static_cast<double>(adj.nnz()) /
                                        static_cast<double>(adj.rows);
  cfg.katz.alpha = std::min(0.02, 0.2 / std::max(1.0, mu));
  // Katz iterates on the raw transposed adjacency (no normalisation).
  const auto operand =
      g_app == "katz" ? adj.transpose() : apps::pagerank_matrix(adj);
  return apps::dynamic_pagerank(da, dc, dh, operand, cfg);
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  auto ctx = bench::BenchContext::from_cli(cli);
  const int epochs = static_cast<int>(cli.get_int("epochs", 10));
  g_app = cli.get_or("app", "pagerank");
  ctx.print_header("Fig. 7: " + g_app +
                   " on dynamic graphs (10% row updates)");

  // Top: epoch-by-epoch for the representative matrix.
  const auto& rep = graph::corpus_entry(cli.get_or("matrix", "FLI"));
  std::cout << "--- per-epoch speedups for " << rep.abbrev << " ---\n";
  {
    const auto res = run_dynamic(ctx, rep, epochs);
    Table t({"epoch", "iterations", "ACSR vs CSR", "ACSR vs HYB",
             "relocated rows", "rebuild"});
    for (const auto& ep : res.epochs)
      t.add_row({Table::integer(ep.epoch), Table::integer(ep.iterations),
                 Table::num(ep.speedup_vs_csr(), 2),
                 Table::num(ep.speedup_vs_hyb(), 2),
                 Table::integer(static_cast<long long>(ep.relocated_rows)),
                 ep.rebuilt ? "yes" : "no"});
    t.print();
    std::cout << "\nEpoch 0 is the cold start (ACSR also pays the full "
                 "copy); later epochs ship only the change list.\n\n";
  }

  if (cli.has("matrix")) return 0;  // single-matrix mode

  // Bottom: averages across the corpus (smaller epoch count to bound cost).
  std::cout << "--- average speedup across all epochs, per matrix ---\n";
  Table t({"Matrix", "avg vs CSR", "avg vs HYB"});
  double s_csr = 0, s_hyb = 0;
  int n = 0;
  for (const auto& e : ctx.matrices) {
    if (e.paper_rows != e.paper_cols) continue;  // PageRank needs square
    try {
      const auto res = run_dynamic(ctx, e, epochs);
      t.add_row({e.abbrev, Table::num(res.mean_speedup_vs_csr(), 2),
                 Table::num(res.mean_speedup_vs_hyb(), 2)});
      s_csr += res.mean_speedup_vs_csr();
      s_hyb += res.mean_speedup_vs_hyb();
      ++n;
    } catch (const vgpu::DeviceOom&) {
      t.add_row({e.abbrev, "OOM", "OOM"});
    }
  }
  if (n > 0)
    t.add_row({"AVG", Table::num(s_csr / n, 2), Table::num(s_hyb / n, 2)});
  t.print();
  std::cout << "\nPaper shape: dynamic-graph speedups exceed the static "
               "Fig. 6 speedups because preprocessing + transfer recur "
               "every epoch.\n";
  return 0;
}
