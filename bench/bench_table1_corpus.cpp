// Table I: the evaluation corpus. Prints each matrix's measured
// characteristics at the configured scale next to the paper-scale targets,
// so the shape preservation (mu kept, sigma > mu for power-law entries,
// max >> mu) is auditable.
#include "bench/bench_common.hpp"

int main(int argc, char** argv) {
  using namespace acsr;
  const Cli cli(argc, argv);
  const auto ctx = bench::BenchContext::from_cli(cli);
  ctx.print_header("Table I: matrices used in this study");

  Table t({"Matrix", "Abbrev.", "NNZ", "Rows", "Cols", "mu", "sigma", "Max",
           "paper mu", "paper sigma", "paper max"});
  for (const auto& e : ctx.matrices) {
    const auto m = ctx.build<double>(e);
    const auto st = m.row_stats();
    t.add_row({e.name, e.abbrev, Table::integer(m.nnz()),
               Table::integer(m.rows), Table::integer(m.cols),
               Table::num(st.mean, 1), Table::num(st.stddev, 1),
               Table::integer(st.max), Table::num(e.paper_mu, 1),
               Table::num(e.paper_sigma, 1), Table::integer(e.paper_max)});
  }
  t.print();
  std::cout << "\nRAL is rectangular (not power-law); AMZ and DBL are the "
               "non-power-law contrast matrices.\n";
  return 0;
}
