// Extensions beyond the paper's own tables:
//   1. ACSR vs SIC — the comparison the paper wanted but could not run
//      ("since their implementation was not available", section IX): we
//      reconstructed SIC from Feng et al.'s description.
//   2. BCSR on power-law graphs — the fill-in numbers that explain why
//      blocked formats are absent from the paper's graph evaluation.
//   3. Empirical validation of the Table-IV crossover model: run a CG
//      solver for increasing iteration budgets and confirm the predicted
//      break-even point between HYB and ACSR total times.
#include "apps/bfs.hpp"
#include "apps/centrality.hpp"
#include "apps/cg.hpp"
#include "bench/comparators.hpp"
#include "core/acsr_engine.hpp"

namespace {

using namespace acsr;

void acsr_vs_sic(const bench::BenchContext& ctx) {
  std::cout << "--- ACSR vs SIC (Feng et al. [13], reconstructed) ---\n";
  Table t({"Matrix", "SIC pre/SpMV", "ACSR pre/SpMV", "SIC GFLOPs",
           "ACSR GFLOPs", "1-SpMV speedup"});
  GeoMean speedups;
  for (const auto& e : ctx.matrices) {
    const auto sic = bench::measure_format(ctx, e, "sic");
    const auto acsr = bench::measure_format(ctx, e, "acsr");
    if (sic.oom || acsr.oom) {
      t.add_row({e.abbrev, "OOM", "-", "-", "-", "-"});
      continue;
    }
    const auto m = ctx.build<float>(e);
    const double nnz2 = 2.0 * static_cast<double>(m.nnz());
    const double speedup =
        (sic.pre_s + sic.spmv_s) / (acsr.pre_s + acsr.spmv_s);
    speedups.add(speedup);
    t.add_row({e.abbrev, Table::num(sic.pre_s / sic.spmv_s, 1),
               Table::num(acsr.pre_s / acsr.spmv_s, 1),
               Table::num(nnz2 / sic.spmv_s / 1e9, 1),
               Table::num(nnz2 / acsr.spmv_s / 1e9, 1),
               Table::num(speedup, 2)});
  }
  t.add_row({"GEOMEAN", "-", "-", "-", "-", Table::num(speedups.value(), 2)});
  t.print();
  std::cout << "\nSIC's interleaved blocks coalesce like BRC without the "
               "global sort, but the restructure still costs orders of "
               "magnitude more preprocessing than ACSR's scan.\n\n";
}

void bcsr_fill_in(const bench::BenchContext& ctx) {
  std::cout << "--- BCSR fill-in on graph matrices (why blocked formats "
               "skip this domain) ---\n";
  Table t({"Matrix", "2x2 fill-in", "4x4 fill-in", "BCSR GFLOPs",
           "ACSR GFLOPs"});
  for (const std::string ab : {"AMZ", "EU2", "YOT", "WIK"}) {
    const auto& e = graph::corpus_entry(ab);
    const auto m = ctx.build<float>(e);
    vgpu::Device d2(ctx.spec), d4(ctx.spec), da(ctx.spec);
    auto b2 = std::make_unique<spmv::BcsrEngine<float>>(d2, m, 2);
    auto b4 = std::make_unique<spmv::BcsrEngine<float>>(d4, m, 4);
    auto acsr = core::make_engine<float>("acsr", da, m, ctx.engine_cfg);
    t.add_row({ab, Table::num(b2->fill_in(), 2),
               Table::num(b4->fill_in(), 2), Table::num(b2->gflops(), 1),
               Table::num(acsr->gflops(), 1)});
  }
  t.print();
  std::cout << "\nFill-in of 2-4x on power-law graphs erases BCSR's index "
               "savings; it only pays off on genuinely blocked matrices.\n\n";
}

void acsr_vs_merge_csr(const bench::BenchContext& ctx) {
  std::cout << "--- forward-looking: ACSR vs merge-based CSR (Merrill & "
               "Garland, SC'16) ---\n";
  Table t({"Matrix", "merge GFLOPs", "ACSR GFLOPs", "both preproc-free?"});
  for (const auto& e : ctx.matrices) {
    try {
      vgpu::Device d1(ctx.spec), d2(ctx.spec);
      const auto m = ctx.build<float>(e);
      auto merge = core::make_engine<float>("merge-csr", d1, m,
                                            ctx.engine_cfg);
      auto acsr = core::make_engine<float>("acsr", d2, m, ctx.engine_cfg);
      t.add_row({e.abbrev, Table::num(merge->gflops(), 1),
                 Table::num(acsr->gflops(), 1),
                 merge->report().preprocess_s == 0.0 &&
                         acsr->report().preprocess_s < 5e-4
                     ? "yes"
                     : "yes (ACSR: one scan)"});
    } catch (const vgpu::DeviceOom&) {
      t.add_row({e.abbrev, "OOM", "OOM", "-"});
    }
  }
  t.print();
  std::cout << "\nBoth work on unmodified CSR with negligible setup — the "
               "property the paper argues for; merge-CSR balances load by "
               "construction, ACSR by binning + dynamic parallelism.\n\n";
}

void more_graph_apps(const bench::BenchContext& ctx) {
  std::cout << "--- beyond the paper's three apps: Katz, components, BFS "
               "on the ACSR engine ---\n";
  Table t({"Matrix", "Katz iters", "Katz ms", "components", "CC rounds",
           "BFS depth", "BFS reached", "BFS ms"});
  for (const std::string ab : {"ENR", "YOT", "CNR"}) {
    const auto adj = ctx.build<double>(graph::corpus_entry(ab));
    vgpu::Device dk(ctx.spec), dc(ctx.spec), db(ctx.spec);
    core::AcsrEngine<double> ek(dk, adj.transpose());
    apps::KatzConfig kc;
    kc.alpha = 0.02;
    const auto katz = apps::katz_centrality(ek, kc);
    core::AcsrEngine<double> ec(dc, adj);
    const auto cc = apps::connected_components(ec, adj);
    core::AcsrEngine<double> eb(db, adj.transpose());
    const auto bfs = apps::bfs(eb, 0);
    t.add_row({ab, Table::integer(katz.iterations),
               Table::num(katz.total_s * 1e3, 3),
               Table::integer(cc.num_components), Table::integer(cc.rounds),
               Table::integer(bfs.depth),
               Table::integer(static_cast<long long>(bfs.visited)),
               Table::num(bfs.total_s * 1e3, 3)});
  }
  t.print();
  std::cout << "\nEvery app is iterations x (one engine SpMV + vector "
               "kernels) — the paper's framing of graph analytics as "
               "sparse-matrix operations.\n\n";
}

void crossover_validation(const bench::BenchContext& ctx) {
  std::cout << "--- Table IV crossover, validated with a CG solver ---\n";
  // An SPD power-law-ish matrix: A^T A of a corpus graph is dense-ish, so
  // use the Laplacian + a power-law perturbation is overkill — the plain
  // 2D Laplacian already iterates enough to show the crossover.
  const auto a = apps::laplacian_2d<float>(120, 120);
  vgpu::Device d1(ctx.spec), d2(ctx.spec);
  auto hyb = core::make_engine<float>("hyb", d1, a, ctx.engine_cfg);
  auto acsr = core::make_engine<float>("acsr", d2, a, ctx.engine_cfg);

  const auto n_pred = bench::crossover_iterations(
      hyb->report().preprocess_s, hyb->spmv_seconds(),
      acsr->report().preprocess_s, acsr->spmv_seconds());
  std::cout << "predicted crossover (Eq. 4): "
            << (n_pred ? Table::num(*n_pred, 0) + " iterations"
                       : std::string("inf — ACSR always wins"))
            << "\n";

  std::vector<float> b(static_cast<std::size_t>(a.rows), 1.0f);
  Table t({"CG iterations", "HYB total us", "ACSR total us", "winner"});
  for (int iters : {5, 20, 80, 320, 1280}) {
    apps::CgConfig cfg;
    cfg.max_iters = iters;
    cfg.tolerance = 0.0;  // run the full budget
    const auto rh = apps::conjugate_gradient(*hyb, b, cfg);
    const auto ra = apps::conjugate_gradient(*acsr, b, cfg);
    t.add_row({Table::integer(iters), Table::num(rh.total_s * 1e6, 1),
               Table::num(ra.total_s * 1e6, 1),
               rh.total_s < ra.total_s ? "HYB" : "ACSR"});
  }
  t.print();
  std::cout << "\nThe winner flips near the predicted n: transformed "
               "formats only pay off for long fixed-structure solves.\n";
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto ctx = bench::BenchContext::from_cli(cli);
  ctx.print_header("Extensions: SIC comparison, BCSR fill-in, crossover "
                   "validation");
  acsr_vs_sic(ctx);
  bcsr_fill_in(ctx);
  acsr_vs_merge_csr(ctx);
  more_graph_apps(ctx);
  crossover_validation(ctx);
  return 0;
}
