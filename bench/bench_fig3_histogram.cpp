// Figure 3: the power-law row-length distribution. Prints the log2
// histogram (which is exactly the ACSR bin population) for one matrix —
// heavy mass at 1-4 nnz, a long tail on the right.
#include "bench/bench_common.hpp"

int main(int argc, char** argv) {
  using namespace acsr;
  const Cli cli(argc, argv);
  auto ctx = bench::BenchContext::from_cli(cli);
  const auto& entry = graph::corpus_entry(cli.get_or("matrix", "YOT"));
  ctx.print_header("Fig. 3: row-length distribution (histogram) for " +
                   entry.abbrev);

  const auto m = ctx.build<double>(entry);
  const auto st = m.row_stats();
  const auto& h = st.histogram;

  Table t({"nnz range (bin)", "rows", "frequency", ""});
  for (std::size_t b = 0; b < h.num_buckets(); ++b) {
    if (h.count(b) == 0) continue;
    const auto lo = Log2Histogram::bucket_lo(b) + (b >= 1 ? 1 : 0);
    const auto hi = Log2Histogram::bucket_hi(b);
    const double f = h.frequency(b);
    std::string bar(static_cast<std::size_t>(f * 60.0), '#');
    t.add_row({(b == 0 ? std::string("0") : std::to_string(lo) + "-" +
                                                std::to_string(hi)),
               Table::integer(static_cast<long long>(h.count(b))),
               Table::num(f, 4), bar});
  }
  t.print();
  std::cout << "\nmu = " << Table::num(st.mean, 1)
            << ", sigma = " << Table::num(st.stddev, 1)
            << ", max = " << st.max
            << "  — heavy head of short rows plus a long tail, the two "
               "extremes ACSR's bins and dynamic parallelism target.\n";
  return 0;
}
