// Table IV: per-format SpMV time plus n — the number of iterative SpMV
// invocations another format needs before its preprocessing amortises
// against ACSR (Eq. 4). "inf" means ACSR wins at any iteration count;
// "OOM" means the format cannot hold the matrix.
#include "bench/comparators.hpp"

int main(int argc, char** argv) {
  using namespace acsr;
  using bench::FormatTimes;
  const Cli cli(argc, argv);
  const auto ctx = bench::BenchContext::from_cli(cli);
  ctx.print_header("Table IV: SpMV time (us) and crossover iterations n");

  Table t({"Matrix", "ACSR us", "BCCOO us", "n", "BRC us", "n", "TCOO us",
           "n", "HYB us", "n"});
  for (const auto& e : ctx.matrices) {
    const FormatTimes acsr = bench::measure_format(ctx, e, "acsr");
    std::vector<std::string> row = {e.abbrev,
                                    Table::num(acsr.spmv_s * 1e6, 2)};
    for (const std::string fmt : {"bccoo", "brc", "tcoo", "hyb"}) {
      const FormatTimes f = bench::measure_format(ctx, e, fmt);
      if (f.oom) {
        row.push_back("OOM");
        row.push_back("OOM");
        continue;
      }
      row.push_back(Table::num(f.spmv_s * 1e6, 2));
      const auto n = bench::crossover_iterations(f.pre_s, f.spmv_s,
                                                 acsr.pre_s, acsr.spmv_s);
      row.push_back(n ? Table::num(*n, 0) : "inf");
    }
    t.add_row(row);
  }
  t.print();
  std::cout << "\nReading: a format with a finite n beats ACSR only in "
               "solvers iterating at least n times on a FIXED sparsity "
               "structure — hopeless for dynamic graphs.\n";
  return 0;
}
