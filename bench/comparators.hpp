// Shared measurement loop for the preprocessing-focused experiments
// (Table III, Table IV, Fig. 4): single-precision engines (BCCOO and TCOO
// only exist in single precision, as the paper notes), preprocessing time
// and one-SpMV time per format, with Ø for out-of-memory.
#pragma once

#include "bench/bench_common.hpp"

namespace acsr::bench {

struct FormatTimes {
  double pre_s = 0.0;   // transform / tuning time
  double spmv_s = 0.0;  // one SpMV
  bool oom = false;
};

inline const std::vector<std::string>& comparator_formats() {
  static const std::vector<std::string> f = {"bccoo", "brc", "tcoo", "hyb",
                                             "acsr"};
  return f;
}

inline FormatTimes measure_format(const BenchContext& ctx,
                                  const graph::CorpusEntry& entry,
                                  const std::string& format) {
  FormatTimes ft;
  try {
    vgpu::Device dev(ctx.spec);
    const auto m = ctx.build<float>(entry);
    auto engine = core::make_engine<float>(format, dev, m, ctx.engine_cfg);
    ft.pre_s = engine->report().preprocess_s;
    ft.spmv_s = engine->spmv_seconds();
  } catch (const vgpu::DeviceOom&) {
    ft.oom = true;
  }
  return ft;
}

}  // namespace acsr::bench
