// google-benchmark microbenchmarks of the library itself: these measure
// *host wall-clock* of the simulator and preprocessing paths (not the
// simulated GPU time the figure benches report), guarding against
// regressions in the hot loops that all experiments share.
#include <benchmark/benchmark.h>

#include "core/factory.hpp"
#include "graph/powerlaw.hpp"

namespace {

using namespace acsr;

mat::Csr<double> bench_matrix(int rows, double mu) {
  graph::PowerLawSpec s;
  s.rows = rows;
  s.cols = rows;
  s.mean_nnz_per_row = mu;
  s.alpha = 1.7;
  s.max_row_nnz = rows / 8;
  s.seed = 123;
  return graph::powerlaw_matrix(s);
}

void BM_HostSpmvCsr(benchmark::State& state) {
  const auto m = bench_matrix(static_cast<int>(state.range(0)), 8.0);
  std::vector<double> x(static_cast<std::size_t>(m.cols), 1.0), y;
  for (auto _ : state) {
    m.spmv(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * m.nnz());
}
BENCHMARK(BM_HostSpmvCsr)->Arg(1 << 10)->Arg(1 << 13);

void BM_SimulatedSpmvAcsr(benchmark::State& state) {
  const auto m = bench_matrix(static_cast<int>(state.range(0)), 8.0);
  vgpu::Device dev(vgpu::DeviceSpec::gtx_titan());
  core::AcsrEngine<double> engine(dev, m);
  std::vector<double> x(static_cast<std::size_t>(m.cols), 1.0), y;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.simulate(x, y));
  }
  state.SetItemsProcessed(state.iterations() * m.nnz());
}
BENCHMARK(BM_SimulatedSpmvAcsr)->Arg(1 << 10)->Arg(1 << 13);

void BM_Binning(benchmark::State& state) {
  const auto m = bench_matrix(static_cast<int>(state.range(0)), 8.0);
  std::vector<mat::offset_t> row_nnz(static_cast<std::size_t>(m.rows));
  for (mat::index_t r = 0; r < m.rows; ++r)
    row_nnz[static_cast<std::size_t>(r)] = m.row_nnz(r);
  for (auto _ : state) {
    auto b = core::Binning::build(row_nnz, core::BinningOptions{});
    benchmark::DoNotOptimize(b.bins.data());
  }
  state.SetItemsProcessed(state.iterations() * m.rows);
}
BENCHMARK(BM_Binning)->Arg(1 << 12)->Arg(1 << 16);

void BM_HybTransform(benchmark::State& state) {
  const auto m = bench_matrix(static_cast<int>(state.range(0)), 8.0);
  for (auto _ : state) {
    vgpu::HostModel hm;
    auto h = mat::Hyb<double>::from_csr(m, &hm, 64);
    benchmark::DoNotOptimize(h.ell.vals.data());
  }
  state.SetItemsProcessed(state.iterations() * m.nnz());
}
BENCHMARK(BM_HybTransform)->Arg(1 << 12);

void BM_PowerLawGenerator(benchmark::State& state) {
  for (auto _ : state) {
    auto m = bench_matrix(static_cast<int>(state.range(0)), 8.0);
    benchmark::DoNotOptimize(m.vals.data());
  }
}
BENCHMARK(BM_PowerLawGenerator)->Arg(1 << 12);

}  // namespace

BENCHMARK_MAIN();
