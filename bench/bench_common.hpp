// Shared plumbing for the table/figure benches: corpus construction at the
// configured scale, scaled device specs, precision conversion, and the
// speedup/crossover arithmetic of section V.
#pragma once

#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/factory.hpp"
#include "graph/corpus.hpp"

namespace acsr::bench {

struct BenchContext {
  long long scale = 64;
  vgpu::DeviceSpec spec;                 // already corpus-scaled
  std::vector<graph::CorpusEntry> matrices;
  core::EngineConfig engine_cfg;

  static BenchContext from_cli(const Cli& cli,
                               const std::string& default_device = "titan") {
    BenchContext ctx;
    ctx.scale = cli.get_int("scale", graph::default_scale());
    ctx.spec = vgpu::DeviceSpec::by_name(cli.get_or("device", default_device))
                   .scaled_for_corpus(ctx.scale);
    // Scale CUSP's HYB break-even population with the corpus.
    ctx.engine_cfg.hyb_breakeven = static_cast<mat::index_t>(
        std::max<long long>(1, 4096 / ctx.scale));
    if (auto names = cli.get("matrices")) {
      std::string rest = *names;
      while (!rest.empty()) {
        const auto comma = rest.find(',');
        ctx.matrices.push_back(
            graph::corpus_entry(rest.substr(0, comma)));
        if (comma == std::string::npos) break;
        rest.erase(0, comma + 1);
      }
    } else {
      ctx.matrices = graph::table1_corpus();
    }
    return ctx;
  }

  template <class T>
  mat::Csr<T> build(const graph::CorpusEntry& e) const {
    const mat::Csr<double> m = graph::build_matrix(e, scale);
    if constexpr (std::is_same_v<T, double>) {
      return m;
    } else {
      mat::Csr<T> f;
      f.rows = m.rows;
      f.cols = m.cols;
      f.row_off = m.row_off;
      f.col_idx = m.col_idx;
      f.vals.assign(m.vals.begin(), m.vals.end());
      return f;
    }
  }

  void print_header(const std::string& what) const {
    std::cout << "=== " << what << " ===\n"
              << "device " << spec.name << ", corpus scale 1/" << scale
              << " (ACSR_SCALE), " << matrices.size() << " matrices\n\n";
  }
};

/// Crossover iteration count of Eq. 4: the n at which format A's lower
/// per-SpMV time amortises its preprocessing against ACSR. Returns
/// nullopt for "infinity" (ACSR wins at any n).
inline std::optional<double> crossover_iterations(double pre_a, double spmv_a,
                                                  double pre_acsr,
                                                  double spmv_acsr) {
  if (spmv_a >= spmv_acsr) return std::nullopt;  // never catches up
  return (pre_a - pre_acsr) / (spmv_acsr - spmv_a);
}

/// Total preprocessing as the paper charges it: host transform/tuning time
/// plus the format's H2D transfer beyond what CSR itself would ship.
template <class T>
double preprocessing_seconds(spmv::SpmvEngine<T>& e) {
  return e.report().preprocess_s;
}

}  // namespace acsr::bench
