// Figure 5: SpMV GFLOPs (2*nnz / time) for CSR (cuSPARSE-style csrmv),
// HYB and ACSR, in single and double precision, per device:
//   --device=titan   (top: CC 3.5, ACSR uses dynamic parallelism)
//   --device=gtx580  (center: binning-only; large matrices go OOM)
//   --device=k10     (bottom: one GK104 die, binning-only, weak DP arith)
#include "bench/bench_common.hpp"

namespace {

using namespace acsr;

template <class T>
std::string gflops_cell(const bench::BenchContext& ctx,
                        const graph::CorpusEntry& e,
                        const std::string& format) {
  try {
    vgpu::Device dev(ctx.spec);
    const auto m = ctx.build<T>(e);
    auto engine = core::make_engine<T>(format, dev, m, ctx.engine_cfg);
    return Table::num(engine->gflops(), 1);
  } catch (const vgpu::DeviceOom&) {
    return "OOM";
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto ctx = bench::BenchContext::from_cli(cli);
  const bool dp_device = ctx.spec.supports_dynamic_parallelism();
  const std::string acsr_variant = dp_device ? "acsr" : "acsr-binning";
  ctx.print_header("Fig. 5 (" + ctx.spec.name + "): SpMV GFLOPs — ACSR " +
                   (dp_device ? "with dynamic parallelism"
                              : "binning-only (CC < 3.5)"));

  Table t({"Matrix", "CSR sp", "HYB sp", "ACSR sp", "CSR dp", "HYB dp",
           "ACSR dp"});
  for (const auto& e : ctx.matrices) {
    t.add_row({e.abbrev, gflops_cell<float>(ctx, e, "csr"),
               gflops_cell<float>(ctx, e, "hyb"),
               gflops_cell<float>(ctx, e, acsr_variant),
               gflops_cell<double>(ctx, e, "csr"),
               gflops_cell<double>(ctx, e, "hyb"),
               gflops_cell<double>(ctx, e, acsr_variant)});
  }
  t.print();
  std::cout << "\n'OOM': matrix does not fit this device's (scaled) memory "
               "— the paper's Ø bars.\n";
  return 0;
}
