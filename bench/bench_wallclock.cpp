// Wall-clock microbenchmarks of the vgpu executor itself.
//
// Unlike the table/figure benches, which report *simulated* GPU seconds,
// this bench measures how fast the single-core functional simulator chews
// through SpMV kernels in real host time — the quantity that gates every
// reproduction run, the 200-matrix differential fuzz, and the graph-app
// benches. scripts/bench.sh folds the google-benchmark JSON output into
// BENCH_wallclock.json at the repo root so successive PRs can diff
// executor throughput. The fast-path / reference-path metering invariance
// contract is asserted by tests/test_metering_invariance.cpp; this bench
// only measures speed.
//
// Usage: bench_wallclock [--quick] [--metrics_out FILE] [gbench flags]
//   --quick         smoke mode: ~25x shorter measurement windows (CI gate)
//   --metrics_out   after the timed run, replay each engine once under the
//                   profiler and write the per-metric JSON document
//                   (schema acsr-prof/v1, see docs/OBSERVABILITY.md). The
//                   replay happens after measurement, so it cannot perturb
//                   the wall-clock numbers.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "apps/cg.hpp"
#include "apps/pagerank.hpp"
#include "apps/rwr_batch.hpp"
#include "core/factory.hpp"
#include "core/ooc_engine.hpp"
#include "graph/corpus.hpp"
#include "mat/dense_block.hpp"
#include "prof/capture.hpp"
#include "prof/metrics.hpp"
#include "prof/report.hpp"
#include "serve/scheduler.hpp"
#include "vgpu/device.hpp"
#include "vgpu/memo.hpp"

namespace {

using acsr::core::EngineConfig;
using acsr::core::make_engine;
using acsr::mat::Csr;
using acsr::vgpu::Device;
using acsr::vgpu::DeviceSpec;

long long corpus_scale() { return acsr::graph::default_scale(); }

DeviceSpec titan_spec() {
  return DeviceSpec::by_name("titan").scaled_for_corpus(corpus_scale());
}

EngineConfig engine_config() {
  EngineConfig cfg;
  cfg.hyb_breakeven = static_cast<acsr::mat::index_t>(
      std::max<long long>(1, 4096 / corpus_scale()));
  return cfg;
}

/// Corpus matrices are deterministic for a given (abbrev, scale); build
/// each once and share across benchmarks.
const Csr<double>& corpus_matrix(const std::string& abbrev) {
  static std::map<std::string, Csr<double>> cache;
  auto it = cache.find(abbrev);
  if (it == cache.end()) {
    it = cache
             .emplace(abbrev,
                      acsr::graph::build_matrix(
                          acsr::graph::corpus_entry(abbrev), corpus_scale()))
             .first;
  }
  return it->second;
}

/// One full simulated SpMV per iteration: the executor hot path end to end
/// (launch setup, warp construction, gathers, metering, roofline finalize).
void BM_SpmvExecutor(benchmark::State& state, const char* engine_name,
                     const char* matrix) {
  const Csr<double>& a = corpus_matrix(matrix);
  Device dev(titan_spec());
  auto engine = make_engine<double>(engine_name, dev, a, engine_config());
  std::vector<double> x(static_cast<std::size_t>(a.cols), 1.0);
  std::vector<double> y;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine->simulate(x, y));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(a.nnz()));
  state.counters["nnz"] = static_cast<double>(a.nnz());
}

/// Batched SpMM executor throughput vs batch width: one simulate_batch of
/// `width` vectors per iteration. Items processed counts useful work
/// (nnz x width), so items/s against `spmv_executor` shows directly how
/// the executor amortizes per-launch overhead over a batch. The simulated
/// side of the story (seconds and matrix bytes per vector, the paper-level
/// win tracked in docs/PERF.md) is exported as counters from one profiled
/// run after measurement.
void BM_SpmmExecutor(benchmark::State& state, const char* engine_name,
                     const char* matrix, int width) {
  const Csr<double>& a = corpus_matrix(matrix);
  Device dev(titan_spec());
  auto engine = make_engine<double>(engine_name, dev, a, engine_config());
  acsr::mat::DenseBlock<double> x(a.cols, width);
  for (int c = 0; c < width; ++c)
    for (acsr::mat::index_t r = 0; r < a.cols; ++r)
      x.at(r, c) = 1.0 + 0.001 * c;
  acsr::mat::DenseBlock<double> y;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine->simulate_batch(x, y));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(a.nnz()) * width);
  const double sim_s = engine->simulate_batch(x, y);
  state.counters["width"] = width;
  state.counters["sim_us_per_vec"] = sim_s * 1e6 / width;
  state.counters["gmem_bytes_per_vec"] =
      static_cast<double>(engine->report().last_run.counters.gmem_bytes) /
      width;
}

/// Multi-tenant serving plane: the deterministic three-tenant scenario
/// (apps/rwr_batch.hpp) pushed through the batch scheduler per iteration.
/// The makespan counter is the simulated clock the tenants were billed
/// against — max_batch_width 1 vs 32 shows the scheduler-level win.
void BM_ServeScheduler(benchmark::State& state, int max_width) {
  const Csr<double>& a = corpus_matrix("WIK");
  Device dev(titan_spec());
  auto engine = make_engine<double>("acsr", dev, a, engine_config());
  double makespan = 0.0;
  std::uint64_t requests = 0;
  acsr::prof::SloAgg slo{};
  for (auto _ : state) {
    acsr::serve::ServeOptions opt;
    opt.max_batch_width = max_width;
    // observe_slo feeds the deterministic latency/queue-wait histograms
    // without span recording — tail percentiles for free alongside the
    // wall-clock numbers (docs/SLO.md).
    opt.observe_slo = true;
    acsr::serve::BatchScheduler<double> sched(*engine, opt);
    acsr::apps::run_tenant_scenario(sched, a.cols);
    // No DoNotOptimize here: run_tenant_scenario drives the device through
    // virtual engine calls (opaque to the optimizer), and routing `makespan`
    // through DoNotOptimize's "+r" constraint corrupted the double before
    // the post-loop counter read.
    makespan = sched.clock_s();
    requests = sched.served_requests();
    slo = sched.slo().snapshot("*");
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(requests));
  state.counters["max_width"] = max_width;
  state.counters["sim_makespan_ms"] = makespan * 1e3;
  // Simulated-clock tail latency: deterministic per width, so drift in
  // BENCH_wallclock.json is a scheduling change, not noise.
  state.counters["sim_lat_p50_ms"] = slo.latency_p50_s * 1e3;
  state.counters["sim_lat_p95_ms"] = slo.latency_p95_s * 1e3;
  state.counters["sim_lat_p99_ms"] = slo.latency_p99_s * 1e3;
  state.counters["sim_wait_p95_ms"] = slo.queue_wait_p95_s * 1e3;
}

/// Out-of-core streaming executor (docs/OOC.md): one full streamed SpMV
/// per iteration with the device budget pinned to footprint/divisor, so
/// the row-slab count — and with it the storage-plane traffic the double
/// buffer must hide — scales with the divisor. Counters export the
/// simulated side: slab count, read amplification (whole-stripe reads vs
/// demand bytes), and overlap efficiency (upload time hidden behind
/// compute; > 0 is the acceptance gate tracked by tests/test_ooc.cpp).
void BM_OocExecutor(benchmark::State& state, int divisor) {
  const Csr<double>& a = corpus_matrix("WIK");
  Device dev(titan_spec());
  const std::size_t footprint =
      (static_cast<std::size_t>(a.rows) + 1) * sizeof(acsr::mat::offset_t) +
      a.nnz() * (sizeof(acsr::mat::index_t) + sizeof(double));
  acsr::core::OocOptions opt;
  opt.budget_bytes =
      std::max<std::size_t>(footprint / static_cast<std::size_t>(divisor),
                            16 * 1024);
  acsr::core::OocCsrEngine<double> engine(dev, a, opt);
  std::vector<double> x(static_cast<std::size_t>(a.cols), 1.0);
  std::vector<double> y;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.simulate(x, y));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(a.nnz()));
  const acsr::prof::IoAgg& io = engine.io_stats();
  state.counters["slabs"] = static_cast<double>(engine.num_slabs());
  state.counters["read_amp"] =
      acsr::prof::find_io_metric("io.read_amplification")->compute(io);
  state.counters["overlap_eff"] =
      acsr::prof::find_io_metric("io.overlap_efficiency")->compute(io);
  state.counters["sim_makespan_ms"] = engine.last_makespan() * 1e3;
}

/// Raw warp-gather micro: unit-stride (coalesced, the affine fast path's
/// home turf) streaming loads of a large buffer.
void BM_WarpGatherAffine(benchmark::State& state) {
  Device dev(titan_spec());
  const std::size_t n = 1 << 18;
  auto buf = dev.alloc<double>(n, "stream");
  buf.host().assign(n, 1.0);
  auto s = buf.cspan();
  const long long grid = static_cast<long long>(n) / 256;
  acsr::vgpu::LaunchConfig cfg;
  cfg.name = "gather_affine";
  cfg.block_dim = 256;
  cfg.grid_dim = grid;
  for (auto _ : state) {
    const auto run = dev.launch_warps(cfg, [&](acsr::vgpu::Warp& w) {
      const auto idx = w.global_threads();
      const auto v = w.load(s, idx, w.active_mask());
      benchmark::DoNotOptimize(v[0]);
    });
    benchmark::DoNotOptimize(run.counters.gmem_transactions);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}

/// Raw warp-gather micro: pseudo-random scatter (the reference per-lane
/// path; no affine structure to exploit).
void BM_WarpGatherScatter(benchmark::State& state) {
  Device dev(titan_spec());
  const std::size_t n = 1 << 18;
  auto buf = dev.alloc<double>(n, "scatter");
  buf.host().assign(n, 1.0);
  auto s = buf.cspan();
  const long long grid = static_cast<long long>(n) / 256;
  acsr::vgpu::LaunchConfig cfg;
  cfg.name = "gather_scatter";
  cfg.block_dim = 256;
  cfg.grid_dim = grid;
  const long long mask = static_cast<long long>(n) - 1;
  for (auto _ : state) {
    const auto run = dev.launch_warps(cfg, [&](acsr::vgpu::Warp& w) {
      const auto tid = w.global_threads();
      const auto idx = tid.map([mask](long long t) {
        return (t * 2654435761LL + 12345) & mask;  // cheap hash scatter
      });
      const auto v = w.load(s, idx, w.active_mask());
      benchmark::DoNotOptimize(v[0]);
    });
    benchmark::DoNotOptimize(run.counters.gmem_transactions);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}

/// PageRank operand over the scaled wikipedia graph, built once.
const Csr<double>& pagerank_operand() {
  static const Csr<double> m =
      acsr::apps::pagerank_matrix(corpus_matrix("WIK"));
  return m;
}

/// SPD operand for CG derived from WIK: symmetrise |A| over the square
/// leading block, then set each diagonal to its off-diagonal row sum + 1.
/// Strict diagonal dominance of a symmetric matrix with a positive
/// diagonal guarantees positive definiteness.
const Csr<double>& cg_operand() {
  static const Csr<double> m = [] {
    using acsr::mat::index_t;
    using acsr::mat::offset_t;
    const Csr<double>& a = corpus_matrix("WIK");
    const index_t n = std::min(a.rows, a.cols);
    std::vector<std::map<index_t, double>> sym(static_cast<std::size_t>(n));
    for (index_t r = 0; r < n; ++r) {
      for (offset_t i = a.row_off[static_cast<std::size_t>(r)];
           i < a.row_off[static_cast<std::size_t>(r) + 1]; ++i) {
        const index_t c = a.col_idx[static_cast<std::size_t>(i)];
        const double v = std::abs(a.vals[static_cast<std::size_t>(i)]);
        if (c >= n || c == r || v == 0.0) continue;
        sym[static_cast<std::size_t>(r)][c] += v;
        sym[static_cast<std::size_t>(c)][r] += v;
      }
    }
    Csr<double> out;
    out.rows = out.cols = n;
    out.row_off.assign(static_cast<std::size_t>(n) + 1, 0);
    for (index_t r = 0; r < n; ++r) {
      auto& row = sym[static_cast<std::size_t>(r)];
      double off_sum = 0.0;
      for (const auto& [c, v] : row) off_sum += v;
      row[r] = off_sum + 1.0;
      out.row_off[static_cast<std::size_t>(r) + 1] =
          out.row_off[static_cast<std::size_t>(r)] +
          static_cast<offset_t>(row.size());
      for (const auto& [c, v] : row) {
        out.col_idx.push_back(c);
        out.vals.push_back(v);
      }
    }
    out.validate();
    return out;
  }();
  return m;
}

/// Fresh memo cache per benchmark invocation; global flag restored after.
/// Enabled before make_engine() — the factory only wraps engines in the
/// memoizing decorator while the plane is on.
struct MemoBenchGuard {
  explicit MemoBenchGuard(bool on) {
    acsr::vgpu::memo::MemoCache::instance().clear();
    acsr::vgpu::memo::set_memo_enabled(on);
  }
  ~MemoBenchGuard() {
    acsr::vgpu::memo::set_memo_enabled(false);
    acsr::vgpu::memo::MemoCache::instance().clear();
  }
};

/// End-to-end solver benchmark: one full fixed-work PageRank run (20
/// device-loop iterations of the ACSR engine over WIK) per bench
/// iteration. The memo variant measures the ACSR_MEMO=1 capture/replay
/// path against the same workload (docs/PERF.md tracks the speedup).
void BM_AppPagerank(benchmark::State& state, bool memo) {
  MemoBenchGuard guard(memo);
  const Csr<double>& a = pagerank_operand();
  Device dev(titan_spec());
  auto engine = make_engine<double>("acsr", dev, a, engine_config());
  acsr::apps::PageRankConfig cfg;
  cfg.iter.epsilon = 0.0;  // fixed work: never converges early
  cfg.iter.max_iters = 20;
  cfg.iter.device_loop = true;
  for (auto _ : state) {
    auto res = acsr::apps::pagerank(*engine, cfg);
    benchmark::DoNotOptimize(res.scores.data());
  }
  state.counters["iters"] = cfg.iter.max_iters;
}

/// Same shape for CG: 20 fixed-work device-loop iterations over the SPD
/// operand derived from WIK.
void BM_AppCg(benchmark::State& state, bool memo) {
  MemoBenchGuard guard(memo);
  const Csr<double>& a = cg_operand();
  Device dev(titan_spec());
  auto engine = make_engine<double>("acsr", dev, a, engine_config());
  std::vector<double> b(static_cast<std::size_t>(a.rows), 1.0);
  acsr::apps::CgConfig cfg;
  cfg.tolerance = 0.0;  // fixed work: never converges early
  cfg.max_iters = 20;
  cfg.device_loop = true;
  for (auto _ : state) {
    auto res = acsr::apps::conjugate_gradient(*engine, b, cfg);
    benchmark::DoNotOptimize(res.x.data());
  }
  state.counters["iters"] = cfg.max_iters;
}

// The headline executor benchmark the ≥2x acceptance gate tracks:
// CSR-scalar over the scaled wikipedia graph (power-law, the paper's
// central workload). The --metrics_out replay profiles the same set.
const char* const kEngines[] = {"csr-scalar", "csr-vector", "csr",
                                "coo",        "hyb",        "acsr"};

void register_benches() {
  for (const char* e : kEngines) {
    benchmark::RegisterBenchmark(
        (std::string("spmv_executor/") + e + "/WIK").c_str(),
        [e](benchmark::State& st) { BM_SpmvExecutor(st, e, "WIK"); })
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::RegisterBenchmark(
      "spmv_executor/csr-scalar/ENR",
      [](benchmark::State& st) { BM_SpmvExecutor(st, "csr-scalar", "ENR"); })
      ->Unit(benchmark::kMillisecond);
  // Throughput vs width on the paper's central workload: full sweep for
  // the ACSR engine, anchor widths for the CSR baselines.
  for (const int width : {1, 2, 4, 8, 16, 32, 64}) {
    benchmark::RegisterBenchmark(
        (std::string("spmm_executor/acsr/WIK/w") + std::to_string(width))
            .c_str(),
        [width](benchmark::State& st) {
          BM_SpmmExecutor(st, "acsr", "WIK", width);
        })
        ->Unit(benchmark::kMillisecond);
  }
  for (const char* e : {"csr-scalar", "csr-vector"}) {
    for (const int width : {1, 8, 32}) {
      benchmark::RegisterBenchmark(
          (std::string("spmm_executor/") + e + "/WIK/w" +
           std::to_string(width))
              .c_str(),
          [e, width](benchmark::State& st) {
            BM_SpmmExecutor(st, e, "WIK", width);
          })
          ->Unit(benchmark::kMillisecond);
    }
  }
  for (const int mw : {1, 32}) {
    benchmark::RegisterBenchmark(
        (std::string("serve_scheduler/acsr/WIK/w") + std::to_string(mw))
            .c_str(),
        [mw](benchmark::State& st) { BM_ServeScheduler(st, mw); })
        ->Unit(benchmark::kMillisecond);
  }
  // Out-of-core sweep: budget from half the WIK footprint (2 slabs) down
  // to 1/16 (deep streaming) — items/s shows what the storage plane costs
  // the executor, the counters show what the simulated overlap buys back.
  for (const int divisor : {2, 4, 16}) {
    benchmark::RegisterBenchmark(
        (std::string("ooc_executor/ooc-csr/WIK/b") + std::to_string(divisor))
            .c_str(),
        [divisor](benchmark::State& st) { BM_OocExecutor(st, divisor); })
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::RegisterBenchmark("warp_gather/affine", BM_WarpGatherAffine)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("warp_gather/scatter", BM_WarpGatherScatter)
      ->Unit(benchmark::kMillisecond);
  for (const bool memo : {false, true}) {
    const char* suffix = memo ? "/memo" : "";
    benchmark::RegisterBenchmark(
        (std::string("app_solver/pagerank/WIK") + suffix).c_str(),
        [memo](benchmark::State& st) { BM_AppPagerank(st, memo); })
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        (std::string("app_solver/cg/WIK") + suffix).c_str(),
        [memo](benchmark::State& st) { BM_AppCg(st, memo); })
        ->Unit(benchmark::kMillisecond);
  }
}

/// Post-measurement profiled replay: one SpMV per benched engine/matrix
/// pair under the profiler, folded into one metrics document keyed
/// "<engine>/<matrix>".
int write_metrics(const std::string& path) {
  acsr::prof::set_profiler_enabled(true);
  acsr::prof::Profiler& prof = acsr::prof::Profiler::instance();
  prof.clear();
  auto one = [&](const char* engine, const char* matrix) {
    acsr::prof::ScopedContext ctx(std::string(engine) + "/" + matrix);
    Device dev(titan_spec());
    auto e = make_engine<double>(engine, dev, corpus_matrix(matrix),
                                 engine_config());
    std::vector<double> x(static_cast<std::size_t>(e->cols()), 1.0);
    std::vector<double> y;
    e->simulate(x, y);
  };
  for (const char* e : kEngines) one(e, "WIK");
  one("csr-scalar", "ENR");
  const acsr::json::Value doc =
      acsr::prof::metrics_doc(prof.launches(), prof.retry_backoff_s());
  acsr::prof::set_profiler_enabled(false);
  std::ofstream out(path);
  if (!out) {
    std::cerr << "bench_wallclock: cannot write " << path << "\n";
    return 1;
  }
  out << acsr::json::dump(doc, 1) << "\n";
  std::cout << "bench_wallclock: wrote per-metric JSON to " << path << "\n";
  return out.good() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  // Translate our --quick flag into short measurement windows before
  // google-benchmark parses the command line.
  std::vector<char*> args;
  static char min_time[] = "--benchmark_min_time=0.02";
  bool quick = false;
  std::string metrics_out;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
      continue;
    }
    if (std::strcmp(argv[i], "--metrics_out") == 0 && i + 1 < argc) {
      metrics_out = argv[++i];
      continue;
    }
    if (std::strncmp(argv[i], "--metrics_out=", 14) == 0) {
      metrics_out = argv[i] + 14;
      continue;
    }
    args.push_back(argv[i]);
  }
  if (quick) args.insert(args.begin() + 1, min_time);
  int n = static_cast<int>(args.size());
  register_benches();
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!metrics_out.empty()) return write_metrics(metrics_out);
  return 0;
}
