// Figure 6: speedup of ACSR over CSR and HYB inside the three graph-mining
// applications (PageRank top, HITS center, RWR bottom), with the number of
// iterations to convergence per matrix. Run all three by default or pick
// one with --app=pagerank|hits|rwr.
#include "apps/hits.hpp"
#include "apps/pagerank.hpp"
#include "apps/rwr.hpp"
#include "bench/bench_common.hpp"

namespace {

using namespace acsr;

struct AppRow {
  int iterations = 0;
  double speedup_vs_csr = 0.0;
  double speedup_vs_hyb = 0.0;
  bool oom = false;
};

/// Total app time with a given engine = iterations x (SpMV + aux vector
/// kernels); iterations are identical across engines (same math), so the
/// speedups reduce to per-iteration step-time ratios — matching the
/// paper's protocol of excluding H2D copies and HYB transformation.
template <class T>
AppRow run_app(const bench::BenchContext& ctx, const graph::CorpusEntry& e,
               const std::string& app) {
  AppRow row;
  try {
    const mat::Csr<T> adj = ctx.build<T>(e);
    mat::Csr<T> operand;
    if (app == "pagerank") {
      operand = apps::pagerank_matrix(adj);
    } else if (app == "hits") {
      operand = mat::make_hits_matrix(adj);
    } else {
      operand = apps::rwr_matrix(adj);
    }

    double total[3] = {0, 0, 0};  // acsr, csr, hyb
    int iterations = 0;
    const char* fmts[3] = {"acsr", "csr", "hyb"};
    for (int i = 0; i < 3; ++i) {
      vgpu::Device dev(ctx.spec);
      auto engine =
          core::make_engine<T>(fmts[i], dev, operand, ctx.engine_cfg);
      if (app == "pagerank") {
        const auto r = apps::pagerank(*engine, apps::PageRankConfig{});
        total[i] = r.total_s;
        iterations = r.iterations;
      } else if (app == "hits") {
        const auto r = apps::hits(*engine, apps::PowerIterConfig{});
        total[i] = r.iteration.total_s;
        iterations = r.iteration.iterations;
      } else {
        apps::RwrConfig cfg;
        cfg.source = 0;
        const auto r = apps::rwr(*engine, cfg);
        total[i] = r.total_s;
        iterations = r.iterations;
      }
    }
    row.iterations = iterations;
    row.speedup_vs_csr = total[1] / total[0];
    row.speedup_vs_hyb = total[2] / total[0];
  } catch (const vgpu::DeviceOom&) {
    row.oom = true;
  }
  return row;
}

void run_one(const bench::BenchContext& ctx, const std::string& app) {
  std::cout << "--- Fig. 6 (" << app
            << "): ACSR speedup over CSR and HYB ---\n";
  Table t({"Matrix", "iterations", "vs CSR", "vs HYB"});
  double s_csr = 0, s_hyb = 0;
  int n = 0;
  for (const auto& e : ctx.matrices) {
    if (e.paper_rows != e.paper_cols) continue;  // apps need square matrices
    const AppRow r = run_app<double>(ctx, e, app);
    if (r.oom) {
      t.add_row({e.abbrev, "OOM", "-", "-"});
      continue;
    }
    t.add_row({e.abbrev, Table::integer(r.iterations),
               Table::num(r.speedup_vs_csr, 2),
               Table::num(r.speedup_vs_hyb, 2)});
    s_csr += r.speedup_vs_csr;
    s_hyb += r.speedup_vs_hyb;
    ++n;
  }
  if (n > 0)
    t.add_row({"AVG", "-", Table::num(s_csr / n, 2),
               Table::num(s_hyb / n, 2)});
  t.print();
  std::cout << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto ctx = bench::BenchContext::from_cli(cli);
  ctx.print_header("Fig. 6: graph-mining applications");
  const std::string app = cli.get_or("app", "all");
  if (app == "all") {
    for (const char* a : {"pagerank", "hits", "rwr"}) run_one(ctx, a);
  } else {
    run_one(ctx, app);
  }
  return 0;
}
