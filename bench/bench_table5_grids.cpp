// Table V: how many bin-specific (BS) and row-specific (RS) grids one ACSR
// SpMV launches per matrix on the GTX Titan.
#include "bench/bench_common.hpp"

int main(int argc, char** argv) {
  using namespace acsr;
  const Cli cli(argc, argv);
  const auto ctx = bench::BenchContext::from_cli(cli);
  ctx.print_header("Table V: grids launched by ACSR per SpMV");

  Table t({"Matrix", "BS", "RS", "DP rows capped at RowMax?"});
  for (const auto& e : ctx.matrices) {
    try {
      vgpu::Device dev(ctx.spec);
      const auto m = ctx.build<float>(e);
      core::AcsrEngine<float> engine(dev, m, ctx.engine_cfg.acsr);
      t.add_row({e.abbrev, Table::integer(engine.bin_grids()),
                 Table::integer(engine.row_grids()),
                 engine.row_grids() ==
                         engine.binning().options.row_max
                     ? "yes"
                     : "no"});
    } catch (const vgpu::DeviceOom&) {
      t.add_row({e.abbrev, "OOM", "OOM", "-"});
    }
  }
  t.print();
  std::cout << "\nRS counts stay within the pending-launch limit ("
            << ctx.spec.pending_launch_limit << ").\n";
  return 0;
}
