// Figure 8: dual-GPU ACSR on the Tesla K10 (two GK104 dies). Each bin's
// rows are dealt evenly across the devices; the speedup over one die is
// reported for single and double precision. Matrices without enough work
// to saturate both dies (ENR, INT, ...) do not scale — the paper's point.
#include "bench/bench_common.hpp"
#include <memory>

#include "core/multi_gpu.hpp"

namespace {

using namespace acsr;

template <class T>
std::string scaling_cell(const bench::BenchContext& ctx,
                         const graph::CorpusEntry& e) {
  try {
    const auto m = ctx.build<T>(e);
    vgpu::Device single(ctx.spec);
    core::AcsrEngine<T> one(single, m, ctx.engine_cfg.acsr);
    vgpu::Device d0(ctx.spec), d1(ctx.spec);
    core::MultiGpuAcsr<T> two({&d0, &d1}, m, ctx.engine_cfg.acsr);
    std::vector<T> x(static_cast<std::size_t>(m.cols), T{1}), y;
    const double t1 = one.simulate(x, y);
    const double t2 = two.simulate(x, y);
    return Table::num(t1 / t2, 2);
  } catch (const vgpu::DeviceOom&) {
    return "OOM";
  }
}

}  // namespace

namespace {

/// Extension: the paper notes its per-bin split "can be used with any
/// number of GPUs" — sweep 1/2/4 simulated dies on one large matrix.
void scaling_sweep(const acsr::bench::BenchContext& ctx) {
  using namespace acsr;
  std::cout << "--- extension: scaling beyond two dies (UK2) ---\n";
  const auto m = ctx.build<float>(graph::corpus_entry("UK2"));
  vgpu::Device single(ctx.spec);
  core::AcsrEngine<float> one(single, m, ctx.engine_cfg.acsr);
  std::vector<float> x(static_cast<std::size_t>(m.cols), 1.0f), y;
  const double t1 = one.simulate(x, y);
  Table t({"devices", "SpMV us", "speedup"});
  t.add_row({"1", Table::num(t1 * 1e6, 2), "1.00"});
  for (int n : {2, 4}) {
    std::vector<std::unique_ptr<vgpu::Device>> devs;
    std::vector<vgpu::Device*> ptrs;
    for (int d = 0; d < n; ++d) {
      devs.push_back(std::make_unique<vgpu::Device>(ctx.spec));
      ptrs.push_back(devs.back().get());
    }
    core::MultiGpuAcsr<float> multi(ptrs, m, ctx.engine_cfg.acsr);
    const double tn = multi.simulate(x, y);
    t.add_row({Table::integer(n), Table::num(tn * 1e6, 2),
               Table::num(t1 / tn, 2)});
  }
  t.print();
  std::cout << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto ctx = bench::BenchContext::from_cli(cli, "k10");
  ctx.print_header(
      "Fig. 8: dual-GPU ACSR speedup over a single GPU (Tesla K10)");

  Table t({"Matrix", "speedup sp", "speedup dp"});
  double s_sp = 0, s_dp = 0;
  int n = 0;
  for (const auto& e : ctx.matrices) {
    const std::string sp = scaling_cell<float>(ctx, e);
    const std::string dp = scaling_cell<double>(ctx, e);
    t.add_row({e.abbrev, sp, dp});
    if (sp != "OOM") {
      s_sp += std::stod(sp);
      s_dp += std::stod(dp);
      ++n;
    }
  }
  if (n > 0)
    t.add_row({"AVG", Table::num(s_sp / n, 2), Table::num(s_dp / n, 2)});
  t.print();
  std::cout << "\nPaper: 1.64x / 1.68x average (sp / dp); near-2x on large "
               "matrices, no benefit on matrices too small to saturate one "
               "die.\n\n";
  scaling_sweep(ctx);
  return 0;
}
