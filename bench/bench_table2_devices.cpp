// Table II: the simulated GPUs, mirroring the paper's device table, plus
// the simulator's model parameters for transparency.
#include "bench/bench_common.hpp"

int main(int, char**) {
  using namespace acsr;
  using vgpu::DeviceSpec;
  std::cout << "=== Table II: GPU devices (simulated) ===\n\n";
  Table t({"Device", "Arch", "CC", "SMs", "Cores/SM", "Clock GHz",
           "BW GB/s", "Mem GB", "DP ratio", "Dyn. par."});
  for (const auto& s : {DeviceSpec::gtx580(), DeviceSpec::tesla_k10(),
                        DeviceSpec::gtx_titan()}) {
    t.add_row({s.name,
               s.compute_major == 2 ? "Fermi" : "Kepler",
               std::to_string(s.compute_major) + "." +
                   std::to_string(s.compute_minor),
               Table::integer(s.sm_count), Table::integer(s.cores_per_sm),
               Table::num(s.clock_ghz, 3), Table::num(s.dram_bandwidth_gbs, 1),
               Table::num(static_cast<double>(s.global_mem_bytes) / (1 << 30),
                          0),
               "1/" + Table::num(1.0 / s.dp_throughput_ratio, 0),
               s.supports_dynamic_parallelism() ? "yes" : "no"});
  }
  t.print();
  std::cout << "\nTesla K10 has two GK104 dies per card; the row above is "
               "one die (section VIII uses both).\n";
  return 0;
}
