// Table III: speed-up of ACSR over BCCOO, BRC, TCOO and HYB when
// performing a *single* SpMV — i.e. including each format's preprocessing,
// which is where the transformed formats lose by orders of magnitude.
// Single precision, GTX Titan, as in the paper.
#include "bench/comparators.hpp"

int main(int argc, char** argv) {
  using namespace acsr;
  using bench::FormatTimes;
  const Cli cli(argc, argv);
  const auto ctx = bench::BenchContext::from_cli(cli);
  ctx.print_header(
      "Table III: ACSR speedup for ONE SpMV (preprocessing + SpMV)");

  Table t({"Matrix", "vs BCCOO", "vs BRC", "vs TCOO", "vs HYB"});
  GeoMean g_bccoo, g_brc, g_tcoo, g_hyb;
  for (const auto& e : ctx.matrices) {
    const FormatTimes acsr = bench::measure_format(ctx, e, "acsr");
    auto cell = [&](const std::string& fmt, GeoMean& gm) -> std::string {
      const FormatTimes f = bench::measure_format(ctx, e, fmt);
      if (f.oom || acsr.oom) return "OOM";
      const double speedup =
          (f.pre_s + f.spmv_s) / (acsr.pre_s + acsr.spmv_s);
      gm.add(speedup);
      return Table::num(speedup, 1);
    };
    t.add_row({e.abbrev, cell("bccoo", g_bccoo), cell("brc", g_brc),
               cell("tcoo", g_tcoo), cell("hyb", g_hyb)});
  }
  t.add_row({"GEOMEAN", Table::num(g_bccoo.value(), 1),
             Table::num(g_brc.value(), 1), Table::num(g_tcoo.value(), 1),
             Table::num(g_hyb.value(), 1)});
  t.print();
  std::cout << "\nPaper shape: very large speedups against BCCOO/TCOO "
               "(auto-tuning / exhaustive search), large against BRC "
               "(sort + restructure), moderate against HYB.\n";
  return 0;
}
