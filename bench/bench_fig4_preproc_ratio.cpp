// Figure 4: the ratio of preprocessing overhead to the time of ONE SpMV,
// per format. The paper's averages: BCCOO ~161k x, TCOO ~3k x, BRC ~87 x,
// HYB ~21 x, ACSR ~3 x.
#include "bench/comparators.hpp"

int main(int argc, char** argv) {
  using namespace acsr;
  using bench::FormatTimes;
  const Cli cli(argc, argv);
  const auto ctx = bench::BenchContext::from_cli(cli);
  ctx.print_header("Fig. 4: preprocessing time / one-SpMV time");

  const auto& formats = bench::comparator_formats();
  std::vector<std::string> header = {"Matrix"};
  for (const auto& f : formats) header.push_back(f);
  Table t(header);
  std::vector<GeoMean> means(formats.size());

  for (const auto& e : ctx.matrices) {
    std::vector<std::string> row = {e.abbrev};
    for (std::size_t i = 0; i < formats.size(); ++i) {
      const FormatTimes ft = bench::measure_format(ctx, e, formats[i]);
      if (ft.oom) {
        row.push_back("OOM");
        continue;
      }
      const double ratio = ft.pre_s / ft.spmv_s;
      means[i].add(std::max(ratio, 1e-3));
      row.push_back(Table::num(ratio, 1));
    }
    t.add_row(row);
  }
  std::vector<std::string> avg = {"GEOMEAN"};
  for (auto& m : means) avg.push_back(Table::num(m.value(), 1));
  t.add_row(avg);
  t.print();
  std::cout << "\nPaper averages: BCCOO 161000, TCOO 3000, BRC 87, HYB 21, "
               "ACSR 3 (x one SpMV).\n";
  return 0;
}
