#!/usr/bin/env bash
# Reproduce every result in the repository from scratch:
#   ./reproduce.sh [--quick] [results_dir]
# Builds, runs the full test suite, regenerates every table and figure
# (one file per bench), and runs each example. Set ACSR_SCALE to change
# the corpus reduction factor (default 64; smaller = bigger matrices).
#
# --quick: build + tier-1 tests + the static-verifier label
# (docs/ANALYSIS.md) + the fixed-seed differential fuzz harness + the
# fault-injection label only (the CI gate; see docs/TESTING.md). No
# benches/examples.
#
# Every stage's exit code is checked explicitly (on top of `set -e` /
# `pipefail`): a red test suite, a crashed bench, or a failed example
# fails the whole reproduction with a message naming the stage.
set -euo pipefail

# run_stage <name> <logfile> <cmd...>: tee the stage's output, keep the
# stage's own exit code (not tee's / tail's), and fail loudly.
run_stage() {
  local name="$1" logfile="$2"
  shift 2
  local status=0
  # pipefail is on: a failing stage surfaces through the tee/tail pipe.
  "$@" 2>&1 | tee "$logfile" | tail -2 || status=$?
  if [ "$status" -ne 0 ]; then
    echo "reproduce.sh: stage '$name' failed (exit $status) — see $logfile" >&2
    exit "$status"
  fi
}

quick=0
if [ "${1:-}" = "--quick" ]; then
  quick=1
  shift
fi

out="${1:-results}"
mkdir -p "$out"

echo "== configure + build"
if [ -f build/CMakeCache.txt ]; then
  cmake -B build > "$out/cmake.log"  # reuse the cached generator
else
  cmake -B build -G Ninja > "$out/cmake.log"
fi
cmake --build build >> "$out/cmake.log"

if [ "$quick" = 1 ]; then
  echo "== tier-1 tests"
  run_stage "tier-1 tests" "$out/tests_tier1.txt" \
    ctest --test-dir build -L tier1
  echo "== static analysis suite (docs/ANALYSIS.md)"
  run_stage "static analysis suite" "$out/tests_analysis.txt" \
    ctest --test-dir build -L analysis
  echo "== differential fuzz (seed ${ACSR_FUZZ_SEED:-2014})"
  run_stage "differential fuzz" "$out/tests_fuzz.txt" \
    ctest --test-dir build -L fuzz
  echo "== fault-injection suite (docs/RESILIENCE.md)"
  run_stage "fault-injection suite" "$out/tests_faults.txt" \
    ctest --test-dir build -L faults
  echo "done — quick gate passed, outputs in $out/"
  exit 0
fi

echo "== tests"
run_stage "full test suite" "$out/tests.txt" ctest --test-dir build

echo "== tables & figures"
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  name="$(basename "$b")"
  echo "   $name"
  "$b" > "$out/$name.txt" 2>&1 || {
    echo "reproduce.sh: bench '$name' failed (exit $?) — see $out/$name.txt" >&2
    exit 1
  }
done
# The per-device Fig. 5 variants.
build/bench/bench_fig5_gflops --device=gtx580 > "$out/bench_fig5_gflops.gtx580.txt"
build/bench/bench_fig5_gflops --device=k10 > "$out/bench_fig5_gflops.k10.txt"

echo "== examples"
for e in build/examples/*; do
  [ -f "$e" ] && [ -x "$e" ] || continue
  name="$(basename "$e")"
  echo "   $name"
  "$e" > "$out/example_$name.txt" 2>&1 || {
    echo "reproduce.sh: example '$name' failed (exit $?) — see $out/example_$name.txt" >&2
    exit 1
  }
done

echo "done — outputs in $out/ (compare against EXPERIMENTS.md)"
