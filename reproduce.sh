#!/usr/bin/env bash
# Reproduce every result in the repository from scratch:
#   ./reproduce.sh [--quick] [results_dir]
# Builds, runs the full test suite, regenerates every table and figure
# (one file per bench), and runs each example. Set ACSR_SCALE to change
# the corpus reduction factor (default 64; smaller = bigger matrices).
#
# --quick: build + tier-1 tests + the fixed-seed differential fuzz
# harness only (the CI gate; see docs/TESTING.md). No benches/examples.
set -euo pipefail

quick=0
if [ "${1:-}" = "--quick" ]; then
  quick=1
  shift
fi

out="${1:-results}"
mkdir -p "$out"

echo "== configure + build"
if [ -f build/CMakeCache.txt ]; then
  cmake -B build > "$out/cmake.log"  # reuse the cached generator
else
  cmake -B build -G Ninja > "$out/cmake.log"
fi
cmake --build build >> "$out/cmake.log"

if [ "$quick" = 1 ]; then
  echo "== tier-1 tests"
  ctest --test-dir build -L tier1 2>&1 | tee "$out/tests_tier1.txt" | tail -2
  echo "== differential fuzz (seed ${ACSR_FUZZ_SEED:-2014})"
  ctest --test-dir build -L fuzz 2>&1 | tee "$out/tests_fuzz.txt" | tail -2
  echo "done — quick gate passed, outputs in $out/"
  exit 0
fi

echo "== tests"
ctest --test-dir build 2>&1 | tee "$out/tests.txt" | tail -2

echo "== tables & figures"
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  name="$(basename "$b")"
  echo "   $name"
  "$b" > "$out/$name.txt" 2>&1
done
# The per-device Fig. 5 variants.
build/bench/bench_fig5_gflops --device=gtx580 > "$out/bench_fig5_gflops.gtx580.txt"
build/bench/bench_fig5_gflops --device=k10 > "$out/bench_fig5_gflops.k10.txt"

echo "== examples"
for e in build/examples/*; do
  [ -f "$e" ] && [ -x "$e" ] || continue
  name="$(basename "$e")"
  echo "   $name"
  "$e" > "$out/example_$name.txt" 2>&1
done

echo "done — outputs in $out/ (compare against EXPERIMENTS.md)"
