#!/usr/bin/env bash
# Repo lint gate (run by scripts/check.sh as part of the analysis stage).
# Four rules the static verifier's and profiler's soundness stories lean on:
#
#   1. Every header under src/ carries #pragma once.
#   2. No raw .data() escapes outside the three files allowed to flatten
#      to a pointer (src/vgpu/memory.hpp defines spans; warp.hpp's metered
#      fast paths and storage/tier.hpp's byte-plane make_segment are the
#      audited exceptions). Everything else must go through the
#      bounds-checked span interface the verifier models.
#   3. Counters parity: every field of vgpu::Counters is both merged in
#      counters.hpp (declaration + operator+=) and actually metered
#      somewhere in the engine (warp.hpp / device.cpp / kernel.cpp), so
#      the executor fast path and the reference path cannot silently
#      diverge on a field.
#   4. Observability parity: every Counters field has a registered
#      passthrough metric ("counters.<field>") in src/prof/metrics.cpp, so
#      a new counter cannot ship invisible to acsr_prof / --diff. The same
#      parity covers the serving plane: every prof::TenantAgg billing field
#      must have a "tenant.<field>" passthrough, so a new billing column
#      cannot ship invisible to acsr_prof --tenants. And the storage
#      plane: every prof::IoAgg field must have an "io.<field>"
#      passthrough, so a new out-of-core counter cannot ship invisible
#      to acsr_prof --ooc.
set -u
cd "$(dirname "$0")/.."

fail=0

# --- rule 1: #pragma once in every header -----------------------------------
while IFS= read -r h; do
  if ! grep -q '^#pragma once' "$h"; then
    echo "lint: missing '#pragma once': $h"
    fail=1
  fi
done < <(find src -name '*.hpp')

# --- rule 2: .data() only in the span layer ----------------------------------
while IFS= read -r line; do
  f=${line%%:*}
  case "$f" in
    src/vgpu/memory.hpp|src/vgpu/warp.hpp|src/storage/tier.hpp) ;;
    *)
      echo "lint: raw .data() outside the span layer: $line"
      fail=1
      ;;
  esac
done < <(grep -rn '\.data()' src --include='*.hpp' --include='*.cpp')

# --- rule 3: Counters parity --------------------------------------------------
fields=$(sed -n 's/^ *std::uint64_t \([a-z_][a-z_0-9]*\) = 0;.*/\1/p' \
  src/vgpu/counters.hpp)
if [ -z "$fields" ]; then
  echo "lint: could not parse any Counters fields from src/vgpu/counters.hpp"
  fail=1
fi
for f in $fields; do
  in_hpp=$(grep -c "\b$f\b" src/vgpu/counters.hpp)
  if [ "$in_hpp" -lt 2 ]; then
    echo "lint: Counters::$f declared but not merged in counters.hpp" \
         "(operator+= missing it?)"
    fail=1
  fi
  metered=$(cat src/vgpu/warp.hpp src/vgpu/device.cpp src/vgpu/kernel.cpp |
    grep -c "\b$f\b")
  if [ "$metered" -lt 1 ]; then
    echo "lint: Counters::$f is never metered" \
         "(warp.hpp / device.cpp / kernel.cpp)"
    fail=1
  fi
done

# --- rule 4: every Counters field has a registered metric ---------------------
# Passthroughs are registered either via the ACSR_COUNTER_METRIC(field, ...)
# macro or a literal "counters.<field>" name.
for f in $fields; do
  if ! grep -Eq "ACSR_COUNTER_METRIC\($f[,)]|counters\.$f\b" \
       src/prof/metrics.cpp; then
    echo "lint: Counters::$f has no 'counters.$f' passthrough metric" \
         "registered in src/prof/metrics.cpp"
    fail=1
  fi
done

# The serving mirror: TenantAgg fields (uint64 and double) -> "tenant.<f>".
tenant_fields=$(sed -n '/^struct TenantAgg {$/,/^};$/p' src/prof/metrics.hpp |
  sed -n 's/^ *\(std::uint64_t\|double\) \([a-z_][a-z_0-9]*\) = .*/\2/p')
if [ -z "$tenant_fields" ]; then
  echo "lint: could not parse any TenantAgg fields from src/prof/metrics.hpp"
  fail=1
fi
for f in $tenant_fields; do
  if ! grep -Eq "ACSR_TENANT_METRIC\($f[,)]|\"tenant\.$f\"" \
       src/prof/metrics.cpp; then
    echo "lint: TenantAgg::$f has no 'tenant.$f' passthrough metric" \
         "registered in src/prof/metrics.cpp"
    fail=1
  fi
done

# The storage mirror: IoAgg fields (uint64 and double) -> "io.<f>".
io_fields=$(sed -n '/^struct IoAgg {$/,/^};$/p' src/prof/metrics.hpp |
  sed -n 's/^ *\(std::uint64_t\|double\) \([a-z_][a-z_0-9]*\) = .*/\2/p')
if [ -z "$io_fields" ]; then
  echo "lint: could not parse any IoAgg fields from src/prof/metrics.hpp"
  fail=1
fi
for f in $io_fields; do
  if ! grep -Eq "ACSR_IO_METRIC\($f[,)]|\"io\.$f\"" \
       src/prof/metrics.cpp; then
    echo "lint: IoAgg::$f has no 'io.$f' passthrough metric" \
         "registered in src/prof/metrics.cpp"
    fail=1
  fi
done

if [ "$fail" -eq 0 ]; then
  echo "lint: all checks passed"
fi
exit "$fail"
