#!/usr/bin/env bash
# Repo lint gate — a thin wrapper over `acsr_audit --lint`.
#
# The four rules (pragma-once, .data() confinement, Counters metering
# parity, metrics passthrough parity) used to live here as grep/sed; they
# are now implemented token-level in src/analysis/audit_passes.cpp (no
# comment/string false positives) and shipped inside the acsr_audit
# binary. This wrapper only locates the binary so `scripts/lint.sh`
# keeps working as a standalone entry point.
#
# Usage: scripts/lint.sh [build_dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

build="${1:-build}"
audit="$build/tools/acsr_audit"

if [ ! -x "$audit" ]; then
  echo "lint: $audit not built — run: cmake --build $build --target acsr_audit" >&2
  exit 2
fi

exec "$audit" --lint --root=.
