#!/usr/bin/env bash
# CI gate: configure, build, run the tier-1 test label (timed — executor
# wall-clock is a tracked quantity, see docs/PERF.md), the cross-engine
# differential fuzz harness at a fixed seed, the fault-injection matrix
# (one representative ACSR_FAULTS plan per fault class through the
# FaultEnv smoke — see docs/RESILIENCE.md — plus ctest -L faults), the
# out-of-core storage matrix (one io fault plan per class through the
# OocEnv smoke under a sub-footprint device budget — see docs/OOC.md), a
# profiler smoke (trace JSON validated, model metrics diffed against the
# committed PROF_baseline.json — see docs/OBSERVABILITY.md), then a quick
# wall-clock bench smoke (does-it-run only; bench.sh refuses to fold
# quick-mode numbers into the full-mode BENCH_wallclock.json). Fails on
# the first broken step. See docs/TESTING.md for the label scheme.
#
# Usage: scripts/check.sh [build_dir]
set -euo pipefail

cd "$(dirname "$0")/.."
build="${1:-build}"

echo "== configure"
# CI (ACSR_CI=1) promotes warnings to errors; local runs stay permissive.
werror=()
if [ "${ACSR_CI:-0}" = "1" ]; then werror=(-DACSR_WERROR=ON); fi
if [ -f "$build/CMakeCache.txt" ]; then
  cmake -B "$build" "${werror[@]}"  # reuse the cached generator
else
  cmake -B "$build" -G Ninja "${werror[@]}"
fi

echo "== build"
cmake --build "$build"

echo "== analysis (scripts/lint.sh + acsr_verify --all)"
scripts/lint.sh "$build"
"$build/tools/acsr_verify" --all

# The audit tier (docs/ANALYSIS.md): charge parity + causality over the
# full engine x device matrix, cross-plane joins, fault-taxonomy
# exhaustiveness, gate discipline, and both seeded defect corpora. The
# JSON report is the machine interface; findings are fatal under
# ACSR_CI=1 and a loud warning otherwise (mirroring the clang-tidy gate).
echo "== audit (acsr_audit --all --report=json)"
audit_json="$(mktemp --suffix=.json)"
audit_rc=0
"$build/tools/acsr_audit" --all --root=. --report=json >"$audit_json" \
  || audit_rc=$?
python3 - "$audit_json" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
s = doc["summary"]
print(f"   {s['engine_cells']} engine cells, {s['planes']} planes,"
      f" {s['taxonomy_types']} fault types, {s['gate_sites']} gate sites,"
      f" {s['defects_flagged']}/{s['defects_expected']} defects flagged")
for f in doc["findings"]:
    print(f"   [{f['kind']}] {f['plane']}: {f['subject']} — {f['detail']}")
PY
rm -f "$audit_json"
if [ "$audit_rc" -ne 0 ]; then
  if [ "${ACSR_CI:-0}" = "1" ]; then
    echo "check.sh: acsr_audit found problems (fatal under ACSR_CI=1)"
    exit "$audit_rc"
  fi
  echo "check.sh: WARNING: acsr_audit found problems (fatal under ACSR_CI=1)"
fi

echo "== clang-tidy (non-fatal unless ACSR_CI=1)"
if command -v clang-tidy >/dev/null 2>&1; then
  tidy_files=$(git ls-files 'src/*.cpp' 'tools/*.cpp')
  if [ "${ACSR_CI:-0}" = "1" ]; then
    clang-tidy -p "$build" $tidy_files
  else
    clang-tidy -p "$build" $tidy_files || true
  fi
else
  echo "   clang-tidy not installed; skipping"
fi

echo "== tier-1 tests (ctest -L tier1)"
tier1_start=$SECONDS
ctest --test-dir "$build" -L tier1 --output-on-failure
echo "check.sh: tier-1 suite took $((SECONDS - tier1_start))s"

# Sanitizer preset (docs/TESTING.md): under ACSR_CI=1, rebuild with
# -fsanitize=address,undefined (the ACSR_ASAN CMake option) in a separate
# tree and run the tier-1 label under it. The simulator is pure host C++,
# so ASan/UBSan see every buffer the virtual GPU touches.
if [ "${ACSR_CI:-0}" = "1" ]; then
  echo "== sanitizer tier-1 (ASan+UBSan, ${build}-asan)"
  if [ -f "$build-asan/CMakeCache.txt" ]; then
    cmake -B "$build-asan" -DACSR_ASAN=ON "${werror[@]}"
  else
    cmake -B "$build-asan" -G Ninja -DACSR_ASAN=ON "${werror[@]}"
  fi
  cmake --build "$build-asan"
  ctest --test-dir "$build-asan" -L tier1 --output-on-failure
fi

# The memo plane (docs/PERF.md) must hold the metering contract whether the
# process starts with the cache enabled or disabled: the invariance matrix
# and the memo unit tests run under both values of ACSR_MEMO.
echo "== memo plane (metering invariance + memo tests, ACSR_MEMO=0 and 1)"
for memo in 0 1; do
  echo "   ACSR_MEMO=$memo"
  ACSR_MEMO=$memo "$build/tests/test_metering_invariance" \
    --gtest_brief=1
  ACSR_MEMO=$memo "$build/tests/test_memo" --gtest_brief=1
done

# The batched SpMM + serving plane (docs/SERVING.md): exactness across all
# engines, the width-1/8/32 sector-byte amortization ladder, scheduler
# coalescing/admission/priority, and the width-keyed memo contract — run
# with the memo plane both off and on, since width-1 batches must share
# the scalar "spmv" memo key in either world.
echo "== spmm + serving plane (test_spmm, ACSR_MEMO=0 and 1)"
for memo in 0 1; do
  echo "   ACSR_MEMO=$memo"
  ACSR_MEMO=$memo "$build/tests/test_spmm" --gtest_brief=1
done

echo "== differential fuzz (seed ${ACSR_FUZZ_SEED:-2014}, ${ACSR_FUZZ_MATRICES:-200} matrices)"
ACSR_FUZZ_SEED="${ACSR_FUZZ_SEED:-2014}" \
ACSR_FUZZ_MATRICES="${ACSR_FUZZ_MATRICES:-200}" \
  ctest --test-dir "$build" -L fuzz --output-on-failure

echo "== fault-injection matrix (one plan per fault class)"
fault_plans=(
  "oom@alloc#1"
  "transient@launch#1"
  "ecc@launch#2:seed=7"
  "corrupt@transfer#1"
  "stall@transfer#1:ms=20"
  "lost@launch#2"
)
for plan in "${fault_plans[@]}"; do
  echo "   ACSR_FAULTS=\"$plan\""
  ACSR_FAULTS="$plan" "$build/tests/test_faults" \
    --gtest_filter='FaultEnv.*' --gtest_brief=1
done
ctest --test-dir "$build" -L faults --output-on-failure

# The out-of-core tier (docs/OOC.md): one representative plan per storage
# fault class through the OocEnv smoke, which solves under a device budget
# smaller than the matrix footprint and requires either a bitwise-clean
# recovery or a typed IoError escalation.
echo "== out-of-core storage matrix (one plan per io fault class)"
ooc_plans=(
  "io_transient@read#1"
  "io_timeout@read#1:ms=20"
  "io_checksum@read#1:seed=5"
  "io_degrade@read#1*3:x=4"
)
for plan in "${ooc_plans[@]}"; do
  echo "   ACSR_FAULTS=\"$plan\""
  ACSR_FAULTS="$plan" "$build/tests/test_ooc" \
    --gtest_filter='OocEnv.*' --gtest_brief=1
done

echo "== profiler smoke (acsr_prof trace + metric drift vs PROF_baseline.json)"
prof_trace="$(mktemp --suffix=.json)"
trap 'rm -f "$prof_trace"' EXIT
# One engine exercises the whole pipeline: env-gated enable, per-SM/child
# trace export, schema-valid JSON.
ACSR_TRACE="$prof_trace" "$build/tools/acsr_prof" --quiet --engine acsr
python3 - "$prof_trace" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
events = doc["traceEvents"]
assert events, "empty traceEvents"
for ev in events:
    assert {"name", "ph", "pid", "tid"} <= ev.keys(), ev
print(f"   trace ok: {len(events)} events")
PY
# Model metrics are bit-reproducible, so drift vs the committed baseline
# means the cost model changed. Warn loudly (non-fatal: re-record the
# baseline with `tools/acsr_prof --out PROF_baseline.json` when the
# change is intentional).
if ! "$build/tools/acsr_prof" --quiet --diff PROF_baseline.json; then
  echo "check.sh: WARNING: profiler metrics drifted >10% vs PROF_baseline.json"
  echo "check.sh: (intentional model change? re-record with:" \
       "$build/tools/acsr_prof --out PROF_baseline.json)"
fi

echo "== slo smoke (acsr_slo trace + --check vs slo.json)"
slo_trace="$(mktemp --suffix=.json)"
trap 'rm -f "$prof_trace" "$slo_trace"' EXIT
# A faulted multi-tenant run crosses serve -> engine -> storage: the
# trace must carry slo:* tracks (request spans) alongside the profiler's
# own, and the span export must stay schema-valid under ACSR_FAULTS.
ACSR_FAULTS="io_transient@read#2*2" ACSR_TRACE="$slo_trace" \
  "$build/tools/acsr_slo" --quiet --engine ooc-csr --tenants 4 \
  --trace "$slo_trace"
python3 - "$slo_trace" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
events = doc["traceEvents"]
assert events, "empty traceEvents"
slo_tracks = set()
for ev in events:
    assert {"name", "ph", "pid", "tid"} <= ev.keys(), ev
    # Host span tracks are named by thread_name metadata; the slo plane's
    # mirrored spans live on "slo:*" tracks (docs/SLO.md).
    if ev["ph"] == "M" and ev["name"] == "thread_name":
        track = ev.get("args", {}).get("name", "")
        if track.startswith("slo:"):
            slo_tracks.add(track)
assert any(t.startswith("slo:req:") for t in slo_tracks), slo_tracks
assert "slo:serve" in slo_tracks, slo_tracks
print(f"   slo trace ok: {len(events)} events, {len(slo_tracks)} slo tracks")
PY
# The committed slo.json is the SLO gate: a breach exits 4. Warn-only
# locally, fatal under ACSR_CI=1 (the acsr_audit discipline).
if ! "$build/tools/acsr_slo" --quiet --check slo.json; then
  if [ "${ACSR_CI:-0}" = "1" ]; then
    echo "check.sh: acsr_slo found SLO breaches (fatal under ACSR_CI=1)"
    exit 1
  fi
  echo "check.sh: WARNING: acsr_slo found SLO breaches (fatal under ACSR_CI=1)"
fi

echo "== wall-clock bench smoke (bench_wallclock --quick)"
ACSR_BENCH_QUICK=1 scripts/bench.sh "$build"

echo "check.sh: all gates green"
