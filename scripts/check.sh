#!/usr/bin/env bash
# CI gate: configure, build, run the tier-1 test label (timed — executor
# wall-clock is a tracked quantity, see docs/PERF.md), the cross-engine
# differential fuzz harness at a fixed seed, the fault-injection matrix
# (one representative ACSR_FAULTS plan per fault class through the
# FaultEnv smoke — see docs/RESILIENCE.md — plus ctest -L faults), then a
# quick wall-clock bench smoke that refreshes BENCH_wallclock.json at the
# repo root. Fails on the first broken step. See docs/TESTING.md for the
# label scheme.
#
# Usage: scripts/check.sh [build_dir]
set -euo pipefail

cd "$(dirname "$0")/.."
build="${1:-build}"

echo "== configure"
# CI (ACSR_CI=1) promotes warnings to errors; local runs stay permissive.
werror=()
if [ "${ACSR_CI:-0}" = "1" ]; then werror=(-DACSR_WERROR=ON); fi
if [ -f "$build/CMakeCache.txt" ]; then
  cmake -B "$build" "${werror[@]}"  # reuse the cached generator
else
  cmake -B "$build" -G Ninja "${werror[@]}"
fi

echo "== build"
cmake --build "$build"

echo "== analysis (scripts/lint.sh + acsr_verify --all)"
scripts/lint.sh
"$build/tools/acsr_verify" --all

echo "== clang-tidy (non-fatal unless ACSR_CI=1)"
if command -v clang-tidy >/dev/null 2>&1; then
  tidy_files=$(git ls-files 'src/*.cpp' 'tools/*.cpp')
  if [ "${ACSR_CI:-0}" = "1" ]; then
    clang-tidy -p "$build" $tidy_files
  else
    clang-tidy -p "$build" $tidy_files || true
  fi
else
  echo "   clang-tidy not installed; skipping"
fi

echo "== tier-1 tests (ctest -L tier1)"
tier1_start=$SECONDS
ctest --test-dir "$build" -L tier1 --output-on-failure
echo "check.sh: tier-1 suite took $((SECONDS - tier1_start))s"

echo "== differential fuzz (seed ${ACSR_FUZZ_SEED:-2014}, ${ACSR_FUZZ_MATRICES:-200} matrices)"
ACSR_FUZZ_SEED="${ACSR_FUZZ_SEED:-2014}" \
ACSR_FUZZ_MATRICES="${ACSR_FUZZ_MATRICES:-200}" \
  ctest --test-dir "$build" -L fuzz --output-on-failure

echo "== fault-injection matrix (one plan per fault class)"
fault_plans=(
  "oom@alloc#1"
  "transient@launch#1"
  "ecc@launch#2:seed=7"
  "corrupt@transfer#1"
  "stall@transfer#1:ms=20"
  "lost@launch#2"
)
for plan in "${fault_plans[@]}"; do
  echo "   ACSR_FAULTS=\"$plan\""
  ACSR_FAULTS="$plan" "$build/tests/test_faults" \
    --gtest_filter='FaultEnv.*' --gtest_brief=1
done
ctest --test-dir "$build" -L faults --output-on-failure

echo "== wall-clock bench smoke (bench_wallclock --quick)"
ACSR_BENCH_QUICK=1 scripts/bench.sh "$build"

echo "check.sh: all gates green"
