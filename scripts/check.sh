#!/usr/bin/env bash
# CI gate: configure, build, run the tier-1 test label, then the
# cross-engine differential fuzz harness at a fixed seed. Fails on the
# first broken step. See docs/TESTING.md for the label scheme.
#
# Usage: scripts/check.sh [build_dir]
set -euo pipefail

cd "$(dirname "$0")/.."
build="${1:-build}"

echo "== configure"
if [ -f "$build/CMakeCache.txt" ]; then
  cmake -B "$build"  # reuse whatever generator the cache was made with
else
  cmake -B "$build" -G Ninja
fi

echo "== build"
cmake --build "$build"

echo "== tier-1 tests (ctest -L tier1)"
ctest --test-dir "$build" -L tier1 --output-on-failure

echo "== differential fuzz (seed ${ACSR_FUZZ_SEED:-2014}, ${ACSR_FUZZ_MATRICES:-200} matrices)"
ACSR_FUZZ_SEED="${ACSR_FUZZ_SEED:-2014}" \
ACSR_FUZZ_MATRICES="${ACSR_FUZZ_MATRICES:-200}" \
  ctest --test-dir "$build" -L fuzz --output-on-failure

echo "check.sh: all gates green"
