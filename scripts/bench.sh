#!/usr/bin/env bash
# Wall-clock executor benchmark driver: runs bench/bench_wallclock and
# folds its google-benchmark JSON into BENCH_wallclock.json at the repo
# root, preserving the committed baseline section so successive PRs can
# diff executor throughput (see docs/PERF.md).
#
# Usage: scripts/bench.sh [build_dir]
#   ACSR_BENCH_QUICK=1      smoke mode: ~25x shorter measurement windows; the
#                           result is stamped "quick" and numbers are noisy —
#                           use only as a does-it-run CI gate.
#   ACSR_BENCH_REBASELINE=1 re-record the baseline section from this run
#                           (use after intentional model changes, or to fix
#                           a mode mismatch).
#
# Baseline and current sections are stamped with the mode they were measured
# in; the script refuses to emit speedups across modes (quick-vs-full diffs
# once produced a phantom 14% acsr regression — see docs/PERF.md).
set -euo pipefail

cd "$(dirname "$0")/.."
build="${1:-build}"
out="BENCH_wallclock.json"

if [ ! -x "$build/bench/bench_wallclock" ]; then
  echo "bench.sh: $build/bench/bench_wallclock not built (run scripts/check.sh first)" >&2
  exit 1
fi

mode="full"
extra=()
if [ "${ACSR_BENCH_QUICK:-0}" != "0" ]; then
  mode="quick"
  extra+=(--quick)
fi

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT
"$build/bench/bench_wallclock" "${extra[@]}" \
  --benchmark_out="$raw" --benchmark_out_format=json \
  --benchmark_counters_tabular=true

MODE="$mode" RAW="$raw" OUT="$out" \
REBASELINE="${ACSR_BENCH_REBASELINE:-0}" python3 - <<'PY'
import json, os, subprocess, sys

raw = json.load(open(os.environ["RAW"]))
out_path = os.environ["OUT"]
mode = os.environ["MODE"]

current = {
    b["name"]: round(b["real_time"], 4)
    for b in raw.get("benchmarks", [])
    if b.get("run_type", "iteration") == "iteration"
}
try:
    commit = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                            capture_output=True, text=True).stdout.strip()
except OSError:
    commit = ""

doc = {}
if os.path.exists(out_path):
    with open(out_path) as f:
        doc = json.load(f)

# The baseline section is written once (pre-optimisation numbers) and then
# carried forward verbatim; only the current section is refreshed.
doc.setdefault("unit", "ms (real time per simulated SpMV / launch)")
doc.setdefault("spec", "GTX Titan preset, default corpus scale")
if "baseline" not in doc or os.environ.get("REBASELINE") == "1":
    doc["baseline"] = {"commit": commit, "mode": mode, "benchmarks": current}
doc["current"] = {"commit": commit, "mode": mode, "benchmarks": current}

# A quick-mode current diffed against a full-mode baseline (or vice versa)
# compares different measurement windows, not different code. Refuse to
# fold mismatched results in — the run still served as a does-it-run
# smoke, but BENCH_wallclock.json keeps its consistent pair.
base_mode = doc["baseline"].get("mode", "full")
if base_mode != mode:
    print(
        f"bench.sh: baseline is {base_mode!r} mode but this run is {mode!r} "
        f"— refusing to diff across modes; {out_path} left untouched.\n"
        f"bench.sh: re-run with the matching ACSR_BENCH_QUICK setting, or "
        f"set ACSR_BENCH_REBASELINE=1 to re-record the baseline in "
        f"{mode!r} mode."
    )
    sys.exit(0)

base = doc["baseline"]["benchmarks"]
# Benchmarks added after the baseline was recorded (a PR introducing a new
# series, e.g. spmm_executor/ or serve_scheduler/) have no committed
# reference yet: adopt their first same-mode measurement as the baseline
# so later runs can diff against it. Existing entries are never touched —
# the pre-optimisation numbers stay the yardstick.
adopted = sorted(n for n in current if n not in base)
for n in adopted:
    base[n] = current[n]
if adopted:
    print(f"bench.sh: adopted {mode}-mode baseline for "
          f"{len(adopted)} new benchmark(s):")
    for n in adopted:
        print(f"  {n}: {current[n]:.3f} ms")

doc["speedup"] = {
    name: round(base[name] / t, 3)
    for name, t in current.items()
    if name in base and t > 0
}

with open(out_path, "w") as f:
    json.dump(doc, f, indent=2, sort_keys=False)
    f.write("\n")

print(f"bench.sh: wrote {out_path} ({mode} mode)")
for name, s in doc["speedup"].items():
    print(f"  {name}: {base[name]:.3f} -> {current[name]:.3f} ms ({s}x)")
PY
