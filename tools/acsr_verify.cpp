// acsr_verify: run the static kernel verifier (src/analysis) from the
// command line.
//
//   acsr_verify --all                 every engine x every Table II device,
//                                     plus the defect corpus (exit 1 on any
//                                     engine violation or unflagged defect)
//   acsr_verify --engine=acsr         one engine on every device
//   acsr_verify --device=gtx580 ...   restrict to one device
//   acsr_verify --verbose             print each violation in full
//
// scripts/check.sh runs `acsr_verify --all` as the analysis stage.
#include <cstring>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/models.hpp"
#include "common/check.hpp"
#include "vgpu/device_spec.hpp"

namespace {

using acsr::analysis::Violation;

struct Options {
  bool all = false;
  bool verbose = false;
  std::string engine;
  std::string device;
};

const std::vector<std::string>& device_keys() {
  static const std::vector<std::string> keys = {"gtx580", "k10", "titan"};
  return keys;
}

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--all] [--engine=NAME] [--device=gtx580|k10|titan]"
               " [--verbose]\n";
  return 2;
}

/// Engine sweep: prove every engine safe on every requested device spec.
/// Returns the number of (engine, device) cells with violations.
int sweep_engines(const Options& opt) {
  std::vector<std::string> engines;
  if (!opt.engine.empty())
    engines.push_back(opt.engine);
  else
    engines = acsr::analysis::all_engine_names();
  std::vector<std::string> devices;
  if (!opt.device.empty())
    devices.push_back(opt.device);
  else
    devices = device_keys();

  std::cout << std::left << std::setw(14) << "engine";
  for (const std::string& d : devices) std::cout << std::setw(10) << d;
  std::cout << "\n";

  int failed_cells = 0;
  std::vector<Violation> details;
  for (const std::string& e : engines) {
    std::cout << std::setw(14) << e;
    for (const std::string& d : devices) {
      const auto spec = acsr::vgpu::DeviceSpec::by_name(d);
      const std::vector<Violation> vs = acsr::analysis::verify_engine(e, spec);
      if (vs.empty()) {
        std::cout << std::setw(10) << "ok";
      } else {
        std::cout << std::setw(10) << ("FAIL:" + std::to_string(vs.size()));
        ++failed_cells;
        details.insert(details.end(), vs.begin(), vs.end());
      }
    }
    std::cout << "\n";
  }
  if (!details.empty() && opt.verbose) {
    std::cout << "\n";
    for (const Violation& v : details) std::cout << v.str() << "\n";
  }
  return failed_cells;
}

/// Defect sweep: every planted defect must be flagged with the expected
/// violation kind. Returns the number of missed defects.
int sweep_defects(const Options& opt) {
  int missed = 0;
  std::cout << "\ndefect corpus (each must be flagged):\n";
  for (const auto& d : acsr::analysis::all_defect_cases()) {
    const std::vector<Violation> vs = acsr::analysis::run_defect(d.name);
    bool hit = false;
    for (const Violation& v : vs) hit = hit || v.kind == d.expected;
    std::cout << "  " << std::left << std::setw(18) << d.name
              << (hit ? "flagged" : "MISSED") << "  ("
              << acsr::analysis::violation_kind_name(d.expected) << ")\n";
    if (!hit) ++missed;
    if (opt.verbose)
      for (const Violation& v : vs) std::cout << "      " << v.str() << "\n";
  }
  return missed;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--all") {
      opt.all = true;
    } else if (a == "--verbose") {
      opt.verbose = true;
    } else if (a.rfind("--engine=", 0) == 0) {
      opt.engine = a.substr(std::strlen("--engine="));
    } else if (a.rfind("--device=", 0) == 0) {
      opt.device = a.substr(std::strlen("--device="));
    } else {
      return usage(argv[0]);
    }
  }
  if (!opt.all && opt.engine.empty()) return usage(argv[0]);
  if (!opt.engine.empty() && !acsr::analysis::knows_engine(opt.engine)) {
    std::cerr << "unknown engine '" << opt.engine << "'\n";
    return 2;
  }

  try {
    const int failed = sweep_engines(opt);
    const int missed = opt.all ? sweep_defects(opt) : 0;
    if (failed != 0)
      std::cout << "\n" << failed << " engine/device cell(s) FAILED"
                << (opt.verbose ? "" : " (re-run with --verbose)") << "\n";
    if (missed != 0)
      std::cout << missed << " defect(s) MISSED by the verifier\n";
    if (failed == 0 && missed == 0) std::cout << "\nall proofs hold\n";
    return (failed == 0 && missed == 0) ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "acsr_verify: " << e.what() << "\n";
    return 2;
  }
}
