// acsr_audit: the cross-plane static auditor (docs/ANALYSIS.md).
//
//   acsr_audit --all               full matrix: charge parity + causality
//                                  for every registry engine x device,
//                                  cross-plane joins, fault-taxonomy
//                                  exhaustiveness, gate discipline, lint,
//                                  and both seeded defect corpora
//   acsr_audit --charges           charge/causality matrix only
//     [--engine=NAME --device=KEY]
//   acsr_audit --taxonomy          fault-taxonomy pass only
//   acsr_audit --gates             gate-discipline pass only
//   acsr_audit --lint              absorbed scripts/lint.sh rules 1-4
//   acsr_audit --defects           seeded defect corpora only
//   acsr_audit --report=json       machine-readable report on stdout
//   acsr_audit --root=PATH         repo root (default: build-time source
//                                  dir, falling back to ".")
//
// Exit: 0 all proofs hold, 1 findings or missed defects, 2 usage.
// scripts/check.sh runs `acsr_audit --all --report=json` as part of the
// analysis stage; scripts/lint.sh is a thin wrapper over `--lint`.
#include <cstring>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/audit_passes.hpp"
#include "analysis/charge_models.hpp"
#include "core/engine_registry.hpp"
#include "vgpu/device_spec.hpp"

#ifndef ACSR_SOURCE_DIR
#define ACSR_SOURCE_DIR "."
#endif

namespace {

using acsr::analysis::AuditFinding;
using acsr::analysis::AuditReport;

struct Options {
  bool all = false;
  bool charges = false;
  bool taxonomy = false;
  bool gates = false;
  bool lint = false;
  bool defects = false;
  bool json = false;
  bool verbose = false;
  std::string engine;
  std::string device;
  std::string root = ACSR_SOURCE_DIR;
};

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--all] [--charges [--engine=NAME] [--device=KEY]]"
               " [--taxonomy] [--gates] [--lint] [--defects]"
               " [--report=json] [--root=PATH] [--verbose]\n";
  return 2;
}

/// Charge-parity + causality matrix over the factory registry.
void sweep_charges(const Options& opt, AuditReport& rep) {
  std::vector<std::string> engines;
  if (!opt.engine.empty())
    engines.push_back(opt.engine);
  else
    engines = acsr::core::factory_engine_names();
  std::vector<std::string> devices;
  if (!opt.device.empty())
    devices.push_back(opt.device);
  else
    devices = acsr::analysis::audit_device_keys();

  if (!opt.json) {
    std::cout << std::left << std::setw(14) << "engine";
    for (const std::string& d : devices) std::cout << std::setw(10) << d;
    std::cout << "\n";
  }
  for (const std::string& e : engines) {
    if (!opt.json) std::cout << std::setw(14) << e;
    for (const std::string& d : devices) {
      const auto spec = acsr::vgpu::DeviceSpec::by_name(d);
      const auto fs = acsr::analysis::audit_engine_charges(e, spec);
      ++rep.engine_cells;
      if (!opt.json)
        std::cout << std::setw(10)
                  << (fs.empty() ? "ok" : "FAIL:" + std::to_string(fs.size()));
      rep.findings.insert(rep.findings.end(), fs.begin(), fs.end());
    }
    if (!opt.json) std::cout << "\n";
  }

  if (opt.engine.empty() && opt.device.empty()) {
    if (!opt.json) std::cout << "\ncross-plane joins:\n";
    for (const std::string& p : acsr::analysis::charge_plane_names()) {
      const auto fs = acsr::analysis::audit_charge_plane(p);
      ++rep.planes;
      if (!opt.json)
        std::cout << "  " << std::left << std::setw(20) << p
                  << (fs.empty() ? "ok" : "FAIL:" + std::to_string(fs.size()))
                  << "\n";
      rep.findings.insert(rep.findings.end(), fs.begin(), fs.end());
    }
  }
}

void sweep_taxonomy(const Options& opt, AuditReport& rep) {
  const auto set = acsr::analysis::load_source_tree(opt.root);
  const auto res = acsr::analysis::audit_taxonomy(set);
  rep.taxonomy_types = static_cast<int>(res.types.size());
  if (!opt.json) {
    std::cout << "\nfault taxonomy (" << res.types.size() << " types):\n";
    for (const auto& t : res.types) {
      std::cout << "  " << std::left << std::setw(24) << t.name
                << std::setw(8)
                << (t.covered ? "covered"
                              : (t.terminal ? "terminal" : "ORPHAN"))
                << t.throw_sites.size() << " throw site(s)\n";
      if (opt.verbose)
        for (const auto& s : t.catch_sites)
          std::cout << "      caught at " << s << "\n";
    }
  }
  rep.findings.insert(rep.findings.end(), res.findings.begin(),
                      res.findings.end());
}

void sweep_gates(const Options& opt, AuditReport& rep) {
  const auto set = acsr::analysis::load_source_tree(opt.root);
  const auto res = acsr::analysis::audit_gates(set);
  rep.gate_sites = static_cast<int>(res.sites.size());
  if (!opt.json) {
    std::cout << "\nACSR_* gates (" << res.sites.size() << " sites):\n";
    for (const auto& s : res.sites)
      std::cout << "  " << std::left << std::setw(26) << s.var
                << std::setw(8) << (s.cached ? "cached" : "HOT") << s.file
                << ":" << s.line << (opt.verbose ? "  (" + s.how + ")" : "")
                << "\n";
  }
  rep.findings.insert(rep.findings.end(), res.findings.begin(),
                      res.findings.end());
}

void sweep_lint(const Options& opt, AuditReport& rep) {
  const auto set = acsr::analysis::load_source_tree(opt.root);
  const auto fs = acsr::analysis::audit_lint(set);
  if (!opt.json)
    std::cout << "\nlint rules 1-4 over " << set.size() << " files: "
              << (fs.empty() ? "ok" : std::to_string(fs.size()) + " finding(s)")
              << "\n";
  rep.findings.insert(rep.findings.end(), fs.begin(), fs.end());
}

/// Both seeded corpora: every planted defect must surface with the
/// expected finding kind (zero false negatives).
void sweep_defects(const Options& opt, AuditReport& rep) {
  if (!opt.json) std::cout << "\ndefect corpus (each must be flagged):\n";
  auto check = [&](const std::string& name, acsr::analysis::AuditKind expect,
                   const std::vector<AuditFinding>& fs) {
    ++rep.defects_expected;
    bool hit = false;
    for (const AuditFinding& f : fs) hit = hit || f.kind == expect;
    if (hit) ++rep.defects_flagged;
    if (!opt.json)
      std::cout << "  " << std::left << std::setw(20) << name
                << (hit ? "flagged" : "MISSED") << "  ("
                << acsr::analysis::audit_kind_name(expect) << ")\n";
    if (opt.verbose)
      for (const AuditFinding& f : fs) std::cout << "      " << f.str() << "\n";
  };
  for (const auto& d : acsr::analysis::all_charge_defects())
    check(d.name, d.expected, acsr::analysis::run_charge_defect(d.name));
  for (const auto& d : acsr::analysis::all_source_defects())
    check(d.name, d.expected, acsr::analysis::run_source_defect(d.name));
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--all") {
      opt.all = true;
    } else if (a == "--charges") {
      opt.charges = true;
    } else if (a == "--taxonomy") {
      opt.taxonomy = true;
    } else if (a == "--gates") {
      opt.gates = true;
    } else if (a == "--lint") {
      opt.lint = true;
    } else if (a == "--defects") {
      opt.defects = true;
    } else if (a == "--verbose") {
      opt.verbose = true;
    } else if (a == "--report=json" || a == "--report") {
      // bare --report takes the next arg ("json") for symmetry with
      // `--report json` in docs; only json is supported.
      opt.json = true;
      if (a == "--report" && i + 1 < argc &&
          std::string(argv[i + 1]) == "json")
        ++i;
    } else if (a.rfind("--engine=", 0) == 0) {
      opt.engine = a.substr(std::strlen("--engine="));
      opt.charges = true;
    } else if (a.rfind("--device=", 0) == 0) {
      opt.device = a.substr(std::strlen("--device="));
      opt.charges = true;
    } else if (a.rfind("--root=", 0) == 0) {
      opt.root = a.substr(std::strlen("--root="));
    } else {
      return usage(argv[0]);
    }
  }
  if (!opt.all && !opt.charges && !opt.taxonomy && !opt.gates && !opt.lint &&
      !opt.defects)
    return usage(argv[0]);
  if (!opt.engine.empty() &&
      acsr::core::canonical_engine_name(opt.engine) == nullptr) {
    std::cerr << "unknown engine '" << opt.engine << "'\n";
    return 2;
  }

  try {
    AuditReport rep;
    if (opt.all || opt.charges) sweep_charges(opt, rep);
    if (opt.all || opt.taxonomy) sweep_taxonomy(opt, rep);
    if (opt.all || opt.gates) sweep_gates(opt, rep);
    if (opt.all || opt.lint) sweep_lint(opt, rep);
    if (opt.all || opt.defects) sweep_defects(opt, rep);

    if (opt.json) {
      std::cout << rep.json() << "\n";
    } else {
      if (!rep.findings.empty()) {
        std::cout << "\n" << rep.findings.size() << " finding(s):\n";
        for (const AuditFinding& f : rep.findings)
          std::cout << "  " << f.str() << "\n";
      }
      if (rep.defects_flagged != rep.defects_expected)
        std::cout << (rep.defects_expected - rep.defects_flagged)
                  << " defect(s) MISSED by the auditor\n";
      if (rep.clean()) std::cout << "\nall audits hold\n";
    }
    return rep.exit_code();
  } catch (const std::exception& e) {
    std::cerr << "acsr_audit: " << e.what() << "\n";
    return 2;
  }
}
