// acsr_prof — nvprof-style profiling CLI for the virtual GPU.
//
// Runs one simulated SpMV for every engine (or a --engine subset) on a
// corpus matrix, then prints the per-engine kernel summary and the
// engines-as-columns metric matrix. The full numbers can be written as a
// metrics JSON document (--out) and compared against a committed baseline
// (--diff), which is how scripts/check.sh watches for model drift.
//
//   acsr_prof [--matrix WIK] [--engine acsr ...] [--out metrics.json]
//             [--trace trace.json] [--diff baseline.json]
//             [--threshold 0.1] [--quiet] [--tenants] [--ooc]
//
// --tenants runs the deterministic three-tenant serving scenario
// (apps/rwr_batch.hpp) through the batch scheduler on the first selected
// engine and prints the per-tenant billing table (docs/SERVING.md).
//
// --ooc runs one streamed SpMV through the out-of-core tier (ooc-csr)
// and prints the storage-plane io.* metric table — read amplification,
// queue depth, overlap efficiency, stall/penalty time (docs/OOC.md).
//
// The tool force-enables the profiler; ACSR_PROF need not be set.
// docs/OBSERVABILITY.md documents the metric formulas and both schemas.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/models.hpp"
#include "apps/rwr_batch.hpp"
#include "common/check.hpp"
#include "core/factory.hpp"
#include "core/ooc_engine.hpp"
#include "graph/corpus.hpp"
#include "prof/capture.hpp"
#include "prof/metrics.hpp"
#include "prof/prof.hpp"
#include "prof/report.hpp"
#include "serve/scheduler.hpp"
#include "vgpu/device.hpp"

namespace {

using acsr::json::Value;

struct Options {
  std::string matrix = "WIK";
  std::vector<std::string> engines;
  std::string out_path;
  std::string trace_path;
  std::string diff_path;
  double threshold = 0.10;
  bool quiet = false;
  bool tenants = false;
  bool ooc = false;
};

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--matrix ABBREV] [--engine NAME ...] [--out FILE]\n"
               "       [--trace FILE] [--diff BASELINE] [--threshold REL]"
               " [--quiet] [--tenants] [--ooc]\n";
  return 2;
}

/// The --tenants table: the deterministic three-tenant scenario through
/// the batch scheduler, one row per tenant, one column per registered
/// tenant metric. All model quantities — bit-reproducible.
void render_tenants(const std::string& engine_name,
                    const acsr::vgpu::DeviceSpec& spec,
                    const acsr::mat::Csr<double>& a,
                    const acsr::core::EngineConfig& cfg) {
  acsr::vgpu::Device dev(spec);
  auto engine = acsr::core::make_engine<double>(engine_name, dev, a, cfg);
  acsr::serve::BatchScheduler<double> sched(*engine);
  acsr::apps::run_tenant_scenario(sched, a.cols);
  std::cout << "\n==== tenant billing (" << engine_name << ", "
            << sched.served_requests() << " requests, " << sched.batches()
            << " batches, avg width " << sched.batch_width_avg()
            << ", makespan " << sched.clock_s() * 1e3 << " ms) ====\n";
  std::printf("%-8s", "tenant");
  for (const auto& m : acsr::prof::tenant_metric_registry())
    std::printf("  %24s", m.name);
  std::printf("\n");
  for (const auto& [name, agg] : sched.tenants()) {
    std::printf("%-8s", name.c_str());
    for (const auto& m : acsr::prof::tenant_metric_registry())
      std::printf("  %24.6g", m.compute(agg));
    std::printf("\n");
  }
}

/// The --ooc table: one streamed SpMV through the out-of-core tier, one
/// row per registered io.* metric. The engine is built directly (not via
/// the factory) so the io accounting is reachable without a downcast
/// through the memo/verify wrappers.
void render_ooc(const acsr::vgpu::DeviceSpec& spec,
                const acsr::mat::Csr<double>& a,
                const acsr::core::EngineConfig& cfg) {
  acsr::vgpu::Device dev(spec);
  acsr::core::OocCsrEngine<double> engine(dev, a, cfg.ooc);
  const std::vector<double> x(static_cast<std::size_t>(a.cols), 1.0);
  std::vector<double> y;
  engine.simulate(x, y);
  const acsr::prof::IoAgg& io = engine.io_stats();
  std::cout << "\n==== out-of-core storage plane (ooc-csr, "
            << engine.num_slabs() << " slabs, budget "
            << engine.budget_bytes() << " B, makespan "
            << engine.last_makespan() * 1e3 << " ms) ====\n";
  for (const auto& m : acsr::prof::io_metric_registry())
    std::printf("  %-26s %14.6g  %-8s %s\n", m.name, m.compute(io), m.unit,
                m.formula);
}

bool load_json(const std::string& path, Value* out) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "acsr_prof: cannot open '" << path << "'\n";
    return false;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  std::string err;
  if (!acsr::json::parse(ss.str(), out, &err)) {
    std::cerr << "acsr_prof: '" << path << "': " << err << "\n";
    return false;
  }
  return true;
}

bool write_text(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "acsr_prof: cannot write '" << path << "'\n";
    return false;
  }
  out << text << "\n";
  return out.good();
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--matrix") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      opt.matrix = v;
    } else if (arg == "--engine") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      opt.engines.emplace_back(v);
    } else if (arg == "--out") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      opt.out_path = v;
    } else if (arg == "--trace") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      opt.trace_path = v;
    } else if (arg == "--diff") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      opt.diff_path = v;
    } else if (arg == "--threshold") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      opt.threshold = std::stod(v);
    } else if (arg == "--quiet") {
      opt.quiet = true;
    } else if (arg == "--tenants") {
      opt.tenants = true;
    } else if (arg == "--ooc") {
      opt.ooc = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::cerr << "acsr_prof: unknown argument '" << arg << "'\n";
      return usage(argv[0]);
    }
  }

  acsr::prof::set_profiler_enabled(true);
  acsr::prof::Profiler& prof = acsr::prof::Profiler::instance();
  prof.clear();

  const long long scale = acsr::graph::default_scale();
  const acsr::mat::Csr<double> a = acsr::graph::build_matrix(
      acsr::graph::corpus_entry(opt.matrix), scale);
  const acsr::vgpu::DeviceSpec spec =
      acsr::vgpu::DeviceSpec::by_name("titan").scaled_for_corpus(scale);
  acsr::core::EngineConfig cfg;
  cfg.hyb_breakeven = std::max<long long>(1, 4096 / scale);

  const std::vector<std::string>& engines =
      opt.engines.empty() ? acsr::analysis::all_engine_names()
                          : opt.engines;
  for (const std::string& name : engines) {
    // Fresh device per engine: each engine's trace and metrics start from
    // cold caches and a dedicated pid row in the trace.
    acsr::vgpu::Device dev(spec);
    try {
      acsr::prof::capture_engine_spmv<double>(name, dev, a, cfg);
    } catch (const acsr::InputError& e) {
      std::cerr << "acsr_prof: skipping " << name << ": " << e.what()
                << "\n";
    } catch (const acsr::vgpu::DeviceOom& e) {
      std::cerr << "acsr_prof: skipping " << name << ": " << e.what()
                << "\n";
    }
  }

  const Value doc =
      acsr::prof::metrics_doc(prof.launches(), prof.retry_backoff_s());
  if (!opt.quiet) {
    acsr::prof::render_summary(std::cout, prof.launches(),
                               prof.retry_backoff_s());
    std::cout << "\n==== engine metric matrix (" << opt.matrix
              << ", scale 1/" << scale << ") ====\n";
    acsr::prof::render_engine_matrix(std::cout, doc);
  }

  if (opt.tenants)
    render_tenants(opt.engines.empty() ? "acsr" : opt.engines.front(), spec,
                   a, cfg);
  if (opt.ooc) render_ooc(spec, a, cfg);

  if (!opt.out_path.empty() &&
      !write_text(opt.out_path, acsr::json::dump(doc, 1)))
    return 1;
  if (!opt.trace_path.empty() &&
      !write_text(opt.trace_path,
                  acsr::json::dump(prof.chrome_trace(), 1)))
    return 1;

  if (!opt.diff_path.empty()) {
    Value baseline;
    if (!load_json(opt.diff_path, &baseline)) return 1;
    const std::vector<acsr::prof::Drift> drifts =
        acsr::prof::diff_metrics(doc, baseline, opt.threshold);
    if (drifts.empty()) {
      std::cout << "acsr_prof: no metric drift beyond "
                << opt.threshold * 100.0 << "% vs " << opt.diff_path
                << "\n";
    } else {
      std::cout << "acsr_prof: " << drifts.size()
                << " metric(s) drifted beyond " << opt.threshold * 100.0
                << "% vs " << opt.diff_path << ":\n";
      for (const acsr::prof::Drift& d : drifts)
        std::printf("  %-55s %14.6g -> %14.6g  (%+.1f%%)\n",
                    d.path.c_str(), d.baseline, d.current, d.rel * 100.0);
      return 3;  // drift exit code: callers decide whether it is fatal
    }
  }
  return 0;
}
