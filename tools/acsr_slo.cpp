// acsr_slo — request tracing and SLO evaluation CLI (docs/SLO.md).
//
// Runs the deterministic multi-tenant serving scenario through the batch
// scheduler with the tracing/SLO plane force-enabled, then renders the
// per-tenant SLO table (the slo.* metric registry: latency/queue-wait
// percentiles, burn rate, breach counts) and, on request, the span
// forest one request's simulated time decomposes into.
//
//   acsr_slo [--matrix WIK] [--engine acsr] [--tenants N] [--spans]
//            [--trace out.json] [--check slo.json] [--quiet]
//
// --tenants N    requests per tenant in the scenario (default 16)
// --spans        print the span forest (kind, track, interval, nesting)
// --trace FILE   write the Chrome/Perfetto trace; request + execution
//                spans land on "slo:*" tracks of the prof trace
// --check FILE   install per-tenant objectives from an slo.json document
//                and exit 4 when any tenant breaches — the CI gate
//                scripts/check.sh runs against the committed slo.json
//
// The engine is wrapped in ResilientEngine, so an ACSR_FAULTS plan makes
// the scenario cross every plane (serve -> engine -> storage) and breach
// events land in the same recovery log as fault/recovery marks. Exit
// codes: 0 ok, 1 I/O error, 2 usage, 4 SLO breach (3 is taken by
// acsr_prof's drift gate; distinct codes let CI tell them apart).

#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "apps/rwr_batch.hpp"
#include "common/check.hpp"
#include "core/resilient.hpp"
#include "graph/corpus.hpp"
#include "prof/metrics.hpp"
#include "prof/prof.hpp"
#include "serve/scheduler.hpp"
#include "slo/slo.hpp"
#include "slo/trace.hpp"
#include "vgpu/device.hpp"

namespace {

struct Options {
  std::string matrix = "WIK";
  std::string engine = "acsr";
  int requests_per_tenant = 16;
  bool spans = false;
  std::string trace_path;
  std::string check_path;
  bool quiet = false;
};

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--matrix ABBREV] [--engine NAME] [--tenants N]"
               " [--spans]\n"
               "       [--trace FILE] [--check SLO_JSON] [--quiet]\n";
  return 2;
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "acsr_slo: cannot open '" << path << "'\n";
    return false;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

/// Indented span forest: every root (parent 0) with its subtree, in
/// recorded order — the human-readable view of one request's decomposed
/// simulated time.
void render_spans(const std::vector<acsr::slo::Span>& spans) {
  std::map<std::uint64_t, std::vector<const acsr::slo::Span*>> children;
  std::vector<const acsr::slo::Span*> roots;
  for (const acsr::slo::Span& s : spans) {
    if (s.parent == 0)
      roots.push_back(&s);
    else
      children[s.parent].push_back(&s);
  }
  std::printf("\n==== span forest (%zu spans, %zu roots) ====\n",
              spans.size(), roots.size());
  const auto render = [&](const acsr::slo::Span* s, int depth,
                          const auto& self) -> void {
    std::printf("  %*s%-13s %-28s [%11.6f, %11.6f] %9.3f ms  %s\n",
                2 * depth, "", acsr::slo::span_kind_name(s->kind),
                s->name.c_str(), s->start_s, s->end_s,
                s->duration() * 1e3, s->track.c_str());
    auto it = children.find(s->id);
    if (it == children.end()) return;
    for (const acsr::slo::Span* c : it->second) self(c, depth + 1, self);
  };
  for (const acsr::slo::Span* r : roots) render(r, 0, render);
}

/// The per-tenant SLO table: one row per tenant plus the "*" aggregate,
/// one column per registered slo.* metric (lint rule 4 parity).
void render_slo(const acsr::slo::SloMonitor& mon) {
  std::vector<std::string> rows = mon.tenant_names();
  rows.push_back("*");
  std::printf("\n==== tenant SLO plane ====\n");
  std::printf("%-8s", "tenant");
  for (const auto& m : acsr::prof::slo_metric_registry())
    std::printf("  %20s", m.name);
  std::printf("\n");
  for (const std::string& t : rows) {
    const acsr::prof::SloAgg agg = mon.snapshot(t);
    std::printf("%-8s", t.c_str());
    for (const auto& m : acsr::prof::slo_metric_registry())
      std::printf("  %20.6g", m.compute(agg));
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--matrix") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      opt.matrix = v;
    } else if (arg == "--engine") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      opt.engine = v;
    } else if (arg == "--tenants") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      opt.requests_per_tenant = std::stoi(v);
      if (opt.requests_per_tenant < 1) return usage(argv[0]);
    } else if (arg == "--spans") {
      opt.spans = true;
    } else if (arg == "--trace") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      opt.trace_path = v;
    } else if (arg == "--check") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      opt.check_path = v;
    } else if (arg == "--quiet") {
      opt.quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::cerr << "acsr_slo: unknown argument '" << arg << "'\n";
      return usage(argv[0]);
    }
  }

  // Force-enable the slo plane; with --trace also the profiler, so
  // request spans land on the Chrome trace's "slo:*" tracks.
  acsr::slo::set_slo_enabled(true);
  acsr::slo::Tracer::instance().clear();
  if (!opt.trace_path.empty()) {
    acsr::prof::set_profiler_enabled(true);
    acsr::prof::Profiler::instance().clear();
  }

  const long long scale = acsr::graph::default_scale();
  const acsr::mat::Csr<double> a = acsr::graph::build_matrix(
      acsr::graph::corpus_entry(opt.matrix), scale);
  const acsr::vgpu::DeviceSpec spec =
      acsr::vgpu::DeviceSpec::by_name("titan").scaled_for_corpus(scale);
  acsr::core::EngineConfig cfg;
  cfg.hyb_breakeven = std::max<long long>(1, 4096 / scale);

  // Resilient wrapper: an ACSR_FAULTS plan exercises retry/degradation
  // under tracing, and SLO breaches join the fault plane's recovery log.
  acsr::vgpu::Device dev(spec);
  acsr::core::ResilientEngine<double> engine({&dev}, a, opt.engine, cfg);
  acsr::serve::BatchScheduler<double> sched(engine);

  if (!opt.check_path.empty()) {
    std::string text;
    if (!read_file(opt.check_path, &text)) return 1;
    for (acsr::slo::SloObjective o : acsr::slo::parse_objectives(text))
      sched.slo().set_objective(std::move(o));
  }
  sched.slo().on_breach = [&](const acsr::slo::BreachEvent& ev) {
    engine.note_event(ev.describe());
  };

  acsr::apps::run_tenant_scenario(sched, a.cols, opt.requests_per_tenant);

  const acsr::slo::Tracer& tracer = acsr::slo::Tracer::instance();
  if (!opt.quiet) {
    std::cout << "acsr_slo: " << opt.matrix << " via " << opt.engine
              << " (active " << engine.active_format() << "), "
              << sched.served_requests() << " requests in "
              << sched.batches() << " batches, makespan "
              << sched.clock_s() * 1e3 << " ms, " << tracer.spans().size()
              << " spans\n";
    render_slo(sched.slo());
  }
  if (opt.spans) render_spans(tracer.spans());

  if (!opt.trace_path.empty()) {
    std::ofstream out(opt.trace_path);
    if (!out) {
      std::cerr << "acsr_slo: cannot write '" << opt.trace_path << "'\n";
      return 1;
    }
    out << acsr::json::dump(acsr::prof::Profiler::instance().chrome_trace(),
                            1)
        << "\n";
    if (!out.good()) return 1;
  }

  if (!opt.check_path.empty()) {
    const auto& breaches = sched.slo().breaches();
    if (!breaches.empty()) {
      std::cout << "acsr_slo: " << breaches.size()
                << " SLO breach(es) vs " << opt.check_path << ":\n";
      for (const acsr::slo::BreachEvent& ev : breaches)
        std::cout << "  " << ev.describe() << "\n";
      return 4;  // breach exit code (acsr_prof owns 3 for metric drift)
    }
    if (!opt.quiet)
      std::cout << "acsr_slo: all tenants within objectives vs "
                << opt.check_path << "\n";
  }
  return 0;
}
