// Format explorer: inspect how every supported sparse format handles a
// matrix — footprint, padding, preprocessing cost, simulated SpMV time —
// and get a recommendation. Accepts a Matrix Market file or generates a
// synthetic matrix.
//
//   ./examples/format_explorer [--mtx=/path/to/matrix.mtx]
//                              [--kind=powerlaw|uniform|banded]
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/factory.hpp"
#include "graph/powerlaw.hpp"
#include "mat/dia.hpp"
#include "mat/mm_io.hpp"

namespace {

using namespace acsr;

mat::Csr<double> make_input(const Cli& cli) {
  if (auto path = cli.get("mtx"))
    return mat::Csr<double>::from_coo(mat::read_matrix_market_file(*path));
  const std::string kind = cli.get_or("kind", "powerlaw");
  if (kind == "banded") {
    // Pentadiagonal stencil matrix: DIA territory.
    mat::Csr<double> m;
    const mat::index_t n = 20000;
    m.rows = n;
    m.cols = n;
    m.row_off.assign(static_cast<std::size_t>(n) + 1, 0);
    for (mat::index_t r = 0; r < n; ++r) {
      for (mat::index_t c = std::max(0, r - 2);
           c <= std::min(n - 1, r + 2); ++c) {
        m.col_idx.push_back(c);
        m.vals.push_back(r == c ? 4.0 : -1.0);
      }
      m.row_off[static_cast<std::size_t>(r) + 1] =
          static_cast<mat::offset_t>(m.col_idx.size());
    }
    return m;
  }
  graph::PowerLawSpec s;
  s.rows = 20000;
  s.cols = 20000;
  s.mean_nnz_per_row = 9.0;
  s.alpha = kind == "uniform" ? -1.0 : 1.6;
  s.max_row_nnz = kind == "uniform" ? 18 : 2500;
  return graph::powerlaw_matrix(s);
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const mat::Csr<double> a = make_input(cli);
  const auto st = a.row_stats();
  std::cout << "matrix: " << a.rows << " x " << a.cols << ", " << a.nnz()
            << " nnz; rows mu " << st.mean << " sigma " << st.stddev
            << " max " << st.max << "\n\n";

  const auto spec = vgpu::DeviceSpec::gtx_titan().scaled_for_corpus(
      cli.get_int("scale", 64));

  Table t({"format", "preproc us", "SpMV us", "GFLOPs", "device MB",
           "padding %", "note"});
  std::string best_format;
  double best_time = 0.0;
  for (const std::string name :
       {"csr-scalar", "csr", "csr-vector", "ell", "coo", "hyb", "brc",
        "bccoo", "tcoo", "acsr", "acsr-binning"}) {
    vgpu::Device dev(spec);
    try {
      auto e = core::make_engine<double>(name, dev, a);
      const double spmv = e->spmv_seconds();
      t.add_row({name, Table::num(e->report().preprocess_s * 1e6, 1),
                 Table::num(spmv * 1e6, 2), Table::num(e->gflops(), 1),
                 Table::num(static_cast<double>(e->report().device_bytes) /
                                (1 << 20),
                            2),
                 Table::num(e->report().padding_ratio * 100, 1), ""});
      if (best_format.empty() || spmv < best_time) {
        best_format = name;
        best_time = spmv;
      }
    } catch (const InputError& err) {
      t.add_row({name, "-", "-", "-", "-", "-", "rejected: unsuitable"});
    } catch (const vgpu::DeviceOom&) {
      t.add_row({name, "-", "-", "-", "-", "-", "out of device memory"});
    }
  }
  // DIA is not an SpMV engine here, but show whether it would even apply.
  try {
    const auto d = mat::Dia<double>::from_csr(a);
    t.add_row({"dia", "-", "-", "-",
               Table::num(static_cast<double>(d.bytes()) / (1 << 20), 2),
               "-", "structured matrix: DIA applies"});
  } catch (const InputError&) {
    t.add_row({"dia", "-", "-", "-", "-", "-", "too many diagonals"});
  }
  t.print();

  std::cout << "\nfastest steady-state SpMV: " << best_format << "\n"
            << "for frequently-changing sparsity (dynamic graphs), prefer "
               "acsr: its preprocessing is a single row-length scan.\n";
  return 0;
}
