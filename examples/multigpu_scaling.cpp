// Multi-GPU scaling (paper section VIII): split each ACSR bin across the
// two dies of a Tesla K10 and measure the speedup as the matrix grows —
// small matrices cannot saturate even one die, large ones approach 2x.
//
//   ./examples/multigpu_scaling [--devices=2]
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/multi_gpu.hpp"
#include "graph/powerlaw.hpp"

int main(int argc, char** argv) {
  using namespace acsr;
  const Cli cli(argc, argv);
  const int n_dev = static_cast<int>(cli.get_int("devices", 2));
  const auto spec = vgpu::DeviceSpec::tesla_k10().scaled_for_corpus(
      cli.get_int("scale", 64));

  std::cout << "ACSR across " << n_dev
            << " simulated GK104 dies, growing workload:\n\n";
  Table t({"rows", "nnz", "1 GPU us", std::to_string(n_dev) + " GPUs us",
           "speedup"});
  for (int rows : {500, 2000, 8000, 32000, 128000}) {
    graph::PowerLawSpec s;
    s.rows = rows;
    s.cols = rows;
    s.mean_nnz_per_row = 16.0;
    s.alpha = 1.7;
    s.max_row_nnz = rows / 8;
    s.seed = 5;
    const mat::Csr<double> a = graph::powerlaw_matrix(s);

    vgpu::Device single(spec);
    core::AcsrEngine<double> one(single, a);

    std::vector<std::unique_ptr<vgpu::Device>> devs;
    std::vector<vgpu::Device*> ptrs;
    for (int d = 0; d < n_dev; ++d) {
      devs.push_back(std::make_unique<vgpu::Device>(spec));
      ptrs.push_back(devs.back().get());
    }
    core::MultiGpuAcsr<double> multi(ptrs, a);

    std::vector<double> x(static_cast<std::size_t>(rows), 1.0), y;
    const double t1 = one.simulate(x, y);
    const double tn = multi.simulate(x, y);
    t.add_row({Table::integer(rows), Table::integer(a.nnz()),
               Table::num(t1 * 1e6, 2), Table::num(tn * 1e6, 2),
               Table::num(t1 / tn, 2)});
  }
  t.print();
  std::cout << "\nthe bin partitioner deals each bin's rows evenly, so "
               "every device sees the same work shape; scaling is bounded "
               "by workload size, not by imbalance.\n";
  return 0;
}
