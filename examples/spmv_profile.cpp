// Kernel-level profiler: run one SpMV per engine and print the simulator's
// roofline breakdown — which resource binds (issue, flops, DRAM, latency),
// the hardware-event counters, and the bytes-per-nonzero each format
// actually moves. The numbers behind every figure bench, exposed.
//
//   ./examples/spmv_profile [--matrix=HOL] [--device=titan] [--scale=64]
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/factory.hpp"
#include "graph/corpus.hpp"

int main(int argc, char** argv) {
  using namespace acsr;
  const Cli cli(argc, argv);
  const long long scale = cli.get_int("scale", graph::default_scale());
  const auto spec =
      vgpu::DeviceSpec::by_name(cli.get_or("device", "titan"))
          .scaled_for_corpus(scale);
  const auto& entry = graph::corpus_entry(cli.get_or("matrix", "HOL"));
  const mat::Csr<double> md = graph::build_matrix(entry, scale);
  mat::Csr<float> m;
  m.rows = md.rows;
  m.cols = md.cols;
  m.row_off = md.row_off;
  m.col_idx = md.col_idx;
  m.vals.assign(md.vals.begin(), md.vals.end());

  std::cout << "profiling " << entry.abbrev << " (" << m.rows << " rows, "
            << m.nnz() << " nnz) on " << spec.name << "\n\n";

  Table t({"engine", "SpMV us", "bound", "issue us", "flop us", "mem us",
           "lat us", "gmem B/nnz", "tex B/nnz", "warps", "atomics",
           "child grids"});
  core::EngineConfig cfg;
  cfg.hyb_breakeven =
      static_cast<mat::index_t>(std::max<long long>(1, 4096 / scale));
  for (const std::string name :
       {"csr-scalar", "csr", "csr-vector", "coo", "hyb", "brc", "sic",
        "merge-csr", "acsr"}) {
    vgpu::Device dev(spec);
    auto e = core::make_engine<float>(name, dev, m, cfg);
    std::vector<float> x(static_cast<std::size_t>(m.cols), 1.0f), y;
    const double total = e->simulate(x, y);
    const auto& run = e->report().last_run;
    const auto& c = run.counters;
    const double nnz = static_cast<double>(m.nnz());
    // Which single-kernel resource binds (multi-kernel engines report
    // their first kernel's breakdown; the total is the composed time).
    std::string bound = "issue";
    double best = run.issue_s;
    for (const auto& [nm, v] :
         {std::pair<const char*, double>{"flop", run.flop_s},
          {"mem", run.memory_s},
          {"lat", run.latency_s}})
      if (v > best) {
        best = v;
        bound = nm;
      }
    t.add_row({name, Table::num(total * 1e6, 2), bound,
               Table::num(run.issue_s * 1e6, 2),
               Table::num(run.flop_s * 1e6, 2),
               Table::num(run.memory_s * 1e6, 2),
               Table::num(run.latency_s * 1e6, 2),
               Table::num(static_cast<double>(c.gmem_bytes) / nnz, 1),
               Table::num(static_cast<double>(c.tex_bytes) / nnz, 1),
               Table::integer(static_cast<long long>(c.warps)),
               Table::integer(static_cast<long long>(c.atomic_ops)),
               Table::integer(static_cast<long long>(c.child_launches))});
  }
  t.print();
  std::cout << "\ngmem/tex B-per-nnz show each format's traffic "
               "efficiency; 'bound' names the roofline term that sets the "
               "kernel's duration.\n";
  return 0;
}
