// Export the Table-I synthetic corpus as Matrix Market files, so the exact
// matrices behind every figure can be consumed by external tools (or by
// this library on another machine, bit-identically).
//
//   ./examples/export_corpus [--dir=/tmp/acsr_corpus] [--scale=64]
#include <filesystem>
#include <iostream>

#include "common/cli.hpp"
#include "graph/corpus.hpp"
#include "mat/mm_io.hpp"

int main(int argc, char** argv) {
  using namespace acsr;
  const Cli cli(argc, argv);
  const long long scale = cli.get_int("scale", graph::default_scale());
  const std::string dir = cli.get_or("dir", "/tmp/acsr_corpus");
  std::filesystem::create_directories(dir);

  std::size_t total_bytes = 0;
  for (const auto& e : graph::table1_corpus()) {
    const auto m = graph::build_matrix(e, scale);
    const std::string path = dir + "/" + e.abbrev + ".mtx";
    mat::write_matrix_market_file(m.to_coo(), path);
    const auto bytes = std::filesystem::file_size(path);
    total_bytes += bytes;
    std::cout << e.abbrev << " -> " << path << "  (" << m.rows << " rows, "
              << m.nnz() << " nnz, " << bytes / 1024 << " KiB)\n";
  }
  std::cout << "\nwrote " << graph::table1_corpus().size()
            << " matrices, " << total_bytes / (1024 * 1024)
            << " MiB total, at corpus scale 1/" << scale
            << ".\nRound-trip them with examples/format_explorer "
               "--mtx=<path>.\n";
  return 0;
}
