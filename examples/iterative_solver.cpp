// Iterative solver scenario (the paper's Eq. 2-4 context): solve a 2D
// Poisson problem with Conjugate Gradient and watch the format economics —
// for a long fixed-structure solve, HYB's transformation amortises; stop
// early (or change the matrix) and ACSR wins.
//
//   ./examples/iterative_solver [--grid=96] [--scale=64]
#include <iostream>

#include "apps/cg.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/factory.hpp"

int main(int argc, char** argv) {
  using namespace acsr;
  const Cli cli(argc, argv);
  const auto g = static_cast<mat::index_t>(cli.get_int("grid", 96));
  const auto a = apps::laplacian_2d<double>(g, g);
  std::cout << "2D Poisson, " << g << "x" << g << " grid: " << a.rows
            << " unknowns, " << a.nnz() << " non-zeros\n\n";

  const auto spec = vgpu::DeviceSpec::gtx_titan().scaled_for_corpus(
      cli.get_int("scale", 64));
  std::vector<double> b(static_cast<std::size_t>(a.rows), 1.0);

  Table t({"format", "preproc us", "CG iters", "solve us (incl. preproc)",
           "residual"});
  for (const std::string name : {"csr", "ell", "hyb", "acsr"}) {
    vgpu::Device dev(spec);
    auto engine = core::make_engine<double>(name, dev, a);
    const auto res = apps::conjugate_gradient(*engine, b);
    t.add_row({name, Table::num(engine->report().preprocess_s * 1e6, 1),
               Table::integer(res.iterations),
               Table::num(res.total_s * 1e6, 1),
               Table::num(res.residual_norm, 10)});
  }
  t.print();
  std::cout << "\nOn this banded SPD matrix even ELL applies (no long "
               "tail); after hundreds of iterations the transformed "
               "formats have amortised their preprocessing — exactly the "
               "regime Table IV's crossover n describes. Power-law graphs "
               "with evolving structure never reach it.\n";
  return 0;
}
