// Quickstart: build a power-law matrix, run one ACSR SpMV on the simulated
// GTX Titan, and compare against the CSR and HYB baselines.
//
//   ./examples/quickstart [--rows=20000] [--mu=8] [--scale=64]
#include <iostream>

#include "common/cli.hpp"
#include "core/factory.hpp"
#include "graph/powerlaw.hpp"

int main(int argc, char** argv) {
  using namespace acsr;
  const Cli cli(argc, argv);

  // 1. A synthetic power-law matrix (or load your own via mat::read_
  //    matrix_market_file and mat::Csr<double>::from_coo).
  graph::PowerLawSpec spec;
  spec.rows = static_cast<mat::index_t>(cli.get_int("rows", 20000));
  spec.cols = spec.rows;
  spec.mean_nnz_per_row = cli.get_double("mu", 8.0);
  spec.alpha = 1.6;
  spec.max_row_nnz = spec.rows / 8;
  const mat::Csr<double> a = graph::powerlaw_matrix(spec);
  const auto st = a.row_stats();
  std::cout << "matrix: " << a.rows << " x " << a.cols << ", "
            << a.nnz() << " non-zeros (mu " << st.mean << ", sigma "
            << st.stddev << ", max row " << st.max << ")\n\n";

  // 2. A simulated device. scaled_for_corpus shrinks the fixed overheads
  //    to match a reduced-size workload (see DESIGN.md).
  const auto scale = cli.get_int("scale", 64);
  const vgpu::DeviceSpec dev_spec =
      vgpu::DeviceSpec::gtx_titan().scaled_for_corpus(scale);

  // 3. One engine per format; each reports preprocessing, footprint and
  //    simulated SpMV time.
  std::vector<double> x(static_cast<std::size_t>(a.cols), 1.0), y;
  for (const std::string name : {"csr", "hyb", "acsr"}) {
    vgpu::Device dev(dev_spec);
    auto engine = core::make_engine<double>(name, dev, a);
    const double t = engine->simulate(x, y);
    std::cout << engine->name() << ":\n"
              << "  preprocessing  " << engine->report().preprocess_s * 1e6
              << " us\n"
              << "  one SpMV       " << t * 1e6 << " us  ("
              << engine->gflops() << " GFLOPs)\n"
              << "  device memory  " << engine->report().device_bytes
              << " bytes, padding "
              << engine->report().padding_ratio * 100 << "%\n";
  }

  // 4. ACSR-specific introspection: the bin structure of Algorithm 1.
  vgpu::Device dev(dev_spec);
  core::AcsrEngine<double> acsr(dev, a);
  std::cout << "\nACSR launched " << acsr.bin_grids()
            << " bin-specific grids and routed " << acsr.row_grids()
            << " long-tail rows through dynamic parallelism.\n"
            << "y[0] = " << y[0] << " (matches the host reference)\n";
  return 0;
}
