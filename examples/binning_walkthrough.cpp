// Walk through the paper's Figures 1 and 2 on an 8-row example matrix:
// the CSR arrays (Fig. 1a), the HYB split with k = 2 (Fig. 1b), the ACSR
// bins (Fig. 2b) and the grids one ACSR SpMV launches (Fig. 2c/d).
#include <iostream>

#include "common/table.hpp"
#include "core/acsr_engine.hpp"
#include "mat/hyb.hpp"

int main() {
  using namespace acsr;

  // An 8x8 matrix in the spirit of the paper's example: a few 1-2 nnz
  // rows, a few 3-4 nnz rows, and two long rows that land in bin 3+.
  mat::Coo<double> c;
  c.rows = 8;
  c.cols = 8;
  auto row = [&](mat::index_t r, std::initializer_list<mat::index_t> cols) {
    for (mat::index_t j : cols) c.push(r, j, 1.0 + r + 0.1 * j);
  };
  row(0, {0, 3});                          // 2 nnz  -> bin 1
  row(1, {1});                             // 1 nnz  -> bin 1
  row(2, {0, 2, 5, 7});                    // 4 nnz  -> bin 2
  row(3, {0, 1, 2, 3, 4, 5, 6, 7});        // 8 nnz  -> bin 3
  row(4, {6});                             // 1 nnz  -> bin 1
  row(5, {2, 4, 6});                       // 3 nnz  -> bin 2
  row(6, {0, 1, 2, 3, 4, 6, 7});           // 7 nnz  -> bin 3
  row(7, {3, 5, 7});                       // 3 nnz  -> bin 2
  const auto a = mat::Csr<double>::from_coo(c);

  std::cout << "=== Fig. 1a: the CSR representation ===\n"
            << "row_off: ";
  for (auto v : a.row_off) std::cout << v << ' ';
  std::cout << "\ncol_idx: ";
  for (auto v : a.col_idx) std::cout << v << ' ';
  std::cout << "\nvalues:  " << a.vals.size() << " non-zeros\n\n";

  std::cout << "=== Fig. 1b: the HYB split with k = 2 ===\n";
  // The figure fixes k = 2; build that split directly.
  const auto ell2 = mat::Ell<double>::from_csr_with_width(a, 2);
  mat::offset_t coo_tail = a.nnz() - ell2.nnz();
  std::cout << "ELL part: " << a.rows << " rows x " << ell2.width
            << " slots (" << ell2.nnz() << " real entries, "
            << Table::num(ell2.padding_ratio() * 100, 0)
            << "% padding)\nCOO part: " << coo_tail
            << " overflow entries from the long rows\n"
            << "(the library's CUSP heuristic would pick k = "
            << mat::Hyb<double>::choose_k(a, 1) << " here)\n\n";

  std::cout << "=== Fig. 2b: the ACSR bins (bin i holds (2^{i-1}, 2^i] "
               "nnz) ===\n";
  vgpu::Device dev(vgpu::DeviceSpec::gtx_titan());
  core::AcsrOptions opt;
  opt.binning.bin_max = 2;  // the figure's BinMax = 2: bin 3 goes to DP
  core::AcsrEngine<double> engine(dev, a, opt);
  const auto& b = engine.binning();
  for (std::size_t i = 1; i < b.bins.size(); ++i) {
    if (b.bins[i].empty()) continue;
    std::cout << "BIN" << i << " (vector size "
              << core::Binning::vector_size_for_bin(i) << "): rows ";
    for (auto r : b.bins[i]) std::cout << r << ' ';
    std::cout << '\n';
  }
  std::cout << "G1 (dynamic parallelism): rows ";
  for (auto r : b.dp_rows) std::cout << r << ' ';
  std::cout << "\n\n=== Fig. 2c/d: one SpMV's launch sequence ===\n"
            << engine.bin_grids()
            << " bin-specific grids (concurrent streams) + 1 parent grid "
               "launching "
            << engine.row_grids() << " row-specific child grids\n";

  std::vector<double> x(8, 1.0), y;
  engine.simulate(x, y);
  std::cout << "\ny = A*1 = ";
  for (double v : y) std::cout << Table::num(v, 1) << ' ';
  std::cout << "\n(each row handled by exactly one mechanism; results "
               "match the host reference)\n";
  return 0;
}
