// Web-graph ranking: generate an R-MAT web crawl, run PageRank with the
// ACSR engine, and print the top pages — the paper's flagship application
// (section VI-A).
//
//   ./examples/pagerank_webgraph [--scale-log2=13] [--device=titan]
#include <algorithm>
#include <iostream>

#include "apps/pagerank.hpp"
#include "common/cli.hpp"
#include "core/acsr_engine.hpp"
#include "graph/rmat.hpp"

int main(int argc, char** argv) {
  using namespace acsr;
  const Cli cli(argc, argv);

  graph::RmatParams p;
  p.scale = static_cast<int>(cli.get_int("scale-log2", 13));
  p.edges_per_vertex = 12.0;
  p.seed = 2014;
  const mat::Csr<double> adj =
      mat::Csr<double>::from_coo(graph::rmat(p));
  std::cout << "web graph: " << adj.rows << " pages, " << adj.nnz()
            << " links\n";

  // PageRank multiplies by the transposed row-normalised adjacency.
  const mat::Csr<double> m = apps::pagerank_matrix(adj);
  vgpu::Device dev(
      vgpu::DeviceSpec::by_name(cli.get_or("device", "titan"))
          .scaled_for_corpus(cli.get_int("scale", 64)));
  core::AcsrEngine<double> engine(dev, m);

  apps::PageRankConfig cfg;  // d = 0.85, epsilon = 1e-6, as in the paper
  const auto res = apps::pagerank(engine, cfg);
  std::cout << "converged after " << res.iterations
            << " iterations; simulated GPU time "
            << res.total_s * 1e3 << " ms (SpMV share "
            << 100.0 * res.spmv_s / res.total_s << "%)\n\n";

  std::vector<mat::index_t> order(res.scores.size());
  for (std::size_t i = 0; i < order.size(); ++i)
    order[i] = static_cast<mat::index_t>(i);
  std::partial_sort(order.begin(), order.begin() + 10, order.end(),
                    [&](mat::index_t a, mat::index_t b) {
                      return res.scores[static_cast<std::size_t>(a)] >
                             res.scores[static_cast<std::size_t>(b)];
                    });
  std::cout << "top pages by rank:\n";
  for (int i = 0; i < 10; ++i) {
    const auto page = order[static_cast<std::size_t>(i)];
    std::cout << "  #" << i + 1 << "  page " << page << "  score "
              << res.scores[static_cast<std::size_t>(page)] << "  ("
              << adj.row_nnz(page) << " out-links)\n";
  }
  return 0;
}
