// Multi-user personalization serving: build a web-scale R-MAT graph,
// answer many Random-Walk-with-Restart queries as one batched workload
// (rwr_many over the ACSR SpMM kernels), then serve one-shot queries from
// three tenants through the admission-controlled batch scheduler and
// print the per-tenant bill.
//
//   ./examples/rwr_batch [--scale-log2=12] [--users=32] [--device=titan]
#include <cstdio>
#include <iostream>

#include "apps/rwr_batch.hpp"
#include "common/cli.hpp"
#include "core/acsr_engine.hpp"
#include "graph/rmat.hpp"

int main(int argc, char** argv) {
  using namespace acsr;
  const Cli cli(argc, argv);

  graph::RmatParams p;
  p.scale = static_cast<int>(cli.get_int("scale-log2", 12));
  p.edges_per_vertex = 12.0;
  p.seed = 2014;
  const mat::Csr<double> adj = mat::Csr<double>::from_coo(graph::rmat(p));
  const mat::Csr<double> w = apps::rwr_matrix(adj);  // built once, shared
  std::cout << "graph: " << w.rows << " vertices, " << w.nnz()
            << " edges\n";

  vgpu::Device dev(
      vgpu::DeviceSpec::by_name(cli.get_or("device", "titan"))
          .scaled_for_corpus(cli.get_int("scale", 64)));
  core::AcsrEngine<double> engine(dev, w);

  // --- batched iterative personalization ---------------------------------
  const int users = static_cast<int>(cli.get_int("users", 32));
  std::vector<mat::index_t> sources;
  for (int u = 0; u < users; ++u)
    sources.push_back((u * 97) % w.rows);
  const auto batch = apps::rwr_batch(engine, sources);
  int converged = 0;
  for (const auto& q : batch.queries) converged += q.converged ? 1 : 0;
  std::cout << users << " RWR queries, " << converged
            << " converged; one batched sweep "
            << batch.spmm_per_iter_s * 1e3 << " ms vs " << users
            << " scalar sweeps " << batch.seq_per_iter_s * 1e3
            << " ms -> amortization " << batch.speedup() << "x\n\n";

  // --- one-shot serving with per-tenant billing --------------------------
  serve::ServeOptions opt;
  opt.max_batch_width = static_cast<int>(cli.get_int("batch-width", 32));
  serve::BatchScheduler<double> sched(engine, opt);
  apps::run_tenant_scenario(sched, w.rows);
  std::cout << "scheduler: " << sched.served_requests() << " requests in "
            << sched.batches() << " batches (avg width "
            << sched.batch_width_avg() << "), simulated makespan "
            << sched.clock_s() * 1e3 << " ms\n";
  std::printf("%-8s", "tenant");
  for (const auto& m : prof::tenant_metric_registry())
    std::printf("  %20s", m.name);
  std::printf("\n");
  for (const auto& [name, agg] : sched.tenants()) {
    std::printf("%-8s", name.c_str());
    for (const auto& m : prof::tenant_metric_registry())
      std::printf("  %20.6g", m.compute(agg));
    std::printf("\n");
  }
  return 0;
}
