// Evolving social network (paper section VII): a follower graph changes
// every epoch; influence scores (PageRank) are recomputed with warm
// restarts. The incremental-ACSR pipeline ships only the change lists to
// the device, while the CSR/HYB baselines re-copy (and HYB re-transforms)
// the whole matrix.
//
//   ./examples/dynamic_social_network [--users=30000] [--epochs=8]
#include <iostream>

#include "apps/dynamic_pagerank.hpp"
#include "common/cli.hpp"
#include "graph/powerlaw.hpp"

int main(int argc, char** argv) {
  using namespace acsr;
  const Cli cli(argc, argv);

  graph::PowerLawSpec spec;
  spec.rows = static_cast<mat::index_t>(cli.get_int("users", 30000));
  spec.cols = spec.rows;
  spec.mean_nnz_per_row = 12.0;  // average follow count
  spec.alpha = 1.6;              // a few celebrities with huge audiences
  spec.max_row_nnz = spec.rows / 10;
  spec.seed = 77;
  const mat::Csr<double> follows = graph::powerlaw_matrix(spec);
  std::cout << "social network: " << follows.rows << " users, "
            << follows.nnz() << " follow edges\n\n";

  const auto dev_spec = vgpu::DeviceSpec::gtx_titan().scaled_for_corpus(
      cli.get_int("scale", 64));
  vgpu::Device acsr_dev(dev_spec), csr_dev(dev_spec), hyb_dev(dev_spec);

  apps::DynamicPageRankConfig cfg;
  cfg.epochs = static_cast<int>(cli.get_int("epochs", 8));
  cfg.update.row_fraction = 0.10;  // 10% of users change follows per epoch
  const auto res = apps::dynamic_pagerank(
      acsr_dev, csr_dev, hyb_dev, apps::pagerank_matrix(follows), cfg);

  std::cout << "epoch  iters  ACSR ms   CSR ms   HYB ms   vs CSR  vs HYB\n";
  for (const auto& e : res.epochs) {
    std::printf("%5d  %5d  %7.3f  %7.3f  %7.3f  %6.2fx %6.2fx%s\n",
                e.epoch, e.iterations, e.acsr_s * 1e3, e.csr_s * 1e3,
                e.hyb_s * 1e3, e.speedup_vs_csr(), e.speedup_vs_hyb(),
                e.rebuilt ? "  (spare heap exhausted: rebuild)" : "");
  }
  std::cout << "\naverage speedup: " << res.mean_speedup_vs_csr()
            << "x over CSR, " << res.mean_speedup_vs_hyb()
            << "x over HYB\n"
            << "warm restarts cut iterations after epoch 0; the change-"
               "list upload is what keeps ACSR's per-epoch cost flat.\n";
  return 0;
}
