// Request-scoped distributed tracing on the simulated clock (docs/SLO.md).
//
// acsr-prof (src/prof/) observes *launches*; this layer observes
// *requests*: where one tenant query's simulated time went across the
// serving stack — admission queue, batch coalescing, the engine's
// upload/compute streams, the storage tier's drive reads and retry
// backoff. Each serve::BatchScheduler batch opens a span; everything the
// planes below record while that span is open becomes its children, so a
// span tree crosses serve -> engine -> storage without any plane knowing
// about the others (the propagation is the execution context itself,
// carried by the Tracer's open-span stack — the in-process analogue of a
// distributed trace context).
//
// Charge parity: every span that mirrors a StreamTimeline enqueue copies
// that enqueue's duration exactly once, so per-track span charges equal
// per-stream timeline charges — pinned by tests/test_slo.cpp and audited
// by the "slo-span-parity" charge plane of acsr_audit. Spans are a VIEW
// of the timeline, never a second cost model.
//
// Activation (the cached-bool discipline of ACSR_PROF/ACSR_MEMO):
//   ACSR_SLO=1           collect spans + SLO histograms
//   ACSR_TRACE=out.json  implies ACSR_SLO; spans are mirrored onto
//                        "slo:*" tracks of the prof Chrome trace
// With both unset every hook is one never-taken branch on a namespace-
// scope bool; metering stays bit-identical (the kTraced mode of
// tests/test_metering_invariance.cpp).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "slo/histogram.hpp"

namespace acsr::slo {

namespace detail {
bool slo_enabled_from_env();
// Initialised before main() so every hook reads one global bool (the
// same pattern as prof::g_profiler_enabled; acsr_audit gate discipline).
inline bool g_slo_enabled = slo_enabled_from_env();
}  // namespace detail

/// The one branch every tracing/SLO hook sits behind.
inline bool slo_enabled() { return detail::g_slo_enabled; }
/// Programmatic switch (tests, tools, benches).
inline void set_slo_enabled(bool on) { detail::g_slo_enabled = on; }

/// Span taxonomy (docs/SLO.md). Latency spans (kRequest/kQueueWait/
/// kServe) describe one request's lifecycle; execution spans (the rest)
/// mirror timeline work exactly once per enqueue, under the batch that
/// ran it — a batch serves k requests, but its device work must appear
/// once, not k times.
enum class SpanKind {
  kRequest,       ///< admission to result, one per request (root)
  kQueueWait,     ///< admission to batch launch
  kServe,         ///< batch launch to completion, names the batch
  kBatch,         ///< one coalesced width-k SpMM (execution root)
  kUpload,        ///< h2d slab/bin-metadata transfer (ooc streaming)
  kCompute,       ///< slab kernel time on the compute stream
  kIo,            ///< storage-tier drive service (read / timeout hang)
  kRetryBackoff,  ///< recovery/storage retry backoff charged to the clock
};
constexpr int kNumSpanKinds = 8;
const char* span_kind_name(SpanKind k);

/// The request identity carried from serve::Request through the
/// scheduler into the span tree (Request<T>::trace() mints one).
struct TraceContext {
  std::uint64_t request_id = 0;
  std::string tenant;
  double enqueue_s = 0.0;  ///< simulated admission time
};

struct Span {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;  ///< 0 = root (no enclosing span)
  SpanKind kind{};
  std::string name;
  std::string track;    ///< timeline resource ("h2d", "compute", "ssd0", ...)
  std::string tenant;   ///< latency spans only
  std::uint64_t request = 0;  ///< latency spans only
  double start_s = 0.0;
  double end_s = 0.0;
  double duration() const { return end_s - start_s; }
};

class Tracer {
 public:
  static Tracer& instance();

  // --- execution spans (callers gate on slo_enabled()) --------------------
  /// Open a span at an absolute simulated time; it becomes the parent of
  /// everything recorded until the matching close(). Returns the span id.
  std::uint64_t open(SpanKind kind, std::string name, std::string track,
                     double start_s);
  /// Close the innermost open span.
  void close(double end_s);
  /// Innermost open span id (0 when none).
  std::uint64_t current() const;
  /// Append " [key=value]" to the innermost open span's name (the memo
  /// plane marks capture/replay this way). No-op when nothing is open.
  void annotate_open(const std::string& key, const std::string& value);

  /// Record a completed child span at absolute times under the innermost
  /// open span.
  std::uint64_t add(SpanKind kind, std::string name, std::string track,
                    double start_s, double end_s);
  /// Cursor-append: a child of known duration placed at the parent's
  /// per-track cursor (first charge starts at the parent's start). Used
  /// by planes that know durations but keep no absolute clock of their
  /// own (ResilientEngine's retry backoff).
  std::uint64_t charge(SpanKind kind, std::string name, std::string track,
                       double duration_s);

  /// Time-base bridge for planes running a private StreamTimeline whose
  /// zero is "now" (OocCsrEngine creates one per simulate): anchor()
  /// returns the absolute time their timeline zero maps to under the
  /// current parent; advance_anchor() moves it past the work they added,
  /// so consecutive private timelines under one batch concatenate
  /// instead of overlapping.
  double anchor() const;
  void advance_anchor(double end_s);

  // --- latency spans -------------------------------------------------------
  /// Record one request's completed tree: a kRequest root spanning
  /// admission..completion with kQueueWait (admission..launch) and
  /// kServe (launch..completion, named after the carrying batch)
  /// children, all on the request's own "req:<tenant>#<id>" track.
  void record_request(const TraceContext& ctx, double launch_s,
                      double end_s, const std::string& batch_label);

  // --- queries --------------------------------------------------------------
  const std::vector<Span>& spans() const { return spans_; }
  /// Per-span-kind duration histogram (deterministic percentiles).
  const LatencyHistogram& kind_histogram(SpanKind k) const {
    return hists_[static_cast<std::size_t>(k)];
  }
  /// Sum of completed span durations on one track — the quantity that
  /// must equal the matching StreamTimeline stream's charges.
  double track_charge(const std::string& track) const;

  /// Drop all spans, cursors and histograms (tests, per-run tool use).
  void clear();

 private:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  struct OpenSpan {
    Span span;
    double anchor = 0.0;  ///< next free time for private-timeline children
  };

  /// Finish a span: histogram its duration, mirror it onto the prof
  /// trace when the profiler is on, store it.
  void finish(Span s);

  std::uint64_t next_id_ = 1;
  std::vector<OpenSpan> open_;
  double root_anchor_ = 0.0;
  std::vector<Span> spans_;
  std::map<std::pair<std::uint64_t, std::string>, double> cursors_;
  std::array<LatencyHistogram, kNumSpanKinds> hists_{};
};

}  // namespace acsr::slo
