// Per-tenant SLO objectives with sliding-window burn-rate evaluation
// (docs/SLO.md).
//
// An objective binds a tenant to a latency target and an error budget:
// the fraction of requests in a sliding window allowed to miss the
// target. The burn rate is the observed violation fraction over that
// budget — burn 1.0 means the tenant is consuming its budget exactly as
// fast as allowed, > 1 means the budget exhausts early (the standard SRE
// multi-window burn alerting, collapsed to one window on the simulated
// clock, where there is no wall-time axis to window over). Breaches are
// edge-triggered typed events: one BreachEvent when the burn rate
// crosses the threshold, none while it stays above, re-armed when it
// falls back below — the same discipline as the fault plane's recovery
// log, which acsr_slo wires breaches into.
//
// All evaluation is on simulated time and fixed-bucket histograms
// (histogram.hpp), so every percentile, burn rate and breach below is
// bit-deterministic — the property the acsr_slo --check CI gate and the
// determinism tests lean on.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "prof/metrics.hpp"
#include "slo/histogram.hpp"

namespace acsr::slo {

struct SloObjective {
  std::string tenant = "*";       ///< "*" = default for unlisted tenants
  double latency_target_s = 1.0;  ///< request admission..completion bound
  double error_budget = 0.1;      ///< allowed violation fraction in window
  std::size_t window = 64;        ///< sliding window length, requests
  double burn_threshold = 1.0;    ///< breach when burn_rate >= this
};

/// Typed SLO breach: the tenant's burn rate crossed its threshold at
/// `at_s`, observed on `request_id`.
struct BreachEvent {
  std::string tenant;
  std::uint64_t request_id = 0;
  double at_s = 0.0;
  double burn_rate = 0.0;
  double target_s = 0.0;
  double observed_s = 0.0;
  std::string describe() const;
};

class SloMonitor {
 public:
  /// Install or replace one tenant's objective ("*" sets the default).
  void set_objective(SloObjective o);
  const SloObjective& objective_for(const std::string& tenant) const;

  /// Record one served request. Updates the tenant's histograms and
  /// sliding window, evaluates the burn rate, and emits an edge-
  /// triggered BreachEvent (breaches(), plus on_breach if set) when the
  /// threshold is crossed.
  void observe(const std::string& tenant, std::uint64_t request_id,
               double queue_wait_s, double latency_s, double now_s);

  /// Deterministic per-tenant summary; "*" aggregates every tenant.
  prof::SloAgg snapshot(const std::string& tenant) const;
  std::vector<std::string> tenant_names() const;
  const std::vector<BreachEvent>& breaches() const { return breaches_; }
  /// Breach sink (the recovery-log wiring: acsr_slo points this at
  /// ResilientEngine::note_event).
  std::function<void(const BreachEvent&)> on_breach;

  void clear();

 private:
  struct TenantState {
    LatencyHistogram latency;
    LatencyHistogram queue_wait;
    std::deque<bool> window;  ///< violation flags, newest at back
    std::size_t window_violations = 0;
    std::uint64_t requests = 0;
    std::uint64_t violations = 0;
    std::uint64_t breaches = 0;
    double burn_rate = 0.0;
    bool in_breach = false;  ///< edge-trigger latch
  };

  static prof::SloAgg to_agg(const TenantState& s);
  void update(TenantState& s, const SloObjective& o,
              const std::string& tenant, std::uint64_t request_id,
              double queue_wait_s, double latency_s, double now_s);

  SloObjective default_objective_;
  std::map<std::string, SloObjective> objectives_;
  std::map<std::string, TenantState> tenants_;
  TenantState all_;  ///< the "*" aggregate view
  std::vector<BreachEvent> breaches_;
};

/// Parse an objectives document (the --check=slo.json schema):
///   {"objectives": [{"tenant": "*", "latency_target_s": 1.0,
///                    "error_budget": 0.1, "window": 64,
///                    "burn_threshold": 1.0}, ...]}
/// Missing fields keep their defaults; throws acsr::InputError on
/// malformed JSON or types.
std::vector<SloObjective> parse_objectives(const std::string& json_text);

}  // namespace acsr::slo
