#include "slo/slo.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/json.hpp"
#include "prof/prof.hpp"

namespace acsr::slo {

std::string BreachEvent::describe() const {
  return "slo:breach tenant '" + tenant + "' burn " +
         std::to_string(burn_rate) + " at request #" +
         std::to_string(request_id) + " (observed " +
         std::to_string(observed_s * 1e3) + " ms, target " +
         std::to_string(target_s * 1e3) + " ms)";
}

void SloMonitor::set_objective(SloObjective o) {
  ACSR_REQUIRE(o.latency_target_s > 0.0, "SLO latency target must be > 0");
  ACSR_REQUIRE(o.error_budget > 0.0 && o.error_budget <= 1.0,
               "SLO error budget must be in (0, 1]");
  ACSR_REQUIRE(o.window >= 1, "SLO window must be >= 1 request");
  ACSR_REQUIRE(o.burn_threshold > 0.0, "SLO burn threshold must be > 0");
  if (o.tenant == "*")
    default_objective_ = o;
  else
    objectives_[o.tenant] = std::move(o);
}

const SloObjective& SloMonitor::objective_for(
    const std::string& tenant) const {
  const auto it = objectives_.find(tenant);
  return it == objectives_.end() ? default_objective_ : it->second;
}

void SloMonitor::update(TenantState& s, const SloObjective& o,
                        const std::string& tenant,
                        std::uint64_t request_id, double queue_wait_s,
                        double latency_s, double now_s) {
  s.requests += 1;
  s.latency.add(latency_s);
  s.queue_wait.add(queue_wait_s);

  const bool violated = latency_s > o.latency_target_s;
  if (violated) s.violations += 1;
  s.window.push_back(violated);
  if (violated) s.window_violations += 1;
  while (s.window.size() > o.window) {
    if (s.window.front()) s.window_violations -= 1;
    s.window.pop_front();
  }
  const double fraction = static_cast<double>(s.window_violations) /
                          static_cast<double>(s.window.size());
  s.burn_rate = fraction / o.error_budget;

  if (s.burn_rate >= o.burn_threshold) {
    if (!s.in_breach) {
      s.in_breach = true;
      s.breaches += 1;
      BreachEvent ev;
      ev.tenant = tenant;
      ev.request_id = request_id;
      ev.at_s = now_s;
      ev.burn_rate = s.burn_rate;
      ev.target_s = o.latency_target_s;
      ev.observed_s = latency_s;
      if (prof::profiler_enabled()) [[unlikely]]
        prof::Profiler::instance().instant(ev.describe());
      breaches_.push_back(ev);
      if (on_breach) on_breach(breaches_.back());
    }
  } else {
    s.in_breach = false;  // re-arm once the burn drops below threshold
  }
}

void SloMonitor::observe(const std::string& tenant,
                         std::uint64_t request_id, double queue_wait_s,
                         double latency_s, double now_s) {
  ACSR_CHECK(queue_wait_s >= 0.0 && latency_s >= 0.0);
  const SloObjective& o = objective_for(tenant);
  update(tenants_[tenant], o, tenant, request_id, queue_wait_s, latency_s,
         now_s);
  // The "*" view aggregates histograms and counts; burn/breach stay
  // per-tenant (aggregating violation flags across different targets
  // would alert on nobody's objective).
  TenantState& a = all_;
  a.requests += 1;
  a.latency.add(latency_s);
  a.queue_wait.add(queue_wait_s);
  if (latency_s > o.latency_target_s) a.violations += 1;
}

prof::SloAgg SloMonitor::to_agg(const TenantState& s) {
  prof::SloAgg a;
  a.requests = s.requests;
  a.violations = s.violations;
  a.breaches = s.breaches;
  a.burn_rate = s.burn_rate;
  a.latency_p50_s = s.latency.quantile(0.50);
  a.latency_p95_s = s.latency.quantile(0.95);
  a.latency_p99_s = s.latency.quantile(0.99);
  a.latency_max_s = s.latency.max();
  a.queue_wait_p50_s = s.queue_wait.quantile(0.50);
  a.queue_wait_p95_s = s.queue_wait.quantile(0.95);
  a.queue_wait_max_s = s.queue_wait.max();
  return a;
}

prof::SloAgg SloMonitor::snapshot(const std::string& tenant) const {
  if (tenant == "*") {
    prof::SloAgg a = to_agg(all_);
    double burn = 0.0;
    std::uint64_t breaches = 0;
    for (const auto& [name, st] : tenants_) {
      burn = std::max(burn, st.burn_rate);
      breaches += st.breaches;
    }
    a.burn_rate = burn;  // worst tenant: the number an operator pages on
    a.breaches = breaches;
    return a;
  }
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? prof::SloAgg{} : to_agg(it->second);
}

std::vector<std::string> SloMonitor::tenant_names() const {
  std::vector<std::string> names;
  names.reserve(tenants_.size());
  for (const auto& [name, st] : tenants_) names.push_back(name);
  return names;
}

void SloMonitor::clear() {
  tenants_.clear();
  all_ = TenantState{};
  breaches_.clear();
}

std::vector<SloObjective> parse_objectives(const std::string& json_text) {
  json::Value doc;
  std::string err;
  ACSR_REQUIRE(json::parse(json_text, &doc, &err),
               "slo objectives: JSON parse failed: " << err);
  ACSR_REQUIRE(doc.is_object(), "slo objectives: document must be an object");
  const json::Value* list = doc.find("objectives");
  ACSR_REQUIRE(list != nullptr && list->is_array(),
               "slo objectives: missing 'objectives' array");
  std::vector<SloObjective> out;
  for (const json::Value& v : list->as_array()) {
    ACSR_REQUIRE(v.is_object(), "slo objectives: entries must be objects");
    SloObjective o;
    const auto number_field = [&v](const char* name, const json::Value* t) {
      ACSR_REQUIRE(t->is_number(),
                   "slo objectives: '" << name << "' must be a number");
      return t->as_number();
    };
    if (const json::Value* t = v.find("tenant")) {
      ACSR_REQUIRE(t->is_string(), "slo objectives: 'tenant' must be a string");
      o.tenant = t->as_string();
    }
    if (const json::Value* t = v.find("latency_target_s"))
      o.latency_target_s = number_field("latency_target_s", t);
    if (const json::Value* t = v.find("error_budget"))
      o.error_budget = number_field("error_budget", t);
    if (const json::Value* t = v.find("window"))
      o.window = static_cast<std::size_t>(number_field("window", t));
    if (const json::Value* t = v.find("burn_threshold"))
      o.burn_threshold = number_field("burn_threshold", t);
    out.push_back(std::move(o));
  }
  ACSR_REQUIRE(!out.empty(), "slo objectives: empty 'objectives' array");
  return out;
}

}  // namespace acsr::slo
