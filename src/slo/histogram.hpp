// Streaming fixed-bucket log-linear latency histogram (docs/SLO.md).
//
// The SLO plane needs percentiles that are (a) computable online over an
// unbounded request stream in O(1) memory, and (b) bit-deterministic —
// the same request stream must yield the same p99 on every run and under
// every executor plane (ACSR_MEMO on/off, traced/untraced), because
// tests and the acsr_slo --check CI gate pin them. Both rule out
// sample-reservoir estimators; a fixed bucket layout gives exact
// reproducibility at bounded resolution.
//
// Layout: 9 decades, 1e-7 s .. 1e2 s, each divided into 9 linear
// sub-buckets ([1,2) .. [9,10) of the decade's base), plus an underflow
// and an overflow bucket — 83 buckets total. Bucket selection is a
// decade walk plus one integer divide of the value by the decade base:
// no log() call, so the boundaries are exact IEEE arithmetic, identical
// on every libm. A quantile reports its bucket's upper bound (a
// guaranteed over-estimate within one sub-bucket, <= 1/9 relative
// error); the true maximum is tracked exactly on the side.
#pragma once

#include <array>
#include <cstdint>

#include "common/check.hpp"

namespace acsr::slo {

class LatencyHistogram {
 public:
  static constexpr int kDecades = 9;        ///< 1e-7 .. 1e2 seconds
  static constexpr int kPerDecade = 9;      ///< linear [1,2)..[9,10) splits
  static constexpr double kFloor = 1e-7;    ///< below: underflow bucket
  /// under + 9x9 log-linear + over.
  static constexpr int kBuckets = kDecades * kPerDecade + 2;

  /// Bucket index of a non-negative duration.
  static int bucket_of(double v) {
    ACSR_CHECK(v >= 0.0);
    if (v < kFloor) return 0;
    double base = kFloor;
    for (int d = 0; d < kDecades; ++d) {
      const double next = base * 10.0;
      if (v < next) {
        const int sub = static_cast<int>(v / base) - 1;  // 0..8
        return 1 + d * kPerDecade + sub;
      }
      base = next;
    }
    return kBuckets - 1;  // overflow
  }

  /// Upper bound of a bucket's value range (the quantile estimate it
  /// reports). Underflow reports the floor; overflow callers substitute
  /// the exact tracked max.
  static double bucket_upper(int b) {
    ACSR_CHECK(b >= 0 && b < kBuckets);
    if (b == 0) return kFloor;
    if (b == kBuckets - 1) return kFloor * 1e9;  // 1e2 s, nominal
    const int i = b - 1;
    double base = kFloor;
    for (int d = 0; d < i / kPerDecade; ++d) base *= 10.0;
    return base * static_cast<double>(i % kPerDecade + 2);
  }

  void add(double v) {
    counts_[static_cast<std::size_t>(bucket_of(v))] += 1;
    count_ += 1;
    sum_ += v;
    if (v > max_) max_ = v;
  }

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  /// Exact maximum observed (0 when empty).
  double max() const { return max_; }
  double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }

  /// Deterministic quantile estimate, q in [0, 1]: the upper bound of the
  /// first bucket whose cumulative count reaches ceil(q * count). q = 1
  /// (or any q landing in the overflow bucket) reports the exact max.
  double quantile(double q) const {
    ACSR_CHECK(q >= 0.0 && q <= 1.0);
    if (count_ == 0) return 0.0;
    if (q == 1.0) return max_;  // p100 is the tracked-exact maximum
    std::uint64_t target = static_cast<std::uint64_t>(
        q * static_cast<double>(count_) + 0.9999999999);
    if (target == 0) target = 1;
    if (target > count_) target = count_;
    std::uint64_t cum = 0;
    for (int b = 0; b < kBuckets; ++b) {
      cum += counts_[static_cast<std::size_t>(b)];
      if (cum >= target)
        return b == kBuckets - 1 ? max_ : bucket_upper(b);
    }
    return max_;  // unreachable: cum == count_ after the loop
  }

  const std::array<std::uint64_t, kBuckets>& buckets() const {
    return counts_;
  }

  bool operator==(const LatencyHistogram& o) const {
    return counts_ == o.counts_ && count_ == o.count_ && sum_ == o.sum_ &&
           max_ == o.max_;
  }

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double max_ = 0.0;
};

}  // namespace acsr::slo
