#include "slo/trace.hpp"

#include <cstdlib>

#include "common/check.hpp"
#include "prof/prof.hpp"

namespace acsr::slo {

namespace detail {
bool slo_enabled_from_env() {
  const char* s = std::getenv("ACSR_SLO");
  if (s != nullptr && s[0] == '1') return true;
  // ACSR_TRACE implies the slo plane: a trace without request spans
  // answers none of the questions docs/SLO.md poses.
  const char* t = std::getenv("ACSR_TRACE");
  return t != nullptr && t[0] != '\0';
}
}  // namespace detail

const char* span_kind_name(SpanKind k) {
  switch (k) {
    case SpanKind::kRequest:
      return "request";
    case SpanKind::kQueueWait:
      return "queue-wait";
    case SpanKind::kServe:
      return "serve";
    case SpanKind::kBatch:
      return "batch";
    case SpanKind::kUpload:
      return "upload";
    case SpanKind::kCompute:
      return "compute";
    case SpanKind::kIo:
      return "io";
    case SpanKind::kRetryBackoff:
      return "retry-backoff";
  }
  return "?";
}

Tracer& Tracer::instance() {
  static Tracer t;
  return t;
}

void Tracer::finish(Span s) {
  ACSR_CHECK_MSG(s.end_s >= s.start_s,
                 "slo: span '" << s.name << "' ends before it starts");
  hists_[static_cast<std::size_t>(s.kind)].add(s.duration());
  if (prof::profiler_enabled()) [[unlikely]]
    prof::Profiler::instance().add_completed_span("slo:" + s.track, s.name,
                                                  s.start_s, s.end_s);
  spans_.push_back(std::move(s));
}

std::uint64_t Tracer::open(SpanKind kind, std::string name,
                           std::string track, double start_s) {
  OpenSpan o;
  o.span.id = next_id_++;
  o.span.parent = current();
  o.span.kind = kind;
  o.span.name = std::move(name);
  o.span.track = std::move(track);
  o.span.start_s = start_s;
  o.anchor = start_s;
  open_.push_back(std::move(o));
  return open_.back().span.id;
}

void Tracer::close(double end_s) {
  ACSR_CHECK_MSG(!open_.empty(), "slo: close with no open span");
  Span s = std::move(open_.back().span);
  open_.pop_back();
  s.end_s = end_s;
  finish(std::move(s));
}

std::uint64_t Tracer::current() const {
  return open_.empty() ? 0 : open_.back().span.id;
}

void Tracer::annotate_open(const std::string& key,
                           const std::string& value) {
  if (open_.empty()) return;
  open_.back().span.name += " [" + key + "=" + value + "]";
}

std::uint64_t Tracer::add(SpanKind kind, std::string name,
                          std::string track, double start_s, double end_s) {
  Span s;
  s.id = next_id_++;
  s.parent = current();
  s.kind = kind;
  s.name = std::move(name);
  s.track = std::move(track);
  s.start_s = start_s;
  s.end_s = end_s;
  const std::uint64_t id = s.id;
  finish(std::move(s));
  return id;
}

std::uint64_t Tracer::charge(SpanKind kind, std::string name,
                             std::string track, double duration_s) {
  ACSR_CHECK(duration_s >= 0.0);
  const std::uint64_t parent = current();
  const auto key = std::make_pair(parent, track);
  auto it = cursors_.find(key);
  if (it == cursors_.end()) {
    const double base = open_.empty() ? 0.0 : open_.back().span.start_s;
    it = cursors_.emplace(key, base).first;
  }
  const double start = it->second;
  it->second = start + duration_s;
  return add(kind, std::move(name), std::move(track), start,
             start + duration_s);
}

double Tracer::anchor() const {
  return open_.empty() ? root_anchor_ : open_.back().anchor;
}

void Tracer::advance_anchor(double end_s) {
  double& a = open_.empty() ? root_anchor_ : open_.back().anchor;
  if (end_s > a) a = end_s;
}

void Tracer::record_request(const TraceContext& ctx, double launch_s,
                            double end_s, const std::string& batch_label) {
  ACSR_CHECK(ctx.enqueue_s <= launch_s && launch_s <= end_s);
  const std::string track =
      "req:" + ctx.tenant + "#" + std::to_string(ctx.request_id);
  Span root;
  root.id = next_id_++;
  root.parent = 0;
  root.kind = SpanKind::kRequest;
  root.name = "request " + ctx.tenant + "#" + std::to_string(ctx.request_id);
  root.track = track;
  root.tenant = ctx.tenant;
  root.request = ctx.request_id;
  root.start_s = ctx.enqueue_s;
  root.end_s = end_s;

  Span wait;
  wait.id = next_id_++;
  wait.parent = root.id;
  wait.kind = SpanKind::kQueueWait;
  wait.name = "queue-wait";
  wait.track = track;
  wait.tenant = ctx.tenant;
  wait.request = ctx.request_id;
  wait.start_s = ctx.enqueue_s;
  wait.end_s = launch_s;

  Span serve;
  serve.id = next_id_++;
  serve.parent = root.id;
  serve.kind = SpanKind::kServe;
  serve.name = "serve:" + batch_label;
  serve.track = track;
  serve.tenant = ctx.tenant;
  serve.request = ctx.request_id;
  serve.start_s = launch_s;
  serve.end_s = end_s;

  finish(std::move(root));
  finish(std::move(wait));
  finish(std::move(serve));
}

double Tracer::track_charge(const std::string& track) const {
  double t = 0.0;
  for (const Span& s : spans_)
    if (s.track == track) t += s.duration();
  return t;
}

void Tracer::clear() {
  next_id_ = 1;
  open_.clear();
  root_anchor_ = 0.0;
  spans_.clear();
  cursors_.clear();
  hists_ = {};
}

}  // namespace acsr::slo
