// Multi-tenant SpMV request plane: typed requests, the bounded admission
// queue, and the overload rejection.
//
// A request is one query vector against the resident matrix (one column
// of a future batched SpMM), tagged with the tenant that pays for it, a
// scheduling priority and an optional deadline. Admission control is a
// hard queue bound with shed-on-overload semantics: a full queue rejects
// the submit with a typed OverloadError instead of growing without bound
// — the standard head-of-line protection of a serving system (the
// FlashGraph-style dispatcher ACSR's graph workloads sit behind).
//
// All time here is the scheduler's *simulated* clock (seconds on the
// virtual GPU timeline), never host wall-clock — the whole plane stays
// bit-deterministic, like everything else in the repo.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "slo/trace.hpp"

namespace acsr::serve {

/// Admission-control rejection: the bounded queue is full and the request
/// was shed. A client distinguishes this (back off and retry) from
/// InvariantError (a bug) by type, and reads the shed-time queue state —
/// depth and the oldest pending deadline — to choose a backoff without a
/// second round trip (an infinite oldest deadline means the backlog is
/// bulk traffic; a near one means the queue is drowning in urgent work).
class OverloadError : public acsr::InputError {
 public:
  OverloadError(const std::string& what, std::size_t queue_depth,
                double oldest_deadline_s)
      : acsr::InputError(what),
        queue_depth_(queue_depth),
        oldest_deadline_s_(oldest_deadline_s) {}

  /// Pending requests at the moment this submit was shed.
  std::size_t queue_depth() const { return queue_depth_; }
  /// Earliest deadline among them (+inf when none carries one).
  double oldest_deadline_s() const { return oldest_deadline_s_; }

 private:
  std::size_t queue_depth_;
  double oldest_deadline_s_;
};

/// One tenant query: y = A x for the scheduler's resident engine.
template <class T>
struct Request {
  std::vector<T> x;          ///< query vector, engine->cols() elements
  std::string tenant;        ///< billing identity
  int priority = 0;          ///< higher schedules first
  /// Absolute simulated time by which the tenant wants the result;
  /// breaks priority ties (earliest first). Informational otherwise.
  double deadline_s = std::numeric_limits<double>::infinity();
  std::uint64_t id = 0;            ///< assigned by the queue, unique
  double enqueue_clock_s = 0.0;    ///< simulated admission time

  /// The tracing identity this request carries through the scheduler into
  /// its span tree (docs/SLO.md) — the serve plane's TraceContext.
  slo::TraceContext trace() const { return {id, tenant, enqueue_clock_s}; }
};

/// Bounded FIFO with priority extraction. push() sheds on overload;
/// pop_best() returns the highest-priority request, ties broken by
/// earliest deadline, then admission order — the order the scheduler
/// fills vector blocks in.
template <class T>
class RequestQueue {
 public:
  explicit RequestQueue(std::size_t capacity) : capacity_(capacity) {
    ACSR_REQUIRE(capacity_ >= 1, "RequestQueue needs capacity >= 1");
  }

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return q_.size(); }
  bool empty() const { return q_.empty(); }

  /// Admit one request, stamping id and admission time. Throws
  /// OverloadError — carrying the queue depth and the oldest pending
  /// deadline — when the queue is at capacity (shed-on-overload).
  std::uint64_t push(Request<T> r, double clock_s) {
    if (q_.size() >= capacity_) {
      double oldest = std::numeric_limits<double>::infinity();
      for (const Request<T>& p : q_) oldest = std::min(oldest, p.deadline_s);
      throw OverloadError("request queue full (" +
                              std::to_string(capacity_) +
                              " pending): request from tenant '" + r.tenant +
                              "' shed",
                          q_.size(), oldest);
    }
    r.id = next_id_++;
    r.enqueue_clock_s = clock_s;
    q_.push_back(std::move(r));
    return q_.back().id;
  }

  /// Extract the best request: max priority, then min deadline, then min
  /// id. The id tie-break is CONTRACTUAL FIFO: ids are assigned by push()
  /// in strictly increasing admission order, so two requests equal on
  /// priority and deadline dequeue in the order they were admitted — the
  /// fairness property tenants observe and tests/test_slo.cpp pins
  /// (without it, equal-priority batching order would depend on deque
  /// layout). Precondition: !empty().
  Request<T> pop_best() {
    ACSR_CHECK(!q_.empty());
    std::size_t best = 0;
    for (std::size_t i = 1; i < q_.size(); ++i) {
      const Request<T>& a = q_[i];
      const Request<T>& b = q_[best];
      if (a.priority != b.priority) {
        if (a.priority > b.priority) best = i;
      } else if (a.deadline_s != b.deadline_s) {
        if (a.deadline_s < b.deadline_s) best = i;
      } else if (a.id < b.id) {  // FIFO by admission id
        best = i;
      }
    }
    Request<T> r = std::move(q_[best]);
    q_.erase(q_.begin() + static_cast<std::ptrdiff_t>(best));
    return r;
  }

 private:
  std::size_t capacity_;
  std::uint64_t next_id_ = 1;
  std::deque<Request<T>> q_;
};

}  // namespace acsr::serve
