// BatchScheduler: coalesces admitted tenant requests into vector blocks
// and serves them through the engine's batched SpMM path.
//
// The economics this implements are the tentpole's point: k queued
// vectors served as one width-k SpMM sweep the matrix once instead of k
// times, so the simulated cost per request falls with the batch width
// (docs/SERVING.md quantifies the curve). The scheduler keeps a simulated
// clock, advanced only by the batches it runs; queue wait and per-tenant
// billed cost are measured on that clock, which makes every number here
// bit-reproducible.
//
// Billing: a width-k batch's simulated seconds are split evenly over its
// k requests (each column costs the same device work), and each request's
// share is charged to its tenant's prof::TenantAgg — the registry that
// acsr_prof --tenants renders and scripts/lint.sh rule 4 keeps complete.
#pragma once

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "mat/dense_block.hpp"
#include "prof/metrics.hpp"
#include "serve/request.hpp"
#include "slo/slo.hpp"
#include "slo/trace.hpp"
#include "spmv/engine.hpp"

namespace acsr::serve {

struct ServeOptions {
  /// Maximum vector-block width one batch coalesces (the tunable of the
  /// throughput-vs-width bench; docs/PERF.md has the measured curve).
  int max_batch_width = 32;
  /// Admission bound: pending requests beyond this are shed with a typed
  /// OverloadError at submit().
  std::size_t queue_capacity = 256;
  /// Feed the SLO monitor (latency/queue-wait histograms, burn-rate
  /// evaluation) even when the slo plane's env gate is off — how
  /// bench_wallclock collects tail-latency percentiles without paying
  /// for span recording. The env gate (ACSR_SLO / ACSR_TRACE) enables
  /// both the monitor and span tracing.
  bool observe_slo = false;
};

template <class T>
class BatchScheduler {
 public:
  BatchScheduler(spmv::SpmvEngine<T>& engine, ServeOptions opt = {})
      : engine_(engine), opt_(opt), queue_(opt.queue_capacity) {
    ACSR_REQUIRE(opt_.max_batch_width >= 1,
                 "BatchScheduler needs max_batch_width >= 1");
  }

  const ServeOptions& options() const { return opt_; }
  double clock_s() const { return clock_s_; }
  std::size_t pending() const { return queue_.size(); }

  /// Admit one request. Validates the vector dimension against the
  /// resident matrix, stamps the simulated admission time, and returns
  /// the request id used to fetch the result after drain(). Throws
  /// OverloadError when the queue is full.
  std::uint64_t submit(std::vector<T> x, const std::string& tenant,
                       int priority = 0,
                       double deadline_s =
                           std::numeric_limits<double>::infinity()) {
    ACSR_REQUIRE(static_cast<mat::index_t>(x.size()) == engine_.cols(),
                 "request vector length must equal matrix columns");
    Request<T> r;
    r.x = std::move(x);
    r.tenant = tenant;
    r.priority = priority;
    r.deadline_s = deadline_s;
    return queue_.push(std::move(r), clock_s_);
  }

  /// Run one batch: pop up to max_batch_width requests (priority first),
  /// coalesce them into a vector block, serve it through simulate_batch,
  /// advance the clock and bill the tenants. Returns the batch width, or
  /// 0 when idle.
  int step() {
    if (queue_.empty()) return 0;
    const int width = static_cast<int>(
        std::min<std::size_t>(queue_.size(),
                              static_cast<std::size_t>(opt_.max_batch_width)));
    std::vector<Request<T>> batch;
    batch.reserve(static_cast<std::size_t>(width));
    for (int c = 0; c < width; ++c) batch.push_back(queue_.pop_best());

    mat::DenseBlock<T> x_block(engine_.cols(), width);
    for (int c = 0; c < width; ++c)
      x_block.set_column(c, batch[static_cast<std::size_t>(c)].x);
    mat::DenseBlock<T> y_block;

    // The batch span is the execution root: every engine/storage span the
    // planes below record during simulate_batch nests under it, so one
    // request's tree crosses serve -> engine -> storage while the batch's
    // device work appears exactly once (not once per request).
    const double launch_s = clock_s_;
    const std::string batch_label =
        "batch" + std::to_string(batches_) + "/w" + std::to_string(width);
    const bool traced = slo::slo_enabled();
    if (traced) [[unlikely]]
      slo::Tracer::instance().open(slo::SpanKind::kBatch, batch_label,
                                   "serve", launch_s);
    const double batch_s = engine_.simulate_batch(x_block, y_block);
    if (traced) [[unlikely]]
      slo::Tracer::instance().close(launch_s + batch_s);
    const double end_s = launch_s + batch_s;

    // Wait is measured to the batch's *launch* (the current clock); the
    // batch's own duration is service time, not queueing.
    std::set<std::string> tenants_in_batch;
    for (int c = 0; c < width; ++c) {
      const Request<T>& r = batch[static_cast<std::size_t>(c)];
      prof::TenantAgg& t = tenants_[r.tenant];
      t.requests += 1;
      t.batch_width_sum += static_cast<std::uint64_t>(width);
      t.cost_s += batch_s / width;
      t.queue_wait_s += clock_s_ - r.enqueue_clock_s;
      tenants_in_batch.insert(r.tenant);
      results_[r.id] = y_block.column(c);
      if (traced || opt_.observe_slo) [[unlikely]]
        slo_.observe(r.tenant, r.id, launch_s - r.enqueue_clock_s,
                     end_s - r.enqueue_clock_s, end_s);
      if (traced) [[unlikely]]
        slo::Tracer::instance().record_request(r.trace(), launch_s, end_s,
                                               batch_label);
    }
    for (const std::string& name : tenants_in_batch)
      tenants_[name].batches += 1;

    clock_s_ += batch_s;
    batches_ += 1;
    served_ += static_cast<std::uint64_t>(width);
    width_sum_ += static_cast<std::uint64_t>(width);
    return width;
  }

  /// Drain the queue; returns the number of batches run.
  int drain() {
    int n = 0;
    while (step() > 0) ++n;
    return n;
  }

  /// Result of a served request (empty lookup is an invariant violation —
  /// results are kept until taken).
  std::vector<T> take_result(std::uint64_t id) {
    auto it = results_.find(id);
    ACSR_CHECK(it != results_.end());
    std::vector<T> y = std::move(it->second);
    results_.erase(it);
    return y;
  }

  // --- serving observability ----------------------------------------------
  std::uint64_t batches() const { return batches_; }
  std::uint64_t served_requests() const { return served_; }
  /// Mean coalesced width over every batch run so far.
  double batch_width_avg() const {
    return batches_ == 0 ? 0.0
                         : static_cast<double>(width_sum_) /
                               static_cast<double>(batches_);
  }
  /// Per-tenant billing, keyed by tenant name (render through
  /// prof::tenant_metric_registry()).
  const std::map<std::string, prof::TenantAgg>& tenants() const {
    return tenants_;
  }
  /// Per-tenant SLO evaluation (histograms, burn rate, breaches). Fed
  /// while the slo plane is enabled (or observe_slo is set); install
  /// objectives and a breach sink before serving (docs/SLO.md).
  slo::SloMonitor& slo() { return slo_; }
  const slo::SloMonitor& slo() const { return slo_; }

 private:
  spmv::SpmvEngine<T>& engine_;
  ServeOptions opt_;
  RequestQueue<T> queue_;
  double clock_s_ = 0.0;
  std::uint64_t batches_ = 0;
  std::uint64_t served_ = 0;
  std::uint64_t width_sum_ = 0;
  std::map<std::string, prof::TenantAgg> tenants_;
  std::map<std::uint64_t, std::vector<T>> results_;
  slo::SloMonitor slo_;
};

}  // namespace acsr::serve
