// Opt-in pre-launch verification gate (docs/ANALYSIS.md): with
// ACSR_VERIFY=1 in the environment, the engine factory statically proves
// an engine's kernels safe for its whole shape class on the target device
// before constructing it, and refuses to build one whose proof fails.
// When the variable is unset the gate is a single cached-bool test.
#pragma once

#include <string>

#include "vgpu/device_spec.hpp"

namespace acsr::analysis {

/// True when ACSR_VERIFY=1 was set in the environment (cached at first
/// call) or verification was force-enabled via set_verify_enabled.
bool verify_enabled();

/// Test hook: override the environment-derived state.
void set_verify_enabled(bool on);

/// Verify `name` on `spec` and throw acsr::InvariantError listing every
/// violation if the proof fails. Names without a registered model (the
/// factory rejects them anyway) pass through silently.
void verify_engine_or_throw(const std::string& name,
                            const vgpu::DeviceSpec& spec);

}  // namespace acsr::analysis
