// Symbolic event-graph domain for the audit tier (docs/ANALYSIS.md).
//
// The cost model's soundness rests on three timeline disciplines that the
// single-kernel verifier (interpreter.hpp) cannot see because they live
// above the launch boundary:
//
//   charge parity   every unit of metered work is charged to exactly one
//                   StreamTimeline stream, exactly once — no free work
//                   (metered but never charged: the plane looks faster
//                   than it is) and no double charge (charged twice: it
//                   looks slower, and overlap studies draw the wrong
//                   conclusion — the accounting-error class Kreutzer et
//                   al. and Yang et al. warn corrupts scaling results)
//   monotonicity    per-stream charges are non-negative, so stream
//                   cursors never move backwards
//   causal joins    cross-stream joins (cudaStreamWaitEvent analogues:
//                   the OOC double-buffer reuse fence, storage in-flight
//                   retirement, multi-GPU merge, memo replay validation)
//                   only wait on events that were recorded *before* the
//                   wait was issued, and the resulting event graph is a
//                   DAG — a join on a completion value read before it was
//                   computed (comp_done[i] instead of comp_done[i-2])
//                   silently reads 0.0 in the concrete code and erases
//                   the fence; here it is a causality inversion
//
// A charge model (charge_models.cpp) mirrors each engine's / plane's
// concrete enqueue-record-wait structure against this API; audit() then
// checks the disciplines over the built graph. The concrete
// StreamTimeline (vgpu/timeline.hpp) checks none of this at runtime — it
// happily accepts a wait on a stale double — which is exactly why the
// audit tier exists.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace acsr::analysis {

/// Finding kinds of the audit tier (the three passes of acsr-audit plus
/// the lint rules it absorbs from scripts/lint.sh).
enum class AuditKind {
  // pass 1: timeline causality & charge parity
  kFreeWork,            ///< declared metered work never charged
  kDoubleCharge,        ///< work charged more than once / to two streams
  kNonMonotone,         ///< a charge whose duration may be negative
  kCausalityInversion,  ///< wait on an event recorded after the wait
  kDanglingWait,        ///< wait on an event that is never recorded
  // pass 2: fault-taxonomy exhaustiveness
  kOrphanThrow,  ///< typed fault with no recovery edge, not terminal
  // pass 3: gate discipline
  kHotGetenv,  ///< ACSR_* getenv outside a static-cached initializer
  // absorbed lint rules
  kLint,  ///< scripts/lint.sh rules 1-4, now token-level
};

const char* audit_kind_name(AuditKind k);

struct AuditFinding {
  AuditKind kind{};
  std::string plane;    ///< e.g. "charge:acsr@titan", "taxonomy", "gates"
  std::string subject;  ///< work id / fault type / env var / file:line
  std::string detail;   ///< why the proof failed
  std::string str() const;
};

/// Abstract charge graph: streams, declared work units, charges, labeled
/// events, waits. Build it in the model's program order (the order the
/// concrete code issues the operations), then audit().
class ChargeGraph {
 public:
  using StreamId = int;

  /// Create a named stream (a StreamTimeline stream / drive / device).
  StreamId stream(const std::string& name);

  /// Declare one unit of metered work that the model MUST charge exactly
  /// once (a kernel launch, a transfer, a drive read). `what` is the
  /// human description used in findings.
  void declare_work(const std::string& work, const std::string& what);

  /// Charge a declared work unit on a stream. `nonneg` declares the
  /// duration provably >= 0 (models pass false when the concrete code
  /// computes the duration as a difference that could go negative).
  void charge(StreamId s, const std::string& work, bool nonneg = true);

  /// An overhead charge not tied to declared work (retry backoff, stall
  /// padding). Still monotonicity-checked.
  void overhead(StreamId s, const std::string& tag, bool nonneg = true);

  /// Record the stream's current position under `label` (the abstract
  /// cudaEventRecord; the label mirrors the concrete completion value,
  /// e.g. "comp:2" for comp_done[2]).
  void record(StreamId s, const std::string& label);

  /// The abstract cudaStreamWaitEvent: `s` waits on `label`. Legal only
  /// if the label was recorded before this call in program order —
  /// waiting on a completion value that has not been computed yet is the
  /// causality inversion the concrete code cannot detect.
  void wait(StreamId s, const std::string& label);

  /// Check the three disciplines; `plane` labels the findings.
  std::vector<AuditFinding> audit(const std::string& plane) const;

 private:
  struct Node {
    StreamId stream = -1;
    std::string tag;
    bool nonneg = true;
    bool is_wait = false;
    int waits_on = -1;  ///< node index of the recorded event (wait nodes)
    std::string wait_label;
  };
  struct Work {
    std::string what;
    std::vector<int> charges;  ///< node indices that charged it
  };
  struct Label {
    int node = -1;       ///< node position captured by record()
    int recorded_at = -1;  ///< construction index of the record() call
  };

  int add_node(StreamId s, Node n);

  std::vector<std::string> stream_names_;
  std::vector<int> stream_last_;  ///< last node per stream (-1 = none)
  std::vector<Node> nodes_;
  std::vector<std::pair<int, int>> edges_;  ///< program order + cross edges
  std::map<std::string, Work> work_;
  std::vector<std::string> work_order_;  ///< declaration order (stable output)
  std::map<std::string, Label> labels_;
  std::vector<int> pending_waits_;  ///< waits issued before their record()
  std::vector<AuditFinding> build_findings_;  ///< detected while building
};

}  // namespace acsr::analysis
