#include "analysis/verify.hpp"

#include <cstdlib>
#include <sstream>

#include "analysis/models.hpp"
#include "common/check.hpp"

namespace acsr::analysis {

namespace {

bool env_verify_enabled() {
  const char* v = std::getenv("ACSR_VERIFY");
  return v != nullptr && v[0] == '1';
}

// Cached once so the unset-variable path costs one branch per factory
// call after the first.
bool g_enabled = env_verify_enabled();

}  // namespace

bool verify_enabled() { return g_enabled; }

void set_verify_enabled(bool on) { g_enabled = on; }

void verify_engine_or_throw(const std::string& name,
                            const vgpu::DeviceSpec& spec) {
  if (!knows_engine(name)) return;  // factory reports unknown names itself
  const std::vector<Violation> vs = verify_engine(name, spec);
  if (vs.empty()) return;
  std::ostringstream os;
  os << "ACSR_VERIFY: engine '" << name << "' failed static verification on "
     << spec.name << " (" << vs.size() << " violation"
     << (vs.size() == 1 ? "" : "s") << "):";
  for (const Violation& v : vs) os << "\n  " << v.str();
  ACSR_CHECK_MSG(false, os.str());
}

}  // namespace acsr::analysis
