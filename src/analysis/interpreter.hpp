// Abstract SIMT interpreter: re-executes a kernel's access patterns over
// the symbolic value domain (domain.hpp) and checks, for every matrix in
// the engine's declared shape class and a concrete DeviceSpec:
//
//   (a) every global/shared access lands inside its allocation,
//   (b) plain stores cannot collide (write-race freedom: indices must be
//       provably pairwise-distinct across the whole grid; atomics are
//       exempt but must hit initialized memory),
//   (c) barriers are warp-uniform (no sync under divergent control),
//   (d) launch configurations — grid/block dims, per-block shared memory,
//       dynamic-parallelism child launches and the pending-launch cap —
//       respect the device-spec limits.
//
// A model (models.cpp) mirrors each concrete kernel's index and guard
// structure against this API; every guard in the kernel becomes an
// interval refinement, every format invariant a declared span property.
// Violations carry kernel + expression attribution.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "analysis/domain.hpp"
#include "analysis/shape.hpp"
#include "vgpu/device_spec.hpp"

namespace acsr::analysis {

enum class ViolationKind {
  kOutOfBounds,
  kUninitRead,
  kWriteRace,
  kDivergentSync,
  kBadLaunchConfig,
  kSharedMemOverflow,
  kDynamicParallelism,    ///< device-side launch on a CC < 3.5 device
  kPendingLaunchOverflow  ///< child launches may exceed the pending cap
};

const char* violation_kind_name(ViolationKind k);

struct Violation {
  ViolationKind kind;
  std::string engine;
  std::string device;
  std::string kernel;
  std::string expr;    ///< the offending access/launch expression
  std::string detail;  ///< why the proof failed
  std::string str() const;
};

/// Runtime state of one declared span during interpretation.
struct AbsSpan {
  // Declared invariants (from SpanDecl).
  std::string name;
  Sym size;
  AbsInt content;
  bool content_known = false;
  bool monotone = false;
  bool injective = false;
  bool initialized = true;

  // Per-launch write tracking (reset by Verifier at launch boundaries).
  int plain_stores = 0;     ///< plain-store statements by the parent grid
  bool atomic_stores = false;
  bool child_plain = false;   ///< some child grid plain-writes this span
  bool child_atomic = false;  ///< some child grid atomically updates it
  bool pending_init = false;  ///< plain-written this launch
};

class AbsKernel;

/// One verification run: an engine's shape class on one device spec. Call
/// declare_shape, then launch() once per kernel in issue order (sequential
/// launches are ordered, as on a single stream), then take().
class Verifier {
 public:
  using Body = std::function<void(AbsKernel&)>;

  Verifier(std::string engine, vgpu::DeviceSpec spec)
      : engine_(std::move(engine)), spec_(std::move(spec)) {}

  void declare_shape(const ShapeClass& sc);
  void declare_param(const ParamDecl& p) { env_.declare(p.name, p.lo, p.hi); }
  void declare_span(const SpanDecl& s);

  /// Symbolic reference to a declared parameter (checked).
  Sym p(const std::string& name) const;
  AbsSpan& span(const std::string& name);

  const ParamEnv& env() const { return env_; }
  const vgpu::DeviceSpec& spec() const { return spec_; }
  const std::string& engine() const { return engine_; }

  /// Abstract-execute one kernel launch. `grid` must be provably >= 1.
  void launch(const std::string& kernel, const Sym& grid, int block_dim,
              const Body& body);

  const std::vector<Violation>& violations() const { return violations_; }
  std::vector<Violation> take() { return std::move(violations_); }

 private:
  friend class AbsKernel;

  void report(ViolationKind kind, const std::string& expr,
              const std::string& detail);
  void check_launch_config(const std::string& kernel, const Sym& grid,
                           int block_dim, const char* what);
  /// Bounds proof for one access: 0 <= idx.range <= size-1.
  bool check_access(const AbsSpan& s, const AbsLanes& idx,
                    const std::string& expr);
  void check_read_initialized(const AbsSpan& s, const std::string& expr);

  std::string engine_;
  vgpu::DeviceSpec spec_;
  ParamEnv env_;
  std::map<std::string, AbsSpan> spans_;
  std::deque<AbsSpan> shared_spans_;  // stable storage, launch lifetime
  std::vector<Violation> violations_;

  // Current launch state.
  std::string kernel_;
  bool in_launch_ = false;
  bool children_launched_ = false;
  Sym pending_children_;
  Sym shared_bytes_per_block_;
  int shared_count_ = 0;
  int divergence_depth_ = 0;
};

/// The abstract counterpart of vgpu::Warp + Block handed to kernel models.
/// One AbsKernel stands for *every* warp of the launch at once; values are
/// AbsLanes covering all threads. Child grids get their own AbsKernel with
/// is_child set (sibling grids execute concurrently).
class AbsKernel {
 public:
  using Body = std::function<void(AbsKernel&)>;

  // --- geometry ---
  const Sym& grid() const { return grid_; }
  int block_dim() const { return block_dim_; }
  int warps_per_block() const {
    return (block_dim_ + vgpu::kWarpSize - 1) / vgpu::kWarpSize;
  }
  Sym num_warps() const { return grid_ * Sym(warps_per_block()); }
  Sym num_threads() const { return grid_ * Sym(block_dim_); }
  /// [0, num_warps - 1]
  AbsInt global_warp() const { return {Sym(0), num_warps() - Sym(1)}; }
  /// [0, grid - 1]
  AbsInt block_idx() const { return {Sym(0), grid_ - Sym(1)}; }
  /// Global linear thread ids: affine within each warp, pairwise-distinct
  /// across the whole grid.
  AbsLanes global_threads() const {
    return AbsLanes::affine_of(AbsInt(Sym(0), num_threads() - Sym(32)),
                               /*step=*/1, /*distinct_across_grid=*/true);
  }
  /// Lane ids 0..31: distinct within a warp but repeated across warps.
  AbsLanes lanes() const {
    return AbsLanes::affine_of(AbsInt(Sym(0), Sym(0)), /*step=*/1,
                               /*distinct_across_grid=*/false);
  }

  // --- global memory ---
  AbsLanes load(AbsSpan& s, const AbsLanes& idx, const std::string& expr);
  /// The fused col+val gather: both spans indexed by idx.
  std::pair<AbsLanes, AbsLanes> load_pair(AbsSpan& a, AbsSpan& b,
                                          const AbsLanes& idx,
                                          const std::string& expr);
  /// Texture path: same safety obligations as load.
  AbsLanes load_tex(AbsSpan& s, const AbsLanes& idx, const std::string& expr) {
    return load(s, idx, expr);
  }
  /// Warp-uniform single-element load.
  AbsLanes load_scalar(AbsSpan& s, const AbsInt& i, const std::string& expr) {
    return load(s, AbsLanes::of_range(i), expr);
  }
  void store(AbsSpan& s, const AbsLanes& idx, const std::string& expr);
  void atomic_add(AbsSpan& s, const AbsLanes& idx, const std::string& expr);

  // --- shared memory ---
  /// Block::shared<T>(n): zero-filled, block lifetime. Checks the
  /// per-block budget against the device spec.
  AbsSpan& shared_alloc(const Sym& elems, int elem_size,
                        const std::string& expr);

  // --- control ---
  /// __syncthreads; must not execute under divergent control.
  void sync(const std::string& expr = "__syncthreads()");
  /// Enter/leave a lane- or block-varying branch region.
  void begin_divergent(const std::string& expr);
  void end_divergent();

  // --- dynamic parallelism ---
  /// `count` child grids (symbolic), each with the given geometry; `body`
  /// models one generic sibling. Siblings execute concurrently with each
  /// other; the parent's writes *before* this call are visible to them.
  void launch_child(const std::string& kernel, const Sym& count,
                    const Sym& child_grid, int child_block, const Body& body,
                    const std::string& expr);

 private:
  friend class Verifier;
  AbsKernel(Verifier& v, Sym grid, int block_dim, bool is_child)
      : v_(v), grid_(std::move(grid)), block_dim_(block_dim),
        is_child_(is_child) {}

  Verifier& v_;
  Sym grid_;
  int block_dim_;
  bool is_child_;
};

}  // namespace acsr::analysis
