// The audit tier's source passes (over source_model.hpp token streams)
// and the aggregate report the CLI and check.sh consume.
//
//   taxonomy   every throw site of the typed fault taxonomy (DeviceFault
//              descendants + DeviceOom) maps to a recovery edge — a
//              typed catch of the class or an ancestor — or carries an
//              explicit `acsr-audit:terminal(Type)` comment annotation.
//              A new typed error cannot ship unhandled.
//   gates      every ACSR_* environment gate follows the cached-bool
//              zero-cost pattern: the getenv runs once (static local,
//              namespace-scope initializer, a function called only from
//              one, or a Meyers-singleton constructor) and steady-state
//              reads are a cached branch. `acsr-audit:cold-gate(VAR)`
//              declares a deliberate per-call read on a setup-only path.
//   lint       scripts/lint.sh rules 1-4, token-level (no comment/string
//              false positives).
#pragma once

#include <string>
#include <vector>

#include "analysis/event_graph.hpp"
#include "analysis/source_model.hpp"

namespace acsr::analysis {

// --- pass 2: fault-taxonomy exhaustiveness ----------------------------

struct TaxonomyType {
  std::string name;
  std::string base;  ///< direct base class ("" for roots)
  std::vector<std::string> throw_sites;  ///< "file:line"
  std::vector<std::string> catch_sites;  ///< typed catches of this class
  bool covered = false;   ///< caught as itself or via an ancestor
  bool terminal = false;  ///< declared terminal by annotation
};

struct TaxonomyResult {
  std::vector<TaxonomyType> types;  ///< taxonomy members, by name
  std::vector<AuditFinding> findings;
};

TaxonomyResult audit_taxonomy(const SourceSet& set);

// --- pass 3: gate discipline ------------------------------------------

struct GateSite {
  std::string var;   ///< e.g. "ACSR_MEMO"
  std::string file;
  int line = 0;
  bool cached = false;
  std::string how;  ///< which caching pattern matched / why it is hot
};

struct GateResult {
  std::vector<GateSite> sites;
  std::vector<AuditFinding> findings;
};

GateResult audit_gates(const SourceSet& set);

// --- absorbed lint rules ----------------------------------------------

std::vector<AuditFinding> audit_lint(const SourceSet& set);

// --- seeded source-defect corpus --------------------------------------

struct SourceDefect {
  const char* name;
  AuditKind expected;
  const char* what;
};
const std::vector<SourceDefect>& all_source_defects();
std::vector<AuditFinding> run_source_defect(const std::string& name);

// --- aggregate report --------------------------------------------------

struct AuditReport {
  std::vector<AuditFinding> findings;
  int engine_cells = 0;  ///< engine x device matrix cells audited
  int planes = 0;        ///< cross-plane models audited
  int defects_expected = 0;
  int defects_flagged = 0;
  int taxonomy_types = 0;
  int gate_sites = 0;

  bool clean() const {
    return findings.empty() && defects_flagged == defects_expected;
  }
  /// 0 clean, 1 findings or missed defects (2 is the CLI's usage error).
  int exit_code() const { return clean() ? 0 : 1; }
  std::string json() const;
};

}  // namespace acsr::analysis
