// Charge models: per-engine and cross-plane mirrors of the concrete
// timeline code, expressed against the ChargeGraph domain
// (event_graph.hpp). Each model restates, operation by operation, what
// the concrete simulate()/service()/merge path enqueues, records and
// waits on; audit() then proves charge parity, monotonicity and causal
// joins over that structure. The models are the auditable spec — when an
// engine's metering changes, its model must change with it or the matrix
// test (tests/test_audit.cpp) fails.
#pragma once

#include <string>
#include <vector>

#include "analysis/event_graph.hpp"
#include "vgpu/device_spec.hpp"

namespace acsr::analysis {

/// The Table II device keys the audit matrix sweeps (same set as
/// tools/acsr_verify).
const std::vector<std::string>& audit_device_keys();

/// Audit one engine's charge structure on one device. Knows every
/// factory-registry engine (canonical name or alias); throws
/// acsr::InputError for an engine the registry knows but no charge model
/// covers — a new engine cannot be silently skipped.
std::vector<AuditFinding> audit_engine_charges(const std::string& engine,
                                               const vgpu::DeviceSpec& spec);

/// Cross-plane joins: the composition seams between planes that no
/// single engine model sees.
///   ooc-double-buffer    slab reuse fence across drive/h2d/compute
///   storage-inflight     bounded async window retirement ordering
///   multi-gpu-merge      per-device streams joined by the merge fence
///   memo-replay          capture/replay launch-sequence charge parity
///   spmm-batch           column-tiled batched SpMM launch charging
///   resilient-backoff    retry ladder's backoff overhead charges
///   slo-span-parity      tracing spans observe timeline work, never
///                        charge it a second time (docs/SLO.md)
const std::vector<std::string>& charge_plane_names();
std::vector<AuditFinding> audit_charge_plane(const std::string& plane);

/// Seeded charge-defect corpus: deliberately broken graphs that pin the
/// auditor's detection power (zero false negatives, tested).
struct ChargeDefect {
  const char* name;
  AuditKind expected;
  const char* what;
};
const std::vector<ChargeDefect>& all_charge_defects();
std::vector<AuditFinding> run_charge_defect(const std::string& name);

}  // namespace acsr::analysis
