// Shape-class declarations: the format metadata contract an engine's
// kernels are verified against (docs/ANALYSIS.md).
//
// Each engine header declares, next to its kernels, the *class* of inputs
// the engine accepts: named non-negative shape parameters (n_rows, nnz,
// padded widths, bin caps, ...) and the device-resident spans those
// parameters size, together with the format invariants the engine's
// construction code guarantees — row-pointer monotonicity, column indices
// in [0, n_cols-1], permutation injectivity, zero-filled outputs. The
// verifier (src/analysis/models.cpp) re-executes the engine's kernel
// access patterns abstractly and proves them safe for *every* matrix in
// the class, assuming exactly these declared invariants and nothing else.
#pragma once

#include <string>
#include <vector>

#include "analysis/domain.hpp"

namespace acsr::analysis {

/// One non-negative shape parameter with its declared range.
struct ParamDecl {
  std::string name;
  long long lo = 0;
  std::optional<long long> hi;  ///< nullopt: unbounded above
  std::string meaning;
};

/// One device-resident span the kernels touch, with its symbolic size and
/// the format invariants its *contents* carry.
struct SpanDecl {
  std::string name;
  Sym size;  ///< element count as a polynomial over the parameters
  /// For index-typed spans: the declared value range of stored elements
  /// (e.g. col_idx in [0, n_cols-1]; row_off in [0, nnz]).
  AbsInt content;
  bool content_known = false;  ///< false: payload data, values untracked
  bool monotone = false;       ///< non-decreasing (CSR row pointers)
  bool injective = false;      ///< pairwise-distinct values (permutations)
  bool initialized = true;     ///< safe to read before any kernel writes it
  std::string meaning;
};

/// The full declaration for one engine.
struct ShapeClass {
  std::string engine;
  std::vector<ParamDecl> params;
  std::vector<SpanDecl> spans;
};

/// Convenience builders used by the engine headers.
inline ParamDecl param(std::string name, long long lo, std::string meaning) {
  return ParamDecl{std::move(name), lo, std::nullopt, std::move(meaning)};
}
inline ParamDecl param(std::string name, long long lo, long long hi,
                       std::string meaning) {
  return ParamDecl{std::move(name), lo, hi, std::move(meaning)};
}

/// Payload span (values untracked): vals, x, y, ...
inline SpanDecl data_span(std::string name, Sym size, std::string meaning,
                          bool initialized = true) {
  SpanDecl s;
  s.name = std::move(name);
  s.size = std::move(size);
  s.initialized = initialized;
  s.meaning = std::move(meaning);
  return s;
}

/// Index span: contents lie in [lo, hi].
inline SpanDecl index_span(std::string name, Sym size, AbsInt content,
                           std::string meaning, bool monotone = false,
                           bool injective = false) {
  SpanDecl s;
  s.name = std::move(name);
  s.size = std::move(size);
  s.content = std::move(content);
  s.content_known = true;
  s.monotone = monotone;
  s.injective = injective;
  s.meaning = std::move(meaning);
  return s;
}

}  // namespace acsr::analysis
