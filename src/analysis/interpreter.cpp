#include "analysis/interpreter.hpp"

#include <sstream>

#include "common/check.hpp"

namespace acsr::analysis {

const char* violation_kind_name(ViolationKind k) {
  switch (k) {
    case ViolationKind::kOutOfBounds: return "out-of-bounds";
    case ViolationKind::kUninitRead: return "uninitialized-read";
    case ViolationKind::kWriteRace: return "write-race";
    case ViolationKind::kDivergentSync: return "divergent-sync";
    case ViolationKind::kBadLaunchConfig: return "bad-launch-config";
    case ViolationKind::kSharedMemOverflow: return "shared-mem-overflow";
    case ViolationKind::kDynamicParallelism: return "dynamic-parallelism";
    case ViolationKind::kPendingLaunchOverflow: return "pending-launch-cap";
  }
  return "?";
}

std::string Violation::str() const {
  std::ostringstream os;
  os << violation_kind_name(kind) << " in kernel '" << kernel << "' ("
     << engine << " on " << device << "): " << expr;
  if (!detail.empty()) os << " — " << detail;
  return os.str();
}

void Verifier::declare_shape(const ShapeClass& sc) {
  for (const ParamDecl& p : sc.params) declare_param(p);
  for (const SpanDecl& s : sc.spans) declare_span(s);
}

void Verifier::declare_span(const SpanDecl& d) {
  ACSR_CHECK_MSG(spans_.find(d.name) == spans_.end(),
                 "duplicate span declaration '" << d.name << "'");
  AbsSpan s;
  s.name = d.name;
  s.size = d.size;
  s.content = d.content;
  s.content_known = d.content_known;
  s.monotone = d.monotone;
  s.injective = d.injective;
  s.initialized = d.initialized;
  spans_.emplace(d.name, std::move(s));
}

Sym Verifier::p(const std::string& name) const {
  ACSR_CHECK_MSG(env_.knows(name),
                 "model references undeclared parameter '" << name << "'");
  return Sym::param(name);
}

AbsSpan& Verifier::span(const std::string& name) {
  auto it = spans_.find(name);
  ACSR_CHECK_MSG(it != spans_.end(),
                 "model references undeclared span '" << name << "'");
  return it->second;
}

void Verifier::report(ViolationKind kind, const std::string& expr,
                      const std::string& detail) {
  violations_.push_back(
      Violation{kind, engine_, spec_.name, kernel_, expr, detail});
}

void Verifier::check_launch_config(const std::string& kernel, const Sym& grid,
                                   int block_dim, const char* what) {
  if (block_dim < 1 || block_dim > spec_.max_threads_per_block) {
    std::ostringstream os;
    os << what << " block_dim " << block_dim << " outside [1, "
       << spec_.max_threads_per_block << "]";
    report(ViolationKind::kBadLaunchConfig, kernel, os.str());
  }
  if (!env_.definitely_ge(grid, 1)) {
    report(ViolationKind::kBadLaunchConfig, kernel,
           std::string(what) + " grid_dim " + grid.str() +
               " not provably >= 1 (empty grids are launch errors)");
  }
}

void Verifier::launch(const std::string& kernel, const Sym& grid,
                      int block_dim, const Body& body) {
  ACSR_CHECK_MSG(!in_launch_, "nested Verifier::launch (kernel '" << kernel
                                                                 << "')");
  kernel_ = kernel;
  in_launch_ = true;
  children_launched_ = false;
  pending_children_ = Sym(0);
  shared_bytes_per_block_ = Sym(0);
  shared_count_ = 0;
  divergence_depth_ = 0;
  for (auto& [name, s] : spans_) {
    (void)name;
    s.plain_stores = 0;
    s.atomic_stores = false;
    s.child_plain = false;
    s.child_atomic = false;
    s.pending_init = false;
  }
  shared_spans_.clear();

  check_launch_config(kernel, grid, block_dim, "launch");

  AbsKernel k(*this, grid, block_dim, /*is_child=*/false);
  body(k);

  // Pending-launch cap: the total number of device-side launches enqueued
  // by this kernel must fit the device runtime's fixed-size pool.
  if (!pending_children_.is_zero()) {
    const auto ub = env_.upper_bound(pending_children_);
    const long long cap = spec_.pending_launch_limit;
    if (!ub.has_value() || *ub > cap) {
      std::ostringstream os;
      os << pending_children_.str() << " device-side launches vs "
         << "cudaLimitDevRuntimePendingLaunchCount = " << cap;
      if (ub.has_value()) os << " (worst case " << *ub << ")";
      else os << " (unbounded)";
      report(ViolationKind::kPendingLaunchOverflow, kernel, os.str());
    }
  }

  // A launch boundary orders everything after it: plain-written spans are
  // now initialized device memory for subsequent launches.
  for (auto& [name, s] : spans_) {
    (void)name;
    if (s.pending_init || s.child_plain) s.initialized = true;
  }
  in_launch_ = false;
  kernel_.clear();
}

bool Verifier::check_access(const AbsSpan& s, const AbsLanes& idx,
                            const std::string& expr) {
  if (!idx.known) {
    report(ViolationKind::kOutOfBounds, expr,
           "index into '" + s.name +
               "' derived from untracked data — no bound available");
    return false;
  }
  bool ok = true;
  if (!env_.definitely_ge(idx.range.lo, 0)) {
    report(ViolationKind::kOutOfBounds, expr,
           "cannot prove index lower bound " + idx.range.lo.str() +
               " >= 0 for span '" + s.name + "'");
    ok = false;
  }
  if (!env_.definitely_le(idx.range.hi, s.size - Sym(1))) {
    report(ViolationKind::kOutOfBounds, expr,
           "cannot prove index upper bound " + idx.range.hi.str() +
               " <= size-1 = " + (s.size - Sym(1)).str() + " for span '" +
               s.name + "'");
    ok = false;
  }
  return ok;
}

void Verifier::check_read_initialized(const AbsSpan& s,
                                      const std::string& expr) {
  if (!s.initialized && !s.pending_init && !s.child_plain) {
    report(ViolationKind::kUninitRead, expr,
           "span '" + s.name +
               "' is read before any host fill or device store defines it");
  }
}

AbsLanes AbsKernel::load(AbsSpan& s, const AbsLanes& idx,
                         const std::string& expr) {
  v_.check_access(s, idx, expr);
  v_.check_read_initialized(s, expr);
  if (!s.content_known) return AbsLanes::unknown();
  // Values drawn from an injective map at pairwise-distinct indices are
  // themselves pairwise distinct — the permutation-scatter argument the
  // BRC/SELL/SIC y stores rely on.
  return AbsLanes::of_range(s.content, s.injective && idx.distinct);
}

std::pair<AbsLanes, AbsLanes> AbsKernel::load_pair(AbsSpan& a, AbsSpan& b,
                                                   const AbsLanes& idx,
                                                   const std::string& expr) {
  AbsLanes ra = load(a, idx, expr + " [" + a.name + "]");
  AbsLanes rb = load(b, idx, expr + " [" + b.name + "]");
  return {ra, rb};
}

void AbsKernel::store(AbsSpan& s, const AbsLanes& idx,
                      const std::string& expr) {
  v_.check_access(s, idx, expr);
  if (!idx.distinct) {
    v_.report(ViolationKind::kWriteRace, expr,
              "plain store to '" + s.name +
                  "' with indices not provably pairwise-distinct across " +
                  (is_child_ ? "sibling child grids" : "the grid"));
  }
  if (is_child_) {
    if (s.child_plain || s.child_atomic) {
      v_.report(ViolationKind::kWriteRace, expr,
                "sibling child grids both write '" + s.name +
                    "' (device-side grids are concurrent)");
    }
    s.child_plain = true;
    return;
  }
  if (s.plain_stores > 0) {
    v_.report(ViolationKind::kWriteRace, expr,
              "second plain-store statement to '" + s.name +
                  "' within one launch — overlap not provable disjoint");
  }
  if (s.atomic_stores) {
    v_.report(ViolationKind::kWriteRace, expr,
              "plain store to '" + s.name +
                  "' mixes with atomic updates in the same launch");
  }
  if (v_.children_launched_ && (s.child_plain || s.child_atomic)) {
    v_.report(ViolationKind::kWriteRace, expr,
              "parent writes '" + s.name +
                  "' after launching children that also write it");
  }
  s.plain_stores += 1;
  s.pending_init = true;
}

void AbsKernel::atomic_add(AbsSpan& s, const AbsLanes& idx,
                           const std::string& expr) {
  v_.check_access(s, idx, expr);
  // An atomic RMW reads the previous value: the target must be defined
  // (the zero-fill-before-accumulate contract).
  v_.check_read_initialized(s, expr);
  if (is_child_) {
    if (s.child_plain) {
      v_.report(ViolationKind::kWriteRace, expr,
                "atomic update of '" + s.name +
                    "' races a sibling child grid's plain store");
    }
    s.child_atomic = true;
    return;
  }
  if (s.plain_stores > 0) {
    v_.report(ViolationKind::kWriteRace, expr,
              "atomic update of '" + s.name +
                  "' mixes with plain stores in the same launch");
  }
  s.atomic_stores = true;
}

AbsSpan& AbsKernel::shared_alloc(const Sym& elems, int elem_size,
                                 const std::string& expr) {
  v_.shared_bytes_per_block_ =
      v_.shared_bytes_per_block_ + elems * Sym(elem_size);
  const auto ub = v_.env_.upper_bound(v_.shared_bytes_per_block_);
  const auto cap =
      static_cast<long long>(v_.spec_.shared_mem_per_block_bytes);
  if (!ub.has_value() || *ub > cap) {
    std::ostringstream os;
    os << "per-block shared memory " << v_.shared_bytes_per_block_.str()
       << " B vs device limit " << cap << " B";
    if (ub.has_value()) os << " (worst case " << *ub << ")";
    else os << " (unbounded)";
    v_.report(ViolationKind::kSharedMemOverflow, expr, os.str());
  }
  AbsSpan s;
  s.name = v_.kernel_ + ".shared#" + std::to_string(v_.shared_count_++);
  s.size = elems;
  s.initialized = true;  // Block::shared zero-fills
  v_.shared_spans_.push_back(std::move(s));
  return v_.shared_spans_.back();
}

void AbsKernel::sync(const std::string& expr) {
  if (v_.divergence_depth_ > 0) {
    v_.report(ViolationKind::kDivergentSync, expr,
              "barrier executed under divergent control flow (not all "
              "threads of the block reach it)");
  }
}

void AbsKernel::begin_divergent(const std::string& expr) {
  (void)expr;
  v_.divergence_depth_ += 1;
}

void AbsKernel::end_divergent() {
  ACSR_CHECK(v_.divergence_depth_ > 0);
  v_.divergence_depth_ -= 1;
}

void AbsKernel::launch_child(const std::string& kernel, const Sym& count,
                             const Sym& child_grid, int child_block,
                             const Body& body, const std::string& expr) {
  if (!v_.spec_.supports_dynamic_parallelism()) {
    v_.report(ViolationKind::kDynamicParallelism, expr,
              "device-side launch on " + v_.spec_.name + " (CC " +
                  std::to_string(v_.spec_.compute_major) + "." +
                  std::to_string(v_.spec_.compute_minor) + " < 3.5)");
    return;  // the device would reject it; nothing further to interpret
  }
  v_.pending_children_ = v_.pending_children_ + count;
  v_.check_launch_config(kernel, child_grid, child_block, "child launch");
  v_.children_launched_ = true;

  const std::string parent_kernel = v_.kernel_;
  v_.kernel_ = kernel;
  AbsKernel child(v_, child_grid, child_block, /*is_child=*/true);
  body(child);
  v_.kernel_ = parent_kernel;
}

}  // namespace acsr::analysis
