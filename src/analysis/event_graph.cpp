#include "analysis/event_graph.hpp"

#include <sstream>

namespace acsr::analysis {

const char* audit_kind_name(AuditKind k) {
  switch (k) {
    case AuditKind::kFreeWork: return "free-work";
    case AuditKind::kDoubleCharge: return "double-charge";
    case AuditKind::kNonMonotone: return "non-monotone";
    case AuditKind::kCausalityInversion: return "causality-inversion";
    case AuditKind::kDanglingWait: return "dangling-wait";
    case AuditKind::kOrphanThrow: return "orphan-throw";
    case AuditKind::kHotGetenv: return "hot-getenv";
    case AuditKind::kLint: return "lint";
  }
  return "?";
}

std::string AuditFinding::str() const {
  std::ostringstream os;
  os << "[" << audit_kind_name(kind) << "] " << plane << ": " << subject
     << " — " << detail;
  return os.str();
}

ChargeGraph::StreamId ChargeGraph::stream(const std::string& name) {
  stream_names_.push_back(name);
  stream_last_.push_back(-1);
  return static_cast<StreamId>(stream_names_.size()) - 1;
}

int ChargeGraph::add_node(StreamId s, Node n) {
  n.stream = s;
  const int idx = static_cast<int>(nodes_.size());
  nodes_.push_back(std::move(n));
  // Program order within a stream: each node depends on the stream's
  // previous node, exactly like enqueues on one CUDA stream.
  if (stream_last_[s] >= 0) edges_.emplace_back(stream_last_[s], idx);
  stream_last_[s] = idx;
  return idx;
}

void ChargeGraph::declare_work(const std::string& work,
                               const std::string& what) {
  if (!work_.count(work)) work_order_.push_back(work);
  work_[work].what = what;
}

void ChargeGraph::charge(StreamId s, const std::string& work, bool nonneg) {
  Node n;
  n.tag = work;
  n.nonneg = nonneg;
  const int idx = add_node(s, std::move(n));
  // Charging undeclared work is a model bug, not a plane bug: declare it
  // implicitly so audit() reports parity over what actually ran.
  declare_work(work, work_.count(work) ? work_[work].what : work);
  work_[work].charges.push_back(idx);
}

void ChargeGraph::overhead(StreamId s, const std::string& tag, bool nonneg) {
  Node n;
  n.tag = tag;
  n.nonneg = nonneg;
  add_node(s, std::move(n));
}

void ChargeGraph::record(StreamId s, const std::string& label) {
  Label& l = labels_[label];
  l.node = stream_last_[s];
  l.recorded_at = static_cast<int>(nodes_.size());
  // Re-recording a label is fine (the concrete code overwrites the
  // completion double each iteration); waits always see the latest.
  (void)s;
}

void ChargeGraph::wait(StreamId s, const std::string& label) {
  Node n;
  n.tag = "wait:" + label;
  n.is_wait = true;
  n.wait_label = label;
  auto it = labels_.find(label);
  if (it == labels_.end()) {
    // Waiting on a label never (yet) recorded. If it gets recorded later
    // in program order that is a causality inversion (the concrete code
    // read the completion value before it was written); if never, it is
    // a dangling wait. Decide at audit() time via recorded_at.
    const int idx = add_node(s, std::move(n));
    pending_waits_.push_back(idx);
    return;
  }
  const int waits_on = it->second.node;
  n.waits_on = waits_on;
  const int idx = add_node(s, std::move(n));
  if (waits_on >= 0) edges_.emplace_back(waits_on, idx);
}

std::vector<AuditFinding> ChargeGraph::audit(const std::string& plane) const {
  std::vector<AuditFinding> out = build_findings_;
  for (AuditFinding& f : out) f.plane = plane;

  // Charge parity: exactly one charge per declared work unit.
  for (const std::string& w : work_order_) {
    const Work& work = work_.at(w);
    if (work.charges.empty()) {
      out.push_back({AuditKind::kFreeWork, plane, w,
                     "metered work '" + work.what +
                         "' is never charged to any timeline"});
    } else if (work.charges.size() > 1) {
      std::string where;
      for (int c : work.charges) {
        if (!where.empty()) where += ", ";
        where += stream_names_[nodes_[c].stream];
      }
      out.push_back({AuditKind::kDoubleCharge, plane, w,
                     "metered work '" + work.what + "' charged " +
                         std::to_string(work.charges.size()) +
                         " times (streams: " + where + ")"});
    }
  }

  // Monotonicity: every charge provably non-negative.
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (!n.is_wait && !n.nonneg)
      out.push_back({AuditKind::kNonMonotone, plane, n.tag,
                     "charge on stream '" + stream_names_[n.stream] +
                         "' has no non-negativity proof; the stream cursor "
                         "could move backwards"});
  }

  // Waits whose label was not recorded at wait time: inversion if it was
  // recorded later in program order, dangling if never.
  for (int idx : pending_waits_) {
    const Node& n = nodes_[idx];
    auto it = labels_.find(n.wait_label);
    if (it != labels_.end() && it->second.recorded_at > idx) {
      out.push_back(
          {AuditKind::kCausalityInversion, plane, n.wait_label,
           "stream '" + stream_names_[n.stream] +
               "' waits on event '" + n.wait_label +
               "' before it is recorded — the concrete code would read a "
               "stale completion value and erase the fence"});
    } else {
      out.push_back({AuditKind::kDanglingWait, plane, n.wait_label,
                     "stream '" + stream_names_[n.stream] +
                         "' waits on event '" + n.wait_label +
                         "' that is never recorded"});
    }
  }

  // DAG check over program-order + join edges. Construction only adds
  // edges old->new for resolved waits, so a cycle can only arise from a
  // model wiring error — but the audit proves it rather than assuming it.
  {
    std::vector<int> indeg(nodes_.size(), 0);
    std::vector<std::vector<int>> adj(nodes_.size());
    for (auto [a, b] : edges_) {
      adj[a].push_back(b);
      ++indeg[b];
    }
    std::vector<int> q;
    for (std::size_t i = 0; i < nodes_.size(); ++i)
      if (indeg[i] == 0) q.push_back(static_cast<int>(i));
    std::size_t seen = 0;
    while (!q.empty()) {
      int v = q.back();
      q.pop_back();
      ++seen;
      for (int w : adj[v])
        if (--indeg[w] == 0) q.push_back(w);
    }
    if (seen != nodes_.size())
      out.push_back({AuditKind::kCausalityInversion, plane, "event-graph",
                     "join edges form a cycle: " +
                         std::to_string(nodes_.size() - seen) +
                         " node(s) unreachable by topological order"});
  }

  return out;
}

}  // namespace acsr::analysis
