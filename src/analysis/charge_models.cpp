#include "analysis/charge_models.hpp"

#include "common/check.hpp"
#include "core/engine_registry.hpp"

namespace acsr::analysis {
namespace {

// ---------------------------------------------------------------------
// In-core engine models. Every in-core engine runs its launch sequence
// on the device's single compute queue (Device::launch_warps charges the
// caller synchronously), so the model is one stream plus the engine's
// kernel-launch list. The lists mirror each engine's simulate():
// zero_y precedes any kernel that accumulates into y instead of
// overwriting it (coo, bccoo, tcoo, merge-csr).
// ---------------------------------------------------------------------

void charge_kernels(ChargeGraph& g, const std::vector<std::string>& kernels) {
  const auto compute = g.stream("compute");
  for (const std::string& k : kernels) {
    g.declare_work(k, "kernel " + k);
    g.charge(compute, k);
  }
}

std::vector<std::string> in_core_kernels(const std::string& canon,
                                         const vgpu::DeviceSpec& spec) {
  if (canon == "csr-scalar") return {"csr_scalar"};
  if (canon == "csr-vector" || canon == "csr") return {"csr_vector"};
  if (canon == "ell") return {"ell"};
  if (canon == "coo") return {"zero_y", "coo_segmented"};
  if (canon == "hyb") return {"hyb_ell", "hyb_coo"};
  if (canon == "brc") return {"brc"};
  if (canon == "bccoo") return {"zero_y", "bccoo"};
  if (canon == "tcoo") return {"zero_y", "tcoo_tiles"};
  if (canon == "sic") return {"sic"};
  if (canon == "merge-csr") return {"zero_y", "merge_csr"};
  if (canon == "sell") return {"sell"};
  if (canon == "bcsr") return {"bcsr"};
  if (canon == "acsr" || canon == "acsr-binning") {
    // Binned execution: one launch per non-empty row bin. The DP tail
    // (acsr only, DP-capable devices) adds a parent launch whose child
    // grids are charged as part of the parent's run — one charge, not
    // one per child (vgpu meters children inside the parent's KernelRun).
    std::vector<std::string> ks = {"bin0", "bin1", "bin2"};
    if (canon == "acsr" && spec.supports_dynamic_parallelism())
      ks.push_back("dp_parent");
    return ks;
  }
  return {};
}

// ---------------------------------------------------------------------
// ooc-csr: the one engine with a private StreamTimeline. Mirrors
// core/ooc_engine.hpp simulate() with n slabs: drive reads prefetched
// through the storage tier, slab uploads on h2d, bin compute on compute,
// and the double-buffer reuse fence wait(h2d, comp[i-2]).
// ---------------------------------------------------------------------

void model_ooc(ChargeGraph& g, int n_slabs) {
  const auto drive = g.stream("drive0");
  const auto h2d = g.stream("h2d");
  const auto compute = g.stream("compute");

  auto submit_read = [&](int i) {
    const std::string w = "read:" + std::to_string(i);
    g.declare_work(w, "drive read of slab " + std::to_string(i));
    g.charge(drive, w);
    g.record(drive, w);
  };

  submit_read(0);
  for (int i = 0; i < n_slabs; ++i) {
    const std::string si = std::to_string(i);
    if (i + 1 < n_slabs) submit_read(i + 1);
    // Double buffer: reusing the oldest slab set's device space requires
    // its compute to have retired (ooc_engine.hpp: wait on comp_done[i-2]).
    if (i >= 2) g.wait(h2d, "comp:" + std::to_string(i - 2));
    g.declare_work("meta:" + si, "bin-metadata upload for slab " + si);
    g.charge(h2d, "meta:" + si);
    g.wait(h2d, "read:" + si);
    g.declare_work("h2d:" + si, "slab upload " + si);
    g.charge(h2d, "h2d:" + si);
    g.record(h2d, "up:" + si);
    g.wait(compute, "up:" + si);
    g.declare_work("spmv:" + si, "slab SpMV " + si);
    g.charge(compute, "spmv:" + si);
    g.record(compute, "comp:" + si);
  }
}

// ---------------------------------------------------------------------
// Cross-plane models.
// ---------------------------------------------------------------------

// storage/tier.hpp: a bounded in-flight window (max_inflight). Submitting
// request k with the window full first retires the oldest outstanding
// request — the submit is ordered after that completion.
void model_storage_inflight(ChargeGraph& g) {
  const auto drive = g.stream("drive0");
  const auto host = g.stream("host");
  const int window = 2, n = 5;
  for (int k = 0; k < n; ++k) {
    const std::string sk = std::to_string(k);
    if (k >= window) g.wait(host, "done:" + std::to_string(k - window));
    g.declare_work("io:" + sk, "extent read " + sk);
    g.charge(drive, "io:" + sk);
    g.record(drive, "done:" + sk);
  }
  // drain(): the host retires every remaining completion in order.
  for (int k = 0; k < n; ++k) g.wait(host, "done:" + std::to_string(k));
}

// core/multi_gpu.hpp simulate_once(): one stream per device engine, the
// host merge fence joins both device completions before the inter-device
// sync term is charged.
void model_multi_gpu(ChargeGraph& g) {
  const auto host = g.stream("host");
  for (int d = 0; d < 2; ++d) {
    const std::string sd = std::to_string(d);
    const auto dev = g.stream("dev" + sd);
    g.declare_work("spmv@dev" + sd, "partition SpMV on device " + sd);
    g.charge(dev, "spmv@dev" + sd);
    g.record(dev, "part:" + sd);
  }
  g.wait(host, "part:0");
  g.wait(host, "part:1");
  g.overhead(host, "multi_gpu_sync");
}

// vgpu/memo.hpp: capture runs the real launch sequence and charges it
// once; replay charges the captured records once on the replay path —
// never both for the same iteration (the double-charge memoization would
// otherwise introduce).
void model_memo_replay(ChargeGraph& g) {
  const auto capture = g.stream("capture");
  const auto replay = g.stream("replay");
  for (const char* k : {"csr_vector"}) {
    g.declare_work(std::string("capture:") + k, "captured launch of " + std::string(k));
    g.charge(capture, std::string("capture:") + k);
  }
  g.record(capture, "captured");
  // Replay validates against the capture — ordered after it — then
  // charges the recorded durations on its own iteration.
  g.wait(replay, "captured");
  g.declare_work("replay:csr_vector", "replayed launch of csr_vector");
  g.charge(replay, "replay:csr_vector");
}

// spmv/engine.hpp batched SpMM: width-w block tiled by kSpmmTile columns;
// one kernel launch per column tile, all on the compute queue.
void model_spmm_batch(ChargeGraph& g) {
  const auto compute = g.stream("compute");
  const int width = 20, tile = 8;
  for (int c0 = 0; c0 < width; c0 += tile) {
    const std::string w = "spmm:cols" + std::to_string(c0);
    g.declare_work(w, "SpMM tile at column " + std::to_string(c0));
    g.charge(compute, w);
  }
}

// core/resilient.hpp + storage/tier.hpp service(): each failed attempt
// charges exponential backoff as overhead (not metered work) before the
// retry's real charge; the final attempt's work is charged exactly once.
void model_resilient_backoff(ChargeGraph& g) {
  const auto drive = g.stream("drive0");
  g.declare_work("io:0", "extent read 0 (succeeds on attempt 3)");
  for (int attempt = 0; attempt < 2; ++attempt)
    g.overhead(drive, "backoff:" + std::to_string(attempt));
  g.charge(drive, "io:0");
}

// slo/trace.hpp: every execution span mirrors exactly one timeline
// enqueue — the work is charged once, on its owning stream, and the span
// plane only *observes* the completion (a span is a view of the
// timeline, never a second cost model). Modeled as an "slo" observer
// stream that waits on each work's completion record and charges
// nothing; a tracer that re-charged observed work would reproduce the
// double-charge defect below and fail the audit.
void model_slo_span_parity(ChargeGraph& g) {
  const auto h2d = g.stream("h2d");
  const auto compute = g.stream("compute");
  const auto slo = g.stream("slo");
  for (int i = 0; i < 2; ++i) {
    const std::string si = std::to_string(i);
    g.declare_work("h2d:" + si, "slab upload " + si);
    g.charge(h2d, "h2d:" + si);
    g.record(h2d, "up:" + si);
    g.wait(compute, "up:" + si);
    g.declare_work("spmv:" + si, "slab SpMV " + si);
    g.charge(compute, "spmv:" + si);
    g.record(compute, "comp:" + si);
    // The tracer observes both completions (Tracer::add copies the
    // enqueue's interval); it never charges the streams.
    g.wait(slo, "up:" + si);
    g.wait(slo, "comp:" + si);
  }
}

// ---------------------------------------------------------------------
// Seeded defect corpus: the broken shapes the auditor must flag.
// ---------------------------------------------------------------------

void defect_free_work(ChargeGraph& g) {
  const auto compute = g.stream("compute");
  g.declare_work("spmv", "the SpMV kernel");
  g.declare_work("h2d", "the x upload");  // metered but never charged
  g.charge(compute, "spmv");
}

void defect_double_charge(ChargeGraph& g) {
  const auto h2d = g.stream("h2d");
  const auto compute = g.stream("compute");
  g.declare_work("h2d:0", "slab upload");
  g.charge(h2d, "h2d:0");
  g.charge(compute, "h2d:0");  // charged again on the wrong stream
}

// The real OOC loop waits on comp_done[i-2]; this one waits on
// comp_done[i] — a completion value read before the compute is enqueued.
void defect_inverted_join(ChargeGraph& g) {
  const auto h2d = g.stream("h2d");
  const auto compute = g.stream("compute");
  for (int i = 0; i < 3; ++i) {
    const std::string si = std::to_string(i);
    g.wait(h2d, "comp:" + si);  // inverted: recorded only below
    g.declare_work("h2d:" + si, "slab upload " + si);
    g.charge(h2d, "h2d:" + si);
    g.record(h2d, "up:" + si);
    g.wait(compute, "up:" + si);
    g.declare_work("spmv:" + si, "slab SpMV " + si);
    g.charge(compute, "spmv:" + si);
    g.record(compute, "comp:" + si);
  }
}

void defect_negative_charge(ChargeGraph& g) {
  const auto compute = g.stream("compute");
  g.declare_work("spmv", "the SpMV kernel");
  // Modeled after charging `t_end - t_start` where nothing proves the
  // difference non-negative.
  g.charge(compute, "spmv", /*nonneg=*/false);
}

void defect_dangling_wait(ChargeGraph& g) {
  const auto compute = g.stream("compute");
  g.declare_work("spmv", "the SpMV kernel");
  g.charge(compute, "spmv");
  g.wait(compute, "upload-done");  // never recorded by anyone
}

}  // namespace

const std::vector<std::string>& audit_device_keys() {
  static const std::vector<std::string> keys = {"gtx580", "k10", "titan"};
  return keys;
}

std::vector<AuditFinding> audit_engine_charges(const std::string& engine,
                                               const vgpu::DeviceSpec& spec) {
  const char* canon_p = core::canonical_engine_name(engine);
  ACSR_REQUIRE(canon_p != nullptr,
               "audit: unknown engine '" << engine << "'");
  const std::string canon = canon_p;
  ChargeGraph g;
  if (canon == "ooc-csr") {
    model_ooc(g, /*n_slabs=*/4);
  } else {
    const std::vector<std::string> ks = in_core_kernels(canon, spec);
    ACSR_REQUIRE(!ks.empty(), "audit: engine '"
                                  << canon
                                  << "' is registered but has no charge model");
    charge_kernels(g, ks);
  }
  return g.audit("charge:" + canon + "@" + spec.name);
}

const std::vector<std::string>& charge_plane_names() {
  static const std::vector<std::string> names = {
      "ooc-double-buffer", "storage-inflight",  "multi-gpu-merge",
      "memo-replay",       "spmm-batch",        "resilient-backoff",
      "slo-span-parity",
  };
  return names;
}

std::vector<AuditFinding> audit_charge_plane(const std::string& plane) {
  ChargeGraph g;
  if (plane == "ooc-double-buffer")
    model_ooc(g, /*n_slabs=*/6);
  else if (plane == "storage-inflight")
    model_storage_inflight(g);
  else if (plane == "multi-gpu-merge")
    model_multi_gpu(g);
  else if (plane == "memo-replay")
    model_memo_replay(g);
  else if (plane == "spmm-batch")
    model_spmm_batch(g);
  else if (plane == "resilient-backoff")
    model_resilient_backoff(g);
  else if (plane == "slo-span-parity")
    model_slo_span_parity(g);
  else
    ACSR_REQUIRE(false, "audit: unknown charge plane '" << plane << "'");
  return g.audit("plane:" + plane);
}

const std::vector<ChargeDefect>& all_charge_defects() {
  static const std::vector<ChargeDefect> defects = {
      {"free-work", AuditKind::kFreeWork,
       "metered transfer never charged to a timeline"},
      {"double-charge", AuditKind::kDoubleCharge,
       "one upload charged on two streams"},
      {"inverted-join", AuditKind::kCausalityInversion,
       "double-buffer fence waits on comp_done[i] instead of comp_done[i-2]"},
      {"negative-charge", AuditKind::kNonMonotone,
       "charge computed as an unproven difference"},
      {"dangling-wait", AuditKind::kDanglingWait,
       "wait on an event no stream records"},
  };
  return defects;
}

std::vector<AuditFinding> run_charge_defect(const std::string& name) {
  ChargeGraph g;
  if (name == "free-work")
    defect_free_work(g);
  else if (name == "double-charge")
    defect_double_charge(g);
  else if (name == "inverted-join")
    defect_inverted_join(g);
  else if (name == "negative-charge")
    defect_negative_charge(g);
  else if (name == "dangling-wait")
    defect_dangling_wait(g);
  else
    ACSR_REQUIRE(false, "audit: unknown charge defect '" << name << "'");
  return g.audit("defect:" + name);
}

}  // namespace acsr::analysis
