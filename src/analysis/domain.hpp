// Abstract value domain for the static kernel verifier (docs/ANALYSIS.md).
//
// The verifier re-executes kernel access patterns over *symbolic* shape
// parameters (n_rows, nnz, padded widths, ...) instead of concrete lanes.
// Its value domain is "interval + affine stride":
//
//   Sym      a polynomial with integer coefficients over named shape
//            parameters — the symbolic counterpart of a `long long` index.
//            Subtraction cancels like monomials, which is where the
//            relational power comes from: `(width*n_rows - 1) <= size` is
//            decided exactly when size is declared as `width*n_rows`,
//            with no bounds on either parameter needed.
//   AbsInt   an inclusive interval [lo, hi] with Sym endpoints.
//   AbsLanes the abstract value of one warp register across every thread
//            of a launch: an interval, an optional affine stride (the
//            shape the executor's fast path detects dynamically —
//            lane_array.hpp's affine_prefix), and a distinctness bit used
//            by the race check.
//
// All shape parameters are non-negative integers; ParamEnv evaluates a
// Sym's range by interval arithmetic over the declared parameter bounds.
// Every comparison is conservative: "unknown" never proves safety.
#pragma once

#include <algorithm>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "vgpu/lane_array.hpp"

namespace acsr::analysis {

/// A monomial: product of parameter names, sorted, with repetition for
/// powers. The empty monomial is the constant term.
using Monomial = std::vector<std::string>;

/// Integer-coefficient polynomial over shape parameters.
class Sym {
 public:
  Sym() = default;
  Sym(long long k) {  // NOLINT(google-explicit-constructor)
    if (k != 0) t_[Monomial{}] = k;
  }
  Sym(int k) : Sym(static_cast<long long>(k)) {}  // NOLINT

  static Sym param(const std::string& name) {
    Sym s;
    s.t_[Monomial{name}] = 1;
    return s;
  }

  bool is_zero() const { return t_.empty(); }
  bool is_constant() const {
    return t_.empty() || (t_.size() == 1 && t_.begin()->first.empty());
  }
  long long constant_term() const {
    auto it = t_.find(Monomial{});
    return it == t_.end() ? 0 : it->second;
  }

  const std::map<Monomial, long long>& terms() const { return t_; }

  friend Sym operator+(Sym a, const Sym& b) {
    for (const auto& [m, c] : b.t_) a.add(m, c);
    return a;
  }
  friend Sym operator-(Sym a, const Sym& b) {
    for (const auto& [m, c] : b.t_) a.add(m, -c);
    return a;
  }
  friend Sym operator*(const Sym& a, const Sym& b) {
    Sym r;
    for (const auto& [ma, ca] : a.t_)
      for (const auto& [mb, cb] : b.t_) {
        Monomial m = ma;
        m.insert(m.end(), mb.begin(), mb.end());
        std::sort(m.begin(), m.end());
        r.add(m, ca * cb);
      }
    return r;
  }
  Sym operator-() const {
    Sym r;
    for (const auto& [m, c] : t_) r.t_[m] = -c;
    return r;
  }
  friend bool operator==(const Sym& a, const Sym& b) { return a.t_ == b.t_; }

  /// Human-readable form for violation attribution, e.g. "width*n_rows - 1".
  std::string str() const {
    if (t_.empty()) return "0";
    std::ostringstream os;
    bool head = true;
    for (const auto& [m, c] : t_) {
      long long k = c;
      if (head) {
        if (k < 0) {
          os << "-";
          k = -k;
        }
      } else {
        os << (k < 0 ? " - " : " + ");
        k = k < 0 ? -k : k;
      }
      head = false;
      if (m.empty()) {
        os << k;
        continue;
      }
      if (k != 1) os << k << "*";
      for (std::size_t i = 0; i < m.size(); ++i)
        os << (i != 0 ? "*" : "") << m[i];
    }
    return os.str();
  }

 private:
  void add(const Monomial& m, long long c) {
    if (c == 0) return;
    auto [it, fresh] = t_.emplace(m, 0);
    (void)fresh;
    it->second += c;
    if (it->second == 0) t_.erase(it);
  }

  std::map<Monomial, long long> t_;
};

/// Declared range of one shape parameter. Parameters are non-negative;
/// hi == nullopt means unbounded above (the usual case for n, nnz).
struct ParamRange {
  long long lo = 0;
  std::optional<long long> hi;
};

/// The shape-class context: every parameter a Sym may mention, with its
/// declared range. Evaluates conservative bounds of polynomials.
class ParamEnv {
 public:
  void declare(const std::string& name, long long lo,
               std::optional<long long> hi = std::nullopt) {
    ACSR_CHECK_MSG(lo >= 0, "shape parameters are non-negative: '"
                                << name << "' declared with lo " << lo);
    if (hi) ACSR_CHECK_MSG(*hi >= lo, "empty range for parameter " << name);
    params_[name] = ParamRange{lo, hi};
  }

  bool knows(const std::string& name) const {
    return params_.find(name) != params_.end();
  }

  const ParamRange& range_of(const std::string& name) const {
    auto it = params_.find(name);
    ACSR_CHECK_MSG(it != params_.end(),
                   "verifier model references undeclared shape parameter '"
                       << name << "'");
    return it->second;
  }

  /// Largest provable lower bound of s (nullopt: unbounded below).
  std::optional<long long> lower_bound(const Sym& s) const {
    return bound(s, /*lower=*/true);
  }
  /// Smallest provable upper bound of s (nullopt: unbounded above).
  std::optional<long long> upper_bound(const Sym& s) const {
    return bound(s, /*lower=*/false);
  }

  /// Conservative: true only when a <= b holds for every assignment of the
  /// declared parameter ranges. Works by bounding b - a below, so terms
  /// sharing a monomial cancel exactly.
  bool definitely_le(const Sym& a, const Sym& b) const {
    const auto lb = lower_bound(b - a);
    return lb.has_value() && *lb >= 0;
  }
  bool definitely_ge(const Sym& a, long long k) const {
    return definitely_le(Sym(k), a);
  }

 private:
  // Range of one monomial under the declared parameter ranges. Parameters
  // are non-negative, so the product is monotone in each factor.
  std::pair<long long, std::optional<long long>> monomial_range(
      const Monomial& m) const {
    long long lo = 1;
    std::optional<long long> hi = 1;
    for (const std::string& name : m) {
      const ParamRange& r = range_of(name);
      lo *= r.lo;
      if (hi && r.hi)
        hi = *hi * *r.hi;
      else
        hi = std::nullopt;
    }
    return {lo, hi};
  }

  std::optional<long long> bound(const Sym& s, bool lower) const {
    long long acc = 0;
    for (const auto& [m, c] : s.terms()) {
      if (m.empty()) {
        acc += c;
        continue;
      }
      const auto [mlo, mhi] = monomial_range(m);
      // For a lower bound take c*mlo when c > 0 and c*mhi when c < 0 (and
      // symmetrically for an upper bound); a needed-but-unbounded side
      // makes the whole bound unknown.
      const bool need_hi = lower == (c < 0);
      if (need_hi) {
        if (!mhi) return std::nullopt;
        acc += c * *mhi;
      } else {
        acc += c * mlo;
      }
    }
    return acc;
  }

  std::map<std::string, ParamRange> params_;
};

/// Inclusive symbolic interval [lo, hi].
struct AbsInt {
  Sym lo;
  Sym hi;

  AbsInt() = default;
  AbsInt(Sym v) : lo(v), hi(std::move(v)) {}  // NOLINT
  AbsInt(Sym l, Sym h) : lo(std::move(l)), hi(std::move(h)) {}

  friend AbsInt operator+(const AbsInt& a, const AbsInt& b) {
    return {a.lo + b.lo, a.hi + b.hi};
  }
  friend AbsInt operator+(const AbsInt& a, const Sym& s) {
    return {a.lo + s, a.hi + s};
  }

  std::string str() const {
    return "[" + lo.str() + ", " + hi.str() + "]";
  }
};

/// One warp register abstracted across every thread of a launch.
struct AbsLanes {
  AbsInt range;           ///< every active lane's value lies in range
  bool known = true;      ///< false: value not tracked (data, not indices)
  bool distinct = false;  ///< pairwise-distinct across the *whole grid*
  bool affine = false;    ///< within a warp: lane l = first + l*step
  long long step = 0;     ///< affine stride (>= 0)

  static AbsLanes unknown() {
    AbsLanes v;
    v.known = false;
    return v;
  }

  static AbsLanes of_range(AbsInt r, bool distinct_across_grid = false) {
    AbsLanes v;
    v.range = std::move(r);
    v.distinct = distinct_across_grid;
    return v;
  }

  /// Affine warp register: lane l holds first + l*step, with `first`
  /// itself ranging over an interval (per-warp base). The covered range
  /// comes from the same affine_touch_range primitive the executor's fast
  /// path uses, instantiated at Sym.
  static AbsLanes affine_of(const AbsInt& first, long long step,
                            bool distinct_across_grid) {
    AbsLanes v;
    v.affine = true;
    v.step = step;
    v.distinct = distinct_across_grid;
    const auto [lo0, hi0] = vgpu::affine_touch_range<Sym>(
        first.lo, Sym(step), 1);
    const auto [lo1, hi1] = vgpu::affine_touch_range<Sym>(
        first.hi, Sym(step), vgpu::kWarpSize);
    (void)hi0;
    (void)lo1;
    v.range = AbsInt(lo0, hi1);
    return v;
  }

  /// Keep only lanes with value < ub: tightens the upper end (sound — the
  /// surviving lanes' values satisfy both the old and the new bound) and
  /// preserves distinctness/affinity (a guard selects a subset of lanes).
  AbsLanes guard_below(const Sym& ub) const {
    AbsLanes v = *this;
    v.range.hi = ub - Sym(1);
    return v;
  }
  /// Keep only lanes with value >= lb.
  AbsLanes guard_at_least(const Sym& lb) const {
    AbsLanes v = *this;
    v.range.lo = lb;
    return v;
  }
};

}  // namespace acsr::analysis
