#include "analysis/audit_passes.hpp"

#include <map>
#include <set>

#include "common/check.hpp"
#include "common/json.hpp"

namespace acsr::analysis {
namespace {

bool is_ident(const SourceFile& f, int p, const char* t = nullptr) {
  if (p < 0 || p >= f.n_code()) return false;
  const Token& tk = f.ct(p);
  return tk.kind == TokKind::kIdent && (t == nullptr || tk.text == t);
}
bool is_punct(const SourceFile& f, int p, const char* t) {
  if (p < 0 || p >= f.n_code()) return false;
  const Token& tk = f.ct(p);
  return tk.kind == TokKind::kPunct && tk.text == t;
}
bool is_string(const SourceFile& f, int p) {
  return p >= 0 && p < f.n_code() && f.ct(p).kind == TokKind::kString;
}

std::string at(const SourceFile& f, int p) {
  return f.path + ":" + std::to_string(f.ct(p).line);
}

/// grep-style `needle\b`: substring with a word boundary after it.
bool contains_word(const std::string& hay, const std::string& needle) {
  for (std::size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + 1)) {
    const std::size_t end = pos + needle.size();
    if (end == hay.size()) return true;
    const char c = hay[end];
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_'))
      return true;
  }
  return false;
}

/// All comment annotations `acsr-audit:<tag>(<arg>)` across the set.
std::set<std::string> annotations(const SourceSet& set,
                                  const std::string& tag) {
  std::set<std::string> out;
  const std::string needle = "acsr-audit:" + tag + "(";
  for (const SourceFile& f : set)
    for (const Token& t : f.toks) {
      if (t.kind != TokKind::kComment) continue;
      for (std::size_t pos = t.text.find(needle); pos != std::string::npos;
           pos = t.text.find(needle, pos + 1)) {
        const std::size_t beg = pos + needle.size();
        const std::size_t end = t.text.find(')', beg);
        if (end != std::string::npos)
          out.insert(t.text.substr(beg, end - beg));
      }
    }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------
// Pass 2: fault-taxonomy exhaustiveness.
// ---------------------------------------------------------------------

TaxonomyResult audit_taxonomy(const SourceSet& set) {
  // Taxonomy roots: vgpu::DeviceFault (fault.hpp) and vgpu::DeviceOom
  // (memory.hpp — deliberately not a DeviceFault: an allocation failure
  // is an admission problem, not a device failure, but it still needs a
  // recovery edge).
  const std::set<std::string> roots = {"DeviceFault", "DeviceOom"};

  // Class declarations: name -> direct base (first base, last identifier
  // of its possibly qualified spelling).
  std::map<std::string, std::string> base_of;
  for (const SourceFile& f : set) {
    for (int p = 0; p + 1 < f.n_code(); ++p) {
      if (!(is_ident(f, p, "class") || is_ident(f, p, "struct"))) continue;
      if (is_ident(f, p - 1, "enum")) continue;
      if (!is_ident(f, p + 1)) continue;
      const std::string name = f.ct(p + 1).text;
      // Scan to `{` (definition), `;` (forward declaration) or EOF.
      int q = p + 2;
      int colon = -1;
      for (; q < f.n_code(); ++q) {
        if (is_punct(f, q, "{") || is_punct(f, q, ";")) break;
        if (is_punct(f, q, ":") && colon < 0) colon = q;
      }
      if (q >= f.n_code() || is_punct(f, q, ";") || colon < 0) continue;
      // First base: tokens (colon, first `,` or `{`); its last identifier
      // is the unqualified class name.
      std::string base;
      for (int b = colon + 1; b < q && !is_punct(f, b, ","); ++b)
        if (is_ident(f, b) && f.ct(b).text != "public" &&
            f.ct(b).text != "protected" && f.ct(b).text != "private" &&
            f.ct(b).text != "virtual")
          base = f.ct(b).text;
      if (!base.empty()) base_of[name] = base;
    }
  }

  // Membership: reaches a root through the base chain.
  auto in_taxonomy = [&](const std::string& name) {
    std::string t = name;
    for (int hop = 0; hop < 16; ++hop) {
      if (roots.count(t)) return true;
      auto it = base_of.find(t);
      if (it == base_of.end()) return false;
      t = it->second;
    }
    return false;
  };
  auto ancestors_and_self = [&](const std::string& name) {
    std::vector<std::string> chain{name};
    std::string t = name;
    for (int hop = 0; hop < 16 && !roots.count(t); ++hop) {
      auto it = base_of.find(t);
      if (it == base_of.end()) break;
      t = it->second;
      chain.push_back(t);
    }
    return chain;
  };

  std::map<std::string, TaxonomyType> types;
  for (const auto& [name, base] : base_of)
    if (in_taxonomy(name)) types[name] = {name, base, {}, {}, false, false};
  for (const std::string& r : roots) {
    if (!types.count(r)) types[r] = {r, "", {}, {}, false, false};
    types[r].base = "";
  }

  // Throw sites: `throw [ns::]Type(` with Type in the taxonomy.
  for (const SourceFile& f : set) {
    for (int p = 0; p + 1 < f.n_code(); ++p) {
      if (!is_ident(f, p, "throw")) continue;
      std::string ty;
      int q = p + 1;
      while (q < f.n_code() &&
             (is_ident(f, q) || is_punct(f, q, "::"))) {
        if (is_ident(f, q)) ty = f.ct(q).text;
        ++q;
      }
      if (!ty.empty() && is_punct(f, q, "(") && types.count(ty))
        types[ty].throw_sites.push_back(at(f, p));
    }
  }

  // Recovery edges: typed catch sites `catch (const [ns::]Type& e)`.
  std::set<std::string> caught;
  for (const SourceFile& f : set) {
    for (int p = 0; p + 2 < f.n_code(); ++p) {
      if (!is_ident(f, p, "catch") || !is_punct(f, p + 1, "(")) continue;
      std::string ty, last_ident;
      for (int q = p + 2; q < f.n_code() && !is_punct(f, q, ")"); ++q) {
        if (is_ident(f, q) && f.ct(q).text != "const")
          last_ident = f.ct(q).text;
        if (is_punct(f, q, "&") && !last_ident.empty()) ty = last_ident;
      }
      if (ty.empty()) ty = last_ident;  // by-value catch
      if (!ty.empty() && types.count(ty)) {
        caught.insert(ty);
        types[ty].catch_sites.push_back(at(f, p));
      }
    }
  }

  const std::set<std::string> terminal = annotations(set, "terminal");

  TaxonomyResult res;
  for (auto& [name, t] : types) {
    t.terminal = terminal.count(name) > 0;
    for (const std::string& a : ancestors_and_self(name))
      if (caught.count(a)) {
        t.covered = true;
        if (a != name)
          t.catch_sites.insert(t.catch_sites.end(),
                               types[a].catch_sites.begin(),
                               types[a].catch_sites.end());
        break;
      }
    if (!t.throw_sites.empty() && !t.covered && !t.terminal) {
      std::string sites;
      for (const std::string& s : t.throw_sites) {
        if (!sites.empty()) sites += ", ";
        sites += s;
      }
      res.findings.push_back(
          {AuditKind::kOrphanThrow, "taxonomy", name,
           "thrown at " + sites +
               " but no typed catch of it or an ancestor exists and it is "
               "not declared acsr-audit:terminal(" +
               name + ")"});
    }
    res.types.push_back(t);
  }
  return res;
}

// ---------------------------------------------------------------------
// Pass 3: gate discipline.
// ---------------------------------------------------------------------

GateResult audit_gates(const SourceSet& set) {
  std::vector<FileModel> models;
  models.reserve(set.size());
  std::set<std::string> ns_init_refs, singleton_classes;
  for (const SourceFile& f : set) {
    models.push_back(build_file_model(f));
    const FileModel& m = models.back();
    ns_init_refs.insert(m.ns_init_refs.begin(), m.ns_init_refs.end());
    singleton_classes.insert(m.static_local_classes.begin(),
                             m.static_local_classes.end());
  }

  // Generic readers: functions whose body calls getenv with a non-literal
  // argument (env_flag(name), env_int(name, dflt)). Their own getenv is
  // audited at each literal call site instead.
  std::set<std::string> readers;
  for (std::size_t fi = 0; fi < set.size(); ++fi) {
    const SourceFile& f = set[fi];
    for (int p = 0; p + 2 < f.n_code(); ++p) {
      if (!is_ident(f, p, "getenv") || !is_punct(f, p + 1, "(")) continue;
      if (is_string(f, p + 2)) continue;
      if (const FunctionRegion* r = models[fi].enclosing(p))
        readers.insert(r->name);
    }
  }

  const std::set<std::string> cold = annotations(set, "cold-gate");

  GateResult res;
  for (std::size_t fi = 0; fi < set.size(); ++fi) {
    const SourceFile& f = set[fi];
    const FileModel& m = models[fi];
    for (int p = 0; p + 2 < f.n_code(); ++p) {
      // A gate site: getenv("ACSR_X") or reader("ACSR_X", ...).
      const bool direct =
          is_ident(f, p, "getenv") && is_punct(f, p + 1, "(") &&
          is_string(f, p + 2);
      const bool via_reader =
          !direct && is_ident(f, p) && readers.count(f.ct(p).text) > 0 &&
          is_punct(f, p + 1, "(") && is_string(f, p + 2);
      if (!direct && !via_reader) continue;
      const std::string var = f.ct(p + 2).text;
      if (var.rfind("ACSR_", 0) != 0) continue;

      GateSite site;
      site.var = var;
      site.file = f.path;
      site.line = f.ct(p).line;
      const FunctionRegion* r = m.enclosing(p);
      if (r == nullptr) {
        site.cached = true;
        site.how = "namespace-scope initializer";
      } else if (is_ident(f, statement_begin(f, p), "static")) {
        site.cached = true;
        site.how = "function-local static initializer";
      } else if (ns_init_refs.count(r->name)) {
        site.cached = true;
        site.how = "'" + r->name + "' runs once from a namespace-scope "
                                   "initializer";
      } else if (r->is_ctor && singleton_classes.count(r->name)) {
        site.cached = true;
        site.how = "Meyers-singleton constructor of " + r->name;
      } else if (cold.count(var)) {
        site.cached = true;
        site.how = "declared acsr-audit:cold-gate(" + var + ")";
      } else {
        site.cached = false;
        site.how = "re-read on every call of '" +
                   (r->name.empty() ? std::string("?") : r->name) + "'";
        res.findings.push_back(
            {AuditKind::kHotGetenv, "gates", var,
             at(f, p) + ": " + site.how +
                 " — cache it (static local / namespace-scope init / "
                 "singleton ctor) so the off-path costs one branch"});
      }
      res.sites.push_back(std::move(site));
    }
  }
  return res;
}

// ---------------------------------------------------------------------
// Absorbed lint rules (scripts/lint.sh 1-4), token-level.
// ---------------------------------------------------------------------

namespace {

const SourceFile* find_file(const SourceSet& set, const std::string& path) {
  for (const SourceFile& f : set)
    if (f.path == path) return &f;
  return nullptr;
}

/// Fields declared `std::uint64_t f = 0;` anywhere in the file — the
/// token-level mirror of lint.sh's sed over counters.hpp.
std::vector<std::string> u64_fields(const SourceFile& f) {
  std::vector<std::string> out;
  for (int p = 0; p + 5 < f.n_code(); ++p)
    if (is_ident(f, p, "std") && is_punct(f, p + 1, "::") &&
        is_ident(f, p + 2, "uint64_t") && is_ident(f, p + 3) &&
        is_punct(f, p + 4, "=") && is_punct(f, p + 6, ";"))
      out.push_back(f.ct(p + 3).text);
  return out;
}

/// Fields `std::uint64_t f = ...;` / `double f = ...;` inside
/// `struct <name> { ... }`.
std::vector<std::string> struct_fields(const SourceFile& f,
                                       const std::string& name) {
  std::vector<std::string> out;
  for (int p = 0; p + 2 < f.n_code(); ++p) {
    if (!is_ident(f, p, "struct") || !is_ident(f, p + 1, name.c_str()) ||
        !is_punct(f, p + 2, "{"))
      continue;
    int depth = 1;
    for (int q = p + 3; q < f.n_code() && depth > 0; ++q) {
      if (is_punct(f, q, "{")) ++depth;
      if (is_punct(f, q, "}")) --depth;
      if (depth != 1) continue;
      if (is_ident(f, q, "std") && is_punct(f, q + 1, "::") &&
          is_ident(f, q + 2, "uint64_t") && is_ident(f, q + 3) &&
          is_punct(f, q + 4, "="))
        out.push_back(f.ct(q + 3).text);
      else if (is_ident(f, q, "double") && is_ident(f, q + 1) &&
               is_punct(f, q + 2, "="))
        out.push_back(f.ct(q + 1).text);
    }
    break;
  }
  return out;
}

int count_ident(const SourceFile& f, const std::string& name) {
  int n = 0;
  for (int p = 0; p < f.n_code(); ++p)
    if (is_ident(f, p, name.c_str())) ++n;
  return n;
}

/// Passthrough registration: `MACRO(field, ...)` or a string literal
/// containing `prefix.field` (word-bounded), in `reg`.
bool has_passthrough(const SourceFile& reg, const std::string& macro,
                     const std::string& prefix, const std::string& field) {
  for (int p = 0; p + 2 < reg.n_code(); ++p)
    if (is_ident(reg, p, macro.c_str()) && is_punct(reg, p + 1, "(") &&
        is_ident(reg, p + 2, field.c_str()))
      return true;
  const std::string needle = prefix + "." + field;
  for (int p = 0; p < reg.n_code(); ++p)
    if (is_string(reg, p) && contains_word(reg.ct(p).text, needle))
      return true;
  return false;
}

}  // namespace

std::vector<AuditFinding> audit_lint(const SourceSet& set) {
  std::vector<AuditFinding> out;
  auto lint = [&](const std::string& subject, const std::string& detail) {
    out.push_back({AuditKind::kLint, "lint", subject, detail});
  };

  // Rule 1: every header carries #pragma once.
  for (const SourceFile& f : set) {
    if (!f.is_header()) continue;
    bool found = false;
    for (const Token& t : f.toks)
      if (t.kind == TokKind::kDirective &&
          t.text.rfind("#pragma", 0) == 0 &&
          t.text.find("once") != std::string::npos)
        found = true;
    if (!found) lint(f.path, "missing '#pragma once'");
  }

  // Rule 2: .data() only in the span layer. Token-level: a `.data()` in
  // a comment or string no longer trips it.
  const std::set<std::string> span_layer = {
      "src/vgpu/memory.hpp", "src/vgpu/warp.hpp", "src/storage/tier.hpp"};
  for (const SourceFile& f : set) {
    if (span_layer.count(f.path)) continue;
    for (int p = 0; p + 2 < f.n_code(); ++p)
      if (is_punct(f, p, ".") && is_ident(f, p + 1, "data") &&
          is_punct(f, p + 2, "("))
        lint(at(f, p), "raw .data() outside the span layer "
                       "(memory.hpp / warp.hpp / storage/tier.hpp)");
  }

  // Rules 3-4 need the concrete metering/metrics files; a synthetic set
  // without them (the defect corpus) audits rules 1-2 only.
  const SourceFile* counters = find_file(set, "src/vgpu/counters.hpp");
  const SourceFile* metrics_cpp = find_file(set, "src/prof/metrics.cpp");
  const SourceFile* metrics_hpp = find_file(set, "src/prof/metrics.hpp");

  if (counters != nullptr) {
    const std::vector<std::string> fields = u64_fields(*counters);
    if (fields.empty())
      lint("src/vgpu/counters.hpp", "could not parse any Counters fields");
    const SourceFile* metered[] = {find_file(set, "src/vgpu/warp.hpp"),
                                   find_file(set, "src/vgpu/device.cpp"),
                                   find_file(set, "src/vgpu/kernel.cpp")};
    for (const std::string& fld : fields) {
      // Declared once + merged in operator+= = at least two code uses.
      if (count_ident(*counters, fld) < 2)
        lint("Counters::" + fld,
             "declared but not merged in counters.hpp (operator+= missing "
             "it?)");
      int uses = 0;
      for (const SourceFile* mf : metered)
        if (mf != nullptr) uses += count_ident(*mf, fld);
      if (uses < 1)
        lint("Counters::" + fld,
             "never metered (warp.hpp / device.cpp / kernel.cpp)");
      if (metrics_cpp != nullptr &&
          !has_passthrough(*metrics_cpp, "ACSR_COUNTER_METRIC", "counters",
                           fld))
        lint("Counters::" + fld,
             "no 'counters." + fld +
                 "' passthrough metric registered in src/prof/metrics.cpp");
    }
  }

  if (metrics_hpp != nullptr && metrics_cpp != nullptr) {
    const struct {
      const char* agg;
      const char* macro;
      const char* prefix;
    } mirrors[] = {{"TenantAgg", "ACSR_TENANT_METRIC", "tenant"},
                   {"IoAgg", "ACSR_IO_METRIC", "io"},
                   {"SloAgg", "ACSR_SLO_METRIC", "slo"}};
    for (const auto& m : mirrors) {
      const std::vector<std::string> fields = struct_fields(*metrics_hpp,
                                                            m.agg);
      if (fields.empty())
        lint(std::string("src/prof/metrics.hpp"),
             std::string("could not parse any ") + m.agg + " fields");
      for (const std::string& fld : fields)
        if (!has_passthrough(*metrics_cpp, m.macro, m.prefix, fld))
          lint(std::string(m.agg) + "::" + fld,
               std::string("no '") + m.prefix + "." + fld +
                   "' passthrough metric registered in "
                   "src/prof/metrics.cpp");
    }
  }

  return out;
}

// ---------------------------------------------------------------------
// Seeded source-defect corpus.
// ---------------------------------------------------------------------

const std::vector<SourceDefect>& all_source_defects() {
  static const std::vector<SourceDefect> defects = {
      {"orphan-throw", AuditKind::kOrphanThrow,
       "typed fault thrown with no recovery edge and no terminal note"},
      {"hot-getenv", AuditKind::kHotGetenv,
       "ACSR_* gate re-read on every call"},
      {"lint-data-escape", AuditKind::kLint,
       ".data() escape outside the span layer (in code, not a comment)"},
  };
  return defects;
}

std::vector<AuditFinding> run_source_defect(const std::string& name) {
  SourceSet set;
  if (name == "orphan-throw") {
    set.push_back(lex_source("src/vgpu/phantom.hpp", R"cpp(
#pragma once
namespace acsr::vgpu {
class PhantomFault : public DeviceFault {
 public:
  using DeviceFault::DeviceFault;
};
inline void poke() { throw PhantomFault("dev", "poke", "boom"); }
// A typed catch of an unrelated class must not cover it:
inline void other() { try { poke(); } catch (const TransientFault& e) {} }
class TransientFault : public DeviceFault {};
}  // namespace acsr::vgpu
)cpp"));
  } else if (name == "hot-getenv") {
    set.push_back(lex_source("src/vgpu/phantom.hpp", R"cpp(
#pragma once
#include <cstdlib>
namespace acsr::vgpu {
// The getenv runs on every call: exactly the off-path regression the
// gate rule exists to stop.
inline bool phantom_enabled() {
  const char* v = std::getenv("ACSR_PHANTOM");
  return v != nullptr && v[0] == '1';
}
}  // namespace acsr::vgpu
)cpp"));
  } else if (name == "lint-data-escape") {
    set.push_back(lex_source("src/spmv/phantom.hpp", R"cpp(
#pragma once
#include <vector>
namespace acsr::spmv {
// Mentioning .data() here, or in a string "x.data()", must NOT trip the
// token-level rule; the real escape below must.
inline const double* leak(const std::vector<double>& v) {
  return v.data();
}
}  // namespace acsr::spmv
)cpp"));
  } else {
    ACSR_REQUIRE(false, "audit: unknown source defect '" << name << "'");
  }

  std::vector<AuditFinding> out = audit_taxonomy(set).findings;
  const GateResult gates = audit_gates(set);
  out.insert(out.end(), gates.findings.begin(), gates.findings.end());
  const std::vector<AuditFinding> lint = audit_lint(set);
  out.insert(out.end(), lint.begin(), lint.end());
  return out;
}

// ---------------------------------------------------------------------
// Aggregate report.
// ---------------------------------------------------------------------

std::string AuditReport::json() const {
  json::Array arr;
  for (const AuditFinding& f : findings) {
    json::Object o;
    o["kind"] = audit_kind_name(f.kind);
    o["plane"] = f.plane;
    o["subject"] = f.subject;
    o["detail"] = f.detail;
    arr.push_back(std::move(o));
  }
  json::Object summary;
  summary["engine_cells"] = engine_cells;
  summary["planes"] = planes;
  summary["defects_expected"] = defects_expected;
  summary["defects_flagged"] = defects_flagged;
  summary["taxonomy_types"] = taxonomy_types;
  summary["gate_sites"] = gate_sites;
  summary["clean"] = clean();
  json::Object root;
  root["findings"] = std::move(arr);
  root["summary"] = std::move(summary);
  return json::dump(root, 2);
}

}  // namespace acsr::analysis
