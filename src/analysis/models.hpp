// Engine verification models: one abstract re-execution per engine,
// mirroring the concrete launch sequence in its engine header against the
// shape class declared next to the kernels (docs/ANALYSIS.md). Plus the
// defect corpus: known-bad kernels (mirroring the dynamic sanitizer tests
// in tests/test_sanitizer.cpp) that the verifier must flag statically.
#pragma once

#include <string>
#include <vector>

#include "analysis/interpreter.hpp"
#include "vgpu/device_spec.hpp"

namespace acsr::analysis {

/// Canonical factory engine names, in factory dispatch order.
const std::vector<std::string>& all_engine_names();

/// True for every name verify_engine accepts (canonical names plus the
/// "csr-cusparse" alias the factory also takes).
bool knows_engine(const std::string& name);

/// Abstractly execute the named engine's launch sequence on the given
/// device spec and return every proof failure (empty = verified safe for
/// the engine's whole shape class on that device).
std::vector<Violation> verify_engine(const std::string& name,
                                     const vgpu::DeviceSpec& spec);

/// One deliberately defective kernel the verifier must flag.
struct DefectCase {
  std::string name;        ///< stable id, e.g. "oob-load"
  ViolationKind expected;  ///< the kind the verifier must report
  std::string device;     ///< DeviceSpec::by_name key to run it on
  std::string what;        ///< human description of the planted defect
};

const std::vector<DefectCase>& all_defect_cases();

/// Run one defect kernel; returns the violations found (the test asserts
/// the expected kind appears).
std::vector<Violation> run_defect(const std::string& name);

}  // namespace acsr::analysis
