#include "analysis/source_model.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/check.hpp"

namespace acsr::analysis {
namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

struct Lexer {
  const std::string& s;
  std::size_t i = 0;
  int line = 1;
  std::vector<Token> out;

  bool done() const { return i >= s.size(); }
  char cur() const { return s[i]; }
  char peek(std::size_t k = 1) const {
    return i + k < s.size() ? s[i + k] : '\0';
  }
  void adv() {
    if (s[i] == '\n') ++line;
    ++i;
  }
  void emit(TokKind k, std::string text, int at) {
    out.push_back({k, std::move(text), at});
  }

  void line_comment() {
    const int at = line;
    std::string t;
    while (!done() && cur() != '\n') {
      t += cur();
      adv();
    }
    emit(TokKind::kComment, std::move(t), at);
  }

  void block_comment() {
    const int at = line;
    std::string t = "/*";
    adv();
    adv();
    while (!done()) {
      if (cur() == '*' && peek() == '/') {
        adv();
        adv();
        t += "*/";
        break;
      }
      t += cur();
      adv();
    }
    emit(TokKind::kComment, std::move(t), at);
  }

  /// `#...` to end of line, honoring backslash continuations.
  void directive() {
    const int at = line;
    std::string t;
    while (!done()) {
      if (cur() == '\\' && peek() == '\n') {
        adv();
        adv();
        t += ' ';
        continue;
      }
      if (cur() == '\n') break;
      t += cur();
      adv();
    }
    emit(TokKind::kDirective, std::move(t), at);
  }

  /// Inner content of a quoted literal (escapes kept verbatim).
  void quoted(char q, TokKind kind) {
    const int at = line;
    std::string t;
    adv();  // opening quote
    while (!done() && cur() != q) {
      if (cur() == '\\') {
        t += cur();
        adv();
        if (done()) break;
      }
      t += cur();
      adv();
    }
    if (!done()) adv();  // closing quote
    emit(kind, std::move(t), at);
  }

  void raw_string() {
    // R"delim( ... )delim"
    const int at = line;
    adv();  // "
    std::string delim;
    while (!done() && cur() != '(') {
      delim += cur();
      adv();
    }
    if (!done()) adv();  // (
    const std::string close = ")" + delim + "\"";
    std::string t;
    while (!done()) {
      if (cur() == ')' && s.compare(i, close.size(), close) == 0) {
        for (std::size_t k = 0; k < close.size(); ++k) adv();
        break;
      }
      t += cur();
      adv();
    }
    emit(TokKind::kString, std::move(t), at);
  }

  void number() {
    const int at = line;
    std::string t;
    while (!done()) {
      const char c = cur();
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '.' ||
          (c == '\'' && ident_char(peek())) ||
          ((c == '+' || c == '-') && !t.empty() &&
           (t.back() == 'e' || t.back() == 'E' || t.back() == 'p' ||
            t.back() == 'P'))) {
        t += c;
        adv();
      } else {
        break;
      }
    }
    emit(TokKind::kNumber, std::move(t), at);
  }

  void run() {
    bool at_line_start = true;
    while (!done()) {
      const char c = cur();
      if (c == '\n') {
        at_line_start = true;
        adv();
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        adv();
        continue;
      }
      if (c == '/' && peek() == '/') {
        line_comment();
        continue;
      }
      if (c == '/' && peek() == '*') {
        block_comment();
        continue;
      }
      if (c == '#' && at_line_start) {
        directive();
        continue;
      }
      at_line_start = false;
      if (ident_start(c)) {
        const int at = line;
        std::string t;
        while (!done() && ident_char(cur())) {
          t += cur();
          adv();
        }
        // Raw / prefixed string literals: R"..", u8"..", LR".." etc.
        if (!done() && cur() == '"' && !t.empty() && t.back() == 'R' &&
            (t == "R" || t == "LR" || t == "uR" || t == "UR" || t == "u8R")) {
          raw_string();
          continue;
        }
        if (!done() && cur() == '"' &&
            (t == "u8" || t == "u" || t == "U" || t == "L")) {
          quoted('"', TokKind::kString);
          continue;
        }
        emit(TokKind::kIdent, std::move(t), at);
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '.' && std::isdigit(static_cast<unsigned char>(peek())))) {
        number();
        continue;
      }
      if (c == '"') {
        quoted('"', TokKind::kString);
        continue;
      }
      if (c == '\'') {
        quoted('\'', TokKind::kChar);
        continue;
      }
      // Punctuation; only "::" is fused (qualifier detection needs it).
      const int at = line;
      if (c == ':' && peek() == ':') {
        adv();
        adv();
        emit(TokKind::kPunct, "::", at);
        continue;
      }
      adv();
      emit(TokKind::kPunct, std::string(1, c), at);
    }
  }
};

bool is_code(TokKind k) {
  return k != TokKind::kComment && k != TokKind::kDirective;
}

}  // namespace

bool SourceFile::is_header() const {
  return path.size() >= 4 && path.compare(path.size() - 4, 4, ".hpp") == 0;
}

SourceFile lex_source(std::string path, const std::string& text) {
  SourceFile f;
  f.path = std::move(path);
  Lexer lx{text, 0, 1, {}};
  lx.run();
  f.toks = std::move(lx.out);
  for (std::size_t t = 0; t < f.toks.size(); ++t)
    if (is_code(f.toks[t].kind)) f.code.push_back(static_cast<int>(t));
  return f;
}

SourceSet load_source_tree(const std::string& repo_root) {
  namespace fs = std::filesystem;
  const fs::path src = fs::path(repo_root) / "src";
  ACSR_REQUIRE(fs::is_directory(src),
               "audit: no src/ under '" << repo_root << "'");
  std::vector<fs::path> paths;
  for (const auto& e : fs::recursive_directory_iterator(src)) {
    if (!e.is_regular_file()) continue;
    const std::string ext = e.path().extension().string();
    if (ext == ".hpp" || ext == ".cpp") paths.push_back(e.path());
  }
  std::sort(paths.begin(), paths.end());
  SourceSet set;
  for (const fs::path& p : paths) {
    std::ifstream in(p, std::ios::binary);
    ACSR_REQUIRE(in.good(), "audit: cannot read " << p.string());
    std::ostringstream body;
    body << in.rdbuf();
    const std::string rel =
        fs::relative(p, fs::path(repo_root)).generic_string();
    set.push_back(lex_source(rel, body.str()));
  }
  return set;
}

const FunctionRegion* FileModel::enclosing(int pos) const {
  const FunctionRegion* best = nullptr;
  for (const FunctionRegion& r : functions)
    if (r.begin < pos && pos < r.end &&
        (best == nullptr || r.begin > best->begin))
      best = &r;
  return best;
}

int statement_begin(const SourceFile& f, int pos) {
  int p = pos;
  while (p > 0) {
    const std::string& t = f.ct(p - 1).text;
    if (f.ct(p - 1).kind == TokKind::kPunct &&
        (t == ";" || t == "{" || t == "}"))
      break;
    --p;
  }
  return p;
}

FileModel build_file_model(const SourceFile& f) {
  FileModel m;

  struct Scope {
    enum Kind { kNamespace, kClass, kFunction, kBlock, kInit } kind;
    std::string class_name;  // kClass only
    int func = -1;           // index into m.functions, kFunction only
  };
  std::vector<Scope> st{{Scope::kNamespace, "", -1}};

  auto top = [&]() -> Scope& { return st.back(); };
  auto enclosing_class = [&]() -> std::string {
    for (auto it = st.rbegin(); it != st.rend(); ++it)
      if (it->kind == Scope::kClass) return it->class_name;
    return "";
  };

  const int n = f.n_code();
  int stmt = 0;  // statement start (code position)
  auto text = [&](int p) -> const std::string& { return f.ct(p).text; };
  auto is_punct = [&](int p, const char* s) {
    return f.ct(p).kind == TokKind::kPunct && text(p) == s;
  };
  auto is_ident = [&](int p) { return f.ct(p).kind == TokKind::kIdent; };

  for (int p = 0; p < n; ++p) {
    if (is_punct(p, "{")) {
      // Classify this brace from the statement tokens [stmt, p).
      bool has_namespace = false, has_class = false, has_paren = false;
      for (int q = stmt; q < p; ++q) {
        if (is_ident(q)) {
          if (text(q) == "namespace") has_namespace = true;
          if (text(q) == "class" || text(q) == "struct" ||
              text(q) == "union" || text(q) == "enum")
            has_class = true;
        }
        if (is_punct(q, "(")) has_paren = true;
      }
      const bool prev_callish =
          p > stmt &&
          (is_punct(p - 1, ")") ||
           (is_ident(p - 1) &&
            (text(p - 1) == "const" || text(p - 1) == "noexcept" ||
             text(p - 1) == "override" || text(p - 1) == "final")));
      const bool init_ctx =
          p > stmt && (is_punct(p - 1, "=") || is_punct(p - 1, ",") ||
                       is_punct(p - 1, "(") || is_punct(p - 1, "{") ||
                       (is_ident(p - 1) && text(p - 1) == "return"));

      if (has_namespace) {
        st.push_back({Scope::kNamespace, "", -1});
      } else if ((top().kind == Scope::kNamespace ||
                  top().kind == Scope::kClass) &&
                 prev_callish && has_paren && !has_class && !init_ctx) {
        // A function definition at namespace/class scope. Its name is the
        // first identifier followed by `(`; `C::name` yields a qualifier.
        FunctionRegion r;
        for (int q = stmt; q + 1 < p; ++q) {
          if (is_ident(q) && is_punct(q + 1, "(")) {
            r.name = text(q);
            if (q >= 2 && is_punct(q - 1, "::") && is_ident(q - 2))
              r.qualifier = text(q - 2);
            break;
          }
        }
        if (r.qualifier.empty()) r.qualifier = enclosing_class();
        r.is_ctor = !r.name.empty() && r.name == r.qualifier;
        r.begin = p;
        m.functions.push_back(std::move(r));
        st.push_back(
            {Scope::kFunction, "", static_cast<int>(m.functions.size()) - 1});
      } else if (has_class && !init_ctx) {
        std::string cname;
        for (int q = stmt; q < p; ++q)
          if (is_ident(q) && (text(q) == "class" || text(q) == "struct" ||
                              text(q) == "union")) {
            if (q + 1 < p && is_ident(q + 1)) cname = text(q + 1);
            break;
          }
        st.push_back({Scope::kClass, cname, -1});
      } else if (init_ctx) {
        st.push_back({Scope::kInit, "", -1});
      } else {
        st.push_back({Scope::kBlock, "", -1});
      }
      stmt = p + 1;
      continue;
    }

    if (is_punct(p, "}")) {
      if (st.size() > 1) {
        if (top().kind == Scope::kFunction)
          m.functions[static_cast<std::size_t>(top().func)].end = p;
        st.pop_back();
      }
      stmt = p + 1;
      continue;
    }

    if (is_punct(p, ";")) {
      // Completed statement. Two pattern harvests:
      //  - namespace-scope initializer: collect rhs identifiers
      //  - function-local Meyers singleton: `static C x ;` / `static C x (`
      if (top().kind == Scope::kNamespace || top().kind == Scope::kClass) {
        int eq = -1;
        for (int q = stmt; q < p; ++q)
          if (is_punct(q, "=")) {
            eq = q;
            break;
          }
        if (eq >= 0)
          for (int q = eq + 1; q < p; ++q)
            if (is_ident(q)) m.ns_init_refs.push_back(text(q));
      }
      if (top().kind == Scope::kFunction || top().kind == Scope::kBlock) {
        if (p - stmt >= 3 && is_ident(stmt) && text(stmt) == "static" &&
            is_ident(stmt + 1) && is_ident(stmt + 2) &&
            (stmt + 3 == p || is_punct(stmt + 3, "(") ||
             is_punct(stmt + 3, "{")))
          m.static_local_classes.push_back(text(stmt + 1));
      }
      stmt = p + 1;
      continue;
    }
  }
  return m;
}

}  // namespace acsr::analysis
