// Token-level C++ source model for the audit tier's source passes
// (fault-taxonomy exhaustiveness, gate discipline, and the lint rules
// absorbed from scripts/lint.sh).
//
// The grep era's false positives all came from matching text the
// compiler never sees: `.data()` in a comment, an ACSR_ variable named
// in a docstring, a throw inside a string literal. The lexer here
// produces a comment/string-aware token stream, and the file model
// layers a scope heuristic on top (namespace / class / function / block
// brace classification) so passes can ask "which function encloses this
// token" and "does this statement start with `static`" — the two
// questions the gate-discipline proof turns on.
//
// This is a heuristic model of C++, not a parser: it does not expand
// macros or resolve templates. The passes are written so a
// misclassification fails loud (a finding on clean code, caught by
// tests/test_audit.cpp's real-tree runs) rather than silently excusing
// a defect.
#pragma once

#include <string>
#include <vector>

namespace acsr::analysis {

enum class TokKind {
  kIdent,      ///< identifiers and keywords
  kNumber,     ///< numeric literals (digit separators included)
  kString,     ///< string literal; text holds the INNER content
  kChar,       ///< character literal; text holds the inner content
  kPunct,      ///< punctuation; "::" is one token, others single-char
  kDirective,  ///< whole `#...` preprocessor line (continuations joined)
  kComment,    ///< // or /* */ comment, full text
};

struct Token {
  TokKind kind{};
  std::string text;
  int line = 1;  ///< 1-based line of the token's first character
};

struct SourceFile {
  std::string path;  ///< repo-relative, e.g. "src/vgpu/fault.hpp"
  std::vector<Token> toks;
  std::vector<int> code;  ///< indices into toks of code tokens only

  bool is_header() const;
  const Token& ct(int code_pos) const { return toks[static_cast<std::size_t>(
      code[static_cast<std::size_t>(code_pos)])]; }
  int n_code() const { return static_cast<int>(code.size()); }
};

SourceFile lex_source(std::string path, const std::string& text);

/// The unit the source passes run over. Tests feed synthetic sets; the
/// CLI loads the real tree.
using SourceSet = std::vector<SourceFile>;

/// Every .hpp/.cpp under `<repo_root>/src`, lexed, in sorted path order.
SourceSet load_source_tree(const std::string& repo_root);

/// A function body found by the brace classifier.
struct FunctionRegion {
  std::string name;       ///< unqualified name
  std::string qualifier;  ///< `C` from `C::name`, or the enclosing class
  int begin = -1;         ///< code position of the body's `{`
  int end = -1;           ///< code position of the matching `}`
  bool is_ctor = false;   ///< name equals the (qualifying) class name
};

struct FileModel {
  std::vector<FunctionRegion> functions;
  /// Identifiers referenced on the right-hand side of namespace-scope
  /// initializers (`inline bool g = f();` contributes `f`): calling one
  /// of these runs once at static-init time, i.e. is a cached cold path.
  std::vector<std::string> ns_init_refs;
  /// Class names `C` of function-local `static C x;` statements — the
  /// Meyers-singleton pattern; `C`'s constructor runs exactly once.
  std::vector<std::string> static_local_classes;

  /// Innermost function whose body contains code position `pos`.
  const FunctionRegion* enclosing(int pos) const;
};

FileModel build_file_model(const SourceFile& f);

/// Code position of the first token of the statement containing `pos`
/// (the token after the nearest preceding `;`, `{` or `}`).
int statement_begin(const SourceFile& f, int pos);

}  // namespace acsr::analysis
