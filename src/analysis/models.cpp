// One abstract re-execution per engine: each model mirrors the concrete
// kernel's index arithmetic and guard structure (see the engine header it
// is named after) over the symbolic shape class declared next to those
// kernels. Every `if (idx < n)` in the kernel becomes a guard_below, every
// loop over a padded width becomes the interval its iterations cover, and
// every format invariant the builder establishes is consumed through the
// declared span properties — so a passing proof holds for *all* matrices
// of the shape class, not one test input.
//
// The defect corpus at the bottom mirrors tests/test_sanitizer.cpp: every
// defect class the dynamic sanitizer catches at runtime (minus the free
// family, which has no static counterpart in this model — see
// docs/ANALYSIS.md) is planted in a small kernel the verifier must flag.
#include "analysis/models.hpp"

#include <utility>

#include "common/check.hpp"
#include "core/acsr_engine.hpp"
#include "core/engine_registry.hpp"
#include "core/ooc_engine.hpp"
#include "spmv/bccoo_engine.hpp"
#include "spmv/bcsr_engine.hpp"
#include "spmv/brc_engine.hpp"
#include "spmv/coo_engine.hpp"
#include "spmv/csr_scalar.hpp"
#include "spmv/csr_vector.hpp"
#include "spmv/ell_engine.hpp"
#include "spmv/hyb_engine.hpp"
#include "spmv/merge_csr_engine.hpp"
#include "spmv/sell_engine.hpp"
#include "spmv/sic_engine.hpp"
#include "spmv/tcoo_engine.hpp"

namespace acsr::analysis {
namespace {

// --- shared model fragments --------------------------------------------------

/// y.assign(n, 0) / Device::zero_fill before an accumulating kernel: a
/// launch whose distinct per-thread stores define the span, so the next
/// launch's atomics read initialized memory (the epoch semantics the
/// dynamic sanitizer enforces per launch boundary).
void model_zero_fill(Verifier& v, const std::string& span_name,
                     const Sym& n) {
  v.launch("zero_fill", v.p("grid"), 256, [&](AbsKernel& k) {
    k.store(v.span(span_name), k.global_threads().guard_below(n),
            span_name + "[i] = 0 (i < n)");
  });
}

/// Shift every lane down by a warp-uniform symbolic offset (the tiled
/// x-slice rebase: c_local = c - col_base).
AbsLanes minus(const AbsLanes& a, const Sym& s) {
  AbsLanes r = a;
  r.range.lo = r.range.lo - s;
  r.range.hi = r.range.hi - s;
  return r;
}

/// The x gather of the column-blocked SpMM kernels: the engines stage the
/// input block as a packed row-major slab (EngineBase::stage_x_pack), so
/// matrix column `col`'s k batch values are contiguous at xpack[col*k + c].
/// One symbolic access with c in [0, k-1] stands for every tile column;
/// the bounds proof hi = (n_cols-1)*k + (k-1) cancels exactly against the
/// declared slab size n_cols*k.
void model_spmm_x_gather(Verifier& v, AbsKernel& k, const AbsLanes& col) {
  const Sym kk = v.p("k");
  AbsLanes g = col;
  g.range.lo = g.range.lo * kk;
  g.range.hi = g.range.hi * kk + (kk - Sym(1));
  k.load_tex(v.span("xpack"), g, "xpack[col*k + c] (c < k, col < n_cols)");
}

/// The y store counterpart: yb[c*(n_rows+ldy_pad) + row]. Distinctness is
/// the batched kernels' ownership discipline — every (row, c) output slot
/// is written by exactly one head lane of one tile (rows partition the
/// warps exactly as in the scalar kernel; tiles partition the columns).
void model_spmm_y_store(Verifier& v, AbsKernel& k, const AbsLanes& row,
                        const std::string& desc) {
  const Sym ldy = v.p("n_rows") + v.p("ldy_pad");
  const AbsLanes s = AbsLanes::of_range(
      AbsInt(row.range.lo, row.range.hi + (v.p("k") - Sym(1)) * ldy),
      /*distinct=*/true);
  k.store(v.span("yb"), s, desc);
}

/// The generic 32-lane strip of a sliced slab (BRC / SELL / SIC): slots
/// base + j*32 + l for j in [0, w). One symbolic (base, w, rest) triple
/// with slab size = base + 32*w + rest stands for every strip at once —
/// the proof hi = base + 32*w - 1 <= slab - 1 cancels to 0 <= rest.
void model_slab_strip(Verifier& v, AbsKernel& k, const std::string& col_s,
                      const std::string& val_s, const Sym& base,
                      const Sym& w) {
  const AbsLanes slot = AbsLanes::of_range(
      AbsInt(base, base + Sym(32) * w - Sym(1)));
  const AbsLanes col = k.load(v.span(col_s), slot, "col[base + j*32 + l]");
  k.load(v.span(val_s), slot, "val[base + j*32 + l]");
  // The pad mask (col >= 0) is the guard that keeps x gathers in range.
  k.load_tex(v.span("x"), col.guard_at_least(Sym(0)), "x[col] (col >= 0)");
}

/// The ELL column-major slab walk: thread = row, slot = j*n_rows + row for
/// j in [0, width). Shared by the standalone ELL engine and HYB's ELL part.
void model_ell_kernel(Verifier& v, const std::string& kname,
                      const std::string& col_s, const std::string& val_s,
                      const Sym& width) {
  v.launch(kname, v.p("grid"), 128, [&](AbsKernel& k) {
    const Sym n_rows = v.p("n_rows");
    const AbsLanes rows = k.global_threads().guard_below(n_rows);
    // hi = (n_rows - 1) + (width - 1)*n_rows = width*n_rows - 1 — exactly
    // the slab size minus one, for every width including 0 (vacuous).
    const AbsLanes slot = AbsLanes::of_range(AbsInt(
        rows.range.lo, rows.range.hi + (width - Sym(1)) * n_rows));
    const AbsLanes col = k.load(v.span(col_s), slot, "col[j*n_rows + row]");
    k.load(v.span(val_s), slot, "val[j*n_rows + row]");
    k.load_tex(v.span("x"), col.guard_at_least(Sym(0)), "x[col] (col >= 0)");
    k.store(v.span("y"), rows, "y[row] = sum (row < n_rows)");
  });
}

/// The segmented-scan COO walk: thread = entry, atomics into y at segment
/// tails. Shared by the standalone COO engine and HYB's tail. Requires y
/// initialized (zero-filled or ELL-defined) before this launch.
void model_coo_kernel(Verifier& v, const std::string& kname,
                      const std::string& row_s, const std::string& col_s,
                      const std::string& val_s, const Sym& n) {
  v.launch(kname, v.p("grid"), 128, [&](AbsKernel& k) {
    const AbsLanes idx = k.global_threads().guard_below(n);
    const AbsLanes r = k.load(v.span(row_s), idx, "row[i] (i < nnz)");
    const AbsLanes c = k.load(v.span(col_s), idx, "col[i] (i < nnz)");
    k.load(v.span(val_s), idx, "val[i] (i < nnz)");
    k.load_tex(v.span("x"), c, "x[col[i]]");
    k.atomic_add(v.span("y"), r, "atomicAdd(&y[row], segment_sum)");
  });
}

/// The permuted-slab store discipline (BRC / SELL): warp = strip, lanes
/// own rows perm[strip*32 + l]. The permutation's injectivity times the
/// pairwise-distinct slot ids is what makes the scattered y store race-free.
void model_permuted_slab(Verifier& v, const std::string& kname,
                         const Sym& n_strips, const std::string& perm_s,
                         const std::string& off_s, const std::string& w_s,
                         const std::string& col_s, const std::string& val_s,
                         const Sym& strip_w) {
  v.launch(kname, v.p("grid"), 128, [&](AbsKernel& k) {
    const AbsInt strip(Sym(0), n_strips - Sym(1));  // guarded < n_strips
    k.load_scalar(v.span(off_s), strip, off_s + "[strip]");
    k.load_scalar(v.span(w_s), strip, w_s + "[strip]");
    // pr = iota(strip*32): affine per warp, distinct across the grid
    // (each strip owns its own 32 slots), guarded pr < n_rows.
    const AbsLanes pr =
        AbsLanes::affine_of(AbsInt(Sym(0), (n_strips - Sym(1)) * Sym(32)),
                            /*step=*/1, /*distinct_across_grid=*/true)
            .guard_below(v.p("n_rows"));
    const AbsLanes out_row = k.load(v.span(perm_s), pr, perm_s + "[strip*32 + l]");
    model_slab_strip(v, k, col_s, val_s, v.p("slab_base"), strip_w);
    k.store(v.span("y"), out_row, "y[" + perm_s + "[pr]] = sum");
  });
}

// --- engine models -----------------------------------------------------------

void model_csr_scalar(Verifier& v) {
  v.launch("csr_scalar", v.p("grid"), 128, [&](AbsKernel& k) {
    const AbsLanes rows = k.global_threads().guard_below(v.p("n_rows"));
    const AbsLanes start = k.load(v.span("row_start"), rows, "row_start[row]");
    const AbsLanes end = k.load(v.span("row_end"), rows, "row_end[row]");
    // The per-lane cursor lives in [start, end): lower-bounded by the
    // smallest begin offset, upper-bounded by the largest end minus one.
    const AbsLanes cur = AbsLanes::of_range(
        AbsInt(start.range.lo, end.range.hi - Sym(1)));
    const auto cv = k.load_pair(v.span("col_idx"), v.span("vals"), cur,
                                "col_idx/vals[cur] (start <= cur < end)");
    k.load_tex(v.span("x"), cv.first, "x[col]");
    k.store(v.span("y"), rows, "y[row] = sum (row < n_rows)");
  });
  // The batched widening (csr_scalar.hpp csr_scalar_spmm_warp): same row
  // walk, grid = row space x column tiles, per-column block accesses.
  v.launch("csr_scalar_spmm", v.p("grid"), 128, [&](AbsKernel& k) {
    const AbsLanes rows = AbsLanes::of_range(
        AbsInt(Sym(0), v.p("n_rows") - Sym(1)));  // live mask: row0 < n_rows
    const AbsLanes start = k.load(v.span("row_start"), rows, "row_start[row0]");
    const AbsLanes end = k.load(v.span("row_end"), rows, "row_end[row0]");
    const AbsLanes cur = AbsLanes::of_range(
        AbsInt(start.range.lo, end.range.hi - Sym(1)));
    const auto cv = k.load_pair(v.span("col_idx"), v.span("vals"), cur,
                                "col_idx/vals[cur] (start <= cur < end)");
    model_spmm_x_gather(v, k, cv.first);
    model_spmm_y_store(v, k, rows, "yb[c*ldy + row0] = sum[c] (row0 < n_rows)");
  });
}

/// Also the model for "csr"/"csr-cusparse" (same kernel, wider vec) and
/// the structure ACSR's bin grids instantiate with a row map.
void model_csr_vector(Verifier& v) {
  v.launch("csr_vector", v.p("grid"), 128, [&](AbsKernel& k) {
    // One row slot per warp sub-group; the heads mask (sub-lane 0) leaves
    // exactly one storing lane per slot and slots partition the threads,
    // so the stored rows are pairwise-distinct across the grid.
    const AbsLanes row = AbsLanes::of_range(
        AbsInt(Sym(0), v.p("n_rows") - Sym(1)), /*distinct=*/true);
    const AbsLanes start = k.load(v.span("row_start"), row, "row_start[row]");
    const AbsLanes end = k.load(v.span("row_end"), row, "row_end[row]");
    const AbsLanes i = AbsLanes::of_range(
        AbsInt(start.range.lo, end.range.hi - Sym(1)));
    const auto cv = k.load_pair(v.span("col_idx"), v.span("vals"), i,
                                "col_idx/vals[i] (start <= i < end)");
    k.load_tex(v.span("x"), cv.first, "x[col]");
    k.store(v.span("y"), row, "y[row] = sum (heads)");
  });
  // Batched widening (csr_vector.hpp csr_vector_spmm_warp): the same row
  // slots, one column tile per warp group, block accesses per column.
  v.launch("csr_vector_spmm", v.p("grid"), 128, [&](AbsKernel& k) {
    const AbsLanes row = AbsLanes::of_range(
        AbsInt(Sym(0), v.p("n_rows") - Sym(1)), /*distinct=*/true);
    const AbsLanes start = k.load(v.span("row_start"), row, "row_start[row]");
    const AbsLanes end = k.load(v.span("row_end"), row, "row_end[row]");
    const AbsLanes i = AbsLanes::of_range(
        AbsInt(start.range.lo, end.range.hi - Sym(1)));
    const auto cv = k.load_pair(v.span("col_idx"), v.span("vals"), i,
                                "col_idx/vals[i] (start <= i < end)");
    model_spmm_x_gather(v, k, cv.first);
    model_spmm_y_store(v, k, row, "yb[c*ldy + row] = sum[c] (heads)");
  });
}

void model_ell(Verifier& v) {
  model_ell_kernel(v, "ell", "ell.col", "ell.val", v.p("width"));
}

void model_coo(Verifier& v) {
  model_zero_fill(v, "y", v.p("n_rows"));
  model_coo_kernel(v, "coo_segmented", "coo.row", "coo.col", "coo.val",
                   v.p("nnz"));
}

void model_hyb(Verifier& v) {
  // The ELL pass covers every row (its guard is row < n_rows), defining y;
  // the COO tail pass then accumulates atomically in a later launch.
  model_ell_kernel(v, "hyb_ell", "hyb.ell.col", "hyb.ell.val",
                   v.p("ell_width"));
  model_coo_kernel(v, "hyb_coo", "hyb.coo.row", "hyb.coo.col", "hyb.coo.val",
                   v.p("tail_nnz"));
}

void model_brc(Verifier& v) {
  model_permuted_slab(v, "brc", v.p("n_blocks"), "brc.perm", "brc.boff",
                      "brc.bwidth", "brc.col", "brc.val", v.p("block_w"));
}

void model_sell(Verifier& v) {
  model_permuted_slab(v, "sell", v.p("n_slices"), "sell.perm", "sell.soff",
                      "sell.swidth", "sell.col", "sell.val", v.p("slice_w"));
}

void model_sic(Verifier& v) {
  v.launch("sic", v.p("grid"), 128, [&](AbsKernel& k) {
    const Sym n_blocks = v.p("n_blocks");
    const AbsInt blk(Sym(0), n_blocks - Sym(1));  // guarded < n_blocks
    k.load_scalar(v.span("sic.boff"), blk, "boff[blk]");
    k.load_scalar(v.span("sic.bwidth"), blk, "bwidth[blk]");
    const AbsLanes slot =
        AbsLanes::affine_of(AbsInt(Sym(0), (n_blocks - Sym(1)) * Sym(32)),
                            /*step=*/1, /*distinct_across_grid=*/true)
            .guard_below(v.p("n_slots"));
    // sic.rows is injective over non-pad entries and the pads (-1) are
    // masked out by the live &= row >= 0 guard, so the surviving rows
    // stay pairwise-distinct.
    const AbsLanes out_row =
        k.load(v.span("sic.rows"), slot, "rows[blk*32 + l]")
            .guard_at_least(Sym(0));
    model_slab_strip(v, k, "sic.col", "sic.val", v.p("slab_base"),
                     v.p("block_w"));
    k.store(v.span("y"), out_row, "y[rows[slot]] = sum (row >= 0)");
  });
}

void model_bccoo(Verifier& v) {
  model_zero_fill(v, "y", v.p("n_rows"));
  v.launch("bccoo", v.p("grid"), 128, [&](AbsKernel& k) {
    const Sym n_blocks = v.p("n_blocks");
    const Sym width = v.p("width");
    const AbsLanes blk = k.global_threads().guard_below(n_blocks);
    const AbsLanes row = k.load(v.span("bccoo.row"), blk, "brow[blk]");
    // The pack invariant declared on bccoo.col: base column plus every
    // prefix of byte deltas stays inside [0, n_cols).
    const AbsLanes col = k.load(v.span("bccoo.col"), blk, "bcol[blk]");
    // slot = blk*width + j, j in [0, width): hi = n_blocks*width - 1.
    const AbsLanes slot = AbsLanes::of_range(AbsInt(
        Sym(0), (n_blocks - Sym(1)) * width + width - Sym(1)));
    k.load(v.span("bccoo.delta"), slot, "delta[blk*width + j]");
    k.load(v.span("bccoo.val"), slot, "val[blk*width + j]");
    k.load_tex(v.span("x"), col, "x[col] (delta decode in range)");
    k.atomic_add(v.span("y"), row, "atomicAdd(&y[head_row], head_sum)");
  });
}

void model_tcoo(Verifier& v) {
  // One symbolic tile (tile_n entries, x window [col_base, col_base+xw))
  // stands for every tile of the sequential tile loop; y accumulates
  // across tiles, so it is zero-filled once up front.
  model_zero_fill(v, "y", v.p("n_rows"));
  v.launch("tcoo_tile", v.p("grid"), 128, [&](AbsKernel& k) {
    const AbsLanes idx = k.global_threads().guard_below(v.p("tile_n"));
    const AbsLanes r = k.load(v.span("tcoo.row"), idx, "row_idx[i]");
    const AbsLanes c = k.load(v.span("tcoo.col"), idx, "col_idx[i]");
    k.load(v.span("tcoo.val"), idx, "vals[i]");
    // The partition invariant: tile columns lie in the tile's x window,
    // so the rebased gather is bounded by the slice width.
    k.load_tex(v.span("x_tile"), minus(c, v.p("col_base")),
               "x_tile[col - col_base]");
    k.atomic_add(v.span("y"), r, "atomicAdd(&y[row], segment_sum)");
  });
}

void model_bcsr(Verifier& v) {
  v.launch("bcsr", v.p("grid"), 128, [&](AbsKernel& k) {
    const Sym nbr = v.p("nbr");
    const Sym bs = v.p("bs");
    const Sym n_blocks = v.p("n_blocks");
    const AbsInt br(Sym(0), nbr - Sym(1));  // guarded < nbr
    k.load_scalar(v.span("bcsr.roff"), br, "roff[br]");
    k.load_scalar(v.span("bcsr.roff"), AbsInt(Sym(1), nbr), "roff[br + 1]");
    // The tile cursor is masked bidx < hi <= n_blocks (roff content).
    const AbsLanes bidx =
        AbsLanes::of_range(AbsInt(Sym(0), n_blocks - Sym(1)));
    const AbsLanes bcol = k.load(v.span("bcsr.col"), bidx, "col[bidx]");
    // vslot = bidx*bs^2 + sub*bs + j with sub, j in [0, bs):
    // hi = (n_blocks-1)*bs^2 + (bs-1)*bs + bs - 1 = n_blocks*bs^2 - 1.
    const AbsLanes vslot = AbsLanes::of_range(
        AbsInt(Sym(0), (n_blocks - Sym(1)) * bs * bs + (bs - Sym(1)) * bs +
                           bs - Sym(1)));
    k.load(v.span("bcsr.val"), vslot, "val[bidx*bs*bs + sub*bs + j]");
    // x gather: bcol*bs + j, additionally masked < x.size() in the kernel.
    const AbsLanes xidx =
        AbsLanes::of_range(
            AbsInt(Sym(0), (v.p("n_bcols") - Sym(1)) * bs + bs - Sym(1)))
            .guard_below(v.p("n_cols"));
    (void)bcol;
    k.load_tex(v.span("x"), xidx, "x[bcol*bs + j] (masked < n_cols)");
    // Each block-row owns rows br*bs + i, i in [0, bs): distinct block
    // rows times distinct in-tile lanes makes the store race-free.
    const AbsLanes rows =
        AbsLanes::of_range(AbsInt(Sym(0), nbr * bs - Sym(1)),
                           /*distinct=*/true)
            .guard_below(v.p("n_rows"));
    k.store(v.span("y"), rows, "y[br*bs + i] = sum (masked < n_rows)");
  });
}

void model_merge_csr(Verifier& v) {
  model_zero_fill(v, "y", v.p("n_rows"));
  v.launch("merge_csr", v.p("grid"), 128, [&](AbsKernel& k) {
    const Sym n_rows = v.p("n_rows");
    const Sym nnz = v.p("nnz");
    // Diagonal binary search: probes row_end[mid] with mid's upper end
    // clamped to min(diagonal, n_rows) in the kernel.
    k.load(v.span("merge.row_end"),
           AbsLanes::of_range(AbsInt(Sym(0), n_rows - Sym(1))),
           "row_end[mid] (mid < n_rows)");
    // Staged value window: indices in [i_lo, i_hi) with i_hi <= nnz.
    const AbsLanes idx =
        AbsLanes::of_range(AbsInt(Sym(0), nnz - Sym(1)));
    const auto cv = k.load_pair(v.span("col_idx"), v.span("vals"), idx,
                                "col_idx/vals[i] (i < i_hi <= nnz)");
    // Merge-path invariant: a live lane's current row r < n_rows (row
    // n_rows-1's end marker is the last item on the path).
    const AbsLanes r =
        AbsLanes::of_range(AbsInt(Sym(0), n_rows - Sym(1)));
    k.load(v.span("merge.row_end"), r, "row_end[r] (live => r < n_rows)");
    k.load_tex(v.span("x"), cv.first, "x[col]");
    // Row-end flush and cross-lane carry are both atomic: atomics never
    // race each other, and y was zero-filled a launch ago.
    k.atomic_add(v.span("y"), r, "atomicAdd(&y[out_row], sum) (row end)");
    k.atomic_add(v.span("y"), r, "atomicAdd(&y[out_row], carry) (tails)");
  });
}

/// ACSR (Algorithm 2 + 3): bin grids run the csr_vector structure over
/// disjoint row maps; the DP tail parent zeroes its rows then launches one
/// child grid per heavy row. Soundness notes in docs/ANALYSIS.md: the
/// concurrently-issued bin grids are modeled as one symbolic launch over
/// the full bin_rows map (their disjointness is the declared injectivity),
/// and enable_dp mirrors bin_matrix's device-capability gate.
void model_acsr(Verifier& v, bool enable_dp) {
  v.launch("acsr_bin", v.p("grid"), 128, [&](AbsKernel& k) {
    const AbsLanes slot = AbsLanes::of_range(
        AbsInt(Sym(0), v.p("n_slots") - Sym(1)), /*distinct=*/true);
    const AbsLanes row =
        k.load(v.span("acsr.bin_rows"), slot, "bin_rows[slot]");
    const AbsLanes start = k.load(v.span("row_start"), row, "row_start[row]");
    const AbsLanes end = k.load(v.span("row_end"), row, "row_end[row]");
    const AbsLanes i = AbsLanes::of_range(
        AbsInt(start.range.lo, end.range.hi - Sym(1)));
    const auto cv = k.load_pair(v.span("col_idx"), v.span("vals"), i,
                                "col_idx/vals[i] (start <= i < end)");
    k.load_tex(v.span("x"), cv.first, "x[col]");
    k.store(v.span("y"), row, "y[bin_rows[slot]] = sum (heads)");
  });
  // Batched bin grid (acsr_engine.hpp bin_spmm_warp): the same mapped-row
  // walk, one column tile per warp group; the gathered x slice of the
  // current column is staged through the warp's private 32-slot window of
  // the block slab (4 warps x 32 slots, no sync — windows are disjoint).
  v.launch("acsr_spmm_bin", v.p("grid"), 128, [&](AbsKernel& k) {
    AbsSpan& xslab =
        k.shared_alloc(Sym(128), 8, "blk.shared<T>(warps_per_block * 32)");
    const AbsLanes slot = AbsLanes::of_range(
        AbsInt(Sym(0), v.p("n_slots") - Sym(1)), /*distinct=*/true);
    const AbsLanes row =
        k.load(v.span("acsr.bin_rows"), slot, "bin_rows[slot]");
    const AbsLanes start = k.load(v.span("row_start"), row, "row_start[row]");
    const AbsLanes end = k.load(v.span("row_end"), row, "row_end[row]");
    const AbsLanes i = AbsLanes::of_range(
        AbsInt(start.range.lo, end.range.hi - Sym(1)));
    const auto cv = k.load_pair(v.span("col_idx"), v.span("vals"), i,
                                "col_idx/vals[i] (start <= i < end)");
    model_spmm_x_gather(v, k, cv.first);
    k.store(xslab,
            AbsLanes::of_range(AbsInt(Sym(0), Sym(127)), /*distinct=*/true),
            "xslab[warp_in_block*32 + l] = xv[l] (warp-private window)");
    k.load(xslab, AbsLanes::of_range(AbsInt(Sym(0), Sym(127))),
           "xslab[warp_in_block*32 + l] (staged slice read-back)");
    model_spmm_y_store(v, k, row, "yb[c*ldy + bin_rows[slot]] = sum (heads)");
  });
  if (!enable_dp || !v.spec().supports_dynamic_parallelism()) return;
  v.launch("acsr_dp_parent", v.p("grid"), 32, [&](AbsKernel& k) {
    const Sym n_dp = v.p("n_dp");
    const AbsLanes tid = k.global_threads().guard_below(n_dp);
    const AbsLanes row = k.load(v.span("acsr.dp_rows"), tid, "dp_rows[tid]");
    k.load(v.span("row_start"), row, "row_start[row]");
    k.load(v.span("row_end"), row, "row_end[row]");
    // Parent zeroes y[row] *before* the child launch: ordered by the DP
    // parent->child visibility guarantee, not a race.
    k.store(v.span("y"), row, "y[row] = 0 (before child launch)");
    k.launch_child(
        "acsr_row", n_dp, v.p("child_grid"), 256,
        [&](AbsKernel& c) {
          // Block::shared<T>(warps_per_block): 8 warps at 256 threads.
          AbsSpan& partials =
              c.shared_alloc(Sym(8), 8, "blk.shared<T>(warps_per_block)");
          const AbsLanes i = AbsLanes::of_range(
              AbsInt(Sym(0), v.p("nnz") - Sym(1)));
          const auto cv = c.load_pair(v.span("col_idx"), v.span("vals"), i,
                                      "col_idx/vals[i] (start <= i < end)");
          c.load_tex(v.span("x"), cv.first, "x[col]");
          // One slot per warp of the block; shared memory is per-block,
          // so per-block distinct slots cannot alias across the grid.
          c.store(partials,
                  AbsLanes::of_range(AbsInt(Sym(0), Sym(7)),
                                     /*distinct=*/true),
                  "partials[warp_in_block] = warp_sum");
          c.sync("blk.sync()");
          c.load(partials, AbsLanes::of_range(AbsInt(Sym(0), Sym(7))),
                 "partials[l] (warp 0 fold)");
          c.atomic_add(v.span("y"),
                       AbsLanes::of_range(
                           AbsInt(Sym(0), v.p("n_rows") - Sym(1))),
                       "atomicAdd(&y[row], block_sum)");
        },
        "launch_row_child(row) x n_dp");
  });
  // Batched DP tail (acsr_engine.hpp launch_row_child_batch): one child
  // grid per heavy row serves all k columns; the child loops column tiles
  // with a barrier-separated two-phase shared reduction per tile.
  v.launch("acsr_spmm_dp_parent", v.p("grid"), 32, [&](AbsKernel& k) {
    const Sym n_dp = v.p("n_dp");
    const AbsLanes tid = k.global_threads().guard_below(n_dp);
    const AbsLanes row = k.load(v.span("acsr.dp_rows"), tid, "dp_rows[tid]");
    k.load(v.span("row_start"), row, "row_start[row]");
    k.load(v.span("row_end"), row, "row_end[row]");
    // Parent clears every column's slot before launching the child (DP
    // parent->child ordering, same as the scalar parent's y[row] = 0).
    model_spmm_y_store(v, k, row, "yb[c*ldy + row] = 0 (before child)");
    k.launch_child(
        "acsr_spmm_row", n_dp, v.p("child_grid"), 256,
        [&](AbsKernel& c) {
          // warps_per_block * kSpmmTile partial slots (8 warps x 8 cols).
          AbsSpan& partials = c.shared_alloc(
              Sym(64), 8, "blk.shared<T>(warps_per_block * kSpmmTile)");
          const AbsLanes i = AbsLanes::of_range(
              AbsInt(Sym(0), v.p("nnz") - Sym(1)));
          const auto cv = c.load_pair(v.span("col_idx"), v.span("vals"), i,
                                      "col_idx/vals[i] (start <= i < end)");
          model_spmm_x_gather(v, c, cv.first);
          c.store(partials,
                  AbsLanes::of_range(AbsInt(Sym(0), Sym(63)),
                                     /*distinct=*/true),
                  "partials[c*warps + warp_in_block] = warp_sum[c]");
          c.sync("blk.sync()");
          c.load(partials, AbsLanes::of_range(AbsInt(Sym(0), Sym(63))),
                 "partials[c*warps + p] (warp 0 fold)");
          const Sym ldy = v.p("n_rows") + v.p("ldy_pad");
          c.atomic_add(
              v.span("yb"),
              AbsLanes::of_range(AbsInt(
                  Sym(0),
                  v.p("n_rows") - Sym(1) + (v.p("k") - Sym(1)) * ldy)),
              "atomicAdd(&yb[c*ldy + row], block_sum[c])");
          c.sync("blk.sync() (WAR: partials reused by the next tile)");
        },
        "launch_row_child_batch(row) x n_dp");
  });
}

/// Out-of-core slab bin grid (ooc_engine.hpp run_slab): the ACSR bin
/// structure at slab granularity — a mapped-row csr_vector walk over the
/// injective slab-local bin row map, with slab-rebased extent arrays and
/// a slab-local y. n_rows is the *slab* height; the column gather stays
/// global because x is fully device-resident while the matrix streams.
void model_ooc(Verifier& v) {
  v.launch("ooc_slab_bin", v.p("grid"), 128, [&](AbsKernel& k) {
    const AbsLanes slot = AbsLanes::of_range(
        AbsInt(Sym(0), v.p("n_slots") - Sym(1)), /*distinct=*/true);
    const AbsLanes row =
        k.load(v.span("ooc.bin_rows"), slot, "bin_rows[slot]");
    const AbsLanes start = k.load(v.span("row_start"), row, "row_start[row]");
    const AbsLanes end = k.load(v.span("row_end"), row, "row_end[row]");
    const AbsLanes i = AbsLanes::of_range(
        AbsInt(start.range.lo, end.range.hi - Sym(1)));
    const auto cv = k.load_pair(v.span("col_idx"), v.span("vals"), i,
                                "col_idx/vals[i] (start <= i < end)");
    k.load_tex(v.span("x"), cv.first, "x[col]");
    k.store(v.span("y"), row, "y[bin_rows[slot]] = sum (heads)");
  });
}

// --- registry ----------------------------------------------------------------

struct EngineModel {
  const char* name;
  ShapeClass (*shape)();
  void (*run)(Verifier&);
};

const EngineModel kEngines[] = {
    {"csr-scalar", spmv::csr_scalar_shape_class, model_csr_scalar},
    {"csr-vector", spmv::csr_vector_shape_class, model_csr_vector},
    {"csr", spmv::csr_vector_shape_class, model_csr_vector},
    {"ell", spmv::ell_shape_class, model_ell},
    {"coo", spmv::coo_shape_class, model_coo},
    {"hyb", spmv::hyb_shape_class, model_hyb},
    {"brc", spmv::brc_shape_class, model_brc},
    {"bccoo", spmv::bccoo_shape_class, model_bccoo},
    {"tcoo", spmv::tcoo_shape_class, model_tcoo},
    {"sic", spmv::sic_shape_class, model_sic},
    {"merge-csr", spmv::merge_csr_shape_class, model_merge_csr},
    {"sell", spmv::sell_shape_class, model_sell},
    {"bcsr", spmv::bcsr_shape_class, model_bcsr},
    {"acsr", core::acsr_shape_class,
     [](Verifier& v) { model_acsr(v, /*enable_dp=*/true); }},
    {"acsr-binning", core::acsr_shape_class,
     [](Verifier& v) { model_acsr(v, /*enable_dp=*/false); }},
    {"ooc-csr", core::ooc_shape_class, model_ooc},
};

const EngineModel* find_engine(const std::string& name) {
  // Canonicalise through the factory registry so aliases ("csr-cusparse")
  // dispatch to the same model as their canonical engine.
  const char* canon = core::canonical_engine_name(name);
  if (canon == nullptr) return nullptr;
  for (const EngineModel& m : kEngines)
    if (canon == std::string(m.name)) return &m;
  return nullptr;
}

}  // namespace

const std::vector<std::string>& all_engine_names() {
  // Derived from the factory registry — NOT from the local model table —
  // so a factory engine without a verifier model makes every sweep
  // (acsr_verify --all, the proof-matrix tests) fail loudly instead of
  // silently dropping out of the matrix.
  return core::factory_engine_names();
}

bool knows_engine(const std::string& name) {
  return find_engine(name) != nullptr;
}

std::vector<Violation> verify_engine(const std::string& name,
                                     const vgpu::DeviceSpec& spec) {
  const EngineModel* m = find_engine(name);
  ACSR_REQUIRE(m != nullptr,
               "no verifier model for engine '" << name << "'");
  Verifier v(name, spec);
  v.declare_shape(m->shape());
  m->run(v);
  return v.take();
}

// --- defect corpus -----------------------------------------------------------

namespace {

struct DefectModel {
  DefectCase info;
  void (*run)(Verifier&);
};

const DefectModel kDefects[] = {
    {{"oob-load", ViolationKind::kOutOfBounds, "titan",
      "constant index one past a 4-element buffer"},
     [](Verifier& v) {
       v.declare_span(data_span("buf", Sym(4), "small scratch buffer"));
       v.launch("oob_load", Sym(1), 32, [&](AbsKernel& k) {
         k.load(v.span("buf"), AbsLanes::of_range(AbsInt(Sym(4))), "buf[4]");
       });
     }},
    {{"forged-span", ViolationKind::kOutOfBounds, "titan",
      "span handle claims n+8 elements over an n-element allocation"},
     [](Verifier& v) {
       v.declare_param(param("n", 0, "true allocation size"));
       v.declare_span(data_span("alloc", Sym::param("n"), "backing store"));
       v.launch("forged_span", Sym(1), 32, [&](AbsKernel& k) {
         k.load(v.span("alloc"),
                AbsLanes::of_range(
                    AbsInt(Sym(0), Sym::param("n") + Sym(7))),
                "forged[i] (i < n + 8)");
       });
     }},
    {{"uninit-read", ViolationKind::kUninitRead, "titan",
      "load from a buffer never host-filled or device-stored"},
     [](Verifier& v) {
       v.declare_span(data_span("fresh", Sym(32), "never initialized",
                                /*initialized=*/false));
       v.launch("uninit_read", Sym(1), 32, [&](AbsKernel& k) {
         k.load(v.span("fresh"),
                AbsLanes::of_range(AbsInt(Sym(0), Sym(31))), "fresh[lane]");
       });
     }},
    {{"atomic-uninit", ViolationKind::kUninitRead, "titan",
      "accumulate into a y that was never zero-filled (the COO defect)"},
     [](Verifier& v) {
       v.declare_param(param("n", 0, "output length"));
       v.declare_span(data_span("y", Sym::param("n"), "output vector",
                                /*initialized=*/false));
       v.launch("atomic_uninit", Sym(1), 32, [&](AbsKernel& k) {
         k.atomic_add(v.span("y"),
                      AbsLanes::of_range(
                          AbsInt(Sym(0), Sym::param("n") - Sym(1))),
                      "atomicAdd(&y[row], s) without zero-fill");
       });
     }},
    {{"lane-race", ViolationKind::kWriteRace, "titan",
      "two lanes of one warp plain-store the same element"},
     [](Verifier& v) {
       v.declare_span(data_span("y", Sym(4), "racy output"));
       v.launch("lane_race", Sym(1), 32, [&](AbsKernel& k) {
         k.store(v.span("y"), AbsLanes::of_range(AbsInt(Sym(0))),
                 "y[0] = lane (all lanes)");
       });
     }},
    {{"block-race", ViolationKind::kWriteRace, "titan",
      "every block plain-stores y[lane] — distinct per warp, aliased "
      "across blocks"},
     [](Verifier& v) {
       v.declare_span(data_span("y", Sym(32), "racy output"));
       v.launch("block_race", Sym(2), 32, [&](AbsKernel& k) {
         k.store(v.span("y"), k.lanes(), "y[lane] = block_idx");
       });
     }},
    {{"mixed-race", ViolationKind::kWriteRace, "titan",
      "plain store and atomic update of one span in the same launch"},
     [](Verifier& v) {
       v.declare_span(data_span("y", Sym(64), "output"));
       v.launch("mixed_race", Sym(2), 32, [&](AbsKernel& k) {
         const AbsLanes i = k.global_threads().guard_below(Sym(64));
         k.store(v.span("y"), i, "y[i] = s");
         k.atomic_add(v.span("y"), i, "atomicAdd(&y[i], s)");
       });
     }},
    {{"dp-sibling-race", ViolationKind::kWriteRace, "titan",
      "two sibling child grids plain-write the same span"},
     [](Verifier& v) {
       v.declare_span(data_span("y", Sym(32), "output"));
       v.launch("dp_parent", Sym(1), 32, [&](AbsKernel& k) {
         const auto child = [&](AbsKernel& c) {
           c.store(v.span("y"), c.global_threads().guard_below(Sym(32)),
                   "y[tid] = s (child)");
         };
         k.launch_child("child_a", Sym(1), Sym(1), 32, child, "launch A");
         k.launch_child("child_b", Sym(1), Sym(1), 32, child, "launch B");
       });
     }},
    {{"divergent-sync", ViolationKind::kDivergentSync, "titan",
      "__syncthreads inside a lane-varying branch"},
     [](Verifier& v) {
       v.launch("divergent_sync", Sym(1), 64, [&](AbsKernel& k) {
         k.begin_divergent("if (lane < 16)");
         k.sync();
         k.end_divergent();
       });
     }},
    {{"dp-on-fermi", ViolationKind::kDynamicParallelism, "gtx580",
      "device-side launch on a CC 2.0 device"},
     [](Verifier& v) {
       v.launch("dp_on_fermi", Sym(1), 32, [&](AbsKernel& k) {
         k.launch_child("child", Sym(1), Sym(1), 32,
                        [](AbsKernel&) {}, "cudaLaunchDevice on Fermi");
       });
     }},
    {{"pending-overflow", ViolationKind::kPendingLaunchOverflow, "titan",
      "one child launch per row with no bound on the row count"},
     [](Verifier& v) {
       v.declare_param(param("m", 0, "unbounded row count"));
       v.launch("pending_overflow", Sym(1), 32, [&](AbsKernel& k) {
         k.launch_child("row_child", Sym::param("m"), Sym(1), 32,
                        [](AbsKernel&) {}, "launch per row, m unbounded");
       });
     }},
    {{"bad-launch", ViolationKind::kBadLaunchConfig, "titan",
      "block_dim 2048 exceeds max_threads_per_block"},
     [](Verifier& v) {
       v.launch("bad_launch", Sym(1), 2048, [](AbsKernel&) {});
     }},
    {{"smem-overflow", ViolationKind::kSharedMemOverflow, "titan",
      "64 KiB static shared allocation vs the 48 KiB per-block limit"},
     [](Verifier& v) {
       v.launch("smem_overflow", Sym(1), 256, [](AbsKernel& k) {
         k.shared_alloc(Sym(8192), 8, "blk.shared<double>(8192)");
       });
     }},
};

}  // namespace

const std::vector<DefectCase>& all_defect_cases() {
  static const std::vector<DefectCase> cases = [] {
    std::vector<DefectCase> v;
    for (const DefectModel& d : kDefects) v.push_back(d.info);
    return v;
  }();
  return cases;
}

std::vector<Violation> run_defect(const std::string& name) {
  for (const DefectModel& d : kDefects) {
    if (d.info.name != name) continue;
    Verifier v("defect:" + name, vgpu::DeviceSpec::by_name(d.info.device));
    d.run(v);
    return v.take();
  }
  ACSR_REQUIRE(false, "unknown defect case '" << name << "'");
  return {};
}

}  // namespace acsr::analysis
