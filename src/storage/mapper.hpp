// Striped file mapper: RAID-0 layout of one logical byte range across N
// drives (the RAID_config / file_mapper split of SAFS-style engines,
// reduced to the piece the simulator needs). A logical extent is rounded
// out to whole stripes — drives serve stripes, not bytes — which is where
// the tier's read amplification (io.read_amplification) comes from.
#pragma once

#include <cstddef>
#include <vector>

#include "common/check.hpp"

namespace acsr::storage {

/// The portion of one mapped read a single drive serves.
struct Extent {
  int drive = 0;
  std::size_t stripes = 0;  ///< stripes this drive serves for the read
  std::size_t bytes = 0;    ///< stripe-rounded bytes (stripes * stripe size)
};

class StripeMapper {
 public:
  StripeMapper(int num_drives, std::size_t stripe_bytes)
      : num_drives_(num_drives), stripe_bytes_(stripe_bytes) {
    ACSR_REQUIRE(num_drives >= 1,
                 "storage tier needs >= 1 drive, got " << num_drives);
    ACSR_REQUIRE(stripe_bytes > 0, "stripe size must be positive");
  }

  int num_drives() const { return num_drives_; }
  std::size_t stripe_bytes() const { return stripe_bytes_; }

  /// Drive of logical stripe `s` (round-robin, RAID-0).
  int drive_of(std::size_t stripe) const {
    return static_cast<int>(stripe % static_cast<std::size_t>(num_drives_));
  }

  /// Map the logical byte range [offset, offset + bytes) onto per-drive
  /// extents, rounded out to stripe boundaries. One extent per involved
  /// drive, in order of first touch (deterministic).
  std::vector<Extent> map(std::size_t offset, std::size_t bytes) const {
    ACSR_CHECK(bytes > 0);
    const std::size_t s0 = offset / stripe_bytes_;
    const std::size_t s1 = (offset + bytes - 1) / stripe_bytes_;
    std::vector<Extent> out;
    for (std::size_t s = s0; s <= s1; ++s) {
      const int d = drive_of(s);
      Extent* e = nullptr;
      for (Extent& cand : out)
        if (cand.drive == d) {
          e = &cand;
          break;
        }
      if (e == nullptr) {
        out.push_back(Extent{d, 0, 0});
        e = &out.back();
      }
      e->stripes += 1;
      e->bytes += stripe_bytes_;
    }
    return out;
  }

 private:
  int num_drives_;
  std::size_t stripe_bytes_;
};

}  // namespace acsr::storage
