// Fault-tolerant simulated storage tier (docs/OOC.md).
//
// A StorageTier is a RAID-0 array of simulated drives on the caller's
// StreamTimeline: each drive is one stream, so reads striped across
// drives proceed in parallel with each other and with whatever else the
// caller runs on its own streams (the out-of-core executor's h2d and
// compute streams). The tier is a *timing and integrity* model — the
// "file" truth is host memory, and a read delivers bytes by copying the
// request's source segments into its destination segments — so the data
// plane stays exact while the time plane pays drive service, stripe
// rounding, queueing, and fault penalties.
//
// Robustness is first-class. Every chunk is checksummed (FNV-1a) over
// its source bytes before service and verified over the *delivered*
// bytes on arrival; the ACSR_FAULTS `read` site can fail a request
// (io_transient), hang it (io_timeout), corrupt the delivered bytes
// (io_checksum — caught by the arrival checksum), or degrade a drive
// (io_degrade). Failed or corrupt reads are re-issued up to
// `max_retries` times with exponential backoff charged to the simulated
// clock; exhausting the budget escapes as the matching typed error
// (IoTransientError / IoTimeout / ChunkChecksumMismatch from
// vgpu/fault.hpp), which the checkpointed solvers' DeviceFault restart
// net already covers.
//
// Requests are asynchronous with a bounded in-flight window: submit()
// services the request on the drive streams immediately (simulated
// asynchrony — drive time advances independently of the caller's
// streams) and parks its completion; when the window is full the oldest
// request completes first, modelling a producer blocking on a full
// queue. poll()/drain() fire completion callbacks. All accounting lands
// in a prof::IoAgg (io.* metrics, scripts/lint.sh rule 4 parity).
#pragma once

#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "prof/metrics.hpp"
#include "slo/trace.hpp"
#include "storage/drive.hpp"
#include "storage/mapper.hpp"
#include "vgpu/fault.hpp"
#include "vgpu/timeline.hpp"

namespace acsr::storage {

/// One piece of a chunk's data plane: deliver `bytes` from `src` to `dst`.
struct Segment {
  const unsigned char* src = nullptr;
  unsigned char* dst = nullptr;
  std::size_t bytes = 0;
};

/// Build a Segment over element ranges of typed host vectors. This is the
/// one audited place (scripts/lint.sh rule 2) where a host vector decays
/// to raw bytes: the storage data plane moves bytes, not elements, and
/// every caller goes through this helper so the decay stays centralized.
/// A zero count yields an empty Segment the caller should drop.
template <class U>
Segment make_segment(const std::vector<U>& src, std::size_t src_first,
                     std::vector<U>& dst, std::size_t count) {
  if (count == 0) return Segment{};
  ACSR_REQUIRE(src_first + count <= src.size() && count <= dst.size(),
               "storage segment out of range");
  return Segment{
      reinterpret_cast<const unsigned char*>(src.data() + src_first),
      reinterpret_cast<unsigned char*>(dst.data()),
      count * sizeof(U)};
}

/// FNV-1a over a byte range; chainable via `h` for multi-segment chunks.
inline std::uint64_t fnv1a(const unsigned char* p, std::size_t n,
                           std::uint64_t h = 14695981039346656037ULL) {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

struct TierConfig {
  int num_drives = 4;
  std::size_t stripe_bytes = 256 * 1024;
  std::size_t max_inflight = 8;  ///< bounded async request window
  int max_retries = 3;           ///< re-issues per chunk before escaping
  double backoff_s = 1e-3;       ///< base retry backoff, doubles per retry
  DriveSpec drive{};             ///< per-drive model (name gets an index)
};

class StorageTier {
 public:
  struct ReadRequest {
    std::string what;         ///< chunk name, for fault/log attribution
    std::size_t offset = 0;   ///< logical byte offset in the striped file
    std::vector<Segment> segments;
    /// Fired (from poll/drain/queue pressure) with the completion time.
    std::function<void(double complete_s)> on_complete;
  };

  StorageTier(vgpu::StreamTimeline& tl, TierConfig cfg)
      : tl_(tl), cfg_(cfg), mapper_(cfg.num_drives, cfg.stripe_bytes) {
    ACSR_REQUIRE(cfg_.max_inflight >= 1,
                 "storage tier needs an in-flight window >= 1");
    ACSR_REQUIRE(cfg_.max_retries >= 0, "max_retries must be >= 0");
    for (int d = 0; d < cfg_.num_drives; ++d)
      streams_.push_back(tl_.create_stream());
    // The caller's timeline is private (time 0 = "now"), so io spans need
    // the tracer's anchor to land at absolute trace time. Captured once:
    // the owning executor advances the anchor only after its run, so every
    // read this tier services shares the same base (docs/SLO.md).
    if (slo::slo_enabled()) [[unlikely]]
      slo_base_ = slo::Tracer::instance().anchor();
  }

  const TierConfig& config() const { return cfg_; }
  const StripeMapper& mapper() const { return mapper_; }

  /// Issue one chunk read. Drive service (and any fault penalty) is
  /// charged immediately on the drive streams; the request's data is
  /// delivered (and checksum-verified) before return, so the caller can
  /// depend on the bytes while the *time* of availability is the
  /// returned completion instant. Throws the typed IoError taxonomy when
  /// the retry budget is exhausted.
  double submit(ReadRequest r) {
    while (inflight_.size() >= cfg_.max_inflight) complete_front();
    const double done = service(r);
    inflight_.push_back({done, std::move(r.on_complete)});
    if (inflight_.size() > stats_.queue_peak)
      stats_.queue_peak = inflight_.size();
    return done;
  }

  /// Synchronous convenience: submit and immediately retire.
  double read_chunk(std::string what, std::size_t offset,
                    std::vector<Segment> segments) {
    ReadRequest r;
    r.what = std::move(what);
    r.offset = offset;
    r.segments = std::move(segments);
    const double done = submit(std::move(r));
    poll(done);
    return done;
  }

  /// Retire every in-flight request completing at or before `now_s`.
  void poll(double now_s) {
    while (!inflight_.empty() && inflight_.front().done_s <= now_s)
      complete_front();
  }

  /// Retire everything; returns the last completion time (0 when idle).
  double drain() {
    double t = 0.0;
    while (!inflight_.empty()) {
      t = inflight_.front().done_s;
      complete_front();
    }
    return t;
  }

  std::size_t inflight() const { return inflight_.size(); }
  const prof::IoAgg& stats() const { return stats_; }
  /// Mutable view: the streaming executor folds its stall/overlap terms
  /// into the same aggregate the tier fills.
  prof::IoAgg& stats() { return stats_; }

 private:
  struct Pending {
    double done_s = 0.0;
    std::function<void(double)> on_complete;
  };

  void complete_front() {
    Pending p = std::move(inflight_.front());
    inflight_.pop_front();
    if (p.on_complete) p.on_complete(p.done_s);
  }

  std::string drive_name(int index) const {
    return cfg_.drive.name + std::to_string(index);
  }

  static std::uint64_t checksum_src(const std::vector<Segment>& segs) {
    std::uint64_t h = 14695981039346656037ULL;
    for (const Segment& s : segs) h = fnv1a(s.src, s.bytes, h);
    return h;
  }

  static std::uint64_t checksum_dst(const std::vector<Segment>& segs) {
    std::uint64_t h = 14695981039346656037ULL;
    for (const Segment& s : segs) h = fnv1a(s.dst, s.bytes, h);
    return h;
  }

  /// Charge retry backoff on the request's first drive; returns the new
  /// completion floor.
  double charge_backoff(int drive, int attempt, const std::string& what) {
    const double b = cfg_.backoff_s * static_cast<double>(1LL << attempt);
    stats_.retries += 1;
    stats_.penalty_s += b;
    // Span mirror: the start is read off the stream cursor before the
    // enqueue, so the span interval is bit-identical to the log entry's
    // (charge parity is exact, not approximate).
    const double b_start = tl_.now(streams_[static_cast<std::size_t>(drive)]);
    const double done = tl_.enqueue(streams_[static_cast<std::size_t>(drive)],
                                    b, "backoff:" + what);
    if (slo::slo_enabled()) [[unlikely]]
      slo::Tracer::instance().add(slo::SpanKind::kRetryBackoff,
                                  "backoff:" + what, drive_name(drive),
                                  slo_base_ + b_start, slo_base_ + done);
    return done;
  }

  /// The retry loop: per attempt, consult the fault plane, charge drive
  /// service for the stripe-rounded extents, deliver, verify.
  double service(const ReadRequest& r) {
    std::size_t demand = 0;
    for (const Segment& s : r.segments) demand += s.bytes;
    ACSR_CHECK(demand > 0);
    stats_.demand_bytes += demand;
    const std::uint64_t want = checksum_src(r.segments);
    const std::vector<Extent> extents = mapper_.map(r.offset, demand);
    const int first_drive = extents.front().drive;

    for (int attempt = 0;; ++attempt) {
      vgpu::ReadFault f;
      if (vgpu::fault_injection_enabled()) [[unlikely]]
        f = vgpu::FaultInjector::instance().on_read(drive_name(first_drive),
                                                    r.what, demand);
      const bool last_try = attempt >= cfg_.max_retries;

      double done = 0.0;
      for (const Extent& e : extents) {
        const double s = cfg_.drive.service_seconds(e.bytes) * f.slow;
        const double e_start =
            tl_.now(streams_[static_cast<std::size_t>(e.drive)]);
        const double e_done =
            tl_.enqueue(streams_[static_cast<std::size_t>(e.drive)], s,
                        "read:" + r.what);
        done = std::max(done, e_done);
        if (slo::slo_enabled()) [[unlikely]]
          slo::Tracer::instance().add(slo::SpanKind::kIo, "read:" + r.what,
                                      drive_name(e.drive),
                                      slo_base_ + e_start,
                                      slo_base_ + e_done);
        stats_.read_s += s;
        stats_.read_bytes += e.bytes;
      }
      stats_.reads += 1;

      if (f.action == vgpu::ReadFault::Action::kTransient) {
        if (last_try)
          throw vgpu::IoTransientError(
              drive_name(first_drive), r.what,
              f.detail + " (retry budget exhausted)");
        charge_backoff(first_drive, attempt, r.what);
        continue;
      }
      if (f.action == vgpu::ReadFault::Action::kTimeout) {
        // The hang itself is simulated time on the serving drive.
        stats_.penalty_s += f.timeout_s;
        const double t_start =
            tl_.now(streams_[static_cast<std::size_t>(first_drive)]);
        const double t_done =
            tl_.enqueue(streams_[static_cast<std::size_t>(first_drive)],
                        f.timeout_s, "timeout:" + r.what);
        if (slo::slo_enabled()) [[unlikely]]
          slo::Tracer::instance().add(slo::SpanKind::kIo, "timeout:" + r.what,
                                      drive_name(first_drive),
                                      slo_base_ + t_start,
                                      slo_base_ + t_done);
        if (last_try)
          throw vgpu::IoTimeout(drive_name(first_drive), r.what,
                                f.detail + " (retry budget exhausted)");
        charge_backoff(first_drive, attempt, r.what);
        continue;
      }

      for (const Segment& s : r.segments) std::memcpy(s.dst, s.src, s.bytes);
      if (f.corrupt) [[unlikely]] {
        // Deterministic flip in the delivered bytes: the seed picks the
        // byte and bit across the chunk's segments.
        std::size_t pos = static_cast<std::size_t>(f.seed % demand);
        for (const Segment& s : r.segments) {
          if (pos < s.bytes) {
            s.dst[pos] ^= static_cast<unsigned char>(
                1u << ((f.seed >> 56) % 8));
            break;
          }
          pos -= s.bytes;
        }
      }
      if (checksum_dst(r.segments) != want) {
        stats_.checksum_failures += 1;
        if (last_try)
          throw vgpu::ChunkChecksumMismatch(
              drive_name(first_drive), r.what,
              "chunk '" + r.what + "' failed its arrival checksum " +
                  std::to_string(1 + attempt) +
                  " time(s); re-read budget exhausted");
        charge_backoff(first_drive, attempt, r.what);
        continue;
      }
      return done;
    }
  }

  vgpu::StreamTimeline& tl_;
  TierConfig cfg_;
  StripeMapper mapper_;
  std::vector<vgpu::StreamTimeline::StreamId> streams_;
  std::deque<Pending> inflight_;
  prof::IoAgg stats_;
  double slo_base_ = 0.0;  ///< tracer anchor mapping tl_ time 0 to trace time
};

}  // namespace acsr::storage
