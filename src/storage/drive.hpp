// Simulated drive model for the out-of-core storage tier (docs/OOC.md).
//
// A drive serves read requests with a three-term service time — access
// latency (seek), command-rate cost (IOPS), and a sequential-bandwidth
// term — the standard first-order SSD model (and the one SAFS-style
// engines calibrate against). Defaults approximate a SATA-era SSD: the
// point of the tier is the *ratio* to the PCIe model, not absolute
// numbers, and a 0.5 GB/s drive against a ~8 GB/s PCIe link is what makes
// prefetch overlap worth modelling.
#pragma once

#include <cstddef>
#include <string>

namespace acsr::storage {

struct DriveSpec {
  std::string name = "ssd";
  double bandwidth_gbs = 0.5;  ///< sustained sequential read bandwidth
  double iops = 100000.0;      ///< command rate for queued requests
  double seek_s = 50e-6;       ///< access latency per request

  /// Service time of one contiguous read of `bytes`.
  double service_seconds(std::size_t bytes) const {
    return seek_s + 1.0 / iops +
           static_cast<double>(bytes) / (bandwidth_gbs * 1e9);
  }
};

}  // namespace acsr::storage
