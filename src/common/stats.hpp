// Streaming statistics helpers used for matrix row-length analysis
// (Table I columns), benchmark summaries, and the Fig. 3 histogram.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/check.hpp"

namespace acsr {

/// Single-pass running mean / variance / extrema (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Population variance, matching how the paper reports sigma over all rows.
  double variance() const {
    return n_ ? m2_ / static_cast<double>(n_) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Log2-bucketed histogram: bucket i counts values v with
/// 2^{i-1} < v <= 2^i (bucket 0 counts v == 0 separately is excluded;
/// values of 0 land in bucket 0, v==1 in bucket 1). This is exactly the
/// ACSR binning rule, so the same histogram drives Fig. 3 and the binner.
class Log2Histogram {
 public:
  void add(std::uint64_t v) {
    const std::size_t b = bucket_of(v);
    if (buckets_.size() <= b) buckets_.resize(b + 1, 0);
    ++buckets_[b];
    ++total_;
  }

  /// Bucket index for a value under the ACSR rule: 0 for v==0, else
  /// ceil(log2(v)) + 1 shifted so that v in (2^{i-1}, 2^i] -> bucket i,
  /// with v==1 and v==2 both in bucket 1 (the paper's Bin_1 holds 1-2 nnz).
  static std::size_t bucket_of(std::uint64_t v) {
    if (v == 0) return 0;
    std::size_t b = 1;
    std::uint64_t hi = 2;  // bucket 1 covers (0, 2]
    while (v > hi) {
      ++b;
      hi <<= 1;
    }
    return b;
  }

  /// Inclusive upper bound of bucket b (2^b for b>=1, 0 for b==0).
  static std::uint64_t bucket_hi(std::size_t b) {
    return b == 0 ? 0 : (std::uint64_t{1} << b);
  }
  /// Exclusive lower bound of bucket b.
  static std::uint64_t bucket_lo(std::size_t b) {
    return b <= 1 ? 0 : (std::uint64_t{1} << (b - 1));
  }

  std::size_t num_buckets() const { return buckets_.size(); }
  std::uint64_t count(std::size_t b) const {
    return b < buckets_.size() ? buckets_[b] : 0;
  }
  std::uint64_t total() const { return total_; }
  double frequency(std::size_t b) const {
    return total_ ? static_cast<double>(count(b)) / static_cast<double>(total_)
                  : 0.0;
  }

 private:
  std::vector<std::uint64_t> buckets_;
  std::uint64_t total_ = 0;
};

/// Geometric mean accumulator for speedup summaries.
class GeoMean {
 public:
  void add(double x) {
    ACSR_CHECK(x > 0.0);
    log_sum_ += std::log(x);
    ++n_;
  }
  double value() const {
    return n_ ? std::exp(log_sum_ / static_cast<double>(n_)) : 0.0;
  }
  std::uint64_t count() const { return n_; }

 private:
  double log_sum_ = 0.0;
  std::uint64_t n_ = 0;
};

}  // namespace acsr
