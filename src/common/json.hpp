// Minimal JSON value tree: parser + serializer, no dependencies.
//
// Exists for the observability layer (docs/OBSERVABILITY.md): the trace
// schema test parses the profiler's Chrome-trace output back, the
// `acsr_prof --diff` regression mode reads committed metric baselines,
// and scripts fold metric profiles into BENCH_wallclock.json. Strictness
// over features: UTF-8 pass-through, no comments, no trailing commas —
// exactly RFC 8259 minus \u surrogate-pair decoding (escapes are kept
// verbatim as their source text).
#pragma once

#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "common/check.hpp"

namespace acsr::json {

class Value;
using Array = std::vector<Value>;
/// std::map keeps keys ordered: serialisation is deterministic, which the
/// committed-baseline diffs rely on.
using Object = std::map<std::string, Value>;

class Value {
 public:
  Value() : v_(nullptr) {}
  Value(std::nullptr_t) : v_(nullptr) {}                  // NOLINT
  Value(bool b) : v_(b) {}                                // NOLINT
  Value(double d) : v_(d) {}                              // NOLINT
  /// Any integral type (covers int, long long, uint64_t, size_t without
  /// caring which of them are distinct types on this platform).
  template <class I>
    requires(std::is_integral_v<I> && !std::is_same_v<I, bool>)
  Value(I i) : v_(static_cast<double>(i)) {}              // NOLINT
  Value(const char* s) : v_(std::string(s)) {}            // NOLINT
  Value(std::string s) : v_(std::move(s)) {}              // NOLINT
  Value(Array a) : v_(std::move(a)) {}                    // NOLINT
  Value(Object o) : v_(std::move(o)) {}                   // NOLINT

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_number() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_array() const { return std::holds_alternative<Array>(v_); }
  bool is_object() const { return std::holds_alternative<Object>(v_); }

  bool as_bool() const { return std::get<bool>(v_); }
  double as_number() const { return std::get<double>(v_); }
  const std::string& as_string() const { return std::get<std::string>(v_); }
  const Array& as_array() const { return std::get<Array>(v_); }
  Array& as_array() { return std::get<Array>(v_); }
  const Object& as_object() const { return std::get<Object>(v_); }
  Object& as_object() { return std::get<Object>(v_); }

  /// Object member lookup; nullptr when absent or not an object.
  const Value* find(const std::string& key) const {
    if (!is_object()) return nullptr;
    auto it = as_object().find(key);
    return it == as_object().end() ? nullptr : &it->second;
  }
  /// Member that must exist (ACSR_CHECK on absence).
  const Value& at(const std::string& key) const {
    const Value* v = find(key);
    ACSR_CHECK_MSG(v != nullptr, "json: missing key '" << key << "'");
    return *v;
  }

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> v_;
};

namespace detail {

class Parser {
 public:
  Parser(const std::string& text, std::string* err)
      : s_(text), err_(err) {}

  bool parse(Value* out) {
    skip_ws();
    if (!value(out)) return false;
    skip_ws();
    if (pos_ != s_.size()) return fail("trailing characters");
    return true;
  }

 private:
  bool fail(const std::string& what) {
    if (err_ != nullptr && err_->empty())
      *err_ = what + " at offset " + std::to_string(pos_);
    return false;
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r'))
      ++pos_;
  }

  bool literal(const char* lit) {
    const std::size_t n = std::string(lit).size();
    if (s_.compare(pos_, n, lit) != 0) return fail("bad literal");
    pos_ += n;
    return true;
  }

  bool string(std::string* out) {
    if (pos_ >= s_.size() || s_[pos_] != '"') return fail("expected string");
    ++pos_;
    std::string r;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        if (pos_ >= s_.size()) return fail("dangling escape");
        const char e = s_[pos_++];
        switch (e) {
          case '"': r += '"'; break;
          case '\\': r += '\\'; break;
          case '/': r += '/'; break;
          case 'b': r += '\b'; break;
          case 'f': r += '\f'; break;
          case 'n': r += '\n'; break;
          case 'r': r += '\r'; break;
          case 't': r += '\t'; break;
          case 'u':
            // Keep \uXXXX verbatim; nothing in this repo emits them.
            if (pos_ + 4 > s_.size()) return fail("bad \\u escape");
            r += "\\u";
            r.append(s_, pos_, 4);
            pos_ += 4;
            break;
          default:
            return fail("bad escape");
        }
      } else {
        r += c;
      }
    }
    if (pos_ >= s_.size()) return fail("unterminated string");
    ++pos_;  // closing quote
    *out = std::move(r);
    return true;
  }

  bool number(Value* out) {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) return fail("expected number");
    try {
      std::size_t used = 0;
      const double d = std::stod(s_.substr(start, pos_ - start), &used);
      if (used != pos_ - start) return fail("bad number");
      *out = Value(d);
    } catch (const std::exception&) {
      return fail("bad number");
    }
    return true;
  }

  bool value(Value* out) {
    skip_ws();
    if (pos_ >= s_.size()) return fail("unexpected end");
    const char c = s_[pos_];
    if (c == '{') return object(out);
    if (c == '[') return array(out);
    if (c == '"') {
      std::string str;
      if (!string(&str)) return false;
      *out = Value(std::move(str));
      return true;
    }
    if (c == 't') {
      if (!literal("true")) return false;
      *out = Value(true);
      return true;
    }
    if (c == 'f') {
      if (!literal("false")) return false;
      *out = Value(false);
      return true;
    }
    if (c == 'n') {
      if (!literal("null")) return false;
      *out = Value(nullptr);
      return true;
    }
    return number(out);
  }

  bool object(Value* out) {
    ++pos_;  // '{'
    Object obj;
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      *out = Value(std::move(obj));
      return true;
    }
    for (;;) {
      skip_ws();
      std::string key;
      if (!string(&key)) return false;
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != ':') return fail("expected ':'");
      ++pos_;
      Value v;
      if (!value(&v)) return false;
      obj.emplace(std::move(key), std::move(v));
      skip_ws();
      if (pos_ < s_.size() && s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < s_.size() && s_[pos_] == '}') {
        ++pos_;
        *out = Value(std::move(obj));
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool array(Value* out) {
    ++pos_;  // '['
    Array arr;
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      *out = Value(std::move(arr));
      return true;
    }
    for (;;) {
      Value v;
      if (!value(&v)) return false;
      arr.push_back(std::move(v));
      skip_ws();
      if (pos_ < s_.size() && s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < s_.size() && s_[pos_] == ']') {
        ++pos_;
        *out = Value(std::move(arr));
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  const std::string& s_;
  std::string* err_;
  std::size_t pos_ = 0;
};

inline void escape_into(const std::string& s, std::string& out) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

inline void number_into(double d, std::string& out) {
  if (!std::isfinite(d)) {  // JSON has no inf/nan; null is the convention
    out += "null";
    return;
  }
  if (d == std::floor(d) && std::fabs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", d);
    out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.12g", d);
  out += buf;
}

inline void dump_into(const Value& v, std::string& out, int indent,
                      int depth) {
  const std::string pad =
      indent > 0 ? std::string(static_cast<std::size_t>(indent * depth), ' ')
                 : std::string();
  const std::string pad1 =
      indent > 0
          ? std::string(static_cast<std::size_t>(indent * (depth + 1)), ' ')
          : std::string();
  const char* nl = indent > 0 ? "\n" : "";
  if (v.is_null()) {
    out += "null";
  } else if (v.is_bool()) {
    out += v.as_bool() ? "true" : "false";
  } else if (v.is_number()) {
    number_into(v.as_number(), out);
  } else if (v.is_string()) {
    escape_into(v.as_string(), out);
  } else if (v.is_array()) {
    const Array& a = v.as_array();
    if (a.empty()) {
      out += "[]";
      return;
    }
    out += '[';
    out += nl;
    for (std::size_t i = 0; i < a.size(); ++i) {
      out += pad1;
      dump_into(a[i], out, indent, depth + 1);
      if (i + 1 < a.size()) out += ',';
      out += nl;
    }
    out += pad;
    out += ']';
  } else {
    const Object& o = v.as_object();
    if (o.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    out += nl;
    std::size_t i = 0;
    for (const auto& [k, val] : o) {
      out += pad1;
      escape_into(k, out);
      out += indent > 0 ? ": " : ":";
      dump_into(val, out, indent, depth + 1);
      if (++i < o.size()) out += ',';
      out += nl;
    }
    out += pad;
    out += '}';
  }
}

}  // namespace detail

/// Parse `text`; returns false and sets *err (when non-null) on malformed
/// input.
inline bool parse(const std::string& text, Value* out, std::string* err) {
  if (err != nullptr) err->clear();
  detail::Parser p(text, err);
  return p.parse(out);
}

/// Serialise. indent = 0 gives the compact single-line form.
inline std::string dump(const Value& v, int indent = 0) {
  std::string out;
  detail::dump_into(v, out, indent, 0);
  return out;
}

}  // namespace acsr::json
