// Error-handling primitives shared by every module.
//
// Two tiers, following the Core Guidelines split between preconditions
// (programming errors) and recoverable runtime failures:
//   ACSR_CHECK   - precondition / invariant; violation is a bug. Throws
//                  acsr::InvariantError carrying file:line and the
//                  stringified condition.
//   ACSR_REQUIRE - validation of external input (files, CLI, sizes);
//                  throws acsr::InputError with a caller-supplied message.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace acsr {

/// Raised when an internal invariant is violated (a bug in this library).
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Raised when external input (file contents, user parameters) is invalid.
class InputError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {

[[noreturn]] inline void throw_invariant(const char* cond, const char* file,
                                         int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": invariant violated: " << cond;
  if (!msg.empty()) os << " — " << msg;
  throw InvariantError(os.str());
}

[[noreturn]] inline void throw_input(const char* file, int line,
                                     const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": invalid input: " << msg;
  throw InputError(os.str());
}

}  // namespace detail
}  // namespace acsr

#define ACSR_CHECK(cond)                                                  \
  do {                                                                    \
    if (!(cond))                                                          \
      ::acsr::detail::throw_invariant(#cond, __FILE__, __LINE__, "");     \
  } while (0)

#define ACSR_CHECK_MSG(cond, msg)                                         \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::ostringstream os_;                                             \
      os_ << msg;                                                         \
      ::acsr::detail::throw_invariant(#cond, __FILE__, __LINE__,          \
                                      os_.str());                         \
    }                                                                     \
  } while (0)

#define ACSR_REQUIRE(cond, msg)                                           \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::ostringstream os_;                                             \
      os_ << msg;                                                         \
      ::acsr::detail::throw_input(__FILE__, __LINE__, os_.str());         \
    }                                                                     \
  } while (0)
