// Tiny --flag=value parser shared by bench and example binaries.
// Not a general argv library: just enough to select devices, matrices,
// precisions and scales reproducibly from the command line.
#pragma once

#include <cstdlib>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/check.hpp"

namespace acsr {

class Cli {
 public:
  Cli(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      ACSR_REQUIRE(arg.rfind("--", 0) == 0,
                   "unexpected positional argument '" << arg
                                                      << "' (use --k=v)");
      arg.erase(0, 2);
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        flags_[arg] = "true";
      } else {
        flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
      }
    }
  }

  std::optional<std::string> get(const std::string& key) const {
    const auto it = flags_.find(key);
    if (it == flags_.end()) return std::nullopt;
    return it->second;
  }

  std::string get_or(const std::string& key, const std::string& dflt) const {
    return get(key).value_or(dflt);
  }

  long long get_int(const std::string& key, long long dflt) const {
    const auto v = get(key);
    if (!v) return dflt;
    return std::stoll(*v);
  }

  double get_double(const std::string& key, double dflt) const {
    const auto v = get(key);
    if (!v) return dflt;
    return std::stod(*v);
  }

  bool get_bool(const std::string& key, bool dflt = false) const {
    const auto v = get(key);
    if (!v) return dflt;
    return *v == "true" || *v == "1" || *v == "yes";
  }

  bool has(const std::string& key) const { return flags_.count(key) > 0; }

 private:
  std::map<std::string, std::string> flags_;
};

/// Environment-variable override with default, used for ACSR_SCALE.
inline long long env_int(const char* name, long long dflt) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return dflt;
  return std::atoll(v);
}

}  // namespace acsr
