// Deterministic, seedable PRNG used throughout the corpus generators and
// property tests. We carry our own xoshiro256** instead of std::mt19937 so
// that streams are cheap to split (per-row, per-epoch) and results are
// identical across standard libraries.
#pragma once

#include <cstdint>

namespace acsr {

/// SplitMix64 — used to expand a single seed into xoshiro state and to
/// derive independent sub-streams.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** by Blackman & Vigna; public-domain reference algorithm.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  /// Derive an independent stream (e.g. one per row or epoch).
  Rng split(std::uint64_t salt) const {
    return Rng(s_[0] ^ (salt * 0xd1342543de82ef95ULL) ^ s_[3]);
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, n). Unbiased enough for workload generation (n << 2^64).
  std::uint64_t next_below(std::uint64_t n) {
    return n == 0 ? 0 : next_u64() % n;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  bool next_bool(double p_true = 0.5) { return next_double() < p_true; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace acsr
