// Minimal fixed-width table printer used by every bench binary so that the
// regenerated tables visually match the paper layout.
#pragma once

#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.hpp"

namespace acsr {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  Table& add_row(std::vector<std::string> cells) {
    ACSR_CHECK_MSG(cells.size() == headers_.size(),
                   "row width " << cells.size() << " != header width "
                                << headers_.size());
    rows_.push_back(std::move(cells));
    return *this;
  }

  /// Format a double with the given precision; "-" for NaN, "inf"/"OOM"
  /// sentinels are passed through by callers as strings.
  static std::string num(double v, int precision = 2) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
  }

  static std::string integer(long long v) { return std::to_string(v); }

  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
      width[c] = headers_[c].size();
    for (const auto& row : rows_)
      for (std::size_t c = 0; c < row.size(); ++c)
        width[c] = std::max(width[c], row[c].size());

    auto rule = [&] {
      os << '+';
      for (auto w : width) os << std::string(w + 2, '-') << '+';
      os << '\n';
    };
    auto line = [&](const std::vector<std::string>& cells) {
      os << '|';
      for (std::size_t c = 0; c < cells.size(); ++c)
        os << ' ' << std::setw(static_cast<int>(width[c])) << cells[c]
           << " |";
      os << '\n';
    };

    os << std::left;
    rule();
    line(headers_);
    rule();
    os << std::right;
    for (const auto& row : rows_) line(row);
    rule();
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace acsr
