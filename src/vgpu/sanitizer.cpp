#include "vgpu/sanitizer.hpp"

#include <cstdlib>
#include <sstream>

namespace acsr::vgpu {

namespace {

bool env_flag(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

// Keep pathological kernels from flooding memory with findings; the first
// few hundred are plenty to diagnose any defect.
constexpr std::size_t kMaxReports = 1024;
constexpr std::size_t kMaxWritersPerAddr = 8;

// Block::shared() hands out spans above this sentinel; they are not part
// of the global device address space and are never shadow-tracked.
constexpr std::uint64_t kSharedSentinelBase = 0xffff000000000000ULL;

}  // namespace

const char* to_string(SanKind k) {
  switch (k) {
    case SanKind::kOutOfBounds: return "out-of-bounds";
    case SanKind::kUninitRead: return "uninitialized-read";
    case SanKind::kUseAfterFree: return "use-after-free";
    case SanKind::kDoubleFree: return "double-free";
    case SanKind::kBadFree: return "invalid-free";
    case SanKind::kWriteRace: return "write-race";
    case SanKind::kBadSubspan: return "bad-subspan";
  }
  return "unknown";
}

Sanitizer::Sanitizer() {
  enabled_ = env_flag("ACSR_SANITIZE");
  halt_ = env_flag("ACSR_SANITIZE_HALT");
}

Sanitizer& Sanitizer::instance() {
  static Sanitizer s;
  return s;
}

Sanitizer::Buffer* Sanitizer::find(std::uint64_t addr) {
  auto it = buffers_.upper_bound(addr);
  if (it == buffers_.begin()) return nullptr;
  --it;
  Buffer& b = it->second;
  if (addr < b.base || addr >= b.base + b.bytes) return nullptr;
  return &b;
}

const Sanitizer::Buffer* Sanitizer::find(std::uint64_t addr) const {
  return const_cast<Sanitizer*>(this)->find(addr);
}

void Sanitizer::report(SanKind kind, const Buffer* b, std::uint64_t addr,
                       long long block, int warp, int lane,
                       const std::string& detail, bool always_throw) {
  SanReport r;
  r.kind = kind;
  r.buffer = b != nullptr ? b->name : "?";
  r.addr = addr;
  r.kernel = kernel_;
  r.grid = grid_;
  r.block = block;
  r.warp = warp;
  r.lane = lane;

  std::ostringstream os;
  os << "sanitizer: " << to_string(kind) << ": " << detail;
  if (b != nullptr)
    os << " [buffer '" << b->name << "' + " << (addr - b->base) << " of "
       << b->bytes << " B]";
  if (!kernel_.empty()) {
    os << " in kernel '" << kernel_ << "' grid " << grid_;
    if (block >= 0) os << " block " << block << " warp " << warp;
    if (lane >= 0) os << " lane " << lane;
  }
  r.message = os.str();

  if (reports_.size() < kMaxReports) reports_.push_back(r);
  if (halt_ || always_throw) throw SanitizerError(r.message);
}

void Sanitizer::on_alloc(std::uint64_t addr, std::size_t bytes,
                         const std::string& name) {
  if (bytes == 0) return;
  Buffer b;
  b.name = name;
  b.base = addr;
  b.bytes = bytes;
  if (enabled_) b.init.assign(bytes, false);
  buffers_[addr] = std::move(b);
}

bool Sanitizer::on_free(std::uint64_t addr, std::size_t bytes,
                        const std::string& name) {
  if (bytes == 0) return true;
  auto it = buffers_.find(addr);
  if (it == buffers_.end()) {
    if (enabled_) {
      std::ostringstream os;
      os << "free of unallocated address 0x" << std::hex << addr << std::dec
         << " ('" << name << "', " << bytes << " B)";
      report(SanKind::kBadFree, nullptr, addr, -1, -1, -1, os.str());
    }
    return false;
  }
  Buffer& b = it->second;
  if (b.freed) {
    if (enabled_) {
      std::ostringstream os;
      os << "second free of '" << b.name << "' (" << bytes << " B)";
      report(SanKind::kDoubleFree, &b, addr, -1, -1, -1, os.str());
    }
    return false;
  }
  if (enabled_) {
    // Keep a tombstone so stale-span accesses name the buffer.
    b.freed = true;
    b.init.clear();
    b.init.shrink_to_fit();
  } else {
    buffers_.erase(it);
  }
  return true;
}

void Sanitizer::mark_initialized(std::uint64_t addr, std::size_t bytes) {
  if (!enabled_ || bytes == 0) return;
  Buffer* b = find(addr);
  // Buffers allocated before instrumentation started have no shadow and
  // count as fully defined.
  if (b == nullptr || b->freed || b->init.size() != b->bytes) return;
  const std::size_t off = static_cast<std::size_t>(addr - b->base);
  const std::size_t end = std::min(off + bytes, b->bytes);
  for (std::size_t i = off; i < end; ++i) b->init[i] = true;
}

std::string Sanitizer::buffer_name(std::uint64_t addr) const {
  const Buffer* b = find(addr);
  return b != nullptr ? b->name : "?";
}

void Sanitizer::begin_launch(const std::string& name) {
  writes_.clear();
  kernel_ = name;
  grid_ = 0;
  launch_report_base_ = reports_.size();
}

void Sanitizer::begin_grid(int grid_index, const std::string& name) {
  grid_ = grid_index;
  kernel_ = name;
}

std::size_t Sanitizer::end_launch() {
  writes_.clear();
  kernel_.clear();
  grid_ = -1;
  const std::size_t n = reports_.size() - launch_report_base_;
  launch_report_base_ = reports_.size();
  return n;
}

void Sanitizer::check_unmapped(std::uint64_t addr, std::size_t bytes,
                               long long block, int warp, int lane,
                               const char* what) {
  // Every arena allocation is registered, so an address below the
  // shared-memory sentinel that no live or freed allocation contains is a
  // wild access — typically a span whose size or base was miscomputed.
  std::ostringstream os;
  os << what << " of " << bytes << " B at unallocated device address 0x"
     << std::hex << addr << std::dec;
  auto it = buffers_.upper_bound(addr);
  if (it != buffers_.begin()) {
    --it;
    const Buffer& prev = it->second;
    os << " (" << (addr - (prev.base + prev.bytes)) << " B past the end of '"
       << prev.name << "')";
  }
  report(SanKind::kOutOfBounds, nullptr, addr, block, warp, lane, os.str(),
         /*always_throw=*/true);
}

void Sanitizer::note_read(std::uint64_t addr, std::size_t bytes,
                          long long block, int warp, int lane) {
  if (!enabled_) return;
  if (addr >= kSharedSentinelBase) return;  // block-shared memory
  Buffer* b = find(addr);
  if (b == nullptr) {
    check_unmapped(addr, bytes, block, warp, lane, "read");
    return;
  }
  if (addr + bytes > b->base + b->bytes) {
    std::ostringstream os;
    os << "read of " << bytes << " B overruns allocation";
    report(SanKind::kOutOfBounds, b, addr, block, warp, lane, os.str(),
           /*always_throw=*/true);
    return;
  }
  if (b->freed) {
    std::ostringstream os;
    os << "read of " << bytes << " B from freed allocation";
    report(SanKind::kUseAfterFree, b, addr, block, warp, lane, os.str());
    return;
  }
  const std::size_t off = static_cast<std::size_t>(addr - b->base);
  if (b->init.size() != b->bytes) return;  // pre-instrumentation buffer
  for (std::size_t i = 0; i < bytes; ++i) {
    if (!b->init[off + i]) {
      std::ostringstream os;
      os << "read of " << bytes << " B of uninitialized memory";
      report(SanKind::kUninitRead, b, addr, block, warp, lane, os.str());
      // Define the bytes so one defect is reported once, not per access.
      for (std::size_t j = 0; j < bytes; ++j) b->init[off + j] = true;
      return;
    }
  }
}

void Sanitizer::note_write(std::uint64_t addr, std::size_t bytes,
                           long long block, int warp, int lane, bool atomic) {
  if (!enabled_) return;
  if (addr >= kSharedSentinelBase) return;  // block-shared memory
  Buffer* b = find(addr);
  if (b == nullptr) {
    check_unmapped(addr, bytes, block, warp, lane, "write");
    return;
  }
  if (addr + bytes > b->base + b->bytes) {
    std::ostringstream os;
    os << "write of " << bytes << " B overruns allocation";
    report(SanKind::kOutOfBounds, b, addr, block, warp, lane, os.str(),
           /*always_throw=*/true);
    return;
  }
  if (b->freed) {
    std::ostringstream os;
    os << "write of " << bytes << " B to freed allocation";
    report(SanKind::kUseAfterFree, b, addr, block, warp, lane, os.str());
    return;
  }
  const std::size_t off = static_cast<std::size_t>(addr - b->base);
  if (b->init.size() == b->bytes)
    for (std::size_t i = 0; i < bytes; ++i) b->init[off + i] = true;

  // Racecheck: compare against the launch's previous writers of this
  // address. Ordered pairs that are never hazards:
  //   * the same thread writing twice (program order);
  //   * two atomics (the hardware serialises them);
  //   * a parent-grid (grid 0) write vs any child-grid access — CUDA
  //     guarantees a child grid sees its parent's prior writes, which is
  //     the ordering ACSR's Algorithm 3 relies on (clear y[row], then
  //     launch the row child that atomically accumulates into it).
  // Writes from two *different* child grids are concurrent and do race.
  Writer me{grid_, block, warp, lane, atomic};
  auto& ws = writes_[addr];
  bool known = false;
  for (const Writer& w : ws) {
    if (w.same_thread(me)) {
      known = known || w.atomic == atomic;
      continue;
    }
    if (w.atomic && atomic) continue;
    if (w.grid != me.grid && (w.grid == 0 || me.grid == 0)) continue;
    std::ostringstream os;
    os << (atomic ? "atomic " : "plain ") << bytes
       << " B write conflicts with prior " << (w.atomic ? "atomic" : "plain")
       << " write by grid " << w.grid << " block " << w.block << " warp "
       << w.warp << " lane " << w.lane;
    report(SanKind::kWriteRace, b, addr, block, warp, lane, os.str());
    return;  // one finding per access is enough
  }
  if (!known && ws.size() < kMaxWritersPerAddr) ws.push_back(me);
}

void Sanitizer::check_subspan(std::uint64_t addr, std::size_t bytes) {
  if (!enabled_ || bytes == 0) return;
  Buffer* b = find(addr);
  if (b == nullptr) return;
  if (b->freed) {
    std::ostringstream os;
    os << "subspan of " << bytes << " B into freed allocation";
    report(SanKind::kUseAfterFree, b, addr, -1, -1, -1, os.str());
    return;
  }
  if (addr + bytes > b->base + b->bytes) {
    std::ostringstream os;
    os << "subspan of " << bytes << " B escapes allocation";
    report(SanKind::kBadSubspan, b, addr, -1, -1, -1, os.str(),
           /*always_throw=*/true);
  }
}

std::size_t Sanitizer::count(SanKind k) const {
  std::size_t n = 0;
  for (const auto& r : reports_)
    if (r.kind == k) ++n;
  return n;
}

void Sanitizer::clear() {
  reports_.clear();
  writes_.clear();
  launch_report_base_ = 0;
  for (auto it = buffers_.begin(); it != buffers_.end();) {
    if (it->second.freed)
      it = buffers_.erase(it);
    else
      ++it;  // live buffers keep their (possibly initialized) shadow
  }
}

}  // namespace acsr::vgpu
