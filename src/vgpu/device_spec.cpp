#include "vgpu/device_spec.hpp"

#include "common/check.hpp"

namespace acsr::vgpu {

DeviceSpec DeviceSpec::gtx580() {
  DeviceSpec s;
  s.name = "GTX580";
  s.compute_major = 2;
  s.compute_minor = 0;
  s.sm_count = 16;
  s.cores_per_sm = 32;
  s.clock_ghz = 1.544;
  s.dram_bandwidth_gbs = 192.4;
  s.global_mem_bytes = std::size_t{3} * 1024 * 1024 * 1024;
  s.max_resident_warps_per_sm = 48;
  s.issue_slots_per_sm = 2.0;
  s.l2_bytes = std::size_t{768} * 1024;
  s.sp_flops_per_cycle_per_sm = 32.0 * 2.0;  // FMA counts two flops
  s.dp_throughput_ratio = 1.0 / 8.0;         // GeForce Fermi derate
  s.tex_cache_bytes_per_sm = 12 * 1024;
  s.host_launch_overhead_s = 7.0e-6;  // Fermi launches are slower
  s.dram_efficiency = 0.70;
  return s;
}

DeviceSpec DeviceSpec::tesla_k10() {
  DeviceSpec s;
  s.name = "TeslaK10";
  s.compute_major = 3;
  s.compute_minor = 0;
  s.sm_count = 8;
  s.cores_per_sm = 192;
  s.clock_ghz = 0.745;
  s.dram_bandwidth_gbs = 160.0;
  s.global_mem_bytes = std::size_t{4} * 1024 * 1024 * 1024;
  s.issue_slots_per_sm = 4.0;
  s.l2_bytes = std::size_t{512} * 1024;
  s.sp_flops_per_cycle_per_sm = 192.0 * 2.0;
  s.dp_throughput_ratio = 1.0 / 24.0;  // GK104 double precision
  s.tex_cache_bytes_per_sm = 48 * 1024;
  s.dram_efficiency = 0.72;
  return s;
}

DeviceSpec DeviceSpec::gtx_titan() {
  DeviceSpec s;
  s.name = "GTXTitan";
  s.compute_major = 3;
  s.compute_minor = 5;
  s.sm_count = 14;
  s.cores_per_sm = 192;
  s.clock_ghz = 0.837;
  s.dram_bandwidth_gbs = 288.4;
  s.global_mem_bytes = std::size_t{6} * 1024 * 1024 * 1024;
  s.issue_slots_per_sm = 4.0;
  s.sp_flops_per_cycle_per_sm = 192.0 * 2.0;
  s.dp_throughput_ratio = 1.0 / 3.0;  // GK110 with full-rate DP enabled
  s.tex_cache_bytes_per_sm = 48 * 1024;
  s.dram_efficiency = 0.75;
  return s;
}

DeviceSpec DeviceSpec::scaled_for_corpus(long long scale) const {
  ACSR_CHECK(scale >= 1);
  DeviceSpec s = *this;
  const double f = static_cast<double>(scale);
  s.host_launch_overhead_s /= f;
  s.child_launch_overhead_s /= f;
  s.over_limit_penalty_s /= f;
  s.async_launch_gap_s /= f;
  s.transfer_setup_s /= f;
  s.multi_gpu_sync_s /= f;
  s.global_mem_bytes = static_cast<std::size_t>(
      static_cast<double>(s.global_mem_bytes) / f);
  s.tex_cache_bytes_per_sm = std::max<std::size_t>(
      1024, static_cast<std::size_t>(
                static_cast<double>(s.tex_cache_bytes_per_sm) / f));
  return s;
}

DeviceSpec DeviceSpec::by_name(const std::string& name) {
  if (name == "gtx580" || name == "GTX580") return gtx580();
  if (name == "k10" || name == "TeslaK10" || name == "tesla_k10")
    return tesla_k10();
  if (name == "titan" || name == "GTXTitan" || name == "gtx_titan")
    return gtx_titan();
  ACSR_REQUIRE(false, "unknown device '" << name
                                         << "' (use gtx580|k10|titan)");
}

}  // namespace acsr::vgpu
