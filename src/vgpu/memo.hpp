// Launch-metering memoization (ACSR_MEMO=1).
//
// Iterative solvers re-launch structurally identical kernels every
// iteration: the grid, the matrix operand and therefore every Counters
// field, roofline term and timeline charge are the same — only the vector
// *values* differ. The memo layer caches the per-launch KernelRun sequence
// of the first execution (capture) and replays it on later, key-identical
// executions, re-running the kernels in a value-only mode (KernelEnv::
// value_only) that computes y but skips all cache probes and accounting.
//
// The cache key is composed of
//   - the device-spec fingerprint (every model-relevant parameter),
//   - the owner's identity (engine/launcher name, matrix dims + nnz,
//     element width, tuning configuration),
//   - a per-instance tag, so entries die with the engine that captured
//     them (a rebuilt engine — e.g. after fault recovery — never replays
//     a predecessor's metering), and
//   - the matrix structure version (bumped by incremental_csr updates).
// Replay additionally validates each launch against the captured record
// (kernel name, grid_dim, block_dim) and that the launch count matches.
//
// Memoization is a pure-performance plane: it must neither capture nor
// replay while any other instrumentation plane owns the run — sanitizer,
// reference metering, profiler, fault injection — because those planes
// observe (or perturb) per-launch state that a replay would skip.
// tests/test_metering_invariance.cpp pins the memoized mode bit-identical
// to all four other modes.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "vgpu/device_spec.hpp"
#include "vgpu/kernel.hpp"
#include "vgpu/warp.hpp"

namespace acsr::vgpu {

class Device;

namespace memo {

// --- zero-cost switch (same cached-bool shape as sanitize/prof) -----------
namespace detail {
inline bool memo_from_env() {
  const char* v = std::getenv("ACSR_MEMO");
  return v != nullptr && v[0] == '1';
}
inline bool g_memo_enabled = memo_from_env();
}  // namespace detail

inline bool memo_enabled() { return detail::g_memo_enabled; }
inline void set_memo_enabled(bool on) { detail::g_memo_enabled = on; }

/// True while another instrumentation plane owns kernel execution
/// (sanitizer, reference metering, profiler, fault injection). The memo
/// layer neither captures nor replays under any of them.
bool plane_bypassed();

/// Every model-relevant DeviceSpec parameter folded into a string, so two
/// devices agree on a key only if their metering would be bit-identical.
std::string spec_fingerprint(const DeviceSpec& spec);

/// Fresh process-unique id for per-instance key tags.
std::uint64_t next_instance_id();

/// One captured Device::launch (dynamic-parallelism children are part of
/// the parent's logical launch, exactly as Device::launch executes them).
struct LaunchRecord {
  std::string name;
  long long grid_dim = 0;
  int block_dim = 0;
  KernelRun run;
};

/// The launch sequence of one memoized execution (e.g. one SpMV).
struct MemoEntry {
  std::vector<LaunchRecord> launches;
};

struct MemoStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t invalidations = 0;  // entries erased by owner teardown
  std::uint64_t bypasses = 0;       // executions another plane owned
};

/// Process-wide key -> launch-sequence store.
class MemoCache {
 public:
  static MemoCache& instance();

  /// nullptr on miss. Counts a hit or a miss.
  MemoEntry* find(const std::string& key);
  /// Insert-or-overwrite; returns the stored entry.
  MemoEntry& put(const std::string& key, MemoEntry entry);
  /// Drop every entry whose key starts with `prefix` (owner teardown /
  /// structural invalidation); each dropped entry counts as one
  /// invalidation.
  void erase_prefix(const std::string& prefix);
  void clear();

  std::size_t size() const { return map_.size(); }
  const MemoStats& stats() const { return stats_; }
  void note_bypass() { ++stats_.bypasses; }
  void reset_stats() { stats_ = {}; }

 private:
  std::unordered_map<std::string, MemoEntry> map_;
  MemoStats stats_;
};

/// Capture-or-replay state installed on a Device for the duration of one
/// memoized execution. kCapture appends a LaunchRecord per Device::launch;
/// kReplay pops the next record, validates it against the launch config,
/// re-runs the kernel value-only and returns the cached KernelRun.
struct Session {
  enum class Kind { kCapture, kReplay };
  Session(Kind k, MemoEntry* e) : kind(k), entry(e) {}
  Kind kind;
  MemoEntry* entry;
  std::size_t cursor = 0;  // replay: next record to consume
};

/// RAII installation of a Session on a Device (restores the previous
/// session on scope exit, even when the body throws).
class SessionScope {
 public:
  SessionScope(Device& dev, Session& s);
  ~SessionScope();
  SessionScope(const SessionScope&) = delete;
  SessionScope& operator=(const SessionScope&) = delete;

 private:
  Device& dev_;
  Session* prev_;
};

/// Owner-side convenience: keys every run under a per-instance tag and
/// erases the instance's entries on destruction. `run(dev, subkey, fn)`
/// replays fn's launch sequence when (tag|subkey) is cached, captures it
/// otherwise; callers fold everything metering depends on — structure
/// version, launch geometry — into `subkey`.
class Memoizer {
 public:
  explicit Memoizer(const std::string& tag)
      : tag_(tag + "#" + std::to_string(next_instance_id()) + "|") {}
  ~Memoizer() { MemoCache::instance().erase_prefix(tag_); }
  Memoizer(const Memoizer&) = delete;
  Memoizer& operator=(const Memoizer&) = delete;

  const std::string& tag() const { return tag_; }

  template <class Fn>
  double run(Device& dev, const std::string& subkey, Fn&& fn) {
    if (!memo_enabled()) return fn();
    if (plane_bypassed() || session_active(dev)) {
      MemoCache::instance().note_bypass();
      return fn();
    }
    const std::string key = tag_ + subkey;
    MemoCache& cache = MemoCache::instance();
    if (MemoEntry* e = cache.find(key)) {
      Session s(Session::Kind::kReplay, e);
      SessionScope scope(dev, s);
      const double t = fn();
      ACSR_CHECK_MSG(s.cursor == e->launches.size(),
                     "memo replay consumed " << s.cursor << " of "
                                             << e->launches.size()
                                             << " launches for " << key);
      return t;
    }
    MemoEntry staged;
    Session s(Session::Kind::kCapture, &staged);
    double t;
    {
      SessionScope scope(dev, s);
      t = fn();  // a throw discards `staged` (scope pops the session)
    }
    cache.put(key, std::move(staged));
    return t;
  }

 private:
  static bool session_active(const Device& dev);

  std::string tag_;
};

}  // namespace memo
}  // namespace acsr::vgpu
