// Warp and Block execution contexts.
//
// A kernel is a callable `void(Block&)` invoked once per thread block.
// Inside, `block.each_warp(fn)` runs `fn` once per warp; code between two
// each_warp phases executes after all warps of the phase have completed,
// which gives __syncthreads semantics for free under sequential execution.
//
// Warp provides the CUDA-like primitives the paper's kernels need —
// coalesced-model global loads/stores, a texture read path for x,
// __shfl_down, atomics, and device-side (dynamic-parallelism) launches —
// and self-reports every event into the kernel's Counters.
//
// Executor fast path (docs/PERF.md): gathers whose index vector is affine
// across the active lane prefix (iota thread ids, the CSR row-extent walk,
// ELL slots) are serviced analytically — one range bounds check, a
// memcpy-style lane fill, and one sector-cache probe per *distinct* 32 B
// sector instead of 32 per-lane probes. The fast path is metering-
// invariant: every Counters field and cache end-state is bit-identical to
// the reference per-lane loop (tests/test_metering_invariance.cpp pins
// this). It is disabled under the sanitizer (which needs per-access hooks)
// and under reference metering (ACSR_REFERENCE_METERING=1 or
// set_reference_metering), which forces the original loop everywhere.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <type_traits>
#include <unordered_set>
#include <vector>

#include "common/check.hpp"
#include "prof/lane_counters.hpp"
#include "vgpu/counters.hpp"
#include "vgpu/device_spec.hpp"
#include "vgpu/lane_array.hpp"
#include "vgpu/memory.hpp"

namespace acsr::vgpu {

class Block;

struct LaunchConfig {
  long long grid_dim = 1;
  int block_dim = 32;
  std::string name = "kernel";
};

using KernelFn = std::function<void(Block&)>;

/// Non-owning callable reference taken by Device::launch: the overwhelming
/// majority of launches pass a stack lambda that outlives the (fully
/// synchronous) launch, so no std::function needs to be materialised.
/// Owning KernelFn storage is only kept where it is genuinely needed — the
/// dynamic-parallelism child work list.
class KernelRef {
 public:
  template <class F>
  KernelRef(F&& f)  // NOLINT(google-explicit-constructor)
      : obj_(const_cast<void*>(static_cast<const void*>(&f))),
        call_([](void* o, Block& b) {
          (*static_cast<std::remove_reference_t<F>*>(o))(b);
        }) {}

  void operator()(Block& b) const { call_(obj_, b); }

 private:
  void* obj_;
  void (*call_)(void*, Block&);
};

struct ChildLaunch {
  LaunchConfig cfg;
  KernelFn fn;
};

// --- reference-metering switch ---------------------------------------------
// When on, every Warp memory primitive takes the original per-lane
// bookkeeping loop instead of the analytic fast path. The two must be
// bit-identical in every counter; the invariance test runs both and
// asserts it. Env: ACSR_REFERENCE_METERING=1.
namespace detail {
inline bool reference_metering_from_env() {
  const char* v = std::getenv("ACSR_REFERENCE_METERING");
  return v != nullptr && v[0] == '1';
}
inline bool g_reference_metering = reference_metering_from_env();
}  // namespace detail

inline bool reference_metering() { return detail::g_reference_metering; }
inline void set_reference_metering(bool on) {
  detail::g_reference_metering = on;
}

/// Backing storage for one direct-mapped sector tag array, owned by the
/// KernelEnv and shared by every warp of the launch. Tags are
/// epoch-stamped: a slot is live only while its stamp matches the current
/// warp's epoch, so giving each warp a fresh empty cache is one counter
/// bump instead of a 256-entry wipe per warp.
struct SectorCacheState {
  static constexpr std::size_t kMaxWays = 256;
  // Tag and stamp interleaved so a probe touches one cache line, not two
  // arrays 2 KiB apart (the probe is the single hottest load in the
  // executor — see docs/PERF.md).
  struct Slot {
    std::uint64_t tag;  // gated by stamp; no init needed
    std::uint64_t stamp;
  };
  Slot slots[kMaxWays] = {};
  std::uint64_t epoch = 0;  // first warp bumps to 1 > all stamps
};

/// Per-launch bump allocator backing Block::shared. Chunks are stable in
/// memory (a chunk is never reallocated), so spans handed out earlier in a
/// block stay valid; reset() at block start recycles the whole pool
/// without returning memory — one allocation steady-state per launch
/// instead of one per shared() call.
class SharedMemArena {
 public:
  void reset() {
    chunk_ = 0;
    used_ = 0;
  }

  double* take(std::size_t n_doubles) {
    for (;;) {
      if (chunk_ == chunks_.size())
        chunks_.emplace_back(std::max(n_doubles, kMinChunkDoubles));
      auto& c = chunks_[chunk_];
      if (c.size() - used_ >= n_doubles) {
        double* p = c.data() + used_;
        used_ += n_doubles;
        return p;
      }
      ++chunk_;
      used_ = 0;
    }
  }

 private:
  static constexpr std::size_t kMinChunkDoubles = 6144;  // 48 KiB, one SMX
  std::vector<std::vector<double>> chunks_;
  std::size_t chunk_ = 0;
  std::size_t used_ = 0;
};

/// Shared mutable state for one kernel execution (parent + children).
struct KernelEnv {
  const DeviceSpec* spec = nullptr;
  Counters counters;
  std::vector<double> sm_issue_cycles;       // indexed by SM
  double max_warp_latency_cycles = 0.0;
  std::uint64_t tex_footprint_bytes = 0;     // largest texture-bound span
  std::vector<ChildLaunch> pending_children;
  long long next_block_seq = 0;              // global round-robin SM cursor
  // Occupancy-dependent per-warp cache shares (powers of two), computed by
  // Device::launch: L2 / resident warps, texture cache / resident warps
  // per SM. A kernel whose per-warp working set exceeds its share loses
  // cross-iteration sector reuse (how CSR-scalar really loses on GPUs).
  std::size_t gmem_cache_ways = 256;
  std::size_t tex_cache_ways = 64;
  // When kernels run as a concurrent group (ACSR's per-bin grids on
  // independent streams), their row sweeps advance in step and L2 merges
  // their accesses: a sector any kernel of the group already pulled is not
  // fetched from DRAM again. Owned by the ConcurrentGroup, shared by its
  // launches.
  std::unordered_set<std::uint64_t>* group_l2 = nullptr;
  // Hoisted per-launch decisions (Device::launch re-captures them): whether
  // sanitizer instrumentation is live, and whether the analytic affine
  // fast path may run (never under the sanitizer or reference metering).
  bool sanitize = sanitizer_enabled();
  bool fast_path = !sanitize && !reference_metering();
  // Memoized replay (vgpu/memo.hpp): execute the value plane only. Every
  // memory primitive routes to a plain checked fill — no cache probes, no
  // group-L2 inserts, no Counters charges — because the launch's metering
  // is replayed from the memo cache instead of being recomputed.
  bool value_only = false;
  // Epoch-stamped tag arrays shared by all warps of this launch.
  SectorCacheState gmem_cache_state;
  SectorCacheState tex_cache_state;
  // Bump pool for Block::shared allocations.
  SharedMemArena smem_arena;
  // Profiler lane-utilisation tallies (src/prof/). Null unless the launch
  // runs under ACSR_PROF/ACSR_TRACE, so each accounting helper pays one
  // never-taken null test. Strictly observational: nothing here may feed
  // back into `counters` or the caches (metering parity, pinned by
  // tests/test_metering_invariance.cpp).
  prof::LaneCounters* lane_prof = nullptr;
};

class Warp {
 public:
  Warp(KernelEnv& env, long long block_idx, int block_dim, long long grid_dim,
       int warp_in_block, Mask initial_mask)
      : env_(env),
        block_idx_(block_idx),
        block_dim_(block_dim),
        grid_dim_(grid_dim),
        warp_in_block_(warp_in_block),
        initial_mask_(initial_mask),
        gmem_cache_(env.gmem_cache_state, env.gmem_cache_ways),
        tex_cache_(env.tex_cache_state, env.tex_cache_ways) {}

  // --- geometry -----------------------------------------------------------
  long long block_idx() const { return block_idx_; }
  int block_dim() const { return block_dim_; }
  long long grid_dim() const { return grid_dim_; }
  int warp_in_block() const { return warp_in_block_; }
  long long global_warp() const {
    return block_idx_ * ((block_dim_ + kWarpSize - 1) / kWarpSize) +
           warp_in_block_;
  }
  /// Lanes that correspond to live threads of this block.
  Mask active_mask() const { return initial_mask_; }
  /// True while a memo replay runs this kernel (vgpu/memo.hpp): metering
  /// comes from the cache, so kernels may take value-plane shortcuts as
  /// long as every result stays bit-identical.
  bool value_only() const { return env_.value_only; }
  LaneArray<int> lanes() const { return LaneArray<int>::iota(); }
  /// Global linear thread id per lane.
  LaneArray<long long> global_threads() const {
    const long long base =
        block_idx_ * block_dim_ + warp_in_block_ * kWarpSize;
    return LaneArray<long long>::iota(base);
  }

  // --- global memory. Kepler-style: global loads are serviced at 32-byte
  // L2 sector granularity — a fully coalesced 32x4B warp load is 4 sectors,
  // a fully scattered one is 32. A small per-warp direct-mapped sector
  // cache models L1/L2 reuse: a lane walking consecutive elements (the CSR
  // row walk) fetches each sector once, not once per iteration. ---
  template <class T, class I>
  LaneArray<T> load(DeviceSpan<const T> s, const LaneArray<I>& idx, Mask m) {
    return load_gather(s, idx, m, /*allow_group=*/true);
  }

  /// Unit-stride gather of the active lane prefix starting at element
  /// `first`: equivalent to load(s, iota(first), m) but states the affine
  /// pattern explicitly at the call site (the CSR row-extent walk, COO's
  /// consecutive-entry loads, ELL's column-major slots).
  template <class T>
  LaneArray<T> load_seq(DeviceSpan<const T> s, long long first, Mask m) {
    return load(s, LaneArray<long long>::iota(first), m);
  }

  /// Unit-stride scatter counterpart of load_seq.
  template <class T>
  void store_seq(DeviceSpan<T> s, long long first, const LaneArray<T>& v,
                 Mask m) {
    store(s, LaneArray<long long>::iota(first), v, m);
  }

  /// Scattered gather that bypasses the concurrent-group L2 filter: used
  /// for x gathers on the plain global path (the use_texture=false
  /// ablation). Random gathers lack the aligned-streaming property that
  /// justifies the group dedup, so they pay full sector cost per per-warp
  /// miss — which is exactly why the paper binds x to texture memory.
  template <class T, class I>
  LaneArray<T> load_gather_uncached(DeviceSpan<const T> s,
                                    const LaneArray<I>& idx, Mask m) {
    return load_gather(s, idx, m, /*allow_group=*/false);
  }

  template <class T, class I>
  LaneArray<T> load_gather(DeviceSpan<const T> s, const LaneArray<I>& idx,
                           Mask m, bool allow_group) {
    if (env_.value_only) [[unlikely]]
      return gather_plain(s, idx, m);
    if (env_.fast_path && m != 0 && is_prefix_mask(m)) {
      long long base, step;
      const int n = active_lanes(m);
      if (affine_prefix(idx, n, &base, &step) &&
          affine_stride_ok(step, sizeof(T)))
        return gather_affine(s, base, step, n, allow_group);
    }
    LaneArray<T> r{};
    int nsegs = 0;
    // Iterate set bits only (ascending lane order, same as the plain loop):
    // sparse masks — the long tail of a power-law row sweep — cost
    // popcount(m) iterations, not 32.
    if (env_.sanitize) {
      for (Mask rem = m; rem != 0; rem &= rem - 1) {
        const int lane = std::countr_zero(rem);
        const auto i = static_cast<std::size_t>(idx[lane]);
        r[lane] = s[i];
        Sanitizer::instance().note_read(s.addr_of(i), sizeof(T), block_idx_,
                                        warp_in_block_, lane);
        if (!gmem_cache_.hit(s.addr_of(i) / kGmemSegment))
          nsegs += allow_group ? group_miss(s.addr_of(i) / kGmemSegment) : 1;
      }
    } else if (m != 0) {
      // Validate the whole gather once (min/max over the active lanes),
      // then read raw: same failure class as per-element checks, no
      // per-element branch in the hot loop.
      const auto [lo, hi] = lane_index_range(idx, m);
      s.check_range(lo, hi);
      const T* p = s.data();
      const auto lane_body = [&](int lane) {
        const auto i = static_cast<std::size_t>(idx[lane]);
        r[lane] = p[i];
        if (!gmem_cache_.hit(s.addr_of(i) / kGmemSegment))
          nsegs += allow_group ? group_miss(s.addr_of(i) / kGmemSegment) : 1;
      };
      if (m == kFullMask) {
        for (int lane = 0; lane < kWarpSize; ++lane) lane_body(lane);
      } else {
        for (Mask rem = m; rem != 0; rem &= rem - 1)
          lane_body(std::countr_zero(rem));
      }
    }
    account_gmem(active_lanes(m), nsegs,
                 static_cast<std::size_t>(active_lanes(m)) * sizeof(T));
    return r;
  }

  /// Load through a writable span (read-modify-write kernels).
  template <class T, class I>
    requires(!std::is_const_v<T>)
  LaneArray<T> load(DeviceSpan<T> s, const LaneArray<I>& idx, Mask m) {
    return load(DeviceSpan<const T>(s), idx, m);
  }

  /// Fused gather of two spans through the same index vector — the CSR
  /// inner loop's col_idx + vals pattern. Metering-identical to
  /// load(a, idx, m) followed by load(b, idx, m): all of a's lanes are
  /// probed and accounted first, then all of b's; only the mask decode and
  /// the index min/max scan are shared between the two gathers.
  template <class A, class B, class I>
  void load_pair(DeviceSpan<const A> a, DeviceSpan<const B> b,
                 const LaneArray<I>& idx, Mask m, LaneArray<A>& ra,
                 LaneArray<B>& rb) {
    if (env_.value_only) [[unlikely]] {
      gather_pair_plain(a, b, idx, m, ra, rb);
      return;
    }
    if (m == 0 || env_.sanitize) {
      ra = load(a, idx, m);
      rb = load(b, idx, m);
      return;
    }
    if (env_.fast_path && is_prefix_mask(m)) {
      long long base, step;
      const int n = active_lanes(m);
      if (affine_prefix(idx, n, &base, &step) &&
          (affine_stride_ok(step, sizeof(A)) ||
           affine_stride_ok(step, sizeof(B)))) {
        // Genuinely affine: take the plain per-span routes, since stride
        // eligibility depends on each span's element size.
        ra = load(a, idx, m);
        rb = load(b, idx, m);
        return;
      }
    }
    const auto [lo, hi] = lane_index_range(idx, m);
    a.check_range(lo, hi);
    {
      const A* p = a.data();
      int nsegs = 0;
      const auto lane_body = [&](int lane) {
        const auto i = static_cast<std::size_t>(idx[lane]);
        ra[lane] = p[i];
        if (!gmem_cache_.hit(a.addr_of(i) / kGmemSegment))
          nsegs += group_miss(a.addr_of(i) / kGmemSegment);
      };
      if (m == kFullMask) {
        for (int lane = 0; lane < kWarpSize; ++lane) lane_body(lane);
      } else {
        for (Mask rem = m; rem != 0; rem &= rem - 1)
          lane_body(std::countr_zero(rem));
      }
      account_gmem(active_lanes(m), nsegs,
                   static_cast<std::size_t>(active_lanes(m)) * sizeof(A));
    }
    b.check_range(lo, hi);
    {
      const B* p = b.data();
      int nsegs = 0;
      const auto lane_body = [&](int lane) {
        const auto i = static_cast<std::size_t>(idx[lane]);
        rb[lane] = p[i];
        if (!gmem_cache_.hit(b.addr_of(i) / kGmemSegment))
          nsegs += group_miss(b.addr_of(i) / kGmemSegment);
      };
      if (m == kFullMask) {
        for (int lane = 0; lane < kWarpSize; ++lane) lane_body(lane);
      } else {
        for (Mask rem = m; rem != 0; rem &= rem - 1)
          lane_body(std::countr_zero(rem));
      }
      account_gmem(active_lanes(m), nsegs,
                   static_cast<std::size_t>(active_lanes(m)) * sizeof(B));
    }
  }

  template <class T, class I>
  void store(DeviceSpan<T> s, const LaneArray<I>& idx, const LaneArray<T>& v,
             Mask m) {
    if (env_.value_only) [[unlikely]] {
      scatter_plain(s, idx, v, m);
      return;
    }
    if (env_.fast_path && m != 0 && is_prefix_mask(m)) {
      long long base, step;
      const int n = active_lanes(m);
      if (affine_prefix(idx, n, &base, &step) &&
          affine_stride_ok(step, sizeof(T))) {
        scatter_affine(s, base, step, n, v);
        return;
      }
    }
    int nsegs = 0;
    if (env_.sanitize) {
      for (Mask rem = m; rem != 0; rem &= rem - 1) {
        const int lane = std::countr_zero(rem);
        const auto i = static_cast<std::size_t>(idx[lane]);
        s[i] = v[lane];
        Sanitizer::instance().note_write(s.addr_of(i), sizeof(T), block_idx_,
                                         warp_in_block_, lane,
                                         /*atomic=*/false);
        if (!gmem_cache_.hit(s.addr_of(i) / kGmemSegment))
          nsegs += group_miss(s.addr_of(i) / kGmemSegment);
      }
    } else if (m != 0) {
      const auto [lo, hi] = lane_index_range(idx, m);
      s.check_range(lo, hi);
      T* p = s.data();
      const auto lane_body = [&](int lane) {
        const auto i = static_cast<std::size_t>(idx[lane]);
        p[i] = v[lane];
        if (!gmem_cache_.hit(s.addr_of(i) / kGmemSegment))
          nsegs += group_miss(s.addr_of(i) / kGmemSegment);
      };
      if (m == kFullMask) {
        for (int lane = 0; lane < kWarpSize; ++lane) lane_body(lane);
      } else {
        for (Mask rem = m; rem != 0; rem &= rem - 1)
          lane_body(std::countr_zero(rem));
      }
    }
    account_gmem(active_lanes(m), nsegs,
                 static_cast<std::size_t>(active_lanes(m)) * sizeof(T));
  }

  /// Uniform (warp-wide broadcast) load of a single element.
  template <class T>
  T load_scalar(DeviceSpan<const T> s, std::size_t i) {
    if (env_.value_only) [[unlikely]]
      return s[i];
    // One lane's worth of data serves the whole warp (broadcast), so the
    // profiler sees active=1 and sizeof(T) useful bytes.
    account_gmem(1, 1, sizeof(T));
    if (env_.sanitize)
      Sanitizer::instance().note_read(s.addr_of(i), sizeof(T), block_idx_,
                                      warp_in_block_, /*lane=*/-1);
    return s[i];
  }

  // --- texture read path (used for the x vector, 32 B segments) -----------
  template <class T, class I>
  LaneArray<T> load_tex(DeviceSpan<const T> s, const LaneArray<I>& idx,
                        Mask m) {
    if (env_.value_only) [[unlikely]]
      return gather_plain(s, idx, m);
    if (env_.fast_path && m != 0 && is_prefix_mask(m)) {
      long long base, step;
      const int n = active_lanes(m);
      if (affine_prefix(idx, n, &base, &step) &&
          affine_stride_ok(step, sizeof(T)))
        return tex_affine(s, base, step, n);
    }
    LaneArray<T> r{};
    int nsegs = 0;
    if (env_.sanitize) {
      for (Mask rem = m; rem != 0; rem &= rem - 1) {
        const int lane = std::countr_zero(rem);
        const auto i = static_cast<std::size_t>(idx[lane]);
        r[lane] = s[i];
        Sanitizer::instance().note_read(s.addr_of(i), sizeof(T), block_idx_,
                                        warp_in_block_, lane);
        if (!tex_cache_.hit(s.addr_of(i) / kTexSegment)) ++nsegs;
      }
    } else if (m != 0) {
      const auto [lo, hi] = lane_index_range(idx, m);
      s.check_range(lo, hi);
      const T* p = s.data();
      const auto lane_body = [&](int lane) {
        const auto i = static_cast<std::size_t>(idx[lane]);
        r[lane] = p[i];
        if (!tex_cache_.hit(s.addr_of(i) / kTexSegment)) ++nsegs;
      };
      if (m == kFullMask) {
        for (int lane = 0; lane < kWarpSize; ++lane) lane_body(lane);
      } else {
        for (Mask rem = m; rem != 0; rem &= rem - 1)
          lane_body(std::countr_zero(rem));
      }
    }
    account_tex(s, active_lanes(m), nsegs);
    return r;
  }

  /// Per-lane short-vector texture fetch: lane l reads the kt consecutive
  /// elements s[idx[l]] .. s[idx[l]+kt-1] into out[c][l], c < kt — the
  /// double2/float4-style vectorized gather a kernel issues against a
  /// packed operand tile (spmv::stage_x_pack). A lane's payload spans a
  /// contiguous run of texture sectors, so each distinct sector is probed
  /// and charged at most once per lane. The scalar-load equivalent (kt
  /// separate load_tex calls) probes per element, and for packed-slab
  /// strides — where every lane's base address is congruent mod the
  /// direct-mapped cache's way count — the cross-lane aliasing evicts each
  /// sector before the next element's probe, re-fetching it up to kt
  /// times. Issue cost is one memory instruction per 16 bytes of per-lane
  /// payload (LDG.128 granularity), not one per element.
  template <class T, class I>
  void load_tex_vec(DeviceSpan<const T> s, const LaneArray<I>& idx, int kt,
                    Mask m, LaneArray<T>* out) {
    for (int c = 0; c < kt; ++c) out[c] = LaneArray<T>{};
    if (m == 0) return;
    if (env_.value_only) [[unlikely]] {
      for (Mask rem = m; rem != 0; rem &= rem - 1) {
        const int lane = std::countr_zero(rem);
        const T* p = s.data() + static_cast<std::size_t>(idx[lane]);
        for (int c = 0; c < kt; ++c) out[c][lane] = p[c];
      }
      return;
    }
    const auto [lo, hi] = lane_index_range(idx, m);
    s.check_range(lo, hi + kt - 1);
    const T* p = s.data();
    int nsegs = 0;
    const auto lane_body = [&](int lane) {
      const auto i = static_cast<std::size_t>(idx[lane]);
      for (int c = 0; c < kt; ++c) out[c][lane] = p[i + c];
      const std::uint64_t s0 = s.addr_of(i) / kTexSegment;
      const std::uint64_t s1 =
          s.addr_of(i + static_cast<std::size_t>(kt) - 1) / kTexSegment;
      for (std::uint64_t seg = s0; seg <= s1; ++seg)
        if (!tex_cache_.hit(seg)) ++nsegs;
      if (env_.sanitize)
        Sanitizer::instance().note_read(s.addr_of(i),
                                        static_cast<std::size_t>(kt) *
                                            sizeof(T),
                                        block_idx_, warp_in_block_, lane);
    };
    if (m == kFullMask) {
      for (int lane = 0; lane < kWarpSize; ++lane) lane_body(lane);
    } else {
      for (Mask rem = m; rem != 0; rem &= rem - 1)
        lane_body(std::countr_zero(rem));
    }
    const int nreq = static_cast<int>(
        (static_cast<std::size_t>(kt) * sizeof(T) + 15) / 16);
    const int active = active_lanes(m);
    env_.counters.tex_requests += static_cast<std::uint64_t>(nreq);
    env_.counters.tex_transactions += static_cast<std::uint64_t>(nsegs);
    env_.counters.tex_bytes += static_cast<std::uint64_t>(nsegs) * kTexSegment;
    if (s.size() * sizeof(T) > env_.tex_footprint_bytes)
      env_.tex_footprint_bytes = s.size() * sizeof(T);
    issue_ += static_cast<std::uint64_t>(nreq);
    mem_instr_ += static_cast<std::uint64_t>(nreq);
    if (env_.lane_prof != nullptr) [[unlikely]] {
      env_.lane_prof->mem_lane_slots +=
          static_cast<std::uint64_t>(nreq) * kWarpSize;
      env_.lane_prof->mem_active_lanes +=
          static_cast<std::uint64_t>(nreq) * static_cast<std::uint64_t>(active);
      env_.lane_prof->useful_tex_bytes += static_cast<std::uint64_t>(active) *
                                          static_cast<std::uint64_t>(kt) *
                                          sizeof(T);
    }
  }

  // --- atomics -------------------------------------------------------------
  template <class T, class I>
  void atomic_add(DeviceSpan<T> s, const LaneArray<I>& idx,
                  const LaneArray<T>& v, Mask m) {
    if (env_.value_only) [[unlikely]] {
      // Same ascending-lane application order as the metered loop below,
      // so duplicate-index accumulation is bit-identical.
      for (Mask rem = m; rem != 0; rem &= rem - 1) {
        const int lane = std::countr_zero(rem);
        s[static_cast<std::size_t>(idx[lane])] += v[lane];
      }
      return;
    }
    std::uint64_t addrs[kWarpSize];
    int n = 0;
    std::uint64_t dups = 0;
    for (Mask rem = m; rem != 0; rem &= rem - 1) {
      const int lane = std::countr_zero(rem);
      const auto i = static_cast<std::size_t>(idx[lane]);
      if (env_.sanitize) {
        // An atomic RMW *reads* the previous value: uninitialized targets
        // are a defect (engines must zero-fill y before accumulating).
        Sanitizer::instance().note_read(s.addr_of(i), sizeof(T), block_idx_,
                                        warp_in_block_, lane);
        Sanitizer::instance().note_write(s.addr_of(i), sizeof(T), block_idx_,
                                         warp_in_block_, lane,
                                         /*atomic=*/true);
      }
      s[i] += v[lane];
      const std::uint64_t a = s.addr_of(i);
      bool seen = false;
      for (int k = 0; k < n; ++k)
        if (addrs[k] == a) {
          seen = true;
          break;
        }
      if (seen)
        ++dups;
      else
        addrs[n++] = a;
    }
    const auto act = static_cast<std::uint64_t>(active_lanes(m));
    env_.counters.atomic_ops += act;
    env_.counters.atomic_conflicts += dups;
    // Conflicting lanes serialise: each replay is an extra issue slot.
    issue_ += 1 + dups;
    mem_instr_ += 1;
    std::uint64_t segs[kWarpSize];
    int nsegs = 0;
    for (int k = 0; k < n; ++k) note_segment(segs, nsegs, addrs[k] / kGmemSegment);
    env_.counters.gmem_requests += 1;
    env_.counters.gmem_transactions += static_cast<std::uint64_t>(nsegs);
    env_.counters.gmem_bytes += static_cast<std::uint64_t>(nsegs) * kGmemSegment;
    if (env_.lane_prof != nullptr) [[unlikely]] {
      env_.lane_prof->mem_lane_slots += kWarpSize;
      env_.lane_prof->mem_active_lanes += act;
      env_.lane_prof->useful_gmem_bytes += act * sizeof(T);
    }
  }

  // --- intra-warp data exchange --------------------------------------------
  /// CUDA __ballot: mask of active lanes whose predicate holds.
  template <class P>
  Mask ballot(P pred, Mask m) {
    Mask r = 0;
    for (int lane = 0; lane < kWarpSize; ++lane)
      if (lane_active(m, lane) && pred(lane)) r |= lane_bit(lane);
    issue_ += 1;
    alu_instr_ += 1;
    return r;
  }

  /// CUDA __shfl_up within sub-groups of `width` lanes: lane i reads lane
  /// i - delta, or keeps its value at the group's lower edge.
  template <class T>
  LaneArray<T> shfl_up(const LaneArray<T>& v, int delta,
                       int width = kWarpSize) {
    ACSR_CHECK(width > 0 && width <= kWarpSize);
    LaneArray<T> r;
    for (int lane = 0; lane < kWarpSize; ++lane) {
      const int group_begin = (lane / width) * width;
      const int src = lane - delta;
      r[lane] = (src >= group_begin) ? v[src] : v[lane];
    }
    env_.counters.shuffle_ops += 1;
    issue_ += 1;
    alu_instr_ += 1;
    return r;
  }

  /// CUDA __shfl_xor: butterfly exchange with lane ^ mask.
  template <class T>
  LaneArray<T> shfl_xor(const LaneArray<T>& v, int lane_mask) {
    LaneArray<T> r;
    for (int lane = 0; lane < kWarpSize; ++lane)
      r[lane] = v[lane ^ lane_mask];
    env_.counters.shuffle_ops += 1;
    issue_ += 1;
    alu_instr_ += 1;
    return r;
  }

  /// Inclusive prefix sum over active lanes (Hillis-Steele with
  /// shuffle-up): lane i gets the sum of active lanes 0..i.
  template <class T>
  LaneArray<T> inclusive_scan_add(LaneArray<T> v, Mask m) {
    for (int lane = 0; lane < kWarpSize; ++lane)
      if (!lane_active(m, lane)) v[lane] = T{0};
    for (int d = 1; d < kWarpSize; d <<= 1) {
      const LaneArray<T> up = shfl_up(v, d);
      for (int lane = d; lane < kWarpSize; ++lane) v[lane] = v[lane] + up[lane];
      count_flops(m, 1, sizeof(T) == 8);
    }
    return v;
  }

  /// Inclusive *segmented* prefix sum: `heads` marks the first lane of
  /// each segment; sums do not propagate across segment boundaries. This
  /// is the warp kernel at the heart of COO segmented reduction.
  template <class T>
  LaneArray<T> segmented_scan_add(LaneArray<T> v, Mask heads, Mask m) {
    for (int lane = 0; lane < kWarpSize; ++lane)
      if (!lane_active(m, lane)) v[lane] = T{0};
    // seg_start[lane] = index of the lane's segment head.
    LaneArray<int> seg_start;
    int cur = 0;
    for (int lane = 0; lane < kWarpSize; ++lane) {
      if (lane_active(heads, lane)) cur = lane;
      seg_start[lane] = cur;
    }
    count_alu(2);  // head-flag propagation (min-index scan on hardware)
    for (int d = 1; d < kWarpSize; d <<= 1) {
      const LaneArray<T> up = shfl_up(v, d);
      for (int lane = d; lane < kWarpSize; ++lane)
        if (lane - d >= seg_start[lane]) v[lane] = v[lane] + up[lane];
      count_flops(m, 1, sizeof(T) == 8);
    }
    return v;
  }

  /// CUDA __shfl_down within sub-groups of `width` lanes.
  template <class T>
  LaneArray<T> shfl_down(const LaneArray<T>& v, int delta,
                         int width = kWarpSize) {
    ACSR_CHECK(width > 0 && width <= kWarpSize);
    LaneArray<T> r;
    for (int lane = 0; lane < kWarpSize; ++lane) {
      const int group_end = (lane / width) * width + width;
      const int src = lane + delta;
      r[lane] = (src < group_end) ? v[src] : v[lane];
    }
    env_.counters.shuffle_ops += 1;
    issue_ += 1;
    alu_instr_ += 1;
    return r;
  }

  /// Butterfly sum of active lanes within sub-groups of `width`; the value
  /// lands in the first lane of each group (shuffle-based reduction).
  template <class T>
  LaneArray<T> reduce_add(LaneArray<T> v, Mask m, int width = kWarpSize) {
    for (int lane = 0; lane < kWarpSize; ++lane)
      if (!lane_active(m, lane)) v[lane] = T{0};
    for (int d = width / 2; d > 0; d /= 2) {
      const LaneArray<T> o = shfl_down(v, d, width);
      for (int lane = 0; lane < kWarpSize; ++lane) v[lane] = v[lane] + o[lane];
      count_flops(m, 1, sizeof(T) == 8);
    }
    return v;
  }

  // --- instruction accounting ----------------------------------------------
  /// n floating-point lane-ops per active lane (an FMA counts as 2 flops;
  /// pass flops_per_lane accordingly).
  void count_flops(Mask m, int flops_per_lane, bool dp) {
    const auto act = static_cast<std::uint64_t>(active_lanes(m)) *
                     static_cast<std::uint64_t>(flops_per_lane);
    if (dp)
      env_.counters.dp_flops += act;
    else
      env_.counters.sp_flops += act;
    issue_ += static_cast<std::uint64_t>(flops_per_lane);
    alu_instr_ += static_cast<std::uint64_t>(flops_per_lane);
    if (env_.lane_prof != nullptr) [[unlikely]] {
      env_.lane_prof->flop_lane_slots +=
          static_cast<std::uint64_t>(kWarpSize) *
          static_cast<std::uint64_t>(flops_per_lane);
      env_.lane_prof->flop_active_lanes += act;
    }
  }

  /// n integer/control warp-instructions (address math, compares, branches).
  void count_alu(int n) {
    issue_ += static_cast<std::uint64_t>(n);
    alu_instr_ += static_cast<std::uint64_t>(n);
  }

  /// Serialised single-lane global accesses (e.g. the dynamic-update
  /// kernel where only lane 0 of the warp mutates a row): each access is
  /// its own 32 B L2 sector transaction and its own issue slot.
  void count_serial_gmem(std::uint64_t accesses) {
    env_.counters.gmem_requests += accesses;
    env_.counters.gmem_transactions += accesses;
    env_.counters.gmem_bytes += accesses * 32;
    issue_ += accesses;
    mem_instr_ += accesses;
    if (env_.lane_prof != nullptr) [[unlikely]] {
      // Single-lane accesses: 1 active lane per 32-lane slot, modelled as
      // one 8-byte useful element per sector transaction.
      env_.lane_prof->mem_lane_slots += accesses * kWarpSize;
      env_.lane_prof->mem_active_lanes += accesses;
      env_.lane_prof->useful_gmem_bytes += accesses * 8;
    }
  }

  /// n shuffle instructions whose data movement is modelled analytically
  /// (e.g. the segmented-reduction network in the COO kernel).
  void count_shuffles(int n) {
    env_.counters.shuffle_ops += static_cast<std::uint64_t>(n);
    issue_ += static_cast<std::uint64_t>(n);
    alu_instr_ += static_cast<std::uint64_t>(n);
  }

  void count_smem(int accesses) {
    env_.counters.smem_accesses += static_cast<std::uint64_t>(accesses);
    issue_ += 1;
    alu_instr_ += 1;
  }

  // --- dynamic parallelism ---------------------------------------------------
  /// Device-side launch (Algorithm 3's per-row child grids). Only valid on
  /// CC >= 3.5 devices; the Device enforces this at kernel finalisation.
  void launch_child(LaunchConfig cfg, KernelFn fn) {
    env_.counters.child_launches += 1;
    issue_ += 4;  // parameter marshalling by the parent thread
    alu_instr_ += 4;
    env_.pending_children.push_back({std::move(cfg), std::move(fn)});
  }

  // Called by Block::each_warp after the warp body completes.
  void finish(int sm) {
    if (env_.value_only) [[unlikely]] return;  // metering replayed from cache
    env_.counters.warps += 1;
    env_.counters.issue_cycles += issue_;
    env_.sm_issue_cycles[static_cast<std::size_t>(sm)] +=
        static_cast<double>(issue_);
    const double lat =
        (mem_instr_ > 0 ? env_.spec->gmem_latency_cycles : 0.0) +
        static_cast<double>(mem_instr_) * env_.spec->mem_pipeline_cycles +
        static_cast<double>(alu_instr_) * env_.spec->alu_latency_cycles;
    if (lat > env_.max_warp_latency_cycles)
      env_.max_warp_latency_cycles = lat;
  }

 private:
  static constexpr std::uint64_t kGmemSegment = 32;
  static constexpr std::uint64_t kTexSegment = 32;

  /// Direct-mapped tag array standing in for the warp's share of L2 (or of
  /// the texture cache). Collisions evict, which approximates capacity
  /// pressure: more resident warps -> fewer ways each -> less reuse. The
  /// tag storage lives in the KernelEnv and is reclaimed per warp by an
  /// epoch bump (SectorCacheState), keeping warp setup O(1).
  class SectorCache {
   public:
    SectorCache(SectorCacheState& st, std::size_t ways)
        : st_(&st), mask_(ways - 1) {
      ACSR_CHECK(ways >= 1 && ways <= SectorCacheState::kMaxWays &&
                 (ways & (ways - 1)) == 0);
      ++st_->epoch;
    }
    /// True if resident; inserts otherwise.
    bool hit(std::uint64_t seg) {
      auto& slot = st_->slots[static_cast<std::size_t>(seg & mask_)];
      if (slot.stamp == st_->epoch && slot.tag == seg) return true;
      slot.tag = seg;
      slot.stamp = st_->epoch;
      return false;
    }

   private:
    SectorCacheState* st_;
    std::uint64_t mask_;
  };

  /// Affine fast path eligibility: byte addresses must advance by at most
  /// one sector per lane (then the touched sectors are exactly the
  /// contiguous range between the first and last lane's sector, with no
  /// holes) and must be non-decreasing (then distinct sectors appear in
  /// the same ascending order the per-lane reference loop probes them in,
  /// so cache end-state and group-L2 insertion order match exactly).
  static bool affine_stride_ok(long long step, std::size_t elem_size) {
    return step >= 0 && static_cast<std::uint64_t>(step) * elem_size <=
                            kGmemSegment;
  }

  /// Analytic gather for idx[l] = base + l*step over the n-lane active
  /// prefix: one range bounds check, a memcpy-style lane fill, one cache
  /// probe per distinct sector. In the reference loop, consecutive lanes
  /// landing in the same sector re-probe it and hit — no counter or state
  /// effect — so probing each distinct sector once is bit-identical.
  template <class T>
  LaneArray<T> gather_affine(DeviceSpan<const T> s, long long base,
                             long long step, int n, bool allow_group) {
    LaneArray<T> r{};
    const auto [first, last] = affine_touch_range<long long>(base, step, n);
    s.check_range(first, last);
    const T* p = s.data();
    if (step == 1) {
      std::copy(p + base, p + base + n, r.v.begin());
    } else {
      for (int l = 0; l < n; ++l) r[l] = p[base + step * l];
    }
    int nsegs = 0;
    const std::uint64_t s0 =
        s.addr_of(static_cast<std::size_t>(base)) / kGmemSegment;
    const std::uint64_t s1 =
        s.addr_of(static_cast<std::size_t>(last)) / kGmemSegment;
    for (std::uint64_t seg = s0; seg <= s1; ++seg)
      if (!gmem_cache_.hit(seg)) nsegs += allow_group ? group_miss(seg) : 1;
    account_gmem(n, nsegs, static_cast<std::size_t>(n) * sizeof(T));
    return r;
  }

  /// Scatter counterpart of gather_affine. For step == 0 the sequential
  /// per-lane writes leave v[n-1] at the target, which the ascending fill
  /// loop reproduces.
  template <class T>
  void scatter_affine(DeviceSpan<T> s, long long base, long long step, int n,
                      const LaneArray<T>& v) {
    const auto [first, last] = affine_touch_range<long long>(base, step, n);
    s.check_range(first, last);
    T* p = s.data();
    if (step == 1) {
      std::copy(v.v.begin(), v.v.begin() + n, p + base);
    } else {
      for (int l = 0; l < n; ++l) p[base + step * l] = v[l];
    }
    int nsegs = 0;
    const std::uint64_t s0 =
        s.addr_of(static_cast<std::size_t>(base)) / kGmemSegment;
    const std::uint64_t s1 =
        s.addr_of(static_cast<std::size_t>(last)) / kGmemSegment;
    for (std::uint64_t seg = s0; seg <= s1; ++seg)
      if (!gmem_cache_.hit(seg)) nsegs += group_miss(seg);
    account_gmem(n, nsegs, static_cast<std::size_t>(n) * sizeof(T));
  }

  /// Texture-path analogue of gather_affine (no concurrent-group filter on
  /// the texture path, matching the reference loop).
  template <class T>
  LaneArray<T> tex_affine(DeviceSpan<const T> s, long long base,
                          long long step, int n) {
    LaneArray<T> r{};
    const auto [first, last] = affine_touch_range<long long>(base, step, n);
    s.check_range(first, last);
    const T* p = s.data();
    if (step == 1) {
      std::copy(p + base, p + base + n, r.v.begin());
    } else {
      for (int l = 0; l < n; ++l) r[l] = p[base + step * l];
    }
    int nsegs = 0;
    const std::uint64_t s0 =
        s.addr_of(static_cast<std::size_t>(base)) / kTexSegment;
    const std::uint64_t s1 =
        s.addr_of(static_cast<std::size_t>(last)) / kTexSegment;
    for (std::uint64_t seg = s0; seg <= s1; ++seg)
      if (!tex_cache_.hit(seg)) ++nsegs;
    account_tex(s, n, nsegs);
    return r;
  }

  /// Value-only gather: one range check, a lane fill, nothing else. Keeps
  /// the unit-stride memcpy of the affine path (the dominant gather shape)
  /// but skips every probe and charge — the metering for this launch is
  /// replayed from the memo cache.
  template <class T, class I>
  LaneArray<T> gather_plain(DeviceSpan<const T> s, const LaneArray<I>& idx,
                            Mask m) {
    LaneArray<T> r{};
    if (m == 0) return r;
    // Affine probe first: the unit-stride case range-checks [base, base+n)
    // directly and never pays the per-lane min/max scan.
    if (is_prefix_mask(m)) {
      long long base, step;
      const int n = active_lanes(m);
      if (affine_prefix(idx, n, &base, &step) && step == 1) {
        s.check_range(base, base + n - 1);
        const T* p = s.data();
        std::copy(p + base, p + base + n, r.v.begin());
        return r;
      }
    }
    const auto [lo, hi] = lane_index_range(idx, m);
    s.check_range(lo, hi);
    const T* p = s.data();
    for (Mask rem = m; rem != 0; rem &= rem - 1) {
      const int lane = std::countr_zero(rem);
      r[lane] = p[static_cast<std::size_t>(idx[lane])];
    }
    return r;
  }

  /// Value-only fused gather: one mask decode and one affine probe serve
  /// both spans of the CSR col_idx + vals pattern.
  template <class A, class B, class I>
  void gather_pair_plain(DeviceSpan<const A> a, DeviceSpan<const B> b,
                         const LaneArray<I>& idx, Mask m, LaneArray<A>& ra,
                         LaneArray<B>& rb) {
    ra = {};
    rb = {};
    if (m == 0) return;
    if (is_prefix_mask(m)) {
      long long base, step;
      const int n = active_lanes(m);
      if (affine_prefix(idx, n, &base, &step) && step == 1) {
        a.check_range(base, base + n - 1);
        b.check_range(base, base + n - 1);
        std::copy(a.data() + base, a.data() + base + n, ra.v.begin());
        std::copy(b.data() + base, b.data() + base + n, rb.v.begin());
        return;
      }
    }
    const auto [lo, hi] = lane_index_range(idx, m);
    a.check_range(lo, hi);
    b.check_range(lo, hi);
    const A* pa = a.data();
    const B* pb = b.data();
    for (Mask rem = m; rem != 0; rem &= rem - 1) {
      const int lane = std::countr_zero(rem);
      const auto i = static_cast<std::size_t>(idx[lane]);
      ra[lane] = pa[i];
      rb[lane] = pb[i];
    }
  }

  /// Value-only scatter counterpart of gather_plain. Ascending lane order
  /// matches both metered paths, so step-0 overwrites land identically.
  template <class T, class I>
  void scatter_plain(DeviceSpan<T> s, const LaneArray<I>& idx,
                     const LaneArray<T>& v, Mask m) {
    if (m == 0) return;
    if (is_prefix_mask(m)) {
      long long base, step;
      const int n = active_lanes(m);
      if (affine_prefix(idx, n, &base, &step) && step == 1) {
        s.check_range(base, base + n - 1);
        std::copy(v.v.begin(), v.v.begin() + n, s.data() + base);
        return;
      }
    }
    const auto [lo, hi] = lane_index_range(idx, m);
    s.check_range(lo, hi);
    T* p = s.data();
    for (Mask rem = m; rem != 0; rem &= rem - 1) {
      const int lane = std::countr_zero(rem);
      p[static_cast<std::size_t>(idx[lane])] = v[lane];
    }
  }

  static void note_segment(std::uint64_t* segs, int& n, std::uint64_t seg) {
    for (int k = 0; k < n; ++k)
      if (segs[k] == seg) return;
    segs[n++] = seg;
  }

  /// 1 if the sector must come from DRAM, 0 if another kernel of the
  /// current concurrent group already pulled it into L2.
  int group_miss(std::uint64_t seg) {
    if (env_.group_l2 == nullptr) return 1;
    return env_.group_l2->insert(seg).second ? 1 : 0;
  }

  /// `active` and `useful_bytes` feed only the profiler's lane tallies
  /// (occupancy / coalescing metrics); the Counters charges are identical
  /// for any value. Both executor paths pass the *true* active-lane count
  /// — the affine fast path passes its prefix length n, which equals
  /// active_lanes(m) of the mask the reference loop sees — so profiled
  /// numbers are path-invariant.
  void account_gmem(int active, int nsegs, std::size_t useful_bytes) {
    env_.counters.gmem_requests += 1;
    env_.counters.gmem_transactions += static_cast<std::uint64_t>(nsegs);
    env_.counters.gmem_bytes +=
        static_cast<std::uint64_t>(nsegs) * kGmemSegment;
    issue_ += 1;
    mem_instr_ += 1;
    if (env_.lane_prof != nullptr) [[unlikely]] {
      env_.lane_prof->mem_lane_slots += kWarpSize;
      env_.lane_prof->mem_active_lanes += static_cast<std::uint64_t>(active);
      env_.lane_prof->useful_gmem_bytes += useful_bytes;
    }
  }

  template <class T>
  void account_tex(DeviceSpan<const T> s, int active, int nsegs) {
    env_.counters.tex_requests += 1;
    env_.counters.tex_transactions += static_cast<std::uint64_t>(nsegs);
    env_.counters.tex_bytes += static_cast<std::uint64_t>(nsegs) * kTexSegment;
    if (s.size() * sizeof(T) > env_.tex_footprint_bytes)
      env_.tex_footprint_bytes = s.size() * sizeof(T);
    issue_ += 1;
    mem_instr_ += 1;
    if (env_.lane_prof != nullptr) [[unlikely]] {
      env_.lane_prof->mem_lane_slots += kWarpSize;
      env_.lane_prof->mem_active_lanes += static_cast<std::uint64_t>(active);
      env_.lane_prof->useful_tex_bytes +=
          static_cast<std::uint64_t>(active) * sizeof(T);
    }
  }

  KernelEnv& env_;
  long long block_idx_;
  int block_dim_;
  long long grid_dim_;
  int warp_in_block_;
  Mask initial_mask_;

  std::uint64_t issue_ = 0;
  std::uint64_t mem_instr_ = 0;
  std::uint64_t alu_instr_ = 0;
  SectorCache gmem_cache_;
  SectorCache tex_cache_;
};

class Block {
 public:
  Block(KernelEnv& env, long long block_idx, int block_dim,
        long long grid_dim, int sm)
      : env_(env),
        block_idx_(block_idx),
        block_dim_(block_dim),
        grid_dim_(grid_dim),
        sm_(sm) {
    env_.counters.blocks += 1;
    // Shared memory from the previous block is dead; recycle the pool.
    env_.smem_arena.reset();
  }

  long long block_idx() const { return block_idx_; }
  int block_dim() const { return block_dim_; }
  long long grid_dim() const { return grid_dim_; }

  int warps_per_block() const {
    return (block_dim_ + kWarpSize - 1) / kWarpSize;
  }

  /// Run `fn` for each warp of the block. Returning from each_warp is a
  /// block-wide barrier (all warps completed), so a kernel structured as
  ///   phase 1: block.each_warp(...); phase 2: block.each_warp(...)
  /// has __syncthreads semantics between the phases.
  template <class F>
  void each_warp(F&& fn) {
    for (int w = 0; w < warps_per_block(); ++w) {
      const int live = std::min(kWarpSize, block_dim_ - w * kWarpSize);
      Warp warp(env_, block_idx_, block_dim_, grid_dim_, w,
                first_lanes(live));
      fn(warp);
      warp.finish(sm_);
    }
  }

  /// Block-scope shared memory. Each call returns a fresh zero-filled
  /// region that lives for the rest of the block (backed by the launch's
  /// bump arena, so no per-call heap allocation).
  template <class T>
  DeviceSpan<T> shared(std::size_t n) {
    double* storage = env_.smem_arena.take(
        (n * sizeof(T) + sizeof(double) - 1) / sizeof(double));
    T* p = reinterpret_cast<T*>(storage);
    std::fill(p, p + n, T{});
    ++shared_count_;
    // Shared memory is not part of the global address space; give it a
    // sentinel address range that cannot collide with arena addresses.
    const std::uint64_t addr =
        0xffff000000000000ULL + shared_count_ * 0x100000ULL;
    return DeviceSpan<T>(p, n, addr);
  }

  /// Explicit barrier marker: charges one issue per warp.
  void sync() {
    if (env_.value_only) [[unlikely]] return;  // metering replayed from cache
    env_.counters.issue_cycles +=
        static_cast<std::uint64_t>(warps_per_block());
    env_.sm_issue_cycles[static_cast<std::size_t>(sm_)] +=
        static_cast<double>(warps_per_block());
  }

 private:
  KernelEnv& env_;
  long long block_idx_;
  int block_dim_;
  long long grid_dim_;
  int sm_;
  std::uint64_t shared_count_ = 0;
};

}  // namespace acsr::vgpu
