// The simulated GPU device: memory arena + kernel executor + transfer model.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "vgpu/device_spec.hpp"
#include "vgpu/kernel.hpp"
#include "vgpu/memory.hpp"
#include "vgpu/warp.hpp"

namespace acsr::vgpu {

namespace memo {
struct Session;
}  // namespace memo

/// A host<->device transfer event.
struct TransferRun {
  std::size_t bytes = 0;
  double duration_s = 0.0;
};

class Device {
 public:
  explicit Device(DeviceSpec spec)
      : spec_(std::move(spec)), arena_(spec_.global_mem_bytes) {
    arena_.set_owner(spec_.name);
  }

  const DeviceSpec& spec() const { return spec_; }
  MemoryArena& arena() { return arena_; }

  /// True once an injected whole-device-loss fault has struck: every
  /// further launch/alloc/transfer throws DeviceLost. Only the fault
  /// injector can set this, so the flag is dead weight (one never-taken
  /// branch behind fault_injection_enabled()) in normal runs.
  bool lost() const { return lost_; }
  void mark_lost() { lost_ = true; }

  /// Override the capacity (used by benches to scale the memory limit along
  /// with the 1/N corpus scaling so the paper's OOM entries reproduce).
  void set_memory_capacity(std::size_t bytes) { arena_.set_capacity(bytes); }

  /// Bytes still allocatable before the arena overflows. The out-of-core
  /// tier's tests and tools use this to assert a streamed solve's device
  /// working set really stays inside its slab budget.
  std::size_t memory_headroom() const {
    return arena_.capacity() - arena_.allocated();
  }

  template <class T>
  DeviceBuffer<T> alloc(std::size_t n, std::string name) {
    if (fault_injection_enabled() && lost_) [[unlikely]]
      fail_lost("alloc of '" + name + "'");
    return DeviceBuffer<T>(arena_, n, std::move(name));
  }

  /// Allocate and fill from host data, charging the H2D transfer.
  template <class T>
  DeviceBuffer<T> upload(const std::vector<T>& host_data, std::string name) {
    DeviceBuffer<T> b(arena_, host_data.size(), std::move(name));
    b.host() = host_data;
    note_transfer(host_data.size() * sizeof(T));
    return b;
  }

  /// Charge an H2D/D2H transfer of `bytes` (PCIe model: fixed setup cost
  /// plus bandwidth term).
  TransferRun note_transfer(std::size_t bytes) {
    TransferRun t;
    t.bytes = bytes;
    t.duration_s = spec_.transfer_setup_s +
                   static_cast<double>(bytes) / (spec_.pcie_bandwidth_gbs * 1e9);
    if (fault_injection_enabled()) [[unlikely]] {
      if (lost_) fail_lost(std::to_string(bytes) + " B transfer");
      const TransferFault f = FaultInjector::instance().on_transfer(
          spec_.name, bytes, &arena_);
      t.duration_s += f.stall_s;  // stall: timing-only, still completes
      if (f.lost) {
        lost_ = true;
        transfer_seconds_ += t.duration_s;
        transfer_bytes_ += bytes;
        fail_lost(std::to_string(bytes) + " B transfer");
      }
      if (f.corrupt) {
        transfer_seconds_ += t.duration_s;
        transfer_bytes_ += bytes;
        throw DataCorruption(spec_.name, f.buffer, f.detail);
      }
    }
    transfer_seconds_ += t.duration_s;
    transfer_bytes_ += bytes;
    return t;
  }

  /// Execute a kernel functionally and return its simulated run record.
  /// Dynamic-parallelism children enqueued by the kernel are executed as
  /// part of the same run (they share the device with the parent).
  /// `group_l2` links the launch into a concurrent group (see
  /// ConcurrentGroup below). The launch is fully synchronous, so the
  /// kernel is taken as a non-owning KernelRef: a stack lambda binds with
  /// no std::function materialisation (children the kernel enqueues are
  /// the only owned copies).
  KernelRun launch(const LaunchConfig& cfg, KernelRef fn,
                   std::unordered_set<std::uint64_t>* group_l2 = nullptr);

  /// Convenience wrapper for warp-granularity kernels: `fn(Warp&)` is run
  /// for every warp of the grid.
  template <class F>
  KernelRun launch_warps(const LaunchConfig& cfg, F&& fn,
                         std::unordered_set<std::uint64_t>* group_l2 =
                             nullptr) {
    auto body = [&fn](Block& blk) {
      blk.each_warp([&fn](Warp& w) { fn(w); });
    };
    return launch(cfg, KernelRef(body), group_l2);
  }

  /// Active memoization session (vgpu/memo.hpp), installed by
  /// memo::SessionScope for the duration of one memoized execution.
  /// Capture appends each launch's finalized KernelRun to the session's
  /// entry; replay re-runs kernels value-only and returns the cached run.
  memo::Session* memo_session() const { return memo_session_; }
  void set_memo_session(memo::Session* s) { memo_session_ = s; }

  // Cumulative transfer accounting (reset per experiment).
  double transfer_seconds() const { return transfer_seconds_; }
  std::uint64_t transfer_bytes() const { return transfer_bytes_; }
  void reset_transfer_stats() {
    transfer_seconds_ = 0.0;
    transfer_bytes_ = 0;
  }

 private:
  [[noreturn]] void fail_lost(const std::string& where) const {
    throw DeviceLost(spec_.name, where,
                     "device '" + spec_.name + "' lost (during " + where +
                         ")");
  }

  /// Consume the next captured record of the active replay session:
  /// validate it against `cfg`, re-run the kernel value-only for y, and
  /// return the cached KernelRun (defined in device.cpp).
  KernelRun memo_replay(const LaunchConfig& cfg, const KernelRef& fn);

  DeviceSpec spec_;
  MemoryArena arena_;
  double transfer_seconds_ = 0.0;
  std::uint64_t transfer_bytes_ = 0;
  bool lost_ = false;
  memo::Session* memo_session_ = nullptr;
};

/// Kernels issued on independent streams that execute concurrently on one
/// device (the ACSR driver's per-bin grids). Their aligned sweeps share L2:
/// a DRAM sector any member already fetched is free for the others. Call
/// launch/launch_warps per grid, then seconds() for the group's combined
/// duration under the concurrent-kernel model.
class ConcurrentGroup {
 public:
  explicit ConcurrentGroup(Device& dev) : dev_(dev) {}

  KernelRun launch(const LaunchConfig& cfg, KernelRef fn) {
    KernelRun r = dev_.launch(cfg, fn, &l2_);
    runs_.push_back(r);
    return r;
  }

  template <class F>
  KernelRun launch_warps(const LaunchConfig& cfg, F&& fn) {
    KernelRun r = dev_.launch_warps(cfg, std::forward<F>(fn), &l2_);
    runs_.push_back(r);
    return r;
  }

  const std::vector<KernelRun>& runs() const { return runs_; }
  std::size_t unique_sectors() const { return l2_.size(); }

  double seconds() const { return combine_concurrent(runs_, dev_.spec()); }

 private:
  Device& dev_;
  std::unordered_set<std::uint64_t> l2_;
  std::vector<KernelRun> runs_;
};

}  // namespace acsr::vgpu
