// Host-side stream/event timeline, mirroring the CUDA model the paper's
// driver uses: work items (kernels, transfers) enqueue on streams and run
// in issue order per stream; events let one stream wait on another; the
// multi-GPU driver joins per-device streams through it.
#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "common/check.hpp"

namespace acsr::vgpu {

class StreamTimeline {
 public:
  using StreamId = int;

  /// An event is a point in simulated time captured from a stream.
  struct Event {
    double at_s = 0.0;
  };

  StreamId create_stream() {
    cursors_.push_back(0.0);
    return static_cast<StreamId>(cursors_.size() - 1);
  }

  std::size_t num_streams() const { return cursors_.size(); }

  /// Enqueue `duration_s` of work; returns its completion time. Work on
  /// one stream serialises; different streams are independent until
  /// joined by events.
  double enqueue(StreamId s, double duration_s, std::string tag = {}) {
    ACSR_CHECK(duration_s >= 0.0);
    auto& cur = cursor(s);
    const double start = cur;
    cur += duration_s;
    log_.push_back({s, start, cur, std::move(tag)});
    return cur;
  }

  /// cudaEventRecord: capture the stream's current completion time.
  Event record(StreamId s) { return Event{cursor(s)}; }

  /// cudaStreamWaitEvent: the stream cannot issue further work until the
  /// event has completed.
  void wait(StreamId s, const Event& e) {
    auto& cur = cursor(s);
    cur = std::max(cur, e.at_s);
  }

  /// Join every stream (device-wide synchronise); returns the makespan.
  double synchronize() {
    double t = 0.0;
    for (double c : cursors_) t = std::max(t, c);
    for (double& c : cursors_) c = t;
    return t;
  }

  double now(StreamId s) const {
    ACSR_CHECK(static_cast<std::size_t>(s) < cursors_.size());
    return cursors_[static_cast<std::size_t>(s)];
  }

  struct LogEntry {
    StreamId stream;
    double start_s;
    double end_s;
    std::string tag;
  };
  const std::vector<LogEntry>& log() const { return log_; }

  /// Total busy time across streams (for utilisation reports).
  double busy_seconds() const {
    double t = 0.0;
    for (const auto& e : log_) t += e.end_s - e.start_s;
    return t;
  }

 private:
  double& cursor(StreamId s) {
    ACSR_CHECK_MSG(s >= 0 && static_cast<std::size_t>(s) < cursors_.size(),
                   "unknown stream " << s);
    return cursors_[static_cast<std::size_t>(s)];
  }

  std::vector<double> cursors_;
  std::vector<LogEntry> log_;
};

}  // namespace acsr::vgpu
