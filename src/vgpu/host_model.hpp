// Deterministic host-side cost clock.
//
// Format conversions (CSR->HYB, BRC blocking, BCCOO tuning, ...) charge
// their work here as abstract operations; the model converts op counts to
// simulated seconds with a fixed host rate. Using a deterministic clock —
// rather than wall time on this container's single core — keeps the
// preprocessing-to-SpMV ratios of Fig. 4 / Tables III-IV stable and unit-
// testable.
#pragma once

#include <cstdint>

namespace acsr::vgpu {

class HostModel {
 public:
  /// Effective sustained rate for the scan/scatter/sort element operations
  /// that dominate sparse-format conversions on the paper's Core i7 host.
  static constexpr double kOpsPerSecond = 8.0e8;

  /// Charge `ops` abstract element-operations.
  void charge_ops(double ops) { seconds_ += ops / kOpsPerSecond; }

  /// Charge directly in seconds (e.g. simulated GPU trial runs inside an
  /// auto-tuning loop).
  void charge_seconds(double s) { seconds_ += s; }

  double seconds() const { return seconds_; }
  void reset() { seconds_ = 0.0; }

 private:
  double seconds_ = 0.0;
};

}  // namespace acsr::vgpu
