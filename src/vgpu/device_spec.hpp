// Parameterisation of the simulated GPUs. The three presets mirror
// Table II of the paper: GTX 580 (Fermi GF110, CC 2.0), Tesla K10
// (Kepler GK104, CC 3.0, two dies per card) and GTX Titan (Kepler GK110,
// CC 3.5, the only device with dynamic parallelism).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace acsr::vgpu {

struct DeviceSpec {
  std::string name;
  int compute_major = 3;
  int compute_minor = 5;

  int sm_count = 14;
  int cores_per_sm = 192;
  double clock_ghz = 0.837;

  double dram_bandwidth_gbs = 288.0;  // device memory
  double pcie_bandwidth_gbs = 6.0;    // effective host<->device
  std::size_t global_mem_bytes = std::size_t{6} * 1024 * 1024 * 1024;
  // L2 capacity: divided among resident warps to size each warp's share of
  // reusable sectors. Kernels whose per-warp working set exceeds the share
  // (e.g. CSR-scalar touching 32 rows per warp) lose cross-iteration reuse.
  std::size_t l2_bytes = std::size_t{1536} * 1024;

  int warp_size = 32;
  int max_threads_per_block = 1024;
  int max_resident_warps_per_sm = 64;
  // Per-block shared-memory budget (the 48 KiB configuration on every
  // Table II part). Consumed by the static verifier's launch-config check
  // (src/analysis); the executor's SharedMemArena chunks match it.
  std::size_t shared_mem_per_block_bytes = 48 * 1024;

  // Issue model: warp-instructions retired per cycle per SM
  // (schedulers x dispatch units, derated for dual-issue limits).
  double issue_slots_per_sm = 4.0;

  // Peak arithmetic throughput per SM per cycle (lane-ops).
  double sp_flops_per_cycle_per_sm = 192.0;
  double dp_throughput_ratio = 1.0 / 3.0;  // DP:SP

  // Texture cache (read-only path used for the x vector). The miss model is
  //   miss = clamp(footprint / (cache_total * reuse_factor), min, max)
  // where reuse_factor captures the temporal locality of power-law column
  // accesses (hub columns stay resident).
  std::size_t tex_cache_bytes_per_sm = 48 * 1024;
  double tex_reuse_factor = 8.0;
  double tex_min_miss = 0.02;
  double tex_max_miss = 0.5;

  // Latency parameters (cycles) for the latency-bound roofline term that
  // dominates under-occupied kernels. Loop iterations pipeline (loads of
  // iteration i+1 issue while i is in flight), so each memory instruction
  // contributes only its pipelined slot to the warp's critical path; the
  // full DRAM latency is paid once to fill the pipeline.
  double gmem_latency_cycles = 400.0;     // one-time pipeline fill
  double mem_pipeline_cycles = 10.0;      // per in-loop memory instruction
  double alu_latency_cycles = 4.0;

  // Launch / transfer overheads.
  double host_launch_overhead_s = 5.0e-6;
  double child_launch_overhead_s = 1.5e-7;  // device-side, per launch
  int pending_launch_limit = 2048;          // cudaLimitDevRuntimePendingLaunchCount
  double over_limit_penalty_s = 2.0e-6;     // per launch beyond the limit
  double async_launch_gap_s = 1.5e-6;       // pipelined multi-stream launches
  double transfer_setup_s = 1.0e-5;         // fixed cost per PCIe transfer
  double multi_gpu_sync_s = 1.5e-5;         // inter-device fence per SpMV

  // Effective fraction of peak DRAM bandwidth sustained by SpMV-like
  // streaming kernels.
  double dram_efficiency = 0.75;
  // Warps per SM needed to keep enough requests in flight to saturate
  // DRAM (Little's law). Kernels with fewer resident warps get a
  // proportionally smaller share of bandwidth — the under-occupancy that
  // dynamic parallelism cures for few-row/huge-row matrices.
  double saturation_warps_per_sm = 16.0;

  bool supports_dynamic_parallelism() const {
    return compute_major > 3 || (compute_major == 3 && compute_minor >= 5);
  }

  double clock_hz() const { return clock_ghz * 1e9; }

  /// Shrink every fixed (scale-free) cost together with a 1/N-scaled
  /// corpus, so the overhead-to-work ratio matches paper scale: launch
  /// overheads, transfer setup, sync fees, plus memory capacity and the
  /// texture cache (whose size relative to x drives the miss rate).
  /// Kernel-work costs (bandwidth, flop rates, latencies) are untouched.
  DeviceSpec scaled_for_corpus(long long scale) const;

  /// GTX 580: Fermi GF110, 16 SM x 32 cores @ 1.544 GHz (shader clock),
  /// 192 GB/s, 3 GB, CC 2.0 — no dynamic parallelism, smaller caches.
  static DeviceSpec gtx580();

  /// Tesla K10: one GK104 die — 8 SMX x 192 @ 0.745 GHz, 160 GB/s, 4 GB,
  /// CC 3.0 — no dynamic parallelism, weak DP arithmetic (1/24).
  static DeviceSpec tesla_k10();

  /// GTX Titan: GK110, 14 SMX x 192 @ 0.837 GHz, 288 GB/s, 6 GB, CC 3.5 —
  /// dynamic parallelism available, DP at 1/3 SP.
  static DeviceSpec gtx_titan();

  static DeviceSpec by_name(const std::string& name);
};

}  // namespace acsr::vgpu
