// Compute-sanitizer layer for the virtual GPU (memcheck + racecheck).
//
// An opt-in instrumentation mode — modelled on CUDA's compute-sanitizer —
// that checks every simulated device-memory access:
//
//   memcheck   per-byte shadow state (allocated / initialized / freed) for
//              every arena allocation. Catches out-of-bounds accesses,
//              reads of never-written memory, use-after-free through stale
//              spans, and double/invalid frees, each reported with the
//              buffer name and full lane/warp/block/grid provenance.
//   racecheck  per-address write sets within one Device::launch (parent
//              grid + its dynamic-parallelism children). Two writes to the
//              same address from different lanes/blocks/grids are flagged
//              unless both are atomics, or they are ordered by a
//              device-side launch (a parent-grid write happens-before all
//              child-grid accesses, which is exactly the guarantee CUDA
//              gives ACSR's Algorithm 3 when the parent zeroes y[row]
//              before launching the row child).
//
// Activation: set ACSR_SANITIZE=1 in the environment (any test binary then
// runs fully instrumented), or call Sanitizer::instance().set_enabled(true)
// programmatically. ACSR_SANITIZE_HALT=1 (or set_halt_on_error) turns every
// finding into a thrown SanitizerError; the default records findings in
// reports() so harnesses can assert on them in bulk.
//
// The allocation *registry* (address -> buffer name) is always maintained —
// it is O(log n) per alloc/free and lets DeviceSpan diagnostics name the
// buffer even outside sanitizer runs. The per-access shadow checks only run
// when enabled, so the fast path costs one predictable branch.
//
// Addresses are device virtual addresses from MemoryArena, which are never
// reused; freed ranges keep a tombstone so use-after-free is attributable.
// Shared-memory spans live in a sentinel address range outside the arena
// and are ignored. The simulator is single-threaded, so no locking.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

namespace acsr::vgpu {

/// Thrown for findings that make continuing unsafe (out-of-bounds) and,
/// in halt-on-error mode, for every finding.
class SanitizerError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class SanKind {
  kOutOfBounds,   // access past the end of a live allocation
  kUninitRead,    // device read of never-written bytes
  kUseAfterFree,  // access through a span into a freed allocation
  kDoubleFree,    // second free of the same allocation
  kBadFree,       // free of an address that was never allocated
  kWriteRace,     // same-address writes from unordered writers
  kBadSubspan,    // subspan escaping its (live) underlying allocation
};

const char* to_string(SanKind k);

/// One finding. `message` is the full human-readable diagnostic; the other
/// fields let tests assert on provenance precisely.
struct SanReport {
  SanKind kind{};
  std::string buffer;      // allocation name, or "?" if unattributable
  std::uint64_t addr = 0;  // first byte of the offending access
  std::string kernel;      // grid name ("" for host-side findings)
  int grid = -1;           // 0 = parent grid, >= 1 = DP child grids
  long long block = -1;
  int warp = -1;
  int lane = -1;           // -1 for warp-uniform accesses
  std::string message;
};

class Sanitizer {
 public:
  /// Process-wide instance. Reads ACSR_SANITIZE / ACSR_SANITIZE_HALT once
  /// on first use.
  static Sanitizer& instance();

  bool enabled() const { return enabled_; }
  void set_enabled(bool on);  // also updates the sanitizer_enabled() mirror
  bool halt_on_error() const { return halt_; }
  void set_halt_on_error(bool on) { halt_ = on; }

  // --- allocation lifecycle (MemoryArena / DeviceBuffer) -------------------
  void on_alloc(std::uint64_t addr, std::size_t bytes, const std::string& name);
  /// Returns true when this was a live allocation (the arena may then
  /// adjust its accounting); false on double/invalid free.
  bool on_free(std::uint64_t addr, std::size_t bytes, const std::string& name);
  /// Host-side write (DeviceBuffer::host(), uploads): the whole range
  /// becomes defined.
  void mark_initialized(std::uint64_t addr, std::size_t bytes);
  /// Name of the allocation containing `addr`, or "?".
  std::string buffer_name(std::uint64_t addr) const;

  // --- kernel lifecycle (Device::launch) -----------------------------------
  void begin_launch(const std::string& name);
  /// Called per work-list grid: 0 = the parent, >= 1 = DP children.
  void begin_grid(int grid_index, const std::string& name);
  /// Ends the racecheck epoch; returns the findings added since
  /// begin_launch.
  std::size_t end_launch();

  // --- device-side accesses (Warp) -----------------------------------------
  void note_read(std::uint64_t addr, std::size_t bytes, long long block,
                 int warp, int lane);
  void note_write(std::uint64_t addr, std::size_t bytes, long long block,
                  int warp, int lane, bool atomic);
  /// Validate that a subspan's byte range still lies inside a live
  /// allocation (DeviceSpan::subspan).
  void check_subspan(std::uint64_t addr, std::size_t bytes);

  // --- results -------------------------------------------------------------
  const std::vector<SanReport>& reports() const { return reports_; }
  std::size_t count(SanKind k) const;
  /// Drop findings and shadow init/race state; live allocations stay
  /// registered, freed tombstones are dropped.
  void clear();

 private:
  Sanitizer();

  struct Buffer {
    std::string name;
    std::uint64_t base = 0;
    std::size_t bytes = 0;
    bool freed = false;
    std::vector<bool> init;  // per byte; empty once freed
  };
  struct Writer {
    int grid;
    long long block;
    int warp;
    int lane;
    bool atomic;
    bool same_thread(const Writer& o) const {
      return grid == o.grid && block == o.block && warp == o.warp &&
             lane == o.lane;
    }
  };

  Buffer* find(std::uint64_t addr);
  const Buffer* find(std::uint64_t addr) const;
  /// Report a device access to an address no allocation (live or freed)
  /// contains — a wild span. Always fatal.
  void check_unmapped(std::uint64_t addr, std::size_t bytes, long long block,
                      int warp, int lane, const char* what);
  /// Record (and possibly throw) one finding. `always_throw` marks
  /// findings where continuing would be memory-unsafe.
  void report(SanKind kind, const Buffer* b, std::uint64_t addr,
              long long block, int warp, int lane, const std::string& detail,
              bool always_throw = false);

  bool enabled_ = false;
  bool halt_ = false;
  std::map<std::uint64_t, Buffer> buffers_;  // keyed by base address
  std::unordered_map<std::uint64_t, std::vector<Writer>> writes_;
  std::string kernel_;
  int grid_ = -1;
  std::vector<SanReport> reports_;
  std::size_t launch_report_base_ = 0;
};

/// Fast-path guard used by the per-lane hooks in Warp and DeviceSpan.
/// A plain global mirror of Sanitizer::enabled(): reading it is one load,
/// with no function-local-static initialization guard on the hot path.
/// The dynamic initializer forces the singleton (and its ACSR_SANITIZE env
/// read) to exist before main; set_enabled keeps the mirror in sync.
namespace detail {
inline bool g_sanitizer_enabled = Sanitizer::instance().enabled();
}  // namespace detail

inline bool sanitizer_enabled() { return detail::g_sanitizer_enabled; }

inline void Sanitizer::set_enabled(bool on) {
  enabled_ = on;
  detail::g_sanitizer_enabled = on;
}

}  // namespace acsr::vgpu
