// SIMT lane-lockstep primitives.
//
// The virtual GPU executes kernels one *warp* at a time; a LaneArray<T> is
// the value of one register across the 32 lanes of the current warp, and a
// Mask is the warp's activity mask. Writing kernels against these types
// makes divergence explicit (an iteration with a partial mask is an issued
// instruction with idle lanes), which is exactly what the timing model
// needs to observe.
#pragma once

#include <array>
#include <bit>
#include <cstdint>

#include "common/check.hpp"

namespace acsr::vgpu {

inline constexpr int kWarpSize = 32;

using Mask = std::uint32_t;
inline constexpr Mask kFullMask = 0xffffffffu;

inline int active_lanes(Mask m) { return std::popcount(m); }
inline bool lane_active(Mask m, int lane) { return (m >> lane) & 1u; }
inline Mask lane_bit(int lane) { return Mask{1} << lane; }
/// Mask with the lowest n lanes active.
inline Mask first_lanes(int n) {
  return n >= kWarpSize ? kFullMask : ((Mask{1} << n) - 1u);
}

/// One register across the 32 lanes of a warp.
template <class T>
struct LaneArray {
  std::array<T, kWarpSize> v{};

  T& operator[](int lane) { return v[static_cast<std::size_t>(lane)]; }
  const T& operator[](int lane) const {
    return v[static_cast<std::size_t>(lane)];
  }

  static LaneArray filled(T x) {
    LaneArray r;
    r.v.fill(x);
    return r;
  }

  /// lane i gets start + i * step (thread-id style initialisation).
  static LaneArray iota(T start = T{0}, T step = T{1}) {
    LaneArray r;
    for (int i = 0; i < kWarpSize; ++i)
      r.v[static_cast<std::size_t>(i)] = static_cast<T>(start + step * static_cast<T>(i));
    return r;
  }

  template <class F>
  LaneArray<std::invoke_result_t<F, T>> map(F f) const {
    LaneArray<std::invoke_result_t<F, T>> r;
    for (int i = 0; i < kWarpSize; ++i) r[i] = f(v[static_cast<std::size_t>(i)]);
    return r;
  }

  /// Lanes where pred(value) holds, restricted to m.
  template <class P>
  Mask where(P pred, Mask m = kFullMask) const {
    Mask r = 0;
    for (int i = 0; i < kWarpSize; ++i)
      if (lane_active(m, i) && pred(v[static_cast<std::size_t>(i)])) r |= lane_bit(i);
    return r;
  }
};

// Elementwise arithmetic. These are *functional* helpers only; kernels must
// report the corresponding instruction cost through Warp::count_* calls
// (the Warp memory/shuffle/reduce APIs self-report).
template <class T>
LaneArray<T> operator+(const LaneArray<T>& a, const LaneArray<T>& b) {
  LaneArray<T> r;
  for (int i = 0; i < kWarpSize; ++i) r[i] = a[i] + b[i];
  return r;
}
template <class T>
LaneArray<T> operator-(const LaneArray<T>& a, const LaneArray<T>& b) {
  LaneArray<T> r;
  for (int i = 0; i < kWarpSize; ++i) r[i] = a[i] - b[i];
  return r;
}
template <class T>
LaneArray<T> operator*(const LaneArray<T>& a, const LaneArray<T>& b) {
  LaneArray<T> r;
  for (int i = 0; i < kWarpSize; ++i) r[i] = a[i] * b[i];
  return r;
}
template <class T>
LaneArray<T> operator+(const LaneArray<T>& a, T s) {
  LaneArray<T> r;
  for (int i = 0; i < kWarpSize; ++i) r[i] = a[i] + s;
  return r;
}
template <class T>
LaneArray<T> operator*(const LaneArray<T>& a, T s) {
  LaneArray<T> r;
  for (int i = 0; i < kWarpSize; ++i) r[i] = a[i] * s;
  return r;
}

/// Fused multiply-add across lanes: acc += a * b (the SpMV inner op).
template <class T>
void fma_into(LaneArray<T>& acc, const LaneArray<T>& a, const LaneArray<T>& b,
              Mask m) {
  for (int i = 0; i < kWarpSize; ++i)
    if (lane_active(m, i)) acc[i] += a[i] * b[i];
}

}  // namespace acsr::vgpu
