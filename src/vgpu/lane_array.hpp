// SIMT lane-lockstep primitives.
//
// The virtual GPU executes kernels one *warp* at a time; a LaneArray<T> is
// the value of one register across the 32 lanes of the current warp, and a
// Mask is the warp's activity mask. Writing kernels against these types
// makes divergence explicit (an iteration with a partial mask is an issued
// instruction with idle lanes), which is exactly what the timing model
// needs to observe.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <utility>

#include "common/check.hpp"

namespace acsr::vgpu {

inline constexpr int kWarpSize = 32;

using Mask = std::uint32_t;
inline constexpr Mask kFullMask = 0xffffffffu;

// Branchless SWAR popcount: without -mpopcnt, std::popcount lowers to a
// libgcc call, and this sits on the per-iteration metering path.
inline int active_lanes(Mask m) {
  m = m - ((m >> 1) & 0x55555555u);
  m = (m & 0x33333333u) + ((m >> 2) & 0x33333333u);
  return static_cast<int>((((m + (m >> 4)) & 0x0f0f0f0fu) * 0x01010101u) >>
                          24);
}
inline bool lane_active(Mask m, int lane) { return (m >> lane) & 1u; }
inline Mask lane_bit(int lane) { return Mask{1} << lane; }
/// Mask with the lowest n lanes active.
inline Mask first_lanes(int n) {
  return n >= kWarpSize ? kFullMask : ((Mask{1} << n) - 1u);
}
/// True when the active lanes of m are exactly lanes 0..popcount(m)-1
/// (the shape produced by first_lanes and by `tid < n` guards on iota
/// thread ids — every warp except a ragged grid edge).
inline bool is_prefix_mask(Mask m) { return (m & (m + 1u)) == 0; }

/// One register across the 32 lanes of a warp.
template <class T>
struct LaneArray {
  std::array<T, kWarpSize> v{};

  T& operator[](int lane) { return v[static_cast<std::size_t>(lane)]; }
  const T& operator[](int lane) const {
    return v[static_cast<std::size_t>(lane)];
  }

  static LaneArray filled(T x) {
    LaneArray r;
    r.v.fill(x);
    return r;
  }

  /// lane i gets start + i * step (thread-id style initialisation).
  static LaneArray iota(T start = T{0}, T step = T{1}) {
    LaneArray r;
    for (int i = 0; i < kWarpSize; ++i)
      r.v[static_cast<std::size_t>(i)] = static_cast<T>(start + step * static_cast<T>(i));
    return r;
  }

  template <class F>
  LaneArray<std::invoke_result_t<F, T>> map(F f) const {
    LaneArray<std::invoke_result_t<F, T>> r;
    for (int i = 0; i < kWarpSize; ++i) r[i] = f(v[static_cast<std::size_t>(i)]);
    return r;
  }

  /// Lanes where pred(value) holds, restricted to m.
  template <class P>
  Mask where(P pred, Mask m = kFullMask) const {
    Mask r = 0;
    for (int i = 0; i < kWarpSize; ++i)
      if (lane_active(m, i) && pred(v[static_cast<std::size_t>(i)])) r |= lane_bit(i);
    return r;
  }
};

/// Inclusive element range [first, last] touched by an affine access
/// idx[l] = base + l * step over the n-lane active prefix (step >= 0,
/// n >= 1). Templated on the index value domain: instantiated with
/// `long long` by the executor's analytic fast path (gather_affine /
/// scatter_affine / tex_affine in warp.hpp) and with `analysis::Sym` by
/// the static verifier's abstract interpreter, so the concrete and the
/// abstract machines share one definition of a gather's extent.
template <class V>
inline std::pair<V, V> affine_touch_range(const V& base, const V& step,
                                          int n) {
  return {base, base + step * V(n - 1)};
}

/// Detect an affine index pattern across the first n lanes:
/// idx[l] == base + l * step for l in [0, n). This is the shape of every
/// regular gather in the SpMV kernels — iota thread ids, the CSR
/// row-extent walk, ELL's column-major slots — and what Warp's analytic
/// fast path exploits (see docs/PERF.md). Lanes >= n are not inspected,
/// so inactive-lane garbage cannot affect the result.
template <class I>
inline bool affine_prefix(const LaneArray<I>& idx, int n, long long* base,
                          long long* step) {
  *base = static_cast<long long>(idx[0]);
  if (n <= 1) {
    *step = 0;
    return true;
  }
  const long long s =
      static_cast<long long>(idx[1]) - static_cast<long long>(idx[0]);
  for (int l = 2; l < n; ++l)
    if (static_cast<long long>(idx[l]) - static_cast<long long>(idx[l - 1]) !=
        s)
      return false;
  *step = s;
  return true;
}

/// {min, max} of idx over the active lanes of m. Requires m != 0. Feeds
/// the one-shot DeviceSpan::check_range validation of irregular gathers.
template <class I>
inline std::pair<long long, long long> lane_index_range(
    const LaneArray<I>& idx, Mask m) {
  if (m == kFullMask) {  // plain loop: unrolls/vectorizes, no scan chain
    long long lo = static_cast<long long>(idx[0]);
    long long hi = lo;
    for (int l = 1; l < kWarpSize; ++l) {
      const long long i = static_cast<long long>(idx[l]);
      lo = i < lo ? i : lo;
      hi = i > hi ? i : hi;
    }
    return {lo, hi};
  }
  long long lo = static_cast<long long>(idx[std::countr_zero(m)]);
  long long hi = lo;
  for (Mask rem = m & (m - 1); rem != 0; rem &= rem - 1) {
    const long long i = static_cast<long long>(idx[std::countr_zero(rem)]);
    lo = i < lo ? i : lo;
    hi = i > hi ? i : hi;
  }
  return {lo, hi};
}

// Elementwise arithmetic. These are *functional* helpers only; kernels must
// report the corresponding instruction cost through Warp::count_* calls
// (the Warp memory/shuffle/reduce APIs self-report).
template <class T>
LaneArray<T> operator+(const LaneArray<T>& a, const LaneArray<T>& b) {
  LaneArray<T> r;
  for (int i = 0; i < kWarpSize; ++i) r[i] = a[i] + b[i];
  return r;
}
template <class T>
LaneArray<T> operator-(const LaneArray<T>& a, const LaneArray<T>& b) {
  LaneArray<T> r;
  for (int i = 0; i < kWarpSize; ++i) r[i] = a[i] - b[i];
  return r;
}
template <class T>
LaneArray<T> operator*(const LaneArray<T>& a, const LaneArray<T>& b) {
  LaneArray<T> r;
  for (int i = 0; i < kWarpSize; ++i) r[i] = a[i] * b[i];
  return r;
}
template <class T>
LaneArray<T> operator+(const LaneArray<T>& a, T s) {
  LaneArray<T> r;
  for (int i = 0; i < kWarpSize; ++i) r[i] = a[i] + s;
  return r;
}
template <class T>
LaneArray<T> operator*(const LaneArray<T>& a, T s) {
  LaneArray<T> r;
  for (int i = 0; i < kWarpSize; ++i) r[i] = a[i] * s;
  return r;
}

/// Fused multiply-add across lanes: acc += a * b (the SpMV inner op).
template <class T>
void fma_into(LaneArray<T>& acc, const LaneArray<T>& a, const LaneArray<T>& b,
              Mask m) {
  if (m == kFullMask) {
    for (int i = 0; i < kWarpSize; ++i) acc[i] += a[i] * b[i];
    return;
  }
  for (Mask rem = m; rem != 0; rem &= rem - 1) {
    const int i = std::countr_zero(rem);
    acc[i] += a[i] * b[i];
  }
}

}  // namespace acsr::vgpu
