// Kernel execution records and timeline-composition helpers.
//
// Device::launch executes a kernel functionally and produces a KernelRun
// with a simulated duration and its roofline breakdown. Engines compose
// runs either sequentially (default-stream semantics) or concurrently
// (multi-stream semantics, used by the ACSR driver which launches one
// grid per bin).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "vgpu/counters.hpp"
#include "vgpu/device_spec.hpp"

namespace acsr::vgpu {

struct KernelRun {
  std::string name;
  Counters counters;

  // Roofline components (seconds).
  double issue_s = 0.0;    // warp-issue bandwidth bound
  double flop_s = 0.0;     // arithmetic-throughput bound
  double memory_s = 0.0;   // DRAM bound at this kernel's own occupancy
  double latency_s = 0.0;  // longest single-warp dependency chain
  double launch_s = 0.0;   // host-side launch overhead
  double dp_s = 0.0;       // device-runtime launch handling

  double dram_bytes = 0.0;  // DRAM traffic after all cache modelling

  double duration_s = 0.0;

  // Sanitizer findings recorded during this launch (0 unless the run was
  // instrumented via ACSR_SANITIZE / Sanitizer::set_enabled).
  std::uint64_t sanitizer_reports = 0;

  /// The binding roofline term (excluding overheads), for reports.
  double bound_s() const {
    double m = issue_s;
    if (flop_s > m) m = flop_s;
    if (memory_s > m) m = memory_s;
    if (latency_s > m) m = latency_s;
    return m;
  }
};

/// Sum of durations: kernels issued back-to-back on one stream.
double combine_sequential(const std::vector<KernelRun>& runs);

/// Concurrent-kernel model: the grids share the device, so each resource
/// dimension (issue bandwidth, flop throughput, DRAM) is the *sum* of the
/// kernels' demands, the latency bound is the max, and host launches
/// pipeline at a small per-launch gap. This is how the ACSR driver's
/// per-bin grids (issued on independent streams) overlap on real Fermi+
/// hardware.
double combine_concurrent(const std::vector<KernelRun>& runs,
                          const DeviceSpec& spec);

}  // namespace acsr::vgpu
