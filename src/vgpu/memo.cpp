#include "vgpu/memo.hpp"

#include <sstream>

#include "prof/prof.hpp"
#include "vgpu/device.hpp"
#include "vgpu/fault.hpp"
#include "vgpu/sanitizer.hpp"

namespace acsr::vgpu::memo {

bool plane_bypassed() {
  return sanitizer_enabled() || reference_metering() ||
         prof::profiler_enabled() || fault_injection_enabled();
}

std::string spec_fingerprint(const DeviceSpec& s) {
  std::ostringstream os;
  os << s.name << '/' << s.compute_major << '.' << s.compute_minor << '/'
     << s.sm_count << 'x' << s.cores_per_sm << '@' << s.clock_ghz << '/'
     << s.dram_bandwidth_gbs << ',' << s.pcie_bandwidth_gbs << ','
     << s.global_mem_bytes << ',' << s.l2_bytes << '/' << s.warp_size << ','
     << s.max_threads_per_block << ',' << s.max_resident_warps_per_sm << ','
     << s.shared_mem_per_block_bytes << '/' << s.issue_slots_per_sm << ','
     << s.sp_flops_per_cycle_per_sm << ',' << s.dp_throughput_ratio << '/'
     << s.tex_cache_bytes_per_sm << ',' << s.tex_reuse_factor << ','
     << s.tex_min_miss << ',' << s.tex_max_miss << '/'
     << s.gmem_latency_cycles << ',' << s.mem_pipeline_cycles << ','
     << s.alu_latency_cycles << '/' << s.host_launch_overhead_s << ','
     << s.child_launch_overhead_s << ',' << s.pending_launch_limit << ','
     << s.over_limit_penalty_s << ',' << s.async_launch_gap_s << ','
     << s.transfer_setup_s << ',' << s.multi_gpu_sync_s << '/'
     << s.dram_efficiency << ',' << s.saturation_warps_per_sm;
  return os.str();
}

std::uint64_t next_instance_id() {
  static std::uint64_t n = 0;
  return ++n;
}

MemoCache& MemoCache::instance() {
  static MemoCache cache;
  return cache;
}

MemoEntry* MemoCache::find(const std::string& key) {
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  return &it->second;
}

MemoEntry& MemoCache::put(const std::string& key, MemoEntry entry) {
  return map_[key] = std::move(entry);
}

void MemoCache::erase_prefix(const std::string& prefix) {
  for (auto it = map_.begin(); it != map_.end();) {
    if (it->first.compare(0, prefix.size(), prefix) == 0) {
      it = map_.erase(it);
      ++stats_.invalidations;
    } else {
      ++it;
    }
  }
}

void MemoCache::clear() { map_.clear(); }

SessionScope::SessionScope(Device& dev, Session& s)
    : dev_(dev), prev_(dev.memo_session()) {
  dev_.set_memo_session(&s);
}

SessionScope::~SessionScope() { dev_.set_memo_session(prev_); }

bool Memoizer::session_active(const Device& dev) {
  return dev.memo_session() != nullptr;
}

}  // namespace acsr::vgpu::memo
