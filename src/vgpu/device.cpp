#include "vgpu/device.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"
#include "prof/prof.hpp"
#include "vgpu/memo.hpp"
#include "vgpu/sanitizer.hpp"

namespace acsr::vgpu {

namespace {

/// Convert accumulated counters into the roofline time breakdown.
KernelRun finalize(const LaunchConfig& cfg, const DeviceSpec& spec,
                   const KernelEnv& env) {
  KernelRun run;
  run.name = cfg.name;
  run.counters = env.counters;
  const Counters& c = env.counters;

  const double clock = spec.clock_hz();
  const double sm = static_cast<double>(spec.sm_count);

  // Warp-issue bandwidth: the most loaded SM bounds the kernel.
  double max_sm_cycles = 0.0;
  for (double v : env.sm_issue_cycles) max_sm_cycles = std::max(max_sm_cycles, v);
  run.issue_s = max_sm_cycles / spec.issue_slots_per_sm / clock;

  // Arithmetic throughput.
  const double sp_rate = spec.sp_flops_per_cycle_per_sm * sm * clock;
  const double dp_rate = sp_rate * spec.dp_throughput_ratio;
  run.flop_s = static_cast<double>(c.sp_flops) / sp_rate +
               static_cast<double>(c.dp_flops) / dp_rate;

  // DRAM bandwidth: regular global traffic plus the texture misses.
  const double cache_total =
      static_cast<double>(spec.tex_cache_bytes_per_sm) * sm;
  double miss = spec.tex_max_miss;
  if (env.tex_footprint_bytes > 0) {
    miss = static_cast<double>(env.tex_footprint_bytes) /
           (cache_total * spec.tex_reuse_factor);
    miss = std::clamp(miss, spec.tex_min_miss, spec.tex_max_miss);
  }
  run.dram_bytes = static_cast<double>(c.gmem_bytes) +
                   static_cast<double>(c.tex_bytes) * miss;
  // Under-occupied kernels cannot keep DRAM saturated (Little's law): the
  // achievable bandwidth scales with the warps available to issue requests.
  const double util = std::min(
      1.0, static_cast<double>(c.warps) /
               (sm * spec.saturation_warps_per_sm));
  run.memory_s = run.dram_bytes / (spec.dram_bandwidth_gbs * 1e9 *
                                   spec.dram_efficiency *
                                   std::max(util, 1.0 / 64.0));

  // Latency bound: when the grid is too small to hide the longest warp's
  // dependency chain, that chain is the kernel duration.
  run.latency_s = env.max_warp_latency_cycles / clock;

  // Dynamic-parallelism launch handling: the device runtime enqueues
  // children in parallel across SMXs, but launches beyond the pending
  // limit force memory reservation and serialise.
  if (c.child_launches > 0) {
    run.dp_s = static_cast<double>(c.child_launches) *
               spec.child_launch_overhead_s;
    const auto limit = static_cast<std::uint64_t>(spec.pending_launch_limit);
    if (c.child_launches > limit) {
      run.dp_s += static_cast<double>(c.child_launches - limit) *
                  spec.over_limit_penalty_s;
    }
  }

  run.launch_s = spec.host_launch_overhead_s;
  run.duration_s = run.launch_s + run.bound_s() + run.dp_s;
  return run;
}

}  // namespace

KernelRun Device::launch(const LaunchConfig& cfg, KernelRef fn,
                         std::unordered_set<std::uint64_t>* group_l2) {
  ACSR_CHECK_MSG(cfg.grid_dim >= 1, "empty grid for kernel " << cfg.name);
  ACSR_CHECK_MSG(cfg.block_dim >= 1 &&
                     cfg.block_dim <= spec_.max_threads_per_block,
                 "bad block_dim " << cfg.block_dim << " for " << cfg.name);

  // Memoized replay (vgpu/memo.hpp): the metering for this launch is
  // cached — re-run the kernel value-only and return the cached record.
  // A session is never active while the sanitizer, profiler, reference
  // metering or fault injection own the run (memo::plane_bypassed()).
  if (memo_session_ != nullptr &&
      memo_session_->kind == memo::Session::Kind::kReplay) [[unlikely]]
    return memo_replay(cfg, fn);

  // Fault hook, before the sanitizer's begin_launch so a throw here cannot
  // leave an unbalanced sanitizer epoch. Counts only host-side launches:
  // dynamic-parallelism children below are part of this one logical launch.
  if (fault_injection_enabled()) [[unlikely]] {
    if (lost_) fail_lost("launch of '" + cfg.name + "'");
    const LaunchFault f =
        FaultInjector::instance().on_launch(spec_.name, cfg.name, &arena_);
    switch (f.action) {
      case LaunchFault::Action::kTransient:
        throw TransientFault(spec_.name, cfg.name, f.detail);
      case LaunchFault::Action::kLost:
        lost_ = true;
        fail_lost("launch of '" + cfg.name + "'");
      case LaunchFault::Action::kCorruption:
        throw DataCorruption(spec_.name, f.buffer, f.detail);
      case LaunchFault::Action::kNone:
        break;  // no fault, or a silent bit flip already applied
    }
  }

  KernelEnv env;
  env.spec = &spec_;
  env.group_l2 = group_l2;
  env.sm_issue_cycles.assign(static_cast<std::size_t>(spec_.sm_count), 0.0);

  // Size each warp's cache share from the grid's occupancy.
  const long long warps_per_block = (cfg.block_dim + 31) / 32;
  const long long grid_warps = cfg.grid_dim * warps_per_block;
  const long long resident = std::min<long long>(
      grid_warps, static_cast<long long>(spec_.sm_count) *
                      spec_.max_resident_warps_per_sm);
  auto pow2_floor_clamped = [](double v, std::size_t lo, std::size_t hi) {
    std::size_t w = lo;
    while (w * 2 <= hi && static_cast<double>(w * 2) <= v) w *= 2;
    return w;
  };
  env.gmem_cache_ways = pow2_floor_clamped(
      static_cast<double>(spec_.l2_bytes) /
          (32.0 * static_cast<double>(std::max<long long>(1, resident))),
      4, 256);
  const long long resident_per_sm = std::min<long long>(
      (grid_warps + spec_.sm_count - 1) / spec_.sm_count,
      spec_.max_resident_warps_per_sm);
  env.tex_cache_ways = pow2_floor_clamped(
      static_cast<double>(spec_.tex_cache_bytes_per_sm) /
          (32.0 *
           static_cast<double>(std::max<long long>(1, resident_per_sm))),
      8, 256);

  // Sanitizer epoch: one racecheck write-set spans the parent grid and all
  // of its dynamic-parallelism descendants (they are one logical launch).
  // The decision is captured once here; Warp reads env.sanitize instead of
  // consulting the singleton per access.
  Sanitizer& san = Sanitizer::instance();
  const bool sanitize = san.enabled();
  env.sanitize = sanitize;
  env.fast_path = !sanitize && !reference_metering();
  if (sanitize) san.begin_launch(cfg.name);

  // Profiler capture. Strictly observational: lane tallies go to a side
  // structure (never into env.counters), and the sample is recorded after
  // finalize() so the KernelRun it stores is the one the caller gets.
  const bool profiling = prof::profiler_enabled();
  prof::LaneCounters lanes;
  std::vector<prof::ChildGrid> child_info;
  std::uint64_t t0_ns = 0;
  if (profiling) [[unlikely]] {
    env.lane_prof = &lanes;
    t0_ns = prof::host_now_ns();
  }

  auto run_grid = [&](const LaunchConfig& gc, const KernelRef& gf) {
    for (long long b = 0; b < gc.grid_dim; ++b) {
      const int sm =
          static_cast<int>(env.next_block_seq++ %
                           static_cast<long long>(spec_.sm_count));
      Block blk(env, b, gc.block_dim, gc.grid_dim, sm);
      gf(blk);
    }
  };

  // Work list of device-side launches enqueued by the parent grid or its
  // descendants. The parent runs directly through the non-owning KernelRef
  // (no KernelFn copy); children are *moved* off pending_children, so each
  // enqueued KernelFn is materialised exactly once (at launch_child).
  std::vector<ChildLaunch> work;
  auto drain_children = [&] {
    if (env.pending_children.empty()) return;
    work.reserve(work.size() + env.pending_children.size());
    for (auto& ch : env.pending_children) work.push_back(std::move(ch));
    env.pending_children.clear();
  };

  if (sanitize) san.begin_grid(0, cfg.name);
  run_grid(cfg, fn);
  drain_children();
  // Index-based loop because execution appends to `work`.
  for (std::size_t wi = 0; wi < work.size(); ++wi) {
    // Move out: executing the grid may reallocate `work`.
    const ChildLaunch item = std::move(work[wi]);
    if (sanitize) san.begin_grid(static_cast<int>(wi) + 1, item.cfg.name);
    ACSR_CHECK_MSG(spec_.supports_dynamic_parallelism(),
                   "device-side launch on " << spec_.name << " (CC < 3.5)");
    env.counters.child_blocks +=
        static_cast<std::uint64_t>(item.cfg.grid_dim);
    if (profiling) [[unlikely]]
      child_info.push_back(
          {item.cfg.name, item.cfg.grid_dim, item.cfg.block_dim});
    run_grid(item.cfg, KernelRef(item.fn));
    drain_children();
  }

  KernelRun run = finalize(cfg, spec_, env);
  if (sanitize)
    run.sanitizer_reports = static_cast<std::uint64_t>(san.end_launch());
  if (profiling) [[unlikely]] {
    std::vector<double> sm_s(env.sm_issue_cycles.size());
    for (std::size_t i = 0; i < sm_s.size(); ++i)
      sm_s[i] = env.sm_issue_cycles[i] / spec_.issue_slots_per_sm /
                spec_.clock_hz();
    prof::Profiler::instance().record_launch(
        spec_.name, run, lanes, std::move(child_info),
        prof::host_now_ns() - t0_ns, std::move(sm_s));
  }
  if (memo_session_ != nullptr) [[unlikely]]
    memo_session_->entry->launches.push_back(
        {cfg.name, cfg.grid_dim, cfg.block_dim, run});
  return run;
}

KernelRun Device::memo_replay(const LaunchConfig& cfg, const KernelRef& fn) {
  memo::Session& sess = *memo_session_;
  ACSR_CHECK_MSG(sess.cursor < sess.entry->launches.size(),
                 "memo replay has no record left for kernel '" << cfg.name
                                                               << "'");
  const memo::LaunchRecord& rec = sess.entry->launches[sess.cursor++];
  ACSR_CHECK_MSG(rec.name == cfg.name && rec.grid_dim == cfg.grid_dim &&
                     rec.block_dim == cfg.block_dim,
                 "memo replay mismatch: cached '"
                     << rec.name << "' (" << rec.grid_dim << 'x'
                     << rec.block_dim << ") vs launched '" << cfg.name
                     << "' (" << cfg.grid_dim << 'x' << cfg.block_dim
                     << ')');

  // Value plane only: the same grid walk as the metered path (including
  // dynamic-parallelism children, which belong to this logical launch),
  // with every probe/charge skipped via env.value_only.
  KernelEnv env;
  env.spec = &spec_;
  // No sm_issue_cycles allocation: Warp::finish / Block::sync return early
  // under value_only, so nothing indexes it during replay.
  env.sanitize = false;
  env.fast_path = true;
  env.value_only = true;

  auto run_grid = [&](const LaunchConfig& gc, const KernelRef& gf) {
    for (long long b = 0; b < gc.grid_dim; ++b) {
      Block blk(env, b, gc.block_dim, gc.grid_dim, 0);
      gf(blk);
    }
  };
  std::vector<ChildLaunch> work;
  auto drain_children = [&] {
    if (env.pending_children.empty()) return;
    work.reserve(work.size() + env.pending_children.size());
    for (auto& ch : env.pending_children) work.push_back(std::move(ch));
    env.pending_children.clear();
  };
  run_grid(cfg, fn);
  drain_children();
  for (std::size_t wi = 0; wi < work.size(); ++wi) {
    const ChildLaunch item = std::move(work[wi]);
    run_grid(item.cfg, KernelRef(item.fn));
    drain_children();
  }
  return rec.run;
}

}  // namespace acsr::vgpu
