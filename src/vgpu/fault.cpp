#include "vgpu/fault.hpp"

#include <cstdlib>
#include <sstream>

#include "common/check.hpp"

namespace acsr::vgpu {

namespace {

// splitmix64: a deterministic, well-mixed hash for flip-target and flip-bit
// choice. Same generator family the fuzz harness seeds std::mt19937_64 from.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

struct KindSite {
  FaultKind kind;
  FaultSite site;
};

KindSite parse_kind(const std::string& kind, const std::string& site,
                    const std::string& clause) {
  struct Entry {
    const char* kind;
    const char* site;
    KindSite value;
  };
  static constexpr Entry kTable[] = {
      {"oom", "alloc", {FaultKind::kAllocOom, FaultSite::kAlloc}},
      {"transient", "launch",
       {FaultKind::kLaunchTransient, FaultSite::kLaunch}},
      {"ecc", "launch", {FaultKind::kEccFlip, FaultSite::kLaunch}},
      {"corrupt", "transfer",
       {FaultKind::kTransferCorrupt, FaultSite::kTransfer}},
      {"stall", "transfer",
       {FaultKind::kTransferStall, FaultSite::kTransfer}},
      {"lost", "launch", {FaultKind::kDeviceLost, FaultSite::kLaunch}},
      {"lost", "transfer", {FaultKind::kDeviceLost, FaultSite::kTransfer}},
      {"lost", "alloc", {FaultKind::kDeviceLost, FaultSite::kAlloc}},
      {"io_transient", "read", {FaultKind::kIoTransient, FaultSite::kRead}},
      {"io_timeout", "read", {FaultKind::kIoTimeout, FaultSite::kRead}},
      {"io_checksum", "read", {FaultKind::kIoChecksum, FaultSite::kRead}},
      {"io_degrade", "read", {FaultKind::kIoDegrade, FaultSite::kRead}},
  };
  for (const Entry& e : kTable)
    if (kind == e.kind && site == e.site) return e.value;
  ACSR_REQUIRE(false, "ACSR_FAULTS: unknown fault '" << kind << "@" << site
                                                     << "' in clause '"
                                                     << clause << "'");
}

long long parse_ll(const std::string& text, const std::string& clause,
                   const char* what) {
  std::size_t used = 0;
  long long v = 0;
  try {
    v = std::stoll(text, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  ACSR_REQUIRE(used == text.size() && !text.empty() && v > 0,
               "ACSR_FAULTS: bad " << what << " '" << text << "' in clause '"
                                   << clause << "' (want a positive integer)");
  return v;
}

double parse_f(const std::string& text, const std::string& clause,
               const char* what) {
  std::size_t used = 0;
  double v = 0.0;
  try {
    v = std::stod(text, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  ACSR_REQUIRE(used == text.size() && !text.empty() && v > 0.0,
               "ACSR_FAULTS: bad " << what << " '" << text << "' in clause '"
                                   << clause << "' (want a positive number)");
  return v;
}

}  // namespace

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kAllocOom: return "oom";
    case FaultKind::kLaunchTransient: return "transient";
    case FaultKind::kEccFlip: return "ecc";
    case FaultKind::kTransferCorrupt: return "corrupt";
    case FaultKind::kTransferStall: return "stall";
    case FaultKind::kDeviceLost: return "lost";
    case FaultKind::kIoTransient: return "io_transient";
    case FaultKind::kIoTimeout: return "io_timeout";
    case FaultKind::kIoChecksum: return "io_checksum";
    case FaultKind::kIoDegrade: return "io_degrade";
  }
  return "unknown";
}

FaultInjector::FaultInjector() {
  const char* plan = std::getenv("ACSR_FAULTS");
  if (plan != nullptr && plan[0] != '\0') configure(plan);
}

FaultInjector& FaultInjector::instance() {
  static FaultInjector f;
  return f;
}

// clause := kind '@' site '#' N ['*' K] (':' key '=' value)*
void FaultInjector::configure(const std::string& plan) {
  std::vector<FaultClause> parsed;
  std::istringstream ps(plan);
  std::string clause;
  while (std::getline(ps, clause, ';')) {
    if (clause.empty()) continue;
    const std::size_t at_pos = clause.find('@');
    const std::size_t hash_pos = clause.find('#', at_pos + 1);
    ACSR_REQUIRE(at_pos != std::string::npos && hash_pos != std::string::npos,
                 "ACSR_FAULTS: clause '"
                     << clause << "' is not of the form kind@site#N[*K][:k=v]");
    const std::string kind = clause.substr(0, at_pos);
    const std::string site = clause.substr(at_pos + 1, hash_pos - at_pos - 1);

    FaultClause c;
    const KindSite ks = parse_kind(kind, site, clause);
    c.kind = ks.kind;
    c.site = ks.site;

    std::string rest = clause.substr(hash_pos + 1);
    std::size_t opt_pos = rest.find(':');
    std::string index = rest.substr(0, opt_pos);
    if (const std::size_t star = index.find('*'); star != std::string::npos) {
      c.count = parse_ll(index.substr(star + 1), clause, "repeat count");
      index = index.substr(0, star);
    }
    c.at = parse_ll(index, clause, "op index");

    while (opt_pos != std::string::npos) {
      const std::size_t next = rest.find(':', opt_pos + 1);
      const std::string opt =
          rest.substr(opt_pos + 1, next == std::string::npos
                                       ? std::string::npos
                                       : next - opt_pos - 1);
      const std::size_t eq = opt.find('=');
      ACSR_REQUIRE(eq != std::string::npos,
                   "ACSR_FAULTS: option '" << opt << "' in clause '" << clause
                                           << "' is not key=value");
      const std::string key = opt.substr(0, eq);
      const std::string val = opt.substr(eq + 1);
      if (key == "seed") {
        c.seed =
            static_cast<std::uint64_t>(parse_ll(val, clause, "seed"));
      } else if (key == "ms") {
        c.stall_s = static_cast<double>(parse_ll(val, clause, "ms")) * 1e-3;
      } else if (key == "x") {
        c.factor = parse_f(val, clause, "x");
      } else if (key == "silent") {
        c.silent = val != "0";
      } else {
        ACSR_REQUIRE(false, "ACSR_FAULTS: unknown option '"
                                << key << "' in clause '" << clause << "'");
      }
      opt_pos = next;
    }
    parsed.push_back(c);
  }

  plan_ = std::move(parsed);
  events_.clear();
  alloc_ops_ = launch_ops_ = transfer_ops_ = read_ops_ = 0;
  enabled_ = !plan_.empty();
  detail::g_fault_injection_enabled = enabled_;
}

void FaultInjector::disable() {
  plan_.clear();
  events_.clear();
  alloc_ops_ = launch_ops_ = transfer_ops_ = read_ops_ = 0;
  enabled_ = false;
  detail::g_fault_injection_enabled = false;
}

std::size_t FaultInjector::count(FaultKind k) const {
  std::size_t n = 0;
  for (const FaultEvent& e : events_)
    if (e.kind == k) ++n;
  return n;
}

const FaultClause* FaultInjector::match(long long& op_counter, FaultSite site,
                                        FaultKind* matched) {
  const long long op = ++op_counter;
  for (const FaultClause& c : plan_) {
    if (c.site != site) continue;
    if (op >= c.at && op < c.at + c.count) {
      *matched = c.kind;
      return &c;
    }
  }
  return nullptr;
}

void FaultInjector::record(FaultKind kind, long long op_index,
                           const std::string& device, const char* site,
                           const std::string& where, const std::string& buffer,
                           const std::string& detail) {
  FaultEvent e;
  e.kind = kind;
  e.op_index = op_index;
  e.device = device;
  e.site = site;
  e.where = where;
  e.buffer = buffer;
  e.detail = detail;
  events_.push_back(std::move(e));
}

bool FaultInjector::on_alloc(const std::string& device,
                             const std::string& what, std::size_t bytes) {
  FaultKind kind{};
  const FaultClause* c = match(alloc_ops_, FaultSite::kAlloc, &kind);
  if (c == nullptr) return false;
  std::ostringstream os;
  os << "injected " << to_string(kind) << " on alloc #" << alloc_ops_ << " ('"
     << what << "', " << bytes << " B) on device '" << device << "'";
  record(kind, alloc_ops_, device, "alloc", what, "", os.str());
  // Device loss at the alloc site also surfaces as an allocation failure;
  // the device itself is marked lost by the caller when kind == lost, but
  // MemoryArena has no Device back-pointer, so alloc-site loss degrades to
  // a plain injected OOM. The launch/transfer sites model true loss.
  return true;
}

std::string FaultInjector::flip_bit(const FaultClause& c, long long op_index,
                                    const void* arena_tag,
                                    std::string* detail) {
  // Collect the live allocations belonging to this device (matching arena
  // tag). Registration order is address order (std::map), so the pick is
  // deterministic for a given build sequence.
  std::vector<const Target*> mine;
  for (const auto& [addr, t] : targets_)
    if (t.arena_tag == arena_tag && t.bytes > 0) mine.push_back(&t);
  if (mine.empty()) {
    *detail = "no live allocations to corrupt";
    return "";
  }
  const std::uint64_t h =
      mix64(c.seed ^ mix64(static_cast<std::uint64_t>(op_index)));
  const Target& t = *mine[h % mine.size()];
  const std::size_t byte = static_cast<std::size_t>(mix64(h) % t.bytes);
  const unsigned bit = static_cast<unsigned>(mix64(h ^ 0xecc) % 8);
  static_cast<unsigned char*>(t.data)[byte] ^= (1u << bit);
  std::ostringstream os;
  os << "bit " << bit << " of byte " << byte << " in '" << t.name << "' ("
     << t.bytes << " B)";
  *detail = os.str();
  return t.name;
}

LaunchFault FaultInjector::on_launch(const std::string& device,
                                     const std::string& kernel,
                                     const void* arena_tag) {
  LaunchFault out;
  FaultKind kind{};
  const FaultClause* c = match(launch_ops_, FaultSite::kLaunch, &kind);
  if (c == nullptr) return out;

  std::ostringstream os;
  os << "injected " << to_string(kind) << " on launch #" << launch_ops_
     << " of kernel '" << kernel << "' on device '" << device << "'";
  std::string buffer;
  switch (kind) {
    case FaultKind::kLaunchTransient:
      out.action = LaunchFault::Action::kTransient;
      break;
    case FaultKind::kDeviceLost:
      out.action = LaunchFault::Action::kLost;
      break;
    case FaultKind::kEccFlip: {
      std::string flip_detail;
      buffer = flip_bit(*c, launch_ops_, arena_tag, &flip_detail);
      os << ": " << flip_detail;
      // A flip with no live target, or a silent flip, raises no signal.
      out.action = (buffer.empty() || c->silent)
                       ? LaunchFault::Action::kNone
                       : LaunchFault::Action::kCorruption;
      break;
    }
    default:
      break;
  }
  out.buffer = buffer;
  out.detail = os.str();
  record(kind, launch_ops_, device, "launch", kernel, buffer, out.detail);
  return out;
}

TransferFault FaultInjector::on_transfer(const std::string& device,
                                         std::size_t bytes,
                                         const void* arena_tag) {
  TransferFault out;
  FaultKind kind{};
  const FaultClause* c = match(transfer_ops_, FaultSite::kTransfer, &kind);
  if (c == nullptr) return out;

  std::ostringstream os;
  os << "injected " << to_string(kind) << " on transfer #" << transfer_ops_
     << " (" << bytes << " B) on device '" << device << "'";
  std::string buffer;
  switch (kind) {
    case FaultKind::kTransferStall:
      out.stall_s = c->stall_s;
      os << ": +" << c->stall_s * 1e3 << " ms";
      break;
    case FaultKind::kDeviceLost:
      out.lost = true;
      break;
    case FaultKind::kTransferCorrupt: {
      std::string flip_detail;
      buffer = flip_bit(*c, transfer_ops_, arena_tag, &flip_detail);
      os << ": " << flip_detail;
      out.corrupt = !buffer.empty() && !c->silent;
      break;
    }
    default:
      break;
  }
  out.buffer = buffer;
  out.detail = os.str();
  std::ostringstream where;
  where << bytes << " B transfer";
  record(kind, transfer_ops_, device, "transfer", where.str(), buffer,
         out.detail);
  return out;
}

ReadFault FaultInjector::on_read(const std::string& drive,
                                 const std::string& what, std::size_t bytes) {
  ReadFault out;
  FaultKind kind{};
  const FaultClause* c = match(read_ops_, FaultSite::kRead, &kind);
  if (c == nullptr) return out;

  std::ostringstream os;
  os << "injected " << to_string(kind) << " on read #" << read_ops_ << " ('"
     << what << "', " << bytes << " B) from drive '" << drive << "'";
  switch (kind) {
    case FaultKind::kIoTransient:
      out.action = ReadFault::Action::kTransient;
      break;
    case FaultKind::kIoTimeout:
      out.action = ReadFault::Action::kTimeout;
      out.timeout_s = c->stall_s;
      os << ": hang " << c->stall_s * 1e3 << " ms";
      break;
    case FaultKind::kIoChecksum:
      // The flip itself happens in the delivered chunk bytes at the tier
      // (the injector has no view of them); hand back the seed material.
      out.corrupt = true;
      out.seed = c->seed ^ mix64(static_cast<std::uint64_t>(read_ops_));
      break;
    case FaultKind::kIoDegrade:
      out.slow = c->factor;
      os << ": service time x" << c->factor;
      break;
    default:
      break;
  }
  out.detail = os.str();
  record(kind, read_ops_, drive, "read", what, "", out.detail);
  return out;
}

void FaultInjector::register_buffer(std::uint64_t addr, void* data,
                                    std::size_t bytes, const std::string& name,
                                    const void* arena_tag) {
  Target t;
  t.data = data;
  t.bytes = bytes;
  t.name = name;
  t.arena_tag = arena_tag;
  targets_[addr] = std::move(t);
}

void FaultInjector::unregister_buffer(std::uint64_t addr) {
  targets_.erase(addr);
}

}  // namespace acsr::vgpu
