// Simulated device memory.
//
// A DeviceBuffer<T> is backed by host storage (so functional execution is
// just array access) but carries a *device virtual address* assigned by the
// owning arena. The address is what the coalescing model uses to count
// 128-byte transactions, and the arena enforces the device's capacity so
// the paper's Ø (out-of-memory) table entries reproduce.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "vgpu/fault.hpp"
#include "vgpu/sanitizer.hpp"

namespace acsr::vgpu {

/// Thrown when an allocation exceeds the simulated device capacity.
/// Benches catch this to print the paper's Ø entries.
class DeviceOom : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Non-owning view of device memory; the unit kernels read and write.
template <class T>
class DeviceSpan {
 public:
  DeviceSpan() = default;
  DeviceSpan(T* data, std::size_t size, std::uint64_t addr)
      : data_(data), size_(size), addr_(addr) {}

  // Converting constructor DeviceSpan<T> -> DeviceSpan<const T>.
  template <class U>
    requires(std::is_same_v<const U, T>)
  DeviceSpan(const DeviceSpan<U>& o)  // NOLINT(google-explicit-constructor)
      : data_(o.data()), size_(o.size()), addr_(o.addr()) {}

  T& operator[](std::size_t i) const {
    // Failure path outlined (cold, noinline): keeps every indexing site —
    // the executor's per-lane gather loops above all — down to a compare
    // and a never-taken branch, with no diagnostic-formatting code inflating
    // the hot loop.
    if (i >= size_) [[unlikely]]
      fail_out_of_bounds(static_cast<long long>(i), static_cast<long long>(i));
    return data_[i];
  }

  /// One-shot bounds validation for a gather touching elements lo..hi
  /// (inclusive, lo <= hi): the fast path's replacement for 32 per-element
  /// operator[] checks, with the same failure mode (an InvariantError
  /// naming the buffer). Per-element checks — and the sanitizer's per-byte
  /// shadow validation — remain on the instrumented path under
  /// ACSR_SANITIZE.
  void check_range(long long lo, long long hi) const {
    if (lo < 0 || static_cast<std::uint64_t>(hi) >= size_) [[unlikely]]
      fail_out_of_bounds(lo, hi);
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  T* data() const { return data_; }
  std::uint64_t addr() const { return addr_; }
  std::uint64_t addr_of(std::size_t i) const {
    return addr_ + i * sizeof(T);
  }

  DeviceSpan subspan(std::size_t offset, std::size_t count) const {
    ACSR_CHECK_MSG(offset <= size_ && count <= size_ - offset,
                   "subspan [" << offset << ", " << offset + count
                               << ") escapes span of " << size_
                               << " (buffer '"
                               << Sanitizer::instance().buffer_name(addr_)
                               << "')");
    // Under the sanitizer, also validate against the shadow state: the
    // sub-range must still lie inside a *live* allocation (catches
    // subspans taken through spans that outlived their buffer).
    if (sanitizer_enabled())
      Sanitizer::instance().check_subspan(addr_ + offset * sizeof(T),
                                          count * sizeof(T));
    return DeviceSpan(data_ + offset, count, addr_ + offset * sizeof(T));
  }

 private:
  [[noreturn]] [[gnu::cold]] [[gnu::noinline]] void fail_out_of_bounds(
      long long lo, long long hi) const {
    std::ostringstream os;
    os << "device access out of bounds: ";
    if (lo == hi)
      os << lo << " >= " << size_;
    else
      os << "[" << lo << ", " << hi << "] outside span of " << size_;
    os << " (buffer '" << Sanitizer::instance().buffer_name(addr_) << "')";
    ::acsr::detail::throw_invariant("device index within span", __FILE__,
                                    __LINE__, os.str());
  }

  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::uint64_t addr_ = 0;
};

/// Capacity accounting + virtual address assignment for one device.
///
/// Every arena owns a process-unique slice of the virtual address space
/// (16 TiB apart), so buffer addresses never collide across devices or
/// across arenas created by successive tests. This is what lets the
/// sanitizer keep one global shadow registry, and it mirrors real unified
/// virtual addressing, where each device's allocations are disjoint.
class MemoryArena {
 public:
  explicit MemoryArena(std::size_t capacity_bytes)
      : capacity_(capacity_bytes), next_addr_(take_address_slice()) {}

  std::uint64_t allocate(std::size_t bytes, const std::string& what) {
    const std::size_t aligned = (bytes + 255) & ~std::size_t{255};
    if (fault_injection_enabled() &&
        FaultInjector::instance().on_alloc(owner_, what, bytes)) [[unlikely]] {
      throw DeviceOom("injected device out of memory allocating " +
                      std::to_string(bytes) + " B for '" + what +
                      "' on device '" + owner_ + "'");
    }
    if (allocated_ + aligned > capacity_) {
      throw DeviceOom("device out of memory allocating " +
                      std::to_string(bytes) + " B for '" + what +
                      "' (in use " + std::to_string(allocated_) + " of " +
                      std::to_string(capacity_) + " B)");
    }
    allocated_ += aligned;
    const std::uint64_t addr = next_addr_;
    next_addr_ += aligned;
    // Register with the sanitizer's allocation registry (always on: it is
    // what lets span diagnostics name the buffer; per-byte shadow state is
    // only materialised when the sanitizer is enabled).
    Sanitizer::instance().on_alloc(addr, bytes, what);
    return addr;
  }

  void release(std::size_t bytes) {
    const std::size_t aligned = (bytes + 255) & ~std::size_t{255};
    ACSR_CHECK(aligned <= allocated_);
    allocated_ -= aligned;
  }

  /// Address-aware release: feeds the sanitizer's shadow state (catching
  /// double/invalid frees) and only adjusts the capacity accounting for
  /// frees of live allocations, so a reported double-free cannot corrupt
  /// the arena.
  void release(std::uint64_t addr, std::size_t bytes,
               const std::string& what) {
    if (bytes > 0 && !Sanitizer::instance().on_free(addr, bytes, what))
      return;
    release(bytes);
  }

  std::size_t allocated() const { return allocated_; }
  std::size_t capacity() const { return capacity_; }
  void set_capacity(std::size_t bytes) { capacity_ = bytes; }

  /// Name of the owning device, used for fault-event attribution. Bare
  /// arenas (tests) keep the "?" default; Device sets its spec name.
  void set_owner(std::string name) { owner_ = std::move(name); }
  const std::string& owner() const { return owner_; }

 private:
  // Start away from zero so address 0 never aliases a real buffer, and
  // 16 TiB apart per arena so addresses are process-unique.
  static std::uint64_t take_address_slice() {
    static std::uint64_t next_slice = 0;
    return 0x10000 + 0x100000000000ULL * next_slice++;
  }

  std::size_t capacity_;
  std::size_t allocated_ = 0;
  std::uint64_t next_addr_;
  std::string owner_ = "?";
};

/// Owning device allocation. Movable, not copyable (R.20-style ownership).
template <class T>
class DeviceBuffer {
 public:
  DeviceBuffer() = default;

  DeviceBuffer(MemoryArena& arena, std::size_t n, std::string name)
      : arena_(&arena),
        name_(std::move(name)),
        addr_(arena.allocate(n * sizeof(T), name_)),
        data_(n) {
    // Register the backing bytes as an ECC/corruption flip target. The
    // fault_registered_ flag — not the global — gates unregistration, so a
    // buffer outliving a FaultInjector::disable() still cleans up and a
    // buffer created while disabled never leaves a dangling registry entry.
    if (fault_injection_enabled() && !data_.empty()) {
      FaultInjector::instance().register_buffer(addr_, data_.data(), bytes(),
                                                name_, arena_);
      fault_registered_ = true;
    }
  }

  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;

  DeviceBuffer(DeviceBuffer&& o) noexcept { *this = std::move(o); }
  DeviceBuffer& operator=(DeviceBuffer&& o) noexcept {
    if (this != &o) {
      release();
      arena_ = o.arena_;
      name_ = std::move(o.name_);
      addr_ = o.addr_;
      data_ = std::move(o.data_);  // heap block moves with it: the registered
                                   // data pointer stays valid
      fault_registered_ = o.fault_registered_;
      o.arena_ = nullptr;
      o.fault_registered_ = false;
    }
    return *this;
  }

  ~DeviceBuffer() { release(); }

  std::size_t size() const { return data_.size(); }
  bool valid() const { return arena_ != nullptr; }
  std::size_t bytes() const { return data_.size() * sizeof(T); }

  DeviceSpan<T> span() {
    return DeviceSpan<T>(data_.data(), data_.size(), addr_);
  }
  DeviceSpan<const T> cspan() const {
    return DeviceSpan<const T>(data_.data(), data_.size(), addr_);
  }

  /// Host-side access (represents data already resident on the device;
  /// transfers are charged separately through Device::upload/download).
  /// Mutable access conservatively marks the whole buffer defined in the
  /// sanitizer's shadow — host fills (uploads) initialize device memory.
  std::vector<T>& host() {
    if (sanitizer_enabled())
      Sanitizer::instance().mark_initialized(addr_, bytes());
    return data_;
  }
  const std::vector<T>& host() const { return data_; }

 private:
  void release() {
    if (arena_ != nullptr) {
      if (fault_registered_) {
        FaultInjector::instance().unregister_buffer(addr_);
        fault_registered_ = false;
      }
      arena_->release(addr_, data_.size() * sizeof(T), name_);
      arena_ = nullptr;
    }
  }

  MemoryArena* arena_ = nullptr;
  std::string name_;
  std::uint64_t addr_ = 0;
  std::vector<T> data_;
  bool fault_registered_ = false;
};

}  // namespace acsr::vgpu
