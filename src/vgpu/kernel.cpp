#include "vgpu/kernel.hpp"

#include <algorithm>

namespace acsr::vgpu {

double combine_sequential(const std::vector<KernelRun>& runs) {
  double total = 0.0;
  for (const auto& r : runs) total += r.duration_s;
  return total;
}

double combine_concurrent(const std::vector<KernelRun>& runs,
                          const DeviceSpec& spec) {
  if (runs.empty()) return 0.0;

  double issue = 0.0, flop = 0.0, bytes = 0.0, latency = 0.0, dp = 0.0;
  double warps = 0.0;
  for (const auto& r : runs) {
    issue += r.issue_s;
    flop += r.flop_s;
    bytes += r.dram_bytes;
    warps += static_cast<double>(r.counters.warps);
    latency = std::max(latency, r.latency_s);
    dp += r.dp_s;
  }
  // Concurrent grids are co-resident: their *combined* occupancy sets the
  // achievable DRAM bandwidth (individually small bin grids saturate
  // together, which is part of why ACSR launches them concurrently).
  const double util = std::min(
      1.0, warps / (static_cast<double>(spec.sm_count) *
                    spec.saturation_warps_per_sm));
  const double mem =
      bytes / (spec.dram_bandwidth_gbs * 1e9 * spec.dram_efficiency *
               std::max(util, 1.0 / 64.0));
  const double bound = std::max({issue, flop, mem, latency});
  // One synchronous launch to get going, then the remaining grids are
  // issued asynchronously at the pipelined gap.
  const double launches =
      spec.host_launch_overhead_s +
      static_cast<double>(runs.size() - 1) * spec.async_launch_gap_s;
  return launches + bound + dp;
}

}  // namespace acsr::vgpu
