// Hardware-event counters accumulated during functional execution of a
// kernel. The cost model (kernel.cpp) converts these into simulated time.
#pragma once

#include <cstdint>

namespace acsr::vgpu {

struct Counters {
  // Geometry.
  std::uint64_t blocks = 0;
  std::uint64_t warps = 0;

  // Issue pipeline: one unit = one warp-instruction issued.
  std::uint64_t issue_cycles = 0;

  // Arithmetic throughput, counted per active lane.
  std::uint64_t sp_flops = 0;
  std::uint64_t dp_flops = 0;

  // Global-memory (L2/DRAM) path: 32-byte L2 sectors.
  std::uint64_t gmem_requests = 0;      // warp-level load/store instructions
  std::uint64_t gmem_transactions = 0;  // distinct 32 B sectors touched
  std::uint64_t gmem_bytes = 0;         // transactions * 32

  // Texture read path (used for the x vector, as in the paper).
  std::uint64_t tex_requests = 0;
  std::uint64_t tex_transactions = 0;  // distinct 32 B segments touched
  std::uint64_t tex_bytes = 0;

  std::uint64_t shuffle_ops = 0;
  std::uint64_t smem_accesses = 0;
  std::uint64_t atomic_ops = 0;
  std::uint64_t atomic_conflicts = 0;  // lanes hitting the same address

  // Dynamic parallelism.
  std::uint64_t child_launches = 0;
  std::uint64_t child_blocks = 0;

  Counters& operator+=(const Counters& o) {
    blocks += o.blocks;
    warps += o.warps;
    issue_cycles += o.issue_cycles;
    sp_flops += o.sp_flops;
    dp_flops += o.dp_flops;
    gmem_requests += o.gmem_requests;
    gmem_transactions += o.gmem_transactions;
    gmem_bytes += o.gmem_bytes;
    tex_requests += o.tex_requests;
    tex_transactions += o.tex_transactions;
    tex_bytes += o.tex_bytes;
    shuffle_ops += o.shuffle_ops;
    smem_accesses += o.smem_accesses;
    atomic_ops += o.atomic_ops;
    atomic_conflicts += o.atomic_conflicts;
    child_launches += o.child_launches;
    child_blocks += o.child_blocks;
    return *this;
  }
};

}  // namespace acsr::vgpu
