// Fault-injection framework for the virtual GPU.
//
// An opt-in, deterministic, seed-driven fault model — the failure-path
// counterpart of the compute sanitizer. The paper's evaluation already
// hits real failure modes (HYB/BCCOO report Ø on several matrices,
// dynamic parallelism degrades past the pending-launch limit); this layer
// makes *every* device-class failure injectable, typed, and therefore
// testable, so the resilient driver (src/core/resilient.hpp) and the
// checkpointed solvers can be exercised end-to-end.
//
// Injectable fault classes (hooked into MemoryArena::alloc, Device::launch
// and the PCIe transfer path):
//
//   oom        MemoryArena::alloc throws DeviceOom
//   transient  Device::launch throws TransientFault (recoverable by retry)
//   ecc        a deterministic bit flip in a live device allocation's
//              bytes; detected flips additionally throw DataCorruption
//              (an ECC machine-check), silent ones do not
//   corrupt    a bit flip fired from the transfer path (PCIe CRC failure);
//              detected unless `silent=1`
//   stall      the transfer takes `ms` extra milliseconds (timing-only)
//   lost       whole-device loss: the device is marked lost and every
//              subsequent launch/alloc/transfer throws DeviceLost
//
// The storage plane (src/storage/, docs/OOC.md) adds a `read` site for
// the out-of-core tier's drive reads:
//
//   io_transient  the read fails with IoTransientError (a re-issue may
//                 succeed; the tier retries with backoff on the clock)
//   io_timeout    the request hangs for `ms` (default 50) simulated
//                 milliseconds, then fails with IoTimeout
//   io_checksum   a deterministic bit flip in the *delivered* chunk
//                 bytes; the tier's arrival checksum detects it and
//                 re-reads (ChunkChecksumMismatch once retries run out)
//   io_degrade    a degraded-bandwidth drive: the read's service time is
//                 multiplied by `x` (default 4); timing-only
//
// Activation mirrors ACSR_SANITIZE: set ACSR_FAULTS to a plan string in
// the environment, or call FaultInjector::instance().configure(plan)
// programmatically (before building the engines whose buffers should be
// flip targets). With no plan configured every hook is a single
// never-taken branch on a plain global bool — zero cost on the metered
// fast path, same guard pattern as the sanitizer.
//
// Plan-string grammar (full reference in docs/RESILIENCE.md):
//
//   plan   := clause (';' clause)*
//   clause := kind '@' site '#' N ['*' K] (':' key '=' value)*
//   kind   := oom | transient | ecc | corrupt | stall | lost
//           | io_transient | io_timeout | io_checksum | io_degrade
//   site   := alloc | launch | transfer | read
//
// `#N` fires on the N-th matching operation (1-based, counted per site
// since configure()); `*K` keeps firing for K consecutive matching ops.
// Options: `seed=U` (flip-target choice), `ms=D` (stall / timeout
// duration in milliseconds), `x=F` (io_degrade service-time factor),
// `silent=1` (flip without a detection signal). Example:
//
//   ACSR_FAULTS="transient@launch#3*2;ecc@launch#9:seed=7;lost@launch#40"
//
// Every fired fault is recorded in events() with device / kernel / buffer
// attribution, and surfaces to the caller as a *typed* error from the
// taxonomy below — never as a bare InvariantError abort.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace acsr::vgpu {

/// Base of the recoverable device-error taxonomy. Carries the device name
/// and the operation (kernel / buffer / transfer) for attribution; the
/// what() string embeds both.
class DeviceFault : public std::runtime_error {
 public:
  DeviceFault(std::string device, std::string where, const std::string& msg)
      : std::runtime_error(msg),
        device_(std::move(device)),
        where_(std::move(where)) {}

  /// Name of the device the fault struck (DeviceSpec::name).
  const std::string& device() const noexcept { return device_; }
  /// The kernel, buffer, or transfer the fault was attributed to.
  const std::string& where() const noexcept { return where_; }

 private:
  std::string device_;
  std::string where_;
};

/// Transient launch failure: retrying the launch may succeed. The
/// resilient driver retries with backoff charged to the time model.
class TransientFault : public DeviceFault {
 public:
  using DeviceFault::DeviceFault;
};

/// Whole-device loss: every further operation on the device fails. Fatal
/// for the device; recoverable by failing over to a standby device
/// (resilient driver) or by repartitioning (MultiGpuAcsr).
class DeviceLost : public DeviceFault {
 public:
  using DeviceFault::DeviceFault;
};

/// Detected corruption of device-resident data (ECC machine-check, PCIe
/// CRC failure). Recoverable by a re-upload scrub: device copies are
/// rebuilt from host data.
class DataCorruption : public DeviceFault {
 public:
  using DeviceFault::DeviceFault;
};

/// Base of the storage-plane fault taxonomy (src/storage/, docs/OOC.md).
/// device() names the drive (or tier) the fault struck, where() the chunk
/// or request. Derives from DeviceFault so the checkpointed solvers'
/// restart net covers escaped storage faults with no extra catch sites.
class IoError : public DeviceFault {
 public:
  using DeviceFault::DeviceFault;
};

/// One read request failed; re-issuing it may succeed. The storage tier
/// retries with backoff charged to the simulated clock before letting
/// this escape.
class IoTransientError : public IoError {
 public:
  using IoError::IoError;
};

/// A read request exceeded its deadline. The hang itself is charged to
/// the clock; retryable like IoTransientError.
class IoTimeout : public IoError {
 public:
  using IoError::IoError;
};

/// A chunk arrived with a checksum mismatch and the per-chunk re-read
/// budget is exhausted (every retry re-delivered corrupt bytes).
class ChunkChecksumMismatch : public IoError {
 public:
  using IoError::IoError;
};

enum class FaultKind {
  kAllocOom,
  kLaunchTransient,
  kEccFlip,
  kTransferCorrupt,
  kTransferStall,
  kDeviceLost,
  kIoTransient,
  kIoTimeout,
  kIoChecksum,
  kIoDegrade,
};

const char* to_string(FaultKind k);

enum class FaultSite { kAlloc, kLaunch, kTransfer, kRead };

/// One parsed plan clause: fire `kind` at `site` on matching ops
/// [at, at + count). The site matters for kinds injectable at more than
/// one site: `lost@launch#1` must not fire on the first *alloc*.
struct FaultClause {
  FaultKind kind{};
  FaultSite site{};
  long long at = 1;           // 1-based op index at the clause's site
  long long count = 1;        // consecutive matching ops to fire on
  std::uint64_t seed = 2014;  // flip-target choice (ecc / corrupt)
  double stall_s = 0.05;      // transfer stall / io_timeout duration
  double factor = 4.0;        // io_degrade service-time multiplier
  bool silent = false;        // flip without a detection signal
};

/// One fired fault, for observability and test assertions.
struct FaultEvent {
  FaultKind kind{};
  long long op_index = 0;   // per-site op count at which the clause fired
  std::string device;       // DeviceSpec::name ("?" for bare-arena allocs)
  std::string site;         // "alloc" / "launch" / "transfer" / "read"
  std::string where;        // kernel name, buffer name, or transfer size
  std::string buffer;       // flip target ("" when not a flip)
  std::string detail;       // human-readable description
};

/// What Device::launch must do after consulting the injector.
struct LaunchFault {
  enum class Action { kNone, kTransient, kCorruption, kLost } action =
      Action::kNone;
  std::string buffer;  // flip target (corruption), for the error message
  std::string detail;
};

/// What Device::note_transfer must do.
struct TransferFault {
  double stall_s = 0.0;  // added to the transfer duration
  bool corrupt = false;  // a detected flip happened: throw DataCorruption
  bool lost = false;     // device loss observed on the transfer path
  std::string buffer;
  std::string detail;
};

/// What StorageTier::read_chunk must do after consulting the injector.
struct ReadFault {
  enum class Action { kNone, kTransient, kTimeout } action = Action::kNone;
  bool corrupt = false;   // flip one bit in the delivered chunk bytes
  std::uint64_t seed = 0; // flip-bit choice for the corrupt case
  double slow = 1.0;      // service-time multiplier (io_degrade)
  double timeout_s = 0.0; // hang charged to the clock before IoTimeout
  std::string detail;
};

/// Process-wide injector. Reads ACSR_FAULTS once on first use; configure()
/// replaces the plan (and resets op counters and events) at any time.
/// Single-threaded, like the rest of the simulator.
class FaultInjector {
 public:
  static FaultInjector& instance();

  bool enabled() const { return enabled_; }
  /// Parse `plan` (throws acsr::InputError on grammar errors), reset op
  /// counters and events, and enable injection iff the plan is non-empty.
  void configure(const std::string& plan);
  /// Drop the plan, counters, events, and disable injection. The flip-
  /// target registry is kept (buffers unregister through their own
  /// lifetime).
  void disable();

  const std::vector<FaultClause>& plan() const { return plan_; }
  const std::vector<FaultEvent>& events() const { return events_; }
  void clear_events() { events_.clear(); }
  /// Events of one kind (test convenience).
  std::size_t count(FaultKind k) const;

  // --- hooks (called only when fault_injection_enabled()) -----------------
  /// Returns true when this allocation must fail with DeviceOom.
  bool on_alloc(const std::string& device, const std::string& what,
                std::size_t bytes);
  /// Consult the plan for this host-side kernel launch. An ECC clause
  /// flips a bit in a live allocation of `arena_tag`'s device before
  /// returning (kCorruption when detected, kNone when silent).
  LaunchFault on_launch(const std::string& device, const std::string& kernel,
                        const void* arena_tag);
  /// Consult the plan for one PCIe transfer of `bytes`.
  TransferFault on_transfer(const std::string& device, std::size_t bytes,
                            const void* arena_tag);
  /// Consult the plan for one storage-tier read of `bytes` from `drive`.
  /// `what` names the chunk / request for attribution.
  ReadFault on_read(const std::string& drive, const std::string& what,
                    std::size_t bytes);

  // --- flip-target registry ------------------------------------------------
  /// Register a live device allocation's backing bytes as an ECC/corrupt
  /// flip target. Called by DeviceBuffer when injection is enabled.
  void register_buffer(std::uint64_t addr, void* data, std::size_t bytes,
                       const std::string& name, const void* arena_tag);
  void unregister_buffer(std::uint64_t addr);
  std::size_t registered_buffers() const { return targets_.size(); }

  // --- op counters (for plan authoring / debugging) ------------------------
  long long alloc_ops() const { return alloc_ops_; }
  long long launch_ops() const { return launch_ops_; }
  long long transfer_ops() const { return transfer_ops_; }
  long long read_ops() const { return read_ops_; }

 private:
  FaultInjector();

  struct Target {
    void* data = nullptr;
    std::size_t bytes = 0;
    std::string name;
    const void* arena_tag = nullptr;
  };

  /// First clause at `site` matching the site's current op count, or
  /// nullptr. Increments the counter.
  const FaultClause* match(long long& op_counter, FaultSite site,
                           FaultKind* matched);
  /// Deterministically flip one bit in a live allocation of `arena_tag`'s
  /// device; returns the buffer name ("" when the device has no targets).
  std::string flip_bit(const FaultClause& c, long long op_index,
                       const void* arena_tag, std::string* detail);
  void record(FaultKind kind, long long op_index, const std::string& device,
              const char* site, const std::string& where,
              const std::string& buffer, const std::string& detail);

  bool enabled_ = false;
  std::vector<FaultClause> plan_;
  std::vector<FaultEvent> events_;
  std::map<std::uint64_t, Target> targets_;
  long long alloc_ops_ = 0;
  long long launch_ops_ = 0;
  long long transfer_ops_ = 0;
  long long read_ops_ = 0;
};

/// Fast-path guard, mirroring sanitizer_enabled(): one global load, no
/// function-local-static guard. The dynamic initializer forces the
/// singleton (and its ACSR_FAULTS env read) to exist before main.
namespace detail {
inline bool g_fault_injection_enabled = FaultInjector::instance().enabled();
}  // namespace detail

inline bool fault_injection_enabled() {
  return detail::g_fault_injection_enabled;
}

}  // namespace acsr::vgpu
