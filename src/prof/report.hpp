// Exporters over the profiler's samples: the metrics JSON document (the
// `acsr_prof --out` / bench `--metrics_out` format, and the committed
// PROF_baseline.json), the nvprof-style text summary, and the --diff
// regression comparison. docs/OBSERVABILITY.md documents the doc schema.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "prof/metrics.hpp"

namespace acsr::prof {

inline constexpr const char* kMetricsSchema = "acsr-prof/v1";

/// Metrics document: { schema, retry_backoff_s, engines: { <context>:
/// { total: {metric: value}, kernels: { <name>: {metric: value} } } } }.
/// Launches are grouped by their context label ("(none)" when empty),
/// then by kernel name.
json::Value metrics_doc(const std::vector<LaunchSample>& launches,
                        double retry_backoff_s);

/// nvprof-style per-kernel summary of one profile: kernels ranked by
/// model time with occupancy/coalescing columns, plus group totals.
void render_summary(std::ostream& os,
                    const std::vector<LaunchSample>& launches,
                    double retry_backoff_s);

/// Engines-as-columns metric matrix over a metrics document (the
/// `acsr_prof` all-engines view).
void render_engine_matrix(std::ostream& os, const json::Value& doc);

struct Drift {
  std::string path;      // e.g. "engines/acsr/total/model_ms"
  double baseline = 0.0; // NaN when the side is missing
  double current = 0.0;
  double rel = 0.0;      // (current - baseline) / max(|baseline|, eps)
};

/// Compare per-engine *total* metrics of two metrics documents. Only
/// deterministic metrics participate (host wall-clock attribution is
/// machine-dependent); entries whose |rel| exceeds `threshold`, and
/// engines present on only one side, are returned, largest drift first.
std::vector<Drift> diff_metrics(const json::Value& current,
                                const json::Value& baseline,
                                double threshold);

}  // namespace acsr::prof
