// acsr-prof: the profiling & tracing layer for the virtual GPU.
//
// The cost model reports *totals* (Counters, KernelRun); every perf claim
// so far has been verified by those totals alone. This subsystem adds the
// attribution the paper's own analysis is built on — where the time goes,
// per kernel, per bin, per SM — without perturbing the model: profiling
// reads the executor's state, it never meters anything.
//
// Activation (both imply the other's collection):
//   ACSR_PROF=1          collect samples; tools/acsr_prof renders them
//   ACSR_TRACE=out.json  additionally write a Chrome trace-event file at
//                        process exit (load in chrome://tracing or
//                        https://ui.perfetto.dev)
//
// Zero-cost-when-off contract (the same cached-bool discipline as
// ACSR_VERIFY / ACSR_SANITIZE): the env decision is taken once before
// main() into detail::g_profiler_enabled; every hook in the executor is
// one never-taken `if (...) [[unlikely]]` branch on that bool (or on the
// null KernelEnv::lane_prof pointer it gates). Metering parity — profiled
// runs produce bit-identical Counters and roofline numbers — is pinned by
// the kProfiled mode of tests/test_metering_invariance.cpp.
//
// Timeline model: the profiler keeps one global *simulated* clock. Each
// Device::launch advances it by the launch's modelled duration;
// ResilientEngine recovery backoff advances it by the backoff it charged
// to its StreamTimeline; apps mirror their analytic per-iteration charges
// through phase(). Concurrent-group launches (ACSR's per-bin grids) thus
// appear serialised, in issue order — the trace is an attribution view of
// the model, not a second timing model. docs/OBSERVABILITY.md documents
// the full schema.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/json.hpp"
#include "prof/lane_counters.hpp"
#include "vgpu/kernel.hpp"

namespace acsr::prof {

namespace detail {
bool profiler_enabled_from_env();
// Mirror of Profiler's enabled flag, initialised before main() so the hot
// path reads one global bool (same pattern as sanitizer_enabled()).
inline bool g_profiler_enabled = profiler_enabled_from_env();
}  // namespace detail

/// The one branch every profiling hook sits behind.
inline bool profiler_enabled() { return detail::g_profiler_enabled; }
/// Programmatic switch (tests, tools). Flips the cached mirror too.
void set_profiler_enabled(bool on);

/// Monotonic host wall-clock, only sampled when profiling is on (host_ns
/// attribution of executor time is how the wall-clock regressions in
/// BENCH_wallclock.json get localised to a kernel).
std::uint64_t host_now_ns();

/// A dynamic-parallelism child grid recorded under its parent launch.
struct ChildGrid {
  std::string name;
  long long grid_dim = 1;
  int block_dim = 32;
};

/// One Device::launch (parent grid + all its DP children), as sampled by
/// the profiler: the full KernelRun breakdown plus the lane-utilisation
/// tallies and host wall time the cost model itself does not keep.
struct LaunchSample {
  std::string device;
  std::string kernel;
  std::string context;  // innermost ScopedContext label ("" if none)
  std::string note;     // per-launch annotation (bin geometry etc.)
  double start_s = 0.0;  // simulated clock at launch begin
  vgpu::KernelRun run;
  LaneCounters lanes;
  std::uint64_t host_ns = 0;         // wall time inside Device::launch
  std::vector<double> sm_issue_s;    // per-SM issue-bound seconds
  std::vector<ChildGrid> children;
};

/// A completed scoped region on a named host-side track (app iteration
/// phases, recovery backoff windows).
struct SpanSample {
  std::string track;
  std::string name;
  double start_s = 0.0;
  double end_s = 0.0;
};

/// A point event (fault struck, recovery action taken).
struct InstantSample {
  std::string name;
  double ts_s = 0.0;
};

class Profiler {
 public:
  static Profiler& instance();

  // --- collection (callers gate on profiler_enabled()) --------------------
  /// Record a finished launch and advance the simulated clock by its
  /// duration. `sm_issue_s` is the per-SM issue time already converted to
  /// seconds by the caller (the profiler never recomputes model terms).
  void record_launch(std::string device, const vgpu::KernelRun& run,
                     const LaneCounters& lanes,
                     std::vector<ChildGrid> children, std::uint64_t host_ns,
                     std::vector<double> sm_issue_s);

  /// Attach a one-line annotation to the next record_launch (the ACSR
  /// driver labels each bin grid with its row count and vector size).
  void annotate_next_launch(std::string note);

  /// Context labels group launches in the summary (per-engine columns).
  void push_context(std::string label);
  void pop_context();
  const std::string& context() const;

  /// Begin/end a region on a named host track at the current simulated
  /// clock. Regions on one track must nest.
  void begin_span(const std::string& track, std::string name);
  void end_span(const std::string& track);
  /// A region of known width: records [clock, clock + duration_s] on
  /// `track` and advances the clock — how apps mirror their analytic
  /// per-iteration charges onto the timeline.
  void phase(const std::string& track, std::string name, double duration_s);

  void instant(std::string name);

  /// Record an already-completed span at absolute simulated times without
  /// touching the profiler clock — how the slo tracer (src/slo/) mirrors
  /// request/batch/io spans onto the Chrome trace eagerly at span close
  /// (the exit-time writer then needs no cross-singleton handshake).
  void add_completed_span(std::string track, std::string name,
                          double start_s, double end_s);

  /// Recovery backoff charged by ResilientEngine: advances the clock,
  /// records a span on the "recovery" track, and accumulates the total
  /// that test_faults.cpp reconciles against the engine's StreamTimeline.
  void add_retry_backoff(double seconds, const std::string& what);

  // --- queries --------------------------------------------------------------
  double clock_s() const { return clock_s_; }
  double retry_backoff_s() const { return retry_backoff_s_; }
  const std::vector<LaunchSample>& launches() const { return launches_; }
  const std::vector<SpanSample>& spans() const { return spans_; }
  const std::vector<InstantSample>& instants() const { return instants_; }

  /// Drop all samples and reset the clock (tests and per-engine tool runs).
  void clear();

  // --- export ---------------------------------------------------------------
  /// Chrome trace-event document ("traceEvents" array of M/B/E/i events;
  /// schema in docs/OBSERVABILITY.md).
  json::Value chrome_trace() const;
  /// Serialise chrome_trace() to `path`; false on I/O failure.
  bool write_trace(const std::string& path) const;
  /// Path from ACSR_TRACE ("" when unset). The profiler writes the trace
  /// there automatically at process exit.
  const std::string& trace_path() const { return trace_path_; }

 private:
  Profiler();
  ~Profiler();
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  struct OpenSpan {
    std::string track;
    std::string name;
    double start_s;
  };

  friend void set_profiler_enabled(bool);

  bool enabled_ = false;
  std::string trace_path_;
  double clock_s_ = 0.0;
  double retry_backoff_s_ = 0.0;
  std::string pending_note_;
  std::vector<std::string> context_;
  std::vector<OpenSpan> open_spans_;
  std::vector<LaunchSample> launches_;
  std::vector<SpanSample> spans_;
  std::vector<InstantSample> instants_;
};

// --- RAII helpers (each costs one branch when profiling is off) ------------

class ScopedContext {
 public:
  explicit ScopedContext(std::string label) : on_(profiler_enabled()) {
    if (on_) [[unlikely]]
      Profiler::instance().push_context(std::move(label));
  }
  ~ScopedContext() {
    if (on_) [[unlikely]]
      Profiler::instance().pop_context();
  }
  ScopedContext(const ScopedContext&) = delete;
  ScopedContext& operator=(const ScopedContext&) = delete;

 private:
  bool on_;
};

class ScopedSpan {
 public:
  ScopedSpan(std::string track, std::string name) : on_(profiler_enabled()) {
    if (on_) [[unlikely]] {
      track_ = std::move(track);
      Profiler::instance().begin_span(track_, std::move(name));
    }
  }
  ~ScopedSpan() {
    if (on_) [[unlikely]]
      Profiler::instance().end_span(track_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  bool on_;
  std::string track_;
};

/// App-side iteration marker: one span of `duration_s` on `track`.
inline void phase_marker(const char* track, const char* name,
                         double duration_s) {
  if (profiler_enabled()) [[unlikely]]
    Profiler::instance().phase(track, name, duration_s);
}

}  // namespace acsr::prof
