#include "prof/metrics.hpp"

#include <algorithm>

namespace acsr::prof {

namespace {

double safe_div(double num, double den) { return den == 0.0 ? 0.0 : num / den; }

// One passthrough metric per Counters field. scripts/lint.sh rule 4 greps
// this file for every field name parsed out of src/vgpu/counters.hpp, so
// adding a counter without adding a row here fails the lint gate.
#define ACSR_COUNTER_METRIC(field, what)                                  \
  MetricDef {                                                             \
    "counters." #field, "count", "sum of Counters::" #field " (" what ")", \
        true, [](const KernelAgg& a) {                                    \
          return static_cast<double>(a.counters.field);                   \
        }                                                                 \
  }

std::vector<MetricDef> build_registry() {
  std::vector<MetricDef> r = {
      {"launches", "count", "host-side kernel launches aggregated", true,
       [](const KernelAgg& a) { return static_cast<double>(a.launches); }},
      {"model_ms", "ms", "1e3 * sum of KernelRun::duration_s", true,
       [](const KernelAgg& a) { return a.duration_s * 1e3; }},
      {"model_ms_avg", "ms", "model_ms / launches", true,
       [](const KernelAgg& a) {
         return safe_div(a.duration_s * 1e3,
                         static_cast<double>(a.launches));
       }},
      {"lane_occupancy_pct", "%",
       "100 * (mem_active_lanes + flop_active_lanes) / (mem_lane_slots + "
       "flop_lane_slots)",
       true, [](const KernelAgg& a) { return lane_occupancy_pct(a.lanes); }},
      {"divergence_ratio", "ratio", "1 - lane_occupancy_pct / 100", true,
       [](const KernelAgg& a) { return divergence_ratio(a.lanes); }},
      {"coalescing_efficiency", "ratio",
       "useful_gmem_bytes / gmem_bytes (useful = element size * active "
       "lanes; gmem_bytes = 32 B sectors moved)",
       true,
       [](const KernelAgg& a) {
         return coalescing_efficiency(a.lanes, a.counters);
       }},
      {"tex_coalescing_efficiency", "ratio",
       "useful_tex_bytes / tex_bytes (texture path, the x gathers)", true,
       [](const KernelAgg& a) {
         return tex_coalescing_efficiency(a.lanes, a.counters);
       }},
      {"sectors_per_request", "ratio", "gmem_transactions / gmem_requests",
       true,
       [](const KernelAgg& a) {
         return safe_div(static_cast<double>(a.counters.gmem_transactions),
                         static_cast<double>(a.counters.gmem_requests));
       }},
      {"atomic_conflict_ratio", "ratio", "atomic_conflicts / atomic_ops",
       true,
       [](const KernelAgg& a) {
         return safe_div(static_cast<double>(a.counters.atomic_conflicts),
                         static_cast<double>(a.counters.atomic_ops));
       }},
      // Roofline attribution: each term's share of the modelled duration.
      // Shares do not sum to 1 — duration is launch + max(bounds) + dp, so
      // the non-binding bounds report the headroom the kernel had.
      {"issue_share", "ratio", "issue_s / duration_s (warp-issue bound)",
       true,
       [](const KernelAgg& a) { return safe_div(a.issue_s, a.duration_s); }},
      {"flop_share", "ratio", "flop_s / duration_s (arithmetic bound)", true,
       [](const KernelAgg& a) { return safe_div(a.flop_s, a.duration_s); }},
      {"memory_share", "ratio", "memory_s / duration_s (DRAM bound)", true,
       [](const KernelAgg& a) {
         return safe_div(a.memory_s, a.duration_s);
       }},
      {"latency_share", "ratio",
       "latency_s / duration_s (dependency-chain bound)", true,
       [](const KernelAgg& a) {
         return safe_div(a.latency_s, a.duration_s);
       }},
      {"launch_share", "ratio", "launch_s / duration_s (host launch cost)",
       true,
       [](const KernelAgg& a) {
         return safe_div(a.launch_s, a.duration_s);
       }},
      {"dp_overhead_share", "ratio",
       "dp_s / duration_s (device-runtime child-launch handling)", true,
       [](const KernelAgg& a) { return safe_div(a.dp_s, a.duration_s); }},
      {"dram_mb", "MB", "dram_bytes / 1e6 (post-cache DRAM traffic)", true,
       [](const KernelAgg& a) { return a.dram_bytes / 1e6; }},
      // Host wall-clock attribution of the *simulator* (not the model):
      // where bench_wallclock's real milliseconds go. Machine-dependent,
      // hence excluded from --diff.
      {"host_ms", "ms", "wall time inside Device::launch, summed", false,
       [](const KernelAgg& a) {
         return static_cast<double>(a.host_ns) / 1e6;
       }},
      {"host_us_per_launch", "us", "host_ms * 1e3 / launches", false,
       [](const KernelAgg& a) {
         return safe_div(static_cast<double>(a.host_ns) / 1e3,
                         static_cast<double>(a.launches));
       }},
      ACSR_COUNTER_METRIC(blocks, "thread blocks executed"),
      ACSR_COUNTER_METRIC(warps, "warps executed"),
      ACSR_COUNTER_METRIC(issue_cycles, "warp-instructions issued"),
      ACSR_COUNTER_METRIC(sp_flops, "single-precision lane flops"),
      ACSR_COUNTER_METRIC(dp_flops, "double-precision lane flops"),
      ACSR_COUNTER_METRIC(gmem_requests, "global load/store instructions"),
      ACSR_COUNTER_METRIC(gmem_transactions, "32 B global sectors moved"),
      ACSR_COUNTER_METRIC(gmem_bytes, "global sector bytes moved"),
      ACSR_COUNTER_METRIC(tex_requests, "texture read instructions"),
      ACSR_COUNTER_METRIC(tex_transactions, "32 B texture segments moved"),
      ACSR_COUNTER_METRIC(tex_bytes, "texture segment bytes moved"),
      ACSR_COUNTER_METRIC(shuffle_ops, "warp shuffle instructions"),
      ACSR_COUNTER_METRIC(smem_accesses, "shared-memory accesses"),
      ACSR_COUNTER_METRIC(atomic_ops, "atomic lane operations"),
      ACSR_COUNTER_METRIC(atomic_conflicts, "same-address atomic replays"),
      ACSR_COUNTER_METRIC(child_launches, "device-side child launches"),
      ACSR_COUNTER_METRIC(child_blocks, "blocks run by child grids"),
  };
  return r;
}

#undef ACSR_COUNTER_METRIC

std::vector<CounterMetric> build_counter_metrics() {
  std::vector<CounterMetric> r;
  for (const MetricDef& m : metric_registry()) {
    const std::string name = m.name;
    if (name.rfind("counters.", 0) == 0)
      r.push_back({m.name + sizeof("counters.") - 1, m.name});
  }
  return r;
}

// One passthrough metric per TenantAgg field (scripts/lint.sh rule 4
// parses the struct and greps this file, exactly as for Counters).
#define ACSR_TENANT_METRIC(field, unit, what)                          \
  TenantMetricDef {                                                    \
    "tenant." #field, unit, "TenantAgg::" #field " (" what ")",        \
        [](const TenantAgg& a) { return static_cast<double>(a.field); } \
  }

std::vector<TenantMetricDef> build_tenant_registry() {
  return {
      ACSR_TENANT_METRIC(requests, "count", "SpMVs served"),
      ACSR_TENANT_METRIC(batches, "count",
                         "batches carrying >= 1 of the tenant's requests"),
      ACSR_TENANT_METRIC(batch_width_sum, "count",
                         "carrying batch width, summed per request"),
      ACSR_TENANT_METRIC(cost_s, "s", "billed share of simulated batch time"),
      ACSR_TENANT_METRIC(queue_wait_s, "s",
                         "simulated enqueue-to-launch wait, summed"),
      {"tenant.batch_width_avg", "ratio", "batch_width_sum / requests",
       [](const TenantAgg& a) {
         return safe_div(static_cast<double>(a.batch_width_sum),
                         static_cast<double>(a.requests));
       }},
      {"tenant.queue_wait_avg_s", "s", "queue_wait_s / requests",
       [](const TenantAgg& a) {
         return safe_div(a.queue_wait_s, static_cast<double>(a.requests));
       }},
      {"tenant.cost_per_request_s", "s", "cost_s / requests",
       [](const TenantAgg& a) {
         return safe_div(a.cost_s, static_cast<double>(a.requests));
       }},
  };
}

#undef ACSR_TENANT_METRIC

// One passthrough metric per IoAgg field (scripts/lint.sh rule 4 parses
// the struct and greps this file, exactly as for Counters and TenantAgg).
#define ACSR_IO_METRIC(field, unit, what)                            \
  IoMetricDef {                                                      \
    "io." #field, unit, "IoAgg::" #field " (" what ")",              \
        [](const IoAgg& a) { return static_cast<double>(a.field); } \
  }

std::vector<IoMetricDef> build_io_registry() {
  return {
      ACSR_IO_METRIC(reads, "count", "chunk read requests completed"),
      ACSR_IO_METRIC(read_bytes, "bytes", "bytes delivered from the drives"),
      ACSR_IO_METRIC(demand_bytes, "bytes",
                     "bytes the streaming executor asked for"),
      ACSR_IO_METRIC(retries, "count",
                     "re-issued reads (transient / timeout / checksum)"),
      ACSR_IO_METRIC(checksum_failures, "count",
                     "chunks that arrived with a checksum mismatch"),
      ACSR_IO_METRIC(queue_peak, "count",
                     "max in-flight requests observed on the tier"),
      ACSR_IO_METRIC(read_s, "s", "drive service time, summed"),
      ACSR_IO_METRIC(penalty_s, "s",
                     "retry backoff + timeout hangs charged to the clock"),
      ACSR_IO_METRIC(stall_s, "s", "compute idle waiting on a slab upload"),
      ACSR_IO_METRIC(overlap_s, "s", "io time hidden behind compute"),
      {"io.read_amplification", "ratio", "read_bytes / demand_bytes "
       "(stripe rounding + re-reads over useful bytes)",
       [](const IoAgg& a) {
         return safe_div(static_cast<double>(a.read_bytes),
                         static_cast<double>(a.demand_bytes));
       }},
      {"io.overlap_efficiency", "ratio",
       "overlap_s / (read_s + penalty_s); the fraction of io time hidden "
       "behind compute — > 0 proves slab upload ran concurrently",
       [](const IoAgg& a) {
         return safe_div(a.overlap_s, a.read_s + a.penalty_s);
       }},
      {"io.retry_rate", "ratio", "retries / reads",
       [](const IoAgg& a) {
         return safe_div(static_cast<double>(a.retries),
                         static_cast<double>(a.reads));
       }},
  };
}

#undef ACSR_IO_METRIC

// One passthrough metric per SloAgg field (lint rule 4 in acsr_audit
// parses the struct and greps this file, exactly as for the other
// aggregates).
#define ACSR_SLO_METRIC(field, unit, what)                            \
  SloMetricDef {                                                      \
    "slo." #field, unit, "SloAgg::" #field " (" what ")",             \
        [](const SloAgg& a) { return static_cast<double>(a.field); }  \
  }

std::vector<SloMetricDef> build_slo_registry() {
  return {
      ACSR_SLO_METRIC(requests, "count", "requests observed"),
      ACSR_SLO_METRIC(violations, "count",
                      "requests over the latency target"),
      ACSR_SLO_METRIC(breaches, "count",
                      "edge-triggered burn-threshold crossings"),
      ACSR_SLO_METRIC(burn_rate, "ratio",
                      "window violation fraction / error budget"),
      ACSR_SLO_METRIC(latency_p50_s, "s",
                      "deterministic p50 of admission..completion"),
      ACSR_SLO_METRIC(latency_p95_s, "s",
                      "deterministic p95 of admission..completion"),
      ACSR_SLO_METRIC(latency_p99_s, "s",
                      "deterministic p99 of admission..completion"),
      ACSR_SLO_METRIC(latency_max_s, "s", "exact maximum latency observed"),
      ACSR_SLO_METRIC(queue_wait_p50_s, "s",
                      "deterministic p50 of admission..launch"),
      ACSR_SLO_METRIC(queue_wait_p95_s, "s",
                      "deterministic p95 of admission..launch"),
      ACSR_SLO_METRIC(queue_wait_max_s, "s",
                      "exact maximum queue wait observed"),
      {"slo.violation_rate", "ratio", "violations / requests",
       [](const SloAgg& a) {
         return safe_div(static_cast<double>(a.violations),
                         static_cast<double>(a.requests));
       }},
  };
}

#undef ACSR_SLO_METRIC

}  // namespace

const std::vector<MetricDef>& metric_registry() {
  static const std::vector<MetricDef> r = build_registry();
  return r;
}

const MetricDef* find_metric(const std::string& name) {
  for (const MetricDef& m : metric_registry())
    if (name == m.name) return &m;
  return nullptr;
}

const std::vector<CounterMetric>& counter_metrics() {
  static const std::vector<CounterMetric> r = build_counter_metrics();
  return r;
}

const std::vector<TenantMetricDef>& tenant_metric_registry() {
  static const std::vector<TenantMetricDef> r = build_tenant_registry();
  return r;
}

const TenantMetricDef* find_tenant_metric(const std::string& name) {
  for (const TenantMetricDef& m : tenant_metric_registry())
    if (name == m.name) return &m;
  return nullptr;
}

const std::vector<IoMetricDef>& io_metric_registry() {
  static const std::vector<IoMetricDef> r = build_io_registry();
  return r;
}

const IoMetricDef* find_io_metric(const std::string& name) {
  for (const IoMetricDef& m : io_metric_registry())
    if (name == m.name) return &m;
  return nullptr;
}

const std::vector<SloMetricDef>& slo_metric_registry() {
  static const std::vector<SloMetricDef> r = build_slo_registry();
  return r;
}

const SloMetricDef* find_slo_metric(const std::string& name) {
  for (const SloMetricDef& m : slo_metric_registry())
    if (name == m.name) return &m;
  return nullptr;
}

}  // namespace acsr::prof
