#include "prof/prof.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <cstdlib>
#include <map>

#include "common/check.hpp"
#include "prof/metrics.hpp"

namespace acsr::prof {

namespace detail {
bool profiler_enabled_from_env() {
  const char* p = std::getenv("ACSR_PROF");
  if (p != nullptr && p[0] == '1') return true;
  const char* t = std::getenv("ACSR_TRACE");
  return t != nullptr && t[0] != '\0';
}
}  // namespace detail

void set_profiler_enabled(bool on) {
  detail::g_profiler_enabled = on;
  Profiler::instance().enabled_ = on;
}

std::uint64_t host_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Profiler::Profiler() : enabled_(detail::profiler_enabled_from_env()) {
  const char* t = std::getenv("ACSR_TRACE");
  if (t != nullptr) trace_path_ = t;
}

Profiler::~Profiler() {
  // ACSR_TRACE contract: the trace lands on disk at process exit, however
  // the process ends (the tool path also writes explicitly). Exit-time
  // failures must stay silent-but-harmless.
  if (enabled_ && !trace_path_.empty()) {
    try {
      write_trace(trace_path_);
    } catch (...) {  // NOLINT(bugprone-empty-catch)
    }
  }
}

Profiler& Profiler::instance() {
  static Profiler p;
  return p;
}

void Profiler::record_launch(std::string device, const vgpu::KernelRun& run,
                             const LaneCounters& lanes,
                             std::vector<ChildGrid> children,
                             std::uint64_t host_ns,
                             std::vector<double> sm_issue_s) {
  LaunchSample s;
  s.device = std::move(device);
  s.kernel = run.name;
  s.context = context();
  s.note = std::move(pending_note_);
  pending_note_.clear();
  s.start_s = clock_s_;
  s.run = run;
  s.lanes = lanes;
  s.host_ns = host_ns;
  s.sm_issue_s = std::move(sm_issue_s);
  s.children = std::move(children);
  clock_s_ += run.duration_s;
  launches_.push_back(std::move(s));
}

void Profiler::annotate_next_launch(std::string note) {
  pending_note_ = std::move(note);
}

void Profiler::push_context(std::string label) {
  context_.push_back(std::move(label));
}

void Profiler::pop_context() {
  ACSR_CHECK_MSG(!context_.empty(), "prof: pop_context with no context");
  context_.pop_back();
}

const std::string& Profiler::context() const {
  static const std::string kEmpty;
  return context_.empty() ? kEmpty : context_.back();
}

void Profiler::begin_span(const std::string& track, std::string name) {
  open_spans_.push_back({track, std::move(name), clock_s_});
}

void Profiler::end_span(const std::string& track) {
  // Spans on one track nest, so the matching open is the innermost one
  // with this track name.
  for (std::size_t i = open_spans_.size(); i-- > 0;) {
    if (open_spans_[i].track != track) continue;
    spans_.push_back({open_spans_[i].track, std::move(open_spans_[i].name),
                      open_spans_[i].start_s, clock_s_});
    open_spans_.erase(open_spans_.begin() + static_cast<std::ptrdiff_t>(i));
    return;
  }
  ACSR_CHECK_MSG(false, "prof: end_span on track '" << track
                                                    << "' with no open span");
}

void Profiler::phase(const std::string& track, std::string name,
                     double duration_s) {
  ACSR_CHECK(duration_s >= 0.0);
  const double start = clock_s_;
  clock_s_ += duration_s;
  spans_.push_back({track, std::move(name), start, clock_s_});
}

void Profiler::add_completed_span(std::string track, std::string name,
                                  double start_s, double end_s) {
  ACSR_CHECK(end_s >= start_s);
  spans_.push_back({std::move(track), std::move(name), start_s, end_s});
}

void Profiler::instant(std::string name) {
  instants_.push_back({std::move(name), clock_s_});
}

void Profiler::add_retry_backoff(double seconds, const std::string& what) {
  retry_backoff_s_ += seconds;
  instant("fault:retry " + what);
  phase("recovery", "recovery:retry backoff " + what, seconds);
}

void Profiler::clear() {
  clock_s_ = 0.0;
  retry_backoff_s_ = 0.0;
  pending_note_.clear();
  context_.clear();
  open_spans_.clear();
  launches_.clear();
  spans_.clear();
  instants_.clear();
}

namespace {

constexpr double kUsPerS = 1e6;

json::Value meta_event(const char* name, int pid, int tid,
                       const std::string& label) {
  json::Object o;
  o.emplace("name", name);
  o.emplace("ph", "M");
  o.emplace("ts", 0.0);
  o.emplace("pid", pid);
  o.emplace("tid", tid);
  json::Object args;
  args.emplace("name", label);
  o.emplace("args", std::move(args));
  return json::Value(std::move(o));
}

json::Value event(char ph, const std::string& name, double ts_s, int pid,
                  int tid, json::Object args = {}) {
  json::Object o;
  o.emplace("name", name);
  o.emplace("ph", std::string(1, ph));
  o.emplace("ts", ts_s * kUsPerS);
  o.emplace("pid", pid);
  o.emplace("tid", tid);
  if (ph == 'i') o.emplace("s", "g");  // global-scope instant
  if (!args.empty()) o.emplace("args", std::move(args));
  return json::Value(std::move(o));
}

json::Object launch_args(const LaunchSample& s) {
  json::Object a;
  if (!s.context.empty()) a.emplace("context", s.context);
  if (!s.note.empty()) a.emplace("note", s.note);
  const vgpu::Counters& c = s.run.counters;
  a.emplace("blocks", c.blocks);
  a.emplace("warps", c.warps);
  a.emplace("issue_cycles", c.issue_cycles);
  a.emplace("gmem_bytes", c.gmem_bytes);
  a.emplace("tex_bytes", c.tex_bytes);
  a.emplace("child_launches", c.child_launches);
  a.emplace("lane_occupancy_pct", lane_occupancy_pct(s.lanes));
  a.emplace("coalescing_efficiency", coalescing_efficiency(s.lanes, c));
  a.emplace("dp_ms", s.run.dp_s * 1e3);
  a.emplace("host_us", static_cast<double>(s.host_ns) / 1e3);
  return a;
}

}  // namespace

json::Value Profiler::chrome_trace() const {
  json::Array events;

  // pid 1 is the host process; devices get pids 2.. in first-seen order.
  constexpr int kHostPid = 1;
  std::map<std::string, int> device_pid;
  for (const auto& l : launches_)
    device_pid.emplace(l.device, 0);
  {
    int next = kHostPid + 1;
    for (auto& [name, pid] : device_pid) pid = next++;
  }

  // Host tids: named tracks in first-use order; instants get track 0.
  std::map<std::string, int> host_tid;
  host_tid.emplace("events", 0);
  for (const auto& sp : spans_) host_tid.emplace(sp.track, 0);
  {
    int next = 0;
    for (auto& [name, tid] : host_tid) tid = next++;
  }

  events.push_back(meta_event("process_name", kHostPid, 0, "host"));
  for (const auto& [track, tid] : host_tid)
    events.push_back(meta_event("thread_name", kHostPid, tid, track));
  for (const auto& [dev, pid] : device_pid) {
    events.push_back(meta_event("process_name", pid, 0, "device:" + dev));
    events.push_back(meta_event("thread_name", pid, 0, "stream"));
  }
  // SM thread names, only for SMs that ever carried issue work.
  for (const auto& [dev, pid] : device_pid) {
    std::size_t max_sm = 0;
    for (const auto& l : launches_) {
      if (l.device != dev) continue;
      for (std::size_t i = 0; i < l.sm_issue_s.size(); ++i)
        if (l.sm_issue_s[i] > 0.0) max_sm = std::max(max_sm, i + 1);
    }
    for (std::size_t i = 0; i < max_sm; ++i)
      events.push_back(meta_event("thread_name", pid,
                                  1 + static_cast<int>(i),
                                  "SM " + std::to_string(i)));
  }

  // Kernel launches: B/E on the device stream track, children nested in
  // the dynamic-parallelism window, per-SM issue spans on the SM tracks.
  for (const auto& l : launches_) {
    const int pid = device_pid.at(l.device);
    const double end_s = l.start_s + l.run.duration_s;
    events.push_back(event('B', l.kernel, l.start_s, pid, 0,
                           launch_args(l)));
    if (!l.children.empty()) {
      // The device runtime's handling window is the dp_s tail of the
      // launch; child slices split it proportionally to their thread
      // counts. This is *attribution* of the modelled dp cost, not an
      // independently timed quantity (docs/OBSERVABILITY.md).
      const double window = std::max(l.run.dp_s, 0.0);
      double total_threads = 0.0;
      for (const auto& ch : l.children)
        total_threads += static_cast<double>(ch.grid_dim) *
                         static_cast<double>(ch.block_dim);
      double t = end_s - window;
      for (const auto& ch : l.children) {
        const double share =
            total_threads > 0.0
                ? static_cast<double>(ch.grid_dim) *
                      static_cast<double>(ch.block_dim) / total_threads
                : 1.0 / static_cast<double>(l.children.size());
        const double w = window * share;
        json::Object a;
        a.emplace("grid_dim", ch.grid_dim);
        a.emplace("block_dim", ch.block_dim);
        events.push_back(event('B', ch.name, t, pid, 0, std::move(a)));
        t += w;
        events.push_back(event('E', ch.name, t, pid, 0));
      }
    }
    events.push_back(event('E', l.kernel, end_s, pid, 0));
    for (std::size_t i = 0; i < l.sm_issue_s.size(); ++i) {
      if (l.sm_issue_s[i] <= 0.0) continue;
      const int tid = 1 + static_cast<int>(i);
      events.push_back(event('B', l.kernel, l.start_s, pid, tid));
      events.push_back(event('E', l.kernel, l.start_s + l.sm_issue_s[i],
                             pid, tid));
    }
  }

  // Host spans. Completed spans are stored in *end* order; per-track B/E
  // streams must come out in timeline order with nesting, so rebuild the
  // event sequence per track and merge-sort by (ts, B-open-before-close
  // ties resolved by span extent).
  for (const auto& [track, tid] : host_tid) {
    struct Ev {
      double ts;
      char ph;
      double extent;  // sort key for simultaneous events
      const SpanSample* sp;
    };
    std::vector<Ev> evs;
    for (const auto& sp : spans_) {
      if (sp.track != track) continue;
      evs.push_back({sp.start_s, 'B', -(sp.end_s - sp.start_s), &sp});
      evs.push_back({sp.end_s, 'E', (sp.end_s - sp.start_s), &sp});
    }
    // Timeline order with correct nesting at shared timestamps:
    // non-zero-width E's first (spans ending here opened earlier), then
    // B's longest-extent-first (outer opens before inner; a zero-width
    // B sorts after wider ones), then zero-width E's (closing the pair
    // just opened). The (ts, rank, extent) key is lexicographic, hence a
    // strict weak order.
    auto rank = [](const Ev& e) {
      return e.ph == 'E' ? (e.extent > 0.0 ? 0 : 2) : 1;
    };
    std::stable_sort(evs.begin(), evs.end(),
                     [&rank](const Ev& a, const Ev& b) {
                       if (a.ts != b.ts) return a.ts < b.ts;
                       if (rank(a) != rank(b)) return rank(a) < rank(b);
                       return a.extent < b.extent;
                     });
    for (const auto& e : evs)
      events.push_back(event(e.ph, e.sp->name, e.ts, kHostPid, tid));
  }

  for (const auto& in : instants_)
    events.push_back(
        event('i', in.name, in.ts_s, kHostPid, host_tid.at("events")));

  json::Object doc;
  doc.emplace("traceEvents", std::move(events));
  doc.emplace("displayTimeUnit", "ms");
  json::Object other;
  other.emplace("tool", "acsr-prof");
  other.emplace("clock", "simulated (us = 1e6 * model seconds)");
  doc.emplace("otherData", std::move(other));
  return json::Value(std::move(doc));
}

bool Profiler::write_trace(const std::string& path) const {
  std::ofstream f(path);
  if (!f.good()) return false;
  f << json::dump(chrome_trace(), 1) << '\n';
  f.close();
  return f.good();
}

}  // namespace acsr::prof
