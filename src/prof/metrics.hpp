// Typed metric registry: the named, documented decomposition of the raw
// Counters aggregate (plus the profiler's lane tallies and the roofline
// terms) into the quantities the paper argues with — lane occupancy,
// coalescing efficiency, divergence, roofline attribution, DP overhead.
//
// Two invariants the rest of the repo leans on:
//   * every Counters field has a passthrough metric here (counter_metrics();
//     scripts/lint.sh rule 4 greps this file so a new counter cannot ship
//     unobservable), and
//   * metrics marked non-deterministic (host wall-clock attribution) are
//     excluded from `acsr_prof --diff` regression comparisons — only model
//     quantities, which are bit-reproducible, gate drift.
//
// Formula strings are the documentation of record; docs/OBSERVABILITY.md
// renders the same definitions prose-side.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "prof/prof.hpp"

namespace acsr::prof {

// --- shared derived-metric formulas (also used for trace-event args) -------

/// Percentage of issued lane slots that carried an active lane, over the
/// memory and arithmetic pipelines together. 100 on fully converged code;
/// CSR-vector on short rows is the paper's canonical low-occupancy case.
inline double lane_occupancy_pct(const LaneCounters& l) {
  const std::uint64_t slots = l.mem_lane_slots + l.flop_lane_slots;
  if (slots == 0) return 100.0;
  return 100.0 * static_cast<double>(l.mem_active_lanes +
                                     l.flop_active_lanes) /
         static_cast<double>(slots);
}

/// Fraction of issued lane slots wasted on inactive lanes: 1 - occupancy.
inline double divergence_ratio(const LaneCounters& l) {
  return 1.0 - lane_occupancy_pct(l) / 100.0;
}

/// Useful bytes (element size x active lanes, duplicates counted) over the
/// 32 B sector bytes the memory system moved. 1.0 = perfectly coalesced;
/// scattered power-law gathers sit far below. Sector bytes are only
/// charged on cache *misses*, so L2-resident reuse (adjacent rows sharing
/// sectors, as in ACSR's bin sweeps) pushes the ratio above 1 — read
/// values > 1 as "useful bytes delivered per DRAM byte fetched".
inline double coalescing_efficiency(const LaneCounters& l,
                                    const vgpu::Counters& c) {
  if (c.gmem_bytes == 0) return 1.0;
  return static_cast<double>(l.useful_gmem_bytes) /
         static_cast<double>(c.gmem_bytes);
}

/// Texture-path coalescing efficiency (the x-vector gathers).
inline double tex_coalescing_efficiency(const LaneCounters& l,
                                        const vgpu::Counters& c) {
  if (c.tex_bytes == 0) return 1.0;
  return static_cast<double>(l.useful_tex_bytes) /
         static_cast<double>(c.tex_bytes);
}

/// Aggregate of LaunchSamples sharing one summary row (same kernel name,
/// or an engine's whole-run total).
struct KernelAgg {
  std::uint64_t launches = 0;
  vgpu::Counters counters;
  LaneCounters lanes;
  double duration_s = 0.0;
  double issue_s = 0.0;
  double flop_s = 0.0;
  double memory_s = 0.0;
  double latency_s = 0.0;
  double launch_s = 0.0;
  double dp_s = 0.0;
  double dram_bytes = 0.0;
  std::uint64_t host_ns = 0;

  void add(const LaunchSample& s) {
    launches += 1;
    counters += s.run.counters;
    lanes += s.lanes;
    duration_s += s.run.duration_s;
    issue_s += s.run.issue_s;
    flop_s += s.run.flop_s;
    memory_s += s.run.memory_s;
    latency_s += s.run.latency_s;
    launch_s += s.run.launch_s;
    dp_s += s.run.dp_s;
    dram_bytes += s.run.dram_bytes;
    host_ns += s.host_ns;
  }
};

struct MetricDef {
  const char* name;
  const char* unit;
  const char* formula;  // human-readable definition (docs/OBSERVABILITY.md)
  /// False for host wall-clock attribution: real, but machine-dependent,
  /// so --diff skips it.
  bool deterministic;
  double (*compute)(const KernelAgg&);
};

/// Every registered metric, derived first, counter passthroughs after.
const std::vector<MetricDef>& metric_registry();

/// nullptr when unknown.
const MetricDef* find_metric(const std::string& name);

/// The Counters-field -> passthrough-metric map. Completeness (one entry
/// per field of vgpu::Counters) is enforced by scripts/lint.sh rule 4 and
/// by the registry test.
struct CounterMetric {
  const char* field;
  const char* metric;
};
const std::vector<CounterMetric>& counter_metrics();

// --- multi-tenant serving aggregates ---------------------------------------

/// Per-tenant billing record kept by serve::BatchScheduler: simulated cost
/// attribution of the batched SpMM launches plus queueing behaviour. Same
/// completeness contract as vgpu::Counters: scripts/lint.sh rule 4 parses
/// the fields of this struct and requires a passthrough metric per field
/// in metrics.cpp, so a new billing column cannot ship unobservable.
struct TenantAgg {
  std::uint64_t requests = 0;        ///< SpMVs served for this tenant
  std::uint64_t batches = 0;         ///< batches carrying >= 1 of its requests
  std::uint64_t batch_width_sum = 0; ///< width of the carrying batch, per request
  double cost_s = 0.0;               ///< billed share of simulated batch time
  double queue_wait_s = 0.0;         ///< simulated enqueue-to-launch wait, summed
};

/// A named, documented serving metric over one tenant's aggregate (the
/// serve-plane mirror of MetricDef; acsr_prof --tenants prints one column
/// per entry). All serve metrics are model quantities, hence deterministic.
struct TenantMetricDef {
  const char* name;
  const char* unit;
  const char* formula;
  double (*compute)(const TenantAgg&);
};

/// Every registered tenant metric: field passthroughs plus the derived
/// ratios (batch_width_avg, queue_wait_avg_s, cost_per_request_s).
const std::vector<TenantMetricDef>& tenant_metric_registry();

/// nullptr when unknown.
const TenantMetricDef* find_tenant_metric(const std::string& name);

// --- out-of-core storage aggregates ----------------------------------------

/// Storage-plane accounting kept by storage::StorageTier and folded in by
/// core::OocCsrEngine: every drive read, retry, checksum failure and the
/// overlap the streaming executor achieved. Same completeness contract as
/// vgpu::Counters / TenantAgg: scripts/lint.sh rule 4 parses the fields of
/// this struct and requires a passthrough metric per field in metrics.cpp,
/// so a new storage counter cannot ship unobservable.
struct IoAgg {
  std::uint64_t reads = 0;             ///< chunk read requests completed
  std::uint64_t read_bytes = 0;        ///< bytes delivered from the drives
  std::uint64_t demand_bytes = 0;      ///< bytes the executor asked for
  std::uint64_t retries = 0;           ///< re-issued reads (transient/timeout/checksum)
  std::uint64_t checksum_failures = 0; ///< chunks that arrived corrupt
  std::uint64_t queue_peak = 0;        ///< max in-flight requests observed
  double read_s = 0.0;                 ///< drive service time, summed
  double penalty_s = 0.0;              ///< retry backoff + timeout hangs charged
  double stall_s = 0.0;                ///< compute idle waiting on a slab upload
  double overlap_s = 0.0;              ///< io time hidden behind compute
};

/// A named, documented storage metric over one run's IoAgg (the io-plane
/// mirror of TenantMetricDef; acsr_prof --ooc prints one row per entry).
/// All io metrics are model quantities, hence deterministic.
struct IoMetricDef {
  const char* name;
  const char* unit;
  const char* formula;
  double (*compute)(const IoAgg&);
};

/// Every registered io metric: field passthroughs plus the derived ratios
/// (read_amplification, overlap_efficiency, retry_rate).
const std::vector<IoMetricDef>& io_metric_registry();

/// nullptr when unknown.
const IoMetricDef* find_io_metric(const std::string& name);

// --- per-tenant SLO aggregates ----------------------------------------------

/// Deterministic SLO summary of one tenant (or the "*" all-tenants view),
/// filled by slo::SloMonitor::snapshot from its fixed-bucket histograms
/// and sliding-window burn evaluation (docs/SLO.md). Same completeness
/// contract as vgpu::Counters / TenantAgg / IoAgg: lint rule 4 (acsr_audit)
/// parses the fields of this struct and requires a passthrough metric per
/// field in metrics.cpp, so a new SLO column cannot ship unobservable.
struct SloAgg {
  std::uint64_t requests = 0;    ///< requests observed
  std::uint64_t violations = 0;  ///< requests over the latency target
  std::uint64_t breaches = 0;    ///< edge-triggered burn-threshold crossings
  double burn_rate = 0.0;        ///< window violation fraction / error budget
  double latency_p50_s = 0.0;    ///< admission..completion percentiles
  double latency_p95_s = 0.0;
  double latency_p99_s = 0.0;
  double latency_max_s = 0.0;    ///< exact maximum observed
  double queue_wait_p50_s = 0.0; ///< admission..launch percentiles
  double queue_wait_p95_s = 0.0;
  double queue_wait_max_s = 0.0;
};

/// A named, documented SLO metric over one tenant's aggregate (the
/// slo-plane mirror of TenantMetricDef; acsr_slo --tenants prints one
/// column per entry). All slo metrics are model quantities over
/// fixed-bucket histograms, hence deterministic.
struct SloMetricDef {
  const char* name;
  const char* unit;
  const char* formula;
  double (*compute)(const SloAgg&);
};

/// Every registered slo metric: field passthroughs plus the derived
/// violation_rate.
const std::vector<SloMetricDef>& slo_metric_registry();

/// nullptr when unknown.
const SloMetricDef* find_slo_metric(const std::string& name);

}  // namespace acsr::prof
