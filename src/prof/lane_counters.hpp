// Per-launch lane-utilisation tallies collected by the profiler.
//
// `Counters` (src/vgpu/counters.hpp) deliberately aggregates away *which*
// lanes participated in each warp instruction — the cost model does not
// need it. The observability metrics do: lane occupancy, the divergence
// ratio, and coalescing efficiency (useful bytes / sector bytes) are all
// ratios over per-instruction active-lane populations. LaneCounters holds
// those extra tallies, kept strictly outside `Counters` so the
// metering-parity contract (tests/test_metering_invariance.cpp) is
// untouched: profiling may add these reads, never a metered event.
//
// Warp's accounting helpers feed this through `KernelEnv::prof`, a pointer
// that is null unless the launch runs under ACSR_PROF/ACSR_TRACE — so the
// cost when profiling is off is one never-taken null test per accounting
// call, on par with the sanitizer's `env.sanitize` branch.
//
// Both executor paths (analytic affine fast path and the per-lane
// reference loop) report the *true* active mask here, so profiled numbers
// are identical whichever path ran (pinned by the profiled mode of the
// invariance suite).
#pragma once

#include <cstdint>

namespace acsr::prof {

struct LaneCounters {
  // Memory path: one "slot" entry of 32 per warp-level load/store/atomic
  // instruction, active entries = lanes participating in it.
  std::uint64_t mem_lane_slots = 0;
  std::uint64_t mem_active_lanes = 0;
  // Arithmetic path, weighted by flops-per-lane (an FMA pass counts 2).
  std::uint64_t flop_lane_slots = 0;
  std::uint64_t flop_active_lanes = 0;
  // Bytes the active lanes asked for (element size x active lanes), as
  // opposed to the 32 B sectors the memory system actually moved
  // (Counters::gmem_bytes / tex_bytes). Their ratio is the coalescing
  // efficiency.
  std::uint64_t useful_gmem_bytes = 0;
  std::uint64_t useful_tex_bytes = 0;

  LaneCounters& operator+=(const LaneCounters& o) {
    mem_lane_slots += o.mem_lane_slots;
    mem_active_lanes += o.mem_active_lanes;
    flop_lane_slots += o.flop_lane_slots;
    flop_active_lanes += o.flop_active_lanes;
    useful_gmem_bytes += o.useful_gmem_bytes;
    useful_tex_bytes += o.useful_tex_bytes;
    return *this;
  }
};

}  // namespace acsr::prof
