// Convenience wrapper for profiling one engine's SpMV: builds the engine
// under a profiler context labelled with the engine name (so the metrics
// document groups its kernels per engine) and runs one simulated SpMV.
//
// Lives in prof/ but is header-only and pulls in core/factory.hpp, so only
// translation units that already link acsr_core (the CLI, tests, benches)
// may include it — the acsr_prof *library* stays below vgpu in the layer
// stack.
#pragma once

#include <string>
#include <vector>

#include "core/factory.hpp"
#include "prof/prof.hpp"

namespace acsr::prof {

/// Build `engine_name` on `dev` for `a`, run one simulated SpMV of the
/// all-ones vector under a profiler context named after the engine, and
/// return the simulated seconds. Throws whatever the engine build throws
/// (InputError for shape refusals, DeviceOom for over-budget formats).
template <class T>
double capture_engine_spmv(const std::string& engine_name, vgpu::Device& dev,
                           const mat::Csr<T>& a,
                           core::EngineConfig cfg = {}) {
  ScopedContext ctx(engine_name);
  auto engine = core::make_engine<T>(engine_name, dev, a, cfg);
  std::vector<T> x(static_cast<std::size_t>(a.cols), T{1});
  std::vector<T> y;
  return engine->simulate(x, y);
}

}  // namespace acsr::prof
