#include "prof/report.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <ostream>

#include "common/table.hpp"

namespace acsr::prof {

namespace {

const std::string kNoContext = "(none)";

/// Group samples by context, then kernel; "total" aggregates the group.
struct Grouped {
  // std::map: deterministic iteration, deterministic serialised docs.
  std::map<std::string, std::map<std::string, KernelAgg>> kernels;
  std::map<std::string, KernelAgg> totals;
};

Grouped group(const std::vector<LaunchSample>& launches) {
  Grouped g;
  for (const LaunchSample& s : launches) {
    const std::string& ctx = s.context.empty() ? kNoContext : s.context;
    g.kernels[ctx][s.kernel].add(s);
    g.totals[ctx].add(s);
  }
  return g;
}

json::Object metrics_of(const KernelAgg& agg) {
  json::Object o;
  for (const MetricDef& m : metric_registry())
    o.emplace(m.name, m.compute(agg));
  return o;
}

std::string fmt(double v) {
  if (v == 0.0) return "0";
  const double a = std::fabs(v);
  if (a >= 1e6 || a < 1e-3) {
    std::ostringstream os;
    os << std::scientific << std::setprecision(3) << v;
    return os.str();
  }
  return Table::num(v, a >= 100.0 ? 1 : 3);
}

}  // namespace

json::Value metrics_doc(const std::vector<LaunchSample>& launches,
                        double retry_backoff_s) {
  const Grouped g = group(launches);
  json::Object engines;
  for (const auto& [ctx, kernels] : g.kernels) {
    json::Object section;
    section.emplace("total", metrics_of(g.totals.at(ctx)));
    json::Object ks;
    for (const auto& [name, agg] : kernels)
      ks.emplace(name, metrics_of(agg));
    section.emplace("kernels", std::move(ks));
    engines.emplace(ctx, std::move(section));
  }
  json::Object doc;
  doc.emplace("schema", kMetricsSchema);
  doc.emplace("retry_backoff_s", retry_backoff_s);
  doc.emplace("engines", std::move(engines));
  return json::Value(std::move(doc));
}

void render_summary(std::ostream& os,
                    const std::vector<LaunchSample>& launches,
                    double retry_backoff_s) {
  const Grouped g = group(launches);
  if (launches.empty()) {
    os << "acsr-prof: no launches recorded (is ACSR_PROF set?)\n";
    return;
  }
  for (const auto& [ctx, kernels] : g.kernels) {
    const KernelAgg& total = g.totals.at(ctx);
    os << "==== acsr-prof summary";
    if (ctx != kNoContext) os << ": " << ctx;
    os << " (" << total.launches << " launches, "
       << Table::num(total.duration_s * 1e3, 3) << " model ms) ====\n";

    std::vector<const std::pair<const std::string, KernelAgg>*> rows;
    for (const auto& kv : kernels) rows.push_back(&kv);
    std::stable_sort(rows.begin(), rows.end(), [](auto* a, auto* b) {
      return a->second.duration_s > b->second.duration_s;
    });
    constexpr std::size_t kMaxRows = 25;  // acsr_row<N> kernels are legion

    Table t({"Time(%)", "Model ms", "Launches", "Avg ms", "Occup %",
             "Coalesce", "Name"});
    for (std::size_t i = 0; i < rows.size() && i < kMaxRows; ++i) {
      const KernelAgg& a = rows[i]->second;
      t.add_row({Table::num(100.0 * a.duration_s /
                                std::max(total.duration_s, 1e-300),
                            1),
                 Table::num(a.duration_s * 1e3, 4),
                 Table::integer(static_cast<long long>(a.launches)),
                 Table::num(a.duration_s * 1e3 /
                                static_cast<double>(a.launches),
                            4),
                 Table::num(lane_occupancy_pct(a.lanes), 1),
                 Table::num(coalescing_efficiency(a.lanes, a.counters), 3),
                 rows[i]->first});
    }
    if (rows.size() > kMaxRows)
      t.add_row({"", "", "", "", "", "",
                 "... " + std::to_string(rows.size() - kMaxRows) +
                     " more kernels"});
    t.print(os);
  }
  if (retry_backoff_s > 0.0)
    os << "fault-retry backoff charged to the clock: "
       << Table::num(retry_backoff_s * 1e3, 4) << " ms\n";
}

void render_engine_matrix(std::ostream& os, const json::Value& doc) {
  // Display subset: the headline attribution metrics, one engine per
  // column (full numbers live in the JSON doc).
  static const char* const kShow[] = {
      "model_ms",          "lane_occupancy_pct",
      "divergence_ratio",  "coalescing_efficiency",
      "tex_coalescing_efficiency", "sectors_per_request",
      "memory_share",      "issue_share",
      "latency_share",     "dp_overhead_share",
      "dram_mb",           "counters.child_launches",
  };
  const json::Value* engines = doc.find("engines");
  if (engines == nullptr || !engines->is_object() ||
      engines->as_object().empty()) {
    os << "acsr-prof: empty metrics document\n";
    return;
  }
  std::vector<std::string> headers = {"metric"};
  for (const auto& [name, section] : engines->as_object())
    headers.push_back(name);
  Table t(std::move(headers));
  for (const char* metric : kShow) {
    std::vector<std::string> row = {metric};
    for (const auto& [name, section] : engines->as_object()) {
      const json::Value* total = section.find("total");
      const json::Value* v =
          total != nullptr ? total->find(metric) : nullptr;
      row.push_back(v != nullptr && v->is_number() ? fmt(v->as_number())
                                                   : "-");
    }
    t.add_row(std::move(row));
  }
  t.print(os);
}

std::vector<Drift> diff_metrics(const json::Value& current,
                                const json::Value& baseline,
                                double threshold) {
  std::vector<Drift> out;
  const double nan = std::nan("");
  const json::Value* ce = current.find("engines");
  const json::Value* be = baseline.find("engines");
  if (ce == nullptr || be == nullptr || !ce->is_object() ||
      !be->is_object())
    return out;

  auto total_of = [](const json::Value& section,
                     const std::string& metric) -> const json::Value* {
    const json::Value* t = section.find("total");
    return t != nullptr ? t->find(metric) : nullptr;
  };

  // Engines present on one side only: structural drift, always reported.
  for (const auto& [name, sec] : be->as_object())
    if (ce->find(name) == nullptr)
      out.push_back({"engines/" + name, 0.0, nan, 0.0});
  for (const auto& [name, sec] : ce->as_object())
    if (be->find(name) == nullptr)
      out.push_back({"engines/" + name, nan, 0.0, 0.0});

  for (const auto& [name, csec] : ce->as_object()) {
    const json::Value* bsec = be->find(name);
    if (bsec == nullptr) continue;
    for (const MetricDef& m : metric_registry()) {
      if (!m.deterministic) continue;
      const json::Value* cv = total_of(csec, m.name);
      const json::Value* bv = total_of(*bsec, m.name);
      if (cv == nullptr || bv == nullptr || !cv->is_number() ||
          !bv->is_number())
        continue;
      const double b = bv->as_number();
      const double c = cv->as_number();
      if (b == c) continue;
      const double rel = (c - b) / std::max(std::fabs(b), 1e-12);
      if (std::fabs(rel) <= threshold) continue;
      out.push_back({"engines/" + name + "/total/" + m.name, b, c, rel});
    }
  }
  std::stable_sort(out.begin(), out.end(), [](const Drift& a,
                                              const Drift& b) {
    return std::fabs(a.rel) > std::fabs(b.rel);
  });
  return out;
}

}  // namespace acsr::prof
