// TCOO-style engine (Yang et al. [28]: tiled COO for graph mining).
// Columns are partitioned into contiguous tiles so the x slice a kernel
// touches fits in the read-only cache; each tile's entries run through the
// segmented-COO kernel. The tile count is the algorithm's input parameter,
// found — as in the paper — by exhaustive search: every candidate requires
// a full re-partition and trial runs, which is the preprocessing cost
// Table III / Fig. 4 charges TCOO for.
#pragma once

#include <algorithm>

#include "analysis/shape.hpp"
#include "spmv/coo_engine.hpp"
#include "spmv/engine.hpp"

namespace acsr::spmv {

template <class T>
class TcooEngine final : public EngineBase<T> {
 public:
  /// trial_reps: timing repetitions per tuning candidate (the tuner's own
  /// measurement loop; the paper used 50-run averages).
  TcooEngine(vgpu::Device& dev, const mat::Csr<T>& a, int trial_reps = 40)
      : EngineBase<T>(dev, "TCOO"), host_(a) {
    vgpu::HostModel hm;
    tune(a, hm, trial_reps);
    this->report_.preprocess_s = hm.seconds();
    upload();
  }

  mat::index_t rows() const override { return host_.rows; }
  mat::index_t cols() const override { return host_.cols; }
  mat::offset_t nnz() const override { return host_.nnz(); }
  int num_tiles() const { return n_tiles_; }

  void apply(const std::vector<T>& x, std::vector<T>& y) const override {
    ACSR_CHECK(static_cast<mat::index_t>(x.size()) == host_.cols);
    y.assign(static_cast<std::size_t>(host_.rows), T{0});
    for (std::size_t i = 0; i < val_.size(); ++i)
      y[static_cast<std::size_t>(row_[i])] +=
          val_[i] * x[static_cast<std::size_t>(col_[i])];
  }

  double simulate(const std::vector<T>& x, std::vector<T>& y) override {
    ACSR_CHECK(static_cast<mat::index_t>(x.size()) == host_.cols);
    auto x_dev = this->stage_x(x);
    auto y_dev = this->stage_y(static_cast<std::size_t>(host_.rows));
    const double t = run_tiles(row_dev_.cspan(), col_dev_.cspan(),
                               val_dev_.cspan(), x_dev,
                               y_dev);
    y = this->staged_y();
    return t;
  }

 private:
  /// Run the per-tile kernels sequentially; x accesses within a tile have
  /// a footprint of one tile width, which the texture-cache model rewards.
  double run_tiles(vgpu::DeviceSpan<const mat::index_t> rows_s,
                   vgpu::DeviceSpan<const mat::index_t> cols_s,
                   vgpu::DeviceSpan<const T> vals_s,
                   vgpu::DeviceSpan<const T> x, vgpu::DeviceSpan<T> y) {
    std::vector<vgpu::KernelRun> runs;
    runs.push_back(zero_fill(this->dev_, y));  // tiles accumulate into y
    const mat::index_t tile_w =
        (host_.cols + static_cast<mat::index_t>(n_tiles_) - 1) /
        static_cast<mat::index_t>(n_tiles_);
    for (int t = 0; t < n_tiles_; ++t) {
      const long long lo = tile_off_[static_cast<std::size_t>(t)];
      const long long hi = tile_off_[static_cast<std::size_t>(t) + 1];
      const long long n = hi - lo;
      if (n == 0) continue;
      vgpu::LaunchConfig cfg;
      cfg.name = "tcoo_tile";
      cfg.block_dim = 128;
      cfg.grid_dim = std::max<long long>(1, (n + 127) / 128);
      // The tile's x slice: what the read-only cache actually holds.
      const auto xlo = static_cast<std::size_t>(t) *
                       static_cast<std::size_t>(tile_w);
      const auto xw = std::min<std::size_t>(
          static_cast<std::size_t>(tile_w), x.size() - xlo);
      auto x_tile = x.subspan(xlo, xw);
      auto rs = rows_s.subspan(static_cast<std::size_t>(lo),
                               static_cast<std::size_t>(n));
      auto cs = cols_s.subspan(static_cast<std::size_t>(lo),
                               static_cast<std::size_t>(n));
      auto vs = vals_s.subspan(static_cast<std::size_t>(lo),
                               static_cast<std::size_t>(n));
      const auto col_base = static_cast<mat::index_t>(xlo);
      runs.push_back(this->dev_.launch_warps(cfg, [&](vgpu::Warp& w) {
        const long long base = w.global_warp() * vgpu::kWarpSize;
        if (base >= n) return;
        // Entries' columns are rebased into the tile slice.
        coo_tile_warp(w, rs, cs, vs, x_tile, y, n, base, col_base);
      }));
    }
    vgpu::KernelRun agg =
        runs.empty() ? vgpu::KernelRun{} : runs.front();
    for (std::size_t i = 1; i < runs.size(); ++i) {
      agg.counters += runs[i].counters;
      agg.duration_s += runs[i].duration_s;
    }
    agg.name = "tcoo";
    this->report_.last_run = agg;
    return vgpu::combine_sequential(runs);
  }

  static void coo_tile_warp(vgpu::Warp& w,
                            vgpu::DeviceSpan<const mat::index_t> row_idx,
                            vgpu::DeviceSpan<const mat::index_t> col_idx,
                            vgpu::DeviceSpan<const T> vals,
                            vgpu::DeviceSpan<const T> x_tile,
                            vgpu::DeviceSpan<T> y, long long n_entries,
                            long long base, mat::index_t col_base) {
    using vgpu::LaneArray;
    using vgpu::Mask;
    LaneArray<long long> idx = LaneArray<long long>::iota(base);
    const Mask live = idx.where(
        [n_entries](long long i) { return i < n_entries; }, w.active_mask());
    if (live == 0) return;
    const LaneArray<mat::index_t> r = w.load(row_idx, idx, live);
    const LaneArray<mat::index_t> c = w.load(col_idx, idx, live);
    LaneArray<mat::index_t> c_local;
    for (int l = 0; l < vgpu::kWarpSize; ++l) c_local[l] = c[l] - col_base;
    w.count_alu(1);
    const LaneArray<T> v = w.load(vals, idx, live);
    const LaneArray<T> xv = w.load_tex(x_tile, c_local, live);
    LaneArray<T> prod;
    for (int l = 0; l < vgpu::kWarpSize; ++l) prod[l] = v[l] * xv[l];
    w.count_flops(live, 1, sizeof(T) == 8);
    const Mask heads = w.ballot(
        [&](int l) {
          return l == 0 || !vgpu::lane_active(live, l - 1) ||
                 r[l] != r[l - 1];
        },
        live);
    const LaneArray<T> scanned = w.segmented_scan_add(prod, heads, live);
    const Mask tails = w.ballot(
        [&](int l) {
          return l == vgpu::kWarpSize - 1 ||
                 !vgpu::lane_active(live, l + 1) ||
                 vgpu::lane_active(heads, l + 1);
        },
        live);
    // Segment tails accumulate with atomics (rows recur across tiles).
    w.atomic_add(y, r, scanned, tails);
  }

  void partition(const mat::Csr<T>& a, int n_tiles, vgpu::HostModel& hm) {
    n_tiles_ = n_tiles;
    const mat::index_t tile_w =
        (a.cols + static_cast<mat::index_t>(n_tiles) - 1) /
        static_cast<mat::index_t>(n_tiles);
    const auto nnz = static_cast<std::size_t>(a.nnz());
    row_.clear();
    col_.clear();
    val_.clear();
    row_.reserve(nnz);
    col_.reserve(nnz);
    val_.reserve(nnz);
    tile_off_.assign(static_cast<std::size_t>(n_tiles) + 1, 0);
    // Bucket entries by tile (counting pass + scatter pass), row order
    // preserved inside a tile because rows are scanned in order.
    std::vector<long long> count(static_cast<std::size_t>(n_tiles), 0);
    for (mat::index_t c : a.col_idx)
      ++count[static_cast<std::size_t>(c / tile_w)];
    for (int t = 0; t < n_tiles; ++t)
      tile_off_[static_cast<std::size_t>(t) + 1] =
          tile_off_[static_cast<std::size_t>(t)] +
          count[static_cast<std::size_t>(t)];
    row_.resize(nnz);
    col_.resize(nnz);
    val_.resize(nnz);
    std::vector<long long> cur(tile_off_.begin(), tile_off_.end() - 1);
    for (mat::index_t r = 0; r < a.rows; ++r)
      for (mat::offset_t i = a.row_off[static_cast<std::size_t>(r)];
           i < a.row_off[static_cast<std::size_t>(r) + 1]; ++i) {
        const mat::index_t c = a.col_idx[static_cast<std::size_t>(i)];
        const auto t = static_cast<std::size_t>(c / tile_w);
        const auto wpos = static_cast<std::size_t>(cur[t]++);
        row_[wpos] = r;
        col_[wpos] = c;
        val_[wpos] = a.vals[static_cast<std::size_t>(i)];
      }
    hm.charge_ops(4.0 * static_cast<double>(nnz));
  }

  void tune(const mat::Csr<T>& a, vgpu::HostModel& hm, int trial_reps) {
    static constexpr int kCandidates[] = {1, 2, 3, 4, 6, 8, 12, 16, 24, 32,
                                          48, 64};
    double best_t = -1.0;
    int best_tiles = 1;
    std::vector<T> x(static_cast<std::size_t>(a.cols), T{1});
    for (int cand : kCandidates) {
      if (cand > a.cols) break;
      partition(a, cand, hm);
      // Trial upload + timed runs, all charged to preprocessing.
      auto rd = this->dev_.template alloc<mat::index_t>(row_.size(), "t.r");
      rd.host() = row_;
      auto cd = this->dev_.template alloc<mat::index_t>(col_.size(), "t.c");
      cd.host() = col_;
      auto vd = this->dev_.template alloc<T>(val_.size(), "t.v");
      vd.host() = val_;
      hm.charge_seconds(
          this->dev_
              .note_transfer(rd.bytes() + cd.bytes() + vd.bytes())
              .duration_s);
      auto xd = this->dev_.template alloc<T>(x.size(), "t.x");
      xd.host() = x;
      auto yd = this->dev_.template alloc<T>(
          static_cast<std::size_t>(a.rows), "t.y");
      const double t1 =
          run_tiles(rd.cspan(), cd.cspan(), vd.cspan(), xd.cspan(),
                    yd.span());
      hm.charge_seconds(t1 * static_cast<double>(trial_reps));
      if (best_t < 0.0 || t1 < best_t) {
        best_t = t1;
        best_tiles = cand;
      }
    }
    partition(a, best_tiles, hm);  // final layout
  }

  void upload() {
    row_dev_ = this->dev_.template alloc<mat::index_t>(row_.size(),
                                                       "tcoo.row");
    row_dev_.host() = row_;
    col_dev_ = this->dev_.template alloc<mat::index_t>(col_.size(),
                                                       "tcoo.col");
    col_dev_.host() = col_;
    val_dev_ = this->dev_.template alloc<T>(val_.size(), "tcoo.val");
    val_dev_.host() = val_;
    auto offs = this->dev_.template alloc<long long>(tile_off_.size(),
                                                     "tcoo.off");
    offs.host() = tile_off_;
    const std::size_t b = row_dev_.bytes() + col_dev_.bytes() +
                          val_dev_.bytes() + offs.bytes();
    off_dev_ = std::move(offs);
    this->charge_upload(b);
    this->report_.device_bytes = b;
  }

  mat::Csr<T> host_;
  int n_tiles_ = 1;
  std::vector<long long> tile_off_;
  std::vector<mat::index_t> row_;
  std::vector<mat::index_t> col_;
  std::vector<T> val_;
  vgpu::DeviceBuffer<mat::index_t> row_dev_;
  vgpu::DeviceBuffer<mat::index_t> col_dev_;
  vgpu::DeviceBuffer<T> val_dev_;
  vgpu::DeviceBuffer<long long> off_dev_;
};

/// Shape class of one generic TCOO tile launch: the tile's entries (a
/// contiguous bucket of tile_n non-zeros), its x slice of xw elements
/// starting at column col_base, and the partition invariant that every
/// entry's column lies in [col_base, col_base + xw - 1] — so the rebased
/// column c - col_base indexes the slice in bounds. The per-SpMV launch
/// sequence (zero-fill, then one such launch per tile accumulating with
/// atomics) is safe for any tile count because the proof is per generic
/// tile.
inline analysis::ShapeClass tcoo_shape_class() {
  namespace an = acsr::analysis;
  const an::Sym n_rows = an::Sym::param("n_rows");
  const an::Sym tile_n = an::Sym::param("tile_n");
  const an::Sym xw = an::Sym::param("xw");
  const an::Sym col_base = an::Sym::param("col_base");
  an::ShapeClass sc;
  sc.engine = "tcoo";
  sc.params = {an::param("n_rows", 0, "matrix rows"),
               an::param("tile_n", 0, "entries in the generic tile"),
               an::param("xw", 0, "tile's x-slice width"),
               an::param("col_base", 0, "tile's first column"),
               an::param("grid", 1, "launch grid dim")};
  sc.spans = {
      an::index_span("tcoo.row", tile_n, {an::Sym(0), n_rows - an::Sym(1)},
                     "tile row ids, sorted non-decreasing", true),
      an::index_span("tcoo.col", tile_n,
                     {col_base, col_base + xw - an::Sym(1)},
                     "tile columns (partition invariant)"),
      an::data_span("tcoo.val", tile_n, "tile values"),
      an::data_span("x_tile", xw, "x slice for this tile"),
      an::data_span("y", n_rows, "output vector", /*initialized=*/false),
  };
  return sc;
}

}  // namespace acsr::spmv
