// BCSR (blocked CSR) engine — the related-work format for matrices with
// small dense blocks (BCSR/BELLPACK in the paper's section IX). Non-zeros
// are covered by bs x bs dense tiles addressed by one column index per
// tile, cutting index bandwidth when the structure is blocked and paying
// zero fill-in when it is not (power-law graphs: lots). Included for the
// format-landscape completeness the paper surveys; the fill-in report
// shows exactly why nobody uses BCSR on social graphs.
#pragma once

#include <array>
#include <map>

#include "analysis/shape.hpp"
#include "spmv/engine.hpp"
#include "vgpu/lane_array.hpp"

namespace acsr::spmv {

template <class T>
class BcsrEngine final : public EngineBase<T> {
 public:
  BcsrEngine(vgpu::Device& dev, const mat::Csr<T>& a, int block_size = 2)
      : EngineBase<T>(dev, "BCSR"), host_(a), bs_(block_size) {
    ACSR_REQUIRE(block_size >= 1 && block_size <= 8,
                 "BCSR block size must be in [1, 8]");
    vgpu::HostModel hm;
    build(a, hm);
    this->report_.preprocess_s = hm.seconds();
    upload();
  }

  mat::index_t rows() const override { return host_.rows; }
  mat::index_t cols() const override { return host_.cols; }
  mat::offset_t nnz() const override { return host_.nnz(); }
  int block_size() const { return bs_; }
  std::size_t num_blocks() const { return blk_col_.size(); }
  /// Stored slots per actual non-zero (1.0 = no fill-in).
  double fill_in() const {
    return host_.nnz() == 0
               ? 1.0
               : static_cast<double>(blk_col_.size()) *
                     static_cast<double>(bs_ * bs_) /
                     static_cast<double>(host_.nnz());
  }

  void apply(const std::vector<T>& x, std::vector<T>& y) const override {
    ACSR_CHECK(static_cast<mat::index_t>(x.size()) == host_.cols);
    y.assign(static_cast<std::size_t>(host_.rows), T{0});
    const auto area = static_cast<std::size_t>(bs_ * bs_);
    for (mat::index_t br = 0; br < n_block_rows_; ++br) {
      for (mat::offset_t b = blk_row_off_[static_cast<std::size_t>(br)];
           b < blk_row_off_[static_cast<std::size_t>(br) + 1]; ++b) {
        const mat::index_t bc = blk_col_[static_cast<std::size_t>(b)];
        for (int i = 0; i < bs_; ++i) {
          const mat::index_t row = br * bs_ + i;
          if (row >= host_.rows) break;
          T sum{0};
          for (int j = 0; j < bs_; ++j) {
            const mat::index_t col = bc * bs_ + j;
            if (col >= host_.cols) break;
            sum += blk_val_[static_cast<std::size_t>(b) * area +
                            static_cast<std::size_t>(i * bs_ + j)] *
                   x[static_cast<std::size_t>(col)];
          }
          y[static_cast<std::size_t>(row)] += sum;
        }
      }
    }
  }

  double simulate(const std::vector<T>& x, std::vector<T>& y) override {
    ACSR_CHECK(static_cast<mat::index_t>(x.size()) == host_.cols);
    auto x_dev = this->stage_x(x);
    auto y_dev = this->stage_y(static_cast<std::size_t>(host_.rows));

    // One warp per block-row: lanes split across the row's blocks, each
    // lane computing its block's bs x bs product for one output sub-row.
    vgpu::LaunchConfig cfg;
    cfg.name = "bcsr";
    cfg.block_dim = 128;
    cfg.grid_dim = std::max<long long>(1, (n_block_rows_ + 3) / 4);
    auto ro = broff_dev_.cspan();
    auto bc = bcol_dev_.cspan();
    auto bv = bval_dev_.cspan();
    auto xs = x_dev;
    auto ys = y_dev;
    const mat::index_t nbr = n_block_rows_;
    const int bs = bs_;
    const mat::index_t n_rows = host_.rows;

    const vgpu::KernelRun run =
        this->dev_.launch_warps(cfg, [&](vgpu::Warp& w) {
          using vgpu::LaneArray;
          using vgpu::Mask;
          const long long br = w.global_warp();
          if (br >= nbr) return;
          const mat::offset_t lo =
              w.load_scalar(ro, static_cast<std::size_t>(br));
          const mat::offset_t hi =
              w.load_scalar(ro, static_cast<std::size_t>(br) + 1);
          const auto area = static_cast<long long>(bs * bs);

          // Accumulators for the block-row's bs output rows, kept in the
          // first bs lanes after the reduction.
          std::array<T, 8> out{};
          for (mat::offset_t b = lo; b < hi; b += vgpu::kWarpSize / bs) {
            // Each group of bs lanes takes one block; lane i within the
            // group owns output sub-row i.
            Mask m = 0;
            LaneArray<long long> bidx{};
            LaneArray<int> sub{};
            for (int l = 0; l < vgpu::kWarpSize; ++l) {
              const long long mine = b + l / bs;
              if (mine < hi) {
                m |= vgpu::lane_bit(l);
                bidx[l] = mine;
                sub[l] = l % bs;
              }
            }
            if (m == 0) break;
            const LaneArray<mat::index_t> bcol = w.load(bc, bidx, m);
            LaneArray<T> sum{};
            for (int j = 0; j < bs; ++j) {
              LaneArray<long long> vslot;
              LaneArray<long long> xidx;
              Mask mj = 0;  // the matrix edge may cut the last block column
              for (int l = 0; l < vgpu::kWarpSize; ++l) {
                vslot[l] = bidx[l] * area + sub[l] * bs + j;
                xidx[l] = static_cast<long long>(bcol[l]) * bs + j;
                if (vgpu::lane_active(m, l) &&
                    xidx[l] < static_cast<long long>(xs.size()))
                  mj |= vgpu::lane_bit(l);
              }
              if (mj == 0) continue;
              const LaneArray<T> val = w.load(bv, vslot, mj);
              const LaneArray<T> xv = w.load_tex(xs, xidx, mj);
              vgpu::fma_into(sum, val, xv, mj);
              w.count_flops(mj, 2, sizeof(T) == 8);
            }
            // Fold the per-block partial sums into the block-row
            // accumulators (functional: sequential; cost: one shuffle
            // round + adds).
            w.count_shuffles(5);
            w.count_alu(4);
            for (int l = 0; l < vgpu::kWarpSize; ++l)
              if (vgpu::lane_active(m, l))
                out[static_cast<std::size_t>(sub[l])] += sum[l];
          }
          // First bs lanes store the block-row's outputs.
          LaneArray<long long> rows_idx{};
          LaneArray<T> vals_out{};
          Mask store_m = 0;
          for (int i = 0; i < bs; ++i) {
            const long long row = br * bs + i;
            if (row >= n_rows) break;
            rows_idx[i] = row;
            vals_out[i] = out[static_cast<std::size_t>(i)];
            store_m |= vgpu::lane_bit(i);
          }
          w.store(ys, rows_idx, vals_out, store_m);
        });
    this->report_.last_run = run;
    y = this->staged_y();
    return run.duration_s;
  }

 private:
  void build(const mat::Csr<T>& a, vgpu::HostModel& hm) {
    n_block_rows_ = (a.rows + bs_ - 1) / bs_;
    const auto area = static_cast<std::size_t>(bs_ * bs_);
    blk_row_off_.assign(static_cast<std::size_t>(n_block_rows_) + 1, 0);
    blk_col_.clear();
    blk_val_.clear();
    for (mat::index_t br = 0; br < n_block_rows_; ++br) {
      // Collect the block columns touched by this block-row.
      std::map<mat::index_t, std::size_t> cols_in_row;
      for (int i = 0; i < bs_; ++i) {
        const mat::index_t r = br * bs_ + i;
        if (r >= a.rows) break;
        for (mat::offset_t k = a.row_off[static_cast<std::size_t>(r)];
             k < a.row_off[static_cast<std::size_t>(r) + 1]; ++k)
          cols_in_row.emplace(
              a.col_idx[static_cast<std::size_t>(k)] / bs_, 0);
      }
      for (auto& [bc, idx] : cols_in_row) {
        idx = blk_col_.size();
        blk_col_.push_back(bc);
        blk_val_.insert(blk_val_.end(), area, T{0});
      }
      for (int i = 0; i < bs_; ++i) {
        const mat::index_t r = br * bs_ + i;
        if (r >= a.rows) break;
        for (mat::offset_t k = a.row_off[static_cast<std::size_t>(r)];
             k < a.row_off[static_cast<std::size_t>(r) + 1]; ++k) {
          const mat::index_t c = a.col_idx[static_cast<std::size_t>(k)];
          const std::size_t b = cols_in_row[c / bs_];
          blk_val_[b * area + static_cast<std::size_t>(i * bs_ + c % bs_)] =
              a.vals[static_cast<std::size_t>(k)];
        }
      }
      blk_row_off_[static_cast<std::size_t>(br) + 1] =
          static_cast<mat::offset_t>(blk_col_.size());
    }
    // Restructure touches nnz entries plus every (partly zero) block slot,
    // with map overhead for the block discovery.
    hm.charge_ops(4.0 * static_cast<double>(a.nnz()) +
                  2.0 * static_cast<double>(blk_val_.size()));
    this->report_.padding_ratio =
        blk_val_.empty()
            ? 0.0
            : 1.0 - static_cast<double>(a.nnz()) /
                        static_cast<double>(blk_val_.size());
  }

  void upload() {
    broff_dev_ = this->dev_.template alloc<mat::offset_t>(
        blk_row_off_.size(), "bcsr.roff");
    broff_dev_.host() = blk_row_off_;
    bcol_dev_ = this->dev_.template alloc<mat::index_t>(blk_col_.size(),
                                                        "bcsr.col");
    bcol_dev_.host() = blk_col_;
    bval_dev_ =
        this->dev_.template alloc<T>(blk_val_.size(), "bcsr.val");
    bval_dev_.host() = blk_val_;
    const std::size_t b =
        broff_dev_.bytes() + bcol_dev_.bytes() + bval_dev_.bytes();
    this->charge_upload(b);
    this->report_.device_bytes = b;
  }

  mat::Csr<T> host_;
  int bs_;
  mat::index_t n_block_rows_ = 0;
  std::vector<mat::offset_t> blk_row_off_;
  std::vector<mat::index_t> blk_col_;
  std::vector<T> blk_val_;
  vgpu::DeviceBuffer<mat::offset_t> broff_dev_;
  vgpu::DeviceBuffer<mat::index_t> bcol_dev_;
  vgpu::DeviceBuffer<T> bval_dev_;
};

/// Shape class of the BCSR kernel: a block-CSR structure over bs x bs
/// tiles. The tile-value slot bidx*bs^2 + sub*bs + j stays inside the
/// n_blocks*bs^2 store by cancellation ((n_blocks-1)*bs^2 + (bs-1)*bs +
/// (bs-1) == n_blocks*bs^2 - 1, with bs symbolic in [1, 8]); the x index
/// bcol*bs + j is additionally edge-guarded by the kernel's xs.size()
/// mask, which the model mirrors as an interval refinement.
inline analysis::ShapeClass bcsr_shape_class() {
  namespace an = acsr::analysis;
  const an::Sym n_rows = an::Sym::param("n_rows");
  const an::Sym n_cols = an::Sym::param("n_cols");
  const an::Sym nbr = an::Sym::param("nbr");
  const an::Sym n_blocks = an::Sym::param("n_blocks");
  const an::Sym bs = an::Sym::param("bs");
  const an::Sym n_bcols = an::Sym::param("n_bcols");
  an::ShapeClass sc;
  sc.engine = "bcsr";
  sc.params = {an::param("n_rows", 0, "matrix rows"),
               an::param("n_cols", 0, "matrix columns"),
               an::param("nbr", 0, "block rows"),
               an::param("n_blocks", 0, "stored bs x bs tiles"),
               an::param("bs", 1, 8, "tile edge (ACSR_REQUIRE'd <= 8)"),
               an::param("n_bcols", 0, "block columns"),
               an::param("grid", 1, "launch grid dim")};
  sc.spans = {
      an::index_span("bcsr.roff", nbr + an::Sym(1), {an::Sym(0), n_blocks},
                     "block-row pointers", true),
      an::index_span("bcsr.col", n_blocks,
                     {an::Sym(0), n_bcols - an::Sym(1)},
                     "tile block-column ids"),
      an::data_span("bcsr.val", n_blocks * bs * bs, "dense tile values"),
      an::data_span("x", n_cols, "input vector"),
      an::data_span("y", n_rows, "output vector", /*initialized=*/false),
  };
  return sc;
}

}  // namespace acsr::spmv
