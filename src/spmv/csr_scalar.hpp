// CSR-scalar: one thread per row (the naive CSR kernel the paper uses as
// the "straightforward SpMV for CSR" baseline). Suffers warp divergence —
// a warp runs for the *longest* of its 32 rows — and uncoalesced access to
// the matrix arrays, both of which the simulator observes directly.
#pragma once

#include <algorithm>

#include "spmv/csr_device.hpp"
#include "spmv/engine.hpp"
#include "vgpu/lane_array.hpp"

namespace acsr::spmv {

using vgpu::LaneArray;
using vgpu::Mask;

/// Warp body shared with tests: processes 32 consecutive rows.
/// `row_start`/`row_end` are per-row extent arrays — for plain CSR these
/// are row_off.subspan(0, rows) and row_off.subspan(1, rows); the
/// incremental (slack-padded) CSR passes its explicit begin/end arrays.
template <class T>
void csr_scalar_warp(vgpu::Warp& w,
                     vgpu::DeviceSpan<const mat::offset_t> row_start,
                     vgpu::DeviceSpan<const mat::offset_t> row_end,
                     vgpu::DeviceSpan<const mat::index_t> col_idx,
                     vgpu::DeviceSpan<const T> vals,
                     vgpu::DeviceSpan<const T> x, vgpu::DeviceSpan<T> y,
                     mat::index_t n_rows) {
  const LaneArray<long long> rows = w.global_threads();
  const Mask live =
      rows.where([n_rows](long long r) { return r < n_rows; },
                 w.active_mask());
  if (live == 0) return;

  const LaneArray<mat::offset_t> start = w.load(row_start, rows, live);
  const LaneArray<mat::offset_t> end = w.load(row_end, rows, live);
  w.count_alu(2);  // pointer math

  LaneArray<T> sum{};
  for (mat::offset_t t = 0;; ++t) {
    Mask m = 0;
    for (int l = 0; l < vgpu::kWarpSize; ++l)
      if (vgpu::lane_active(live, l) && start[l] + t < end[l])
        m |= vgpu::lane_bit(l);
    if (m == 0) break;
    LaneArray<mat::offset_t> idx;
    for (int l = 0; l < vgpu::kWarpSize; ++l) idx[l] = start[l] + t;
    const LaneArray<mat::index_t> col = w.load(col_idx, idx, m);
    const LaneArray<T> val = w.load(vals, idx, m);
    const LaneArray<T> xv = w.load_tex(x, col, m);
    vgpu::fma_into(sum, val, xv, m);
    w.count_flops(m, 2, sizeof(T) == 8);  // FMA = 2 flops
    w.count_alu(2);                       // loop compare + increment
  }
  w.store(y, rows, sum, live);
}

template <class T>
class CsrScalarEngine final : public EngineBase<T> {
 public:
  CsrScalarEngine(vgpu::Device& dev, const mat::Csr<T>& a)
      : EngineBase<T>(dev, "CSR-scalar"), host_(a) {
    // No transform: CSR ships as-is.
    dev_csr_ = CsrDevice<T>::upload(dev, a, this->name());
    this->charge_upload(dev_csr_.bytes());
    this->report_.device_bytes = dev_csr_.bytes();
  }

  mat::index_t rows() const override { return host_.rows; }
  mat::index_t cols() const override { return host_.cols; }
  mat::offset_t nnz() const override { return host_.nnz(); }

  void apply(const std::vector<T>& x, std::vector<T>& y) const override {
    host_.spmv(x, y);
  }

  double simulate(const std::vector<T>& x, std::vector<T>& y) override {
    ACSR_CHECK(static_cast<mat::index_t>(x.size()) == host_.cols);
    auto x_dev = this->dev_.template alloc<T>(x.size(), "x");
    x_dev.host() = x;
    auto y_dev = this->dev_.template alloc<T>(
        static_cast<std::size_t>(host_.rows), "y");

    const int block = 128;
    vgpu::LaunchConfig cfg;
    cfg.name = "csr_scalar";
    cfg.block_dim = block;
    cfg.grid_dim = std::max<long long>(1, (host_.rows + block - 1) / block);
    const auto nrows = static_cast<std::size_t>(host_.rows);
    auto rs = dev_csr_.row_off.cspan().subspan(0, nrows);
    auto re = dev_csr_.row_off.cspan().subspan(1, nrows);
    auto ci = dev_csr_.col_idx.cspan();
    auto va = dev_csr_.vals.cspan();
    auto xs = x_dev.cspan();
    auto ys = y_dev.span();
    const mat::index_t n = host_.rows;
    const vgpu::KernelRun run =
        this->dev_.launch_warps(cfg, [&](vgpu::Warp& w) {
          csr_scalar_warp<T>(w, rs, re, ci, va, xs, ys, n);
        });
    this->report_.last_run = run;
    y = y_dev.host();
    return run.duration_s;
  }

 private:
  mat::Csr<T> host_;
  CsrDevice<T> dev_csr_;
};

}  // namespace acsr::spmv
