// CSR-scalar: one thread per row (the naive CSR kernel the paper uses as
// the "straightforward SpMV for CSR" baseline). Suffers warp divergence —
// a warp runs for the *longest* of its 32 rows — and uncoalesced access to
// the matrix arrays, both of which the simulator observes directly.
#pragma once

#include <algorithm>
#include <vector>

#include "analysis/shape.hpp"
#include "spmv/csr_device.hpp"
#include "spmv/engine.hpp"
#include "vgpu/lane_array.hpp"

namespace acsr::spmv {

using vgpu::LaneArray;
using vgpu::Mask;

/// Warp body shared with tests: processes 32 consecutive rows.
/// `row_start`/`row_end` are per-row extent arrays — for plain CSR these
/// are row_off.subspan(0, rows) and row_off.subspan(1, rows); the
/// incremental (slack-padded) CSR passes its explicit begin/end arrays.
template <class T>
void csr_scalar_warp(vgpu::Warp& w,
                     vgpu::DeviceSpan<const mat::offset_t> row_start,
                     vgpu::DeviceSpan<const mat::offset_t> row_end,
                     vgpu::DeviceSpan<const mat::index_t> col_idx,
                     vgpu::DeviceSpan<const T> vals,
                     vgpu::DeviceSpan<const T> x, vgpu::DeviceSpan<T> y,
                     mat::index_t n_rows) {
  const LaneArray<long long> rows = w.global_threads();
  const Mask live =
      rows.where([n_rows](long long r) { return r < n_rows; },
                 w.active_mask());
  if (live == 0) return;

  // Consecutive rows per lane: unit-stride extents load.
  const LaneArray<mat::offset_t> start = w.load_seq(row_start, rows[0], live);
  const LaneArray<mat::offset_t> end = w.load_seq(row_end, rows[0], live);
  w.count_alu(2);  // pointer math

  // Each lane walks its row cursor start..end; a lane drops out of the
  // mask permanently once its row is exhausted, so the mask is maintained
  // incrementally and the tail iterations (the straggler rows a divergent
  // warp waits on) cost work proportional to the lanes still live.
  LaneArray<T> sum{};
  LaneArray<mat::offset_t> cur = start;
  Mask m = 0;
  for (Mask rem = live; rem != 0; rem &= rem - 1) {
    const int l = std::countr_zero(rem);
    if (cur[l] < end[l]) m |= vgpu::lane_bit(l);
  }
  while (m != 0) {
    LaneArray<mat::index_t> col{};
    LaneArray<T> val{};
    w.load_pair(col_idx, vals, cur, m, col, val);
    const LaneArray<T> xv = w.load_tex(x, col, m);
    vgpu::fma_into(sum, val, xv, m);
    w.count_flops(m, 2, sizeof(T) == 8);  // FMA = 2 flops
    w.count_alu(2);                       // loop compare + increment
    Mask next = 0;
    if (m == vgpu::kFullMask) {  // plain loop: no serial bit-scan chain
      for (int l = 0; l < vgpu::kWarpSize; ++l)
        if (++cur[l] < end[l]) next |= vgpu::lane_bit(l);
    } else {
      for (Mask rem = m; rem != 0; rem &= rem - 1) {
        const int l = std::countr_zero(rem);
        if (++cur[l] < end[l]) next |= vgpu::lane_bit(l);
      }
    }
    m = next;
  }
  w.store_seq(y, rows[0], sum, live);
}

/// Column-blocked SpMM body (one warp = 32 consecutive rows, looping over
/// the column tiles of the vector block). For each tile of kSpmmTile
/// columns the warp re-walks its rows' entries, loading col/val once per
/// step and fanning the FMA out over the tile columns. Because the same
/// warp performs every re-walk, the matrix sectors stay hot in its sector
/// cache after the first tile — the batch pays the A traffic once, not
/// once per tile, which is the whole point of column blocking. The tile
/// bound (kSpmmTile accumulators) keeps register pressure flat no matter
/// how wide the batch is. Per column the accumulation order over j is
/// identical to csr_scalar_warp, so each output column is bit-identical
/// to the scalar kernel's result. xp is the packed row-major x slab
/// (xp[col*k + c], see EngineBase::stage_x_pack) — a tile's k gathers for
/// one matrix column share texture sectors instead of each pulling their
/// own; yb is the column-major output block with leading dimension ldy.
template <class T>
void csr_scalar_spmm_warp(vgpu::Warp& w,
                          vgpu::DeviceSpan<const mat::offset_t> row_start,
                          vgpu::DeviceSpan<const mat::offset_t> row_end,
                          vgpu::DeviceSpan<const mat::index_t> col_idx,
                          vgpu::DeviceSpan<const T> vals,
                          vgpu::DeviceSpan<const T> xp, vgpu::DeviceSpan<T> yb,
                          long long ldy, mat::index_t n_rows, int k) {
  const LaneArray<long long> rows = w.global_threads();
  const long long row0 = rows[0];
  const Mask live =
      rows.where([n_rows](long long r) { return r < n_rows; },
                 w.active_mask());
  if (live == 0) return;

  const LaneArray<mat::offset_t> start = w.load_seq(row_start, row0, live);
  const LaneArray<mat::offset_t> end = w.load_seq(row_end, row0, live);
  w.count_alu(2);

  for (int c_begin = 0; c_begin < k; c_begin += kSpmmTile) {
    const int kt = std::min(k, c_begin + kSpmmTile) - c_begin;
    w.count_alu(1);  // tile bookkeeping

    // Per-column views of the output block: column c is yb[c*ldy .. +n_rows).
    std::vector<vgpu::DeviceSpan<T>> ycol(static_cast<std::size_t>(kt));
    for (int c = 0; c < kt; ++c) {
      const auto gc = static_cast<std::size_t>(c_begin + c);
      ycol[static_cast<std::size_t>(c)] =
          yb.subspan(gc * static_cast<std::size_t>(ldy),
                     static_cast<std::size_t>(n_rows));
    }

    std::vector<vgpu::LaneArray<T>> sums(static_cast<std::size_t>(kt));
    LaneArray<mat::offset_t> cur = start;
    Mask m = 0;
    for (Mask rem = live; rem != 0; rem &= rem - 1) {
      const int l = std::countr_zero(rem);
      if (cur[l] < end[l]) m |= vgpu::lane_bit(l);
    }
    while (m != 0) {
      LaneArray<mat::index_t> col{};
      LaneArray<T> val{};
      // A sectors: DRAM on the first tile, warp sector cache afterwards.
      w.load_pair(col_idx, vals, cur, m, col, val);
      // Packed vector gather: lane l fetches xp[col*k + c_begin .. +kt-1]
      // in one short-vector fetch, so the tile's kt values per matrix
      // column are charged per contiguous sector, not per element.
      LaneArray<long long> pidx{};
      for (Mask rem = m; rem != 0; rem &= rem - 1) {
        const int l = std::countr_zero(rem);
        pidx[l] = static_cast<long long>(col[l]) * k + c_begin;
      }
      w.count_alu(1);  // packed-index math
      LaneArray<T> xv[kSpmmTile];
      w.load_tex_vec(xp, pidx, kt, m, xv);
      for (int c = 0; c < kt; ++c) {
        vgpu::fma_into(sums[static_cast<std::size_t>(c)], val, xv[c], m);
        w.count_flops(m, 2, sizeof(T) == 8);
      }
      w.count_alu(2);  // loop compare + increment
      Mask next = 0;
      if (m == vgpu::kFullMask) {
        for (int l = 0; l < vgpu::kWarpSize; ++l)
          if (++cur[l] < end[l]) next |= vgpu::lane_bit(l);
      } else {
        for (Mask rem = m; rem != 0; rem &= rem - 1) {
          const int l = std::countr_zero(rem);
          if (++cur[l] < end[l]) next |= vgpu::lane_bit(l);
        }
      }
      m = next;
    }
    for (int c = 0; c < kt; ++c)
      w.store_seq(ycol[static_cast<std::size_t>(c)], row0,
                  sums[static_cast<std::size_t>(c)], live);
  }
}

template <class T>
class CsrScalarEngine final : public EngineBase<T> {
 public:
  CsrScalarEngine(vgpu::Device& dev, const mat::Csr<T>& a)
      : EngineBase<T>(dev, "CSR-scalar"), host_(a) {
    // No transform: CSR ships as-is.
    dev_csr_ = CsrDevice<T>::upload(dev, a, this->name());
    this->charge_upload(dev_csr_.bytes());
    this->report_.device_bytes = dev_csr_.bytes();
  }

  mat::index_t rows() const override { return host_.rows; }
  mat::index_t cols() const override { return host_.cols; }
  mat::offset_t nnz() const override { return host_.nnz(); }

  void apply(const std::vector<T>& x, std::vector<T>& y) const override {
    host_.spmv(x, y);
  }

  double simulate(const std::vector<T>& x, std::vector<T>& y) override {
    ACSR_CHECK(static_cast<mat::index_t>(x.size()) == host_.cols);
    auto x_dev = this->stage_x(x);
    auto y_dev = this->stage_y(static_cast<std::size_t>(host_.rows));

    const int block = 128;
    vgpu::LaunchConfig cfg;
    cfg.name = "csr_scalar";
    cfg.block_dim = block;
    cfg.grid_dim = std::max<long long>(1, (host_.rows + block - 1) / block);
    const auto nrows = static_cast<std::size_t>(host_.rows);
    auto rs = dev_csr_.row_off.cspan().subspan(0, nrows);
    auto re = dev_csr_.row_off.cspan().subspan(1, nrows);
    auto ci = dev_csr_.col_idx.cspan();
    auto va = dev_csr_.vals.cspan();
    auto xs = x_dev;
    auto ys = y_dev;
    const mat::index_t n = host_.rows;
    const vgpu::KernelRun run =
        this->dev_.launch_warps(cfg, [&](vgpu::Warp& w) {
          csr_scalar_warp<T>(w, rs, re, ci, va, xs, ys, n);
        });
    this->report_.last_run = run;
    y = this->staged_y();
    return run.duration_s;
  }

  /// Real column-blocked SpMM: the scalar kernel's grid, each warp
  /// looping over the column tiles with its matrix sectors kept hot in
  /// its sector cache. Width 0 never launches; width 1 is the scalar SpMV
  /// path (same launch sequence, so memo keys stay compatible).
  double simulate_batch(const mat::DenseBlock<T>& x_block,
                        mat::DenseBlock<T>& y_block) override {
    ACSR_CHECK(x_block.rows == host_.cols);
    if (x_block.width == 0) {
      y_block.resize(host_.rows, 0);
      return 0.0;
    }
    if (x_block.width == 1) return this->simulate_batch_loop(x_block, y_block);

    const int k = x_block.width;
    const long long ldy = mat::DenseBlock<T>::padded_ld(host_.rows);
    auto xp = this->stage_x_pack(x_block);
    auto yb = this->stage_y_block(
        static_cast<std::size_t>(ldy) * static_cast<std::size_t>(k), k);

    const int block = 128;
    vgpu::LaunchConfig cfg;
    cfg.name = "csr_scalar_spmm";
    cfg.block_dim = block;
    cfg.grid_dim = std::max<long long>(1, (host_.rows + block - 1) / block);
    const auto nrows = static_cast<std::size_t>(host_.rows);
    auto rs = dev_csr_.row_off.cspan().subspan(0, nrows);
    auto re = dev_csr_.row_off.cspan().subspan(1, nrows);
    auto ci = dev_csr_.col_idx.cspan();
    auto va = dev_csr_.vals.cspan();
    const mat::index_t n = host_.rows;
    const vgpu::KernelRun run =
        this->dev_.launch_warps(cfg, [&](vgpu::Warp& w) {
          csr_scalar_spmm_warp<T>(w, rs, re, ci, va, xp, yb, ldy, n, k);
        });
    this->report_.last_run = run;
    y_block.resize(host_.rows, k);
    y_block.data = this->staged_y_block(k);
    return run.duration_s;
  }

 private:
  mat::Csr<T> host_;
  CsrDevice<T> dev_csr_;
};

/// Shape class of csr_scalar_warp's inputs (static verifier contract, see
/// docs/ANALYSIS.md): a well-formed CSR matrix. The extents arrays are the
/// two length-n_rows windows of the monotone row-pointer array, so every
/// row's [start, end) cursor range lies inside [0, nnz].
inline analysis::ShapeClass csr_scalar_shape_class() {
  namespace an = acsr::analysis;
  const an::Sym n_rows = an::Sym::param("n_rows");
  const an::Sym n_cols = an::Sym::param("n_cols");
  const an::Sym nnz = an::Sym::param("nnz");
  const an::Sym k = an::Sym::param("k");
  const an::Sym ldy_pad = an::Sym::param("ldy_pad");
  an::ShapeClass sc;
  sc.engine = "csr-scalar";
  sc.params = {an::param("n_rows", 0, "matrix rows"),
               an::param("n_cols", 0, "matrix columns"),
               an::param("nnz", 0, "stored non-zeros"),
               an::param("grid", 1, "launch grid dim"),
               // Batched SpMM operands. k >= 1 is an engine guarantee:
               // simulate_batch returns before any launch on a 0-column
               // DenseBlock, so the kernels never see an empty block (the
               // empty-batch no-op the verifier proves by this bound).
               an::param("k", 1, "batch width (0-column blocks never launch)"),
               an::param("ldy_pad", 0, "y-block row padding (ldy - n_rows)")};
  sc.spans = {
      an::index_span("row_start", n_rows, {an::Sym(0), nnz},
                     "per-row begin offsets (row_off[0..rows))", true),
      an::index_span("row_end", n_rows, {an::Sym(0), nnz},
                     "per-row end offsets (row_off[1..rows])", true),
      an::index_span("col_idx", nnz, {an::Sym(0), n_cols - an::Sym(1)},
                     "column indices"),
      an::data_span("vals", nnz, "non-zero values"),
      an::data_span("x", n_cols, "input vector"),
      an::data_span("y", n_rows, "output vector", /*initialized=*/false),
      an::data_span("xpack", n_cols * k,
                    "packed row-major x slab (xpack[col*k + c])"),
      an::data_span("yb", (n_rows + ldy_pad) * k,
                    "column-major y block, leading dim n_rows + ldy_pad",
                    /*initialized=*/false),
  };
  return sc;
}

}  // namespace acsr::spmv
