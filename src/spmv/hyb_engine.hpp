// HYB SpMV (Bell & Garland): ELL kernel over the dense slab, then the COO
// tail with segmented reduction, issued back-to-back on one stream. The
// heavy preprocessing (slab construction incl. padding) and the ~33%
// average padding cost are what ACSR beats on dynamic graphs.
#pragma once

#include <algorithm>

#include "analysis/shape.hpp"
#include "mat/hyb.hpp"
#include "spmv/coo_engine.hpp"
#include "spmv/ell_engine.hpp"
#include "spmv/engine.hpp"

namespace acsr::spmv {

template <class T>
class HybEngine final : public EngineBase<T> {
 public:
  HybEngine(vgpu::Device& dev, const mat::Csr<T>& a,
            mat::index_t breakeven = 4096)
      : EngineBase<T>(dev, "HYB") {
    vgpu::HostModel hm;
    hyb_ = mat::Hyb<T>::from_csr(a, &hm, breakeven);
    this->report_.preprocess_s = hm.seconds();
    this->report_.padding_ratio = hyb_.padding_ratio();
    nnz_ = a.nnz();
    upload();
  }

  mat::index_t rows() const override { return hyb_.rows(); }
  mat::index_t cols() const override { return hyb_.cols(); }
  mat::offset_t nnz() const override { return nnz_; }
  mat::index_t ell_width() const { return hyb_.ell.width; }
  mat::offset_t coo_tail_nnz() const { return hyb_.coo.nnz(); }

  void apply(const std::vector<T>& x, std::vector<T>& y) const override {
    hyb_.spmv(x, y);
  }

  double simulate(const std::vector<T>& x, std::vector<T>& y) override {
    ACSR_CHECK(static_cast<mat::index_t>(x.size()) == hyb_.cols());
    auto x_dev = this->stage_x(x);
    auto y_dev = this->stage_y(static_cast<std::size_t>(hyb_.rows()));
    auto xs = x_dev;
    auto ys = y_dev;

    std::vector<vgpu::KernelRun> runs;

    {  // ELL part.
      const int block = 128;
      vgpu::LaunchConfig cfg;
      cfg.name = "hyb_ell";
      cfg.block_dim = block;
      cfg.grid_dim =
          std::max<long long>(1, (hyb_.rows() + block - 1) / block);
      auto ci = ell_col_.cspan();
      auto va = ell_val_.cspan();
      const mat::index_t n = hyb_.rows();
      const mat::index_t k = hyb_.ell.width;
      runs.push_back(this->dev_.launch_warps(cfg, [&](vgpu::Warp& w) {
        ell_warp<T>(w, ci, va, xs, ys, n, k);
      }));
    }

    if (hyb_.coo.nnz() > 0) {  // COO tail.
      const long long n = hyb_.coo.nnz();
      const int block = 128;
      vgpu::LaunchConfig cfg;
      cfg.name = "hyb_coo";
      cfg.block_dim = block;
      cfg.grid_dim = std::max<long long>(1, (n + block - 1) / block);
      auto ri = coo_row_.cspan();
      auto ci = coo_col_.cspan();
      auto va = coo_val_.cspan();
      runs.push_back(this->dev_.launch_warps(cfg, [&](vgpu::Warp& w) {
        const long long base = w.global_warp() * vgpu::kWarpSize;
        if (base >= n) return;
        coo_segmented_warp<T>(w, ri, ci, va, xs, ys, n, base);
      }));
    }

    // Aggregate the run pair for reporting.
    vgpu::KernelRun agg = runs.front();
    for (std::size_t i = 1; i < runs.size(); ++i) {
      agg.counters += runs[i].counters;
      agg.duration_s += runs[i].duration_s;
    }
    agg.name = "hyb";
    this->report_.last_run = agg;
    y = this->staged_y();
    return vgpu::combine_sequential(runs);
  }

 private:
  void upload() {
    ell_col_ = this->dev_.template alloc<mat::index_t>(
        hyb_.ell.col_idx.size(), "hyb.ell.col");
    ell_col_.host() = hyb_.ell.col_idx;
    ell_val_ =
        this->dev_.template alloc<T>(hyb_.ell.vals.size(), "hyb.ell.val");
    ell_val_.host() = hyb_.ell.vals;
    coo_row_ = this->dev_.template alloc<mat::index_t>(
        hyb_.coo.row_idx.size(), "hyb.coo.row");
    coo_row_.host() = hyb_.coo.row_idx;
    coo_col_ = this->dev_.template alloc<mat::index_t>(
        hyb_.coo.col_idx.size(), "hyb.coo.col");
    coo_col_.host() = hyb_.coo.col_idx;
    coo_val_ =
        this->dev_.template alloc<T>(hyb_.coo.vals.size(), "hyb.coo.val");
    coo_val_.host() = hyb_.coo.vals;
    const std::size_t b = ell_col_.bytes() + ell_val_.bytes() +
                          coo_row_.bytes() + coo_col_.bytes() +
                          coo_val_.bytes();
    this->charge_upload(b);
    this->report_.device_bytes = b;
  }

  mat::Hyb<T> hyb_;
  mat::offset_t nnz_ = 0;
  vgpu::DeviceBuffer<mat::index_t> ell_col_;
  vgpu::DeviceBuffer<T> ell_val_;
  vgpu::DeviceBuffer<mat::index_t> coo_row_;
  vgpu::DeviceBuffer<mat::index_t> coo_col_;
  vgpu::DeviceBuffer<T> coo_val_;
};

/// Shape class of the HYB launch pair: an ELL slab covering every row
/// (the first kernel's unconditional store defines y) followed by a
/// row-sorted COO tail that accumulates on top with atomics. The launch
/// boundary between the two kernels is what makes the tail's atomic RMW
/// of y well-defined.
inline analysis::ShapeClass hyb_shape_class() {
  namespace an = acsr::analysis;
  const an::Sym n_rows = an::Sym::param("n_rows");
  const an::Sym n_cols = an::Sym::param("n_cols");
  const an::Sym ell_width = an::Sym::param("ell_width");
  const an::Sym tail_nnz = an::Sym::param("tail_nnz");
  an::ShapeClass sc;
  sc.engine = "hyb";
  sc.params = {an::param("n_rows", 0, "matrix rows"),
               an::param("n_cols", 0, "matrix columns"),
               an::param("ell_width", 0, "ELL slab width"),
               an::param("tail_nnz", 0, "COO tail entries"),
               an::param("grid", 1, "launch grid dim")};
  sc.spans = {
      an::index_span("hyb.ell.col", ell_width * n_rows,
                     {an::Sym(-1), n_cols - an::Sym(1)},
                     "ELL slab columns (-1 = padding)"),
      an::data_span("hyb.ell.val", ell_width * n_rows, "ELL slab values"),
      an::index_span("hyb.coo.row", tail_nnz,
                     {an::Sym(0), n_rows - an::Sym(1)},
                     "tail row ids, sorted non-decreasing", true),
      an::index_span("hyb.coo.col", tail_nnz,
                     {an::Sym(0), n_cols - an::Sym(1)}, "tail columns"),
      an::data_span("hyb.coo.val", tail_nnz, "tail values"),
      an::data_span("x", n_cols, "input vector"),
      an::data_span("y", n_rows, "output vector", /*initialized=*/false),
  };
  return sc;
}

}  // namespace acsr::spmv
