// COO SpMV with warp-level segmented reduction (Bell & Garland): each warp
// takes 32 consecutive non-zeros, head-flags row boundaries with a ballot,
// runs a shuffle-based segmented scan, and the segment tails accumulate
// into y with atomics. Used both standalone and as the tail of HYB.
#pragma once

#include "analysis/shape.hpp"
#include "mat/coo.hpp"
#include "spmv/engine.hpp"
#include "vgpu/lane_array.hpp"

namespace acsr::spmv {

/// Warp body over 32 consecutive COO entries starting at `base`.
template <class T>
void coo_segmented_warp(vgpu::Warp& w,
                        vgpu::DeviceSpan<const mat::index_t> row_idx,
                        vgpu::DeviceSpan<const mat::index_t> col_idx,
                        vgpu::DeviceSpan<const T> vals,
                        vgpu::DeviceSpan<const T> x, vgpu::DeviceSpan<T> y,
                        long long n_entries, long long base) {
  using vgpu::LaneArray;
  using vgpu::Mask;

  LaneArray<long long> idx = LaneArray<long long>::iota(base);
  const Mask live = idx.where(
      [n_entries](long long i) { return i < n_entries; }, w.active_mask());
  if (live == 0) return;

  // One COO entry per lane, consecutive: unit-stride loads of all three
  // arrays.
  const LaneArray<mat::index_t> r = w.load_seq(row_idx, base, live);
  const LaneArray<mat::index_t> c = w.load_seq(col_idx, base, live);
  const LaneArray<T> v = w.load_seq(vals, base, live);
  const LaneArray<T> xv = w.load_tex(x, c, live);
  LaneArray<T> prod;
  for (int l = 0; l < vgpu::kWarpSize; ++l) prod[l] = v[l] * xv[l];
  w.count_flops(live, 1, sizeof(T) == 8);

  // Entries are row-sorted, so equal rows are contiguous within the warp:
  // a lane heads a segment when its row differs from its predecessor's.
  const Mask heads = w.ballot(
      [&](int l) {
        return l == 0 || !vgpu::lane_active(live, l - 1) ||
               r[l] != r[l - 1];
      },
      live);
  // True shuffle-based segmented scan (as in CUSP's coo_flat kernel, which
  // stages the same computation through shared memory).
  const LaneArray<T> scanned = w.segmented_scan_add(prod, heads, live);

  // The *last* lane of each segment holds the segment total; it publishes
  // with an atomic (rows may continue into the neighbouring warps).
  const Mask tails = w.ballot(
      [&](int l) {
        return l == vgpu::kWarpSize - 1 || !vgpu::lane_active(live, l + 1) ||
               vgpu::lane_active(heads, l + 1);
      },
      live);
  w.atomic_add(y, r, scanned, tails);
}

template <class T>
class CooEngine final : public EngineBase<T> {
 public:
  CooEngine(vgpu::Device& dev, const mat::Csr<T>& a)
      : EngineBase<T>(dev, "COO") {
    vgpu::HostModel hm;
    coo_ = a.to_coo();
    hm.charge_ops(3.0 * static_cast<double>(coo_.nnz()));
    this->report_.preprocess_s = hm.seconds();
    upload();
  }

  mat::index_t rows() const override { return coo_.rows; }
  mat::index_t cols() const override { return coo_.cols; }
  mat::offset_t nnz() const override { return coo_.nnz(); }

  void apply(const std::vector<T>& x, std::vector<T>& y) const override {
    coo_.spmv(x, y);
  }

  double simulate(const std::vector<T>& x, std::vector<T>& y) override {
    ACSR_CHECK(static_cast<mat::index_t>(x.size()) == coo_.cols);
    auto x_dev = this->stage_x(x);
    auto y_dev = this->stage_y(static_cast<std::size_t>(coo_.rows));

    const vgpu::KernelRun zero = zero_fill(this->dev_, y_dev);
    const vgpu::KernelRun run = run_kernel(x_dev, y_dev);
    this->report_.last_run = run;
    y = this->staged_y();
    return vgpu::combine_sequential({zero, run});
  }

  /// Exposed so HYB can run the COO tail as its second kernel.
  vgpu::KernelRun run_kernel(vgpu::DeviceSpan<const T> x,
                             vgpu::DeviceSpan<T> y) {
    const long long n = coo_.nnz();
    const int block = 128;
    const long long entries_per_block = block;
    vgpu::LaunchConfig cfg;
    cfg.name = "coo_segmented";
    cfg.block_dim = block;
    cfg.grid_dim = std::max<long long>(
        1, (n + entries_per_block - 1) / entries_per_block);
    auto ri = row_dev_.cspan();
    auto ci = col_dev_.cspan();
    auto va = val_dev_.cspan();
    return this->dev_.launch_warps(cfg, [&](vgpu::Warp& w) {
      const long long base = w.global_warp() * vgpu::kWarpSize;
      if (base >= n) return;
      coo_segmented_warp<T>(w, ri, ci, va, x, y, n, base);
    });
  }

 private:
  void upload() {
    row_dev_ = this->dev_.template alloc<mat::index_t>(coo_.row_idx.size(),
                                                       "coo.row");
    row_dev_.host() = coo_.row_idx;
    col_dev_ = this->dev_.template alloc<mat::index_t>(coo_.col_idx.size(),
                                                       "coo.col");
    col_dev_.host() = coo_.col_idx;
    val_dev_ = this->dev_.template alloc<T>(coo_.vals.size(), "coo.val");
    val_dev_.host() = coo_.vals;
    const std::size_t b = row_dev_.bytes() + col_dev_.bytes() + val_dev_.bytes();
    this->charge_upload(b);
    this->report_.device_bytes = b;
  }

  mat::Coo<T> coo_;
  vgpu::DeviceBuffer<mat::index_t> row_dev_;
  vgpu::DeviceBuffer<mat::index_t> col_dev_;
  vgpu::DeviceBuffer<T> val_dev_;
};

/// Shape class of coo_segmented_warp's inputs: three parallel length-nnz
/// arrays with row ids sorted non-decreasing (the segmented reduction's
/// precondition) and column ids in range. y must be zero-filled before
/// the kernel runs — segment tails accumulate with atomic RMWs, which
/// read the previous value.
inline analysis::ShapeClass coo_shape_class() {
  namespace an = acsr::analysis;
  const an::Sym n_rows = an::Sym::param("n_rows");
  const an::Sym n_cols = an::Sym::param("n_cols");
  const an::Sym nnz = an::Sym::param("nnz");
  an::ShapeClass sc;
  sc.engine = "coo";
  sc.params = {an::param("n_rows", 0, "matrix rows"),
               an::param("n_cols", 0, "matrix columns"),
               an::param("nnz", 0, "stored non-zeros"),
               an::param("grid", 1, "launch grid dim")};
  sc.spans = {
      an::index_span("coo.row", nnz, {an::Sym(0), n_rows - an::Sym(1)},
                     "row ids, sorted non-decreasing", true),
      an::index_span("coo.col", nnz, {an::Sym(0), n_cols - an::Sym(1)},
                     "column indices"),
      an::data_span("coo.val", nnz, "non-zero values"),
      an::data_span("x", n_cols, "input vector"),
      an::data_span("y", n_rows, "output vector", /*initialized=*/false),
  };
  return sc;
}

}  // namespace acsr::spmv
