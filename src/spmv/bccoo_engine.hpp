// BCCOO-style engine (Yan et al., yaSpMV [27]: blocked compressed COO).
// Re-implementation of the essential mechanisms: consecutive non-zeros of a
// row are packed into fixed-width blocks that store the row id and base
// column once plus byte-sized column deltas, cutting index bandwidth; and
// the configuration (block width x thread-block size x ILP) is *auto-tuned*
// over a >300-point space where every candidate costs a code-generation/
// compile step plus timed trials — the dominating preprocessing cost that
// makes BCCOO's Fig. 4 ratio five orders of magnitude.
#pragma once

#include <algorithm>
#include <new>

#include "analysis/shape.hpp"
#include "mat/padded.hpp"
#include "spmv/engine.hpp"
#include "vgpu/lane_array.hpp"

namespace acsr::spmv {

template <class T>
class BccooEngine final : public EngineBase<T> {
 public:
  struct TuningPolicy {
    // Simulated cost of generating + compiling one kernel variant (yaSpMV
    // emits specialised OpenCL per configuration).
    double compile_s = 0.05;
    int trial_reps = 3;
    // Secondary dimensions explored per block width (thread-block size,
    // ILP depth, texture on/off, ...). Together with the widths this gives
    // the >300-configuration space the paper describes.
    int configs_per_width = 64;
  };

  BccooEngine(vgpu::Device& dev, const mat::Csr<T>& a,
              TuningPolicy policy = {})
      : EngineBase<T>(dev, "BCCOO"), host_(a) {
    vgpu::HostModel hm;
    tune(a, hm, policy);
    this->report_.preprocess_s = hm.seconds();
    upload();
  }

  mat::index_t rows() const override { return host_.rows; }
  mat::index_t cols() const override { return host_.cols; }
  mat::offset_t nnz() const override { return host_.nnz(); }
  int block_width() const { return width_; }
  std::size_t num_blocks() const { return blk_row_.size(); }

  void apply(const std::vector<T>& x, std::vector<T>& y) const override {
    ACSR_CHECK(static_cast<mat::index_t>(x.size()) == host_.cols);
    y.assign(static_cast<std::size_t>(host_.rows), T{0});
    const auto w = static_cast<std::size_t>(width_);
    for (std::size_t b = 0; b < blk_row_.size(); ++b) {
      mat::index_t c = blk_col_[b];
      for (std::size_t j = 0; j < w; ++j) {
        c += static_cast<mat::index_t>(deltas_[b * w + j]);
        const T v = vals_[b * w + j];
        if (v != T{0})
          y[static_cast<std::size_t>(blk_row_[b])] +=
              v * x[static_cast<std::size_t>(c)];
      }
    }
  }

  double simulate(const std::vector<T>& x, std::vector<T>& y) override {
    auto x_dev = this->stage_x(x);
    auto y_dev = this->stage_y(static_cast<std::size_t>(host_.rows));
    const vgpu::KernelRun zero = zero_fill(this->dev_, y_dev);
    const vgpu::KernelRun run =
        run_kernel(x_dev, y_dev);
    this->report_.last_run = run;
    y = this->staged_y();
    return vgpu::combine_sequential({zero, run});
  }

 private:
  vgpu::KernelRun run_kernel(vgpu::DeviceSpan<const T> x,
                             vgpu::DeviceSpan<T> y) {
    const long long n_blocks = static_cast<long long>(blk_row_.size());
    vgpu::LaunchConfig cfg;
    cfg.name = "bccoo";
    cfg.block_dim = 128;
    cfg.grid_dim = std::max<long long>(1, (n_blocks + 127) / 128);
    auto br = brow_dev_.cspan();
    auto bc = bcol_dev_.cspan();
    auto bd = bdel_dev_.cspan();
    auto bv = bval_dev_.cspan();
    const int width = width_;
    return this->dev_.launch_warps(cfg, [&, width](vgpu::Warp& w) {
      using vgpu::LaneArray;
      using vgpu::Mask;
      LaneArray<long long> blk =
          LaneArray<long long>::iota(w.global_warp() * vgpu::kWarpSize);
      const Mask live = blk.where(
          [n_blocks](long long b) { return b < n_blocks; }, w.active_mask());
      if (live == 0) return;
      const LaneArray<mat::index_t> row = w.load(br, blk, live);
      LaneArray<mat::index_t> col = w.load(bc, blk, live);
      LaneArray<T> acc{};
      for (int j = 0; j < width; ++j) {
        LaneArray<long long> slot;
        for (int l = 0; l < vgpu::kWarpSize; ++l)
          slot[l] = blk[l] * width + j;
        const LaneArray<std::uint8_t> d = w.load(bd, slot, live);
        const LaneArray<T> v = w.load(bv, slot, live);
        for (int l = 0; l < vgpu::kWarpSize; ++l)
          col[l] += static_cast<mat::index_t>(d[l]);
        w.count_alu(1);
        Mask nz = 0;
        for (int l = 0; l < vgpu::kWarpSize; ++l)
          if (vgpu::lane_active(live, l) && v[l] != T{0})
            nz |= vgpu::lane_bit(l);
        if (nz != 0) {
          const LaneArray<T> xv = w.load_tex(x, col, nz);
          vgpu::fma_into(acc, v, xv, nz);
          w.count_flops(nz, 2, sizeof(T) == 8);
        }
      }
      // Segmented reduction across the 32 blocks of the warp (blocks are
      // row-ordered), heads publish with atomics.
      w.count_shuffles(5);
      w.count_alu(10);
      LaneArray<T> head_sum{};
      LaneArray<mat::index_t> head_row{};
      Mask heads = 0;
      int l = 0;
      while (l < vgpu::kWarpSize) {
        if (!vgpu::lane_active(live, l)) {
          ++l;
          continue;
        }
        const mat::index_t r = row[l];
        T sum{0};
        const int head = l;
        while (l < vgpu::kWarpSize && vgpu::lane_active(live, l) &&
               row[l] == r) {
          sum += acc[l];
          ++l;
        }
        heads |= vgpu::lane_bit(head);
        head_sum[head] = sum;
        head_row[head] = r;
      }
      w.atomic_add(y, head_row, head_sum, heads);
    });
  }

  /// Pack the matrix into width-w blocks: consecutive entries of a row
  /// whose successive column deltas fit a byte. Short blocks are padded
  /// with zero values (delta 0), counted in padding_ratio.
  void pack(const mat::Csr<T>& a, int width, vgpu::HostModel& hm) {
    width_ = width;
    blk_row_.clear();
    blk_col_.clear();
    deltas_.clear();
    vals_.clear();
    // Worst case every entry opens its own block (no deltas fit), so the
    // padded store is bounded by nnz * width slots; check that product
    // up front (mat/padded.hpp) instead of letting push_back growth
    // overflow or abort — degenerate sizes must read as DeviceOom.
    mat::checked_padded_slots(static_cast<std::uint64_t>(a.nnz()),
                              static_cast<std::uint64_t>(width),
                              sizeof(T) + 1, "BCCOO block store");
    const auto w = static_cast<std::size_t>(width);
    try {
      pack_blocks(a, w);
    } catch (const std::bad_alloc&) {
      throw vgpu::DeviceOom("host allocator refused the BCCOO block store (" +
                            std::to_string(vals_.size()) + "+ slots)");
    }
    hm.charge_ops(3.0 * static_cast<double>(a.nnz()) +
                  2.0 * static_cast<double>(vals_.size()));
    this->report_.padding_ratio =
        vals_.empty()
            ? 0.0
            : 1.0 - static_cast<double>(a.nnz()) /
                        static_cast<double>(vals_.size());
  }

  void pack_blocks(const mat::Csr<T>& a, std::size_t w) {
    for (mat::index_t r = 0; r < a.rows; ++r) {
      mat::offset_t i = a.row_off[static_cast<std::size_t>(r)];
      const mat::offset_t end = a.row_off[static_cast<std::size_t>(r) + 1];
      while (i < end) {
        blk_row_.push_back(r);
        const mat::index_t base =
            a.col_idx[static_cast<std::size_t>(i)];
        blk_col_.push_back(base);
        mat::index_t prev = base;
        std::size_t filled = 0;
        // First entry: delta 0 from base.
        while (filled < w && i < end) {
          const mat::index_t c = a.col_idx[static_cast<std::size_t>(i)];
          const mat::index_t d = c - prev;
          if (filled > 0 && d > 255) break;  // delta overflow: new block
          deltas_.push_back(static_cast<std::uint8_t>(filled == 0 ? 0 : d));
          vals_.push_back(a.vals[static_cast<std::size_t>(i)]);
          prev = c;
          ++filled;
          ++i;
        }
        for (; filled < w; ++filled) {  // zero padding
          deltas_.push_back(0);
          vals_.push_back(T{0});
        }
      }
    }
  }

  void tune(const mat::Csr<T>& a, vgpu::HostModel& hm,
            const TuningPolicy& policy) {
    static constexpr int kWidths[] = {1, 2, 4, 8, 16};
    std::vector<T> x(static_cast<std::size_t>(a.cols), T{1});
    double best_t = -1.0;
    int best_w = 1;
    for (int w : kWidths) {
      pack(a, w, hm);
      auto br = this->dev_.template alloc<mat::index_t>(blk_row_.size(),
                                                        "b.r");
      br.host() = blk_row_;
      auto bc = this->dev_.template alloc<mat::index_t>(blk_col_.size(),
                                                        "b.c");
      bc.host() = blk_col_;
      auto bd = this->dev_.template alloc<std::uint8_t>(deltas_.size(),
                                                        "b.d");
      bd.host() = deltas_;
      auto bv = this->dev_.template alloc<T>(vals_.size(), "b.v");
      bv.host() = vals_;
      brow_dev_ = std::move(br);
      bcol_dev_ = std::move(bc);
      bdel_dev_ = std::move(bd);
      bval_dev_ = std::move(bv);
      auto xd = this->dev_.template alloc<T>(x.size(), "b.x");
      xd.host() = x;
      auto yd = this->dev_.template alloc<T>(
          static_cast<std::size_t>(a.rows), "b.y");
      // The kernel accumulates with atomics, so trial runs must clear y
      // like the real SpMV does (an atomic RMW reads the old value).
      zero_fill(this->dev_, yd.span());
      const double t1 = run_kernel(xd.cspan(), yd.span()).duration_s;
      // Every configuration sharing this width still pays codegen +
      // compile + its own timed trials; their kernel times vary little,
      // so the measured t1 stands in for each.
      hm.charge_seconds(static_cast<double>(policy.configs_per_width) *
                        (policy.compile_s +
                         static_cast<double>(policy.trial_reps) * t1));
      if (best_t < 0.0 || t1 < best_t) {
        best_t = t1;
        best_w = w;
      }
      brow_dev_ = {};
      bcol_dev_ = {};
      bdel_dev_ = {};
      bval_dev_ = {};
    }
    pack(a, best_w, hm);
  }

  void upload() {
    brow_dev_ = this->dev_.template alloc<mat::index_t>(blk_row_.size(),
                                                        "bccoo.row");
    brow_dev_.host() = blk_row_;
    bcol_dev_ = this->dev_.template alloc<mat::index_t>(blk_col_.size(),
                                                        "bccoo.col");
    bcol_dev_.host() = blk_col_;
    bdel_dev_ = this->dev_.template alloc<std::uint8_t>(deltas_.size(),
                                                        "bccoo.delta");
    bdel_dev_.host() = deltas_;
    bval_dev_ = this->dev_.template alloc<T>(vals_.size(), "bccoo.val");
    bval_dev_.host() = vals_;
    const std::size_t b = brow_dev_.bytes() + bcol_dev_.bytes() +
                          bdel_dev_.bytes() + bval_dev_.bytes();
    this->charge_upload(b);
    this->report_.device_bytes = b;
  }

  mat::Csr<T> host_;
  int width_ = 4;
  std::vector<mat::index_t> blk_row_;
  std::vector<mat::index_t> blk_col_;
  std::vector<std::uint8_t> deltas_;
  std::vector<T> vals_;
  vgpu::DeviceBuffer<mat::index_t> brow_dev_;
  vgpu::DeviceBuffer<mat::index_t> bcol_dev_;
  vgpu::DeviceBuffer<std::uint8_t> bdel_dev_;
  vgpu::DeviceBuffer<T> bval_dev_;
};

/// Shape class of the BCCOO kernel: n_blocks fixed-width blocks with one
/// row id and base column each, plus byte deltas. The pack invariant the
/// verifier leans on: delta-decoding never leaves the matrix — every
/// prefix sum blk_col[b] + d_1 + ... + d_j equals a real column index of
/// the packed row (padding deltas are 0), so the decoded column stays in
/// [0, n_cols-1]. Block slot b*width + j stays inside the width-padded
/// store by the identity (n_blocks-1)*width + (width-1) == n_blocks*width
/// - 1. y is zero-filled before the kernel (atomic accumulation).
inline analysis::ShapeClass bccoo_shape_class() {
  namespace an = acsr::analysis;
  const an::Sym n_rows = an::Sym::param("n_rows");
  const an::Sym n_cols = an::Sym::param("n_cols");
  const an::Sym n_blocks = an::Sym::param("n_blocks");
  const an::Sym width = an::Sym::param("width");
  an::ShapeClass sc;
  sc.engine = "bccoo";
  sc.params = {an::param("n_rows", 0, "matrix rows"),
               an::param("n_cols", 0, "matrix columns"),
               an::param("n_blocks", 0, "packed blocks"),
               an::param("width", 1, "entries per block"),
               an::param("grid", 1, "launch grid dim")};
  sc.spans = {
      an::index_span("bccoo.row", n_blocks,
                     {an::Sym(0), n_rows - an::Sym(1)},
                     "block row ids, sorted non-decreasing", true),
      an::index_span("bccoo.col", n_blocks,
                     {an::Sym(0), n_cols - an::Sym(1)},
                     "block base columns (delta decode stays in range)"),
      an::data_span("bccoo.delta", n_blocks * width, "byte column deltas"),
      an::data_span("bccoo.val", n_blocks * width, "block values"),
      an::data_span("x", n_cols, "input vector"),
      an::data_span("y", n_rows, "output vector", /*initialized=*/false),
  };
  return sc;
}

}  // namespace acsr::spmv
