// ELL SpMV: one thread per row marching across the padded slab. Fully
// coalesced (column-major layout) but pays bandwidth for every padding
// slot — the trade the paper's HYB discussion is about.
#pragma once

#include <algorithm>

#include "analysis/shape.hpp"
#include "mat/ell.hpp"
#include "spmv/engine.hpp"
#include "vgpu/lane_array.hpp"

namespace acsr::spmv {

/// Warp body over 32 consecutive rows of an ELL slab. `accumulate` keeps
/// prior y contents (used by HYB where the COO tail adds on top).
template <class T>
void ell_warp(vgpu::Warp& w, vgpu::DeviceSpan<const mat::index_t> col_idx,
              vgpu::DeviceSpan<const T> vals, vgpu::DeviceSpan<const T> x,
              vgpu::DeviceSpan<T> y, mat::index_t n_rows, mat::index_t width) {
  using vgpu::LaneArray;
  using vgpu::Mask;

  const LaneArray<long long> rows = w.global_threads();
  const Mask live = rows.where(
      [n_rows](long long r) { return r < n_rows; }, w.active_mask());
  if (live == 0) return;

  LaneArray<T> sum{};
  for (mat::index_t j = 0; j < width; ++j) {
    // Column-major slab: lane l reads slot j*n_rows + rows[l], i.e. a
    // unit-stride run starting at this warp's first row.
    const long long slot0 = static_cast<long long>(j) * n_rows + rows[0];
    // The slab is loaded unconditionally — padding costs bandwidth.
    const LaneArray<mat::index_t> col = w.load_seq(col_idx, slot0, live);
    const LaneArray<T> val = w.load_seq(vals, slot0, live);
    Mask valid = 0;
    for (int l = 0; l < vgpu::kWarpSize; ++l)
      if (vgpu::lane_active(live, l) && col[l] != mat::Ell<T>::kPad)
        valid |= vgpu::lane_bit(l);
    w.count_alu(2);
    if (valid != 0) {
      const LaneArray<T> xv = w.load_tex(x, col, valid);
      vgpu::fma_into(sum, val, xv, valid);
      w.count_flops(valid, 2, sizeof(T) == 8);
    }
  }
  w.store_seq(y, rows[0], sum, live);
}

template <class T>
class EllEngine final : public EngineBase<T> {
 public:
  EllEngine(vgpu::Device& dev, const mat::Csr<T>& a)
      : EngineBase<T>(dev, "ELL"), host_(a) {
    vgpu::HostModel hm;
    ell_ = mat::Ell<T>::from_csr(a, &hm);
    this->report_.preprocess_s = hm.seconds();
    this->report_.padding_ratio = ell_.padding_ratio();
    upload();
  }

  mat::index_t rows() const override { return ell_.rows; }
  mat::index_t cols() const override { return ell_.cols; }
  mat::offset_t nnz() const override { return host_.nnz(); }

  void apply(const std::vector<T>& x, std::vector<T>& y) const override {
    ell_.spmv(x, y);
  }

  double simulate(const std::vector<T>& x, std::vector<T>& y) override {
    ACSR_CHECK(static_cast<mat::index_t>(x.size()) == ell_.cols);
    auto x_dev = this->stage_x(x);
    auto y_dev = this->stage_y(static_cast<std::size_t>(ell_.rows));

    const int block = 128;
    vgpu::LaunchConfig cfg;
    cfg.name = "ell";
    cfg.block_dim = block;
    cfg.grid_dim = std::max<long long>(1, (ell_.rows + block - 1) / block);
    auto ci = col_dev_.cspan();
    auto va = val_dev_.cspan();
    auto xs = x_dev;
    auto ys = y_dev;
    const mat::index_t n = ell_.rows;
    const mat::index_t k = ell_.width;
    const vgpu::KernelRun run =
        this->dev_.launch_warps(cfg, [&](vgpu::Warp& w) {
          ell_warp<T>(w, ci, va, xs, ys, n, k);
        });
    this->report_.last_run = run;
    y = this->staged_y();
    return run.duration_s;
  }

 private:
  void upload() {
    col_dev_ = this->dev_.template alloc<mat::index_t>(ell_.col_idx.size(),
                                                       "ell.col");
    col_dev_.host() = ell_.col_idx;
    val_dev_ = this->dev_.template alloc<T>(ell_.vals.size(), "ell.val");
    val_dev_.host() = ell_.vals;
    this->charge_upload(col_dev_.bytes() + val_dev_.bytes());
    this->report_.device_bytes = col_dev_.bytes() + val_dev_.bytes();
  }

  mat::Csr<T> host_;
  mat::Ell<T> ell_;
  vgpu::DeviceBuffer<mat::index_t> col_dev_;
  vgpu::DeviceBuffer<T> val_dev_;
};

/// Shape class of ell_warp's inputs: a column-major width x n_rows slab
/// whose column entries are either real indices in [0, n_cols-1] or the
/// kPad sentinel (-1, masked off before the x gather). Slot j*n_rows + r
/// stays inside the slab for every j < width, r < n_rows — the polynomial
/// identity (width-1)*n_rows + (n_rows-1) == width*n_rows - 1 the
/// verifier discharges by cancellation.
inline analysis::ShapeClass ell_shape_class() {
  namespace an = acsr::analysis;
  const an::Sym n_rows = an::Sym::param("n_rows");
  const an::Sym n_cols = an::Sym::param("n_cols");
  const an::Sym width = an::Sym::param("width");
  an::ShapeClass sc;
  sc.engine = "ell";
  sc.params = {an::param("n_rows", 0, "matrix rows"),
               an::param("n_cols", 0, "matrix columns"),
               an::param("width", 0, "padded slab width"),
               an::param("grid", 1, "launch grid dim")};
  sc.spans = {
      an::index_span("ell.col", width * n_rows,
                     {an::Sym(-1), n_cols - an::Sym(1)},
                     "slab column indices (-1 = padding)"),
      an::data_span("ell.val", width * n_rows, "slab values"),
      an::data_span("x", n_cols, "input vector"),
      an::data_span("y", n_rows, "output vector", /*initialized=*/false),
  };
  return sc;
}

}  // namespace acsr::spmv
