// SIC-style engine (Feng et al. [13]: CSR with Segmented Interleave
// Combination). The paper *could not* compare against SIC because the
// authors' implementation was unavailable; we reconstruct it from their
// description so the comparison the paper wanted exists here.
//
// Mechanism: rows are classified into three *segments* by length (short /
// medium / long — no global sort, unlike BRC); within each segment,
// consecutive rows are interleaved into 32-row blocks stored column-major
// (ELL-like per block, block width = the block's max row length), so warp
// lanes advance through different rows in lockstep with coalesced loads.
// Preprocessing is a classification pass plus a full data restructure —
// cheaper than BRC's global sort, far more than ACSR's scan.
#pragma once

#include <algorithm>
#include <array>

#include "analysis/shape.hpp"
#include "spmv/engine.hpp"
#include "vgpu/lane_array.hpp"

namespace acsr::spmv {

template <class T>
class SicEngine final : public EngineBase<T> {
 public:
  /// Segment thresholds: rows with nnz <= t1 are "short", <= t2 "medium",
  /// else "long" (Feng et al. use three segments).
  SicEngine(vgpu::Device& dev, const mat::Csr<T>& a, mat::offset_t t1 = 8,
            mat::offset_t t2 = 64)
      : EngineBase<T>(dev, "SIC"), host_(a), t1_(t1), t2_(t2) {
    vgpu::HostModel hm;
    build(a, hm);
    this->report_.preprocess_s = hm.seconds();
    upload();
  }

  mat::index_t rows() const override { return host_.rows; }
  mat::index_t cols() const override { return host_.cols; }
  mat::offset_t nnz() const override { return host_.nnz(); }

  std::size_t num_blocks() const { return block_width_.size(); }
  /// Rows per segment (short, medium, long) for introspection.
  std::array<std::size_t, 3> segment_sizes() const {
    return {seg_rows_[0].size(), seg_rows_[1].size(), seg_rows_[2].size()};
  }

  void apply(const std::vector<T>& x, std::vector<T>& y) const override {
    ACSR_CHECK(static_cast<mat::index_t>(x.size()) == host_.cols);
    y.assign(static_cast<std::size_t>(host_.rows), T{0});
    for (std::size_t b = 0; b < block_width_.size(); ++b) {
      const mat::offset_t base = block_off_[b];
      const mat::index_t width = block_width_[b];
      for (int l = 0; l < kBlockRows; ++l) {
        const std::size_t slot_row = b * kBlockRows + static_cast<std::size_t>(l);
        if (slot_row >= row_of_slot_.size()) break;
        const mat::index_t out = row_of_slot_[slot_row];
        if (out < 0) continue;  // padding slot at segment end
        T sum{0};
        for (mat::index_t j = 0; j < width; ++j) {
          const auto s = static_cast<std::size_t>(
              base + static_cast<mat::offset_t>(j) * kBlockRows + l);
          const mat::index_t c = slab_col_[s];
          if (c >= 0) sum += slab_val_[s] * x[static_cast<std::size_t>(c)];
        }
        y[static_cast<std::size_t>(out)] = sum;
      }
    }
  }

  double simulate(const std::vector<T>& x, std::vector<T>& y) override {
    ACSR_CHECK(static_cast<mat::index_t>(x.size()) == host_.cols);
    auto x_dev = this->stage_x(x);
    auto y_dev = this->stage_y(static_cast<std::size_t>(host_.rows));

    const long long n_blocks = static_cast<long long>(block_width_.size());
    vgpu::LaunchConfig cfg;
    cfg.name = "sic";
    cfg.block_dim = 128;
    cfg.grid_dim = std::max<long long>(1, (n_blocks + 3) / 4);

    auto rows_s = rows_dev_.cspan();
    auto boff = boff_dev_.cspan();
    auto bw = bw_dev_.cspan();
    auto sc = scol_dev_.cspan();
    auto sv = sval_dev_.cspan();
    auto xs = x_dev;
    auto ys = y_dev;
    const long long n_slots = static_cast<long long>(row_of_slot_.size());

    const vgpu::KernelRun run =
        this->dev_.launch_warps(cfg, [&](vgpu::Warp& w) {
          using vgpu::LaneArray;
          using vgpu::Mask;
          const long long blk = w.global_warp();
          if (blk >= n_blocks) return;
          const mat::offset_t base =
              w.load_scalar(boff, static_cast<std::size_t>(blk));
          const mat::index_t width =
              w.load_scalar(bw, static_cast<std::size_t>(blk));

          LaneArray<long long> slot =
              LaneArray<long long>::iota(blk * kBlockRows);
          Mask live = slot.where(
              [n_slots](long long s) { return s < n_slots; },
              w.active_mask());
          if (live == 0) return;
          const LaneArray<mat::index_t> out_row = w.load(rows_s, slot, live);
          for (int l = 0; l < vgpu::kWarpSize; ++l)
            if (vgpu::lane_active(live, l) && out_row[l] < 0)
              live &= ~vgpu::lane_bit(l);
          w.count_alu(2);
          if (live == 0) return;

          LaneArray<T> sum{};
          for (mat::index_t j = 0; j < width; ++j) {
            LaneArray<long long> s;
            for (int l = 0; l < vgpu::kWarpSize; ++l)
              s[l] = base + static_cast<long long>(j) * kBlockRows + l;
            const LaneArray<mat::index_t> col = w.load(sc, s, live);
            const LaneArray<T> val = w.load(sv, s, live);
            Mask valid = 0;
            for (int l = 0; l < vgpu::kWarpSize; ++l)
              if (vgpu::lane_active(live, l) && col[l] >= 0)
                valid |= vgpu::lane_bit(l);
            w.count_alu(2);
            if (valid != 0) {
              const LaneArray<T> xv = w.load_tex(xs, col, valid);
              vgpu::fma_into(sum, val, xv, valid);
              w.count_flops(valid, 2, sizeof(T) == 8);
            }
          }
          w.store(ys, out_row, sum, live);
        });
    this->report_.last_run = run;
    y = this->staged_y();
    return run.duration_s;
  }

 private:
  static constexpr int kBlockRows = 32;

  void build(const mat::Csr<T>& a, vgpu::HostModel& hm) {
    // Pass 1: classify rows into the three segments (order preserved —
    // that is SIC's difference from BRC's sort).
    for (auto& s : seg_rows_) s.clear();
    for (mat::index_t r = 0; r < a.rows; ++r) {
      const mat::offset_t n = a.row_nnz(r);
      if (n == 0) continue;
      seg_rows_[n <= t1_ ? 0 : (n <= t2_ ? 1 : 2)].push_back(r);
    }
    hm.charge_ops(2.0 * static_cast<double>(a.rows));

    // Pass 2: interleave each segment's rows into 32-row blocks.
    row_of_slot_.clear();
    block_off_.clear();
    block_width_.clear();
    mat::offset_t total = 0;
    for (const auto& seg : seg_rows_) {
      for (std::size_t i = 0; i < seg.size(); i += kBlockRows) {
        const std::size_t count = std::min<std::size_t>(
            kBlockRows, seg.size() - i);
        mat::offset_t wmax = 0;
        for (std::size_t l = 0; l < kBlockRows; ++l) {
          if (l < count)
            wmax = std::max(wmax, a.row_nnz(seg[i + l]));
          row_of_slot_.push_back(l < count ? seg[i + l] : -1);
        }
        block_off_.push_back(total);
        block_width_.push_back(static_cast<mat::index_t>(wmax));
        total += wmax * kBlockRows;
      }
    }
    slab_col_.assign(static_cast<std::size_t>(total), -1);
    slab_val_.assign(static_cast<std::size_t>(total), T{0});
    for (std::size_t b = 0; b < block_width_.size(); ++b) {
      for (std::size_t l = 0; l < kBlockRows; ++l) {
        const std::size_t sr = b * kBlockRows + l;
        if (sr >= row_of_slot_.size() || row_of_slot_[sr] < 0) continue;
        const mat::index_t r = row_of_slot_[sr];
        const mat::offset_t lo = a.row_off[static_cast<std::size_t>(r)];
        const mat::offset_t n = a.row_nnz(r);
        for (mat::offset_t j = 0; j < n; ++j) {
          const auto s = static_cast<std::size_t>(
              block_off_[b] + j * kBlockRows + static_cast<mat::offset_t>(l));
          slab_col_[s] = a.col_idx[static_cast<std::size_t>(lo + j)];
          slab_val_[s] = a.vals[static_cast<std::size_t>(lo + j)];
        }
      }
    }
    hm.charge_ops(2.0 * static_cast<double>(total) +
                  2.0 * static_cast<double>(a.nnz()));
    this->report_.padding_ratio =
        total == 0 ? 0.0
                   : 1.0 - static_cast<double>(a.nnz()) /
                               static_cast<double>(total);
  }

  void upload() {
    rows_dev_ = this->dev_.template alloc<mat::index_t>(row_of_slot_.size(),
                                                        "sic.rows");
    rows_dev_.host() = row_of_slot_;
    boff_dev_ = this->dev_.template alloc<mat::offset_t>(block_off_.size(),
                                                         "sic.boff");
    boff_dev_.host() = block_off_;
    bw_dev_ = this->dev_.template alloc<mat::index_t>(block_width_.size(),
                                                      "sic.bwidth");
    bw_dev_.host() = block_width_;
    scol_dev_ = this->dev_.template alloc<mat::index_t>(slab_col_.size(),
                                                        "sic.col");
    scol_dev_.host() = slab_col_;
    sval_dev_ = this->dev_.template alloc<T>(slab_val_.size(), "sic.val");
    sval_dev_.host() = slab_val_;
    const std::size_t b = rows_dev_.bytes() + boff_dev_.bytes() +
                          bw_dev_.bytes() + scol_dev_.bytes() +
                          sval_dev_.bytes();
    this->charge_upload(b);
    this->report_.device_bytes = b;
  }

  mat::Csr<T> host_;
  mat::offset_t t1_;
  mat::offset_t t2_;
  std::array<std::vector<mat::index_t>, 3> seg_rows_;
  std::vector<mat::index_t> row_of_slot_;  // -1 for pad slots
  std::vector<mat::offset_t> block_off_;
  std::vector<mat::index_t> block_width_;
  std::vector<mat::index_t> slab_col_;
  std::vector<T> slab_val_;

  vgpu::DeviceBuffer<mat::index_t> rows_dev_;
  vgpu::DeviceBuffer<mat::offset_t> boff_dev_;
  vgpu::DeviceBuffer<mat::index_t> bw_dev_;
  vgpu::DeviceBuffer<mat::index_t> scol_dev_;
  vgpu::DeviceBuffer<T> sval_dev_;
};

/// Shape class of the SIC kernel. Same slab decomposition as BRC
/// (slab_base + 32*block_w + slab_rest for a generic block); the row map
/// is sic.rows with -1 padding at segment ends. Each non-empty row
/// appears in exactly one slot, so the non-negative entries are pairwise
/// distinct (the sense in which the span is declared injective — pad
/// slots are masked off before the store).
inline analysis::ShapeClass sic_shape_class() {
  namespace an = acsr::analysis;
  const an::Sym n_rows = an::Sym::param("n_rows");
  const an::Sym n_cols = an::Sym::param("n_cols");
  const an::Sym n_blocks = an::Sym::param("n_blocks");
  const an::Sym n_slots = an::Sym::param("n_slots");
  const an::Sym slab_base = an::Sym::param("slab_base");
  const an::Sym block_w = an::Sym::param("block_w");
  const an::Sym slab_rest = an::Sym::param("slab_rest");
  const an::Sym slab = slab_base + an::Sym(32) * block_w + slab_rest;
  an::ShapeClass sc;
  sc.engine = "sic";
  sc.params = {an::param("n_rows", 0, "matrix rows"),
               an::param("n_cols", 0, "matrix columns"),
               an::param("n_blocks", 0, "32-row interleave blocks"),
               an::param("n_slots", 0, "row slots incl. segment padding"),
               an::param("slab_base", 0, "generic block's slab offset"),
               an::param("block_w", 0, "generic block's width"),
               an::param("slab_rest", 0, "slab slots after the strip"),
               an::param("grid", 1, "launch grid dim")};
  sc.spans = {
      an::index_span("sic.rows", n_slots,
                     {an::Sym(-1), n_rows - an::Sym(1)},
                     "row of each slot (-1 = segment padding)", false, true),
      an::data_span("sic.boff", n_blocks, "per-block slab offsets"),
      an::data_span("sic.bwidth", n_blocks, "per-block widths"),
      an::index_span("sic.col", slab, {an::Sym(-1), n_cols - an::Sym(1)},
                     "slab columns (-1 = padding)"),
      an::data_span("sic.val", slab, "slab values"),
      an::data_span("x", n_cols, "input vector"),
      an::data_span("y", n_rows, "output vector", /*initialized=*/false),
  };
  return sc;
}

}  // namespace acsr::spmv
