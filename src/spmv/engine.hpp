// SpMV engine interface.
//
// An engine owns one matrix in one device-resident format. Construction
// performs the format's preprocessing (charged to the host cost model) and
// the H2D upload (charged to the PCIe model); `simulate` then executes one
// y = A x on the virtual GPU and returns the simulated kernel time, while
// `apply` is the fast host-side functional path used inside iterative
// applications (unit tests pin simulate == apply element-for-element).
//
// The split mirrors the paper's measurement protocol: preprocessing and
// transfer are reported separately from SpMV time (Tables III/IV, Fig. 4),
// and iterative apps run many SpMVs against a resident matrix (Fig. 6).
#pragma once

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "mat/csr.hpp"
#include "mat/dense_block.hpp"
#include "vgpu/device.hpp"

namespace acsr::spmv {

struct EngineReport {
  std::string format;
  double preprocess_s = 0.0;   // host-side transform / tuning time
  std::size_t h2d_bytes = 0;   // matrix bytes shipped to the device
  double h2d_s = 0.0;
  std::size_t device_bytes = 0;  // resident footprint of the format
  double padding_ratio = 0.0;    // fraction of stored slots that are padding
  // Breakdown of the last simulated SpMV.
  vgpu::KernelRun last_run;      // aggregate of the kernels in one SpMV
};

template <class T>
class SpmvEngine {
 public:
  virtual ~SpmvEngine() = default;

  virtual const std::string& name() const = 0;
  /// The device the engine's kernels run on (apps charge their auxiliary
  /// vector kernels against it).
  virtual vgpu::Device& device() = 0;
  virtual mat::index_t rows() const = 0;
  virtual mat::index_t cols() const = 0;
  virtual mat::offset_t nnz() const = 0;

  /// Host-side functional SpMV (y resized and overwritten).
  virtual void apply(const std::vector<T>& x, std::vector<T>& y) const = 0;

  /// Full simulated SpMV on the device; returns simulated seconds.
  /// x is assumed device-resident (no transfer charged), as in the paper's
  /// iterative measurement loop.
  virtual double simulate(const std::vector<T>& x, std::vector<T>& y) = 0;

  virtual const EngineReport& report() const = 0;

  /// Batched host-side SpMM: Y = A X, one column per query vector. The
  /// default loops the scalar apply() column by column, so every engine is
  /// correct by construction and bit-identical to k scalar applies; the
  /// hot engines override simulate_batch with real column-blocked kernels
  /// (the host path stays the loop — exactness is the contract).
  virtual void apply_batch(const mat::DenseBlock<T>& x_block,
                           mat::DenseBlock<T>& y_block) const {
    apply_batch_loop(x_block, y_block);
  }

  /// Batched simulated SpMM on the device; returns simulated seconds for
  /// the whole block. Default: k sequential simulate() calls (no
  /// amortization — the baseline the real SpMM kernels are measured
  /// against). A 0-column block is a no-op: no kernel is launched.
  virtual double simulate_batch(const mat::DenseBlock<T>& x_block,
                                mat::DenseBlock<T>& y_block) {
    return simulate_batch_loop(x_block, y_block);
  }

  /// Memoized simulated time of one SpMV with a canonical input. The
  /// simulator is deterministic and the kernel time does not depend on the
  /// values of x, so iterative apps can use iterations * spmv_seconds().
  double spmv_seconds() {
    if (cached_spmv_s_ < 0.0) {
      std::vector<T> x(static_cast<std::size_t>(cols()), T{1});
      std::vector<T> y;
      cached_spmv_s_ = simulate(x, y);
    }
    return cached_spmv_s_;
  }

  /// GFLOPs at the paper's convention: 2 flops per stored non-zero.
  double gflops() {
    const double t = spmv_seconds();
    return t <= 0.0 ? 0.0
                    : 2.0 * static_cast<double>(nnz()) / t / 1e9;
  }

 protected:
  void invalidate_cache() { cached_spmv_s_ = -1.0; }

  /// The correct-by-construction batched paths: column loop over the
  /// scalar virtuals. Shared by the defaults above and by the real-SpMM
  /// engines' width<=1 fast paths (a width-1 batch must go through the
  /// scalar simulate() so its launch sequence — and with it the memo
  /// cache key material — is exactly the SpMV one).
  void apply_batch_loop(const mat::DenseBlock<T>& x_block,
                        mat::DenseBlock<T>& y_block) const {
    ACSR_CHECK(x_block.rows == cols());
    y_block.resize(rows(), x_block.width);
    std::vector<T> y;
    for (int c = 0; c < x_block.width; ++c) {
      const std::vector<T> x = x_block.column(c);
      apply(x, y);
      y_block.set_column(c, y);
    }
  }

  double simulate_batch_loop(const mat::DenseBlock<T>& x_block,
                             mat::DenseBlock<T>& y_block) {
    ACSR_CHECK(x_block.rows == cols());
    y_block.resize(rows(), x_block.width);
    double total_s = 0.0;
    std::vector<T> y;
    for (int c = 0; c < x_block.width; ++c) {
      const std::vector<T> x = x_block.column(c);
      total_s += simulate(x, y);
      y_block.set_column(c, y);
    }
    return total_s;
  }

 private:
  double cached_spmv_s_ = -1.0;
};

/// Shared plumbing: name/report storage and the device handle.
template <class T>
class EngineBase : public SpmvEngine<T> {
 public:
  EngineBase(vgpu::Device& dev, std::string name) : dev_(dev) {
    report_.format = std::move(name);
  }

  const std::string& name() const override { return report_.format; }
  vgpu::Device& device() override { return dev_; }
  const EngineReport& report() const override { return report_; }

 protected:
  /// Record a matrix upload: bytes over PCIe into the report.
  void charge_upload(std::size_t bytes) {
    report_.h2d_bytes += bytes;
    report_.h2d_s += dev_.note_transfer(bytes).duration_s;
  }

  /// Stage x into the engine's persistent input scratch buffer (allocated
  /// on first use, reused afterwards). Reuse keeps the device addresses of
  /// x and y fixed across simulate() calls, so sector-cache collision
  /// patterns against the resident matrix — and with them every Counters
  /// field — are iteration-stationary. That is a hard requirement of the
  /// memo layer (vgpu/memo.hpp): a captured launch record must equal what
  /// re-simulation would produce at *any* later iteration. Under the
  /// sanitizer or fault injection a fresh buffer is allocated per call,
  /// preserving precise shadow state and flip-target registration
  /// (memoization is bypassed on those planes anyway).
  vgpu::DeviceSpan<const T> stage_x(const std::vector<T>& x) {
    if (!x_scratch_.valid() || x_scratch_.size() != x.size() ||
        vgpu::sanitizer_enabled() || vgpu::fault_injection_enabled())
      x_scratch_ = dev_.template alloc<T>(x.size(), "x");
    x_scratch_.host() = x;
    return x_scratch_.cspan();
  }

  /// Output counterpart of stage_x: the returned span starts zero-filled
  /// host-side, exactly as a freshly allocated buffer would.
  vgpu::DeviceSpan<T> stage_y(std::size_t n) {
    if (!y_scratch_.valid() || y_scratch_.size() != n ||
        vgpu::sanitizer_enabled() || vgpu::fault_injection_enabled()) {
      y_scratch_ = dev_.template alloc<T>(n, "y");
    } else {
      auto& h = y_scratch_.host();
      std::fill(h.begin(), h.end(), T{0});
    }
    return y_scratch_.span();
  }

  /// Host view of the staged output after the kernels ran.
  const std::vector<T>& staged_y() const { return y_scratch_.host(); }

  /// Block counterparts of stage_x/stage_y for the SpMM kernels. Scratch
  /// is kept per batch width so that interleaving widths (the scheduler
  /// mixes batch sizes; the memo cache keys entries by width) never
  /// relocates an already-captured width's buffers — the same
  /// iteration-stationarity requirement stage_x documents, per width.
  ///
  /// The input block is staged *packed row-major*: xpack[col*width + c] =
  /// X(col, c). A warp gathering matrix column `col` for a tile of batch
  /// columns then touches kt contiguous elements, so the texture sector
  /// model shares segments across the tile — the x-side counterpart of
  /// the A arrays' once-per-batch charge. (Column-major gathers put every
  /// batch column a full vector apart: one sector per column per nnz, k
  /// times the scalar x traffic, which is exactly what made the naive
  /// widening memory-bound.) Packing happens host-side at staging time,
  /// where the serving layer writes request vectors anyway; like stage_x,
  /// no transfer is charged — x is device-resident by the paper's
  /// measurement convention.
  vgpu::DeviceSpan<const T> stage_x_pack(const mat::DenseBlock<T>& x_block) {
    const auto n = static_cast<std::size_t>(x_block.rows);
    const auto k = static_cast<std::size_t>(x_block.width);
    auto& buf = xp_scratch_[x_block.width];
    if (!buf.valid() || buf.size() != n * k ||
        vgpu::sanitizer_enabled() || vgpu::fault_injection_enabled())
      buf = dev_.template alloc<T>(n * k, "xpack");
    auto& h = buf.host();
    for (std::size_t c = 0; c < k; ++c)
      for (std::size_t r = 0; r < n; ++r)
        h[r * k + c] = x_block.at(static_cast<mat::index_t>(r),
                                  static_cast<int>(c));
    return buf.cspan();
  }

  /// Zero-filled output block scratch of `elems` = ld * width elements.
  vgpu::DeviceSpan<T> stage_y_block(std::size_t elems, int width) {
    auto& buf = yb_scratch_[width];
    if (!buf.valid() || buf.size() != elems ||
        vgpu::sanitizer_enabled() || vgpu::fault_injection_enabled()) {
      buf = dev_.template alloc<T>(elems, "yb");
    } else {
      auto& h = buf.host();
      std::fill(h.begin(), h.end(), T{0});
    }
    return buf.span();
  }

  const std::vector<T>& staged_y_block(int width) const {
    return yb_scratch_.at(width).host();
  }

  vgpu::Device& dev_;
  EngineReport report_;

 private:
  vgpu::DeviceBuffer<T> x_scratch_;
  vgpu::DeviceBuffer<T> y_scratch_;
  std::map<int, vgpu::DeviceBuffer<T>> xp_scratch_;
  std::map<int, vgpu::DeviceBuffer<T>> yb_scratch_;
};

/// Column-tile width of the batched SpMM kernels: each warp keeps one
/// accumulator per tile column, so 8 bounds the register pressure a real
/// kernel would spend (Yang/Buluç/Owens tile the dense operand the same
/// way). Tiles beyond the first re-walk the matrix arrays, but within one
/// launch the sector model (an L2-resident re-touch is not a new DRAM
/// transaction) charges the A-traffic once — which is exactly the
/// amortization column-blocked SpMM exists for.
inline constexpr int kSpmmTile = 8;

/// Round up to the next power of two (thread-group sizing).
inline int pow2_ceil(long long v) {
  int p = 1;
  while (p < v && p < (1 << 30)) p <<= 1;
  return p;
}

/// Zero-fill kernel for the output vector. Engines that *accumulate* into
/// y (atomics in COO/HYB tails, merge-CSR carries, ACSR's
/// dynamic-parallelism children) must clear it first — cuSPARSE's beta = 0
/// path does the same — and the memset's bandwidth is part of their cost.
template <class T>
vgpu::KernelRun zero_fill(vgpu::Device& dev, vgpu::DeviceSpan<T> y) {
  const long long n = static_cast<long long>(y.size());
  vgpu::LaunchConfig cfg;
  cfg.name = "zero_y";
  cfg.block_dim = 256;
  cfg.grid_dim = std::max<long long>(1, (n + 255) / 256);
  return dev.launch_warps(cfg, [&](vgpu::Warp& w) {
    const auto idx = w.global_threads();
    const vgpu::Mask m = idx.where(
        [n](long long i) { return i < n; }, w.active_mask());
    if (m == 0) return;
    w.store_seq(y, idx[0], vgpu::LaneArray<T>::filled(T{0}), m);
  });
}

}  // namespace acsr::spmv
