// SpMV engine interface.
//
// An engine owns one matrix in one device-resident format. Construction
// performs the format's preprocessing (charged to the host cost model) and
// the H2D upload (charged to the PCIe model); `simulate` then executes one
// y = A x on the virtual GPU and returns the simulated kernel time, while
// `apply` is the fast host-side functional path used inside iterative
// applications (unit tests pin simulate == apply element-for-element).
//
// The split mirrors the paper's measurement protocol: preprocessing and
// transfer are reported separately from SpMV time (Tables III/IV, Fig. 4),
// and iterative apps run many SpMVs against a resident matrix (Fig. 6).
#pragma once

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "mat/csr.hpp"
#include "vgpu/device.hpp"

namespace acsr::spmv {

struct EngineReport {
  std::string format;
  double preprocess_s = 0.0;   // host-side transform / tuning time
  std::size_t h2d_bytes = 0;   // matrix bytes shipped to the device
  double h2d_s = 0.0;
  std::size_t device_bytes = 0;  // resident footprint of the format
  double padding_ratio = 0.0;    // fraction of stored slots that are padding
  // Breakdown of the last simulated SpMV.
  vgpu::KernelRun last_run;      // aggregate of the kernels in one SpMV
};

template <class T>
class SpmvEngine {
 public:
  virtual ~SpmvEngine() = default;

  virtual const std::string& name() const = 0;
  /// The device the engine's kernels run on (apps charge their auxiliary
  /// vector kernels against it).
  virtual vgpu::Device& device() = 0;
  virtual mat::index_t rows() const = 0;
  virtual mat::index_t cols() const = 0;
  virtual mat::offset_t nnz() const = 0;

  /// Host-side functional SpMV (y resized and overwritten).
  virtual void apply(const std::vector<T>& x, std::vector<T>& y) const = 0;

  /// Full simulated SpMV on the device; returns simulated seconds.
  /// x is assumed device-resident (no transfer charged), as in the paper's
  /// iterative measurement loop.
  virtual double simulate(const std::vector<T>& x, std::vector<T>& y) = 0;

  virtual const EngineReport& report() const = 0;

  /// Memoized simulated time of one SpMV with a canonical input. The
  /// simulator is deterministic and the kernel time does not depend on the
  /// values of x, so iterative apps can use iterations * spmv_seconds().
  double spmv_seconds() {
    if (cached_spmv_s_ < 0.0) {
      std::vector<T> x(static_cast<std::size_t>(cols()), T{1});
      std::vector<T> y;
      cached_spmv_s_ = simulate(x, y);
    }
    return cached_spmv_s_;
  }

  /// GFLOPs at the paper's convention: 2 flops per stored non-zero.
  double gflops() {
    const double t = spmv_seconds();
    return t <= 0.0 ? 0.0
                    : 2.0 * static_cast<double>(nnz()) / t / 1e9;
  }

 protected:
  void invalidate_cache() { cached_spmv_s_ = -1.0; }

 private:
  double cached_spmv_s_ = -1.0;
};

/// Shared plumbing: name/report storage and the device handle.
template <class T>
class EngineBase : public SpmvEngine<T> {
 public:
  EngineBase(vgpu::Device& dev, std::string name) : dev_(dev) {
    report_.format = std::move(name);
  }

  const std::string& name() const override { return report_.format; }
  vgpu::Device& device() override { return dev_; }
  const EngineReport& report() const override { return report_; }

 protected:
  /// Record a matrix upload: bytes over PCIe into the report.
  void charge_upload(std::size_t bytes) {
    report_.h2d_bytes += bytes;
    report_.h2d_s += dev_.note_transfer(bytes).duration_s;
  }

  /// Stage x into the engine's persistent input scratch buffer (allocated
  /// on first use, reused afterwards). Reuse keeps the device addresses of
  /// x and y fixed across simulate() calls, so sector-cache collision
  /// patterns against the resident matrix — and with them every Counters
  /// field — are iteration-stationary. That is a hard requirement of the
  /// memo layer (vgpu/memo.hpp): a captured launch record must equal what
  /// re-simulation would produce at *any* later iteration. Under the
  /// sanitizer or fault injection a fresh buffer is allocated per call,
  /// preserving precise shadow state and flip-target registration
  /// (memoization is bypassed on those planes anyway).
  vgpu::DeviceSpan<const T> stage_x(const std::vector<T>& x) {
    if (!x_scratch_.valid() || x_scratch_.size() != x.size() ||
        vgpu::sanitizer_enabled() || vgpu::fault_injection_enabled())
      x_scratch_ = dev_.template alloc<T>(x.size(), "x");
    x_scratch_.host() = x;
    return x_scratch_.cspan();
  }

  /// Output counterpart of stage_x: the returned span starts zero-filled
  /// host-side, exactly as a freshly allocated buffer would.
  vgpu::DeviceSpan<T> stage_y(std::size_t n) {
    if (!y_scratch_.valid() || y_scratch_.size() != n ||
        vgpu::sanitizer_enabled() || vgpu::fault_injection_enabled()) {
      y_scratch_ = dev_.template alloc<T>(n, "y");
    } else {
      auto& h = y_scratch_.host();
      std::fill(h.begin(), h.end(), T{0});
    }
    return y_scratch_.span();
  }

  /// Host view of the staged output after the kernels ran.
  const std::vector<T>& staged_y() const { return y_scratch_.host(); }

  vgpu::Device& dev_;
  EngineReport report_;

 private:
  vgpu::DeviceBuffer<T> x_scratch_;
  vgpu::DeviceBuffer<T> y_scratch_;
};

/// Round up to the next power of two (thread-group sizing).
inline int pow2_ceil(long long v) {
  int p = 1;
  while (p < v && p < (1 << 30)) p <<= 1;
  return p;
}

/// Zero-fill kernel for the output vector. Engines that *accumulate* into
/// y (atomics in COO/HYB tails, merge-CSR carries, ACSR's
/// dynamic-parallelism children) must clear it first — cuSPARSE's beta = 0
/// path does the same — and the memset's bandwidth is part of their cost.
template <class T>
vgpu::KernelRun zero_fill(vgpu::Device& dev, vgpu::DeviceSpan<T> y) {
  const long long n = static_cast<long long>(y.size());
  vgpu::LaunchConfig cfg;
  cfg.name = "zero_y";
  cfg.block_dim = 256;
  cfg.grid_dim = std::max<long long>(1, (n + 255) / 256);
  return dev.launch_warps(cfg, [&](vgpu::Warp& w) {
    const auto idx = w.global_threads();
    const vgpu::Mask m = idx.where(
        [n](long long i) { return i < n; }, w.active_mask());
    if (m == 0) return;
    w.store_seq(y, idx[0], vgpu::LaneArray<T>::filled(T{0}), m);
  });
}

}  // namespace acsr::spmv
