// Merge-based CSR SpMV (Merrill & Garland, SC'16) — the approach that
// succeeded the paper's generation of CSR kernels. Included as a forward-
// looking comparator: like ACSR it works on unmodified CSR with O(1)
// per-SpMV setup, but it balances load by *construction* instead of by
// binning: the 2D merge of (row boundaries x non-zeros) is split into
// equal-length path chunks, one per lane, so every lane does identical
// work regardless of the row-length distribution.
//
// Faithful details: the warp's contiguous nnz tile is staged through
// shared memory with coalesced loads, and chunk-boundary carries are
// warp-aggregated with a segmented scan before publishing. Simplification
// vs the original: the aggregated carries use atomics rather than
// Merrill's block-level carry-out fix-up pass — a few atomics per warp.
#pragma once

#include <array>

#include "analysis/shape.hpp"
#include "spmv/csr_device.hpp"
#include "spmv/engine.hpp"
#include "vgpu/lane_array.hpp"

namespace acsr::spmv {

template <class T>
class MergeCsrEngine final : public EngineBase<T> {
 public:
  /// items_per_lane: merge-path items (row-ends + nnz) each lane consumes.
  MergeCsrEngine(vgpu::Device& dev, const mat::Csr<T>& a,
                 int items_per_lane = 8)
      : EngineBase<T>(dev, "merge-CSR"), host_(a), ipl_(items_per_lane) {
    ACSR_REQUIRE(items_per_lane >= 1 && items_per_lane <= 64,
                 "items_per_lane must be in [1, 64]");
    // No transform: merge-CSR ships plain CSR, like ACSR.
    dev_csr_ = CsrDevice<T>::upload(dev, a, this->name());
    this->charge_upload(dev_csr_.bytes());
    this->report_.device_bytes = dev_csr_.bytes();
  }

  mat::index_t rows() const override { return host_.rows; }
  mat::index_t cols() const override { return host_.cols; }
  mat::offset_t nnz() const override { return host_.nnz(); }

  void apply(const std::vector<T>& x, std::vector<T>& y) const override {
    host_.spmv(x, y);
  }

  double simulate(const std::vector<T>& x, std::vector<T>& y) override {
    ACSR_CHECK(static_cast<mat::index_t>(x.size()) == host_.cols);
    auto x_dev = this->stage_x(x);
    auto y_dev = this->stage_y(static_cast<std::size_t>(host_.rows));

    const long long total_items =
        static_cast<long long>(host_.rows) + host_.nnz();
    const long long lanes_needed = (total_items + ipl_ - 1) / ipl_;
    const long long warps = (lanes_needed + 31) / 32;
    vgpu::LaunchConfig cfg;
    cfg.name = "merge_csr";
    cfg.block_dim = 128;
    cfg.grid_dim = std::max<long long>(1, (warps + 3) / 4);

    const auto nrows = static_cast<std::size_t>(host_.rows);
    auto re = dev_csr_.row_off.cspan().subspan(1, nrows);  // row end offsets
    auto ci = dev_csr_.col_idx.cspan();
    auto va = dev_csr_.vals.cspan();
    auto xs = x_dev;
    auto ys = y_dev;
    const long long n_rows = host_.rows;
    const long long n_nnz = host_.nnz();
    const int ipl = ipl_;

    const vgpu::KernelRun zero = zero_fill(this->dev_, ys);
    const vgpu::KernelRun run =
        this->dev_.launch_warps(cfg, [&](vgpu::Warp& w) {
          merge_warp(w, re, ci, va, xs, ys, n_rows, n_nnz, ipl);
        });
    this->report_.last_run = run;
    y = this->staged_y();
    return vgpu::combine_sequential({zero, run});
  }

 private:
  /// One warp: 32 equal merge-path chunks, walked in lockstep. The merge
  /// list conceptually interleaves "end of row r" markers with non-zeros;
  /// a path position p = (r, i) advances down (consume nnz i of row r)
  /// when i < row_end[r], right (emit row r) otherwise.
  static void merge_warp(vgpu::Warp& w,
                         vgpu::DeviceSpan<const mat::offset_t> row_end,
                         vgpu::DeviceSpan<const mat::index_t> col_idx,
                         vgpu::DeviceSpan<const T> vals,
                         vgpu::DeviceSpan<const T> xs, vgpu::DeviceSpan<T> ys,
                         long long n_rows, long long n_nnz, int ipl) {
    using vgpu::LaneArray;
    using vgpu::Mask;
    const long long total = n_rows + n_nnz;

    // Per-lane chunk [begin, end) on the merge path.
    LaneArray<long long> begin{}, chunk_end{};
    Mask live = 0;
    for (int l = 0; l < vgpu::kWarpSize; ++l) {
      const long long lane_global =
          (w.global_warp() * vgpu::kWarpSize + l) * ipl;
      if (lane_global < total) {
        live |= vgpu::lane_bit(l);
        begin[l] = lane_global;
        chunk_end[l] = std::min(total, lane_global + ipl);
      }
    }
    if (live == 0) return;

    // Diagonal binary search for the start coordinate (r, i) of each
    // chunk: r = #row-ends before position p, i = p - r. On hardware this
    // is log2(rows) uniform loads of row_end.
    LaneArray<long long> r{}, i{};
    int search_steps = 0;
    for (int l = 0; l < vgpu::kWarpSize; ++l) {
      if (!vgpu::lane_active(live, l)) continue;
      long long lo = std::max<long long>(0, begin[l] - n_nnz);
      long long hi = std::min(begin[l], n_rows);
      int steps = 0;
      while (lo < hi) {
        const long long mid = (lo + hi) / 2;
        // Path position of "end of row mid": row_end[mid] + mid items
        // precede it. Row mid's end-marker is *after* its nnz.
        if (static_cast<long long>(
                row_end[static_cast<std::size_t>(mid)]) +
                mid <
            begin[l])
          lo = mid + 1;
        else
          hi = mid;
        ++steps;
      }
      r[l] = lo;
      i[l] = begin[l] - lo;
      search_steps = std::max(search_steps, steps);
    }
    // The search's loads are uniform per lane but diverge little (equal
    // depth): charge log-depth scalar loads + compares.
    w.count_serial_gmem(static_cast<std::uint64_t>(search_steps));
    w.count_alu(3 * std::max(1, search_steps));

    // Coalesced staging (the real kernel's shared-memory tile): the warp's
    // lanes cover a *contiguous* nnz range [i_lo, i_hi), so col_idx and
    // vals are fetched with perfectly coalesced strides once, then the
    // merge loop consumes them from shared memory.
    long long i_lo = n_nnz, i_hi = 0;
    for (int l = 0; l < vgpu::kWarpSize; ++l) {
      if (!vgpu::lane_active(live, l)) continue;
      i_lo = std::min(i_lo, i[l]);
      // Upper bound: everything this lane's chunk could consume.
      i_hi = std::max(i_hi, std::min<long long>(
                                n_nnz, i[l] + (chunk_end[l] - begin[l])));
    }
    std::array<mat::index_t, 32 * 64> st_col;  // ipl <= 64 by construction
    std::array<T, 32 * 64> st_val;
    const long long stage_n = std::max<long long>(0, i_hi - i_lo);
    for (long long off = 0; off < stage_n; off += vgpu::kWarpSize) {
      const auto idxs = LaneArray<long long>::iota(i_lo + off);
      const Mask m = idxs.where(
          [i_hi](long long v) { return v < i_hi; }, vgpu::kFullMask);
      const LaneArray<mat::index_t> c = w.load(col_idx, idxs, m);
      const LaneArray<T> v = w.load(vals, idxs, m);
      w.count_smem(2);  // staged into shared memory
      for (int l = 0; l < vgpu::kWarpSize; ++l)
        if (vgpu::lane_active(m, l)) {
          st_col[static_cast<std::size_t>(off + l)] = c[l];
          st_val[static_cast<std::size_t>(off + l)] = v[l];
        }
    }

    LaneArray<T> sum{};
    // The current row's end offset lives in a register and is refreshed
    // only when a lane moves to the next row (as in the real kernel).
    LaneArray<mat::offset_t> endv = w.load(row_end, r, live);
    for (int step = 0; step < ipl; ++step) {
      // Which lanes still have path items, and is the next item a
      // non-zero (down) or a row end (right)?
      Mask active = 0, down = 0;
      for (int l = 0; l < vgpu::kWarpSize; ++l) {
        if (!vgpu::lane_active(live, l)) continue;
        if (begin[l] + step >= chunk_end[l]) continue;
        active |= vgpu::lane_bit(l);
        if (r[l] < n_rows && i[l] < static_cast<long long>(endv[l]))
          down |= vgpu::lane_bit(l);
      }
      if (active == 0) break;
      w.count_alu(3);

      if (down != 0) {
        // col/val come from the staged tile (shared memory).
        LaneArray<mat::index_t> col{};
        LaneArray<T> val{};
        for (int l = 0; l < vgpu::kWarpSize; ++l) {
          if (!vgpu::lane_active(down, l)) continue;
          const auto k = static_cast<std::size_t>(i[l] - i_lo);
          col[l] = st_col[k];
          val[l] = st_val[k];
        }
        w.count_smem(2);
        const LaneArray<T> xv = w.load_tex(xs, col, down);
        vgpu::fma_into(sum, val, xv, down);
        w.count_flops(down, 2, sizeof(T) == 8);
      }
      // Lanes at a row end publish the finished row (each marker is hit
      // by exactly one lane; earlier partial contributions arrive via
      // the aggregated carries below) and advance to the next row.
      const Mask right = active & ~down;
      if (right != 0) {
        LaneArray<mat::index_t> out_row{};
        for (int l = 0; l < vgpu::kWarpSize; ++l)
          if (vgpu::lane_active(right, l))
            out_row[l] = static_cast<mat::index_t>(r[l]);
        w.atomic_add(ys, out_row, sum, right);
        Mask reload = 0;
        for (int l = 0; l < vgpu::kWarpSize; ++l)
          if (vgpu::lane_active(right, l)) {
            sum[l] = T{0};
            ++r[l];
            if (r[l] < n_rows) reload |= vgpu::lane_bit(l);
          }
        if (reload != 0) {
          const LaneArray<mat::offset_t> fresh = w.load(row_end, r, reload);
          for (int l = 0; l < vgpu::kWarpSize; ++l)
            if (vgpu::lane_active(reload, l)) endv[l] = fresh[l];
        }
      }
      for (int l = 0; l < vgpu::kWarpSize; ++l)
        if (vgpu::lane_active(down, l)) ++i[l];
    }
    // Carry-out: lanes left mid-row aggregate within the warp first —
    // consecutive lanes usually share the row (the path is sorted), so a
    // segmented reduction leaves one atomic per distinct row per warp.
    Mask carry = 0;
    LaneArray<mat::index_t> out_row{};
    for (int l = 0; l < vgpu::kWarpSize; ++l) {
      if (!vgpu::lane_active(live, l)) continue;
      if (sum[l] != T{0} && r[l] < n_rows) {
        carry |= vgpu::lane_bit(l);
        out_row[l] = static_cast<mat::index_t>(r[l]);
      }
    }
    if (carry != 0) {
      const Mask heads = w.ballot(
          [&](int l) {
            return l == 0 || !vgpu::lane_active(carry, l - 1) ||
                   out_row[l] != out_row[l - 1];
          },
          carry);
      const LaneArray<T> scanned = w.segmented_scan_add(sum, heads, carry);
      const Mask tails = w.ballot(
          [&](int l) {
            return l == vgpu::kWarpSize - 1 ||
                   !vgpu::lane_active(carry, l + 1) ||
                   vgpu::lane_active(heads, l + 1);
          },
          carry);
      w.atomic_add(ys, out_row, scanned, tails);
    }
  }

  mat::Csr<T> host_;
  CsrDevice<T> dev_csr_;
  int ipl_;
};

/// Shape class of merge_warp: plain CSR viewed as a merge list of n_rows
/// row-end markers and nnz non-zeros. The merge-path invariant the model
/// declares (docs/ANALYSIS.md): a lane whose chunk begins before the end
/// of the path (begin < n_rows + nnz) lands on a row coordinate r <
/// n_rows — row n_rows-1's end marker is the last path item, so only
/// exhausted lanes reach r == n_rows, and those drop out of every mask.
/// Likewise the staged nnz window [i_lo, i_hi) is clipped to nnz by
/// construction. Row ends are monotone with row_end[n_rows-1] == nnz.
inline analysis::ShapeClass merge_csr_shape_class() {
  namespace an = acsr::analysis;
  const an::Sym n_rows = an::Sym::param("n_rows");
  const an::Sym n_cols = an::Sym::param("n_cols");
  const an::Sym nnz = an::Sym::param("nnz");
  an::ShapeClass sc;
  sc.engine = "merge-csr";
  sc.params = {an::param("n_rows", 0, "matrix rows"),
               an::param("n_cols", 0, "matrix columns"),
               an::param("nnz", 0, "stored non-zeros"),
               an::param("grid", 1, "launch grid dim")};
  sc.spans = {
      an::index_span("merge.row_end", n_rows, {an::Sym(0), nnz},
                     "row end offsets (row_off[1..rows])", true),
      an::index_span("col_idx", nnz, {an::Sym(0), n_cols - an::Sym(1)},
                     "column indices"),
      an::data_span("vals", nnz, "non-zero values"),
      an::data_span("x", n_cols, "input vector"),
      an::data_span("y", n_rows, "output vector", /*initialized=*/false),
  };
  return sc;
}

}  // namespace acsr::spmv
