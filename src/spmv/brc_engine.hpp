// BRC-style engine (Ashari et al., ICS'14 "blocked row-column" — the BRC
// comparator of Table III). Re-implementation of its essential mechanism:
// rows are *sorted by length* and packed into 32-row blocks whose width is
// the block-local maximum, which nearly eliminates padding while keeping
// ELL-style coalescing; a permutation array scatters results back.
// The characteristic cost is the sort + full data restructuring, which is
// exactly the preprocessing the paper's Fig. 4 charges BRC for.
#pragma once

#include <algorithm>
#include <numeric>

#include "analysis/shape.hpp"
#include "spmv/engine.hpp"
#include "vgpu/lane_array.hpp"

namespace acsr::spmv {

template <class T>
class BrcEngine final : public EngineBase<T> {
 public:
  BrcEngine(vgpu::Device& dev, const mat::Csr<T>& a)
      : EngineBase<T>(dev, "BRC"), host_(a) {
    vgpu::HostModel hm;
    build(a, hm);
    this->report_.preprocess_s = hm.seconds();
    upload();
  }

  mat::index_t rows() const override { return host_.rows; }
  mat::index_t cols() const override { return host_.cols; }
  mat::offset_t nnz() const override { return host_.nnz(); }
  std::size_t num_blocks() const { return block_width_.size(); }

  void apply(const std::vector<T>& x, std::vector<T>& y) const override {
    ACSR_CHECK(static_cast<mat::index_t>(x.size()) == host_.cols);
    y.assign(static_cast<std::size_t>(host_.rows), T{0});
    for (std::size_t b = 0; b < block_width_.size(); ++b) {
      const mat::offset_t base = block_off_[b];
      const mat::index_t width = block_width_[b];
      for (int l = 0; l < kBlockRows; ++l) {
        const std::size_t pr = b * kBlockRows + static_cast<std::size_t>(l);
        if (pr >= perm_.size()) break;
        T sum{0};
        for (mat::index_t j = 0; j < width; ++j) {
          const auto slot = static_cast<std::size_t>(
              base + static_cast<mat::offset_t>(j) * kBlockRows + l);
          const mat::index_t c = slab_col_[slot];
          if (c >= 0) sum += slab_val_[slot] * x[static_cast<std::size_t>(c)];
        }
        y[static_cast<std::size_t>(perm_[pr])] = sum;
      }
    }
  }

  double simulate(const std::vector<T>& x, std::vector<T>& y) override {
    ACSR_CHECK(static_cast<mat::index_t>(x.size()) == host_.cols);
    auto x_dev = this->stage_x(x);
    auto y_dev = this->stage_y(static_cast<std::size_t>(host_.rows));

    const long long n_blocks = static_cast<long long>(block_width_.size());
    vgpu::LaunchConfig cfg;
    cfg.name = "brc";
    cfg.block_dim = 128;  // 4 matrix-blocks per thread block
    cfg.grid_dim = std::max<long long>(1, (n_blocks + 3) / 4);

    auto perm = perm_dev_.cspan();
    auto boff = boff_dev_.cspan();
    auto bw = bw_dev_.cspan();
    auto sc = scol_dev_.cspan();
    auto sv = sval_dev_.cspan();
    auto xs = x_dev;
    auto ys = y_dev;
    const long long n_perm = static_cast<long long>(perm_.size());

    const vgpu::KernelRun run =
        this->dev_.launch_warps(cfg, [&](vgpu::Warp& w) {
          using vgpu::LaneArray;
          using vgpu::Mask;
          const long long blk = w.global_warp();
          if (blk >= n_blocks) return;
          const mat::offset_t base =
              w.load_scalar(boff, static_cast<std::size_t>(blk));
          const mat::index_t width =
              w.load_scalar(bw, static_cast<std::size_t>(blk));

          LaneArray<long long> pr =
              LaneArray<long long>::iota(blk * kBlockRows);
          const Mask live = pr.where(
              [n_perm](long long p) { return p < n_perm; }, w.active_mask());
          if (live == 0) return;
          const LaneArray<mat::index_t> out_row = w.load(perm, pr, live);

          LaneArray<T> sum{};
          for (mat::index_t j = 0; j < width; ++j) {
            LaneArray<long long> slot;
            for (int l = 0; l < vgpu::kWarpSize; ++l)
              slot[l] = base + static_cast<long long>(j) * kBlockRows + l;
            const LaneArray<mat::index_t> col = w.load(sc, slot, live);
            const LaneArray<T> val = w.load(sv, slot, live);
            Mask valid = 0;
            for (int l = 0; l < vgpu::kWarpSize; ++l)
              if (vgpu::lane_active(live, l) && col[l] >= 0)
                valid |= vgpu::lane_bit(l);
            w.count_alu(2);
            if (valid != 0) {
              const LaneArray<T> xv = w.load_tex(xs, col, valid);
              vgpu::fma_into(sum, val, xv, valid);
              w.count_flops(valid, 2, sizeof(T) == 8);
            }
          }
          w.store(ys, out_row, sum, live);  // scattered by the permutation
        });
    this->report_.last_run = run;
    y = this->staged_y();
    return run.duration_s;
  }

 private:
  static constexpr int kBlockRows = 32;

  void build(const mat::Csr<T>& a, vgpu::HostModel& hm) {
    // Sort rows by descending nnz (the expensive global reorder).
    perm_.resize(static_cast<std::size_t>(a.rows));
    std::iota(perm_.begin(), perm_.end(), 0);
    std::stable_sort(perm_.begin(), perm_.end(),
                     [&](mat::index_t p, mat::index_t q) {
                       return a.row_nnz(p) > a.row_nnz(q);
                     });
    const double n_rows = static_cast<double>(a.rows);
    hm.charge_ops(n_rows * std::max(1.0, std::log2(std::max(2.0, n_rows))) *
                  2.0);

    // Pack into 32-row blocks with block-local width.
    const std::size_t n_blocks =
        (perm_.size() + kBlockRows - 1) / kBlockRows;
    block_off_.resize(n_blocks);
    block_width_.resize(n_blocks);
    mat::offset_t total = 0;
    for (std::size_t b = 0; b < n_blocks; ++b) {
      mat::offset_t wmax = 0;
      for (std::size_t l = 0; l < kBlockRows; ++l) {
        const std::size_t pr = b * kBlockRows + l;
        if (pr < perm_.size()) wmax = std::max(wmax, a.row_nnz(perm_[pr]));
      }
      block_off_[b] = total;
      block_width_[b] = static_cast<mat::index_t>(wmax);
      total += wmax * kBlockRows;
    }
    slab_col_.assign(static_cast<std::size_t>(total), -1);
    slab_val_.assign(static_cast<std::size_t>(total), T{0});
    for (std::size_t b = 0; b < n_blocks; ++b) {
      for (std::size_t l = 0; l < kBlockRows; ++l) {
        const std::size_t pr = b * kBlockRows + l;
        if (pr >= perm_.size()) break;
        const mat::index_t r = perm_[pr];
        const mat::offset_t lo = a.row_off[static_cast<std::size_t>(r)];
        const mat::offset_t n = a.row_nnz(r);
        for (mat::offset_t j = 0; j < n; ++j) {
          const auto slot = static_cast<std::size_t>(
              block_off_[b] + j * kBlockRows + static_cast<mat::offset_t>(l));
          slab_col_[slot] = a.col_idx[static_cast<std::size_t>(lo + j)];
          slab_val_[slot] = a.vals[static_cast<std::size_t>(lo + j)];
        }
      }
    }
    // Restructuring writes every slab slot.
    hm.charge_ops(2.0 * static_cast<double>(total) +
                  2.0 * static_cast<double>(a.nnz()));
    const double pad =
        total == 0 ? 0.0
                   : 1.0 - static_cast<double>(a.nnz()) /
                               static_cast<double>(total);
    this->report_.padding_ratio = pad;
  }

  void upload() {
    perm_dev_ = this->dev_.template alloc<mat::index_t>(perm_.size(),
                                                        "brc.perm");
    perm_dev_.host() = perm_;
    boff_dev_ = this->dev_.template alloc<mat::offset_t>(block_off_.size(),
                                                         "brc.boff");
    boff_dev_.host() = block_off_;
    bw_dev_ = this->dev_.template alloc<mat::index_t>(block_width_.size(),
                                                      "brc.bwidth");
    bw_dev_.host() = block_width_;
    scol_dev_ = this->dev_.template alloc<mat::index_t>(slab_col_.size(),
                                                        "brc.col");
    scol_dev_.host() = slab_col_;
    sval_dev_ = this->dev_.template alloc<T>(slab_val_.size(), "brc.val");
    sval_dev_.host() = slab_val_;
    const std::size_t b = perm_dev_.bytes() + boff_dev_.bytes() +
                          bw_dev_.bytes() + scol_dev_.bytes() +
                          sval_dev_.bytes();
    this->charge_upload(b);
    this->report_.device_bytes = b;
  }

  mat::Csr<T> host_;
  std::vector<mat::index_t> perm_;
  std::vector<mat::offset_t> block_off_;
  std::vector<mat::index_t> block_width_;
  std::vector<mat::index_t> slab_col_;
  std::vector<T> slab_val_;

  vgpu::DeviceBuffer<mat::index_t> perm_dev_;
  vgpu::DeviceBuffer<mat::offset_t> boff_dev_;
  vgpu::DeviceBuffer<mat::index_t> bw_dev_;
  vgpu::DeviceBuffer<mat::index_t> scol_dev_;
  vgpu::DeviceBuffer<T> sval_dev_;
};

/// Shape class of the BRC kernel: a permutation scattering results back
/// (injective, so the y store is race-free), per-block offset/width
/// metadata, and a slab whose layout invariant — every block's 32-row
/// strip [boff[b], boff[b] + 32*bwidth[b]) lies inside the slab — is
/// declared by decomposing the slab size as slab_base + 32*block_w +
/// slab_rest for a generic block (boff[b] = slab_base, bwidth[b] =
/// block_w, slab_rest >= 0 the space after the strip). The verifier's
/// strip bound then holds for *every* block by cancellation.
inline analysis::ShapeClass brc_shape_class() {
  namespace an = acsr::analysis;
  const an::Sym n_rows = an::Sym::param("n_rows");
  const an::Sym n_cols = an::Sym::param("n_cols");
  const an::Sym n_blocks = an::Sym::param("n_blocks");
  const an::Sym slab_base = an::Sym::param("slab_base");
  const an::Sym block_w = an::Sym::param("block_w");
  const an::Sym slab_rest = an::Sym::param("slab_rest");
  const an::Sym slab =
      slab_base + an::Sym(32) * block_w + slab_rest;
  an::ShapeClass sc;
  sc.engine = "brc";
  sc.params = {an::param("n_rows", 0, "matrix rows"),
               an::param("n_cols", 0, "matrix columns"),
               an::param("n_blocks", 0, "32-row blocks"),
               an::param("slab_base", 0, "generic block's slab offset"),
               an::param("block_w", 0, "generic block's width"),
               an::param("slab_rest", 0, "slab slots after the strip"),
               an::param("grid", 1, "launch grid dim")};
  sc.spans = {
      an::index_span("brc.perm", n_rows, {an::Sym(0), n_rows - an::Sym(1)},
                     "row permutation (sorted by length)", false, true),
      an::data_span("brc.boff", n_blocks, "per-block slab offsets"),
      an::data_span("brc.bwidth", n_blocks, "per-block widths"),
      an::index_span("brc.col", slab, {an::Sym(-1), n_cols - an::Sym(1)},
                     "slab columns (-1 = padding)"),
      an::data_span("brc.val", slab, "slab values"),
      an::data_span("x", n_cols, "input vector"),
      an::data_span("y", n_rows, "output vector", /*initialized=*/false),
  };
  return sc;
}

}  // namespace acsr::spmv
