// Device-resident CSR arrays, shared by the CSR-scalar, CSR-vector and
// ACSR engines (ACSR's whole point is that it adds only metadata on top of
// these unchanged arrays).
#pragma once

#include <vector>

#include "mat/csr.hpp"
#include "vgpu/device.hpp"

namespace acsr::spmv {

template <class T>
struct CsrDevice {
  mat::index_t rows = 0;
  mat::index_t cols = 0;
  vgpu::DeviceBuffer<mat::offset_t> row_off;
  vgpu::DeviceBuffer<mat::index_t> col_idx;
  vgpu::DeviceBuffer<T> vals;

  mat::offset_t nnz() const {
    return static_cast<mat::offset_t>(vals.size());
  }

  std::size_t bytes() const {
    return row_off.bytes() + col_idx.bytes() + vals.bytes();
  }

  /// Allocate on `dev` and fill with the host matrix. The caller charges
  /// the transfer (engines record it in their report).
  static CsrDevice upload(vgpu::Device& dev, const mat::Csr<T>& a,
                          const std::string& tag) {
    CsrDevice d;
    d.rows = a.rows;
    d.cols = a.cols;
    d.row_off = dev.alloc<mat::offset_t>(a.row_off.size(), tag + ".row_off");
    d.row_off.host() = a.row_off;
    d.col_idx = dev.alloc<mat::index_t>(a.col_idx.size(), tag + ".col_idx");
    d.col_idx.host() = a.col_idx;
    d.vals = dev.alloc<T>(a.vals.size(), tag + ".vals");
    d.vals.host() = a.vals;
    return d;
  }
};

}  // namespace acsr::spmv
