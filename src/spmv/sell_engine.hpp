// SELL-C-sigma engine (Kreutzer et al.) — the format that generalised the
// paper's era of sliced layouts: rows are sorted by length only within
// windows of sigma rows (bounding both the sort cost and the y-scatter
// distance), then packed into C-row slices stored column-major with
// slice-local width. With sigma = rows it degenerates to BRC's global
// sort; with sigma = C to SIC-like unsorted slices — this engine completes
// that family for the format-landscape comparisons.
#pragma once

#include <algorithm>
#include <numeric>

#include "analysis/shape.hpp"
#include "spmv/engine.hpp"
#include "vgpu/lane_array.hpp"

namespace acsr::spmv {

template <class T>
class SellEngine final : public EngineBase<T> {
 public:
  /// C is fixed to the warp size (the natural GPU choice); sigma must be a
  /// positive multiple of C.
  SellEngine(vgpu::Device& dev, const mat::Csr<T>& a, mat::index_t sigma = 256)
      : EngineBase<T>(dev, "SELL-32"), host_(a), sigma_(sigma) {
    ACSR_REQUIRE(sigma >= kC && sigma % kC == 0,
                 "sigma must be a positive multiple of C = " << kC);
    vgpu::HostModel hm;
    build(a, hm);
    this->report_.preprocess_s = hm.seconds();
    upload();
  }

  mat::index_t rows() const override { return host_.rows; }
  mat::index_t cols() const override { return host_.cols; }
  mat::offset_t nnz() const override { return host_.nnz(); }
  mat::index_t sigma() const { return sigma_; }
  std::size_t num_slices() const { return slice_width_.size(); }

  void apply(const std::vector<T>& x, std::vector<T>& y) const override {
    ACSR_CHECK(static_cast<mat::index_t>(x.size()) == host_.cols);
    y.assign(static_cast<std::size_t>(host_.rows), T{0});
    for (std::size_t s = 0; s < slice_width_.size(); ++s) {
      const mat::offset_t base = slice_off_[s];
      const mat::index_t width = slice_width_[s];
      for (int l = 0; l < kC; ++l) {
        const std::size_t pr = s * kC + static_cast<std::size_t>(l);
        if (pr >= perm_.size()) break;
        T sum{0};
        for (mat::index_t j = 0; j < width; ++j) {
          const auto slot = static_cast<std::size_t>(
              base + static_cast<mat::offset_t>(j) * kC + l);
          const mat::index_t c = slab_col_[slot];
          if (c >= 0) sum += slab_val_[slot] * x[static_cast<std::size_t>(c)];
        }
        y[static_cast<std::size_t>(perm_[pr])] = sum;
      }
    }
  }

  double simulate(const std::vector<T>& x, std::vector<T>& y) override {
    ACSR_CHECK(static_cast<mat::index_t>(x.size()) == host_.cols);
    auto x_dev = this->stage_x(x);
    auto y_dev = this->stage_y(static_cast<std::size_t>(host_.rows));

    const long long n_slices = static_cast<long long>(slice_width_.size());
    vgpu::LaunchConfig cfg;
    cfg.name = "sell";
    cfg.block_dim = 128;
    cfg.grid_dim = std::max<long long>(1, (n_slices + 3) / 4);

    auto perm = perm_dev_.cspan();
    auto soff = soff_dev_.cspan();
    auto sw = sw_dev_.cspan();
    auto sc = scol_dev_.cspan();
    auto sv = sval_dev_.cspan();
    auto xs = x_dev;
    auto ys = y_dev;
    const long long n_perm = static_cast<long long>(perm_.size());

    const vgpu::KernelRun run =
        this->dev_.launch_warps(cfg, [&](vgpu::Warp& w) {
          using vgpu::LaneArray;
          using vgpu::Mask;
          const long long slice = w.global_warp();
          if (slice >= n_slices) return;
          const mat::offset_t base =
              w.load_scalar(soff, static_cast<std::size_t>(slice));
          const mat::index_t width =
              w.load_scalar(sw, static_cast<std::size_t>(slice));

          LaneArray<long long> pr = LaneArray<long long>::iota(slice * kC);
          const Mask live = pr.where(
              [n_perm](long long p) { return p < n_perm; }, w.active_mask());
          if (live == 0) return;
          const LaneArray<mat::index_t> out_row = w.load(perm, pr, live);

          LaneArray<T> sum{};
          for (mat::index_t j = 0; j < width; ++j) {
            LaneArray<long long> slot;
            for (int l = 0; l < vgpu::kWarpSize; ++l)
              slot[l] = base + static_cast<long long>(j) * kC + l;
            const LaneArray<mat::index_t> col = w.load(sc, slot, live);
            const LaneArray<T> val = w.load(sv, slot, live);
            Mask valid = 0;
            for (int l = 0; l < vgpu::kWarpSize; ++l)
              if (vgpu::lane_active(live, l) && col[l] >= 0)
                valid |= vgpu::lane_bit(l);
            w.count_alu(2);
            if (valid != 0) {
              const LaneArray<T> xv = w.load_tex(xs, col, valid);
              vgpu::fma_into(sum, val, xv, valid);
              w.count_flops(valid, 2, sizeof(T) == 8);
            }
          }
          w.store(ys, out_row, sum, live);
        });
    this->report_.last_run = run;
    y = this->staged_y();
    return run.duration_s;
  }

 private:
  static constexpr int kC = 32;

  void build(const mat::Csr<T>& a, vgpu::HostModel& hm) {
    // Window-local sort: cheap (sigma log sigma per window) and keeps the
    // y scatter within sigma rows of home.
    perm_.resize(static_cast<std::size_t>(a.rows));
    std::iota(perm_.begin(), perm_.end(), 0);
    for (mat::index_t lo = 0; lo < a.rows; lo += sigma_) {
      const auto hi = std::min<mat::index_t>(lo + sigma_, a.rows);
      std::stable_sort(perm_.begin() + lo, perm_.begin() + hi,
                       [&](mat::index_t p, mat::index_t q) {
                         return a.row_nnz(p) > a.row_nnz(q);
                       });
      const double w = static_cast<double>(hi - lo);
      hm.charge_ops(w * std::max(1.0, std::log2(std::max(2.0, w))));
    }

    const std::size_t n_slices = (perm_.size() + kC - 1) / kC;
    slice_off_.resize(n_slices);
    slice_width_.resize(n_slices);
    mat::offset_t total = 0;
    for (std::size_t s = 0; s < n_slices; ++s) {
      mat::offset_t wmax = 0;
      for (std::size_t l = 0; l < kC; ++l) {
        const std::size_t pr = s * kC + l;
        if (pr < perm_.size()) wmax = std::max(wmax, a.row_nnz(perm_[pr]));
      }
      slice_off_[s] = total;
      slice_width_[s] = static_cast<mat::index_t>(wmax);
      total += wmax * kC;
    }
    slab_col_.assign(static_cast<std::size_t>(total), -1);
    slab_val_.assign(static_cast<std::size_t>(total), T{0});
    for (std::size_t s = 0; s < n_slices; ++s) {
      for (std::size_t l = 0; l < kC; ++l) {
        const std::size_t pr = s * kC + l;
        if (pr >= perm_.size()) break;
        const mat::index_t r = perm_[pr];
        const mat::offset_t lo = a.row_off[static_cast<std::size_t>(r)];
        const mat::offset_t n = a.row_nnz(r);
        for (mat::offset_t j = 0; j < n; ++j) {
          const auto slot = static_cast<std::size_t>(
              slice_off_[s] + j * kC + static_cast<mat::offset_t>(l));
          slab_col_[slot] = a.col_idx[static_cast<std::size_t>(lo + j)];
          slab_val_[slot] = a.vals[static_cast<std::size_t>(lo + j)];
        }
      }
    }
    hm.charge_ops(2.0 * static_cast<double>(total) +
                  2.0 * static_cast<double>(a.nnz()));
    this->report_.padding_ratio =
        total == 0 ? 0.0
                   : 1.0 - static_cast<double>(a.nnz()) /
                               static_cast<double>(total);
  }

  void upload() {
    perm_dev_ = this->dev_.template alloc<mat::index_t>(perm_.size(),
                                                        "sell.perm");
    perm_dev_.host() = perm_;
    soff_dev_ = this->dev_.template alloc<mat::offset_t>(slice_off_.size(),
                                                         "sell.soff");
    soff_dev_.host() = slice_off_;
    sw_dev_ = this->dev_.template alloc<mat::index_t>(slice_width_.size(),
                                                      "sell.swidth");
    sw_dev_.host() = slice_width_;
    scol_dev_ = this->dev_.template alloc<mat::index_t>(slab_col_.size(),
                                                        "sell.col");
    scol_dev_.host() = slab_col_;
    sval_dev_ = this->dev_.template alloc<T>(slab_val_.size(), "sell.val");
    sval_dev_.host() = slab_val_;
    const std::size_t b = perm_dev_.bytes() + soff_dev_.bytes() +
                          sw_dev_.bytes() + scol_dev_.bytes() +
                          sval_dev_.bytes();
    this->charge_upload(b);
    this->report_.device_bytes = b;
  }

  mat::Csr<T> host_;
  mat::index_t sigma_;
  std::vector<mat::index_t> perm_;
  std::vector<mat::offset_t> slice_off_;
  std::vector<mat::index_t> slice_width_;
  std::vector<mat::index_t> slab_col_;
  std::vector<T> slab_val_;

  vgpu::DeviceBuffer<mat::index_t> perm_dev_;
  vgpu::DeviceBuffer<mat::offset_t> soff_dev_;
  vgpu::DeviceBuffer<mat::index_t> sw_dev_;
  vgpu::DeviceBuffer<mat::index_t> scol_dev_;
  vgpu::DeviceBuffer<T> sval_dev_;
};

/// Shape class of the SELL-C-sigma kernel: structurally BRC's (window-
/// local instead of global sort changes the *values* of the permutation,
/// not its injectivity, and the slice decomposition slab_base +
/// 32*slice_w + slab_rest is the same strip-in-slab invariant).
inline analysis::ShapeClass sell_shape_class() {
  namespace an = acsr::analysis;
  const an::Sym n_rows = an::Sym::param("n_rows");
  const an::Sym n_cols = an::Sym::param("n_cols");
  const an::Sym n_slices = an::Sym::param("n_slices");
  const an::Sym slab_base = an::Sym::param("slab_base");
  const an::Sym slice_w = an::Sym::param("slice_w");
  const an::Sym slab_rest = an::Sym::param("slab_rest");
  const an::Sym slab = slab_base + an::Sym(32) * slice_w + slab_rest;
  an::ShapeClass sc;
  sc.engine = "sell";
  sc.params = {an::param("n_rows", 0, "matrix rows"),
               an::param("n_cols", 0, "matrix columns"),
               an::param("n_slices", 0, "32-row slices"),
               an::param("slab_base", 0, "generic slice's slab offset"),
               an::param("slice_w", 0, "generic slice's width"),
               an::param("slab_rest", 0, "slab slots after the strip"),
               an::param("grid", 1, "launch grid dim")};
  sc.spans = {
      an::index_span("sell.perm", n_rows,
                     {an::Sym(0), n_rows - an::Sym(1)},
                     "row permutation (window-local sort)", false, true),
      an::data_span("sell.soff", n_slices, "per-slice slab offsets"),
      an::data_span("sell.swidth", n_slices, "per-slice widths"),
      an::index_span("sell.col", slab, {an::Sym(-1), n_cols - an::Sym(1)},
                     "slab columns (-1 = padding)"),
      an::data_span("sell.val", slab, "slab values"),
      an::data_span("x", n_cols, "input vector"),
      an::data_span("y", n_rows, "output vector", /*initialized=*/false),
  };
  return sc;
}

}  // namespace acsr::spmv
