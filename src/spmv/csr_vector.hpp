// CSR-vector (cuSPARSE/CUSP style): a thread-group of V = 2^k lanes
// cooperates on each row, V chosen from the mean row length, with
// segmented-warp operation so one warp covers 32/V rows. This is the
// library-quality CSR baseline the paper compares ACSR against.
#pragma once

#include <algorithm>
#include <vector>

#include "analysis/shape.hpp"
#include "spmv/csr_device.hpp"
#include "spmv/engine.hpp"
#include "vgpu/lane_array.hpp"

namespace acsr::spmv {

/// Warp body: processes 32/V consecutive rows starting at warp_first_row.
/// Shared with the ACSR bin-specific kernels (Algorithm 2 is exactly this
/// with a per-bin V).
template <class T>
void csr_vector_warp(vgpu::Warp& w, int vec_size,
                     vgpu::DeviceSpan<const mat::offset_t> row_start,
                     vgpu::DeviceSpan<const mat::offset_t> row_end,
                     vgpu::DeviceSpan<const mat::index_t> col_idx,
                     vgpu::DeviceSpan<const T> vals,
                     vgpu::DeviceSpan<const T> x, vgpu::DeviceSpan<T> y,
                     vgpu::DeviceSpan<const mat::index_t> row_map,
                     long long map_size, long long warp_first_slot,
                     bool use_tex = true) {
  using vgpu::LaneArray;
  using vgpu::Mask;
  const int rows_per_warp = vgpu::kWarpSize / vec_size;

  // Lane l works on slot warp_first_slot + l / vec_size with intra-row
  // offset l % vec_size. A "slot" indexes row_map when present (ACSR bins)
  // or is the row id itself (plain CSR-vector, empty row_map).
  LaneArray<long long> slot;
  LaneArray<int> sub;  // position within the vector group
  for (int l = 0; l < vgpu::kWarpSize; ++l) {
    slot[l] = warp_first_slot + l / vec_size;
    sub[l] = l % vec_size;
  }
  Mask live = 0;
  for (int l = 0; l < vgpu::kWarpSize; ++l)
    if (vgpu::lane_active(w.active_mask(), l) && slot[l] < map_size)
      live |= vgpu::lane_bit(l);
  if (live == 0) return;

  LaneArray<long long> row;
  if (row_map.empty()) {
    row = slot;
  } else {
    const LaneArray<mat::index_t> mapped = w.load(row_map, slot, live);
    for (int l = 0; l < vgpu::kWarpSize; ++l) row[l] = mapped[l];
  }

  const LaneArray<mat::offset_t> start = w.load(row_start, row, live);
  const LaneArray<mat::offset_t> end = w.load(row_end, row, live);

  // Value plane only (memo replay): the same arithmetic in the same order
  // as the SIMT walk below — per-lane stride-V accumulation, then the
  // butterfly — without the per-step mask bookkeeping and LaneArray
  // traffic. Bit-identity with the metered path is pinned by the memoized
  // mode of test_metering_invariance.cpp and the differential fuzz.
  if (w.value_only()) [[unlikely]] {
    T sum[vgpu::kWarpSize] = {};
    for (Mask rem = live; rem != 0; rem &= rem - 1) {
      const int l = std::countr_zero(rem);
      T acc{};
      const auto e = end[l];
      for (mat::offset_t j = start[l] + sub[l]; j < e;
           j += static_cast<mat::offset_t>(vec_size))
        acc += vals[static_cast<std::size_t>(j)] *
               x[static_cast<std::size_t>(col_idx[static_cast<std::size_t>(j)])];
      sum[l] = acc;
    }
    // reduce_add(sum, live, vec_size): inactive lanes are already zero.
    for (int d = vec_size / 2; d > 0; d /= 2) {
      T o[vgpu::kWarpSize];
      for (int lane = 0; lane < vgpu::kWarpSize; ++lane) {
        const int group_end = (lane / vec_size) * vec_size + vec_size;
        const int src = lane + d;
        o[lane] = (src < group_end) ? sum[src] : sum[lane];
      }
      for (int lane = 0; lane < vgpu::kWarpSize; ++lane)
        sum[lane] = sum[lane] + o[lane];
    }
    for (int l = 0; l < vgpu::kWarpSize; ++l)
      if (vgpu::lane_active(live, l) && sub[l] == 0)
        y[static_cast<std::size_t>(row[l])] = sum[l];
    return;
  }
  w.count_alu(3);

  LaneArray<mat::offset_t> i;
  for (int l = 0; l < vgpu::kWarpSize; ++l) i[l] = start[l] + sub[l];

  // A lane leaves the mask for good when its group's row runs out of
  // entries at its sub-position; maintain the mask incrementally so the
  // divergent tail costs only the lanes still live.
  LaneArray<T> sum{};
  Mask m = 0;
  for (Mask rem = live; rem != 0; rem &= rem - 1) {
    const int l = std::countr_zero(rem);
    if (i[l] < end[l]) m |= vgpu::lane_bit(l);
  }
  while (m != 0) {
    LaneArray<mat::index_t> col{};
    LaneArray<T> val{};
    w.load_pair(col_idx, vals, i, m, col, val);
    // x through the texture path (the paper's choice, also cuSPARSE's) or
    // the plain global path for the ablation.
    const LaneArray<T> xv = use_tex ? w.load_tex(x, col, m)
                                    : w.load_gather_uncached(x, col, m);
    vgpu::fma_into(sum, val, xv, m);
    w.count_flops(m, 2, sizeof(T) == 8);
    w.count_alu(2);
    Mask next = 0;
    if (m == vgpu::kFullMask) {  // plain loop: no serial bit-scan chain
      for (int l = 0; l < vgpu::kWarpSize; ++l) {
        i[l] += vec_size;
        if (i[l] < end[l]) next |= vgpu::lane_bit(l);
      }
    } else {
      for (Mask rem = m; rem != 0; rem &= rem - 1) {
        const int l = std::countr_zero(rem);
        i[l] += vec_size;
        if (i[l] < end[l]) next |= vgpu::lane_bit(l);
      }
    }
    m = next;
  }

  // Intra-group shuffle reduction; the group leader publishes. Every
  // caller (plain CSR-vector, the ACSR bins) owns its rows exclusively,
  // so this is a plain store (beta = 0 semantics) — no read-modify-write.
  sum = w.reduce_add(sum, live, vec_size);
  Mask heads = 0;
  for (int l = 0; l < vgpu::kWarpSize; ++l)
    if (vgpu::lane_active(live, l) && sub[l] == 0)
      heads |= vgpu::lane_bit(l);
  w.store(y, row, sum, heads);
  (void)rows_per_warp;
}

/// Column-blocked SpMM body on the csr_vector structure: one warp = 32/V
/// row slots, looping over the column tiles of the vector block. Per
/// matrix entry the col/val pair comes from DRAM on the first tile and
/// from the warp's sector cache on every re-walk after it — the batch
/// pays the A traffic once, while the tile bound (kSpmmTile accumulator
/// sets) keeps register pressure flat for any width. Per column the
/// per-lane stride-V accumulation and butterfly reduction run in exactly
/// the scalar kernel's order, so each output column is bit-identical to
/// csr_vector_warp. Takes the same (row_map, warp_first_slot) plumbing as
/// csr_vector_warp so the ACSR bin SpMM grids could share it. xp is the
/// packed row-major x slab (xp[col*k + c], EngineBase::stage_x_pack): a
/// tile's kt gathers per matrix column land in contiguous elements, so
/// the batch shares x sectors across the tile instead of paying one per
/// column.
template <class T>
void csr_vector_spmm_warp(vgpu::Warp& w, int vec_size,
                          vgpu::DeviceSpan<const mat::offset_t> row_start,
                          vgpu::DeviceSpan<const mat::offset_t> row_end,
                          vgpu::DeviceSpan<const mat::index_t> col_idx,
                          vgpu::DeviceSpan<const T> vals,
                          vgpu::DeviceSpan<const T> xp, vgpu::DeviceSpan<T> yb,
                          long long ldy, long long n_rows,
                          vgpu::DeviceSpan<const mat::index_t> row_map,
                          long long map_size, long long warp_first_slot,
                          int k, bool use_tex = true) {
  using vgpu::LaneArray;
  using vgpu::Mask;

  LaneArray<long long> slot;
  LaneArray<int> sub;
  for (int l = 0; l < vgpu::kWarpSize; ++l) {
    slot[l] = warp_first_slot + l / vec_size;
    sub[l] = l % vec_size;
  }
  Mask live = 0;
  for (int l = 0; l < vgpu::kWarpSize; ++l)
    if (vgpu::lane_active(w.active_mask(), l) && slot[l] < map_size)
      live |= vgpu::lane_bit(l);
  if (live == 0) return;

  LaneArray<long long> row;
  if (row_map.empty()) {
    row = slot;
  } else {
    const LaneArray<mat::index_t> mapped = w.load(row_map, slot, live);
    for (int l = 0; l < vgpu::kWarpSize; ++l) row[l] = mapped[l];
  }

  const LaneArray<mat::offset_t> start = w.load(row_start, row, live);
  const LaneArray<mat::offset_t> end = w.load(row_end, row, live);
  w.count_alu(3);  // slot/sub decode

  Mask heads = 0;
  for (int l = 0; l < vgpu::kWarpSize; ++l)
    if (vgpu::lane_active(live, l) && sub[l] == 0)
      heads |= vgpu::lane_bit(l);

  for (int c_begin = 0; c_begin < k; c_begin += kSpmmTile) {
    const int kt = std::min(k, c_begin + kSpmmTile) - c_begin;
    w.count_alu(1);  // tile bookkeeping

    std::vector<vgpu::DeviceSpan<T>> ycol(static_cast<std::size_t>(kt));
    for (int c = 0; c < kt; ++c) {
      const auto gc = static_cast<std::size_t>(c_begin + c);
      ycol[static_cast<std::size_t>(c)] =
          yb.subspan(gc * static_cast<std::size_t>(ldy),
                     static_cast<std::size_t>(n_rows));
    }

    LaneArray<mat::offset_t> i;
    for (int l = 0; l < vgpu::kWarpSize; ++l) i[l] = start[l] + sub[l];

    std::vector<LaneArray<T>> sums(static_cast<std::size_t>(kt));
    Mask m = 0;
    for (Mask rem = live; rem != 0; rem &= rem - 1) {
      const int l = std::countr_zero(rem);
      if (i[l] < end[l]) m |= vgpu::lane_bit(l);
    }
    while (m != 0) {
      LaneArray<mat::index_t> col{};
      LaneArray<T> val{};
      // A sectors: DRAM on the first tile, warp sector cache afterwards.
      w.load_pair(col_idx, vals, i, m, col, val);
      // Packed gather base: lane l's tile slice is xp[col*k + c_begin ..
      // +kt-1]. On the texture path one short-vector fetch serves the
      // whole slice (charged per contiguous sector); the uncached path
      // keeps per-element gathers — it has no sector reuse to expose.
      LaneArray<long long> pidx{};
      for (Mask rem = m; rem != 0; rem &= rem - 1) {
        const int l = std::countr_zero(rem);
        pidx[l] = static_cast<long long>(col[l]) * k + c_begin;
      }
      w.count_alu(1);  // packed-index math
      LaneArray<T> xv[kSpmmTile];
      if (use_tex) {
        w.load_tex_vec(xp, pidx, kt, m, xv);
      } else {
        for (int c = 0; c < kt; ++c) {
          LaneArray<long long> pc = pidx;
          for (Mask rem = m; rem != 0; rem &= rem - 1)
            pc[std::countr_zero(rem)] += c;
          xv[c] = w.load_gather_uncached(xp, pc, m);
        }
      }
      for (int c = 0; c < kt; ++c) {
        vgpu::fma_into(sums[static_cast<std::size_t>(c)], val, xv[c], m);
        w.count_flops(m, 2, sizeof(T) == 8);
      }
      w.count_alu(2);
      Mask next = 0;
      if (m == vgpu::kFullMask) {
        for (int l = 0; l < vgpu::kWarpSize; ++l) {
          i[l] += vec_size;
          if (i[l] < end[l]) next |= vgpu::lane_bit(l);
        }
      } else {
        for (Mask rem = m; rem != 0; rem &= rem - 1) {
          const int l = std::countr_zero(rem);
          i[l] += vec_size;
          if (i[l] < end[l]) next |= vgpu::lane_bit(l);
        }
      }
      m = next;
    }

    for (int c = 0; c < kt; ++c) {
      const LaneArray<T> red =
          w.reduce_add(sums[static_cast<std::size_t>(c)], live, vec_size);
      w.store(ycol[static_cast<std::size_t>(c)], row, red, heads);
    }
  }
}

/// The CUSP heuristic: vector size = nearest power of two to the mean row
/// length, clamped to [2, 32].
inline int choose_vector_size(double mean_nnz_per_row) {
  int v = 2;
  while (v < 32 && static_cast<double>(v) * 2.0 <= mean_nnz_per_row) v <<= 1;
  return v;
}

template <class T>
class CsrVectorEngine final : public EngineBase<T> {
 public:
  CsrVectorEngine(vgpu::Device& dev, const mat::Csr<T>& a,
                  int vec_size_override = 0)
      : EngineBase<T>(dev, "CSR-vector"), host_(a) {
    const double mu =
        a.rows == 0 ? 1.0
                    : static_cast<double>(a.nnz()) / static_cast<double>(a.rows);
    vec_size_ = vec_size_override > 0 ? vec_size_override
                                      : choose_vector_size(mu);
    dev_csr_ = CsrDevice<T>::upload(dev, a, this->name());
    this->charge_upload(dev_csr_.bytes());
    this->report_.device_bytes = dev_csr_.bytes();
  }

  int vector_size() const { return vec_size_; }

  mat::index_t rows() const override { return host_.rows; }
  mat::index_t cols() const override { return host_.cols; }
  mat::offset_t nnz() const override { return host_.nnz(); }

  void apply(const std::vector<T>& x, std::vector<T>& y) const override {
    host_.spmv(x, y);
  }

  double simulate(const std::vector<T>& x, std::vector<T>& y) override {
    ACSR_CHECK(static_cast<mat::index_t>(x.size()) == host_.cols);
    auto x_dev = this->stage_x(x);
    auto y_dev = this->stage_y(static_cast<std::size_t>(host_.rows));

    const int rows_per_warp = vgpu::kWarpSize / vec_size_;
    const long long warps_needed =
        (static_cast<long long>(host_.rows) + rows_per_warp - 1) /
        rows_per_warp;
    const int warps_per_block = 4;  // 128-thread blocks
    vgpu::LaunchConfig cfg;
    cfg.name = "csr_vector";
    cfg.block_dim = warps_per_block * vgpu::kWarpSize;
    cfg.grid_dim = std::max<long long>(
        1, (warps_needed + warps_per_block - 1) / warps_per_block);

    const auto nrows = static_cast<std::size_t>(host_.rows);
    auto rs = dev_csr_.row_off.cspan().subspan(0, nrows);
    auto re = dev_csr_.row_off.cspan().subspan(1, nrows);
    auto ci = dev_csr_.col_idx.cspan();
    auto va = dev_csr_.vals.cspan();
    auto xs = x_dev;
    auto ys = y_dev;
    const long long n = host_.rows;
    const int v = vec_size_;
    const vgpu::KernelRun run =
        this->dev_.launch_warps(cfg, [&](vgpu::Warp& w) {
          const long long first = w.global_warp() * rows_per_warp;
          if (first >= n) return;
          csr_vector_warp<T>(w, v, rs, re, ci, va, xs, ys,
                             vgpu::DeviceSpan<const mat::index_t>(), n,
                             first);
        });
    this->report_.last_run = run;
    y = this->staged_y();
    return run.duration_s;
  }

  /// Real column-blocked SpMM: the scalar kernel's slot grid, each warp
  /// looping over the column tiles with its matrix sectors kept hot in
  /// its sector cache.
  double simulate_batch(const mat::DenseBlock<T>& x_block,
                        mat::DenseBlock<T>& y_block) override {
    ACSR_CHECK(x_block.rows == host_.cols);
    if (x_block.width == 0) {
      y_block.resize(host_.rows, 0);
      return 0.0;
    }
    if (x_block.width == 1) return this->simulate_batch_loop(x_block, y_block);

    const int k = x_block.width;
    const long long ldy = mat::DenseBlock<T>::padded_ld(host_.rows);
    auto xp = this->stage_x_pack(x_block);
    auto yb = this->stage_y_block(
        static_cast<std::size_t>(ldy) * static_cast<std::size_t>(k), k);

    const int rows_per_warp = vgpu::kWarpSize / vec_size_;
    const long long warps_needed =
        (static_cast<long long>(host_.rows) + rows_per_warp - 1) /
        rows_per_warp;
    const int warps_per_block = 4;
    vgpu::LaunchConfig cfg;
    cfg.name = "csr_vector_spmm";
    cfg.block_dim = warps_per_block * vgpu::kWarpSize;
    cfg.grid_dim = std::max<long long>(
        1, (warps_needed + warps_per_block - 1) / warps_per_block);

    const auto nrows = static_cast<std::size_t>(host_.rows);
    auto rs = dev_csr_.row_off.cspan().subspan(0, nrows);
    auto re = dev_csr_.row_off.cspan().subspan(1, nrows);
    auto ci = dev_csr_.col_idx.cspan();
    auto va = dev_csr_.vals.cspan();
    const long long n = host_.rows;
    const int v = vec_size_;
    const vgpu::KernelRun run =
        this->dev_.launch_warps(cfg, [&](vgpu::Warp& w) {
          const long long first = w.global_warp() * rows_per_warp;
          if (first >= n) return;
          csr_vector_spmm_warp<T>(w, v, rs, re, ci, va, xp, yb, ldy, n,
                                  vgpu::DeviceSpan<const mat::index_t>(), n,
                                  first, k);
        });
    this->report_.last_run = run;
    y_block.resize(host_.rows, k);
    y_block.data = this->staged_y_block(k);
    return run.duration_s;
  }

 private:
  mat::Csr<T> host_;
  CsrDevice<T> dev_csr_;
  int vec_size_ = 2;
};

/// Shape class of csr_vector_warp in its plain-CSR configuration (empty
/// row_map: slot == row id, map_size == n_rows). Slot ownership is
/// exclusive — exactly one vector group per row, and only the group head
/// (sub == 0) stores — so the y store is race-free by construction; the
/// verifier model declares the stored row indices pairwise-distinct on
/// that ground (docs/ANALYSIS.md).
inline analysis::ShapeClass csr_vector_shape_class() {
  namespace an = acsr::analysis;
  const an::Sym n_rows = an::Sym::param("n_rows");
  const an::Sym n_cols = an::Sym::param("n_cols");
  const an::Sym nnz = an::Sym::param("nnz");
  const an::Sym k = an::Sym::param("k");
  const an::Sym ldy_pad = an::Sym::param("ldy_pad");
  an::ShapeClass sc;
  sc.engine = "csr-vector";
  sc.params = {an::param("n_rows", 0, "matrix rows"),
               an::param("n_cols", 0, "matrix columns"),
               an::param("nnz", 0, "stored non-zeros"),
               an::param("grid", 1, "launch grid dim"),
               // Batched SpMM operands (k >= 1: simulate_batch never
               // launches on a 0-column block — the verified no-op).
               an::param("k", 1, "batch width (0-column blocks never launch)"),
               an::param("ldy_pad", 0, "y-block row padding (ldy - n_rows)")};
  sc.spans = {
      an::index_span("row_start", n_rows, {an::Sym(0), nnz},
                     "per-row begin offsets", true),
      an::index_span("row_end", n_rows, {an::Sym(0), nnz},
                     "per-row end offsets", true),
      an::index_span("col_idx", nnz, {an::Sym(0), n_cols - an::Sym(1)},
                     "column indices"),
      an::data_span("vals", nnz, "non-zero values"),
      an::data_span("x", n_cols, "input vector"),
      an::data_span("y", n_rows, "output vector", /*initialized=*/false),
      an::data_span("xpack", n_cols * k,
                    "packed row-major x slab (xpack[col*k + c])"),
      an::data_span("yb", (n_rows + ldy_pad) * k,
                    "column-major y block, leading dim n_rows + ldy_pad",
                    /*initialized=*/false),
  };
  return sc;
}

}  // namespace acsr::spmv
