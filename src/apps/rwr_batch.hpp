// Batched RWR driver: the serving-side composition of this PR's two new
// pieces — rwr_many() (lock-step personalization over the engine's
// batched SpMM path) and serve::BatchScheduler (multi-tenant one-shot
// query serving with per-tenant billing).
//
// The headline number is the amortization ratio: one width-k sweep's
// simulated seconds against k scalar sweeps of the same engine. On
// WIK-class graphs the ACSR SpMM kernels pay the A-traffic once per
// batch, so the ratio grows toward the memory-boundedness of the scalar
// kernel (docs/PERF.md has the measured curve).
#pragma once

#include <string>
#include <vector>

#include "apps/rwr.hpp"
#include "mat/dense_block.hpp"
#include "serve/scheduler.hpp"

namespace acsr::apps {

struct RwrBatchConfig {
  /// Per-query RWR parameters (the source field is ignored — sources come
  /// from the batch).
  RwrConfig rwr;
};

template <class T>
struct RwrBatchResult {
  std::vector<AppResult<T>> queries;  ///< one per source, rwr() semantics
  double spmm_per_iter_s = 0.0;       ///< one width-k batched sweep
  double seq_per_iter_s = 0.0;        ///< k scalar sweeps (the baseline)
  /// Simulated-time amortization of one iteration: k SpMVs vs one SpMM.
  double speedup() const {
    return spmm_per_iter_s <= 0.0 ? 0.0 : seq_per_iter_s / spmm_per_iter_s;
  }
};

/// Run |sources| personalization queries against a resident engine (W
/// built and uploaded once by the caller — rwr_matrix + make_engine), all
/// advancing through one batched sweep per iteration.
template <class T>
RwrBatchResult<T> rwr_batch(spmv::SpmvEngine<T>& engine,
                            const std::vector<mat::index_t>& sources,
                            const RwrBatchConfig& cfg = {}) {
  RwrBatchResult<T> res;
  res.queries = rwr_many(engine, sources, cfg.rwr);
  const int k = static_cast<int>(sources.size());
  if (k == 0) return res;

  // The amortization headline: re-simulate one batch (memoized under the
  // memo plane) against k scalar sweeps.
  mat::DenseBlock<T> x(engine.cols(), k);
  for (int c = 0; c < k; ++c)
    x.at(sources[static_cast<std::size_t>(c)], c) = T{1};
  mat::DenseBlock<T> y;
  res.spmm_per_iter_s = engine.simulate_batch(x, y);
  res.seq_per_iter_s = k * engine.spmv_seconds();
  return res;
}

/// Deterministic three-tenant serving scenario, shared by the rwr_batch
/// example and `acsr_prof --tenants`: "alpha" submits latency-sensitive
/// high-priority queries, "beta" mid-priority, "gamma" a bulk low-priority
/// backfill twice the size. Sources stride over the vertex set so the
/// gathers are spread like real personalization traffic. The scheduler is
/// drained afterwards; inspect sched.tenants() for the bill.
template <class T>
void run_tenant_scenario(serve::BatchScheduler<T>& sched, mat::index_t n,
                         int requests_per_tenant = 16) {
  struct Tenant {
    const char* name;
    int priority;
    int requests;
  };
  const Tenant tenants[] = {
      {"alpha", 2, requests_per_tenant},
      {"beta", 1, requests_per_tenant},
      {"gamma", 0, 2 * requests_per_tenant},
  };
  int stride = 0;
  for (const Tenant& t : tenants) {
    for (int i = 0; i < t.requests; ++i) {
      std::vector<T> x(static_cast<std::size_t>(n), T{0});
      x[static_cast<std::size_t>((7 * i + 3 * stride) %
                                 static_cast<int>(n))] = T{1};
      sched.submit(std::move(x), t.name, t.priority);
    }
    ++stride;
  }
  sched.drain();
}

}  // namespace acsr::apps
