// Conjugate Gradient solver on top of any SpMV engine — the "iterative
// solver" context of the paper's Eq. 2-4: a workload that re-uses one
// matrix for many SpMVs, i.e. exactly the regime where transformed formats
// amortise their preprocessing. bench_extensions uses it to validate the
// Table-IV crossover points empirically.
#pragma once

#include "apps/checkpoint.hpp"
#include "apps/power_method.hpp"
#include "mat/csr.hpp"
#include "prof/prof.hpp"

namespace acsr::apps {

struct CgConfig {
  double tolerance = 1e-8;  // on ||r|| / ||b||
  int max_iters = 5000;
  /// Per-iteration engine.simulate() instead of apply() + one analytic
  /// spmv_seconds() charge (see PowerIterConfig::device_loop) — the loop
  /// shape the memo plane (ACSR_MEMO=1) accelerates.
  bool device_loop = false;
};

template <class T>
struct CgResult {
  std::vector<T> x;
  int iterations = 0;
  double residual_norm = 0.0;
  bool converged = false;
  /// Simulated device time: iterations x (SpMV + dots + axpys) +
  /// the engine's preprocessing (a solver pays it once).
  double total_s = 0.0;
  double spmv_s = 0.0;
};

/// Solve A x = b for symmetric positive-definite A held by `engine`.
template <class T>
CgResult<T> conjugate_gradient(spmv::SpmvEngine<T>& engine,
                               const std::vector<T>& b,
                               const CgConfig& cfg = {}) {
  const auto n = static_cast<std::size_t>(engine.rows());
  ACSR_CHECK_MSG(engine.rows() == engine.cols(), "CG needs a square matrix");
  ACSR_CHECK(b.size() == n);

  CgResult<T> res;
  res.total_s = engine.report().preprocess_s;

  std::vector<T> x(n, T{0});
  std::vector<T> r = b;  // r = b - A*0
  std::vector<T> p = r;
  std::vector<T> ap;

  auto dot = [](const std::vector<T>& a, const std::vector<T>& c) {
    double s = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
      s += static_cast<double>(a[i]) * static_cast<double>(c[i]);
    return s;
  };

  double rr = dot(r, r);
  const double b_norm = std::sqrt(std::max(dot(b, b), 1e-300));

  const double spmv_s = cfg.device_loop ? 0.0 : engine.spmv_seconds();
  // Per iteration: SpMV + 2 dot-product reductions + 3 axpy passes,
  // together streaming ~10n values.
  const double aux_s =
      aux_kernels_seconds(engine.device(), 10 * n * sizeof(T), 5);

  for (int k = 0; k < cfg.max_iters; ++k) {
    const double t = cfg.device_loop ? engine.simulate(p, ap)
                                     : (engine.apply(p, ap), spmv_s);
    const double pap = dot(p, ap);
    if (pap <= 0.0) break;  // not SPD (or numerical breakdown)
    const double alpha = rr / pap;
    for (std::size_t i = 0; i < n; ++i) {
      x[i] += static_cast<T>(alpha) * p[i];
      r[i] -= static_cast<T>(alpha) * ap[i];
    }
    const double rr_new = dot(r, r);
    res.iterations = k + 1;
    res.total_s += t + aux_s;
    res.spmv_s += t;
    prof::phase_marker("app", "cg:iteration", t + aux_s);
    if (std::sqrt(rr_new) / b_norm < cfg.tolerance) {
      rr = rr_new;
      res.converged = true;
      break;
    }
    const double beta = rr_new / rr;
    for (std::size_t i = 0; i < n; ++i)
      p[i] = r[i] + static_cast<T>(beta) * p[i];
    rr = rr_new;
  }
  res.residual_norm = std::sqrt(rr);
  res.x = std::move(x);
  return res;
}

/// Checkpointed CG over a resilient engine (docs/RESILIENCE.md): the
/// solver state (x, r, p, r.r) is snapshotted every `ck.interval`
/// committed iterations; each SpMV runs through the device path so
/// injected faults strike mid-solve; restarts happen on escaped typed
/// faults, on SpMVs spanning a device failover, and when the residual
/// guard (finiteness of p.Ap and r.r) flags silent corruption.
template <class T>
CgResult<T> conjugate_gradient_checkpointed(core::ResilientEngine<T>& engine,
                                            const std::vector<T>& b,
                                            const CgConfig& cfg = {},
                                            const CheckpointConfig& ck = {}) {
  const auto n = static_cast<std::size_t>(engine.rows());
  ACSR_CHECK_MSG(engine.rows() == engine.cols(), "CG needs a square matrix");
  ACSR_CHECK(b.size() == n);

  struct State {
    std::vector<T> x, r, p;
    double rr = 0.0;
  };

  auto dot = [](const std::vector<T>& a, const std::vector<T>& c) {
    double s = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
      s += static_cast<double>(a[i]) * static_cast<double>(c[i]);
    return s;
  };

  CgResult<T> res;
  res.total_s = engine.report().preprocess_s;

  State st;
  st.x.assign(n, T{0});
  st.r = b;  // r = b - A*0
  st.p = st.r;
  st.rr = dot(st.r, st.r);
  const double b_norm = std::sqrt(std::max(dot(b, b), 1e-300));
  Checkpointer<T, State> ckpt(engine, ck, st);

  const double aux_s =
      aux_kernels_seconds(engine.device(), 10 * n * sizeof(T), 5);

  std::vector<T> ap;
  int k = 0;
  while (k < cfg.max_iters) {
    const int failovers_before = engine.failovers();
    const int fallbacks_before = engine.fallbacks();
    double t;
    try {
      t = engine.simulate(st.p, ap);
    } catch (const vgpu::DeviceFault& e) {
      k = ckpt.restart(std::string("device fault: ") + e.what(), &st);
      continue;
    }
    res.total_s += t + aux_s;
    res.spmv_s += t;
    prof::phase_marker("app", "cg:iteration", t + aux_s);
    const double pap = dot(st.p, ap);
    if (!std::isfinite(pap) || !all_finite(ap)) {
      engine.scrub();
      k = ckpt.restart("residual guard tripped (p.Ap)", &st);
      continue;
    }
    if (engine.failovers() != failovers_before) {
      k = ckpt.restart("spmv spanned device failover", &st);
      continue;
    }
    if (engine.fallbacks() != fallbacks_before) {
      // CG's three-term recurrence assumes every SpMV rounds in the same
      // order; a mid-solve format fallback (down to the out-of-core rung)
      // breaks that, so resume the recurrence from the last checkpoint on
      // the new format.
      k = ckpt.restart("spmv spanned format fallback to " +
                           engine.active_format(),
                       &st);
      continue;
    }
    if (pap <= 0.0) break;  // not SPD (or numerical breakdown)
    const double alpha = st.rr / pap;
    for (std::size_t i = 0; i < n; ++i) {
      st.x[i] += static_cast<T>(alpha) * st.p[i];
      st.r[i] -= static_cast<T>(alpha) * ap[i];
    }
    const double rr_new = dot(st.r, st.r);
    if (!std::isfinite(rr_new)) {
      engine.scrub();
      k = ckpt.restart("residual guard tripped (r.r)", &st);
      continue;
    }
    res.iterations = k + 1;
    if (std::sqrt(rr_new) / b_norm < cfg.tolerance) {
      st.rr = rr_new;
      res.converged = true;
      break;
    }
    const double beta = rr_new / st.rr;
    for (std::size_t i = 0; i < n; ++i)
      st.p[i] = st.r[i] + static_cast<T>(beta) * st.p[i];
    st.rr = rr_new;
    ckpt.maybe_checkpoint(k, st);
    ++k;
  }
  res.residual_norm = std::sqrt(st.rr);
  res.x = std::move(st.x);
  return res;
}

/// 2D 5-point Laplacian on an nx x ny grid: the classic SPD test matrix
/// (and, being banded, a matrix where DIA/ELL shine — the opposite end of
/// the format landscape from power-law graphs).
template <class T>
mat::Csr<T> laplacian_2d(mat::index_t nx, mat::index_t ny) {
  mat::Csr<T> m;
  m.rows = nx * ny;
  m.cols = nx * ny;
  m.row_off.assign(static_cast<std::size_t>(m.rows) + 1, 0);
  for (mat::index_t j = 0; j < ny; ++j)
    for (mat::index_t i = 0; i < nx; ++i) {
      const mat::index_t r = j * nx + i;
      auto push = [&](mat::index_t c, T v) {
        m.col_idx.push_back(c);
        m.vals.push_back(v);
      };
      if (j > 0) push(r - nx, T{-1});
      if (i > 0) push(r - 1, T{-1});
      push(r, T{4});
      if (i + 1 < nx) push(r + 1, T{-1});
      if (j + 1 < ny) push(r + nx, T{-1});
      m.row_off[static_cast<std::size_t>(r) + 1] =
          static_cast<mat::offset_t>(m.col_idx.size());
    }
  m.validate();
  return m;
}

}  // namespace acsr::apps
