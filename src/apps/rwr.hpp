// Random Walk with Restart (paper Eq. 8):
//   r^{k+1} = c (W r^k) + (1 - c) e_i
// with W the column-normalised adjacency matrix, c the restart
// probability, and e_i the indicator of the query node.
#pragma once

#include "apps/power_method.hpp"
#include "mat/csr.hpp"

namespace acsr::apps {

struct RwrConfig {
  double c = 0.9;             // walk-continuation probability
  mat::index_t source = 0;    // query node i
  PowerIterConfig iter;
};

/// The matrix RWR multiplies by: column-normalised adjacency.
template <class T>
mat::Csr<T> rwr_matrix(const mat::Csr<T>& adjacency) {
  mat::Csr<T> w = adjacency;
  w.col_normalize();
  return w;
}

template <class T>
AppResult<T> rwr(spmv::SpmvEngine<T>& engine, const RwrConfig& cfg) {
  const auto n = static_cast<std::size_t>(engine.rows());
  ACSR_CHECK_MSG(engine.rows() == engine.cols(), "RWR needs square W");
  ACSR_CHECK(cfg.source >= 0 &&
             static_cast<std::size_t>(cfg.source) < n);

  AppResult<T> res;
  std::vector<T> r(n, T{0});
  r[static_cast<std::size_t>(cfg.source)] = T{1};
  const T restart = static_cast<T>(1.0 - cfg.c);

  const double spmv_s = engine.spmv_seconds();
  const double aux_s =
      aux_kernels_seconds(engine.device(), 5 * n * sizeof(T), 3);

  std::vector<T> y;
  for (int k = 0; k < cfg.iter.max_iters; ++k) {
    engine.apply(r, y);
    for (std::size_t i = 0; i < n; ++i)
      y[i] = static_cast<T>(cfg.c) * y[i];
    y[static_cast<std::size_t>(cfg.source)] += restart;
    res.iterations = k + 1;
    res.total_s += spmv_s + aux_s;
    res.spmv_s += spmv_s;
    const double dist = euclidean_distance(y, r);
    r.swap(y);
    if (dist < cfg.iter.epsilon) {
      res.converged = true;
      break;
    }
  }
  res.scores = std::move(r);
  return res;
}

}  // namespace acsr::apps
