// Random Walk with Restart (paper Eq. 8):
//   r^{k+1} = c (W r^k) + (1 - c) e_i
// with W the column-normalised adjacency matrix, c the restart
// probability, and e_i the indicator of the query node.
#pragma once

#include <cmath>
#include <vector>

#include "apps/power_method.hpp"
#include "mat/csr.hpp"
#include "mat/dense_block.hpp"

namespace acsr::apps {

struct RwrConfig {
  double c = 0.9;             // walk-continuation probability
  mat::index_t source = 0;    // query node i
  PowerIterConfig iter;
};

/// The matrix RWR multiplies by: column-normalised adjacency.
template <class T>
mat::Csr<T> rwr_matrix(const mat::Csr<T>& adjacency) {
  mat::Csr<T> w = adjacency;
  w.col_normalize();
  return w;
}

/// Many-source RWR over one resident engine: the W construction and
/// upload happen once (build the engine from rwr_matrix(adjacency) and
/// pass it here), and all queries advance lock-step through the engine's
/// *batched* SpMM path, so the matrix is streamed once per iteration for
/// the whole source set instead of once per source. Device cost follows
/// the same protocol as rwr(): the batched sweep is simulated once (the
/// kernel time does not depend on x values) and each iteration charges
/// that memoized time, split evenly over the k queries (the sweep stays
/// width-k), plus the per-query auxiliary vector kernels. Numerics per column are
/// bit-identical to the scalar rwr() — apply_batch is the same column
/// loop the exactness tests pin.
template <class T>
std::vector<AppResult<T>> rwr_many(spmv::SpmvEngine<T>& engine,
                                   const std::vector<mat::index_t>& sources,
                                   const RwrConfig& cfg = {}) {
  const auto n = static_cast<std::size_t>(engine.rows());
  ACSR_CHECK_MSG(engine.rows() == engine.cols(), "RWR needs square W");
  const int k = static_cast<int>(sources.size());
  std::vector<AppResult<T>> res(sources.size());
  if (k == 0) return res;

  mat::DenseBlock<T> r(engine.rows(), k);
  for (int c = 0; c < k; ++c) {
    const mat::index_t s = sources[static_cast<std::size_t>(c)];
    ACSR_CHECK(s >= 0 && static_cast<std::size_t>(s) < n);
    r.at(s, c) = T{1};
  }
  const T restart = static_cast<T>(1.0 - cfg.c);
  const double aux_s =
      aux_kernels_seconds(engine.device(), 5 * n * sizeof(T), 3);

  mat::DenseBlock<T> y;
  std::vector<char> done(sources.size(), 0);
  double spmm_s = -1.0;  // one batched sweep, memoized like spmv_seconds()
  for (int it = 0; it < cfg.iter.max_iters; ++it) {
    if (spmm_s < 0.0) {
      spmm_s = engine.simulate_batch(r, y);
    } else {
      engine.apply_batch(r, y);
    }
    const double col_spmv_s = spmm_s / k;
    bool all_done = true;
    for (int c = 0; c < k; ++c) {
      if (done[static_cast<std::size_t>(c)]) continue;
      AppResult<T>& rc = res[static_cast<std::size_t>(c)];
      const mat::index_t s = sources[static_cast<std::size_t>(c)];
      double dist_sq = 0.0;
      for (mat::index_t i = 0; i < engine.rows(); ++i) {
        T v = static_cast<T>(cfg.c) * y.at(i, c);
        if (i == s) v += restart;
        const double d = static_cast<double>(v - r.at(i, c));
        dist_sq += d * d;
        r.at(i, c) = v;
      }
      rc.iterations = it + 1;
      rc.total_s += col_spmv_s + aux_s;
      rc.spmv_s += col_spmv_s;
      if (std::sqrt(dist_sq) < cfg.iter.epsilon) {
        done[static_cast<std::size_t>(c)] = 1;
        rc.converged = true;
      } else {
        all_done = false;
      }
    }
    if (all_done) break;
  }
  for (int c = 0; c < k; ++c)
    res[static_cast<std::size_t>(c)].scores = r.column(c);
  return res;
}

template <class T>
AppResult<T> rwr(spmv::SpmvEngine<T>& engine, const RwrConfig& cfg) {
  const auto n = static_cast<std::size_t>(engine.rows());
  ACSR_CHECK_MSG(engine.rows() == engine.cols(), "RWR needs square W");
  ACSR_CHECK(cfg.source >= 0 &&
             static_cast<std::size_t>(cfg.source) < n);

  AppResult<T> res;
  std::vector<T> r(n, T{0});
  r[static_cast<std::size_t>(cfg.source)] = T{1};
  const T restart = static_cast<T>(1.0 - cfg.c);

  const double spmv_s = engine.spmv_seconds();
  const double aux_s =
      aux_kernels_seconds(engine.device(), 5 * n * sizeof(T), 3);

  std::vector<T> y;
  for (int k = 0; k < cfg.iter.max_iters; ++k) {
    engine.apply(r, y);
    for (std::size_t i = 0; i < n; ++i)
      y[i] = static_cast<T>(cfg.c) * y[i];
    y[static_cast<std::size_t>(cfg.source)] += restart;
    res.iterations = k + 1;
    res.total_s += spmv_s + aux_s;
    res.spmv_s += spmv_s;
    const double dist = euclidean_distance(y, r);
    r.swap(y);
    if (dist < cfg.iter.epsilon) {
      res.converged = true;
      break;
    }
  }
  res.scores = std::move(r);
  return res;
}

}  // namespace acsr::apps
