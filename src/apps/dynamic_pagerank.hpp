// Dynamic-graph PageRank (paper section VII, Fig. 7).
//
// The graph evolves over E epochs; each epoch changes ~10% of the rows of
// the SpMV matrix. PageRank re-runs per epoch, warm-started from the
// previous epoch's converged vector (so later epochs need few iterations,
// which is what makes preprocessing/transfer overheads decisive).
//
// Three methods are compared:
//   * ACSR (incremental): only the change list crosses PCIe; a device
//     kernel patches the slack-padded CSR in place; re-binning is one host
//     scan + a small metadata upload.
//   * CSR: the full updated matrix is re-copied to the device each epoch.
//   * HYB: full re-copy plus the ELL/COO re-transformation.
// Epoch 0 is the cold start: every method pays its initial full copy.
//
// Note on the workload: updates are applied directly to the SpMV operand
// matrix (the row-normalised, transposed adjacency), because that is the
// CSR structure the paper's update kernel patches; see EXPERIMENTS.md.
#pragma once

#include "apps/centrality.hpp"
#include "apps/pagerank.hpp"
#include "core/acsr_engine.hpp"
#include "core/incremental_csr.hpp"
#include "graph/dynamic.hpp"
#include "spmv/csr_vector.hpp"
#include "spmv/hyb_engine.hpp"

namespace acsr::apps {

struct DynamicPageRankConfig {
  int epochs = 10;
  graph::UpdateParams update;  // defaults: 10% of rows
  PageRankConfig pagerank;
  core::AcsrOptions acsr;
  mat::index_t hyb_breakeven = 4096;
  std::uint64_t seed = 99;
  /// Which ranking iterates per epoch: "pagerank" (the paper's section
  /// VII) or "katz" (extension — the section speaks of ranking algorithms
  /// generally). Both warm-start from the previous epoch's scores.
  std::string app = "pagerank";
  KatzConfig katz;  // used when app == "katz"
};

struct EpochRecord {
  int epoch = 0;
  int iterations = 0;
  // Per-method total epoch time: update-path cost + iterations x step.
  double acsr_s = 0.0;
  double csr_s = 0.0;
  double hyb_s = 0.0;
  // Update-path (non-iteration) cost per method, for reporting.
  double acsr_update_s = 0.0;
  double csr_update_s = 0.0;
  double hyb_update_s = 0.0;
  std::size_t relocated_rows = 0;  // rows moved to the spare heap
  bool rebuilt = false;            // spare heap exhausted: full rebuild

  double speedup_vs_csr() const { return acsr_s > 0 ? csr_s / acsr_s : 0; }
  double speedup_vs_hyb() const { return acsr_s > 0 ? hyb_s / acsr_s : 0; }
};

template <class T>
struct DynamicPageRankResult {
  std::vector<EpochRecord> epochs;
  std::vector<T> final_scores;
  /// The matrix after all updates (for verification against the
  /// incremental device state).
  mat::Csr<T> final_matrix;

  double mean_speedup_vs_csr() const {
    double s = 0;
    for (const auto& e : epochs) s += e.speedup_vs_csr();
    return epochs.empty() ? 0 : s / static_cast<double>(epochs.size());
  }
  double mean_speedup_vs_hyb() const {
    double s = 0;
    for (const auto& e : epochs) s += e.speedup_vs_hyb();
    return epochs.empty() ? 0 : s / static_cast<double>(epochs.size());
  }
};

/// Host-side Katz iteration count + scores (same role as
/// pagerank_functional below, for the dynamic driver's "katz" mode).
template <class T>
std::pair<int, std::vector<T>> katz_functional(
    const mat::Csr<T>& m, const KatzConfig& cfg,
    const std::vector<T>* warm_start) {
  const auto n = static_cast<std::size_t>(m.rows);
  std::vector<T> x(n, static_cast<T>(cfg.beta));
  if (warm_start != nullptr) x = *warm_start;
  std::vector<T> y;
  int iters = 0;
  for (int k = 0; k < cfg.iter.max_iters; ++k) {
    m.spmv(x, y);
    for (std::size_t i = 0; i < n; ++i)
      y[i] = static_cast<T>(cfg.beta) + static_cast<T>(cfg.alpha) * y[i];
    ++iters;
    const double dist = euclidean_distance(y, x);
    x.swap(y);
    if (dist < cfg.iter.epsilon) break;
  }
  return {iters, std::move(x)};
}

/// Host-side PageRank iteration count + scores for the current matrix
/// (identical math for all three methods, so they share one count).
template <class T>
std::pair<int, std::vector<T>> pagerank_functional(
    const mat::Csr<T>& m, const PageRankConfig& cfg,
    const std::vector<T>* warm_start) {
  const auto n = static_cast<std::size_t>(m.rows);
  const T base =
      static_cast<T>((1.0 - cfg.damping) / static_cast<double>(n));
  std::vector<T> pr(n, static_cast<T>(1.0 / static_cast<double>(n)));
  if (warm_start != nullptr) pr = *warm_start;
  std::vector<T> y;
  int iters = 0;
  for (int k = 0; k < cfg.iter.max_iters; ++k) {
    m.spmv(pr, y);
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      y[i] = base + static_cast<T>(cfg.damping) * y[i];
      sum += static_cast<double>(y[i]);
    }
    // Same L1 guard as apps::pagerank (see there).
    if (sum > 0.0)
      for (std::size_t i = 0; i < n; ++i)
        y[i] = static_cast<T>(static_cast<double>(y[i]) / sum);
    ++iters;
    const double dist = euclidean_distance(y, pr);
    pr.swap(y);
    if (dist < cfg.iter.epsilon) break;
  }
  return {iters, std::move(pr)};
}

/// `spmv_matrix` is the operand PageRank multiplies by each iteration,
/// i.e. pagerank_matrix(adjacency).
template <class T>
DynamicPageRankResult<T> dynamic_pagerank(
    vgpu::Device& acsr_dev, vgpu::Device& csr_dev, vgpu::Device& hyb_dev,
    const mat::Csr<T>& spmv_matrix, const DynamicPageRankConfig& cfg) {
  DynamicPageRankResult<T> res;
  mat::Csr<T> current = spmv_matrix;
  const auto n = static_cast<std::size_t>(current.rows);

  // ACSR's persistent device state.
  core::IncrementalCsr<T> inc(acsr_dev, current);
  const double acsr_initial_copy =
      acsr_dev.note_transfer(inc.bytes()).duration_s;

  std::vector<T> prev_scores;

  for (int e = 0; e < cfg.epochs; ++e) {
    EpochRecord rec;
    rec.epoch = e;

    // --- Apply this epoch's graph change. --------------------------------
    if (e == 0) {
      rec.acsr_update_s = acsr_initial_copy;
    } else {
      graph::UpdateParams up = cfg.update;
      up.seed = cfg.seed + static_cast<std::uint64_t>(e) * 7919;
      graph::UpdateBatch<T> batch = graph::generate_update(current, up);
      // Inserted weights take the row's current mean magnitude so the
      // operand stays near-stochastic (raw U(0.5,1) weights would blow up
      // the spectral radius of the normalised matrix).
      for (std::size_t i = 0; i < batch.rows.size(); ++i) {
        const auto r = static_cast<std::size_t>(batch.rows[i]);
        const mat::offset_t lo = current.row_off[r];
        const mat::offset_t hi = current.row_off[r + 1];
        T mean = static_cast<T>(1.0 / static_cast<double>(n));
        if (hi > lo) {
          double s = 0.0;
          for (mat::offset_t j = lo; j < hi; ++j)
            s += static_cast<double>(
                current.vals[static_cast<std::size_t>(j)]);
          mean = static_cast<T>(s / static_cast<double>(hi - lo));
        }
        for (mat::offset_t k = batch.ins_off[i]; k < batch.ins_off[i + 1];
             ++k)
          batch.ins_vals[static_cast<std::size_t>(k)] = mean;
      }
      graph::apply_update_host(current, batch);
      const auto ur = inc.apply_update(batch);
      rec.acsr_update_s = ur.h2d_s + ur.kernel_s + ur.rebuild_s;
      rec.relocated_rows = ur.overflowed_rows;
      rec.rebuilt = ur.rebuild_s > 0.0;
    }

    // --- Per-method update-path costs. ------------------------------------
    // Re-bin ACSR (host scan + metadata upload) every epoch.
    vgpu::HostModel hm;
    core::BinningOptions bopt = cfg.acsr.binning;
    bopt.enable_dp =
        bopt.enable_dp && acsr_dev.spec().supports_dynamic_parallelism();
    core::Binning binning =
        core::Binning::build(inc.row_lengths(), bopt, &hm);
    core::AcsrLauncher<T> launcher(acsr_dev, std::move(binning), cfg.acsr);
    rec.acsr_update_s += hm.seconds() + launcher.metadata_upload_s();

    // CSR / HYB re-ship the full matrix (and HYB re-transforms).
    spmv::CsrVectorEngine<T> csr_engine(csr_dev, current);
    rec.csr_update_s =
        csr_engine.report().h2d_s + csr_engine.report().preprocess_s;
    spmv::HybEngine<T> hyb_engine(hyb_dev, current, cfg.hyb_breakeven);
    rec.hyb_update_s =
        hyb_engine.report().h2d_s + hyb_engine.report().preprocess_s;

    // --- Iterations to convergence (same for every method). ---------------
    auto [iters, scores] =
        cfg.app == "katz"
            ? katz_functional(current, cfg.katz,
                              e == 0 ? nullptr : &prev_scores)
            : pagerank_functional(current, cfg.pagerank,
                                  e == 0 ? nullptr : &prev_scores);
    rec.iterations = iters;
    prev_scores = std::move(scores);

    // --- Per-iteration step times. -----------------------------------------
    std::vector<T> x_host(n, static_cast<T>(1.0 / static_cast<double>(n)));
    auto x_dev = acsr_dev.template alloc<T>(n, "dyn.x");
    x_dev.host() = x_host;
    auto y_dev = acsr_dev.template alloc<T>(n, "dyn.y");
    const double acsr_spmv =
        launcher.run(inc.row_begin(), inc.row_end(), inc.col_idx(),
                     inc.vals(), x_dev.cspan(), y_dev.span());
    const double aux =
        aux_kernels_seconds(acsr_dev, 5 * n * sizeof(T), 3);
    const double it = static_cast<double>(iters);
    rec.acsr_s = rec.acsr_update_s + it * (acsr_spmv + aux);
    rec.csr_s = rec.csr_update_s + it * (csr_engine.spmv_seconds() + aux);
    rec.hyb_s = rec.hyb_update_s + it * (hyb_engine.spmv_seconds() + aux);

    res.epochs.push_back(rec);
  }

  res.final_scores = std::move(prev_scores);
  res.final_matrix = std::move(current);
  return res;
}

}  // namespace acsr::apps
