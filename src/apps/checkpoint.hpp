// Checkpoint/restart protocol for the iterative solvers.
//
// The iterative apps (PageRank, CG, the power method) run hundreds of
// SpMVs against one resident matrix; a device loss or an undetected bit
// flip mid-run would otherwise forfeit all accumulated progress. The
// protocol (docs/RESILIENCE.md):
//
//   * every `interval` committed iterations the solver snapshots its
//     state vectors (host-side — the device holds no solver state between
//     SpMVs in this model, so the snapshot is the recovery line);
//   * each iteration's SpMV runs through ResilientEngine::simulate, so
//     transient faults, detected corruption, preprocessing OOM and device
//     loss are repaired by the driver underneath;
//   * the solver still *restarts from the last checkpoint* when (a) a
//     fault escaped the driver's budgets, (b) the SpMV spanned a device
//     failover (an SpMV that overlapped a loss is not trusted), or (c) a
//     residual/mass guard flags the iterate — the application-level net
//     that catches *silent* corruption no hardware signal reports;
//   * every checkpoint and restart is recorded on the driver's timeline
//     next to the fault/recovery events, so a run's full fault history
//     reads off one log.
#pragma once

#include <cmath>
#include <string>
#include <vector>

#include "apps/power_method.hpp"
#include "core/resilient.hpp"

namespace acsr::apps {

struct CheckpointConfig {
  /// Committed iterations between snapshots. 0 disables checkpointing
  /// (faults escalate to the caller as typed errors).
  int interval = 16;
  /// Restarts allowed before the solver reports the fault to the caller.
  int max_restarts = 8;
};

template <class T>
bool all_finite(const std::vector<T>& v) {
  for (const T& x : v)
    if (!std::isfinite(static_cast<double>(x))) return false;
  return true;
}

/// Snapshot-and-restart bookkeeping shared by the checkpointed solvers:
/// holds the last committed state, counts restarts, and writes
/// checkpoint/restart marks onto the resilient driver's timeline.
template <class T, class State>
class Checkpointer {
 public:
  Checkpointer(core::ResilientEngine<T>& engine, const CheckpointConfig& cfg,
               State initial)
      : engine_(engine), cfg_(cfg), snap_(std::move(initial)) {}

  /// Called after iteration k commits; snapshots on the interval.
  void maybe_checkpoint(int k, const State& state) {
    if (cfg_.interval <= 0 || (k + 1) % cfg_.interval != 0) return;
    snap_ = state;
    snap_iter_ = k + 1;
    engine_.note_event("checkpoint@iter" + std::to_string(k + 1));
  }

  /// Roll back to the last snapshot. Returns the iteration to resume from.
  /// Throws (rethrows the in-flight exception if any, else InputError)
  /// once the restart budget is exhausted.
  int restart(const std::string& why, State* state) {
    if (++restarts_ > cfg_.max_restarts || cfg_.interval <= 0) {
      if (std::current_exception()) throw;  // keep the typed fault
      ACSR_REQUIRE(false, "checkpoint restart budget exhausted: " << why);
    }
    engine_.note_event("restart:iter" + std::to_string(snap_iter_) + " (" +
                       why + ")");
    *state = snap_;
    return snap_iter_;
  }

  int restarts() const { return restarts_; }

 private:
  core::ResilientEngine<T>& engine_;
  CheckpointConfig cfg_;
  State snap_;
  int snap_iter_ = 0;
  int restarts_ = 0;
};

/// Checkpointed power method over a resilient engine. Same protocol as
/// pagerank_checkpointed / conjugate_gradient_checkpointed: SpMVs run on
/// the device path, the normalised iterate is snapshotted on the interval,
/// and the unit-norm guard (the iterate is renormalised every step, so a
/// non-finite or zero ||A v|| means device state diverged from host truth)
/// triggers a scrub + restart.
template <class T>
AppResult<T> power_method_checkpointed(core::ResilientEngine<T>& engine,
                                       const PowerIterConfig& cfg = {},
                                       const CheckpointConfig& ck = {}) {
  const auto n = static_cast<std::size_t>(engine.rows());
  ACSR_CHECK_MSG(engine.rows() == engine.cols(),
                 "power method needs a square matrix");
  AppResult<T> res;
  std::vector<T> v(n, n == 0 ? T{0}
                             : static_cast<T>(1.0 / std::sqrt(
                                                  static_cast<double>(n))));
  const double aux_s =
      aux_kernels_seconds(engine.device(), 5 * n * sizeof(T), 3);
  Checkpointer<T, std::vector<T>> ckpt(engine, ck, v);

  std::vector<T> y;
  int k = 0;
  while (k < cfg.max_iters) {
    const int failovers_before = engine.failovers();
    const int fallbacks_before = engine.fallbacks();
    double t;
    try {
      t = engine.simulate(v, y);
    } catch (const vgpu::DeviceFault& e) {
      k = ckpt.restart(std::string("device fault: ") + e.what(), &v);
      continue;
    }
    res.total_s += t + aux_s;
    res.spmv_s += t;
    double norm = 0.0;
    for (const T& x : y)
      norm += static_cast<double>(x) * static_cast<double>(x);
    norm = std::sqrt(norm);
    if (!std::isfinite(norm) || !all_finite(y)) {
      engine.scrub();
      k = ckpt.restart("unit-norm guard tripped", &v);
      continue;
    }
    if (engine.failovers() != failovers_before) {
      k = ckpt.restart("spmv spanned device failover", &v);
      continue;
    }
    if (engine.fallbacks() != fallbacks_before) {
      // Mid-solve format degradation (including the terminal out-of-core
      // rung): the driver re-ran the SpMV on the new format, but each
      // format rounds in its own order — resume from the last checkpoint
      // so the whole remaining solve is coherent on one format.
      k = ckpt.restart("spmv spanned format fallback to " +
                           engine.active_format(),
                       &v);
      continue;
    }
    if (norm == 0.0) break;  // matrix annihilated the iterate
    for (auto& x : y) x = static_cast<T>(static_cast<double>(x) / norm);
    res.iterations = k + 1;
    const double dist = euclidean_distance(y, v);
    v.swap(y);
    if (dist < cfg.epsilon) {
      res.converged = true;
      break;
    }
    ckpt.maybe_checkpoint(k, v);
    ++k;
  }
  res.scores = std::move(v);
  return res;
}

}  // namespace acsr::apps
