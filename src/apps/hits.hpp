// HITS (Kleinberg): authority/hub power iteration. Following the paper
// (Eq. 7, after [28]), both score vectors update through one SpMV with the
// combined 2n x 2n matrix [[0, A^T], [A, 0]] acting on [a; h]. Scores are
// L2-normalised each iteration (required for convergence of the power
// method on A^T A / A A^T).
#pragma once

#include "apps/power_method.hpp"
#include "mat/csr.hpp"

namespace acsr::apps {

template <class T>
struct HitsResult {
  AppResult<T> iteration;          // combined-vector convergence record
  std::vector<T> authority;        // first n entries
  std::vector<T> hub;              // last n entries
};

/// Run HITS with `engine` holding mat::make_hits_matrix(adjacency)
/// (a 2n x 2n combined matrix).
template <class T>
HitsResult<T> hits(spmv::SpmvEngine<T>& engine, const PowerIterConfig& cfg) {
  const auto n2 = static_cast<std::size_t>(engine.rows());
  ACSR_CHECK_MSG(engine.rows() == engine.cols() && n2 % 2 == 0,
                 "HITS engine must hold the combined 2n x 2n matrix");
  const std::size_t n = n2 / 2;

  HitsResult<T> res;
  std::vector<T> v(n2, static_cast<T>(1.0 / static_cast<double>(n)));

  const double spmv_s = engine.spmv_seconds();
  // Per iteration: SpMV + two norm reductions + one scale pass (~6n2).
  const double aux_s =
      aux_kernels_seconds(engine.device(), 6 * n2 * sizeof(T), 3);

  std::vector<T> y;
  for (int k = 0; k < cfg.max_iters; ++k) {
    engine.apply(v, y);
    // L2-normalise the authority and hub halves independently.
    for (int half = 0; half < 2; ++half) {
      const std::size_t lo = half == 0 ? 0 : n;
      double norm = 0.0;
      for (std::size_t i = lo; i < lo + n; ++i)
        norm += static_cast<double>(y[i]) * static_cast<double>(y[i]);
      norm = std::sqrt(norm);
      if (norm > 0.0)
        for (std::size_t i = lo; i < lo + n; ++i)
          y[i] = static_cast<T>(static_cast<double>(y[i]) / norm);
    }
    res.iteration.iterations = k + 1;
    res.iteration.total_s += spmv_s + aux_s;
    res.iteration.spmv_s += spmv_s;
    const double dist = euclidean_distance(y, v);
    v.swap(y);
    if (dist < cfg.epsilon) {
      res.iteration.converged = true;
      break;
    }
  }

  res.authority.assign(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(n));
  res.hub.assign(v.begin() + static_cast<std::ptrdiff_t>(n), v.end());
  res.iteration.scores = std::move(v);
  return res;
}

}  // namespace acsr::apps
