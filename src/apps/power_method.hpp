// Shared machinery for the paper's three graph-mining applications
// (PageRank, HITS, RWR): all are power iterations whose per-step cost is
// one SpMV plus a handful of streaming vector kernels, iterated until the
// Euclidean distance between successive score vectors drops below epsilon.
#pragma once

#include <cmath>
#include <vector>

#include "common/check.hpp"
#include "spmv/engine.hpp"

namespace acsr::apps {

struct PowerIterConfig {
  double epsilon = 1e-6;  // Euclidean convergence threshold (the paper's)
  int max_iters = 10000;
};

template <class T>
struct AppResult {
  int iterations = 0;
  /// Simulated device time: iterations x (SpMV + auxiliary kernels).
  double total_s = 0.0;
  double spmv_s = 0.0;  // the SpMV share of total_s
  std::vector<T> scores;
  bool converged = false;
};

template <class T>
double euclidean_distance(const std::vector<T>& a, const std::vector<T>& b) {
  ACSR_CHECK(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d =
        static_cast<double>(a[i]) - static_cast<double>(b[i]);
    s += d * d;
  }
  return std::sqrt(s);
}

/// Simulated cost of one iteration's vector work: `n_kernels` streaming
/// kernels that together read/write `bytes` of device memory (axpy, scale,
/// the distance reduction). These are bandwidth-bound and identical across
/// SpMV formats, so they dilute — but never change the sign of — the
/// format speedups, exactly as on real hardware.
inline double aux_kernels_seconds(const vgpu::Device& dev, std::size_t bytes,
                                  int n_kernels) {
  const auto& s = dev.spec();
  return static_cast<double>(n_kernels) * s.host_launch_overhead_s +
         static_cast<double>(bytes) /
             (s.dram_bandwidth_gbs * 1e9 * s.dram_efficiency);
}

}  // namespace acsr::apps
