// Shared machinery for the paper's three graph-mining applications
// (PageRank, HITS, RWR): all are power iterations whose per-step cost is
// one SpMV plus a handful of streaming vector kernels, iterated until the
// Euclidean distance between successive score vectors drops below epsilon.
#pragma once

#include <cmath>
#include <vector>

#include "common/check.hpp"
#include "spmv/engine.hpp"

namespace acsr::apps {

struct PowerIterConfig {
  double epsilon = 1e-6;  // Euclidean convergence threshold (the paper's)
  int max_iters = 10000;
  /// Run every SpMV through engine.simulate() — the full device path with
  /// per-launch metering — instead of apply() plus a single analytic
  /// spmv_seconds() charge. Same simulated time, same result vector
  /// (simulate and apply agree to rounding), but the host pays the real
  /// simulator cost per iteration. This is the loop shape the memo plane
  /// (ACSR_MEMO=1, vgpu/memo.hpp) accelerates: iteration 1 captures the
  /// launch metering, later iterations replay it and re-run kernels
  /// value-only.
  bool device_loop = false;
};

template <class T>
struct AppResult {
  int iterations = 0;
  /// Simulated device time: iterations x (SpMV + auxiliary kernels).
  double total_s = 0.0;
  double spmv_s = 0.0;  // the SpMV share of total_s
  std::vector<T> scores;
  bool converged = false;
};

template <class T>
double euclidean_distance(const std::vector<T>& a, const std::vector<T>& b) {
  ACSR_CHECK(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d =
        static_cast<double>(a[i]) - static_cast<double>(b[i]);
    s += d * d;
  }
  return std::sqrt(s);
}

/// Simulated cost of one iteration's vector work: `n_kernels` streaming
/// kernels that together read/write `bytes` of device memory (axpy, scale,
/// the distance reduction). These are bandwidth-bound and identical across
/// SpMV formats, so they dilute — but never change the sign of — the
/// format speedups, exactly as on real hardware.
inline double aux_kernels_seconds(const vgpu::Device& dev, std::size_t bytes,
                                  int n_kernels) {
  const auto& s = dev.spec();
  return static_cast<double>(n_kernels) * s.host_launch_overhead_s +
         static_cast<double>(bytes) /
             (s.dram_bandwidth_gbs * 1e9 * s.dram_efficiency);
}

/// Plain power method: dominant eigenvector of the engine's matrix via
/// v <- A v / ||A v||_2, converged on the Euclidean distance between
/// successive normalised iterates (the same criterion PageRank/HITS use).
/// The checkpointed/resilient variant lives in apps/checkpoint.hpp.
template <class T>
AppResult<T> power_method(spmv::SpmvEngine<T>& engine,
                          const PowerIterConfig& cfg = {}) {
  const auto n = static_cast<std::size_t>(engine.rows());
  ACSR_CHECK_MSG(engine.rows() == engine.cols(),
                 "power method needs a square matrix");
  AppResult<T> res;
  std::vector<T> v(n, n == 0 ? T{0}
                             : static_cast<T>(1.0 / std::sqrt(
                                                  static_cast<double>(n))));
  const double spmv_s = cfg.device_loop ? 0.0 : engine.spmv_seconds();
  // Per iteration: SpMV, then the norm reduction + scale (2 passes over
  // ~3n values) and the distance reduction.
  const double aux_s =
      aux_kernels_seconds(engine.device(), 5 * n * sizeof(T), 3);
  std::vector<T> y;
  for (int k = 0; k < cfg.max_iters; ++k) {
    const double t = cfg.device_loop ? engine.simulate(v, y)
                                     : (engine.apply(v, y), spmv_s);
    double norm = 0.0;
    for (const T& x : y)
      norm += static_cast<double>(x) * static_cast<double>(x);
    norm = std::sqrt(norm);
    if (norm == 0.0) break;  // matrix annihilated the iterate
    for (auto& x : y) x = static_cast<T>(static_cast<double>(x) / norm);
    res.iterations = k + 1;
    res.total_s += t + aux_s;
    res.spmv_s += t;
    const double dist = euclidean_distance(y, v);
    v.swap(y);
    if (dist < cfg.epsilon) {
      res.converged = true;
      break;
    }
  }
  res.scores = std::move(v);
  return res;
}

}  // namespace acsr::apps
