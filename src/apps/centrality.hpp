// Further SpMV-powered graph analytics beyond the paper's three: Katz
// centrality (a damped walk count — PageRank's cousin without the
// normalisation) and connected components via label propagation on the
// (min, x) tropical-ish semiring, both iterating one engine step per
// round. They demonstrate the paper's framing that graph operations reduce
// to sparse-matrix operations.
#pragma once

#include "apps/power_method.hpp"
#include "mat/csr.hpp"

namespace acsr::apps {

struct KatzConfig {
  /// Attenuation; must be below 1/lambda_max(A) for convergence. The
  /// default is conservative for row-substochastic operands.
  double alpha = 0.1;
  double beta = 1.0;  // base score
  PowerIterConfig iter;
};

/// Katz centrality: x = beta*1 + alpha A^T x, iterated to fixpoint.
/// `engine` holds A^T (in-edge accumulation), unnormalised.
template <class T>
AppResult<T> katz_centrality(spmv::SpmvEngine<T>& engine,
                             const KatzConfig& cfg = {}) {
  const auto n = static_cast<std::size_t>(engine.rows());
  ACSR_CHECK_MSG(engine.rows() == engine.cols(), "Katz needs square A");

  AppResult<T> res;
  std::vector<T> x(n, static_cast<T>(cfg.beta));
  const double spmv_s = engine.spmv_seconds();
  const double aux_s =
      aux_kernels_seconds(engine.device(), 5 * n * sizeof(T), 3);

  std::vector<T> y;
  for (int k = 0; k < cfg.iter.max_iters; ++k) {
    engine.apply(x, y);
    for (std::size_t i = 0; i < n; ++i)
      y[i] = static_cast<T>(cfg.beta) + static_cast<T>(cfg.alpha) * y[i];
    res.iterations = k + 1;
    res.total_s += spmv_s + aux_s;
    res.spmv_s += spmv_s;
    const double dist = euclidean_distance(y, x);
    x.swap(y);
    if (dist < cfg.iter.epsilon) {
      res.converged = true;
      break;
    }
  }
  res.scores = std::move(x);
  return res;
}

struct ComponentsResult {
  std::vector<mat::index_t> label;  // component id = smallest member vertex
  mat::index_t num_components = 0;
  int rounds = 0;
  double total_s = 0.0;  // simulated device time (one SpMV-shaped pass/round)
};

/// Connected components by label propagation over the *undirected* view of
/// the adjacency structure: each round every vertex takes the minimum
/// label among itself and its neighbours — an SpMV on the (min, select)
/// semiring, costed as one engine SpMV per round.
template <class T>
ComponentsResult connected_components(spmv::SpmvEngine<T>& engine,
                                      const mat::Csr<T>& adjacency) {
  ACSR_CHECK_MSG(adjacency.rows == adjacency.cols,
                 "components need a square adjacency matrix");
  const auto n = static_cast<std::size_t>(adjacency.rows);
  // Symmetrise the structure once (host-side, like the operand prep the
  // apps all do).
  const mat::Csr<T> at = adjacency.transpose();

  ComponentsResult res;
  res.label.resize(n);
  for (std::size_t v = 0; v < n; ++v)
    res.label[v] = static_cast<mat::index_t>(v);

  const double round_s =
      engine.spmv_seconds() +
      aux_kernels_seconds(engine.device(), 4 * n * sizeof(T), 2);

  bool changed = true;
  while (changed) {
    changed = false;
    ++res.rounds;
    res.total_s += round_s;
    auto relax = [&](const mat::Csr<T>& m) {
      for (mat::index_t u = 0; u < m.rows; ++u)
        for (mat::offset_t i = m.row_off[static_cast<std::size_t>(u)];
             i < m.row_off[static_cast<std::size_t>(u) + 1]; ++i) {
          const auto v = static_cast<std::size_t>(
              m.col_idx[static_cast<std::size_t>(i)]);
          const auto uu = static_cast<std::size_t>(u);
          if (res.label[v] < res.label[uu]) {
            res.label[uu] = res.label[v];
            changed = true;
          } else if (res.label[uu] < res.label[v]) {
            res.label[v] = res.label[uu];
            changed = true;
          }
        }
    };
    relax(adjacency);
    relax(at);
  }

  // Count distinct representative labels.
  std::vector<char> seen(n, 0);
  for (std::size_t v = 0; v < n; ++v) {
    // Path-compress to the representative (labels always point to a
    // smaller vertex, terminating at a fixpoint label[r] == r).
    mat::index_t r = res.label[v];
    while (res.label[static_cast<std::size_t>(r)] != r)
      r = res.label[static_cast<std::size_t>(r)];
    res.label[v] = r;
    if (!seen[static_cast<std::size_t>(r)]) {
      seen[static_cast<std::size_t>(r)] = 1;
      ++res.num_components;
    }
  }
  return res;
}

}  // namespace acsr::apps
