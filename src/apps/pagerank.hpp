// PageRank (Algorithm 5 of the paper): PR^{k+1} = (1-d) PR^0 + d (A^T PR^k)
// over the row-normalised adjacency matrix A, d = 0.85, Euclidean
// convergence with epsilon = 1e-6.
#pragma once

#include "apps/checkpoint.hpp"
#include "apps/power_method.hpp"
#include "mat/csr.hpp"
#include "prof/prof.hpp"

namespace acsr::apps {

struct PageRankConfig {
  double damping = 0.85;
  PowerIterConfig iter;
};

/// The matrix PageRank multiplies by: row-normalise the adjacency matrix,
/// then transpose (engines compute y = M x, and Algorithm 5 needs A^T PR).
template <class T>
mat::Csr<T> pagerank_matrix(const mat::Csr<T>& adjacency) {
  mat::Csr<T> a = adjacency;
  a.row_normalize();
  return a.transpose();
}

/// Run PageRank with `engine` holding pagerank_matrix(adjacency).
/// `warm_start` (dynamic graphs, section VII) seeds PR^0 of the iteration
/// with the previous epoch's converged vector instead of 1/n.
template <class T>
AppResult<T> pagerank(spmv::SpmvEngine<T>& engine, const PageRankConfig& cfg,
                      const std::vector<T>* warm_start = nullptr) {
  const auto n = static_cast<std::size_t>(engine.rows());
  ACSR_CHECK_MSG(engine.rows() == engine.cols(),
                 "PageRank needs a square matrix");
  const T base = static_cast<T>((1.0 - cfg.damping) /
                                static_cast<double>(n));

  AppResult<T> res;
  std::vector<T> pr(n, static_cast<T>(1.0 / static_cast<double>(n)));
  if (warm_start != nullptr) {
    ACSR_CHECK(warm_start->size() == n);
    pr = *warm_start;
  }

  const double spmv_s = cfg.iter.device_loop ? 0.0 : engine.spmv_seconds();
  // Per iteration: SpMV, then axpy (read y + write pr: 2n values), then
  // the distance reduction (read 2 vectors): 3 aux kernels moving ~5n.
  const double aux_s =
      aux_kernels_seconds(engine.device(), 5 * n * sizeof(T), 3);

  std::vector<T> y;
  for (int k = 0; k < cfg.iter.max_iters; ++k) {
    // device_loop (PowerIterConfig): per-iteration simulate() instead of
    // apply() + one analytic charge — the memo-accelerated path.
    const double t = cfg.iter.device_loop ? engine.simulate(pr, y)
                                          : (engine.apply(pr, y), spmv_s);
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      y[i] = base + static_cast<T>(cfg.damping) * y[i];
      sum += static_cast<double>(y[i]);
    }
    // L1-normalise: a no-op for a properly stochastic matrix (modulo
    // dangling-node leak) and the standard guard that keeps the power
    // method convergent when dynamic updates perturb stochasticity.
    if (sum > 0.0)
      for (std::size_t i = 0; i < n; ++i)
        y[i] = static_cast<T>(static_cast<double>(y[i]) / sum);
    res.iterations = k + 1;
    res.total_s += t + aux_s;
    res.spmv_s += t;
    prof::phase_marker("app", "pagerank:iteration", t + aux_s);
    const double dist = euclidean_distance(y, pr);
    pr.swap(y);
    if (dist < cfg.iter.epsilon) {
      res.converged = true;
      break;
    }
  }
  res.scores = std::move(pr);
  return res;
}

/// Checkpointed PageRank over a resilient engine (docs/RESILIENCE.md).
///
/// Differences from pagerank(): every SpMV runs through the *device* path
/// (ResilientEngine::simulate) so injected faults strike mid-run; the PR
/// vector is checkpointed every `ck.interval` committed iterations; and
/// the solver restarts from the last checkpoint when a typed fault escapes
/// the driver, when an SpMV spanned a device failover, or when the
/// stochastic-mass guard flags the iterate (sum(PR') must stay in
/// (0, 1 + eps] for a damped row-stochastic matrix — the net that catches
/// silent corruption). Converges to the same ranks as a fault-free run:
/// restarted iterations recompute bit-identical values.
template <class T>
AppResult<T> pagerank_checkpointed(core::ResilientEngine<T>& engine,
                                   const PageRankConfig& cfg,
                                   const CheckpointConfig& ck = {}) {
  const auto n = static_cast<std::size_t>(engine.rows());
  ACSR_CHECK_MSG(engine.rows() == engine.cols(),
                 "PageRank needs a square matrix");
  const T base =
      static_cast<T>((1.0 - cfg.damping) / static_cast<double>(n));

  AppResult<T> res;
  std::vector<T> pr(n, static_cast<T>(1.0 / static_cast<double>(n)));
  const double aux_s =
      aux_kernels_seconds(engine.device(), 5 * n * sizeof(T), 3);
  Checkpointer<T, std::vector<T>> ckpt(engine, ck, pr);

  std::vector<T> y;
  int k = 0;
  while (k < cfg.iter.max_iters) {
    const int failovers_before = engine.failovers();
    const int fallbacks_before = engine.fallbacks();
    double t;
    try {
      t = engine.simulate(pr, y);
    } catch (const vgpu::DeviceFault& e) {
      k = ckpt.restart(std::string("device fault: ") + e.what(), &pr);
      continue;
    }
    res.total_s += t + aux_s;  // wasted attempts still cost real time
    res.spmv_s += t;
    prof::phase_marker("app", "pagerank:iteration", t + aux_s);
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      y[i] = base + static_cast<T>(cfg.damping) * y[i];
      sum += static_cast<double>(y[i]);
    }
    // Mass guard: (1-d) + d * ||A^T PR||_1 <= 1 for a damped
    // row-stochastic matrix, and strictly positive. Violations mean the
    // device-resident matrix no longer matches host truth.
    if (!all_finite(y) || sum <= 0.0 || sum > 1.0 + 1e-6) {
      engine.scrub();  // refresh device copies from host data
      k = ckpt.restart("stochastic-mass guard tripped", &pr);
      continue;
    }
    if (engine.failovers() != failovers_before) {
      // The SpMV overlapped a whole-device loss; the driver failed over
      // and re-ran it, but the conservative protocol re-validates from
      // the last consistent checkpoint.
      k = ckpt.restart("spmv spanned device failover", &pr);
      continue;
    }
    if (engine.fallbacks() != fallbacks_before) {
      // Same conservatism for format degradation (e.g. OOM pushing the
      // solve onto the out-of-core rung): re-validate from the last
      // checkpoint so the remaining iterations run coherently on the
      // format that will finish the solve.
      k = ckpt.restart("spmv spanned format fallback to " +
                           engine.active_format(),
                       &pr);
      continue;
    }
    for (std::size_t i = 0; i < n; ++i)
      y[i] = static_cast<T>(static_cast<double>(y[i]) / sum);
    res.iterations = k + 1;
    const double dist = euclidean_distance(y, pr);
    pr.swap(y);
    if (dist < cfg.iter.epsilon) {
      res.converged = true;
      break;
    }
    ckpt.maybe_checkpoint(k, pr);
    ++k;
  }
  res.scores = std::move(pr);
  return res;
}

}  // namespace acsr::apps
