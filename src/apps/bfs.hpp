// Linear-algebra BFS (GraphBLAS-style): level-synchronous breadth-first
// search expressed as repeated SpMV of the transposed adjacency matrix
// with the frontier indicator vector — the paper's thesis applied beyond
// ranking ("many common operations on graph data structures are expressed
// using sparse-matrix operations", section I).
#pragma once

#include "apps/power_method.hpp"
#include "mat/csr.hpp"
#include "prof/prof.hpp"

namespace acsr::apps {

template <class T>
struct BfsResult {
  /// level[v] = hops from the source; -1 if unreachable.
  std::vector<int> level;
  int depth = 0;           // deepest reached level
  std::size_t visited = 0; // reachable vertices (incl. source)
  /// Simulated device time: one SpMV + frontier update per level.
  double total_s = 0.0;
};

/// `engine` must hold the *transposed* adjacency (y = A^T x accumulates
/// into a vertex from its in-edges; BFS needs out-edge expansion, i.e.
/// x^T A, which is A^T x).
template <class T>
BfsResult<T> bfs(spmv::SpmvEngine<T>& engine, mat::index_t source) {
  const auto n = static_cast<std::size_t>(engine.rows());
  ACSR_CHECK_MSG(engine.rows() == engine.cols(),
                 "BFS needs a square adjacency matrix");
  ACSR_CHECK(source >= 0 && static_cast<std::size_t>(source) < n);

  BfsResult<T> res;
  res.level.assign(n, -1);
  res.level[static_cast<std::size_t>(source)] = 0;
  res.visited = 1;

  std::vector<T> frontier(n, T{0});
  frontier[static_cast<std::size_t>(source)] = T{1};

  const double spmv_s = engine.spmv_seconds();
  const double aux_s =
      aux_kernels_seconds(engine.device(), 4 * n * sizeof(T), 2);

  std::vector<T> reached;
  for (int depth = 1; static_cast<std::size_t>(depth) <= n; ++depth) {
    engine.apply(frontier, reached);
    res.total_s += spmv_s + aux_s;
    prof::phase_marker("app", "bfs:level", spmv_s + aux_s);
    bool any = false;
    std::fill(frontier.begin(), frontier.end(), T{0});
    for (std::size_t v = 0; v < n; ++v) {
      if (reached[v] != T{0} && res.level[v] < 0) {
        res.level[v] = depth;
        frontier[v] = T{1};
        ++res.visited;
        any = true;
      }
    }
    if (!any) break;
    res.depth = depth;
  }
  return res;
}

}  // namespace acsr::apps
