#include "graph/rmat.hpp"

#include <cmath>

#include "common/check.hpp"

namespace acsr::graph {

mat::Coo<double> rmat(const RmatParams& p) {
  ACSR_REQUIRE(p.scale >= 1 && p.scale <= 28, "rmat scale out of range");
  const double psum = p.a + p.b + p.c + p.d;
  ACSR_REQUIRE(std::abs(psum - 1.0) < 1e-9,
               "rmat probabilities must sum to 1, got " << psum);

  const auto n = mat::index_t{1} << p.scale;
  const auto edges = static_cast<std::uint64_t>(
      p.edges_per_vertex * static_cast<double>(n));

  Rng rng(p.seed);
  mat::Coo<double> m;
  m.rows = n;
  m.cols = n;
  m.reserve(edges);

  for (std::uint64_t e = 0; e < edges; ++e) {
    mat::index_t r = 0, c = 0;
    for (int level = 0; level < p.scale; ++level) {
      // Slightly perturb quadrant probabilities per level, as in the
      // reference implementation, to avoid exact self-similarity artifacts.
      const double noise = 0.05 * (rng.next_double() - 0.5);
      const double aa = p.a + noise;
      const double u = rng.next_double();
      r <<= 1;
      c <<= 1;
      if (u < aa) {
        // top-left
      } else if (u < aa + p.b) {
        c |= 1;
      } else if (u < aa + p.b + p.c) {
        r |= 1;
      } else {
        r |= 1;
        c |= 1;
      }
    }
    m.push(r, c, 1.0);
  }

  m.sort();
  if (p.remove_duplicates) m.sum_duplicates();
  // Collapse duplicate weights back to 1 (simple adjacency semantics).
  for (auto& v : m.vals) v = 1.0;
  return m;
}

}  // namespace acsr::graph
