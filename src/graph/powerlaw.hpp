// Targeted power-law matrix generator.
//
// Instead of tuning R-MAT until the marginals match, this generator samples
// a row-degree sequence directly (Pareto for power-law matrices, uniform
// for the paper's non-power-law contrast matrices), rescales it to the nnz
// target, injects explicit long-tail rows, and then draws columns from a
// hub-biased mixture so that x-vector accesses show the temporal locality
// real web/social matrices have. This gives direct control over the
// (mu, sigma, max) triple that Table I reports and that drives every ACSR
// mechanism.
#pragma once

#include <cstdint>

#include "mat/csr.hpp"

namespace acsr::graph {

struct PowerLawSpec {
  mat::index_t rows = 0;
  mat::index_t cols = 0;
  double mean_nnz_per_row = 8.0;  // mu
  // Pareto shape for row degrees; alpha <= 0 selects the uniform
  // degree model (non-power-law matrices like AMZ/DBL/RAL).
  double alpha = 1.8;
  // Upper bound for row length; also the target for injected tail rows.
  mat::offset_t max_row_nnz = 1 << 12;
  // Number of rows forced to ~max_row_nnz (the visible long tail).
  int tail_rows = 3;
  // Fraction of column picks drawn from the Zipf-weighted hub set.
  double hub_fraction = 0.35;
  std::uint64_t seed = 1;
};

mat::Csr<double> powerlaw_matrix(const PowerLawSpec& spec);

}  // namespace acsr::graph
