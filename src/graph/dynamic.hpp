// Dynamic-graph update batches (paper section VII).
//
// An update selects a fraction of the rows; for each selected row it
// deletes some existing columns and inserts new ones with equal
// probability, keeping total nnz roughly constant. The batch is encoded
// CSR-style (sorted per-row delete and insert lists) — exactly what the
// paper's device-side update kernel consumes — and bytes() gives the size
// of the change list that must cross PCIe instead of the whole matrix.
#pragma once

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "mat/csr.hpp"

namespace acsr::graph {

template <class T>
struct UpdateBatch {
  std::vector<mat::index_t> rows;     // updated rows, ascending
  std::vector<mat::offset_t> del_off; // rows.size() + 1
  std::vector<mat::index_t> del_cols; // sorted within each row
  std::vector<mat::offset_t> ins_off; // rows.size() + 1
  std::vector<mat::index_t> ins_cols; // sorted within each row
  std::vector<T> ins_vals;

  std::size_t num_rows() const { return rows.size(); }
  std::size_t num_deletes() const { return del_cols.size(); }
  std::size_t num_inserts() const { return ins_cols.size(); }

  /// Host->device size of the change list.
  std::size_t bytes() const {
    return rows.size() * sizeof(mat::index_t) +
           (del_off.size() + ins_off.size()) * sizeof(mat::offset_t) +
           (del_cols.size() + ins_cols.size()) * sizeof(mat::index_t) +
           ins_vals.size() * sizeof(T);
  }

  void validate() const {
    ACSR_CHECK(del_off.size() == rows.size() + 1);
    ACSR_CHECK(ins_off.size() == rows.size() + 1);
    ACSR_CHECK(std::is_sorted(rows.begin(), rows.end()));
    ACSR_CHECK(del_off.back() == static_cast<mat::offset_t>(del_cols.size()));
    ACSR_CHECK(ins_off.back() == static_cast<mat::offset_t>(ins_cols.size()));
    ACSR_CHECK(ins_vals.size() == ins_cols.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      ACSR_CHECK(std::is_sorted(del_cols.begin() + del_off[i],
                                del_cols.begin() + del_off[i + 1]));
      ACSR_CHECK(std::is_sorted(ins_cols.begin() + ins_off[i],
                                ins_cols.begin() + ins_off[i + 1]));
    }
  }
};

struct UpdateParams {
  double row_fraction = 0.10;   // the paper updates 10% of rows
  double change_probability = 0.5;  // chance each scanned nonzero mutates
  std::uint64_t seed = 7;
};

/// Generate a batch against the current matrix. For each selected row we
/// scan its columns; a scanned column is, with change_probability, either
/// removed or answered with an insertion of a fresh random column (equal
/// odds), which keeps nnz approximately constant as in the paper.
template <class T>
UpdateBatch<T> generate_update(const mat::Csr<T>& a, const UpdateParams& p) {
  UpdateBatch<T> b;
  Rng rng(p.seed);
  const auto n_updated = static_cast<std::size_t>(
      p.row_fraction * static_cast<double>(a.rows));

  // Choose distinct rows, ascending.
  std::unordered_set<mat::index_t> chosen;
  while (chosen.size() < n_updated) {
    chosen.insert(static_cast<mat::index_t>(
        rng.next_below(static_cast<std::uint64_t>(a.rows))));
  }
  b.rows.assign(chosen.begin(), chosen.end());
  std::sort(b.rows.begin(), b.rows.end());

  b.del_off.push_back(0);
  b.ins_off.push_back(0);
  for (mat::index_t r : b.rows) {
    Rng rr = rng.split(static_cast<std::uint64_t>(r) + 1);
    std::vector<mat::index_t> dels;
    std::vector<mat::index_t> inss;
    std::unordered_set<mat::index_t> present;
    for (mat::offset_t i = a.row_off[static_cast<std::size_t>(r)];
         i < a.row_off[static_cast<std::size_t>(r) + 1]; ++i)
      present.insert(a.col_idx[static_cast<std::size_t>(i)]);

    for (mat::offset_t i = a.row_off[static_cast<std::size_t>(r)];
         i < a.row_off[static_cast<std::size_t>(r) + 1]; ++i) {
      if (!rr.next_bool(p.change_probability)) continue;
      const mat::index_t c = a.col_idx[static_cast<std::size_t>(i)];
      if (rr.next_bool(0.5)) {
        dels.push_back(c);
        present.erase(c);
      } else {
        // Insert a fresh column not currently in the row.
        for (int attempt = 0; attempt < 16; ++attempt) {
          const auto nc = static_cast<mat::index_t>(
              rr.next_below(static_cast<std::uint64_t>(a.cols)));
          if (present.insert(nc).second) {
            inss.push_back(nc);
            break;
          }
        }
      }
    }
    std::sort(dels.begin(), dels.end());
    dels.erase(std::unique(dels.begin(), dels.end()), dels.end());
    std::sort(inss.begin(), inss.end());
    inss.erase(std::unique(inss.begin(), inss.end()), inss.end());

    for (mat::index_t c : dels) b.del_cols.push_back(c);
    for (mat::index_t c : inss) {
      b.ins_cols.push_back(c);
      b.ins_vals.push_back(static_cast<T>(0.5 + 0.5 * rr.next_double()));
    }
    b.del_off.push_back(static_cast<mat::offset_t>(b.del_cols.size()));
    b.ins_off.push_back(static_cast<mat::offset_t>(b.ins_cols.size()));
  }
  b.validate();
  return b;
}

/// Host reference: apply the batch to a CSR matrix (rebuilds the arrays).
/// The device-side incremental kernel in core/ must produce a matrix with
/// identical logical content.
template <class T>
void apply_update_host(mat::Csr<T>& a, const UpdateBatch<T>& b) {
  mat::Csr<T> out;
  out.rows = a.rows;
  out.cols = a.cols;
  out.row_off.assign(static_cast<std::size_t>(a.rows) + 1, 0);

  std::size_t bi = 0;  // cursor into b.rows
  for (mat::index_t r = 0; r < a.rows; ++r) {
    const auto lo = a.row_off[static_cast<std::size_t>(r)];
    const auto hi = a.row_off[static_cast<std::size_t>(r) + 1];
    if (bi < b.rows.size() && b.rows[bi] == r) {
      const auto d0 = static_cast<std::size_t>(b.del_off[bi]);
      const auto d1 = static_cast<std::size_t>(b.del_off[bi + 1]);
      const auto i0 = static_cast<std::size_t>(b.ins_off[bi]);
      const auto i1 = static_cast<std::size_t>(b.ins_off[bi + 1]);
      // Merge: keep entries not in the delete list, then merge inserts.
      std::vector<std::pair<mat::index_t, T>> merged;
      for (mat::offset_t i = lo; i < hi; ++i) {
        const mat::index_t c = a.col_idx[static_cast<std::size_t>(i)];
        const bool deleted = std::binary_search(
            b.del_cols.begin() + static_cast<std::ptrdiff_t>(d0),
            b.del_cols.begin() + static_cast<std::ptrdiff_t>(d1), c);
        if (!deleted)
          merged.emplace_back(c, a.vals[static_cast<std::size_t>(i)]);
      }
      for (std::size_t i = i0; i < i1; ++i)
        merged.emplace_back(b.ins_cols[i], b.ins_vals[i]);
      std::sort(merged.begin(), merged.end(),
                [](const auto& x, const auto& y) { return x.first < y.first; });
      for (const auto& [c, v] : merged) {
        out.col_idx.push_back(c);
        out.vals.push_back(v);
      }
      ++bi;
    } else {
      for (mat::offset_t i = lo; i < hi; ++i) {
        out.col_idx.push_back(a.col_idx[static_cast<std::size_t>(i)]);
        out.vals.push_back(a.vals[static_cast<std::size_t>(i)]);
      }
    }
    out.row_off[static_cast<std::size_t>(r) + 1] =
        static_cast<mat::offset_t>(out.col_idx.size());
  }
  out.validate();
  a = std::move(out);
}

}  // namespace acsr::graph
