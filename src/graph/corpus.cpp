#include "graph/corpus.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/cli.hpp"
#include "graph/powerlaw.hpp"

namespace acsr::graph {

using mat::index_t;
using mat::offset_t;

const std::vector<CorpusEntry>& table1_corpus() {
  // {name, abbrev, rows, cols, mu, sigma, max, alpha, hub_fraction, pl}
  static const std::vector<CorpusEntry> corpus = {
      {"amazon-2008", "AMZ", 735323, 735323, 7.7, 4.7, 10, -1.0, 0.15, false},
      {"cnr-2000", "CNR", 845279, 845279, 10.2, 7.8, 2216, 1.9, 0.30, true},
      {"dblp-2010", "DBL", 326186, 326186, 5.8, 5.3, 238, 2.2, 0.20, true},
      {"enron", "ENR", 69244, 69244, 4.7, 28.0, 1392, 1.45, 0.35, true},
      {"eu-2005", "EU2", 862664, 862664, 22.7, 29.0, 6985, 1.8, 0.30, true},
      {"flickr", "FLI", 1846198, 1846198, 12.0, 101.0, 2615, 1.55, 0.40, true},
      {"hollywood-2009", "HOL", 1139905, 1139905, 100.0, 272.0, 11468, 1.7,
       0.35, true},
      {"in-2004", "IN2", 1382908, 1382908, 12.0, 37.0, 7753, 1.8, 0.30, true},
      {"indochina-2004", "IND", 7414866, 7414866, 26.0, 216.0, 6985, 1.65,
       0.35, true},
      {"internet", "INT", 65550, 65550, 2.7, 24.0, 693, 1.4, 0.35, true},
      {"livejournal", "LIV", 4847571, 4847571, 13.0, 22.0, 9186, 1.75, 0.35,
       true},
      {"ljournal-2008", "LJ2", 5363260, 5363260, 15.0, 37.0, 2469, 1.8, 0.35,
       true},
      {"uk-2002", "UK2", 18520486, 18520486, 16.0, 27.0, 2450, 1.85, 0.30,
       true},
      {"wikipedia", "WIK", 1315907, 1315907, 15.4, 42.0, 20975, 1.55, 0.40,
       true},
      {"youtube", "YOT", 1157828, 1157828, 4.7, 48.0, 2894, 1.5, 0.40, true},
      {"webbase-1M", "WEB", 1000005, 1000005, 3.1, 25.0, 4700, 1.35, 0.30,
       true},
      // Rectangular LP-style matrix; wide dense-ish rows, not power-law.
      {"rail4284", "RAL", 4284, 1096894, 2633.0, 2409.0, 56181, -1.0, 0.10,
       false},
  };
  return corpus;
}

const CorpusEntry& corpus_entry(const std::string& abbrev) {
  for (const auto& e : table1_corpus())
    if (e.abbrev == abbrev || e.name == abbrev) return e;
  ACSR_REQUIRE(false, "unknown corpus matrix '" << abbrev << "'");
}

long long default_scale() {
  // Read once per process (the cached-gate pattern acsr_audit enforces):
  // the scale is fixed for a bench/tool run, never toggled mid-process.
  static const long long s = env_int("ACSR_SCALE", 64);
  ACSR_REQUIRE(s >= 1, "ACSR_SCALE must be >= 1");
  return s;
}

mat::Csr<double> build_matrix(const CorpusEntry& e, long long scale,
                              std::uint64_t seed) {
  ACSR_REQUIRE(scale >= 1, "scale must be >= 1");
  PowerLawSpec s;
  s.rows = static_cast<index_t>(
      std::max<long long>(64, e.paper_rows / scale));
  s.cols = static_cast<index_t>(
      std::max<long long>(64, e.paper_cols / scale));
  s.mean_nnz_per_row = e.paper_mu;
  s.alpha = e.alpha;
  s.hub_fraction = e.hub_fraction;
  // Long tail shrinks with cbrt(scale): stays >> mu at every scale.
  const double max_scaled =
      static_cast<double>(e.paper_max) / std::cbrt(static_cast<double>(scale));
  s.max_row_nnz = static_cast<offset_t>(std::max(
      8.0, std::min(max_scaled, 0.8 * static_cast<double>(s.cols))));
  s.tail_rows = e.power_law ? 3 : 0;
  // Per-matrix seed so the corpus is deterministic yet decorrelated.
  std::uint64_t h = seed;
  for (char c : e.abbrev) h = h * 1099511628211ULL + static_cast<std::uint64_t>(c);
  s.seed = h;
  return powerlaw_matrix(s);
}

}  // namespace acsr::graph
