// The Table-I evaluation corpus.
//
// Each entry records the paper-scale characteristics (rows, cols, mu, max
// row length, power-law or not) of one UF Sparse Matrix Collection matrix
// and the generator parameters that reproduce its row-length shape
// synthetically. build_matrix() constructs the matrix at a reduced scale
// (default ACSR_SCALE = 64): rows and nnz shrink by `scale`, mu is
// preserved, and the max row length shrinks by cbrt(scale) so the long
// tail stays much longer than the mean — the property ACSR exploits.
//
// Where the paper's Table I is internally inconsistent (OCR noise in the
// source text), we honour rows and mu and derive nnz = mu * rows; the
// deviations are recorded in EXPERIMENTS.md.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mat/csr.hpp"

namespace acsr::graph {

struct CorpusEntry {
  std::string name;    // UF collection name
  std::string abbrev;  // the paper's abbreviation
  // Paper-scale characteristics (Table I).
  mat::index_t paper_rows;
  mat::index_t paper_cols;
  double paper_mu;
  double paper_sigma;
  mat::offset_t paper_max;
  // Generator shape parameters.
  double alpha;         // <= 0 selects the uniform (non-power-law) model
  double hub_fraction;
  bool power_law;
};

/// All 17 matrices of Table I, in paper order.
const std::vector<CorpusEntry>& table1_corpus();

/// Look up by abbreviation (AMZ, CNR, ... RAL); throws InputError if absent.
const CorpusEntry& corpus_entry(const std::string& abbrev);

/// Build the synthetic stand-in at 1/scale of paper size.
mat::Csr<double> build_matrix(const CorpusEntry& e, long long scale,
                              std::uint64_t seed = 42);

/// Default scale: the ACSR_SCALE environment variable, else 64.
long long default_scale();

}  // namespace acsr::graph
