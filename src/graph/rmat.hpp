// Classic R-MAT (Chakrabarti et al.) recursive edge generator. Produces
// the skewed, community-structured adjacency matrices typical of web and
// social graphs; used by examples and property tests.
#pragma once

#include "common/rng.hpp"
#include "mat/coo.hpp"

namespace acsr::graph {

struct RmatParams {
  int scale = 12;                 // 2^scale vertices
  double edges_per_vertex = 8.0;  // average degree
  // Partition probabilities; a + b + c + d = 1. The canonical skewed
  // setting (.57,.19,.19,.05) yields power-law-ish degrees.
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;
  double d = 0.05;
  std::uint64_t seed = 1;
  bool remove_duplicates = true;
};

/// Generate the adjacency matrix of an R-MAT graph (values all 1.0).
mat::Coo<double> rmat(const RmatParams& p);

}  // namespace acsr::graph
