#include "graph/powerlaw.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <unordered_set>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace acsr::graph {

using mat::index_t;
using mat::offset_t;

namespace {

/// Mean of a continuous Pareto(xmin = 1, alpha) truncated at M.
double truncated_pareto_mean(double alpha, double M) {
  if (std::abs(alpha - 1.0) < 1e-9)
    return std::log(M) / (1.0 - 1.0 / M);
  return alpha / (alpha - 1.0) * (1.0 - std::pow(M, 1.0 - alpha)) /
         (1.0 - std::pow(M, -alpha));
}

/// Shape parameter whose truncated-Pareto mean equals `target` (the mean
/// is strictly decreasing in alpha). Returns nullopt when the target
/// exceeds what xmin = 1 can reach even at the heaviest admissible tail —
/// the caller then falls back to rescaled sampling.
std::optional<double> alpha_for_mean(double target, double M) {
  double lo = 1.02, hi = 8.0;
  if (target > truncated_pareto_mean(lo, M)) return std::nullopt;
  if (target < truncated_pareto_mean(hi, M)) return hi;
  for (int it = 0; it < 60; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (truncated_pareto_mean(mid, M) > target)
      lo = mid;
    else
      hi = mid;
  }
  return 0.5 * (lo + hi);
}

/// Cumulative Zipf weights over the hub column set (hub h has weight
/// 1/(h+1)); sampled by binary search.
std::vector<double> zipf_cdf(index_t hubs) {
  std::vector<double> cdf(static_cast<std::size_t>(hubs));
  double acc = 0.0;
  for (index_t h = 0; h < hubs; ++h) {
    acc += 1.0 / static_cast<double>(h + 1);
    cdf[static_cast<std::size_t>(h)] = acc;
  }
  for (auto& v : cdf) v /= acc;
  return cdf;
}

}  // namespace

mat::Csr<double> powerlaw_matrix(const PowerLawSpec& spec) {
  ACSR_REQUIRE(spec.rows > 0 && spec.cols > 0, "empty matrix spec");
  ACSR_REQUIRE(spec.mean_nnz_per_row > 0, "mean_nnz_per_row must be > 0");

  Rng rng(spec.seed);
  const auto rows = static_cast<std::size_t>(spec.rows);
  const offset_t max_deg =
      std::min<offset_t>(spec.max_row_nnz, spec.cols);

  // 1. Raw degree sequence. Prefer an xmin = 1 truncated Pareto whose
  // shape is solved to hit the target mean directly — this keeps the
  // heavy concentration of 1-2 nnz rows that Fig. 3 shows (a rescaled
  // sample would shift the whole head up). Means beyond what xmin = 1 can
  // reach (e.g. HOL's mu = 100) fall back to the requested alpha plus the
  // rescale in step 2.
  std::vector<double> raw(rows);
  if (spec.alpha > 0.0) {
    const double sample_alpha =
        alpha_for_mean(spec.mean_nnz_per_row, static_cast<double>(max_deg))
            .value_or(spec.alpha);
    for (auto& d : raw) {
      const double u = std::max(rng.next_double(), 1e-12);
      d = std::pow(u, -1.0 / sample_alpha);  // Pareto(xmin=1, alpha)
      d = std::min(d, static_cast<double>(max_deg));
    }
  } else {
    // Uniform model: degrees spread evenly around the mean.
    const double hi = std::min(2.0 * spec.mean_nnz_per_row - 1.0,
                               static_cast<double>(max_deg));
    const double lo = std::max(1.0, 2.0 * spec.mean_nnz_per_row - hi);
    for (auto& d : raw) d = rng.next_double(lo, hi + 1.0);
  }

  // 2. Rescale to the nnz target, then clamp.
  const double target_nnz =
      spec.mean_nnz_per_row * static_cast<double>(spec.rows);
  double raw_sum = 0.0;
  for (double d : raw) raw_sum += d;
  const double k = target_nnz / raw_sum;
  std::vector<offset_t> deg(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    deg[r] = static_cast<offset_t>(std::llround(raw[r] * k));
    deg[r] = std::clamp<offset_t>(deg[r], 0, max_deg);
  }

  // 3. Inject the explicit long tail (Fig. 3's right side).
  if (spec.alpha > 0.0) {
    for (int t = 0; t < spec.tail_rows && static_cast<std::size_t>(t) < rows;
         ++t) {
      const auto r = static_cast<std::size_t>(
          rng.next_below(static_cast<std::uint64_t>(rows)));
      const double shrink = 1.0 / static_cast<double>(1 + t);
      deg[r] = std::max<offset_t>(
          deg[r], static_cast<offset_t>(
                      static_cast<double>(max_deg) * shrink));
    }
  }

  // 4. Columns: Zipf-weighted hubs + uniform background, deduplicated.
  const index_t hubs = std::max<index_t>(
      16, static_cast<index_t>(std::sqrt(static_cast<double>(spec.cols))));
  const std::vector<double> cdf = zipf_cdf(std::min(hubs, spec.cols));

  mat::Csr<double> m;
  m.rows = spec.rows;
  m.cols = spec.cols;
  m.row_off.assign(rows + 1, 0);

  std::vector<index_t> row_cols;
  std::unordered_set<index_t> seen;
  for (std::size_t r = 0; r < rows; ++r) {
    Rng rr = rng.split(static_cast<std::uint64_t>(r) + 1);
    const offset_t d = deg[r];
    row_cols.clear();
    seen.clear();
    // Dense rows: sampling distinct columns by rejection degrades near
    // full density, so cap attempts and accept slightly fewer entries.
    const int max_attempts = 8;
    for (offset_t j = 0; j < d; ++j) {
      index_t c = 0;
      bool ok = false;
      for (int a = 0; a < max_attempts && !ok; ++a) {
        if (rr.next_double() < spec.hub_fraction) {
          const double u = rr.next_double();
          const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
          c = static_cast<index_t>(it - cdf.begin());
        } else {
          c = static_cast<index_t>(
              rr.next_below(static_cast<std::uint64_t>(spec.cols)));
        }
        ok = seen.insert(c).second;
      }
      if (ok) row_cols.push_back(c);
    }
    std::sort(row_cols.begin(), row_cols.end());
    for (index_t c : row_cols) {
      m.col_idx.push_back(c);
      // Values in (0, 1]: nonzero so tests can detect dropped entries.
      m.vals.push_back(0.5 + 0.5 * rr.next_double());
    }
    m.row_off[r + 1] = static_cast<offset_t>(m.col_idx.size());
  }
  m.validate();
  return m;
}

}  // namespace acsr::graph
