// Column-major dense vector block: the right-hand side of batched SpMM
// (Y = A X with X holding k query vectors side by side).
//
// Storage is column-major with a row-padded leading dimension: each
// column starts on a 32-element boundary, so on the device every column
// begins sector-aligned and a warp's unit-stride sweep of one column is
// perfectly coalesced — the layout Yang/Buluç/Owens pick for the dense
// operand of column-blocked SpMM. The padding rows are kept zero so a
// whole block can be shipped to the device as one contiguous upload.
#pragma once

#include <cstddef>
#include <vector>

#include "common/check.hpp"
#include "mat/csr.hpp"

namespace acsr::mat {

template <class T>
struct DenseBlock {
  index_t rows = 0;   ///< logical rows per column (vector length)
  int width = 0;      ///< number of columns (batch width k)
  index_t ld = 0;     ///< leading dimension: rows padded to a multiple of 32
  /// Column-major payload, ld * width elements; element (r, c) lives at
  /// data[c*ld + r]. Padding rows [rows, ld) stay zero.
  std::vector<T> data;

  DenseBlock() = default;
  DenseBlock(index_t n_rows, int n_cols) { resize(n_rows, n_cols); }

  /// Sector-aligned leading dimension (32 elements covers both the 32 B
  /// sector at float and the warp width at double).
  static index_t padded_ld(index_t n_rows) {
    return ((n_rows + 31) / 32) * 32;
  }

  /// Zero-filled resize; previous contents are discarded.
  void resize(index_t n_rows, int n_cols) {
    ACSR_CHECK(n_rows >= 0 && n_cols >= 0);
    rows = n_rows;
    width = n_cols;
    ld = padded_ld(n_rows);
    data.assign(static_cast<std::size_t>(ld) *
                    static_cast<std::size_t>(width),
                T{0});
  }

  T& at(index_t r, int c) {
    return data[static_cast<std::size_t>(c) * static_cast<std::size_t>(ld) +
                static_cast<std::size_t>(r)];
  }
  const T& at(index_t r, int c) const {
    return data[static_cast<std::size_t>(c) * static_cast<std::size_t>(ld) +
                static_cast<std::size_t>(r)];
  }

  void set_column(int c, const std::vector<T>& v) {
    ACSR_CHECK(c >= 0 && c < width);
    ACSR_CHECK(static_cast<index_t>(v.size()) == rows);
    for (index_t r = 0; r < rows; ++r) at(r, c) = v[static_cast<std::size_t>(r)];
  }

  std::vector<T> column(int c) const {
    ACSR_CHECK(c >= 0 && c < width);
    std::vector<T> v(static_cast<std::size_t>(rows));
    for (index_t r = 0; r < rows; ++r) v[static_cast<std::size_t>(r)] = at(r, c);
    return v;
  }

  static DenseBlock from_columns(index_t n_rows,
                                 const std::vector<std::vector<T>>& cols) {
    DenseBlock b(n_rows, static_cast<int>(cols.size()));
    for (int c = 0; c < b.width; ++c) b.set_column(c, cols[static_cast<std::size_t>(c)]);
    return b;
  }

  std::size_t bytes() const { return data.size() * sizeof(T); }
};

}  // namespace acsr::mat
