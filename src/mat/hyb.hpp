// HYB = ELL + COO hybrid (Bell & Garland): rows are stored in a dense
// rows x k ELL slab; entries beyond the k-th of any row overflow into a
// COO tail processed with atomics / segmented reduction.
#pragma once

#include <vector>

#include "common/check.hpp"
#include "mat/coo.hpp"
#include "mat/csr.hpp"
#include "mat/ell.hpp"
#include "vgpu/host_model.hpp"

namespace acsr::mat {

template <class T>
struct Hyb {
  Ell<T> ell;
  Coo<T> coo;

  index_t rows() const { return ell.rows; }
  index_t cols() const { return ell.cols; }
  offset_t nnz() const { return ell.nnz() + coo.nnz(); }
  std::size_t bytes() const {
    return ell.bytes() + coo.vals.size() * (sizeof(T) + 2 * sizeof(index_t));
  }

  double padding_ratio() const {
    const double total =
        static_cast<double>(ell.slots()) + static_cast<double>(coo.nnz());
    return total == 0.0 ? 0.0
                        : static_cast<double>(ell.slots() - static_cast<std::size_t>(ell.nnz())) / total;
  }

  /// The CUSP heuristic the paper cites: pick k as the largest width such
  /// that at least R = max(breakeven, rows/3) rows have >= k non-zeros.
  /// `breakeven` is 4096 on real hardware; benches scale it together with
  /// the corpus.
  static index_t choose_k(const Csr<T>& a, index_t breakeven = 4096) {
    if (a.rows == 0) return 0;
    offset_t max_nnz = 0;
    for (index_t r = 0; r < a.rows; ++r)
      max_nnz = std::max(max_nnz, a.row_nnz(r));
    // count[k] = number of rows with nnz >= k, via a suffix sum.
    std::vector<offset_t> hist(static_cast<std::size_t>(max_nnz) + 2, 0);
    for (index_t r = 0; r < a.rows; ++r)
      ++hist[static_cast<std::size_t>(a.row_nnz(r))];
    offset_t at_least = 0;
    const offset_t threshold =
        std::max<offset_t>(breakeven, a.rows / 3);
    index_t k = 0;
    for (offset_t w = max_nnz; w >= 1; --w) {
      at_least += hist[static_cast<std::size_t>(w)];
      if (at_least >= threshold) {
        k = static_cast<index_t>(w);
        break;
      }
    }
    // All rows shorter than the threshold population: store everything in
    // the ELL part (k = max width), as CUSP does for small matrices.
    if (k == 0) k = static_cast<index_t>(max_nnz);
    return k;
  }

  static Hyb from_csr(const Csr<T>& a, vgpu::HostModel* hm = nullptr,
                      index_t breakeven = 4096) {
    Hyb h;
    const index_t k = choose_k(a, breakeven);
    h.ell = Ell<T>::from_csr_with_width(a, k, hm);
    h.coo.rows = a.rows;
    h.coo.cols = a.cols;
    for (index_t r = 0; r < a.rows; ++r) {
      const offset_t base = a.row_off[static_cast<std::size_t>(r)];
      const offset_t n = a.row_nnz(r);
      for (offset_t j = k; j < n; ++j)
        h.coo.push(r, a.col_idx[static_cast<std::size_t>(base + j)],
                   a.vals[static_cast<std::size_t>(base + j)]);
    }
    // CUSP's conversion runs several full passes beyond the slab fill:
    // row-length histogram, the k search, exclusive scans for the COO
    // tail, and the tail gather.
    if (hm != nullptr)
      hm->charge_ops(4.0 * static_cast<double>(h.coo.nnz()) +
                     0.5 * static_cast<double>(a.nnz()) +
                     2.0 * static_cast<double>(a.rows));
    return h;
  }

  void spmv(const std::vector<T>& x, std::vector<T>& y) const {
    ell.spmv(x, y);
    for (std::size_t i = 0; i < coo.vals.size(); ++i)
      y[static_cast<std::size_t>(coo.row_idx[i])] +=
          coo.vals[i] * x[static_cast<std::size_t>(coo.col_idx[i])];
  }
};

}  // namespace acsr::mat
