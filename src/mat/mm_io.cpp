#include "mat/mm_io.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "common/check.hpp"

namespace acsr::mat {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

}  // namespace

Coo<double> read_matrix_market(std::istream& in) {
  std::string line;
  ACSR_REQUIRE(std::getline(in, line), "empty Matrix Market stream");

  std::istringstream header(line);
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  ACSR_REQUIRE(banner == "%%MatrixMarket", "missing %%MatrixMarket banner");
  ACSR_REQUIRE(lower(object) == "matrix", "unsupported object: " << object);
  ACSR_REQUIRE(lower(format) == "coordinate",
               "only coordinate format supported, got " << format);
  field = lower(field);
  symmetry = lower(symmetry);
  ACSR_REQUIRE(field == "real" || field == "integer" || field == "pattern",
               "unsupported field type: " << field);
  ACSR_REQUIRE(symmetry == "general" || symmetry == "symmetric",
               "unsupported symmetry: " << symmetry);

  // Skip comment lines.
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream dims(line);
  long long rows = 0, cols = 0, entries = 0;
  dims >> rows >> cols >> entries;
  ACSR_REQUIRE(rows > 0 && cols > 0 && entries >= 0,
               "bad dimensions line: " << line);

  Coo<double> m;
  m.rows = static_cast<index_t>(rows);
  m.cols = static_cast<index_t>(cols);
  m.reserve(static_cast<std::size_t>(entries) *
            (symmetry == "symmetric" ? 2 : 1));

  for (long long e = 0; e < entries; ++e) {
    ACSR_REQUIRE(std::getline(in, line),
                 "truncated file: expected " << entries << " entries, got "
                                             << e);
    std::istringstream es(line);
    long long r = 0, c = 0;
    double v = 1.0;
    es >> r >> c;
    if (field != "pattern") es >> v;
    ACSR_REQUIRE(r >= 1 && r <= rows && c >= 1 && c <= cols,
                 "entry out of range: " << line);
    m.push(static_cast<index_t>(r - 1), static_cast<index_t>(c - 1), v);
    if (symmetry == "symmetric" && r != c)
      m.push(static_cast<index_t>(c - 1), static_cast<index_t>(r - 1), v);
  }
  m.sort();
  m.sum_duplicates();
  return m;
}

Coo<double> read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  ACSR_REQUIRE(in.good(), "cannot open " << path);
  return read_matrix_market(in);
}

void write_matrix_market(const Coo<double>& m, std::ostream& out) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << m.rows << ' ' << m.cols << ' ' << m.nnz() << '\n';
  for (std::size_t i = 0; i < m.vals.size(); ++i)
    out << (m.row_idx[i] + 1) << ' ' << (m.col_idx[i] + 1) << ' '
        << m.vals[i] << '\n';
}

void write_matrix_market_file(const Coo<double>& m, const std::string& path) {
  std::ofstream out(path);
  ACSR_REQUIRE(out.good(), "cannot open " << path << " for writing");
  write_matrix_market(m, out);
}

}  // namespace acsr::mat
