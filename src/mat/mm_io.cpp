#include "mat/mm_io.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/check.hpp"

namespace acsr::mat {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

bool blank(const std::string& s) {
  return std::all_of(s.begin(), s.end(),
                     [](unsigned char c) { return std::isspace(c); });
}

}  // namespace

// Hardened streaming reader: every parse error carries the 1-based line
// number, every numeric field is checked to extract cleanly (a malformed
// value used to silently default to 1.0 — a data corruption, not a parse
// error), entry lines must not carry trailing tokens, and non-finite
// values (NaN/Inf, including overflowed literals like 1e999) are rejected
// — they would propagate through every SpMV and poison the iterative
// apps' convergence checks.

bool MatrixMarketStream::next_line() {
  if (!std::getline(in_, line_)) return false;
  ++lineno_;
  return true;
}

MatrixMarketStream::MatrixMarketStream(std::istream& in) : in_(in) {
  ACSR_REQUIRE(next_line(), "empty Matrix Market stream");
  std::istringstream header(line_);
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  ACSR_REQUIRE(banner == "%%MatrixMarket",
               "line 1: missing %%MatrixMarket banner");
  ACSR_REQUIRE(lower(object) == "matrix",
               "line 1: unsupported object: " << object);
  ACSR_REQUIRE(lower(format) == "coordinate",
               "line 1: only coordinate format supported, got " << format);
  field = lower(field);
  symmetry = lower(symmetry);
  ACSR_REQUIRE(field == "real" || field == "integer" || field == "pattern",
               "line 1: unsupported field type: " << field);
  ACSR_REQUIRE(symmetry == "general" || symmetry == "symmetric",
               "line 1: unsupported symmetry: " << symmetry);
  pattern_ = field == "pattern";
  symmetric_ = symmetry == "symmetric";

  // Skip comment and blank lines up to the dimensions line.
  bool have_dims = false;
  while (next_line()) {
    if (line_.empty() || line_[0] == '%' || blank(line_)) continue;
    have_dims = true;
    break;
  }
  ACSR_REQUIRE(have_dims, "line " << lineno_ << ": missing dimensions line");
  std::istringstream dims(line_);
  long long rows = 0, cols = 0, entries = 0;
  ACSR_REQUIRE(dims >> rows >> cols >> entries,
               "line " << lineno_ << ": malformed dimensions line: " << line_);
  std::string extra;
  ACSR_REQUIRE(!(dims >> extra), "line " << lineno_
                                         << ": trailing tokens after "
                                            "dimensions: "
                                         << line_);
  ACSR_REQUIRE(rows > 0 && cols > 0 && entries >= 0,
               "line " << lineno_ << ": bad dimensions: " << line_);
  constexpr long long kMaxDim = std::numeric_limits<index_t>::max();
  ACSR_REQUIRE(rows <= kMaxDim && cols <= kMaxDim,
               "line " << lineno_ << ": dimensions exceed 32-bit index range: "
                       << line_);
  rows_ = static_cast<index_t>(rows);
  cols_ = static_cast<index_t>(cols);
  entries_ = entries;
}

bool MatrixMarketStream::next_chunk(std::vector<MmEntry>& out,
                                    std::size_t max_entries) {
  out.clear();
  if (consumed_ >= entries_) return false;
  while (consumed_ < entries_ && out.size() < max_entries) {
    ACSR_REQUIRE(next_line(), "line " << lineno_
                                      << ": truncated file: expected "
                                      << entries_ << " entries, got "
                                      << consumed_);
    if (line_.empty() || line_[0] == '%' || blank(line_))
      continue;  // comment/blank lines between entries don't count
    std::istringstream es(line_);
    long long r = 0, c = 0;
    double v = 1.0;
    ACSR_REQUIRE(es >> r, "line " << lineno_ << ": malformed row index: "
                                  << line_);
    ACSR_REQUIRE(es >> c, "line " << lineno_ << ": malformed column index: "
                                  << line_);
    if (!pattern_) {
      ACSR_REQUIRE(es >> v,
                   "line " << lineno_ << ": malformed value: " << line_);
      ACSR_REQUIRE(std::isfinite(v), "line " << lineno_
                                             << ": non-finite value: "
                                             << line_);
    }
    std::string extra;
    ACSR_REQUIRE(!(es >> extra), "line " << lineno_
                                         << ": trailing tokens after entry: "
                                         << line_);
    ACSR_REQUIRE(r >= 1 && r <= rows_ && c >= 1 && c <= cols_,
                 "line " << lineno_ << ": entry out of range: " << line_);
    out.push_back(MmEntry{static_cast<index_t>(r - 1),
                          static_cast<index_t>(c - 1), v});
    if (symmetric_ && r != c)
      out.push_back(MmEntry{static_cast<index_t>(c - 1),
                            static_cast<index_t>(r - 1), v});
    ++consumed_;
  }
  return true;
}

Coo<double> read_matrix_market(std::istream& in) {
  MatrixMarketStream ms(in);
  Coo<double> m;
  m.rows = ms.rows();
  m.cols = ms.cols();
  m.reserve(static_cast<std::size_t>(ms.entries()) *
            (ms.symmetric() ? 2 : 1));
  // Drain in bounded chunks: the Coo grows to nnz (the caller asked for
  // the whole matrix) but the parser itself holds O(chunk).
  std::vector<MmEntry> chunk;
  while (ms.next_chunk(chunk, 4096))
    for (const MmEntry& e : chunk) m.push(e.row, e.col, e.val);
  m.sort();
  m.sum_duplicates();
  return m;
}

Coo<double> read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  ACSR_REQUIRE(in.good(), "cannot open " << path);
  return read_matrix_market(in);
}

void write_matrix_market(const Coo<double>& m, std::ostream& out) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << m.rows << ' ' << m.cols << ' ' << m.nnz() << '\n';
  for (std::size_t i = 0; i < m.vals.size(); ++i)
    out << (m.row_idx[i] + 1) << ' ' << (m.col_idx[i] + 1) << ' '
        << m.vals[i] << '\n';
}

void write_matrix_market_file(const Coo<double>& m, const std::string& path) {
  std::ofstream out(path);
  ACSR_REQUIRE(out.good(), "cannot open " << path << " for writing");
  write_matrix_market(m, out);
}

}  // namespace acsr::mat
