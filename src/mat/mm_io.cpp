#include "mat/mm_io.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/check.hpp"

namespace acsr::mat {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

bool blank(const std::string& s) {
  return std::all_of(s.begin(), s.end(),
                     [](unsigned char c) { return std::isspace(c); });
}

}  // namespace

// Hardened reader: every parse error carries the 1-based line number, every
// numeric field is checked to extract cleanly (a malformed value used to
// silently default to 1.0 — a data corruption, not a parse error), entry
// lines must not carry trailing tokens, and non-finite values (NaN/Inf,
// including overflowed literals like 1e999) are rejected — they would
// propagate through every SpMV and poison the iterative apps' convergence
// checks.
Coo<double> read_matrix_market(std::istream& in) {
  long long lineno = 0;
  std::string line;
  auto next_line = [&in, &lineno, &line]() {
    if (!std::getline(in, line)) return false;
    ++lineno;
    return true;
  };

  ACSR_REQUIRE(next_line(), "empty Matrix Market stream");
  std::istringstream header(line);
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  ACSR_REQUIRE(banner == "%%MatrixMarket",
               "line 1: missing %%MatrixMarket banner");
  ACSR_REQUIRE(lower(object) == "matrix",
               "line 1: unsupported object: " << object);
  ACSR_REQUIRE(lower(format) == "coordinate",
               "line 1: only coordinate format supported, got " << format);
  field = lower(field);
  symmetry = lower(symmetry);
  ACSR_REQUIRE(field == "real" || field == "integer" || field == "pattern",
               "line 1: unsupported field type: " << field);
  ACSR_REQUIRE(symmetry == "general" || symmetry == "symmetric",
               "line 1: unsupported symmetry: " << symmetry);

  // Skip comment and blank lines up to the dimensions line.
  bool have_dims = false;
  while (next_line()) {
    if (line.empty() || line[0] == '%' || blank(line)) continue;
    have_dims = true;
    break;
  }
  ACSR_REQUIRE(have_dims, "line " << lineno << ": missing dimensions line");
  std::istringstream dims(line);
  long long rows = 0, cols = 0, entries = 0;
  ACSR_REQUIRE(dims >> rows >> cols >> entries,
               "line " << lineno << ": malformed dimensions line: " << line);
  std::string extra;
  ACSR_REQUIRE(!(dims >> extra), "line " << lineno
                                         << ": trailing tokens after "
                                            "dimensions: "
                                         << line);
  ACSR_REQUIRE(rows > 0 && cols > 0 && entries >= 0,
               "line " << lineno << ": bad dimensions: " << line);
  constexpr long long kMaxDim = std::numeric_limits<index_t>::max();
  ACSR_REQUIRE(rows <= kMaxDim && cols <= kMaxDim,
               "line " << lineno << ": dimensions exceed 32-bit index range: "
                       << line);

  Coo<double> m;
  m.rows = static_cast<index_t>(rows);
  m.cols = static_cast<index_t>(cols);
  m.reserve(static_cast<std::size_t>(entries) *
            (symmetry == "symmetric" ? 2 : 1));

  for (long long e = 0; e < entries; ++e) {
    ACSR_REQUIRE(next_line(), "line " << lineno << ": truncated file: expected "
                                      << entries << " entries, got " << e);
    if (line.empty() || line[0] == '%' || blank(line)) {
      --e;  // comment/blank lines between entries don't count
      continue;
    }
    std::istringstream es(line);
    long long r = 0, c = 0;
    double v = 1.0;
    ACSR_REQUIRE(es >> r, "line " << lineno << ": malformed row index: "
                                  << line);
    ACSR_REQUIRE(es >> c, "line " << lineno << ": malformed column index: "
                                  << line);
    if (field != "pattern") {
      ACSR_REQUIRE(es >> v,
                   "line " << lineno << ": malformed value: " << line);
      ACSR_REQUIRE(std::isfinite(v), "line " << lineno
                                             << ": non-finite value: "
                                             << line);
    }
    ACSR_REQUIRE(!(es >> extra), "line " << lineno
                                         << ": trailing tokens after entry: "
                                         << line);
    ACSR_REQUIRE(r >= 1 && r <= rows && c >= 1 && c <= cols,
                 "line " << lineno << ": entry out of range: " << line);
    m.push(static_cast<index_t>(r - 1), static_cast<index_t>(c - 1), v);
    if (symmetry == "symmetric" && r != c)
      m.push(static_cast<index_t>(c - 1), static_cast<index_t>(r - 1), v);
  }
  m.sort();
  m.sum_duplicates();
  return m;
}

Coo<double> read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  ACSR_REQUIRE(in.good(), "cannot open " << path);
  return read_matrix_market(in);
}

void write_matrix_market(const Coo<double>& m, std::ostream& out) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << m.rows << ' ' << m.cols << ' ' << m.nnz() << '\n';
  for (std::size_t i = 0; i < m.vals.size(); ++i)
    out << (m.row_idx[i] + 1) << ' ' << (m.col_idx[i] + 1) << ' '
        << m.vals[i] << '\n';
}

void write_matrix_market_file(const Coo<double>& m, const std::string& path) {
  std::ofstream out(path);
  ACSR_REQUIRE(out.good(), "cannot open " << path << " for writing");
  write_matrix_market(m, out);
}

}  // namespace acsr::mat
