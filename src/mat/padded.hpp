// Checked padded-size arithmetic for the slab/block formats.
//
// ELL, HYB and BCCOO all materialise `rows_or_blocks * width` padded slots.
// On power-law matrices a single hub row can push that product past what
// any allocator — host or device — could ever satisfy, and past what the
// unchecked product can even represent. Those are *resource* failures of a
// degenerate input, not engine bugs, so they must surface as DeviceOom
// (which the resilient driver's fallback chain understands and degrades
// on, docs/RESILIENCE.md) and never as InvariantError or a bad_alloc
// abort.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

#include "vgpu/memory.hpp"

namespace acsr::mat {

/// Largest padded slab any build is allowed to materialise. Far above every
/// real device's memory (the largest simulated device has tens of GiB), so
/// the cap only trips on degenerate padded expansions — where it turns an
/// allocator death-spiral into a typed, recoverable error.
inline constexpr std::uint64_t kMaxPaddedBytes = std::uint64_t{1} << 40;

/// `count * width` slots of `elem_bytes` each, checked: returns the slot
/// count, or throws DeviceOom naming `what` if the product overflows or
/// the slab would exceed kMaxPaddedBytes.
inline std::size_t checked_padded_slots(std::uint64_t count,
                                        std::uint64_t width,
                                        std::uint64_t elem_bytes,
                                        const std::string& what) {
  const std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  const std::uint64_t slots =
      (width != 0 && count > kMax / width) ? kMax : count * width;
  const std::uint64_t bytes =
      (elem_bytes != 0 && slots > kMax / elem_bytes) ? kMax
                                                     : slots * elem_bytes;
  if (bytes > kMaxPaddedBytes)
    throw vgpu::DeviceOom(
        what + " padded size " + std::to_string(count) + " x " +
        std::to_string(width) + " slots overflows the " +
        std::to_string(kMaxPaddedBytes >> 30) + " GiB slab limit");
  return static_cast<std::size_t>(slots);
}

}  // namespace acsr::mat
