// Coordinate (COO) format: one (row, col, value) triplet per non-zero.
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.hpp"
#include "mat/types.hpp"
#include "vgpu/host_model.hpp"

namespace acsr::mat {

template <class T>
struct Coo {
  index_t rows = 0;
  index_t cols = 0;
  std::vector<index_t> row_idx;
  std::vector<index_t> col_idx;
  std::vector<T> vals;

  offset_t nnz() const { return static_cast<offset_t>(vals.size()); }

  void reserve(std::size_t n) {
    row_idx.reserve(n);
    col_idx.reserve(n);
    vals.reserve(n);
  }

  void push(index_t r, index_t c, T v) {
    ACSR_CHECK_MSG(r >= 0 && r < rows && c >= 0 && c < cols,
                   "entry (" << r << ',' << c << ") outside " << rows << 'x'
                             << cols);
    row_idx.push_back(r);
    col_idx.push_back(c);
    vals.push_back(v);
  }

  bool is_sorted() const {
    for (std::size_t i = 1; i < vals.size(); ++i) {
      if (row_idx[i - 1] > row_idx[i]) return false;
      if (row_idx[i - 1] == row_idx[i] && col_idx[i - 1] > col_idx[i])
        return false;
    }
    return true;
  }

  /// Sort by (row, col). Charges n log n element moves to the host model.
  void sort(vgpu::HostModel* hm = nullptr) {
    const std::size_t n = vals.size();
    std::vector<std::size_t> perm(n);
    for (std::size_t i = 0; i < n; ++i) perm[i] = i;
    std::sort(perm.begin(), perm.end(), [&](std::size_t a, std::size_t b) {
      if (row_idx[a] != row_idx[b]) return row_idx[a] < row_idx[b];
      return col_idx[a] < col_idx[b];
    });
    apply_permutation(perm);
    if (hm != nullptr && n > 1) {
      const double logn = std::log2(static_cast<double>(n));
      hm->charge_ops(static_cast<double>(n) * logn + 3.0 * static_cast<double>(n));
    }
  }

  /// Merge duplicate (row, col) entries by summing. Requires sorted input.
  void sum_duplicates() {
    ACSR_CHECK(is_sorted());
    std::size_t w = 0;
    for (std::size_t i = 0; i < vals.size(); ++i) {
      if (w > 0 && row_idx[w - 1] == row_idx[i] &&
          col_idx[w - 1] == col_idx[i]) {
        vals[w - 1] += vals[i];
      } else {
        row_idx[w] = row_idx[i];
        col_idx[w] = col_idx[i];
        vals[w] = vals[i];
        ++w;
      }
    }
    row_idx.resize(w);
    col_idx.resize(w);
    vals.resize(w);
  }

  /// Host reference SpMV: y = A x (y must be zero-initialised by caller or
  /// use accumulate=false to overwrite).
  void spmv(const std::vector<T>& x, std::vector<T>& y) const {
    ACSR_CHECK(static_cast<index_t>(x.size()) == cols);
    y.assign(static_cast<std::size_t>(rows), T{0});
    for (std::size_t i = 0; i < vals.size(); ++i)
      y[static_cast<std::size_t>(row_idx[i])] +=
          vals[i] * x[static_cast<std::size_t>(col_idx[i])];
  }

 private:
  void apply_permutation(const std::vector<std::size_t>& perm) {
    std::vector<index_t> r(perm.size()), c(perm.size());
    std::vector<T> v(perm.size());
    for (std::size_t i = 0; i < perm.size(); ++i) {
      r[i] = row_idx[perm[i]];
      c[i] = col_idx[perm[i]];
      v[i] = vals[perm[i]];
    }
    row_idx = std::move(r);
    col_idx = std::move(c);
    vals = std::move(v);
  }
};

}  // namespace acsr::mat
