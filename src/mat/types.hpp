// Index/offset typedefs shared by all sparse containers.
//
// Both column indices and row offsets are 32-bit, as in the cuSPARSE/CUSP
// generation the paper targets (CUSPARSE_INDEX_32I): the paper's largest
// matrix has 298 M non-zeros, comfortably inside int32, and 4-byte row
// extents halve the per-row metadata traffic of the CSR kernels.
#pragma once

#include <cstdint>

namespace acsr::mat {

using index_t = std::int32_t;
using offset_t = std::int32_t;

}  // namespace acsr::mat
