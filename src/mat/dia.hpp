// Diagonal (DIA) format — included for completeness with the format suite
// the paper surveys (cuSPARSE/CUSP support DIA for banded matrices). Not a
// power-law contender; used in tests and the format-explorer example to
// show why structure dictates format choice.
#pragma once

#include <map>
#include <vector>

#include "common/check.hpp"
#include "mat/csr.hpp"
#include "mat/types.hpp"

namespace acsr::mat {

template <class T>
struct Dia {
  index_t rows = 0;
  index_t cols = 0;
  std::vector<index_t> offsets;  // diagonal offsets (col - row), ascending
  // vals[d * rows + r] = A(r, r + offsets[d]); zero-filled out of band.
  std::vector<T> vals;

  std::size_t bytes() const {
    return offsets.size() * sizeof(index_t) + vals.size() * sizeof(T);
  }

  /// Build from CSR. Throws InputError when the matrix has more distinct
  /// diagonals than `max_diags` (unstructured matrices explode in DIA).
  static Dia from_csr(const Csr<T>& a, std::size_t max_diags = 64) {
    std::map<index_t, std::size_t> diag_index;
    for (index_t r = 0; r < a.rows; ++r)
      for (offset_t i = a.row_off[static_cast<std::size_t>(r)];
           i < a.row_off[static_cast<std::size_t>(r) + 1]; ++i) {
        const index_t off = a.col_idx[static_cast<std::size_t>(i)] - r;
        diag_index.emplace(off, 0);
        ACSR_REQUIRE(diag_index.size() <= max_diags,
                     "matrix has more than " << max_diags
                                             << " diagonals; DIA unsuitable");
      }
    Dia d;
    d.rows = a.rows;
    d.cols = a.cols;
    d.offsets.reserve(diag_index.size());
    for (auto& [off, idx] : diag_index) {
      idx = d.offsets.size();
      d.offsets.push_back(off);
    }
    d.vals.assign(d.offsets.size() * static_cast<std::size_t>(a.rows), T{0});
    for (index_t r = 0; r < a.rows; ++r)
      for (offset_t i = a.row_off[static_cast<std::size_t>(r)];
           i < a.row_off[static_cast<std::size_t>(r) + 1]; ++i) {
        const index_t off = a.col_idx[static_cast<std::size_t>(i)] - r;
        const std::size_t di = diag_index[off];
        d.vals[di * static_cast<std::size_t>(a.rows) +
               static_cast<std::size_t>(r)] =
            a.vals[static_cast<std::size_t>(i)];
      }
    return d;
  }

  void spmv(const std::vector<T>& x, std::vector<T>& y) const {
    ACSR_CHECK(static_cast<index_t>(x.size()) == cols);
    y.assign(static_cast<std::size_t>(rows), T{0});
    for (std::size_t d = 0; d < offsets.size(); ++d) {
      const index_t off = offsets[d];
      for (index_t r = 0; r < rows; ++r) {
        const index_t c = r + off;
        if (c < 0 || c >= cols) continue;
        y[static_cast<std::size_t>(r)] +=
            vals[d * static_cast<std::size_t>(rows) +
                 static_cast<std::size_t>(r)] *
            x[static_cast<std::size_t>(c)];
      }
    }
  }
};

}  // namespace acsr::mat
