// Compressed Sparse Row — the library's canonical format (as in the paper:
// the format ACSR works on directly, with no data restructuring).
#pragma once

#include <cmath>
#include <vector>

#include "common/check.hpp"
#include "common/stats.hpp"
#include "mat/coo.hpp"
#include "mat/types.hpp"
#include "vgpu/host_model.hpp"

namespace acsr::mat {

/// Row-length statistics: the mu / sigma / max columns of Table I.
struct RowStats {
  double mean = 0.0;
  double stddev = 0.0;
  offset_t max = 0;
  Log2Histogram histogram;  // Fig. 3, and the ACSR bin populations
};

template <class T>
struct Csr {
  index_t rows = 0;
  index_t cols = 0;
  std::vector<offset_t> row_off;  // rows + 1 entries
  std::vector<index_t> col_idx;
  std::vector<T> vals;

  offset_t nnz() const { return static_cast<offset_t>(vals.size()); }
  offset_t row_nnz(index_t r) const {
    return row_off[static_cast<std::size_t>(r) + 1] -
           row_off[static_cast<std::size_t>(r)];
  }

  /// Memory footprint of the device-resident arrays.
  std::size_t bytes() const {
    return row_off.size() * sizeof(offset_t) +
           col_idx.size() * sizeof(index_t) + vals.size() * sizeof(T);
  }

  /// Structural invariants; used by tests and after dynamic updates.
  void validate() const {
    ACSR_CHECK(rows >= 0 && cols >= 0);
    ACSR_CHECK(row_off.size() == static_cast<std::size_t>(rows) + 1);
    ACSR_CHECK(row_off.front() == 0);
    ACSR_CHECK(row_off.back() == nnz());
    for (std::size_t r = 0; r + 1 < row_off.size(); ++r)
      ACSR_CHECK_MSG(row_off[r] <= row_off[r + 1], "row " << r);
    ACSR_CHECK(col_idx.size() == vals.size());
    for (index_t c : col_idx) ACSR_CHECK(c >= 0 && c < cols);
  }

  /// True when every row's column indices are strictly increasing (required
  /// by the dynamic-update kernel's sorted-merge).
  bool rows_sorted() const {
    for (index_t r = 0; r < rows; ++r)
      for (offset_t i = row_off[static_cast<std::size_t>(r)] + 1;
           i < row_off[static_cast<std::size_t>(r) + 1]; ++i)
        if (col_idx[static_cast<std::size_t>(i)] <=
            col_idx[static_cast<std::size_t>(i) - 1])
          return false;
    return true;
  }

  /// Build from COO. Sorts a copy if needed. Charges one pass over the
  /// data to the host model — this is the (cheap) cost the paper credits
  /// to CSR-based schemes.
  static Csr from_coo(const Coo<T>& coo, vgpu::HostModel* hm = nullptr) {
    Coo<T> sorted_copy;
    const Coo<T>* src = &coo;
    if (!coo.is_sorted()) {
      sorted_copy = coo;
      sorted_copy.sort(hm);
      src = &sorted_copy;
    }
    Csr m;
    m.rows = src->rows;
    m.cols = src->cols;
    m.row_off.assign(static_cast<std::size_t>(src->rows) + 1, 0);
    for (index_t r : src->row_idx)
      ++m.row_off[static_cast<std::size_t>(r) + 1];
    for (std::size_t r = 1; r < m.row_off.size(); ++r)
      m.row_off[r] += m.row_off[r - 1];
    m.col_idx = src->col_idx;
    m.vals = src->vals;
    if (hm != nullptr)
      hm->charge_ops(static_cast<double>(src->nnz()) +
                     static_cast<double>(src->rows));
    return m;
  }

  Coo<T> to_coo() const {
    Coo<T> coo;
    coo.rows = rows;
    coo.cols = cols;
    coo.reserve(vals.size());
    for (index_t r = 0; r < rows; ++r)
      for (offset_t i = row_off[static_cast<std::size_t>(r)];
           i < row_off[static_cast<std::size_t>(r) + 1]; ++i)
        coo.push(r, col_idx[static_cast<std::size_t>(i)],
                 vals[static_cast<std::size_t>(i)]);
    return coo;
  }

  /// Host reference SpMV: y = A x.
  void spmv(const std::vector<T>& x, std::vector<T>& y) const {
    ACSR_CHECK(static_cast<index_t>(x.size()) == cols);
    y.assign(static_cast<std::size_t>(rows), T{0});
    for (index_t r = 0; r < rows; ++r) {
      T sum{0};
      for (offset_t i = row_off[static_cast<std::size_t>(r)];
           i < row_off[static_cast<std::size_t>(r) + 1]; ++i)
        sum += vals[static_cast<std::size_t>(i)] *
               x[static_cast<std::size_t>(col_idx[static_cast<std::size_t>(i)])];
      y[static_cast<std::size_t>(r)] = sum;
    }
  }

  /// A^T, built with a counting pass (used by PageRank/HITS/RWR setup).
  Csr transpose(vgpu::HostModel* hm = nullptr) const {
    Csr t;
    t.rows = cols;
    t.cols = rows;
    t.row_off.assign(static_cast<std::size_t>(cols) + 1, 0);
    for (index_t c : col_idx) ++t.row_off[static_cast<std::size_t>(c) + 1];
    for (std::size_t r = 1; r < t.row_off.size(); ++r)
      t.row_off[r] += t.row_off[r - 1];
    t.col_idx.resize(col_idx.size());
    t.vals.resize(vals.size());
    std::vector<offset_t> cursor(t.row_off.begin(), t.row_off.end() - 1);
    for (index_t r = 0; r < rows; ++r)
      for (offset_t i = row_off[static_cast<std::size_t>(r)];
           i < row_off[static_cast<std::size_t>(r) + 1]; ++i) {
        const auto c = static_cast<std::size_t>(
            col_idx[static_cast<std::size_t>(i)]);
        const auto w = static_cast<std::size_t>(cursor[c]++);
        t.col_idx[w] = r;
        t.vals[w] = vals[static_cast<std::size_t>(i)];
      }
    if (hm != nullptr) hm->charge_ops(2.0 * static_cast<double>(nnz()));
    return t;
  }

  /// Scale each row to sum 1 (PageRank's row-normalised adjacency matrix).
  /// Zero rows (dangling nodes) are left untouched.
  void row_normalize() {
    for (index_t r = 0; r < rows; ++r) {
      T sum{0};
      for (offset_t i = row_off[static_cast<std::size_t>(r)];
           i < row_off[static_cast<std::size_t>(r) + 1]; ++i)
        sum += vals[static_cast<std::size_t>(i)];
      if (sum != T{0})
        for (offset_t i = row_off[static_cast<std::size_t>(r)];
             i < row_off[static_cast<std::size_t>(r) + 1]; ++i)
          vals[static_cast<std::size_t>(i)] /= sum;
    }
  }

  /// Scale each column to sum 1 (RWR's column-normalised W).
  void col_normalize() {
    std::vector<T> sums(static_cast<std::size_t>(cols), T{0});
    for (std::size_t i = 0; i < vals.size(); ++i)
      sums[static_cast<std::size_t>(col_idx[i])] += vals[i];
    for (std::size_t i = 0; i < vals.size(); ++i) {
      const T s = sums[static_cast<std::size_t>(col_idx[i])];
      if (s != T{0}) vals[i] /= s;
    }
  }

  RowStats row_stats() const {
    RowStats s;
    RunningStats rs;
    for (index_t r = 0; r < rows; ++r) {
      const offset_t n = row_nnz(r);
      rs.add(static_cast<double>(n));
      s.histogram.add(static_cast<std::uint64_t>(n));
      if (n > s.max) s.max = n;
    }
    s.mean = rs.mean();
    s.stddev = rs.stddev();
    return s;
  }
};

/// The paper's HITS formulation (Eq. 7): the combined 2n x 2n matrix
/// [[0, A^T], [A, 0]] so that one SpMV updates both authority and hub.
template <class T>
Csr<T> make_hits_matrix(const Csr<T>& a) {
  ACSR_CHECK_MSG(a.rows == a.cols, "HITS needs a square adjacency matrix");
  const Csr<T> at = a.transpose();
  const index_t n = a.rows;
  Csr<T> h;
  h.rows = 2 * n;
  h.cols = 2 * n;
  h.row_off.assign(static_cast<std::size_t>(h.rows) + 1, 0);
  h.col_idx.reserve(2 * static_cast<std::size_t>(a.nnz()));
  h.vals.reserve(2 * static_cast<std::size_t>(a.nnz()));
  // Top block rows: [0, A^T] — columns shifted by n.
  for (index_t r = 0; r < n; ++r) {
    for (offset_t i = at.row_off[static_cast<std::size_t>(r)];
         i < at.row_off[static_cast<std::size_t>(r) + 1]; ++i) {
      h.col_idx.push_back(at.col_idx[static_cast<std::size_t>(i)] + n);
      h.vals.push_back(at.vals[static_cast<std::size_t>(i)]);
    }
    h.row_off[static_cast<std::size_t>(r) + 1] =
        static_cast<offset_t>(h.col_idx.size());
  }
  // Bottom block rows: [A, 0].
  for (index_t r = 0; r < n; ++r) {
    for (offset_t i = a.row_off[static_cast<std::size_t>(r)];
         i < a.row_off[static_cast<std::size_t>(r) + 1]; ++i) {
      h.col_idx.push_back(a.col_idx[static_cast<std::size_t>(i)]);
      h.vals.push_back(a.vals[static_cast<std::size_t>(i)]);
    }
    h.row_off[static_cast<std::size_t>(n + r) + 1] =
        static_cast<offset_t>(h.col_idx.size());
  }
  return h;
}

}  // namespace acsr::mat
