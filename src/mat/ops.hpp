// Matrix algebra helpers used by the applications and tests: structural
// predicates, norms, elementwise combination, scaling, and row slicing
// (the building blocks of residual checks and delta analysis on dynamic
// graphs).
#pragma once

#include <cmath>

#include "mat/csr.hpp"

namespace acsr::mat {

/// Main-diagonal entries (0 where absent).
template <class T>
std::vector<T> extract_diagonal(const Csr<T>& a) {
  std::vector<T> d(static_cast<std::size_t>(std::min(a.rows, a.cols)), T{0});
  for (index_t r = 0; r < static_cast<index_t>(d.size()); ++r)
    for (offset_t i = a.row_off[static_cast<std::size_t>(r)];
         i < a.row_off[static_cast<std::size_t>(r) + 1]; ++i)
      if (a.col_idx[static_cast<std::size_t>(i)] == r)
        d[static_cast<std::size_t>(r)] = a.vals[static_cast<std::size_t>(i)];
  return d;
}

/// Frobenius norm.
template <class T>
double frobenius_norm(const Csr<T>& a) {
  double s = 0;
  for (const T& v : a.vals)
    s += static_cast<double>(v) * static_cast<double>(v);
  return std::sqrt(s);
}

/// True when A's sparsity pattern and values equal B's within tol.
template <class T>
bool approx_equal(const Csr<T>& a, const Csr<T>& b, double tol = 0.0) {
  if (a.rows != b.rows || a.cols != b.cols) return false;
  if (a.row_off != b.row_off || a.col_idx != b.col_idx) return false;
  for (std::size_t i = 0; i < a.vals.size(); ++i)
    if (std::abs(static_cast<double>(a.vals[i]) -
                 static_cast<double>(b.vals[i])) > tol)
      return false;
  return true;
}

/// Structural symmetry + value symmetry (requires sorted rows).
template <class T>
bool is_symmetric(const Csr<T>& a, double tol = 0.0) {
  if (a.rows != a.cols) return false;
  const Csr<T> at = a.transpose();
  return approx_equal(a, at, tol);
}

/// alpha*A + beta*B with matching shapes (union sparsity). The workhorse
/// for "what changed" analysis between dynamic-graph epochs.
template <class T>
Csr<T> add(const Csr<T>& a, const Csr<T>& b, T alpha = T{1}, T beta = T{1}) {
  ACSR_CHECK_MSG(a.rows == b.rows && a.cols == b.cols,
                 "shape mismatch in add");
  Csr<T> c;
  c.rows = a.rows;
  c.cols = a.cols;
  c.row_off.assign(static_cast<std::size_t>(a.rows) + 1, 0);
  for (index_t r = 0; r < a.rows; ++r) {
    offset_t ia = a.row_off[static_cast<std::size_t>(r)];
    offset_t ib = b.row_off[static_cast<std::size_t>(r)];
    const offset_t ea = a.row_off[static_cast<std::size_t>(r) + 1];
    const offset_t eb = b.row_off[static_cast<std::size_t>(r) + 1];
    while (ia < ea || ib < eb) {
      index_t ca = ia < ea ? a.col_idx[static_cast<std::size_t>(ia)]
                           : a.cols;  // sentinel past-the-end
      index_t cb = ib < eb ? b.col_idx[static_cast<std::size_t>(ib)]
                           : b.cols;
      T v;
      index_t col;
      if (ca < cb) {
        col = ca;
        v = alpha * a.vals[static_cast<std::size_t>(ia++)];
      } else if (cb < ca) {
        col = cb;
        v = beta * b.vals[static_cast<std::size_t>(ib++)];
      } else {
        col = ca;
        v = alpha * a.vals[static_cast<std::size_t>(ia++)] +
            beta * b.vals[static_cast<std::size_t>(ib++)];
      }
      if (v != T{0}) {
        c.col_idx.push_back(col);
        c.vals.push_back(v);
      }
    }
    c.row_off[static_cast<std::size_t>(r) + 1] =
        static_cast<offset_t>(c.col_idx.size());
  }
  c.validate();
  return c;
}

/// In-place scalar scale.
template <class T>
void scale(Csr<T>& a, T alpha) {
  for (T& v : a.vals) v *= alpha;
}

/// The rows [lo, hi) as a standalone matrix (same column space).
template <class T>
Csr<T> row_slice(const Csr<T>& a, index_t lo, index_t hi) {
  ACSR_CHECK(0 <= lo && lo <= hi && hi <= a.rows);
  Csr<T> s;
  s.rows = hi - lo;
  s.cols = a.cols;
  s.row_off.assign(static_cast<std::size_t>(s.rows) + 1, 0);
  const offset_t base = a.row_off[static_cast<std::size_t>(lo)];
  const offset_t end = a.row_off[static_cast<std::size_t>(hi)];
  s.col_idx.assign(a.col_idx.begin() + base, a.col_idx.begin() + end);
  s.vals.assign(a.vals.begin() + base, a.vals.begin() + end);
  for (index_t r = 0; r < s.rows; ++r)
    s.row_off[static_cast<std::size_t>(r) + 1] =
        a.row_off[static_cast<std::size_t>(lo + r) + 1] - base;
  s.validate();
  return s;
}

/// Structural bandwidth: max |col - row| over the non-zeros (0 for empty).
template <class T>
index_t structural_bandwidth(const Csr<T>& a) {
  index_t bw = 0;
  for (index_t r = 0; r < a.rows; ++r)
    for (offset_t i = a.row_off[static_cast<std::size_t>(r)];
         i < a.row_off[static_cast<std::size_t>(r) + 1]; ++i)
      bw = std::max(bw, static_cast<index_t>(std::abs(
                            a.col_idx[static_cast<std::size_t>(i)] - r)));
  return bw;
}

/// Count of structural differences between two same-shape matrices: the
/// entries present in exactly one of them (value changes not counted).
template <class T>
offset_t structural_delta(const Csr<T>& a, const Csr<T>& b) {
  ACSR_CHECK(a.rows == b.rows && a.cols == b.cols);
  offset_t delta = 0;
  for (index_t r = 0; r < a.rows; ++r) {
    offset_t ia = a.row_off[static_cast<std::size_t>(r)];
    offset_t ib = b.row_off[static_cast<std::size_t>(r)];
    const offset_t ea = a.row_off[static_cast<std::size_t>(r) + 1];
    const offset_t eb = b.row_off[static_cast<std::size_t>(r) + 1];
    while (ia < ea || ib < eb) {
      const index_t ca =
          ia < ea ? a.col_idx[static_cast<std::size_t>(ia)] : a.cols;
      const index_t cb =
          ib < eb ? b.col_idx[static_cast<std::size_t>(ib)] : b.cols;
      if (ca < cb) {
        ++delta;
        ++ia;
      } else if (cb < ca) {
        ++delta;
        ++ib;
      } else {
        ++ia;
        ++ib;
      }
    }
  }
  return delta;
}

}  // namespace acsr::mat
