// Matrix Market (.mtx) reader/writer so real UF Sparse Matrix Collection
// files (the paper's corpus) can be dropped in when available.
// Supports `matrix coordinate real|integer|pattern general|symmetric`.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "mat/coo.hpp"

namespace acsr::mat {

/// One parsed coordinate entry (0-based indices; pattern files get 1.0).
struct MmEntry {
  index_t row = 0;
  index_t col = 0;
  double val = 1.0;
};

/// Streaming .mtx reader: parses the banner and dimensions line eagerly,
/// then yields entries in caller-bounded chunks, so a consumer can ingest
/// a file whose triplet set would not fit comfortably in host memory
/// (docs/OOC.md) in O(chunk) space instead of O(nnz). Every diagnostic of
/// the one-shot reader is preserved — 1-based line numbers, malformed
/// index/value detection, NaN/Inf rejection (including overflowed
/// literals), trailing-token rejection, range checks, truncation.
/// read_matrix_market is this stream drained into a Coo.
class MatrixMarketStream {
 public:
  /// Parses banner + dimensions; throws InputError with a line-numbered
  /// message on any malformation. The stream must outlive this object.
  explicit MatrixMarketStream(std::istream& in);

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  /// Entry *lines* declared by the dimensions line (symmetric mirrors are
  /// produced on top of these).
  long long entries() const { return entries_; }
  bool symmetric() const { return symmetric_; }
  /// Entry lines consumed so far.
  long long consumed() const { return consumed_; }

  /// Parse up to `max_entries` further entry lines into `out` (replacing
  /// its contents; a symmetric off-diagonal line contributes its mirror
  /// too, so `out` may hold up to 2 * max_entries entries). Returns false
  /// — with `out` empty — once every declared entry has been delivered.
  /// Throws InputError on malformed or truncated input.
  bool next_chunk(std::vector<MmEntry>& out, std::size_t max_entries);

 private:
  bool next_line();

  std::istream& in_;
  std::string line_;
  long long lineno_ = 0;
  index_t rows_ = 0;
  index_t cols_ = 0;
  long long entries_ = 0;
  long long consumed_ = 0;
  bool symmetric_ = false;
  bool pattern_ = false;
};

Coo<double> read_matrix_market(std::istream& in);
Coo<double> read_matrix_market_file(const std::string& path);

void write_matrix_market(const Coo<double>& m, std::ostream& out);
void write_matrix_market_file(const Coo<double>& m, const std::string& path);

/// Convert element type (e.g. double-precision file into a float corpus).
template <class Dst, class Src>
Coo<Dst> convert_values(const Coo<Src>& src) {
  Coo<Dst> dst;
  dst.rows = src.rows;
  dst.cols = src.cols;
  dst.row_idx = src.row_idx;
  dst.col_idx = src.col_idx;
  dst.vals.reserve(src.vals.size());
  for (const auto& v : src.vals) dst.vals.push_back(static_cast<Dst>(v));
  return dst;
}

}  // namespace acsr::mat
