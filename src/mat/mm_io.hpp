// Matrix Market (.mtx) reader/writer so real UF Sparse Matrix Collection
// files (the paper's corpus) can be dropped in when available.
// Supports `matrix coordinate real|integer|pattern general|symmetric`.
#pragma once

#include <iosfwd>
#include <string>

#include "mat/coo.hpp"

namespace acsr::mat {

Coo<double> read_matrix_market(std::istream& in);
Coo<double> read_matrix_market_file(const std::string& path);

void write_matrix_market(const Coo<double>& m, std::ostream& out);
void write_matrix_market_file(const Coo<double>& m, const std::string& path);

/// Convert element type (e.g. double-precision file into a float corpus).
template <class Dst, class Src>
Coo<Dst> convert_values(const Coo<Src>& src) {
  Coo<Dst> dst;
  dst.rows = src.rows;
  dst.cols = src.cols;
  dst.row_idx = src.row_idx;
  dst.col_idx = src.col_idx;
  dst.vals.reserve(src.vals.size());
  for (const auto& v : src.vals) dst.vals.push_back(static_cast<Dst>(v));
  return dst;
}

}  // namespace acsr::mat
