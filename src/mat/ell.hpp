// ELLPACK format: every row padded to the same width K, stored
// column-major so that lane-adjacent rows read adjacent memory
// (the coalescing-friendly layout the GPU kernels rely on).
#pragma once

#include <new>
#include <vector>

#include "common/check.hpp"
#include "mat/csr.hpp"
#include "mat/padded.hpp"
#include "mat/types.hpp"
#include "vgpu/host_model.hpp"

namespace acsr::mat {

template <class T>
struct Ell {
  static constexpr index_t kPad = -1;  // column sentinel for padding slots

  index_t rows = 0;
  index_t cols = 0;
  index_t width = 0;  // K: entries per row after padding
  // Column-major: slot j of row r lives at [j * rows + r].
  std::vector<index_t> col_idx;
  std::vector<T> vals;

  std::size_t slots() const {
    return static_cast<std::size_t>(rows) * static_cast<std::size_t>(width);
  }
  std::size_t bytes() const {
    return col_idx.size() * sizeof(index_t) + vals.size() * sizeof(T);
  }

  /// Count of real (non-padding) entries.
  offset_t nnz() const {
    offset_t n = 0;
    for (index_t c : col_idx)
      if (c != kPad) ++n;
    return n;
  }

  /// Fraction of slots that are padding (the paper's padding cost).
  double padding_ratio() const {
    return slots() == 0
               ? 0.0
               : 1.0 - static_cast<double>(nnz()) /
                           static_cast<double>(slots());
  }

  /// Build from CSR using width = max row length (pure ELL). Throws
  /// InputError if the padded size would be absurd (max row much larger
  /// than the mean makes pure ELL infeasible — that is HYB's raison d'etre).
  static Ell from_csr(const Csr<T>& a, vgpu::HostModel* hm = nullptr,
                      double max_expansion = 20.0) {
    offset_t k = 0;
    for (index_t r = 0; r < a.rows; ++r) k = std::max(k, a.row_nnz(r));
    const double expansion =
        a.nnz() == 0 ? 1.0
                     : static_cast<double>(k) * static_cast<double>(a.rows) /
                           static_cast<double>(a.nnz());
    ACSR_REQUIRE(expansion <= max_expansion,
                 "ELL expansion factor " << expansion << " exceeds "
                                         << max_expansion
                                         << "; use HYB for this matrix");
    return from_csr_with_width(a, static_cast<index_t>(k), hm);
  }

  /// Build the first min(row_nnz, width) entries of each row; the caller
  /// (HYB) handles the overflow separately. The padded slab size is
  /// overflow-checked (mat/padded.hpp): a degenerate rows x width product
  /// surfaces as DeviceOom — the resilient driver's fallback signal —
  /// never as an InvariantError or a host allocator abort.
  static Ell from_csr_with_width(const Csr<T>& a, index_t width,
                                 vgpu::HostModel* hm = nullptr) {
    Ell e;
    e.rows = a.rows;
    e.cols = a.cols;
    e.width = width;
    const std::size_t slots = checked_padded_slots(
        static_cast<std::uint64_t>(a.rows), static_cast<std::uint64_t>(width),
        sizeof(index_t) + sizeof(T), "ELL slab");
    try {
      e.col_idx.assign(slots, kPad);
      e.vals.assign(slots, T{0});
    } catch (const std::bad_alloc&) {
      throw vgpu::DeviceOom("host allocator refused the ELL slab (" +
                            std::to_string(slots) + " slots)");
    }
    for (index_t r = 0; r < a.rows; ++r) {
      const offset_t base = a.row_off[static_cast<std::size_t>(r)];
      const offset_t n = std::min<offset_t>(a.row_nnz(r), width);
      for (offset_t j = 0; j < n; ++j) {
        const std::size_t slot = static_cast<std::size_t>(j) *
                                     static_cast<std::size_t>(e.rows) +
                                 static_cast<std::size_t>(r);
        e.col_idx[slot] = a.col_idx[static_cast<std::size_t>(base + j)];
        e.vals[slot] = a.vals[static_cast<std::size_t>(base + j)];
      }
    }
    // Transformation touches every slot (including padding) — that is the
    // setup cost the paper attributes to padded formats.
    if (hm != nullptr) hm->charge_ops(2.0 * static_cast<double>(e.slots()));
    return e;
  }

  /// Host reference SpMV: y = A x.
  void spmv(const std::vector<T>& x, std::vector<T>& y) const {
    ACSR_CHECK(static_cast<index_t>(x.size()) == cols);
    y.assign(static_cast<std::size_t>(rows), T{0});
    for (index_t j = 0; j < width; ++j)
      for (index_t r = 0; r < rows; ++r) {
        const std::size_t slot = static_cast<std::size_t>(j) *
                                     static_cast<std::size_t>(rows) +
                                 static_cast<std::size_t>(r);
        const index_t c = col_idx[slot];
        if (c != kPad)
          y[static_cast<std::size_t>(r)] +=
              vals[slot] * x[static_cast<std::size_t>(c)];
      }
  }
};

}  // namespace acsr::mat
