// ACSR parameter auto-tuner — an extension the paper leaves as manual
// knobs: BinMax (the bin-kernel / dynamic-parallelism handover), RowMax
// (the child-grid cap) and ThreadLoad (child coarsening) are searched with
// a handful of trial SpMVs. Crucially — and unlike the BCCOO/TCOO tuners
// of Table III — a trial only rebuilds the O(rows) *metadata*, never the
// matrix, so the whole search costs tens of SpMVs, preserving ACSR's
// dynamic-graph viability.
#pragma once

#include "core/acsr_engine.hpp"

namespace acsr::core {

struct AcsrTuneResult {
  AcsrOptions best;
  double best_spmv_s = 0.0;
  double tuning_cost_s = 0.0;  // simulated cost of the search itself
  int trials = 0;
};

/// Search over BinMax x ThreadLoad (RowMax fixed at the device pending-
/// launch limit, which never hurts). Candidate grids are evaluated with
/// one trial SpMV each; the device's dynamic-parallelism support prunes
/// the DP dimensions automatically.
template <class T>
AcsrTuneResult autotune_acsr(vgpu::Device& dev, const mat::Csr<T>& a,
                             AcsrOptions base = {}) {
  AcsrTuneResult res;
  res.best = base;

  std::vector<T> x(static_cast<std::size_t>(a.cols), T{1});
  auto x_dev = dev.alloc<T>(x.size(), "tune.x");
  x_dev.host() = x;
  auto y_dev = dev.alloc<T>(static_cast<std::size_t>(a.rows), "tune.y");

  // The CSR arrays are shared by every trial — ACSR's defining property.
  const auto dev_csr = spmv::CsrDevice<T>::upload(dev, a, "tune.csr");
  const auto nrows = static_cast<std::size_t>(a.rows);

  const bool dp = dev.spec().supports_dynamic_parallelism() &&
                  base.binning.enable_dp;
  const std::vector<int> bin_maxes =
      dp ? std::vector<int>{5, 7, 8, 10, 12} : std::vector<int>{8};
  const std::vector<int> thread_loads =
      dp ? std::vector<int>{2, 8, 32} : std::vector<int>{8};

  double best_t = -1.0;
  for (int bm : bin_maxes) {
    for (int tl : thread_loads) {
      AcsrOptions opt = base;
      opt.binning.bin_max = bm;
      opt.binning.row_max = dev.spec().pending_launch_limit;
      opt.thread_load = tl;

      vgpu::HostModel hm;
      Binning b = bin_matrix(a, dev, opt.binning, &hm);
      AcsrLauncher<T> launcher(dev, std::move(b), opt);
      const double t = launcher.run(
          dev_csr.row_off.cspan().subspan(0, nrows),
          dev_csr.row_off.cspan().subspan(1, nrows),
          dev_csr.col_idx.cspan(), dev_csr.vals.cspan(), x_dev.cspan(),
          y_dev.span());
      res.tuning_cost_s +=
          hm.seconds() + launcher.metadata_upload_s() + t;
      ++res.trials;
      if (best_t < 0.0 || t < best_t) {
        best_t = t;
        res.best = opt;
      }
      if (!dp) break;  // the inner dimension is DP-only
    }
  }
  res.best_spmv_s = best_t;
  return res;
}

}  // namespace acsr::core
