// The factory's engine registry: the single source of truth for which
// SpMV engines exist. make_engine (factory.hpp) dispatches through it,
// the static verifier's proof matrix (analysis/models.cpp,
// tools/acsr_verify) enumerates it, and the audit tier
// (analysis/charge_models.cpp, tools/acsr_audit) derives its charge-model
// matrix from it — so adding an engine here without a builder, a verifier
// model, or a charge model fails loudly instead of being silently skipped
// by the proof matrices.
//
// Deliberately dependency-free (names only): analysis code includes this
// header without pulling the engine headers or creating a link cycle with
// acsr_core.
#pragma once

#include <string>
#include <vector>

namespace acsr::core {

struct EngineRegistryEntry {
  const char* name;   ///< canonical factory name
  const char* alias;  ///< alternate factory spelling ("" = none)
};

/// Every engine the factory can build, in dispatch order.
inline constexpr EngineRegistryEntry kEngineRegistry[] = {
    {"csr-scalar", ""},
    {"csr-vector", ""},
    {"csr", "csr-cusparse"},
    {"ell", ""},
    {"coo", ""},
    {"hyb", ""},
    {"brc", ""},
    {"bccoo", ""},
    {"tcoo", ""},
    {"sic", ""},
    {"merge-csr", ""},
    {"sell", ""},
    {"bcsr", ""},
    {"acsr", ""},
    {"acsr-binning", ""},
    {"ooc-csr", ""},
};

/// Canonical engine names in dispatch order (aliases excluded).
inline const std::vector<std::string>& factory_engine_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> v;
    for (const EngineRegistryEntry& e : kEngineRegistry) v.emplace_back(e.name);
    return v;
  }();
  return names;
}

/// Resolve a factory name or alias to its canonical name; nullptr when the
/// registry does not know `name`.
inline const char* canonical_engine_name(const std::string& name) {
  for (const EngineRegistryEntry& e : kEngineRegistry) {
    if (name == e.name) return e.name;
    if (e.alias[0] != '\0' && name == e.alias) return e.name;
  }
  return nullptr;
}

}  // namespace acsr::core
