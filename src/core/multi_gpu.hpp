// Multi-GPU ACSR (paper section VIII).
//
// The partitioner is the paper's: each bin's row list (and the DP tail) is
// split evenly across devices, so every device receives the same *shape*
// of work. Each device holds a replica of the CSR arrays plus its own bin
// metadata; one SpMV runs the per-device launch sequences concurrently and
// completes at max(device times) plus an inter-device synchronisation fee.
//
// Resilience: when an injected whole-device-loss fault (src/vgpu/fault.hpp)
// strikes one replica mid-SpMV, simulate() drops the dead device,
// repartitions the bins over the survivors (a fresh replica build, charged
// like the original one), and re-runs — the SpMV degrades instead of
// aborting. Loss of the last device propagates as DeviceLost.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/acsr_engine.hpp"
#include "vgpu/timeline.hpp"

namespace acsr::core {

template <class T>
class MultiGpuAcsr final : public spmv::EngineBase<T> {
 public:
  MultiGpuAcsr(std::vector<vgpu::Device*> devices, const mat::Csr<T>& a,
               AcsrOptions opt = {})
      : spmv::EngineBase<T>(*devices.at(0), "ACSR-multi"),
        host_(a),
        devices_(std::move(devices)),
        opt_(opt) {
    ACSR_REQUIRE(!devices_.empty(), "need at least one device");
    build(devices_);
  }

  int num_devices() const { return static_cast<int>(engines_.size()); }
  const AcsrEngine<T>& engine(int d) const {
    return *engines_.at(static_cast<std::size_t>(d));
  }
  /// Human-readable record of repartitioning recoveries (empty when no
  /// device was lost).
  const std::vector<std::string>& recovery_log() const {
    return recovery_log_;
  }

  mat::index_t rows() const override { return host_.rows; }
  mat::index_t cols() const override { return host_.cols; }
  mat::offset_t nnz() const override { return host_.nnz(); }

  void apply(const std::vector<T>& x, std::vector<T>& y) const override {
    host_.spmv(x, y);
  }

  double simulate(const std::vector<T>& x, std::vector<T>& y) override {
    for (;;) {
      try {
        // A loss recorded by the previous attempt (or one that struck a
        // previous repartition mid-build) is repaired here, inside the
        // try, so a further loss during the rebuild re-enters recovery.
        if (live_of(active_).size() != active_.size()) build(live_of(active_));
        return simulate_once(x, y);
      } catch (const vgpu::DeviceLost& e) {
        const std::vector<vgpu::Device*> survivors = live_of(active_);
        // No survivor, or the loss did not strike one of ours (the set
        // would not shrink and the retry could not make progress): give up.
        if (survivors.empty() || survivors.size() == active_.size()) throw;
        // The loop top repartitions (and logs) on the next pass.
      }
    }
  }

 private:
  static std::vector<vgpu::Device*> live_of(
      const std::vector<vgpu::Device*>& devs) {
    std::vector<vgpu::Device*> live;
    for (vgpu::Device* d : devs)
      if (!d->lost()) live.push_back(d);
    return live;
  }

  /// (Re)build per-device replicas over `live`. Re-running the partitioner
  /// and the uploads is exactly what recovery costs on real hardware, so
  /// preprocessing/transfer charges accumulate into the report.
  void build(std::vector<vgpu::Device*> live) {
    if (live.empty())
      throw vgpu::DeviceLost(this->device().spec().name, "repartition",
                             "no surviving device to repartition onto");
    // A rebuild with a smaller live set is a loss recovery: record it
    // (covers both losses caught mid-SpMV and losses detected between
    // iterations at the simulate() loop top).
    if (!engines_.empty() && live.size() != active_.size())
      recovery_log_.push_back(
          "device lost; repartitioning " + std::to_string(active_.size()) +
          " -> " + std::to_string(live.size()) + " devices");
    engines_.clear();  // free dead/old replicas before re-allocating
    const int n = static_cast<int>(live.size());

    // Bin once over the whole matrix, then deal each bin out evenly.
    std::vector<mat::offset_t> row_nnz(static_cast<std::size_t>(host_.rows));
    for (mat::index_t r = 0; r < host_.rows; ++r)
      row_nnz[static_cast<std::size_t>(r)] = host_.row_nnz(r);
    BinningOptions bopt = opt_.binning;
    bopt.enable_dp =
        bopt.enable_dp && live[0]->spec().supports_dynamic_parallelism();
    vgpu::HostModel hm;
    const Binning full = Binning::build(row_nnz, bopt, &hm);

    for (int d = 0; d < n; ++d) {
      Binning part;
      part.options = full.options;
      part.bins.resize(full.bins.size());
      for (std::size_t b = 0; b < full.bins.size(); ++b)
        part.bins[b] = split_half(full.bins[b], d, n);
      part.dp_rows = split_half(full.dp_rows, d, n);
      engines_.push_back(std::make_unique<AcsrEngine<T>>(
          *live[static_cast<std::size_t>(d)], host_, opt_, std::move(part)));
    }
    this->report_.preprocess_s += hm.seconds();
    this->report_.device_bytes = 0;
    for (const auto& e : engines_) {
      this->report_.h2d_bytes += e->report().h2d_bytes;
      this->report_.h2d_s += e->report().h2d_s;
      this->report_.device_bytes += e->report().device_bytes;
    }
    active_ = std::move(live);
  }

  double simulate_once(const std::vector<T>& x, std::vector<T>& y) {
    // Each device computes its partition into its own y replica; the
    // result vector is the union (partitions are disjoint by row). One
    // host stream per device; the SpMV completes at the joined makespan
    // plus the inter-device fence.
    y.assign(static_cast<std::size_t>(host_.rows), T{0});
    vgpu::StreamTimeline timeline;
    for (auto& e : engines_) {
      const auto stream = timeline.create_stream();
      std::vector<T> part;
      timeline.enqueue(stream, e->simulate(x, part),
                       "spmv@" + e->device().spec().name);
      for (std::size_t b = 0; b < e->binning().bins.size(); ++b)
        for (mat::index_t r : e->binning().bins[b])
          y[static_cast<std::size_t>(r)] = part[static_cast<std::size_t>(r)];
      for (mat::index_t r : e->binning().dp_rows)
        y[static_cast<std::size_t>(r)] = part[static_cast<std::size_t>(r)];
    }
    const double t =
        timeline.synchronize() + (engines_.size() > 1
                                      ? this->device().spec().multi_gpu_sync_s
                                      : 0.0);
    this->report_.last_run = engines_.front()->report().last_run;
    return t;
  }

  /// Device d's share: an even contiguous slice (the paper: "we simply map
  /// half of the rows in each bin to each device").
  static std::vector<mat::index_t> split_half(
      const std::vector<mat::index_t>& v, int d, int n) {
    const std::size_t per =
        (v.size() + static_cast<std::size_t>(n) - 1) /
        static_cast<std::size_t>(n);
    const std::size_t lo =
        std::min(v.size(), per * static_cast<std::size_t>(d));
    const std::size_t hi = std::min(v.size(), lo + per);
    return std::vector<mat::index_t>(v.begin() + static_cast<std::ptrdiff_t>(lo),
                                     v.begin() + static_cast<std::ptrdiff_t>(hi));
  }

  mat::Csr<T> host_;
  std::vector<vgpu::Device*> devices_;
  std::vector<vgpu::Device*> active_;
  AcsrOptions opt_;
  std::vector<std::unique_ptr<AcsrEngine<T>>> engines_;
  std::vector<std::string> recovery_log_;
};

}  // namespace acsr::core
