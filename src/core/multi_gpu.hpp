// Multi-GPU ACSR (paper section VIII).
//
// The partitioner is the paper's: each bin's row list (and the DP tail) is
// split evenly across devices, so every device receives the same *shape*
// of work. Each device holds a replica of the CSR arrays plus its own bin
// metadata; one SpMV runs the per-device launch sequences concurrently and
// completes at max(device times) plus an inter-device synchronisation fee.
#pragma once

#include <memory>
#include <vector>

#include "core/acsr_engine.hpp"
#include "vgpu/timeline.hpp"

namespace acsr::core {

template <class T>
class MultiGpuAcsr final : public spmv::EngineBase<T> {
 public:
  MultiGpuAcsr(std::vector<vgpu::Device*> devices, const mat::Csr<T>& a,
               AcsrOptions opt = {})
      : spmv::EngineBase<T>(*devices.at(0), "ACSR-multi"), host_(a) {
    ACSR_REQUIRE(!devices.empty(), "need at least one device");
    const int n = static_cast<int>(devices.size());

    // Bin once over the whole matrix, then deal each bin out evenly.
    std::vector<mat::offset_t> row_nnz(static_cast<std::size_t>(a.rows));
    for (mat::index_t r = 0; r < a.rows; ++r)
      row_nnz[static_cast<std::size_t>(r)] = a.row_nnz(r);
    BinningOptions bopt = opt.binning;
    bopt.enable_dp =
        bopt.enable_dp && devices[0]->spec().supports_dynamic_parallelism();
    vgpu::HostModel hm;
    const Binning full = Binning::build(row_nnz, bopt, &hm);

    for (int d = 0; d < n; ++d) {
      Binning part;
      part.options = full.options;
      part.bins.resize(full.bins.size());
      for (std::size_t b = 0; b < full.bins.size(); ++b)
        part.bins[b] = split_half(full.bins[b], d, n);
      part.dp_rows = split_half(full.dp_rows, d, n);
      engines_.push_back(std::make_unique<AcsrEngine<T>>(
          *devices[static_cast<std::size_t>(d)], a, opt, std::move(part)));
    }
    this->report_.preprocess_s = hm.seconds();
    for (const auto& e : engines_) {
      this->report_.h2d_bytes += e->report().h2d_bytes;
      this->report_.h2d_s += e->report().h2d_s;
      this->report_.device_bytes += e->report().device_bytes;
    }
  }

  int num_devices() const { return static_cast<int>(engines_.size()); }
  const AcsrEngine<T>& engine(int d) const {
    return *engines_.at(static_cast<std::size_t>(d));
  }

  mat::index_t rows() const override { return host_.rows; }
  mat::index_t cols() const override { return host_.cols; }
  mat::offset_t nnz() const override { return host_.nnz(); }

  void apply(const std::vector<T>& x, std::vector<T>& y) const override {
    host_.spmv(x, y);
  }

  double simulate(const std::vector<T>& x, std::vector<T>& y) override {
    // Each device computes its partition into its own y replica; the
    // result vector is the union (partitions are disjoint by row). One
    // host stream per device; the SpMV completes at the joined makespan
    // plus the inter-device fence.
    y.assign(static_cast<std::size_t>(host_.rows), T{0});
    vgpu::StreamTimeline timeline;
    for (auto& e : engines_) {
      const auto stream = timeline.create_stream();
      std::vector<T> part;
      timeline.enqueue(stream, e->simulate(x, part),
                       "spmv@" + e->device().spec().name);
      for (std::size_t b = 0; b < e->binning().bins.size(); ++b)
        for (mat::index_t r : e->binning().bins[b])
          y[static_cast<std::size_t>(r)] = part[static_cast<std::size_t>(r)];
      for (mat::index_t r : e->binning().dp_rows)
        y[static_cast<std::size_t>(r)] = part[static_cast<std::size_t>(r)];
    }
    const double t =
        timeline.synchronize() + (engines_.size() > 1
                                      ? this->device().spec().multi_gpu_sync_s
                                      : 0.0);
    this->report_.last_run = engines_.front()->report().last_run;
    return t;
  }

 private:
  /// Device d's share: an even contiguous slice (the paper: "we simply map
  /// half of the rows in each bin to each device").
  static std::vector<mat::index_t> split_half(
      const std::vector<mat::index_t>& v, int d, int n) {
    const std::size_t per =
        (v.size() + static_cast<std::size_t>(n) - 1) /
        static_cast<std::size_t>(n);
    const std::size_t lo =
        std::min(v.size(), per * static_cast<std::size_t>(d));
    const std::size_t hi = std::min(v.size(), lo + per);
    return std::vector<mat::index_t>(v.begin() + static_cast<std::ptrdiff_t>(lo),
                                     v.begin() + static_cast<std::ptrdiff_t>(hi));
  }

  mat::Csr<T> host_;
  std::vector<std::unique_ptr<AcsrEngine<T>>> engines_;
};

}  // namespace acsr::core
