// Out-of-core streaming CSR engine (docs/OOC.md).
//
// The semi-external-memory tier of ROADMAP item 1: the matrix does NOT
// live in device memory. It is partitioned at build time into row-slabs
// sized to a device-memory budget; each simulate() streams the slabs
// from a fault-tolerant simulated storage tier (storage/tier.hpp)
// through host staging into a double-buffered pair of device slab
// buffers, overlapping the next slab's drive read and bin-metadata
// upload with the current slab's compute on a private StreamTimeline
// (drive streams + h2d stream + compute stream).
//
// The slab kernel is csr_vector_warp with a *per-row* vector size: slab
// rows are binned by choose_vector_size(row length) — the ACSR binning
// discipline — and each bin launches one grid over its slab-local row
// map, all bins concurrent (ConcurrentGroup, shared L2). Because a
// row's reduction order depends only on its own length, never on where
// a slab boundary falls, the engine's results are bitwise identical for
// every memory budget — which is what lets the differential fuzz
// compare out-of-core against in-core solves, the memo plane replay
// iterations, and the resilient driver swap the engine in mid-solve.
//
// This engine is the terminal rung of ResilientEngine's degradation
// ladder: when every in-core format has failed with DeviceOom, the
// driver rebuilds as "ooc-csr" and the solve completes — slower, but
// within budget — instead of throwing.
#pragma once

#include <array>
#include <cstring>
#include <deque>
#include <string>
#include <vector>

#include "analysis/shape.hpp"
#include "prof/metrics.hpp"
#include "slo/trace.hpp"
#include "spmv/csr_vector.hpp"
#include "spmv/engine.hpp"
#include "storage/tier.hpp"
#include "vgpu/timeline.hpp"

namespace acsr::core {

struct OocOptions {
  /// Device-memory budget for the streamed matrix. 0 derives it from the
  /// device: capacity / 8 — a function of the spec, not of the current
  /// allocation state, so rebuilt engines partition identically.
  std::size_t budget_bytes = 0;
  storage::TierConfig tier{};
  bool use_texture = true;
};

template <class T>
class OocCsrEngine final : public spmv::EngineBase<T> {
 public:
  OocCsrEngine(vgpu::Device& dev, const mat::Csr<T>& a, OocOptions opt = {})
      : spmv::EngineBase<T>(dev, "OOC-CSR"), host_(a), opt_(opt) {
    budget_ = opt_.budget_bytes != 0 ? opt_.budget_bytes
                                     : dev.arena().capacity() / 8;
    ACSR_REQUIRE(budget_ > 0, "out-of-core budget must be positive");
    partition();
    std::size_t peak = 0;
    for (const Slab& s : slabs_)
      peak = std::max(peak, s.bytes + s.meta_bytes);
    // Resident footprint: two slab sets in flight (double buffer).
    this->report_.device_bytes = 2 * peak;
  }

  std::size_t budget_bytes() const { return budget_; }
  std::size_t num_slabs() const { return slabs_.size(); }
  /// Storage/streaming accounting of the last simulate() (io.* metrics).
  const prof::IoAgg& io_stats() const { return last_io_; }
  /// End-to-end streamed makespan of the last simulate().
  double last_makespan() const { return last_makespan_; }
  /// Every private-timeline entry this engine has enqueued while the slo
  /// plane was enabled, rebased to absolute trace time (the anchor each
  /// simulate ran under) — including entries from attempts a fault
  /// aborted, whose timelines the resilient driver discards but whose
  /// spans were already recorded. This is the ground truth the
  /// charge-parity test compares per-stream span charges against
  /// (tests/test_slo.cpp, docs/SLO.md). Accrues only while tracing.
  const std::vector<vgpu::StreamTimeline::LogEntry>& trace_timeline_log()
      const {
    return trace_log_;
  }

  mat::index_t rows() const override { return host_.rows; }
  mat::index_t cols() const override { return host_.cols; }
  mat::offset_t nnz() const override { return host_.nnz(); }

  /// Host-side functional SpMV in exactly the kernel's reduction order:
  /// per row, V = choose_vector_size(length) lanes accumulate stride-V
  /// partials, then the butterfly folds them. simulate() == apply()
  /// element-for-element, independent of the slab partition.
  void apply(const std::vector<T>& x, std::vector<T>& y) const override {
    ACSR_CHECK(static_cast<mat::index_t>(x.size()) == host_.cols);
    y.assign(static_cast<std::size_t>(host_.rows), T{0});
    for (mat::index_t r = 0; r < host_.rows; ++r) {
      const mat::offset_t start = host_.row_off[static_cast<std::size_t>(r)];
      const mat::offset_t end =
          host_.row_off[static_cast<std::size_t>(r) + 1];
      if (start == end) continue;
      const int v = spmv::choose_vector_size(
          static_cast<double>(end - start));
      T part[32] = {};
      for (int l = 0; l < v; ++l) {
        T acc{};
        for (mat::offset_t j = start + l; j < end;
             j += static_cast<mat::offset_t>(v))
          acc += host_.vals[static_cast<std::size_t>(j)] *
                 x[static_cast<std::size_t>(
                     host_.col_idx[static_cast<std::size_t>(j)])];
        part[l] = acc;
      }
      for (int d = v / 2; d > 0; d /= 2) {
        T o[32];
        for (int l = 0; l < v; ++l) o[l] = (l + d < v) ? part[l + d] : part[l];
        for (int l = 0; l < v; ++l) part[l] = part[l] + o[l];
      }
      y[static_cast<std::size_t>(r)] = part[0];
    }
  }

  /// One streamed SpMV. Returns the end-to-end makespan of the private
  /// timeline — drive reads, slab uploads and bin compute with their
  /// overlap — because for an out-of-core solve the transfers ARE the
  /// iteration cost (unlike the in-core engines, whose matrix upload is
  /// a one-time charge outside the measured loop).
  double simulate(const std::vector<T>& x, std::vector<T>& y) override {
    ACSR_CHECK(static_cast<mat::index_t>(x.size()) == host_.cols);
    auto x_dev = this->stage_x(x);
    y.assign(static_cast<std::size_t>(host_.rows), T{0});
    last_io_ = prof::IoAgg{};
    last_makespan_ = 0.0;
    if (slabs_.empty()) return 0.0;

    // The private timeline starts at 0 every simulate; the tracer anchor
    // maps that 0 to absolute trace time so consecutive simulates (the
    // columns of a batch, the sweeps of a solve) concatenate instead of
    // overlapping. The tier ctor captures the same anchor for its drive
    // streams; we advance it only after synchronize().
    const bool traced = slo::slo_enabled();
    const double base = traced ? slo::Tracer::instance().anchor() : 0.0;

    vgpu::StreamTimeline tl;
    storage::StorageTier tier(tl, opt_.tier);
    const auto h2d = tl.create_stream();
    const auto compute = tl.create_stream();

    const std::size_t n = slabs_.size();
    std::vector<double> read_done(n, 0.0), comp_done(n, 0.0);
    std::vector<Stage> staged(n);
    std::deque<SlabDev> live;
    double stall_s = 0.0;
    double compute_busy = 0.0;
    vgpu::KernelRun agg{};
    std::uint64_t launches = 0;

    try {
    read_done[0] = submit_read(tier, staged, 0);
    for (std::size_t i = 0; i < n; ++i) {
      // Prefetch the next slab's drive read: the tier's drive streams
      // advance independently of h2d/compute, bounded by its in-flight
      // window.
      if (i + 1 < n) read_done[i + 1] = submit_read(tier, staged, i + 1);

      // Double buffer: at most two device slab sets live; re-using the
      // oldest set's space means its compute must have finished before
      // this slab's upload starts.
      if (live.size() == 2) live.pop_front();
      if (i >= 2)
        tl.wait(h2d, vgpu::StreamTimeline::Event{comp_done[i - 2]});
      SlabDev bufs = make_buffers(i, staged[i]);

      // Bin metadata is preprocessing state, not tier data: prefetch its
      // upload ahead of the slab's arrival.
      if (bufs.meta_bytes > 0) {
        // Span mirrors read the start off the stream cursor before the
        // enqueue: the span interval is then bit-identical to the log
        // entry's (exact charge parity, tests/test_slo.cpp).
        const double pf_start = tl.now(h2d);
        const double pf_done =
            tl.enqueue(h2d, charge_transfer(bufs.meta_bytes),
                       "prefetch:bins:slab" + std::to_string(i));
        if (traced) [[unlikely]]
          slo::Tracer::instance().add(
              slo::SpanKind::kUpload, "prefetch:bins:slab" + std::to_string(i),
              "h2d", base + pf_start, base + pf_done);
      }
      tl.wait(h2d, vgpu::StreamTimeline::Event{read_done[i]});
      const double up_start = tl.now(h2d);
      const double up_done =
          tl.enqueue(h2d, charge_transfer(slabs_[i].bytes),
                     "h2d:slab" + std::to_string(i));
      if (traced) [[unlikely]]
        slo::Tracer::instance().add(slo::SpanKind::kUpload,
                                    "h2d:slab" + std::to_string(i), "h2d",
                                    base + up_start, base + up_done);
      staged[i] = Stage{};  // staging freed once on the device

      const double before = tl.now(compute);
      if (up_done > before) stall_s += up_done - before;
      tl.wait(compute, vgpu::StreamTimeline::Event{up_done});
      const double kernel_s = run_slab(i, bufs, x_dev, agg, launches);
      const double c_start = tl.now(compute);
      comp_done[i] = tl.enqueue(compute, kernel_s,
                                "spmv:slab" + std::to_string(i));
      if (traced) [[unlikely]]
        slo::Tracer::instance().add(slo::SpanKind::kCompute,
                                    "spmv:slab" + std::to_string(i),
                                    "compute", base + c_start,
                                    base + comp_done[i]);
      compute_busy += kernel_s;

      const auto& yh = bufs.y.host();
      std::copy(yh.begin(), yh.end(),
                y.begin() + static_cast<std::ptrdiff_t>(slabs_[i].row_begin));
      live.push_back(std::move(bufs));
      tier.poll(tl.now(compute));
    }
    tier.drain();
    } catch (...) {
      // A fault aborts this attempt and the resilient driver retries on a
      // fresh timeline — but the aborted work's spans are already in the
      // tracer. Advance the anchor past it (so the retry's spans follow
      // instead of overlapping) and retain its log for charge parity.
      if (traced) [[unlikely]] retain_trace(tl, base);
      throw;
    }
    const double busy = tl.busy_seconds();
    last_makespan_ = tl.synchronize();
    if (traced) [[unlikely]] retain_trace(tl, base);

    last_io_ = tier.stats();
    last_io_.stall_s = stall_s;
    // Work minus span: > 0 iff any two streams were ever busy at the
    // same instant — the prefetch/compute overlap the tier exists for.
    last_io_.overlap_s = std::max(0.0, busy - last_makespan_);
    (void)compute_busy;

    agg.name = "ooc-csr";
    this->report_.last_run = agg;
    return last_makespan_;
  }

 private:
  /// One row-slab of the on-"disk" slab-packed layout: the slab's
  /// row_off slice, col_idx slice and vals slice stored contiguously at
  /// file_offset.
  struct Slab {
    mat::index_t row_begin = 0;
    mat::index_t row_end = 0;
    std::size_t file_offset = 0;
    std::size_t bytes = 0;       ///< row_off + col_idx + vals slices
    std::size_t meta_bytes = 0;  ///< bin row maps
    /// Slab-local row ids binned by vector size: bin b holds rows run
    /// with V = 2 << b lanes (the ACSR discipline at slab granularity).
    std::array<std::vector<mat::index_t>, 5> bins;
  };

  /// Host staging a drive read delivers into (storage -> host -> device).
  struct Stage {
    std::vector<mat::offset_t> row_off;
    std::vector<mat::index_t> col_idx;
    std::vector<T> vals;
  };

  /// The double-buffered device-resident set for one slab.
  struct SlabDev {
    vgpu::DeviceBuffer<mat::offset_t> row_off;
    vgpu::DeviceBuffer<mat::index_t> col_idx;
    vgpu::DeviceBuffer<T> vals;
    std::array<vgpu::DeviceBuffer<mat::index_t>, 5> bins;
    vgpu::DeviceBuffer<T> y;
    std::size_t meta_bytes = 0;
  };

  static std::size_t slab_data_bytes(mat::index_t rows, mat::offset_t nz) {
    return (static_cast<std::size_t>(rows) + 1) * sizeof(mat::offset_t) +
           static_cast<std::size_t>(nz) *
               (sizeof(mat::index_t) + sizeof(T));
  }

  /// Greedy row partition: consecutive rows until the slab set would
  /// exceed half the budget (two sets are resident while streaming). A
  /// single row heavier than the cap still gets its own slab — it must
  /// run somewhere.
  void partition() {
    const std::size_t cap = std::max<std::size_t>(budget_ / 2, 4096);
    std::size_t file_offset = 0;
    mat::index_t r = 0;
    while (r < host_.rows) {
      mat::index_t e = r;
      while (e < host_.rows) {
        const mat::offset_t nz =
            host_.row_off[static_cast<std::size_t>(e) + 1] -
            host_.row_off[static_cast<std::size_t>(r)];
        if (e > r && slab_data_bytes(e + 1 - r, nz) > cap) break;
        ++e;
      }
      Slab s;
      s.row_begin = r;
      s.row_end = e;
      s.file_offset = file_offset;
      const mat::offset_t nz = host_.row_off[static_cast<std::size_t>(e)] -
                               host_.row_off[static_cast<std::size_t>(r)];
      s.bytes = slab_data_bytes(e - r, nz);
      for (mat::index_t row = r; row < e; ++row) {
        const mat::offset_t len =
            host_.row_off[static_cast<std::size_t>(row) + 1] -
            host_.row_off[static_cast<std::size_t>(row)];
        if (len == 0) continue;  // empty rows store nothing; y stays 0
        const int v = spmv::choose_vector_size(static_cast<double>(len));
        int b = 0;
        while ((2 << b) != v) ++b;
        s.bins[static_cast<std::size_t>(b)].push_back(row - r);
      }
      for (const auto& bin : s.bins)
        s.meta_bytes += bin.size() * sizeof(mat::index_t);
      file_offset += s.bytes;
      slabs_.push_back(std::move(s));
      r = e;
    }
  }

  /// Issue slab i's chunk read on the tier, delivering into fresh host
  /// staging. Returns the simulated completion time.
  double submit_read(storage::StorageTier& tier, std::vector<Stage>& staged,
                     std::size_t i) {
    const Slab& s = slabs_[i];
    Stage& st = staged[i];
    const auto nrows = static_cast<std::size_t>(s.row_end - s.row_begin);
    const auto base = static_cast<std::size_t>(s.row_begin);
    const auto nz0 = static_cast<std::size_t>(host_.row_off[base]);
    const auto nz = static_cast<std::size_t>(
                        host_.row_off[base + nrows]) - nz0;
    st.row_off.resize(nrows + 1);
    st.col_idx.resize(nz);
    st.vals.resize(nz);
    std::vector<storage::Segment> segs;
    auto add = [&segs](storage::Segment seg) {
      if (seg.bytes > 0) segs.push_back(seg);
    };
    add(storage::make_segment(host_.row_off, base, st.row_off, nrows + 1));
    add(storage::make_segment(host_.col_idx, nz0, st.col_idx, nz));
    add(storage::make_segment(host_.vals, nz0, st.vals, nz));
    return tier.read_chunk("slab" + std::to_string(i), s.file_offset,
                           std::move(segs));
  }

  /// Allocate slab i's device set and fill it from the delivered staging
  /// (rebasing the row offsets to the slab's value window).
  SlabDev make_buffers(std::size_t i, Stage& st) {
    const Slab& s = slabs_[i];
    const std::string tag = "ooc.slab" + std::to_string(i);
    const mat::offset_t rebase = st.row_off.front();
    for (mat::offset_t& o : st.row_off) o -= rebase;
    SlabDev d;
    d.row_off = this->dev_.template alloc<mat::offset_t>(st.row_off.size(),
                                                         tag + ".row_off");
    d.row_off.host() = st.row_off;
    d.col_idx = this->dev_.template alloc<mat::index_t>(st.col_idx.size(),
                                                        tag + ".col_idx");
    d.col_idx.host() = st.col_idx;
    d.vals = this->dev_.template alloc<T>(st.vals.size(), tag + ".vals");
    d.vals.host() = st.vals;
    for (std::size_t b = 0; b < s.bins.size(); ++b) {
      if (s.bins[b].empty()) continue;
      d.bins[b] = this->dev_.template alloc<mat::index_t>(
          s.bins[b].size(), tag + ".bin" + std::to_string(2 << b));
      d.bins[b].host() = s.bins[b];
    }
    d.y = this->dev_.template alloc<T>(
        static_cast<std::size_t>(s.row_end - s.row_begin), tag + ".y");
    d.meta_bytes = s.meta_bytes;
    return d;
  }

  /// Move the anchor past this timeline's work and append its log,
  /// rebased to absolute trace time (see trace_timeline_log()).
  void retain_trace(const vgpu::StreamTimeline& tl, double base) {
    double end = 0.0;
    for (const vgpu::StreamTimeline::LogEntry& e : tl.log())
      end = std::max(end, e.end_s);
    slo::Tracer::instance().advance_anchor(base + end);
    for (const vgpu::StreamTimeline::LogEntry& e : tl.log())
      trace_log_.push_back({e.stream, base + e.start_s, base + e.end_s,
                            e.tag});
  }

  /// Charge one H2D transfer to the device/report; returns its duration
  /// for the h2d stream.
  double charge_transfer(std::size_t bytes) {
    const vgpu::TransferRun tr = this->dev_.note_transfer(bytes);
    this->report_.h2d_bytes += tr.bytes;
    this->report_.h2d_s += tr.duration_s;
    return tr.duration_s;
  }

  /// Launch slab i's per-bin grids concurrently; returns the group's
  /// combined simulated seconds.
  double run_slab(std::size_t i, SlabDev& d,
                  vgpu::DeviceSpan<const T> x_dev, vgpu::KernelRun& agg,
                  std::uint64_t& launches) {
    const Slab& s = slabs_[i];
    const auto nrows = static_cast<std::size_t>(s.row_end - s.row_begin);
    if (nrows == 0) return 0.0;
    auto rs = d.row_off.cspan().subspan(0, nrows);
    auto re = d.row_off.cspan().subspan(1, nrows);
    auto ci = d.col_idx.cspan();
    auto va = d.vals.cspan();
    auto ys = d.y.span();
    vgpu::ConcurrentGroup group(this->dev_);
    for (std::size_t b = 0; b < s.bins.size(); ++b) {
      if (s.bins[b].empty()) continue;
      const int v = 2 << b;
      const int rows_per_warp = vgpu::kWarpSize / v;
      const long long n_slots =
          static_cast<long long>(s.bins[b].size());
      const long long warps = (n_slots + rows_per_warp - 1) / rows_per_warp;
      vgpu::LaunchConfig cfg;
      cfg.name = "ooc_slab_bin" + std::to_string(v);
      cfg.block_dim = 128;
      cfg.grid_dim = std::max<long long>(1, (warps + 3) / 4);
      auto row_map = d.bins[b].cspan();
      const bool tex = opt_.use_texture;
      const vgpu::KernelRun run =
          group.launch_warps(cfg, [&](vgpu::Warp& w) {
            const long long first = w.global_warp() * rows_per_warp;
            if (first >= n_slots) return;
            spmv::csr_vector_warp<T>(w, v, rs, re, ci, va, x_dev, ys,
                                     row_map, n_slots, first, tex);
          });
      if (launches == 0) {
        agg = run;
      } else {
        agg.counters += run.counters;
        agg.duration_s += run.duration_s;
      }
      ++launches;
    }
    return group.runs().empty() ? 0.0 : group.seconds();
  }

  mat::Csr<T> host_;
  OocOptions opt_;
  std::size_t budget_ = 0;
  std::vector<Slab> slabs_;
  prof::IoAgg last_io_;
  double last_makespan_ = 0.0;
  std::vector<vgpu::StreamTimeline::LogEntry> trace_log_;
};

/// Shape class of the slab bin grids: the csr_vector structure over a
/// slab-local injective row map (each slab row in at most one bin), with
/// slab-local extent arrays and a slab-local y — the same soundness
/// grounds as the ACSR bin grids (docs/ANALYSIS.md). n_rows here is the
/// *slab* height; col_idx stays global because x is fully resident.
inline analysis::ShapeClass ooc_shape_class() {
  namespace an = acsr::analysis;
  const an::Sym n_rows = an::Sym::param("n_rows");
  const an::Sym n_cols = an::Sym::param("n_cols");
  const an::Sym nnz = an::Sym::param("nnz");
  const an::Sym n_slots = an::Sym::param("n_slots");
  an::ShapeClass sc;
  sc.engine = "ooc-csr";
  sc.params = {an::param("n_rows", 0, "slab rows"),
               an::param("n_cols", 0, "matrix columns"),
               an::param("nnz", 0, "slab non-zeros"),
               an::param("n_slots", 0, "rows in the launched bin"),
               an::param("grid", 1, "launch grid dim")};
  sc.spans = {
      an::index_span("row_start", n_rows, {an::Sym(0), nnz},
                     "slab-rebased per-row begin offsets", true),
      an::index_span("row_end", n_rows, {an::Sym(0), nnz},
                     "slab-rebased per-row end offsets", true),
      an::index_span("col_idx", nnz, {an::Sym(0), n_cols - an::Sym(1)},
                     "column indices (global: x is resident)"),
      an::data_span("vals", nnz, "slab non-zero values"),
      an::data_span("x", n_cols, "input vector"),
      an::data_span("y", n_rows, "slab output vector",
                    /*initialized=*/false),
      an::index_span("ooc.bin_rows", n_slots,
                     {an::Sym(0), n_rows - an::Sym(1)},
                     "slab-local bin row maps (each row in at most one bin)",
                     false, true),
  };
  return sc;
}

}  // namespace acsr::core
