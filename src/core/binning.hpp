// ACSR row binning (Algorithm 1's preprocessing).
//
// Rows are grouped by non-zero count into power-of-two bins: bin i holds
// rows with nnz in (2^{i-1}, 2^i] (bin 1 = 1-2 nnz, bin 2 = 3-4, ...).
// Bins up to BinMax get bin-specific kernels with a thread-group size
// matched to the bin (group G2 in the paper); rows in larger bins — the
// power-law long tail — are routed to dynamic parallelism, capped at
// RowMax rows so the device's pending-launch limit is respected (group G1).
// The scan is a single O(rows) pass over row lengths and moves no matrix
// data: that is the whole point of ACSR versus transformed formats.
#pragma once

#include <vector>

#include "mat/types.hpp"
#include "vgpu/host_model.hpp"

namespace acsr::core {

struct BinningOptions {
  /// Largest bin index handled by a bin-specific kernel; rows in bins
  /// above this (nnz > 2^bin_max = 256) are candidates for dynamic
  /// parallelism.
  int bin_max = 8;
  /// Maximum number of row-specific (child) grids, mirroring
  /// cudaLimitDevRuntimePendingLaunchCount.
  int row_max = 2048;
  /// Master switch; false = binning-only ACSR (Fermi / K10 path).
  bool enable_dp = true;
};

struct Binning {
  /// bins[i] = rows with nnz in (2^{i-1}, 2^i], for bins handled by
  /// bin-specific kernels. Index 0 (empty rows) is never launched.
  std::vector<std::vector<mat::index_t>> bins;
  /// Rows processed through the dynamic-parallelism parent kernel,
  /// descending by nnz.
  std::vector<mat::index_t> dp_rows;
  BinningOptions options;

  int num_nonempty_bins() const {
    int n = 0;
    for (std::size_t i = 1; i < bins.size(); ++i)
      if (!bins[i].empty()) ++n;
    return n;
  }

  /// Thread-group (vector) size for bin i: 2^{i-1} capped at the warp.
  static int vector_size_for_bin(std::size_t i) {
    if (i <= 1) return 1;
    const std::size_t v = std::size_t{1} << (i - 1);
    return v >= 32 ? 32 : static_cast<int>(v);
  }

  /// The single O(rows) scan. row_nnz[r] = non-zeros of row r.
  /// Charges one pass to the host model (the paper's "preprocessing is
  /// limited to efficient scanning of row-lengths").
  static Binning build(const std::vector<mat::offset_t>& row_nnz,
                       const BinningOptions& opt,
                       vgpu::HostModel* hm = nullptr);
};

}  // namespace acsr::core
