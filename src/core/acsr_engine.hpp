// ACSR — the paper's contribution (Algorithms 1-4).
//
// Split into two layers:
//   * AcsrLauncher — owns the bin metadata (the only thing ACSR adds on
//     top of CSR) and executes the launch sequence against *any* CSR-shaped
//     device arrays: one bin-specific grid per non-empty bin (Algorithm 2),
//     plus the dynamic-parallelism parent grid (Algorithm 3) whose threads
//     launch a row-specific child grid per long-tail row (Algorithm 4).
//     The dynamic-graph driver reuses a launcher over the incremental
//     (slack-padded) CSR without touching the matrix data.
//   * AcsrEngine — the SpmvEngine facade: uploads the CSR arrays, bins the
//     rows (one O(rows) host scan), and delegates to the launcher.
// On devices without CC >= 3.5 (GTX 580, Tesla K10) ACSR degrades to
// binning-only: tail rows are handled by the widest bin kernels.
#pragma once

#include <algorithm>
#include <optional>
#include <string>

#include "analysis/shape.hpp"
#include "core/binning.hpp"
#include "prof/prof.hpp"
#include "spmv/csr_device.hpp"
#include "spmv/csr_vector.hpp"
#include "spmv/engine.hpp"

namespace acsr::core {

struct AcsrOptions {
  BinningOptions binning;
  /// Elements per child-kernel thread (thread-coarsening knob of Alg. 3).
  int thread_load = 8;
  /// Issue the per-bin grids on independent streams (concurrent kernels).
  /// false serialises them — the ablation bench measures the difference.
  bool concurrent_streams = true;
  /// Read x through the texture path, as the paper (and cuSPARSE/CUSP)
  /// does; false uses plain global loads — the ablation's comparison.
  bool use_texture = true;
};

template <class T>
class AcsrLauncher {
 public:
  AcsrLauncher(vgpu::Device& dev, Binning binning, AcsrOptions opt)
      : dev_(dev), binning_(std::move(binning)), opt_(opt) {
    upload_metadata();
  }

  const Binning& binning() const { return binning_; }
  /// Table V columns: bin-specific and row-specific grids per SpMV.
  int bin_grids() const { return binning_.num_nonempty_bins(); }
  int row_grids() const { return static_cast<int>(binning_.dp_rows.size()); }
  std::size_t metadata_bytes() const { return metadata_bytes_; }
  double metadata_upload_s() const { return metadata_upload_s_; }

  /// One SpMV over the given extent arrays (plain CSR passes
  /// row_off[0..rows) / row_off[1..rows+1); incremental CSR its explicit
  /// begin/end arrays). Returns simulated seconds; `agg` receives the
  /// summed kernel record when non-null.
  double run(vgpu::DeviceSpan<const mat::offset_t> row_start,
             vgpu::DeviceSpan<const mat::offset_t> row_end,
             vgpu::DeviceSpan<const mat::index_t> col_idx,
             vgpu::DeviceSpan<const T> vals, vgpu::DeviceSpan<const T> xs,
             vgpu::DeviceSpan<T> ys, vgpu::KernelRun* agg = nullptr) {
    std::vector<vgpu::KernelRun> runs;
    // On independent streams the grids execute concurrently and share L2
    // (their row sweeps are aligned); serialised mode forgoes both.
    vgpu::ConcurrentGroup group(dev_);
    const bool conc = opt_.concurrent_streams;
    auto do_launch = [&](const vgpu::LaunchConfig& cfg, auto&& body) {
      runs.push_back(conc ? group.launch_warps(cfg, body)
                          : dev_.launch_warps(cfg, body));
    };


    // --- Bin-specific grids (Algorithm 2). --------------------------------
    for (std::size_t i = 1; i < binning_.bins.size(); ++i) {
      const auto& rows_in_bin = binning_.bins[i];
      if (rows_in_bin.empty()) continue;
      const int v = Binning::vector_size_for_bin(i);
      const int rows_per_warp = vgpu::kWarpSize / v;
      const long long n_slots = static_cast<long long>(rows_in_bin.size());
      const long long warps = (n_slots + rows_per_warp - 1) / rows_per_warp;
      vgpu::LaunchConfig cfg;
      cfg.name = "acsr_bin" + std::to_string(i);
      cfg.block_dim = 128;
      cfg.grid_dim = std::max<long long>(1, (warps + 3) / 4);
      if (prof::profiler_enabled()) [[unlikely]]
        prof::Profiler::instance().annotate_next_launch(
            "bin=" + std::to_string(i) +
            " rows=" + std::to_string(rows_in_bin.size()) +
            " vector_size=" + std::to_string(v));
      auto row_map = bin_rows_dev_[i].cspan();
      do_launch(cfg, [&](vgpu::Warp& w) {
        const long long first = w.global_warp() * rows_per_warp;
        if (first >= n_slots) return;
        spmv::csr_vector_warp<T>(w, v, row_start, row_end, col_idx, vals,
                                 xs, ys, row_map, n_slots, first,
                                 opt_.use_texture);
      });
    }

    // --- Dynamic-parallelism parent grid (Algorithm 3). -------------------
    if (!binning_.dp_rows.empty()) {
      const long long n_dp = static_cast<long long>(binning_.dp_rows.size());
      vgpu::LaunchConfig cfg;
      cfg.name = "acsr_dp_parent";
      cfg.block_dim = 32;
      cfg.grid_dim = (n_dp + 31) / 32;
      if (prof::profiler_enabled()) [[unlikely]]
        prof::Profiler::instance().annotate_next_launch(
            "dp_rows=" + std::to_string(n_dp));
      auto dp_rows = dp_rows_dev_.cspan();
      const int thread_load = opt_.thread_load;
      do_launch(cfg, [&](vgpu::Warp& w) {
        using vgpu::LaneArray;
        using vgpu::Mask;
        LaneArray<long long> tid = w.global_threads();
        const Mask live = tid.where(
            [n_dp](long long t) { return t < n_dp; }, w.active_mask());
        if (live == 0) return;
        const LaneArray<mat::index_t> row = w.load(dp_rows, tid, live);
        const LaneArray<mat::offset_t> start = w.load(row_start, row, live);
        const LaneArray<mat::offset_t> end = w.load(row_end, row, live);
        // The children *accumulate* (Algorithm 4's inter-block reduction),
        // so the parent clears its rows before launching them.
        w.store(ys, row, LaneArray<T>::filled(T{0}), live);
        w.count_alu(4);  // bSize computation
        for (int l = 0; l < vgpu::kWarpSize; ++l) {
          if (!vgpu::lane_active(live, l)) continue;
          launch_row_child(w, row[l], start[l], end[l], col_idx, vals, xs,
                           ys, thread_load, opt_.use_texture);
        }
      });
    }

    if (agg != nullptr) {
      *agg = runs.empty() ? vgpu::KernelRun{} : runs.front();
      for (std::size_t i = 1; i < runs.size(); ++i) {
        agg->counters += runs[i].counters;
        agg->duration_s += runs[i].duration_s;
      }
      agg->name = "acsr";
    }
    if (runs.empty()) return 0.0;
    return conc ? group.seconds() : vgpu::combine_sequential(runs);
  }

 private:
  /// Algorithm 3 body for one parent lane: size and launch the
  /// row-specific child grid (Algorithm 4).
  static void launch_row_child(vgpu::Warp& w, mat::index_t row,
                               mat::offset_t start, mat::offset_t end,
                               vgpu::DeviceSpan<const mat::index_t> col_idx,
                               vgpu::DeviceSpan<const T> vals,
                               vgpu::DeviceSpan<const T> xs,
                               vgpu::DeviceSpan<T> ys, int thread_load,
                               bool use_tex) {
    const long long nnz = end - start;
    if (nnz <= 0) return;
    const long long want_threads = (nnz + thread_load - 1) / thread_load;
    const int block_dim = static_cast<int>(
        std::min<long long>(256, ((want_threads + 31) / 32) * 32));
    vgpu::LaunchConfig child;
    child.name = "acsr_row" + std::to_string(row);
    child.block_dim = block_dim;
    child.grid_dim =
        std::max<long long>(1, (want_threads + block_dim - 1) / block_dim);
    const long long total_threads = child.grid_dim * child.block_dim;

    w.launch_child(child, [row, start, end, col_idx, vals, xs, ys,
                           total_threads, use_tex](vgpu::Block& blk) {
      // Phase 1: grid-stride partial sums, one per warp, into shared.
      auto partials =
          blk.shared<T>(static_cast<std::size_t>(blk.warps_per_block()));
      blk.each_warp([&](vgpu::Warp& cw) {
        using vgpu::LaneArray;
        using vgpu::Mask;
        const LaneArray<long long> tid = cw.global_threads();
        LaneArray<mat::offset_t> i;
        for (int l = 0; l < vgpu::kWarpSize; ++l) i[l] = start + tid[l];
        LaneArray<T> sum{};
        for (;;) {
          Mask m = 0;
          for (int l = 0; l < vgpu::kWarpSize; ++l)
            if (vgpu::lane_active(cw.active_mask(), l) && i[l] < end)
              m |= vgpu::lane_bit(l);
          if (m == 0) break;
          const LaneArray<mat::index_t> col = cw.load(col_idx, i, m);
          const LaneArray<T> val = cw.load(vals, i, m);
          const LaneArray<T> xv =
              use_tex ? cw.load_tex(xs, col, m)
                      : cw.load_gather_uncached(xs, col, m);
          vgpu::fma_into(sum, val, xv, m);
          cw.count_flops(m, 2, sizeof(T) == 8);
          cw.count_alu(2);
          for (int l = 0; l < vgpu::kWarpSize; ++l)
            if (vgpu::lane_active(m, l)) i[l] += total_threads;
        }
        sum = cw.reduce_add(sum, cw.active_mask(), vgpu::kWarpSize);
        partials[static_cast<std::size_t>(cw.warp_in_block())] = sum[0];
        cw.count_smem(1);
      });
      blk.sync();
      // Phase 2: warp 0 folds the per-warp partials, lane 0 publishes.
      blk.each_warp([&](vgpu::Warp& cw) {
        if (cw.warp_in_block() != 0) return;
        using vgpu::LaneArray;
        T total{0};
        for (std::size_t p = 0; p < partials.size(); ++p)
          total += partials[p];
        cw.count_smem(static_cast<int>(partials.size()));
        cw.count_flops(vgpu::lane_bit(0),
                       static_cast<int>(partials.size()), sizeof(T) == 8);
        LaneArray<mat::index_t> rr{};
        LaneArray<T> vv{};
        rr[0] = row;
        vv[0] = total;
        cw.atomic_add(ys, rr, vv, vgpu::lane_bit(0));
      });
    });
  }

  void upload_metadata() {
    metadata_bytes_ = 0;
    bin_rows_dev_.clear();
    bin_rows_dev_.resize(binning_.bins.size());
    for (std::size_t i = 1; i < binning_.bins.size(); ++i) {
      if (binning_.bins[i].empty()) continue;
      bin_rows_dev_[i] = dev_.template alloc<mat::index_t>(
          binning_.bins[i].size(), "acsr.bin" + std::to_string(i));
      bin_rows_dev_[i].host() = binning_.bins[i];
      metadata_bytes_ += bin_rows_dev_[i].bytes();
    }
    if (!binning_.dp_rows.empty()) {
      dp_rows_dev_ = dev_.template alloc<mat::index_t>(
          binning_.dp_rows.size(), "acsr.dp_rows");
      dp_rows_dev_.host() = binning_.dp_rows;
      metadata_bytes_ += dp_rows_dev_.bytes();
    }
    metadata_upload_s_ = dev_.note_transfer(metadata_bytes_).duration_s;
  }

  vgpu::Device& dev_;
  Binning binning_;
  AcsrOptions opt_;
  std::vector<vgpu::DeviceBuffer<mat::index_t>> bin_rows_dev_;
  vgpu::DeviceBuffer<mat::index_t> dp_rows_dev_;
  std::size_t metadata_bytes_ = 0;
  double metadata_upload_s_ = 0.0;
};

/// Bin a CSR matrix: the one-scan preprocessing of Algorithm 1, with DP
/// force-disabled when the device lacks CC >= 3.5.
template <class T>
Binning bin_matrix(const mat::Csr<T>& a, const vgpu::Device& dev,
                   BinningOptions opt, vgpu::HostModel* hm = nullptr) {
  opt.enable_dp = opt.enable_dp && dev.spec().supports_dynamic_parallelism();
  std::vector<mat::offset_t> row_nnz(static_cast<std::size_t>(a.rows));
  for (mat::index_t r = 0; r < a.rows; ++r)
    row_nnz[static_cast<std::size_t>(r)] = a.row_nnz(r);
  return Binning::build(row_nnz, opt, hm);
}

template <class T>
class AcsrEngine final : public spmv::EngineBase<T> {
 public:
  /// `preset_binning` lets the multi-GPU partitioner inject a per-device
  /// share of each bin; by default the engine bins the whole matrix.
  AcsrEngine(vgpu::Device& dev, const mat::Csr<T>& a, AcsrOptions opt = {},
             std::optional<Binning> preset_binning = std::nullopt)
      : spmv::EngineBase<T>(dev, "ACSR"), host_(a) {
    vgpu::HostModel hm;
    dev_csr_ = spmv::CsrDevice<T>::upload(dev, a, this->name());
    this->charge_upload(dev_csr_.bytes());

    Binning b = preset_binning.has_value()
                    ? std::move(*preset_binning)
                    : bin_matrix(a, dev, opt.binning, &hm);
    launcher_.emplace(dev, std::move(b), opt);
    this->report_.preprocess_s = hm.seconds();
    this->report_.h2d_bytes += launcher_->metadata_bytes();
    this->report_.h2d_s += launcher_->metadata_upload_s();
    this->report_.device_bytes =
        dev_csr_.bytes() + launcher_->metadata_bytes();
  }

  mat::index_t rows() const override { return host_.rows; }
  mat::index_t cols() const override { return host_.cols; }
  mat::offset_t nnz() const override { return host_.nnz(); }

  const Binning& binning() const { return launcher_->binning(); }
  int bin_grids() const { return launcher_->bin_grids(); }
  int row_grids() const { return launcher_->row_grids(); }
  bool dynamic_parallelism_active() const { return row_grids() > 0; }

  void apply(const std::vector<T>& x, std::vector<T>& y) const override {
    host_.spmv(x, y);
  }

  double simulate(const std::vector<T>& x, std::vector<T>& y) override {
    ACSR_CHECK(static_cast<mat::index_t>(x.size()) == host_.cols);
    auto x_dev = this->stage_x(x);
    auto y_dev = this->stage_y(static_cast<std::size_t>(host_.rows));
    const auto nrows = static_cast<std::size_t>(host_.rows);
    const double t = launcher_->run(
        dev_csr_.row_off.cspan().subspan(0, nrows),
        dev_csr_.row_off.cspan().subspan(1, nrows), dev_csr_.col_idx.cspan(),
        dev_csr_.vals.cspan(), x_dev, y_dev,
        &this->report_.last_run);
    y = this->staged_y();
    return t;
  }

 private:
  mat::Csr<T> host_;
  spmv::CsrDevice<T> dev_csr_;
  std::optional<AcsrLauncher<T>> launcher_;
};

/// Shape class of the ACSR launch sequence (Algorithms 2-4). Key format
/// invariants from Binning::build: every row lands in exactly one bin-or-
/// dp list (both maps injective, so the bin grids' plain y stores and the
/// DP parent's clearing store cannot collide), and the number of tail
/// rows is hard-capped at BinningOptions::row_max — which is what keeps
/// the per-SpMV device-launch count under the Table II pending-launch
/// limit (cudaLimitDevRuntimePendingLaunchCount, 2048).
inline analysis::ShapeClass acsr_shape_class() {
  namespace an = acsr::analysis;
  const an::Sym n_rows = an::Sym::param("n_rows");
  const an::Sym n_cols = an::Sym::param("n_cols");
  const an::Sym nnz = an::Sym::param("nnz");
  const an::Sym n_slots = an::Sym::param("n_slots");
  const an::Sym n_dp = an::Sym::param("n_dp");
  an::ShapeClass sc;
  sc.engine = "acsr";
  sc.params = {
      an::param("n_rows", 0, "matrix rows"),
      an::param("n_cols", 0, "matrix columns"),
      an::param("nnz", 0, "stored non-zeros"),
      an::param("n_slots", 0, "rows handled by bin grids"),
      an::param("n_dp", 0, BinningOptions{}.row_max,
                "tail rows (capped by BinningOptions::row_max)"),
      an::param("grid", 1, "launch grid dim"),
      an::param("child_grid", 1, "row-child grid dim"),
  };
  sc.spans = {
      an::index_span("row_start", n_rows, {an::Sym(0), nnz},
                     "per-row begin offsets", true),
      an::index_span("row_end", n_rows, {an::Sym(0), nnz},
                     "per-row end offsets", true),
      an::index_span("col_idx", nnz, {an::Sym(0), n_cols - an::Sym(1)},
                     "column indices"),
      an::data_span("vals", nnz, "non-zero values"),
      an::data_span("x", n_cols, "input vector"),
      an::data_span("y", n_rows, "output vector", /*initialized=*/false),
      an::index_span("acsr.bin_rows", n_slots,
                     {an::Sym(0), n_rows - an::Sym(1)},
                     "bin row maps (each row in at most one bin)", false,
                     true),
      an::index_span("acsr.dp_rows", n_dp,
                     {an::Sym(0), n_rows - an::Sym(1)},
                     "tail rows for dynamic parallelism", false, true),
  };
  return sc;
}

}  // namespace acsr::core
