// ACSR — the paper's contribution (Algorithms 1-4).
//
// Split into two layers:
//   * AcsrLauncher — owns the bin metadata (the only thing ACSR adds on
//     top of CSR) and executes the launch sequence against *any* CSR-shaped
//     device arrays: one bin-specific grid per non-empty bin (Algorithm 2),
//     plus the dynamic-parallelism parent grid (Algorithm 3) whose threads
//     launch a row-specific child grid per long-tail row (Algorithm 4).
//     The dynamic-graph driver reuses a launcher over the incremental
//     (slack-padded) CSR without touching the matrix data.
//   * AcsrEngine — the SpmvEngine facade: uploads the CSR arrays, bins the
//     rows (one O(rows) host scan), and delegates to the launcher.
// On devices without CC >= 3.5 (GTX 580, Tesla K10) ACSR degrades to
// binning-only: tail rows are handled by the widest bin kernels.
#pragma once

#include <algorithm>
#include <bit>
#include <optional>
#include <string>
#include <vector>

#include "analysis/shape.hpp"
#include "core/binning.hpp"
#include "prof/prof.hpp"
#include "spmv/csr_device.hpp"
#include "spmv/csr_vector.hpp"
#include "spmv/engine.hpp"

namespace acsr::core {

struct AcsrOptions {
  BinningOptions binning;
  /// Elements per child-kernel thread (thread-coarsening knob of Alg. 3).
  int thread_load = 8;
  /// Issue the per-bin grids on independent streams (concurrent kernels).
  /// false serialises them — the ablation bench measures the difference.
  bool concurrent_streams = true;
  /// Read x through the texture path, as the paper (and cuSPARSE/CUSP)
  /// does; false uses plain global loads — the ablation's comparison.
  bool use_texture = true;
};

template <class T>
class AcsrLauncher {
 public:
  AcsrLauncher(vgpu::Device& dev, Binning binning, AcsrOptions opt)
      : dev_(dev), binning_(std::move(binning)), opt_(opt) {
    upload_metadata();
  }

  const Binning& binning() const { return binning_; }
  /// Table V columns: bin-specific and row-specific grids per SpMV.
  int bin_grids() const { return binning_.num_nonempty_bins(); }
  int row_grids() const { return static_cast<int>(binning_.dp_rows.size()); }
  std::size_t metadata_bytes() const { return metadata_bytes_; }
  double metadata_upload_s() const { return metadata_upload_s_; }

  /// One SpMV over the given extent arrays (plain CSR passes
  /// row_off[0..rows) / row_off[1..rows+1); incremental CSR its explicit
  /// begin/end arrays). Returns simulated seconds; `agg` receives the
  /// summed kernel record when non-null.
  double run(vgpu::DeviceSpan<const mat::offset_t> row_start,
             vgpu::DeviceSpan<const mat::offset_t> row_end,
             vgpu::DeviceSpan<const mat::index_t> col_idx,
             vgpu::DeviceSpan<const T> vals, vgpu::DeviceSpan<const T> xs,
             vgpu::DeviceSpan<T> ys, vgpu::KernelRun* agg = nullptr) {
    std::vector<vgpu::KernelRun> runs;
    // On independent streams the grids execute concurrently and share L2
    // (their row sweeps are aligned); serialised mode forgoes both.
    vgpu::ConcurrentGroup group(dev_);
    const bool conc = opt_.concurrent_streams;
    auto do_launch = [&](const vgpu::LaunchConfig& cfg, auto&& body) {
      runs.push_back(conc ? group.launch_warps(cfg, body)
                          : dev_.launch_warps(cfg, body));
    };


    // --- Bin-specific grids (Algorithm 2). --------------------------------
    for (std::size_t i = 1; i < binning_.bins.size(); ++i) {
      const auto& rows_in_bin = binning_.bins[i];
      if (rows_in_bin.empty()) continue;
      const int v = Binning::vector_size_for_bin(i);
      const int rows_per_warp = vgpu::kWarpSize / v;
      const long long n_slots = static_cast<long long>(rows_in_bin.size());
      const long long warps = (n_slots + rows_per_warp - 1) / rows_per_warp;
      vgpu::LaunchConfig cfg;
      cfg.name = "acsr_bin" + std::to_string(i);
      cfg.block_dim = 128;
      cfg.grid_dim = std::max<long long>(1, (warps + 3) / 4);
      if (prof::profiler_enabled()) [[unlikely]]
        prof::Profiler::instance().annotate_next_launch(
            "bin=" + std::to_string(i) +
            " rows=" + std::to_string(rows_in_bin.size()) +
            " vector_size=" + std::to_string(v));
      auto row_map = bin_rows_dev_[i].cspan();
      do_launch(cfg, [&](vgpu::Warp& w) {
        const long long first = w.global_warp() * rows_per_warp;
        if (first >= n_slots) return;
        spmv::csr_vector_warp<T>(w, v, row_start, row_end, col_idx, vals,
                                 xs, ys, row_map, n_slots, first,
                                 opt_.use_texture);
      });
    }

    // --- Dynamic-parallelism parent grid (Algorithm 3). -------------------
    if (!binning_.dp_rows.empty()) {
      const long long n_dp = static_cast<long long>(binning_.dp_rows.size());
      vgpu::LaunchConfig cfg;
      cfg.name = "acsr_dp_parent";
      cfg.block_dim = 32;
      cfg.grid_dim = (n_dp + 31) / 32;
      if (prof::profiler_enabled()) [[unlikely]]
        prof::Profiler::instance().annotate_next_launch(
            "dp_rows=" + std::to_string(n_dp));
      auto dp_rows = dp_rows_dev_.cspan();
      const int thread_load = opt_.thread_load;
      do_launch(cfg, [&](vgpu::Warp& w) {
        using vgpu::LaneArray;
        using vgpu::Mask;
        LaneArray<long long> tid = w.global_threads();
        const Mask live = tid.where(
            [n_dp](long long t) { return t < n_dp; }, w.active_mask());
        if (live == 0) return;
        const LaneArray<mat::index_t> row = w.load(dp_rows, tid, live);
        const LaneArray<mat::offset_t> start = w.load(row_start, row, live);
        const LaneArray<mat::offset_t> end = w.load(row_end, row, live);
        // The children *accumulate* (Algorithm 4's inter-block reduction),
        // so the parent clears its rows before launching them.
        w.store(ys, row, LaneArray<T>::filled(T{0}), live);
        w.count_alu(4);  // bSize computation
        for (int l = 0; l < vgpu::kWarpSize; ++l) {
          if (!vgpu::lane_active(live, l)) continue;
          launch_row_child(w, row[l], start[l], end[l], col_idx, vals, xs,
                           ys, thread_load, opt_.use_texture);
        }
      });
    }

    if (agg != nullptr) {
      *agg = runs.empty() ? vgpu::KernelRun{} : runs.front();
      for (std::size_t i = 1; i < runs.size(); ++i) {
        agg->counters += runs[i].counters;
        agg->duration_s += runs[i].duration_s;
      }
      agg->name = "acsr";
    }
    if (runs.empty()) return 0.0;
    return conc ? group.seconds() : vgpu::combine_sequential(runs);
  }

  /// One column-blocked SpMM over the same extent arrays: per-bin row
  /// group x vector-block tile grids (the Algorithm 2 structure widened to
  /// a column tile per warp, the tile's x-slices staged through a per-warp
  /// shared-memory slab), plus the batched dynamic-parallelism tail. The
  /// matrix arrays are swept once per launch — the sector model charges
  /// the A-traffic once per SpMM instead of once per vector, which is the
  /// whole point of batching (docs/SERVING.md). Caller guarantees k >= 1.
  double run_batch(vgpu::DeviceSpan<const mat::offset_t> row_start,
                   vgpu::DeviceSpan<const mat::offset_t> row_end,
                   vgpu::DeviceSpan<const mat::index_t> col_idx,
                   vgpu::DeviceSpan<const T> vals,
                   vgpu::DeviceSpan<const T> xp, vgpu::DeviceSpan<T> yb,
                   long long ldy, long long n_rows, int k,
                   vgpu::KernelRun* agg = nullptr) {
    ACSR_CHECK(k >= 1);
    std::vector<vgpu::KernelRun> runs;
    vgpu::ConcurrentGroup group(dev_);
    const bool conc = opt_.concurrent_streams;
    const long long n_tiles = (k + spmv::kSpmmTile - 1) / spmv::kSpmmTile;

    // --- Bin-specific SpMM grids (Algorithm 2 x column tiles). ------------
    for (std::size_t i = 1; i < binning_.bins.size(); ++i) {
      const auto& rows_in_bin = binning_.bins[i];
      if (rows_in_bin.empty()) continue;
      const int v = Binning::vector_size_for_bin(i);
      const int rows_per_warp = vgpu::kWarpSize / v;
      const long long n_slots = static_cast<long long>(rows_in_bin.size());
      const long long warps_for_slots =
          (n_slots + rows_per_warp - 1) / rows_per_warp;
      const int warps_per_block = 4;
      vgpu::LaunchConfig cfg;
      cfg.name = "acsr_spmm_bin" + std::to_string(i);
      cfg.block_dim = warps_per_block * vgpu::kWarpSize;
      cfg.grid_dim = std::max<long long>(
          1, (warps_for_slots * n_tiles + warps_per_block - 1) /
                 warps_per_block);
      if (prof::profiler_enabled()) [[unlikely]]
        prof::Profiler::instance().annotate_next_launch(
            "bin=" + std::to_string(i) +
            " rows=" + std::to_string(rows_in_bin.size()) +
            " vector_size=" + std::to_string(v) +
            " k=" + std::to_string(k));
      auto row_map = bin_rows_dev_[i].cspan();
      const bool use_tex = opt_.use_texture;
      auto body = [&](vgpu::Block& blk) {
        // Per-warp x-slice slab: each warp stages the gathered x values
        // of its current tile column here before the FMA fan-out, so the
        // tile's slices live in shared memory instead of k re-gathers'
        // worth of registers. Slices are warp-private — no sync needed.
        auto xslab = blk.shared<T>(
            static_cast<std::size_t>(blk.warps_per_block()) *
            vgpu::kWarpSize);
        blk.each_warp([&](vgpu::Warp& w) {
          bin_spmm_warp(w, v, row_start, row_end, col_idx, vals, xp, yb,
                        ldy, n_rows, row_map, n_slots, warps_for_slots, k,
                        xslab, use_tex);
        });
      };
      runs.push_back(conc ? group.launch(cfg, vgpu::KernelRef(body))
                          : dev_.launch(cfg, vgpu::KernelRef(body)));
    }

    // --- Batched dynamic-parallelism parent (Algorithm 3 x columns). ------
    if (!binning_.dp_rows.empty()) {
      const long long n_dp = static_cast<long long>(binning_.dp_rows.size());
      vgpu::LaunchConfig cfg;
      cfg.name = "acsr_spmm_dp_parent";
      cfg.block_dim = 32;
      cfg.grid_dim = (n_dp + 31) / 32;
      if (prof::profiler_enabled()) [[unlikely]]
        prof::Profiler::instance().annotate_next_launch(
            "dp_rows=" + std::to_string(n_dp) + " k=" + std::to_string(k));
      auto dp_rows = dp_rows_dev_.cspan();
      const int thread_load = opt_.thread_load;
      const bool use_tex = opt_.use_texture;
      auto do_launch = [&](const vgpu::LaunchConfig& c, auto&& b) {
        runs.push_back(conc ? group.launch_warps(c, b)
                            : dev_.launch_warps(c, b));
      };
      do_launch(cfg, [&](vgpu::Warp& w) {
        using vgpu::LaneArray;
        using vgpu::Mask;
        LaneArray<long long> tid = w.global_threads();
        const Mask live = tid.where(
            [n_dp](long long t) { return t < n_dp; }, w.active_mask());
        if (live == 0) return;
        const LaneArray<mat::index_t> row = w.load(dp_rows, tid, live);
        const LaneArray<mat::offset_t> start = w.load(row_start, row, live);
        const LaneArray<mat::offset_t> end = w.load(row_end, row, live);
        // Children accumulate into every column; clear each column's slot.
        for (int c = 0; c < k; ++c) {
          auto ycol = yb.subspan(
              static_cast<std::size_t>(c) * static_cast<std::size_t>(ldy),
              static_cast<std::size_t>(n_rows));
          w.store(ycol, row, LaneArray<T>::filled(T{0}), live);
        }
        w.count_alu(4);
        for (int l = 0; l < vgpu::kWarpSize; ++l) {
          if (!vgpu::lane_active(live, l)) continue;
          launch_row_child_batch(w, row[l], start[l], end[l], col_idx,
                                 vals, xp, yb, ldy, n_rows, k, thread_load,
                                 use_tex);
        }
      });
    }

    if (agg != nullptr) {
      *agg = runs.empty() ? vgpu::KernelRun{} : runs.front();
      for (std::size_t i = 1; i < runs.size(); ++i) {
        agg->counters += runs[i].counters;
        agg->duration_s += runs[i].duration_s;
      }
      agg->name = "acsr_spmm";
    }
    if (runs.empty()) return 0.0;
    return conc ? group.seconds() : vgpu::combine_sequential(runs);
  }

 private:
  /// Algorithm 3 body for one parent lane: size and launch the
  /// row-specific child grid (Algorithm 4).
  static void launch_row_child(vgpu::Warp& w, mat::index_t row,
                               mat::offset_t start, mat::offset_t end,
                               vgpu::DeviceSpan<const mat::index_t> col_idx,
                               vgpu::DeviceSpan<const T> vals,
                               vgpu::DeviceSpan<const T> xs,
                               vgpu::DeviceSpan<T> ys, int thread_load,
                               bool use_tex) {
    const long long nnz = end - start;
    if (nnz <= 0) return;
    const long long want_threads = (nnz + thread_load - 1) / thread_load;
    const int block_dim = static_cast<int>(
        std::min<long long>(256, ((want_threads + 31) / 32) * 32));
    vgpu::LaunchConfig child;
    child.name = "acsr_row" + std::to_string(row);
    child.block_dim = block_dim;
    child.grid_dim =
        std::max<long long>(1, (want_threads + block_dim - 1) / block_dim);
    const long long total_threads = child.grid_dim * child.block_dim;

    w.launch_child(child, [row, start, end, col_idx, vals, xs, ys,
                           total_threads, use_tex](vgpu::Block& blk) {
      // Phase 1: grid-stride partial sums, one per warp, into shared.
      auto partials =
          blk.shared<T>(static_cast<std::size_t>(blk.warps_per_block()));
      blk.each_warp([&](vgpu::Warp& cw) {
        using vgpu::LaneArray;
        using vgpu::Mask;
        const LaneArray<long long> tid = cw.global_threads();
        LaneArray<mat::offset_t> i;
        for (int l = 0; l < vgpu::kWarpSize; ++l) i[l] = start + tid[l];
        LaneArray<T> sum{};
        for (;;) {
          Mask m = 0;
          for (int l = 0; l < vgpu::kWarpSize; ++l)
            if (vgpu::lane_active(cw.active_mask(), l) && i[l] < end)
              m |= vgpu::lane_bit(l);
          if (m == 0) break;
          const LaneArray<mat::index_t> col = cw.load(col_idx, i, m);
          const LaneArray<T> val = cw.load(vals, i, m);
          const LaneArray<T> xv =
              use_tex ? cw.load_tex(xs, col, m)
                      : cw.load_gather_uncached(xs, col, m);
          vgpu::fma_into(sum, val, xv, m);
          cw.count_flops(m, 2, sizeof(T) == 8);
          cw.count_alu(2);
          for (int l = 0; l < vgpu::kWarpSize; ++l)
            if (vgpu::lane_active(m, l)) i[l] += total_threads;
        }
        sum = cw.reduce_add(sum, cw.active_mask(), vgpu::kWarpSize);
        partials[static_cast<std::size_t>(cw.warp_in_block())] = sum[0];
        cw.count_smem(1);
      });
      blk.sync();
      // Phase 2: warp 0 folds the per-warp partials, lane 0 publishes.
      blk.each_warp([&](vgpu::Warp& cw) {
        if (cw.warp_in_block() != 0) return;
        using vgpu::LaneArray;
        T total{0};
        for (std::size_t p = 0; p < partials.size(); ++p)
          total += partials[p];
        cw.count_smem(static_cast<int>(partials.size()));
        cw.count_flops(vgpu::lane_bit(0),
                       static_cast<int>(partials.size()), sizeof(T) == 8);
        LaneArray<mat::index_t> rr{};
        LaneArray<T> vv{};
        rr[0] = row;
        vv[0] = total;
        cw.atomic_add(ys, rr, vv, vgpu::lane_bit(0));
      });
    });
  }

  /// Bin SpMM warp body: the csr_vector structure widened to a column
  /// tile. Per matrix entry the col/val pair is loaded once; per tile
  /// column the gathered x slice is staged through the warp's private
  /// 32-slot window of the block's shared slab (one smem store + one smem
  /// load per element) and accumulated from there — register pressure
  /// stays one accumulator per tile column no matter the batch width. The
  /// store discipline is the bin kernels' usual one: group heads only,
  /// rows owned exclusively via the injective bin row map.
  static void bin_spmm_warp(vgpu::Warp& w, int vec_size,
                            vgpu::DeviceSpan<const mat::offset_t> row_start,
                            vgpu::DeviceSpan<const mat::offset_t> row_end,
                            vgpu::DeviceSpan<const mat::index_t> col_idx,
                            vgpu::DeviceSpan<const T> vals,
                            vgpu::DeviceSpan<const T> xp, vgpu::DeviceSpan<T> yb,
                            long long ldy, long long n_rows,
                            vgpu::DeviceSpan<const mat::index_t> row_map,
                            long long map_size, long long warps_for_slots,
                            int k, vgpu::DeviceSpan<T> xslab, bool use_tex) {
    using vgpu::LaneArray;
    using vgpu::Mask;
    const int rows_per_warp = vgpu::kWarpSize / vec_size;
    const long long gw = w.global_warp();
    const long long tile = gw / warps_for_slots;
    const long long warp_first_slot =
        (gw - tile * warps_for_slots) * rows_per_warp;
    const int c_begin = static_cast<int>(tile) * spmv::kSpmmTile;
    const int c_end = std::min(k, c_begin + spmv::kSpmmTile);
    if (c_begin >= c_end) return;
    const int kt = c_end - c_begin;
    const std::size_t slab_base =
        static_cast<std::size_t>(w.warp_in_block()) * vgpu::kWarpSize;

    LaneArray<long long> slot;
    LaneArray<int> sub;
    for (int l = 0; l < vgpu::kWarpSize; ++l) {
      slot[l] = warp_first_slot + l / vec_size;
      sub[l] = l % vec_size;
    }
    Mask live = 0;
    for (int l = 0; l < vgpu::kWarpSize; ++l)
      if (vgpu::lane_active(w.active_mask(), l) && slot[l] < map_size)
        live |= vgpu::lane_bit(l);
    if (live == 0) return;

    const LaneArray<mat::index_t> mapped = w.load(row_map, slot, live);
    LaneArray<long long> row;
    for (int l = 0; l < vgpu::kWarpSize; ++l) row[l] = mapped[l];
    const LaneArray<mat::offset_t> start = w.load(row_start, row, live);
    const LaneArray<mat::offset_t> end = w.load(row_end, row, live);
    w.count_alu(5);

    std::vector<vgpu::DeviceSpan<T>> ycol(static_cast<std::size_t>(kt));
    for (int c = 0; c < kt; ++c) {
      const auto gc = static_cast<std::size_t>(c_begin + c);
      ycol[static_cast<std::size_t>(c)] =
          yb.subspan(gc * static_cast<std::size_t>(ldy),
                     static_cast<std::size_t>(n_rows));
    }

    LaneArray<mat::offset_t> i;
    for (int l = 0; l < vgpu::kWarpSize; ++l) i[l] = start[l] + sub[l];
    std::vector<LaneArray<T>> sums(static_cast<std::size_t>(kt));
    Mask m = 0;
    for (Mask rem = live; rem != 0; rem &= rem - 1) {
      const int l = std::countr_zero(rem);
      if (i[l] < end[l]) m |= vgpu::lane_bit(l);
    }
    while (m != 0) {
      LaneArray<mat::index_t> col{};
      LaneArray<T> val{};
      w.load_pair(col_idx, vals, i, m, col, val);  // A paid once per tile
      // Packed vector gather: lane l fetches its tile slice xp[col*k +
      // c_begin .. +kt-1] in one short-vector fetch, charged per
      // contiguous sector instead of per element.
      LaneArray<long long> pidx{};
      for (Mask rem = m; rem != 0; rem &= rem - 1) {
        const int l = std::countr_zero(rem);
        pidx[l] = static_cast<long long>(col[l]) * k + c_begin;
      }
      w.count_alu(1);
      LaneArray<T> xv[spmv::kSpmmTile];
      if (use_tex) {
        w.load_tex_vec(xp, pidx, kt, m, xv);
      } else {
        for (int c = 0; c < kt; ++c) {
          LaneArray<long long> pc = pidx;
          for (Mask rem = m; rem != 0; rem &= rem - 1)
            pc[std::countr_zero(rem)] += c;
          xv[c] = w.load_gather_uncached(xp, pc, m);
        }
      }
      for (int c = 0; c < kt; ++c) {
        // Stage this column's x slice through the warp's slab window.
        for (Mask rem = m; rem != 0; rem &= rem - 1) {
          const int l = std::countr_zero(rem);
          xslab[slab_base + static_cast<std::size_t>(l)] = xv[c][l];
        }
        for (Mask rem = m; rem != 0; rem &= rem - 1) {
          const int l = std::countr_zero(rem);
          xv[c][l] = xslab[slab_base + static_cast<std::size_t>(l)];
        }
        w.count_smem(2 * std::popcount(m));
        vgpu::fma_into(sums[static_cast<std::size_t>(c)], val, xv[c], m);
        w.count_flops(m, 2, sizeof(T) == 8);
      }
      w.count_alu(2);
      Mask next = 0;
      for (Mask rem = m; rem != 0; rem &= rem - 1) {
        const int l = std::countr_zero(rem);
        i[l] += vec_size;
        if (i[l] < end[l]) next |= vgpu::lane_bit(l);
      }
      m = next;
    }

    Mask heads = 0;
    for (int l = 0; l < vgpu::kWarpSize; ++l)
      if (vgpu::lane_active(live, l) && sub[l] == 0)
        heads |= vgpu::lane_bit(l);
    for (int c = 0; c < kt; ++c) {
      const LaneArray<T> red =
          w.reduce_add(sums[static_cast<std::size_t>(c)], live, vec_size);
      w.store(ycol[static_cast<std::size_t>(c)], row, red, heads);
    }
  }

  /// Algorithm 3/4 widened to the vector block: one child grid per heavy
  /// row serves *all* k columns, looping the column tiles inside the
  /// child (per-tile two-phase shared reduction, barrier-separated) so
  /// the per-SpMV device-launch count stays the scalar one regardless of
  /// batch width.
  static void launch_row_child_batch(
      vgpu::Warp& w, mat::index_t row, mat::offset_t start,
      mat::offset_t end, vgpu::DeviceSpan<const mat::index_t> col_idx,
      vgpu::DeviceSpan<const T> vals, vgpu::DeviceSpan<const T> xp,
      vgpu::DeviceSpan<T> yb, long long ldy, long long n_rows, int k,
      int thread_load, bool use_tex) {
    const long long nnz = end - start;
    if (nnz <= 0) return;
    const long long want_threads = (nnz + thread_load - 1) / thread_load;
    const int block_dim = static_cast<int>(
        std::min<long long>(256, ((want_threads + 31) / 32) * 32));
    vgpu::LaunchConfig child;
    child.name = "acsr_spmm_row" + std::to_string(row);
    child.block_dim = block_dim;
    child.grid_dim =
        std::max<long long>(1, (want_threads + block_dim - 1) / block_dim);
    const long long total_threads = child.grid_dim * child.block_dim;
    const int n_tiles = (k + spmv::kSpmmTile - 1) / spmv::kSpmmTile;

    w.launch_child(child, [row, start, end, col_idx, vals, xp, yb, ldy,
                           n_rows, k, n_tiles, total_threads,
                           use_tex](vgpu::Block& blk) {
      auto partials = blk.shared<T>(
          static_cast<std::size_t>(blk.warps_per_block()) *
          spmv::kSpmmTile);
      for (int t = 0; t < n_tiles; ++t) {
        const int c_begin = t * spmv::kSpmmTile;
        const int kt = std::min(k, c_begin + spmv::kSpmmTile) - c_begin;
        // WAR barrier: the previous tile's fold must finish reading the
        // partials before this tile overwrites them.
        if (t > 0) blk.sync();
        blk.each_warp([&](vgpu::Warp& cw) {
          using vgpu::LaneArray;
          using vgpu::Mask;
          const LaneArray<long long> tid = cw.global_threads();
          LaneArray<mat::offset_t> i;
          for (int l = 0; l < vgpu::kWarpSize; ++l) i[l] = start + tid[l];
          std::vector<LaneArray<T>> sums(static_cast<std::size_t>(kt));
          for (;;) {
            Mask m = 0;
            for (int l = 0; l < vgpu::kWarpSize; ++l)
              if (vgpu::lane_active(cw.active_mask(), l) && i[l] < end)
                m |= vgpu::lane_bit(l);
            if (m == 0) break;
            const LaneArray<mat::index_t> col = cw.load(col_idx, i, m);
            const LaneArray<T> val = cw.load(vals, i, m);
            // Packed vector gather of the tile slice, one fetch per lane.
            LaneArray<long long> pidx{};
            for (Mask rem = m; rem != 0; rem &= rem - 1) {
              const int l = std::countr_zero(rem);
              pidx[l] = static_cast<long long>(col[l]) * k + c_begin;
            }
            cw.count_alu(1);
            LaneArray<T> xv[spmv::kSpmmTile];
            if (use_tex) {
              cw.load_tex_vec(xp, pidx, kt, m, xv);
            } else {
              for (int c = 0; c < kt; ++c) {
                LaneArray<long long> pc = pidx;
                for (Mask rem = m; rem != 0; rem &= rem - 1)
                  pc[std::countr_zero(rem)] += c;
                xv[c] = cw.load_gather_uncached(xp, pc, m);
              }
            }
            for (int c = 0; c < kt; ++c) {
              vgpu::fma_into(sums[static_cast<std::size_t>(c)], val, xv[c], m);
              cw.count_flops(m, 2, sizeof(T) == 8);
            }
            cw.count_alu(2);
            for (int l = 0; l < vgpu::kWarpSize; ++l)
              if (vgpu::lane_active(m, l)) i[l] += total_threads;
          }
          for (int c = 0; c < kt; ++c) {
            const LaneArray<T> red = cw.reduce_add(
                sums[static_cast<std::size_t>(c)], cw.active_mask(),
                vgpu::kWarpSize);
            partials[static_cast<std::size_t>(c) *
                         static_cast<std::size_t>(blk.warps_per_block()) +
                     static_cast<std::size_t>(cw.warp_in_block())] = red[0];
          }
          cw.count_smem(kt);
        });
        blk.sync();
        blk.each_warp([&](vgpu::Warp& cw) {
          if (cw.warp_in_block() != 0) return;
          using vgpu::LaneArray;
          const auto warps = static_cast<std::size_t>(blk.warps_per_block());
          for (int c = 0; c < kt; ++c) {
            T total{0};
            for (std::size_t p = 0; p < warps; ++p)
              total += partials[static_cast<std::size_t>(c) * warps + p];
            cw.count_smem(static_cast<int>(warps));
            cw.count_flops(vgpu::lane_bit(0), static_cast<int>(warps),
                           sizeof(T) == 8);
            auto ycol = yb.subspan(
                static_cast<std::size_t>(c_begin + c) *
                    static_cast<std::size_t>(ldy),
                static_cast<std::size_t>(n_rows));
            LaneArray<mat::index_t> rr{};
            LaneArray<T> vv{};
            rr[0] = row;
            vv[0] = total;
            cw.atomic_add(ycol, rr, vv, vgpu::lane_bit(0));
          }
        });
      }
    });
  }

  void upload_metadata() {
    metadata_bytes_ = 0;
    bin_rows_dev_.clear();
    bin_rows_dev_.resize(binning_.bins.size());
    for (std::size_t i = 1; i < binning_.bins.size(); ++i) {
      if (binning_.bins[i].empty()) continue;
      bin_rows_dev_[i] = dev_.template alloc<mat::index_t>(
          binning_.bins[i].size(), "acsr.bin" + std::to_string(i));
      bin_rows_dev_[i].host() = binning_.bins[i];
      metadata_bytes_ += bin_rows_dev_[i].bytes();
    }
    if (!binning_.dp_rows.empty()) {
      dp_rows_dev_ = dev_.template alloc<mat::index_t>(
          binning_.dp_rows.size(), "acsr.dp_rows");
      dp_rows_dev_.host() = binning_.dp_rows;
      metadata_bytes_ += dp_rows_dev_.bytes();
    }
    metadata_upload_s_ = dev_.note_transfer(metadata_bytes_).duration_s;
  }

  vgpu::Device& dev_;
  Binning binning_;
  AcsrOptions opt_;
  std::vector<vgpu::DeviceBuffer<mat::index_t>> bin_rows_dev_;
  vgpu::DeviceBuffer<mat::index_t> dp_rows_dev_;
  std::size_t metadata_bytes_ = 0;
  double metadata_upload_s_ = 0.0;
};

/// Bin a CSR matrix: the one-scan preprocessing of Algorithm 1, with DP
/// force-disabled when the device lacks CC >= 3.5.
template <class T>
Binning bin_matrix(const mat::Csr<T>& a, const vgpu::Device& dev,
                   BinningOptions opt, vgpu::HostModel* hm = nullptr) {
  opt.enable_dp = opt.enable_dp && dev.spec().supports_dynamic_parallelism();
  std::vector<mat::offset_t> row_nnz(static_cast<std::size_t>(a.rows));
  for (mat::index_t r = 0; r < a.rows; ++r)
    row_nnz[static_cast<std::size_t>(r)] = a.row_nnz(r);
  return Binning::build(row_nnz, opt, hm);
}

template <class T>
class AcsrEngine final : public spmv::EngineBase<T> {
 public:
  /// `preset_binning` lets the multi-GPU partitioner inject a per-device
  /// share of each bin; by default the engine bins the whole matrix.
  AcsrEngine(vgpu::Device& dev, const mat::Csr<T>& a, AcsrOptions opt = {},
             std::optional<Binning> preset_binning = std::nullopt)
      : spmv::EngineBase<T>(dev, "ACSR"), host_(a) {
    vgpu::HostModel hm;
    dev_csr_ = spmv::CsrDevice<T>::upload(dev, a, this->name());
    this->charge_upload(dev_csr_.bytes());

    Binning b = preset_binning.has_value()
                    ? std::move(*preset_binning)
                    : bin_matrix(a, dev, opt.binning, &hm);
    launcher_.emplace(dev, std::move(b), opt);
    this->report_.preprocess_s = hm.seconds();
    this->report_.h2d_bytes += launcher_->metadata_bytes();
    this->report_.h2d_s += launcher_->metadata_upload_s();
    this->report_.device_bytes =
        dev_csr_.bytes() + launcher_->metadata_bytes();
  }

  mat::index_t rows() const override { return host_.rows; }
  mat::index_t cols() const override { return host_.cols; }
  mat::offset_t nnz() const override { return host_.nnz(); }

  const Binning& binning() const { return launcher_->binning(); }
  int bin_grids() const { return launcher_->bin_grids(); }
  int row_grids() const { return launcher_->row_grids(); }
  bool dynamic_parallelism_active() const { return row_grids() > 0; }

  void apply(const std::vector<T>& x, std::vector<T>& y) const override {
    host_.spmv(x, y);
  }

  double simulate(const std::vector<T>& x, std::vector<T>& y) override {
    ACSR_CHECK(static_cast<mat::index_t>(x.size()) == host_.cols);
    auto x_dev = this->stage_x(x);
    auto y_dev = this->stage_y(static_cast<std::size_t>(host_.rows));
    const auto nrows = static_cast<std::size_t>(host_.rows);
    const double t = launcher_->run(
        dev_csr_.row_off.cspan().subspan(0, nrows),
        dev_csr_.row_off.cspan().subspan(1, nrows), dev_csr_.col_idx.cspan(),
        dev_csr_.vals.cspan(), x_dev, y_dev,
        &this->report_.last_run);
    y = this->staged_y();
    return t;
  }

  /// Column-blocked batched SpMM (tentpole path). Width 0 is a no-op
  /// (no launch), width 1 routes through the scalar simulate() so the
  /// launch sequence — and the memo key material — is exactly the SpMV
  /// one; wider blocks run the real per-bin SpMM grids.
  double simulate_batch(const mat::DenseBlock<T>& x_block,
                        mat::DenseBlock<T>& y_block) override {
    ACSR_CHECK(x_block.rows == host_.cols);
    if (x_block.width == 0) {
      y_block.resize(host_.rows, 0);
      return 0.0;
    }
    if (x_block.width == 1) return this->simulate_batch_loop(x_block, y_block);
    const int k = x_block.width;
    const auto ldy = mat::DenseBlock<T>::padded_ld(host_.rows);
    auto xp = this->stage_x_pack(x_block);
    auto yb = this->stage_y_block(
        static_cast<std::size_t>(ldy) * static_cast<std::size_t>(k), k);
    const auto nrows = static_cast<std::size_t>(host_.rows);
    const double t = launcher_->run_batch(
        dev_csr_.row_off.cspan().subspan(0, nrows),
        dev_csr_.row_off.cspan().subspan(1, nrows), dev_csr_.col_idx.cspan(),
        dev_csr_.vals.cspan(), xp, yb, ldy, host_.rows, k,
        &this->report_.last_run);
    y_block.resize(host_.rows, k);
    y_block.data = this->staged_y_block(k);  // valid: ldy == y_block.ld
    return t;
  }

 private:
  mat::Csr<T> host_;
  spmv::CsrDevice<T> dev_csr_;
  std::optional<AcsrLauncher<T>> launcher_;
};

/// Shape class of the ACSR launch sequence (Algorithms 2-4). Key format
/// invariants from Binning::build: every row lands in exactly one bin-or-
/// dp list (both maps injective, so the bin grids' plain y stores and the
/// DP parent's clearing store cannot collide), and the number of tail
/// rows is hard-capped at BinningOptions::row_max — which is what keeps
/// the per-SpMV device-launch count under the Table II pending-launch
/// limit (cudaLimitDevRuntimePendingLaunchCount, 2048).
inline analysis::ShapeClass acsr_shape_class() {
  namespace an = acsr::analysis;
  const an::Sym n_rows = an::Sym::param("n_rows");
  const an::Sym n_cols = an::Sym::param("n_cols");
  const an::Sym nnz = an::Sym::param("nnz");
  const an::Sym n_slots = an::Sym::param("n_slots");
  const an::Sym n_dp = an::Sym::param("n_dp");
  an::ShapeClass sc;
  sc.engine = "acsr";
  sc.params = {
      an::param("n_rows", 0, "matrix rows"),
      an::param("n_cols", 0, "matrix columns"),
      an::param("nnz", 0, "stored non-zeros"),
      an::param("n_slots", 0, "rows handled by bin grids"),
      an::param("n_dp", 0, BinningOptions{}.row_max,
                "tail rows (capped by BinningOptions::row_max)"),
      an::param("grid", 1, "launch grid dim"),
      an::param("child_grid", 1, "row-child grid dim"),
      // SpMM batch: k >= 1 encodes the verified 0-column no-op (a 0-width
      // block never reaches a launch); ldy_pad carries the row padding of
      // the column-major output block (the input slab is packed, unpadded).
      an::param("k", 1, "batch width (vector-block columns)"),
      an::param("ldy_pad", 0, "y-block leading-dimension padding rows"),
  };
  const an::Sym k = an::Sym::param("k");
  const an::Sym ldy_pad = an::Sym::param("ldy_pad");
  sc.spans = {
      an::data_span("xpack", n_cols * k,
                    "packed row-major x slab (xpack[col*k + c])"),
      an::data_span("yb", (n_rows + ldy_pad) * k,
                    "column-major output vector block",
                    /*initialized=*/false),
      an::index_span("row_start", n_rows, {an::Sym(0), nnz},
                     "per-row begin offsets", true),
      an::index_span("row_end", n_rows, {an::Sym(0), nnz},
                     "per-row end offsets", true),
      an::index_span("col_idx", nnz, {an::Sym(0), n_cols - an::Sym(1)},
                     "column indices"),
      an::data_span("vals", nnz, "non-zero values"),
      an::data_span("x", n_cols, "input vector"),
      an::data_span("y", n_rows, "output vector", /*initialized=*/false),
      an::index_span("acsr.bin_rows", n_slots,
                     {an::Sym(0), n_rows - an::Sym(1)},
                     "bin row maps (each row in at most one bin)", false,
                     true),
      an::index_span("acsr.dp_rows", n_dp,
                     {an::Sym(0), n_rows - an::Sym(1)},
                     "tail rows for dynamic parallelism", false, true),
  };
  return sc;
}

}  // namespace acsr::core
