// Incremental CSR for dynamic graphs (paper section VII).
//
// Each row is allocated with slack at its end so that insertions do not
// force a global rebuild. A matrix update ships only the change list
// (rows + sorted delete/insert column lists) across PCIe; a device kernel
// with one warp per updated row — only lane 0 active, as in the paper, to
// avoid intra-warp divergence — deletes, compacts and inserts in place.
// Rows that outgrow their slack relocate into a spare heap at the end of
// the arrays (row placement is free-form thanks to the explicit begin/end
// offsets); only an exhausted heap forces the host-side rebuild + full
// re-upload (both counted, so benches can report how rare they are).
#pragma once

#include <algorithm>
#include <cstdint>

#include "core/binning.hpp"
#include "graph/dynamic.hpp"
#include "mat/csr.hpp"
#include "vgpu/device.hpp"

namespace acsr::core {

/// How the update kernel maps work to threads (section VII): the paper
/// assigns a warp per row with only lane 0 active, to avoid intra-warp
/// divergence; the thread-per-row alternative packs 32 rows per warp but
/// runs every warp at the pace of its slowest row. The ablation bench
/// compares them.
enum class UpdateKernelMode { kWarpPerRowLane0, kThreadPerRow };

template <class T>
class IncrementalCsr {
 public:
  struct UpdateResult {
    double h2d_s = 0.0;       // change-list transfer
    double kernel_s = 0.0;    // device update kernel
    double rebuild_s = 0.0;   // host rebuild + full re-upload (overflow)
    std::size_t overflowed_rows = 0;
  };

  /// `slack_factor`: per-row headroom; `spare_factor`: shared overflow
  /// heap at the end of the arrays that rows relocate into when they
  /// outgrow their slot (row_begin/row_end make placement free-form).
  IncrementalCsr(vgpu::Device& dev, const mat::Csr<T>& a,
                 double slack_factor = 0.5, double spare_factor = 0.10,
                 UpdateKernelMode mode = UpdateKernelMode::kWarpPerRowLane0)
      : dev_(dev),
        slack_factor_(slack_factor),
        spare_factor_(spare_factor),
        mode_(mode) {
    build(a);
  }

  mat::index_t rows() const { return rows_; }
  mat::index_t cols() const { return cols_; }
  mat::offset_t nnz() const {
    mat::offset_t n = 0;
    for (std::size_t r = 0; r < row_len_.size(); ++r) n += row_len_[r];
    return n;
  }

  std::size_t bytes() const {
    return begin_dev_.bytes() + end_dev_.bytes() + col_dev_.bytes() +
           val_dev_.bytes();
  }

  /// Row lengths for (re)binning after an update.
  const std::vector<mat::offset_t>& row_lengths() const { return row_len_; }

  /// Structure version: bumped by every apply_update (in-place merges,
  /// relocations and overflow rebuilds alike — any of them can change
  /// extents and therefore metering). Memoizing callers fold it into their
  /// cache subkey so a structural change invalidates cached launch
  /// sequences (vgpu/memo.hpp).
  std::uint64_t version() const { return version_; }

  // Extent spans consumed by the ACSR kernels.
  vgpu::DeviceSpan<const mat::offset_t> row_begin() const {
    return begin_dev_.cspan();
  }
  vgpu::DeviceSpan<const mat::offset_t> row_end() const {
    return end_dev_.cspan();
  }
  vgpu::DeviceSpan<const mat::index_t> col_idx() const {
    return col_dev_.cspan();
  }
  vgpu::DeviceSpan<const T> vals() const { return val_dev_.cspan(); }

  /// Logical content as plain CSR (verification / host apply).
  mat::Csr<T> to_csr() const {
    mat::Csr<T> m;
    m.rows = rows_;
    m.cols = cols_;
    m.row_off.assign(static_cast<std::size_t>(rows_) + 1, 0);
    for (mat::index_t r = 0; r < rows_; ++r) {
      const auto rr = static_cast<std::size_t>(r);
      for (mat::offset_t i = row_begin_[rr]; i < row_begin_[rr] + row_len_[rr];
           ++i) {
        m.col_idx.push_back(col_dev_.host()[static_cast<std::size_t>(i)]);
        m.vals.push_back(val_dev_.host()[static_cast<std::size_t>(i)]);
      }
      m.row_off[rr + 1] = static_cast<mat::offset_t>(m.col_idx.size());
    }
    m.validate();
    return m;
  }

  /// Apply a change batch on the device. Only the change list crosses
  /// PCIe; the paper's one-warp-per-row / lane-0-only kernel applies it.
  UpdateResult apply_update(const graph::UpdateBatch<T>& batch) {
    UpdateResult res;
    ++version_;
    res.h2d_s = dev_.note_transfer(batch.bytes()).duration_s;

    // Overflow pre-pass: rows that might outgrow their slot (conservative:
    // listed deletes may not all match) are relocated into the spare heap
    // with a grown capacity. Only an exhausted heap forces the full
    // host-side rebuild.
    for (std::size_t i = 0; i < batch.rows.size(); ++i) {
      const auto r = static_cast<std::size_t>(batch.rows[i]);
      const mat::offset_t inss = batch.ins_off[i + 1] - batch.ins_off[i];
      const mat::offset_t need = row_len_[r] + inss;
      if (need <= row_cap_[r]) continue;
      ++res.overflowed_rows;
      const mat::offset_t new_cap =
          need + std::max<mat::offset_t>(
                     4, static_cast<mat::offset_t>(
                            slack_factor_ * static_cast<double>(need)));
      if (heap_cursor_ + new_cap > total_slots_) {
        res.rebuild_s = rebuild_with(batch);
        return res;
      }
      relocate_row(r, new_cap, res);
    }

    const long long n_upd = static_cast<long long>(batch.rows.size());
    if (n_upd == 0) return res;

    auto cols_span = col_dev_.span();
    auto vals_span = val_dev_.span();
    vgpu::KernelRun run;
    if (mode_ == UpdateKernelMode::kWarpPerRowLane0) {
      // The paper's kernel: one warp per updated row, lane 0 does the
      // merge (no intra-warp divergence, serialised accesses).
      vgpu::LaunchConfig cfg;
      cfg.name = "csr_update";
      cfg.block_dim = 128;  // 4 row-warps per block
      cfg.grid_dim = std::max<long long>(1, (n_upd + 3) / 4);
      run = dev_.launch_warps(cfg, [&](vgpu::Warp& w) {
        const long long i = w.global_warp();
        if (i >= n_upd) return;
        const auto work = merge_row(batch, static_cast<std::size_t>(i),
                                    cols_span, vals_span);
        w.count_serial_gmem(work.transactions);
        w.count_alu(static_cast<int>(std::min<std::uint64_t>(
            work.alu, 1u << 20)));
      });
    } else {
      // Thread-per-row: 32 updates per warp. Total traffic is identical,
      // but the warp issues at the pace of its *longest* row (divergence).
      vgpu::LaunchConfig cfg;
      cfg.name = "csr_update_divergent";
      cfg.block_dim = 128;
      cfg.grid_dim = std::max<long long>(1, (n_upd + 127) / 128);
      run = dev_.launch_warps(cfg, [&](vgpu::Warp& w) {
        const long long first = w.global_warp() * vgpu::kWarpSize;
        std::uint64_t transactions = 0, max_alu = 0;
        for (int l = 0; l < vgpu::kWarpSize; ++l) {
          const long long i = first + l;
          if (i >= n_upd) break;
          const auto work = merge_row(batch, static_cast<std::size_t>(i),
                                      cols_span, vals_span);
          transactions += work.transactions;
          max_alu = std::max(max_alu, work.alu);
        }
        if (transactions == 0) return;
        w.count_serial_gmem(transactions);
        // Every lane re-issues until the slowest finishes.
        w.count_alu(static_cast<int>(std::min<std::uint64_t>(
            max_alu * 2, 1u << 20)));
      });
    }
    res.kernel_s = run.duration_s;

    // Mirror the new lengths and end offsets host-side (the device wrote
    // end_dev_ in the kernel; row_len_ is the host-side scan mirror).
    for (std::size_t i = 0; i < batch.rows.size(); ++i) {
      const auto r = static_cast<std::size_t>(batch.rows[i]);
      row_len_[r] = end_dev_.host()[r] - row_begin_[r];
    }
    return res;
  }

 private:
  void build(const mat::Csr<T>& a) {
    rows_ = a.rows;
    cols_ = a.cols;
    const auto nrows = static_cast<std::size_t>(a.rows);
    row_begin_.assign(nrows, 0);
    row_len_.assign(nrows, 0);
    row_cap_.assign(nrows, 0);
    mat::offset_t total = 0;
    for (std::size_t r = 0; r < nrows; ++r) {
      const mat::offset_t n = a.row_nnz(static_cast<mat::index_t>(r));
      const auto slack = static_cast<mat::offset_t>(std::max(
          4.0, slack_factor_ * static_cast<double>(n)));
      row_begin_[r] = total;
      row_len_[r] = n;
      row_cap_[r] = n + slack;
      total += n + slack;
    }
    heap_cursor_ = total;
    total += std::max<mat::offset_t>(
        64, static_cast<mat::offset_t>(spare_factor_ *
                                       static_cast<double>(total)));
    total_slots_ = total;
    std::vector<mat::index_t> cols(static_cast<std::size_t>(total), 0);
    std::vector<T> vals(static_cast<std::size_t>(total), T{0});
    std::vector<mat::offset_t> ends(nrows, 0);
    for (std::size_t r = 0; r < nrows; ++r) {
      const mat::offset_t lo = a.row_off[r];
      for (mat::offset_t j = 0; j < row_len_[r]; ++j) {
        cols[static_cast<std::size_t>(row_begin_[r] + j)] =
            a.col_idx[static_cast<std::size_t>(lo + j)];
        vals[static_cast<std::size_t>(row_begin_[r] + j)] =
            a.vals[static_cast<std::size_t>(lo + j)];
      }
      ends[r] = row_begin_[r] + row_len_[r];
    }
    begin_dev_ = dev_.template alloc<mat::offset_t>(nrows, "inc.begin");
    begin_dev_.host() = row_begin_;
    end_dev_ = dev_.template alloc<mat::offset_t>(nrows, "inc.end");
    end_dev_.host() = ends;
    col_dev_ = dev_.template alloc<mat::index_t>(cols.size(), "inc.col");
    col_dev_.host() = std::move(cols);
    val_dev_ = dev_.template alloc<T>(vals.size(), "inc.val");
    val_dev_.host() = std::move(vals);
  }

  struct MergeWork {
    std::uint64_t transactions = 0;  // serialised scalar accesses
    std::uint64_t alu = 0;           // compare/branch instructions
  };

  /// Functional merge for one updated row: delete + compact, then sorted
  /// insert. Returns the work counts for the caller's cost charging
  /// (depends on the kernel mode).
  MergeWork merge_row(const graph::UpdateBatch<T>& batch, std::size_t i,
                      vgpu::DeviceSpan<mat::index_t> cols,
                      vgpu::DeviceSpan<T> vals) {
    const auto r = static_cast<std::size_t>(batch.rows[i]);
    const mat::offset_t base = row_begin_[r];
    const mat::offset_t len = row_len_[r];
    const auto d0 = static_cast<std::size_t>(batch.del_off[i]);
    const auto d1 = static_cast<std::size_t>(batch.del_off[i + 1]);
    const auto i0 = static_cast<std::size_t>(batch.ins_off[i]);
    const auto i1 = static_cast<std::size_t>(batch.ins_off[i + 1]);

    // Pass 1: delete & compact (read every entry, write survivors).
    mat::offset_t write = 0;
    std::size_t dc = d0;
    for (mat::offset_t j = 0; j < len; ++j) {
      const auto slot = static_cast<std::size_t>(base + j);
      const mat::index_t c = cols[slot];
      while (dc < d1 && batch.del_cols[dc] < c) ++dc;
      const bool deleted = dc < d1 && batch.del_cols[dc] == c;
      if (!deleted) {
        const auto wslot = static_cast<std::size_t>(base + write);
        cols[wslot] = c;
        vals[wslot] = vals[slot];
        ++write;
      }
    }
    MergeWork work;
    work.transactions += static_cast<std::uint64_t>(2 * len + 2 * write);
    work.alu += static_cast<std::uint64_t>(len) + (d1 - d0);

    // Pass 2: merge the sorted insert list (backwards shift-merge).
    mat::offset_t new_len = write;
    for (std::size_t k = i1; k > i0; --k) {
      const mat::index_t c = batch.ins_cols[k - 1];
      const T v = batch.ins_vals[k - 1];
      mat::offset_t pos = new_len;
      while (pos > 0 &&
             cols[static_cast<std::size_t>(base + pos - 1)] > c) {
        cols[static_cast<std::size_t>(base + pos)] =
            cols[static_cast<std::size_t>(base + pos - 1)];
        vals[static_cast<std::size_t>(base + pos)] =
            vals[static_cast<std::size_t>(base + pos - 1)];
        --pos;
      }
      cols[static_cast<std::size_t>(base + pos)] = c;
      vals[static_cast<std::size_t>(base + pos)] = v;
      ++new_len;
    }
    work.transactions += static_cast<std::uint64_t>(
        4 * (i1 - i0) + 2 * (new_len - write));
    work.alu += (i1 - i0) + 2;

    end_dev_.host()[r] = base + new_len;
    work.transactions += 1;
    ACSR_CHECK_MSG(new_len <= row_cap_[r], "row " << r << " overflowed");
    return work;
  }

  /// Move row r into the spare heap with capacity new_cap. The copy runs
  /// on the device as part of the update kernel; its cost (a coalesced
  /// read + write of the row) is charged to the result's kernel time.
  void relocate_row(std::size_t r, mat::offset_t new_cap, UpdateResult& res) {
    const mat::offset_t old_base = row_begin_[r];
    const mat::offset_t new_base = heap_cursor_;
    auto& cols = col_dev_.host();
    auto& vals = val_dev_.host();
    for (mat::offset_t j = 0; j < row_len_[r]; ++j) {
      cols[static_cast<std::size_t>(new_base + j)] =
          cols[static_cast<std::size_t>(old_base + j)];
      vals[static_cast<std::size_t>(new_base + j)] =
          vals[static_cast<std::size_t>(old_base + j)];
    }
    row_begin_[r] = new_base;
    row_cap_[r] = new_cap;
    begin_dev_.host()[r] = new_base;
    end_dev_.host()[r] = new_base + row_len_[r];
    heap_cursor_ += new_cap;
    const double bytes = 2.0 * static_cast<double>(row_len_[r]) *
                         (sizeof(T) + sizeof(mat::index_t));
    res.kernel_s += bytes / (dev_.spec().dram_bandwidth_gbs * 1e9 *
                             dev_.spec().dram_efficiency);
  }

  /// Overflow path: rebuild the structure host-side from the updated
  /// logical matrix and re-upload everything.
  double rebuild_with(const graph::UpdateBatch<T>& batch) {
    mat::Csr<T> m = to_csr();
    graph::apply_update_host(m, batch);
    const std::size_t old_bytes = bytes();
    begin_dev_ = {};
    end_dev_ = {};
    col_dev_ = {};
    val_dev_ = {};
    (void)old_bytes;
    build(m);
    vgpu::HostModel hm;
    hm.charge_ops(4.0 * static_cast<double>(m.nnz()));
    return hm.seconds() + dev_.note_transfer(bytes()).duration_s;
  }

  vgpu::Device& dev_;
  std::uint64_t version_ = 0;
  double slack_factor_;
  double spare_factor_;
  UpdateKernelMode mode_;
  mat::offset_t heap_cursor_ = 0;
  mat::offset_t total_slots_ = 0;
  mat::index_t rows_ = 0;
  mat::index_t cols_ = 0;
  std::vector<mat::offset_t> row_begin_;
  std::vector<mat::offset_t> row_len_;
  std::vector<mat::offset_t> row_cap_;
  vgpu::DeviceBuffer<mat::offset_t> begin_dev_;
  vgpu::DeviceBuffer<mat::offset_t> end_dev_;
  vgpu::DeviceBuffer<mat::index_t> col_dev_;
  vgpu::DeviceBuffer<T> val_dev_;
};

}  // namespace acsr::core
